file(REMOVE_RECURSE
  "CMakeFiles/test_dna.dir/accel/test_dna.cpp.o"
  "CMakeFiles/test_dna.dir/accel/test_dna.cpp.o.d"
  "test_dna"
  "test_dna.pdb"
  "test_dna[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dna.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
