# Empty compiler generated dependencies file for test_dna.
# This may be replaced when dependencies are built.
