
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/test_baselines.cpp" "tests/CMakeFiles/test_baselines.dir/baseline/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/test_baselines.dir/baseline/test_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/gnna_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/gnna_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gnna_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gnna_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/gnna_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gnna_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gnna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gnna_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
