# Empty compiler generated dependencies file for test_addrmap.
# This may be replaced when dependencies are built.
