file(REMOVE_RECURSE
  "CMakeFiles/test_addrmap.dir/accel/test_addrmap.cpp.o"
  "CMakeFiles/test_addrmap.dir/accel/test_addrmap.cpp.o.d"
  "test_addrmap"
  "test_addrmap.pdb"
  "test_addrmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_addrmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
