file(REMOVE_RECURSE
  "CMakeFiles/test_dnq.dir/accel/test_dnq.cpp.o"
  "CMakeFiles/test_dnq.dir/accel/test_dnq.cpp.o.d"
  "test_dnq"
  "test_dnq.pdb"
  "test_dnq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
