# Empty dependencies file for test_dnq.
# This may be replaced when dependencies are built.
