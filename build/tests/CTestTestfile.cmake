# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_fixed_point[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_spatial[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_addrmap[1]_include.cmake")
include("/root/repo/build/tests/test_agg[1]_include.cmake")
include("/root/repo/build/tests/test_dnq[1]_include.cmake")
include("/root/repo/build/tests/test_dna[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_report[1]_include.cmake")
include("/root/repo/build/tests/test_golden[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_functional[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
