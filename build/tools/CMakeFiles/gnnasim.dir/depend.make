# Empty dependencies file for gnnasim.
# This may be replaced when dependencies are built.
