file(REMOVE_RECURSE
  "CMakeFiles/gnnasim.dir/gnnasim.cpp.o"
  "CMakeFiles/gnnasim.dir/gnnasim.cpp.o.d"
  "gnnasim"
  "gnnasim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnnasim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
