# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(gnnasim_list "/root/repo/build/tools/gnnasim" "--list")
set_tests_properties(gnnasim_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gnnasim_help "/root/repo/build/tools/gnnasim" "--help")
set_tests_properties(gnnasim_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gnnasim_bad_flag "/root/repo/build/tools/gnnasim" "--bogus")
set_tests_properties(gnnasim_bad_flag PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(gnnasim_missing_benchmark "/root/repo/build/tools/gnnasim")
set_tests_properties(gnnasim_missing_benchmark PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
