# Empty compiler generated dependencies file for mpnn_molecules.
# This may be replaced when dependencies are built.
