file(REMOVE_RECURSE
  "CMakeFiles/mpnn_molecules.dir/mpnn_molecules.cpp.o"
  "CMakeFiles/mpnn_molecules.dir/mpnn_molecules.cpp.o.d"
  "mpnn_molecules"
  "mpnn_molecules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpnn_molecules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
