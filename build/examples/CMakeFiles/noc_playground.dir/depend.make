# Empty dependencies file for noc_playground.
# This may be replaced when dependencies are built.
