# Empty compiler generated dependencies file for gcn_citation.
# This may be replaced when dependencies are built.
