file(REMOVE_RECURSE
  "CMakeFiles/gcn_citation.dir/gcn_citation.cpp.o"
  "CMakeFiles/gcn_citation.dir/gcn_citation.cpp.o.d"
  "gcn_citation"
  "gcn_citation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcn_citation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
