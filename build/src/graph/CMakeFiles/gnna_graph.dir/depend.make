# Empty dependencies file for gnna_graph.
# This may be replaced when dependencies are built.
