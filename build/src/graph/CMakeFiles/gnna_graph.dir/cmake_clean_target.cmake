file(REMOVE_RECURSE
  "libgnna_graph.a"
)
