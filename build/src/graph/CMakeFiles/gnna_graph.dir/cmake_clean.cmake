file(REMOVE_RECURSE
  "CMakeFiles/gnna_graph.dir/dataset.cpp.o"
  "CMakeFiles/gnna_graph.dir/dataset.cpp.o.d"
  "CMakeFiles/gnna_graph.dir/generator.cpp.o"
  "CMakeFiles/gnna_graph.dir/generator.cpp.o.d"
  "CMakeFiles/gnna_graph.dir/graph.cpp.o"
  "CMakeFiles/gnna_graph.dir/graph.cpp.o.d"
  "libgnna_graph.a"
  "libgnna_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnna_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
