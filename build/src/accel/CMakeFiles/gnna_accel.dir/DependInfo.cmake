
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/agg.cpp" "src/accel/CMakeFiles/gnna_accel.dir/agg.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/agg.cpp.o.d"
  "/root/repo/src/accel/compiler.cpp" "src/accel/CMakeFiles/gnna_accel.dir/compiler.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/compiler.cpp.o.d"
  "/root/repo/src/accel/config.cpp" "src/accel/CMakeFiles/gnna_accel.dir/config.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/config.cpp.o.d"
  "/root/repo/src/accel/dna.cpp" "src/accel/CMakeFiles/gnna_accel.dir/dna.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/dna.cpp.o.d"
  "/root/repo/src/accel/dnq.cpp" "src/accel/CMakeFiles/gnna_accel.dir/dnq.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/dnq.cpp.o.d"
  "/root/repo/src/accel/energy.cpp" "src/accel/CMakeFiles/gnna_accel.dir/energy.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/energy.cpp.o.d"
  "/root/repo/src/accel/gpe.cpp" "src/accel/CMakeFiles/gnna_accel.dir/gpe.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/gpe.cpp.o.d"
  "/root/repo/src/accel/program.cpp" "src/accel/CMakeFiles/gnna_accel.dir/program.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/program.cpp.o.d"
  "/root/repo/src/accel/report.cpp" "src/accel/CMakeFiles/gnna_accel.dir/report.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/report.cpp.o.d"
  "/root/repo/src/accel/runner.cpp" "src/accel/CMakeFiles/gnna_accel.dir/runner.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/runner.cpp.o.d"
  "/root/repo/src/accel/simulator.cpp" "src/accel/CMakeFiles/gnna_accel.dir/simulator.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/simulator.cpp.o.d"
  "/root/repo/src/accel/tile.cpp" "src/accel/CMakeFiles/gnna_accel.dir/tile.cpp.o" "gcc" "src/accel/CMakeFiles/gnna_accel.dir/tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gnna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/gnna_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/gnna_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/gnna_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gnna_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gnna_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
