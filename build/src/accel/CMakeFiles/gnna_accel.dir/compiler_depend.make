# Empty compiler generated dependencies file for gnna_accel.
# This may be replaced when dependencies are built.
