file(REMOVE_RECURSE
  "libgnna_accel.a"
)
