file(REMOVE_RECURSE
  "CMakeFiles/gnna_accel.dir/agg.cpp.o"
  "CMakeFiles/gnna_accel.dir/agg.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/compiler.cpp.o"
  "CMakeFiles/gnna_accel.dir/compiler.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/config.cpp.o"
  "CMakeFiles/gnna_accel.dir/config.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/dna.cpp.o"
  "CMakeFiles/gnna_accel.dir/dna.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/dnq.cpp.o"
  "CMakeFiles/gnna_accel.dir/dnq.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/energy.cpp.o"
  "CMakeFiles/gnna_accel.dir/energy.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/gpe.cpp.o"
  "CMakeFiles/gnna_accel.dir/gpe.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/program.cpp.o"
  "CMakeFiles/gnna_accel.dir/program.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/report.cpp.o"
  "CMakeFiles/gnna_accel.dir/report.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/runner.cpp.o"
  "CMakeFiles/gnna_accel.dir/runner.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/simulator.cpp.o"
  "CMakeFiles/gnna_accel.dir/simulator.cpp.o.d"
  "CMakeFiles/gnna_accel.dir/tile.cpp.o"
  "CMakeFiles/gnna_accel.dir/tile.cpp.o.d"
  "libgnna_accel.a"
  "libgnna_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnna_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
