file(REMOVE_RECURSE
  "CMakeFiles/gnna_noc.dir/network.cpp.o"
  "CMakeFiles/gnna_noc.dir/network.cpp.o.d"
  "libgnna_noc.a"
  "libgnna_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnna_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
