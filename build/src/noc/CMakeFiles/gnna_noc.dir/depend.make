# Empty dependencies file for gnna_noc.
# This may be replaced when dependencies are built.
