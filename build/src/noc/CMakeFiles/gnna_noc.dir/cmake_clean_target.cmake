file(REMOVE_RECURSE
  "libgnna_noc.a"
)
