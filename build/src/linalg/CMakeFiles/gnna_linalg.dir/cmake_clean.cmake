file(REMOVE_RECURSE
  "CMakeFiles/gnna_linalg.dir/matrix.cpp.o"
  "CMakeFiles/gnna_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/gnna_linalg.dir/sparse.cpp.o"
  "CMakeFiles/gnna_linalg.dir/sparse.cpp.o.d"
  "libgnna_linalg.a"
  "libgnna_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnna_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
