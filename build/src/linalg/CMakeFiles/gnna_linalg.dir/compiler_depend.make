# Empty compiler generated dependencies file for gnna_linalg.
# This may be replaced when dependencies are built.
