file(REMOVE_RECURSE
  "libgnna_linalg.a"
)
