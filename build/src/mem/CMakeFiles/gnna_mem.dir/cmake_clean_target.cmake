file(REMOVE_RECURSE
  "libgnna_mem.a"
)
