# Empty compiler generated dependencies file for gnna_mem.
# This may be replaced when dependencies are built.
