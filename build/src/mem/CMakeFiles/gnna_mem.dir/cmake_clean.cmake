file(REMOVE_RECURSE
  "CMakeFiles/gnna_mem.dir/memory.cpp.o"
  "CMakeFiles/gnna_mem.dir/memory.cpp.o.d"
  "libgnna_mem.a"
  "libgnna_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnna_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
