# Empty dependencies file for gnna_dataflow.
# This may be replaced when dependencies are built.
