file(REMOVE_RECURSE
  "libgnna_dataflow.a"
)
