file(REMOVE_RECURSE
  "CMakeFiles/gnna_dataflow.dir/spatial.cpp.o"
  "CMakeFiles/gnna_dataflow.dir/spatial.cpp.o.d"
  "libgnna_dataflow.a"
  "libgnna_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnna_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
