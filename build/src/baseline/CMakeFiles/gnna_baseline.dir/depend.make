# Empty dependencies file for gnna_baseline.
# This may be replaced when dependencies are built.
