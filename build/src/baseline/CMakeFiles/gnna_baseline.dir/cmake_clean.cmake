file(REMOVE_RECURSE
  "CMakeFiles/gnna_baseline.dir/baselines.cpp.o"
  "CMakeFiles/gnna_baseline.dir/baselines.cpp.o.d"
  "CMakeFiles/gnna_baseline.dir/dnn_accel_study.cpp.o"
  "CMakeFiles/gnna_baseline.dir/dnn_accel_study.cpp.o.d"
  "libgnna_baseline.a"
  "libgnna_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnna_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
