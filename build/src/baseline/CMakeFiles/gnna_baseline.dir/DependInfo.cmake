
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/baselines.cpp" "src/baseline/CMakeFiles/gnna_baseline.dir/baselines.cpp.o" "gcc" "src/baseline/CMakeFiles/gnna_baseline.dir/baselines.cpp.o.d"
  "/root/repo/src/baseline/dnn_accel_study.cpp" "src/baseline/CMakeFiles/gnna_baseline.dir/dnn_accel_study.cpp.o" "gcc" "src/baseline/CMakeFiles/gnna_baseline.dir/dnn_accel_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gnn/CMakeFiles/gnna_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/gnna_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gnna_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gnna_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
