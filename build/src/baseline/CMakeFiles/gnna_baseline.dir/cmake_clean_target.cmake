file(REMOVE_RECURSE
  "libgnna_baseline.a"
)
