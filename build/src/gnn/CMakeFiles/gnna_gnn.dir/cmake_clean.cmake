file(REMOVE_RECURSE
  "CMakeFiles/gnna_gnn.dir/functional.cpp.o"
  "CMakeFiles/gnna_gnn.dir/functional.cpp.o.d"
  "CMakeFiles/gnna_gnn.dir/model.cpp.o"
  "CMakeFiles/gnna_gnn.dir/model.cpp.o.d"
  "CMakeFiles/gnna_gnn.dir/weights.cpp.o"
  "CMakeFiles/gnna_gnn.dir/weights.cpp.o.d"
  "CMakeFiles/gnna_gnn.dir/workload.cpp.o"
  "CMakeFiles/gnna_gnn.dir/workload.cpp.o.d"
  "libgnna_gnn.a"
  "libgnna_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnna_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
