file(REMOVE_RECURSE
  "libgnna_gnn.a"
)
