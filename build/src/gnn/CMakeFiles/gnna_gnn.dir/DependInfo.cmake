
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/functional.cpp" "src/gnn/CMakeFiles/gnna_gnn.dir/functional.cpp.o" "gcc" "src/gnn/CMakeFiles/gnna_gnn.dir/functional.cpp.o.d"
  "/root/repo/src/gnn/model.cpp" "src/gnn/CMakeFiles/gnna_gnn.dir/model.cpp.o" "gcc" "src/gnn/CMakeFiles/gnna_gnn.dir/model.cpp.o.d"
  "/root/repo/src/gnn/weights.cpp" "src/gnn/CMakeFiles/gnna_gnn.dir/weights.cpp.o" "gcc" "src/gnn/CMakeFiles/gnna_gnn.dir/weights.cpp.o.d"
  "/root/repo/src/gnn/workload.cpp" "src/gnn/CMakeFiles/gnna_gnn.dir/workload.cpp.o" "gcc" "src/gnn/CMakeFiles/gnna_gnn.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gnna_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gnna_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
