# Empty compiler generated dependencies file for gnna_gnn.
# This may be replaced when dependencies are built.
