# Empty dependencies file for bench_table7_baselines.
# This may be replaced when dependencies are built.
