# Empty dependencies file for bench_table2_dnn_accel.
# This may be replaced when dependencies are built.
