file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dnn_accel.dir/bench_table2_dnn_accel.cpp.o"
  "CMakeFiles/bench_table2_dnn_accel.dir/bench_table2_dnn_accel.cpp.o.d"
  "bench_table2_dnn_accel"
  "bench_table2_dnn_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dnn_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
