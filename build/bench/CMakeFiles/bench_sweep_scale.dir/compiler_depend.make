# Empty compiler generated dependencies file for bench_sweep_scale.
# This may be replaced when dependencies are built.
