# Empty dependencies file for bench_ablation_dnq.
# This may be replaced when dependencies are built.
