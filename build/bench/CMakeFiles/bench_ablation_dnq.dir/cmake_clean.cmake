file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dnq.dir/bench_ablation_dnq.cpp.o"
  "CMakeFiles/bench_ablation_dnq.dir/bench_ablation_dnq.cpp.o.d"
  "bench_ablation_dnq"
  "bench_ablation_dnq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dnq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
