// gnnatrace — offline profile viewer and A/B regression differ.
//
//   gnnatrace report <run.json> [--run N] [--top N] [--collapsed]
//   gnnatrace hotspots <run.json> [--run N] [--top N] [--csv]
//   gnnatrace diff <a.json> <b.json> [--run N] [--threshold PCT]
//                  [--imbalance-threshold PCT] [--top N]
//
// Inputs are `gnnasim --json` outputs (a single run object or a batch
// array; `--run` selects the array element). `report` prints the embedded
// per-phase/per-unit profile — or, with --collapsed, the GPE flame rollup
// in collapsed-stack format ("a;b;c N", one line per path, feedable to
// flamegraph.pl and friends). `hotspots` renders the attribution block
// (`gnnasim --attribution`): the top-K per-vertex hotspot table and a
// per-tile heatmap of busy/flit load, or machine-readable CSV rows with
// --csv. `diff` lines two runs up phase by phase and unit by unit, prints
// absolute and percentage deltas, flags phases that exist in only one run,
// and exits 1 when the total-cycle regression exceeds `--threshold`, a
// phase appears/disappears, or (when both runs carry attribution and
// --imbalance-threshold is given) the per-tile busy imbalance
// (busy max/mean) regresses by more than that percentage — the CI gates.
//
// Exit codes: 0 ok, 1 regression beyond threshold, 2 usage/parse error.
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/table.hpp"
#include "sim/json.hpp"
#include "trace/attribution.hpp"
#include "trace/profiler.hpp"
#include "trace/trace.hpp"

namespace {

using gnna::Table;
using gnna::format_double;
using gnna::sim::json::Value;
using gnna::trace::AttributionReport;
using gnna::trace::Category;
using gnna::trace::FlameNode;
using gnna::trace::kNumCategories;
using gnna::trace::PhaseProfile;
using gnna::trace::ProfileReport;

void usage(std::ostream& os) {
  os << "usage: gnnatrace report <run.json> [--run N] [--top N]"
        " [--collapsed] [--model-tolerance PCT]\n"
        "       gnnatrace hotspots <run.json> [--run N] [--top N] [--csv]\n"
        "       gnnatrace diff <a.json> <b.json> [--run N] [--threshold PCT]"
        " [--imbalance-threshold PCT] [--top N]\n"
        "\n"
        "Reads gnnasim --json output (single run or batch array).\n"
        "  --run N         batch array element to use (default 0)\n"
        "  --top N         flame paths in report / hotspot rows in hotspots\n"
        "                  (default 12)\n"
        "  --collapsed     report: print the flame rollup as collapsed\n"
        "                  stacks (`a;b;c N', flamegraph.pl input) instead\n"
        "                  of tables\n"
        "  --csv           hotspots: machine-readable CSV (one `tile' row\n"
        "                  per tile, one `vertex' row per hotspot) instead\n"
        "                  of tables\n"
        "  --threshold PCT diff: exit 1 if total cycles regress by more\n"
        "                  than PCT percent, or if any phase exists in\n"
        "                  only one run (default: report only)\n"
        "  --imbalance-threshold PCT\n"
        "                  diff: exit 1 if per-tile busy imbalance (busy\n"
        "                  max/mean from the attribution block) regresses\n"
        "                  by more than PCT percent (needs attribution in\n"
        "                  both runs)\n"
        "  --model-tolerance PCT\n"
        "                  report: gate the static model (the v6\n"
        "                  \"static_model\" block) against the measurement:\n"
        "                  exit 1 if the analytic lower bound exceeds the\n"
        "                  measured cycles (model unsound) or undershoots\n"
        "                  them by more than PCT percent (model too loose)\n";
}

/// One phase of the decoded "static_model" block (schema v6; see
/// accel/analysis.hpp for the model itself).
struct StaticModelPhase {
  std::string name;
  double bound = 0.0;
  double compute = 0.0;
  double memory = 0.0;
  double noc = 0.0;
  std::string bottleneck;
  double imbalance = 0.0;
};

struct StaticModel {
  double bound_cycles = 0.0;
  std::vector<StaticModelPhase> phases;
};

/// One loaded run: the raw JSON object plus the decoded profile (empty
/// when the run was produced without --profile).
struct LoadedRun {
  std::string path;
  std::string program;
  std::string config;
  double cycles = 0.0;
  ProfileReport profile;
  bool has_profile = false;
  /// Decoded "attribution" block (empty when the run was produced without
  /// --attribution).
  AttributionReport attr;
  bool has_attr = false;
  /// Decoded "static_model" block (absent before schema v6).
  StaticModel model;
  bool has_model = false;
  /// Fallback phase spans from the plain "phases" array (always present).
  std::vector<std::pair<std::string, double>> phase_cycles;
};

PhaseProfile decode_phase(const Value& p) {
  PhaseProfile ph;
  ph.name = p.str_or("name", "?");
  ph.start = p.num_or("start", 0.0);
  ph.end = ph.start + p.num_or("cycles", 0.0);
  ph.tasks = static_cast<std::uint64_t>(p.num_or("tasks", 0.0));
  ph.alloc_stalls = static_cast<std::uint64_t>(p.num_or("alloc_stalls", 0.0));
  const auto per_category = [](const Value* obj, auto& dst) {
    if (obj == nullptr || !obj->is_object()) return;
    for (const auto& [key, v] : obj->members()) {
      const std::size_t c = gnna::trace::category_by_name(key.c_str());
      if (c < kNumCategories && v.is_number()) {
        dst[c] = static_cast<std::remove_reference_t<decltype(dst[c])>>(
            v.as_number());
      }
    }
  };
  per_category(p.find("busy"), ph.busy);
  per_category(p.find("completes"), ph.completes);
  per_category(p.find("instants"), ph.instants);
  if (const Value* units = p.find("units"); units != nullptr) {
    for (const Value& u : units->items()) {
      const std::size_t c =
          gnna::trace::category_by_name(u.str_or("cat", "").c_str());
      if (c >= kNumCategories) continue;
      ph.units.push_back(
          {static_cast<Category>(c),
           static_cast<std::uint32_t>(u.num_or("unit", 0.0)),
           u.num_or("busy", 0.0),
           static_cast<std::uint64_t>(u.num_or("completes", 0.0)),
           static_cast<std::uint64_t>(u.num_or("instants", 0.0))});
    }
  }
  if (const Value* flame = p.find("flame"); flame != nullptr) {
    for (const Value& f : flame->items()) {
      ph.flame.push_back({f.str_or("path", "?"),
                          static_cast<std::uint64_t>(f.num_or("count", 0.0)),
                          f.num_or("total", 0.0), f.num_or("max", 0.0),
                          f.num_or("self", 0.0)});
    }
  }
  if (const Value* counters = p.find("counters"); counters != nullptr) {
    for (const Value& c : counters->items()) {
      const std::size_t cat =
          gnna::trace::category_by_name(c.str_or("cat", "").c_str());
      if (cat >= kNumCategories) continue;
      ph.counters.push_back(
          {static_cast<Category>(cat), c.str_or("name", "?"),
           static_cast<std::uint64_t>(c.num_or("samples", 0.0)),
           c.num_or("last", 0.0), c.num_or("max", 0.0),
           c.num_or("mean", 0.0)});
    }
  }
  return ph;
}

AttributionReport decode_attribution(const Value& a) {
  AttributionReport ar;
  ar.top_k = static_cast<std::size_t>(a.num_or("top_k", 0.0));
  ar.span = a.num_or("span", 0.0);
  ar.total_busy = a.num_or("total_busy", 0.0);
  ar.unattributed_flits =
      static_cast<std::uint64_t>(a.num_or("unattributed_flits", 0.0));
  if (const Value* tiles = a.find("tiles"); tiles != nullptr) {
    for (const Value& t : tiles->items()) {
      gnna::trace::TileAttribution ta;
      ta.busy = t.num_or("busy", 0.0);
      ta.idle = t.num_or("idle", 0.0);
      ta.agg_busy = t.num_or("agg_busy", 0.0);
      ta.tasks = static_cast<std::uint64_t>(t.num_or("tasks", 0.0));
      ta.flits = static_cast<std::uint64_t>(t.num_or("flits", 0.0));
      ta.flit_hops = static_cast<std::uint64_t>(t.num_or("flit_hops", 0.0));
      ta.bytes = static_cast<std::uint64_t>(t.num_or("bytes", 0.0));
      ar.tiles.push_back(ta);
    }
  }
  if (const Value* verts = a.find("vertices"); verts != nullptr) {
    for (const Value& v : verts->items()) {
      gnna::trace::VertexHotspot vh;
      vh.vertex = static_cast<std::uint32_t>(v.num_or("vertex", 0.0));
      vh.busy = v.num_or("busy", 0.0);
      vh.agg_busy = v.num_or("agg_busy", 0.0);
      vh.tasks = static_cast<std::uint64_t>(v.num_or("tasks", 0.0));
      vh.flits = static_cast<std::uint64_t>(v.num_or("flits", 0.0));
      vh.bytes = static_cast<std::uint64_t>(v.num_or("bytes", 0.0));
      const Value* ap = v.find("approx");
      vh.approx = ap != nullptr && ap->type() == Value::Type::kBool &&
                  ap->as_bool();
      ar.vertices.push_back(vh);
    }
  }
  return ar;
}

LoadedRun load_run(const std::string& path, std::size_t run_index) {
  LoadedRun run;
  run.path = path;
  Value doc = gnna::sim::json::parse_file(path);
  const Value* obj = &doc;
  if (doc.is_array()) {
    if (run_index >= doc.size()) {
      throw std::runtime_error(path + ": batch has " +
                               std::to_string(doc.size()) +
                               " runs, --run " + std::to_string(run_index) +
                               " is out of range");
    }
    obj = &doc.at(run_index);
  }
  if (!obj->is_object()) throw std::runtime_error(path + ": not a run object");
  if (const Value* err = obj->find("error"); err != nullptr) {
    throw std::runtime_error(path + ": run failed: " +
                             (err->is_string() ? err->as_string() : "?"));
  }
  run.program = obj->str_or("program", "?");
  run.config = obj->str_or("config", "?");
  run.cycles = obj->num_or("cycles", 0.0);
  if (const Value* phases = obj->find("phases"); phases != nullptr) {
    for (const Value& p : phases->items()) {
      run.phase_cycles.emplace_back(p.str_or("name", "?"),
                                    p.num_or("cycles", 0.0));
    }
  }
  if (const Value* prof = obj->find("profile"); prof != nullptr) {
    if (const Value* phases = prof->find("phases"); phases != nullptr) {
      for (const Value& p : phases->items()) {
        run.profile.phases.push_back(decode_phase(p));
      }
      run.has_profile = true;
    }
  }
  if (const Value* attr = obj->find("attribution"); attr != nullptr) {
    run.attr = decode_attribution(*attr);
    run.has_attr = true;
  }
  if (const Value* sm = obj->find("static_model"); sm != nullptr) {
    run.model.bound_cycles = sm->num_or("bound_cycles", 0.0);
    if (const Value* phases = sm->find("phases"); phases != nullptr) {
      for (const Value& p : phases->items()) {
        StaticModelPhase mp;
        mp.name = p.str_or("name", "?");
        mp.bound = p.num_or("bound_cycles", 0.0);
        mp.compute = p.num_or("compute_cycles", 0.0);
        mp.memory = p.num_or("memory_cycles", 0.0);
        mp.noc = p.num_or("noc_cycles", 0.0);
        mp.bottleneck = p.str_or("bottleneck", "?");
        mp.imbalance = p.num_or("imbalance", 0.0);
        run.model.phases.push_back(std::move(mp));
      }
    }
    run.has_model = true;
  }
  return run;
}

/// Phase spans to diff: the profile's when present (includes "(outside)"
/// and marker-derived spans), else the plain per-phase stats.
std::vector<std::pair<std::string, double>> diffable_phases(
    const LoadedRun& run) {
  if (!run.has_profile) return run.phase_cycles;
  std::vector<std::pair<std::string, double>> out;
  out.reserve(run.profile.phases.size());
  for (const auto& ph : run.profile.phases) {
    out.emplace_back(ph.name, ph.cycles());
  }
  return out;
}

std::string delta_cell(double a, double b) {
  const double d = b - a;
  std::string s = (d >= 0 ? "+" : "") + format_double(d, 0);
  return s;
}

std::string pct_cell(double a, double b) {
  if (a == 0.0) return b == 0.0 ? "0.0%" : "n/a";
  const double pct = (b - a) / a * 100.0;
  return (pct >= 0 ? "+" : "") + format_double(pct, 2) + "%";
}

/// Collapsed-stack emission: one `a;b;c N` line per merged flame path,
/// weighted by self cycles (the standard flamegraph.pl input, where the
/// tools re-derive inclusive totals by summing descendants).
int cmd_report_collapsed(const LoadedRun& run) {
  if (!run.has_profile) {
    std::cerr << "error: " << run.path << " has no embedded profile "
                 "(rerun gnnasim with --profile)\n";
    return 2;
  }
  for (const FlameNode& f : run.profile.merged_flame()) {
    std::string path = f.path;
    for (char& c : path) {
      if (c == '/') c = ';';
    }
    const auto weight = static_cast<std::uint64_t>(std::llround(f.self));
    std::cout << path << ' ' << weight << '\n';
  }
  return 0;
}

/// Prediction-vs-measurement section: the static model's per-phase lower
/// bounds lined up (by name and occurrence) against the measured spans.
/// Returns the gate result when `tolerance` is set: 1 if the bound exceeds
/// the measurement (model unsound) or undershoots it by more than
/// `tolerance` percent (model too loose), else 0.
int print_static_model(const LoadedRun& run, std::optional<double> tolerance) {
  const StaticModel& sm = run.model;
  std::cout << "\nstatic model (analytic lower bound, accel/analysis.hpp):\n";
  std::map<std::string, std::vector<double>> measured_by_name;
  for (const auto& [name, cycles] : run.phase_cycles) {
    measured_by_name[name].push_back(cycles);
  }
  std::map<std::string, std::size_t> seen;
  Table t({"Phase", "Bound", "Measured", "Bound %", "Bottleneck",
           "Imbalance"});
  for (const StaticModelPhase& mp : sm.phases) {
    const std::size_t occurrence = seen[mp.name]++;
    const auto it = measured_by_name.find(mp.name);
    const double measured = (it != measured_by_name.end() &&
                             occurrence < it->second.size())
                                ? it->second[occurrence]
                                : 0.0;
    t.add_row({mp.name, format_double(mp.bound, 0),
               measured > 0.0 ? format_double(measured, 0) : "-",
               measured > 0.0
                   ? format_double(mp.bound / measured * 100.0, 1) + "%"
                   : "-",
               mp.bottleneck,
               mp.imbalance > 0.0 ? format_double(mp.imbalance, 3) : "-"});
  }
  const double ratio =
      run.cycles > 0.0 ? sm.bound_cycles / run.cycles * 100.0 : 0.0;
  t.add_row({"total", format_double(sm.bound_cycles, 0),
             format_double(run.cycles, 0), format_double(ratio, 1) + "%",
             "", ""});
  t.print(std::cout);

  if (!tolerance) return 0;
  if (sm.bound_cycles > run.cycles) {
    std::cout << "\nMODEL UNSOUND: static lower bound "
              << format_double(sm.bound_cycles, 0)
              << " exceeds measured cycles " << format_double(run.cycles, 0)
              << "\n";
    return 1;
  }
  const double floor = (1.0 - *tolerance / 100.0) * run.cycles;
  if (sm.bound_cycles < floor) {
    std::cout << "\nMODEL TOO LOOSE: static lower bound "
              << format_double(sm.bound_cycles, 0) << " is "
              << format_double(100.0 - ratio, 1)
              << "% below measured cycles, beyond tolerance "
              << format_double(*tolerance, 2) << "%\n";
    return 1;
  }
  std::cout << "\nok: static lower bound at " << format_double(ratio, 1)
            << "% of measured cycles, within tolerance "
            << format_double(*tolerance, 2) << "%\n";
  return 0;
}

int cmd_report(const LoadedRun& run, std::size_t top_n,
               std::optional<double> model_tolerance) {
  std::cout << "run: " << run.program << " on " << run.config << " ("
            << format_double(run.cycles, 0) << " cycles)\n";
  if (model_tolerance && !run.has_model) {
    std::cerr << "error: " << run.path << " has no static_model block "
                 "(rerun gnnasim with schema v6 or newer)\n";
    return 2;
  }
  int rc = 0;
  if (!run.has_profile) {
    std::cout << "no embedded profile (rerun gnnasim with --profile); "
                 "showing phase totals only\n\n";
    Table t({"Phase", "Cycles"});
    for (const auto& [name, cycles] : run.phase_cycles) {
      t.add_row({name, format_double(cycles, 0)});
    }
    t.print(std::cout);
  } else {
    std::cout << '\n';
    gnna::trace::print_profile(std::cout, run.profile, top_n);
  }
  if (run.has_model) rc = print_static_model(run, model_tolerance);
  return rc;
}

/// ASCII heat bar: `value / max` of the bar filled with '#'.
std::string heat_bar(double value, double max, std::size_t width = 20) {
  std::size_t fill = 0;
  if (max > 0.0 && value > 0.0) {
    fill = static_cast<std::size_t>(
        std::llround(value / max * static_cast<double>(width)));
    if (fill == 0) fill = 1;  // nonzero load is always visible
    if (fill > width) fill = width;
  }
  return std::string(fill, '#') + std::string(width - fill, '.');
}

int cmd_hotspots(const LoadedRun& run, std::size_t top_n, bool csv) {
  if (!run.has_attr) {
    std::cerr << "error: " << run.path << " has no attribution block "
                 "(rerun gnnasim with --attribution)\n";
    return 2;
  }
  const AttributionReport& ar = run.attr;
  if (csv) {
    // One flat table; the first column tells tile rows from vertex rows.
    std::cout << "kind,id,busy,idle,agg_busy,tasks,flits,flit_hops,bytes,"
                 "approx\n";
    for (std::size_t i = 0; i < ar.tiles.size(); ++i) {
      const auto& t = ar.tiles[i];
      std::cout << "tile," << i << ',' << format_double(t.busy, 0) << ','
                << format_double(t.idle, 0) << ','
                << format_double(t.agg_busy, 0) << ',' << t.tasks << ','
                << t.flits << ',' << t.flit_hops << ',' << t.bytes << ",\n";
    }
    std::size_t rows = 0;
    for (const auto& v : ar.vertices) {
      if (rows++ >= top_n) break;
      std::cout << "vertex," << v.vertex << ',' << format_double(v.busy, 0)
                << ",," << format_double(v.agg_busy, 0) << ',' << v.tasks
                << ',' << v.flits << ",," << v.bytes << ','
                << (v.approx ? 1 : 0) << '\n';
    }
    return 0;
  }

  std::cout << "run: " << run.program << " on " << run.config << " ("
            << format_double(run.cycles, 0) << " cycles)\n"
            << "attribution: span " << format_double(ar.span, 0)
            << " cycles, GPE busy " << format_double(ar.total_busy, 0)
            << ", busy max/mean " << format_double(ar.busy_max_mean(), 3)
            << ", flit gini " << format_double(ar.flit_gini(), 3) << ", "
            << ar.unattributed_flits << " unattributed flit(s)\n\n";

  double max_busy = 0.0;
  std::uint64_t max_flits = 0;
  for (const auto& t : ar.tiles) {
    max_busy = std::max(max_busy, t.busy);
    max_flits = std::max(max_flits, t.flits);
  }
  std::cout << "per-tile load (heat bars scaled to the hottest tile):\n";
  Table tiles({"Tile", "Busy", "Heat", "Idle", "AGG busy", "Tasks", "Flits",
               "Flit heat", "Flit-hops", "Bytes"});
  for (std::size_t i = 0; i < ar.tiles.size(); ++i) {
    const auto& t = ar.tiles[i];
    tiles.add_row({std::to_string(i), format_double(t.busy, 0),
                   heat_bar(t.busy, max_busy),
                   format_double(t.idle, 0), format_double(t.agg_busy, 0),
                   std::to_string(t.tasks), std::to_string(t.flits),
                   heat_bar(static_cast<double>(t.flits),
                            static_cast<double>(max_flits)),
                   std::to_string(t.flit_hops), std::to_string(t.bytes)});
  }
  tiles.print(std::cout);

  const std::size_t n = std::min(top_n, ar.vertices.size());
  std::cout << "\nvertex hotspots (top " << n << " of " << ar.vertices.size()
            << " captured, table bound top_k=" << ar.top_k
            << "; ~ = upper bound after sketch admission):\n";
  Table verts({"Vertex", "Busy", "AGG busy", "Tasks", "Flits", "Bytes"});
  for (std::size_t i = 0; i < n; ++i) {
    const auto& v = ar.vertices[i];
    verts.add_row({(v.approx ? "~" : "") + std::to_string(v.vertex),
                   format_double(v.busy, 0), format_double(v.agg_busy, 0),
                   std::to_string(v.tasks), std::to_string(v.flits),
                   std::to_string(v.bytes)});
  }
  verts.print(std::cout);
  return 0;
}

int cmd_diff(const LoadedRun& a, const LoadedRun& b,
             std::optional<double> threshold,
             std::optional<double> imbalance_threshold) {
  std::cout << "A: " << a.path << " (" << a.program << " on " << a.config
            << ", " << format_double(a.cycles, 0) << " cycles)\n"
            << "B: " << b.path << " (" << b.program << " on " << b.config
            << ", " << format_double(b.cycles, 0) << " cycles)\n\n";

  // Per-phase cycle deltas, matched by (name, occurrence) so repeated
  // phase names (one per layer) line up positionally.
  const auto pa = diffable_phases(a);
  const auto pb = diffable_phases(b);
  std::map<std::string, std::vector<double>> b_by_name;
  for (const auto& [name, cycles] : pb) b_by_name[name].push_back(cycles);
  std::map<std::string, std::size_t> seen;
  std::size_t one_sided = 0;
  Table phases({"Phase", "A cycles", "B cycles", "Delta", "Delta %"});
  for (const auto& [name, cycles_a] : pa) {
    const std::size_t occurrence = seen[name]++;
    const auto it = b_by_name.find(name);
    if (it == b_by_name.end() || occurrence >= it->second.size()) {
      phases.add_row({name + " (A only)", format_double(cycles_a, 0), "-",
                      "-", "-"});
      ++one_sided;
      continue;
    }
    const double cycles_b = it->second[occurrence];
    phases.add_row({name, format_double(cycles_a, 0),
                    format_double(cycles_b, 0), delta_cell(cycles_a, cycles_b),
                    pct_cell(cycles_a, cycles_b)});
  }
  for (const auto& [name, cycles_list] : b_by_name) {
    const std::size_t matched = seen.count(name) != 0U ? seen[name] : 0;
    for (std::size_t i = matched; i < cycles_list.size(); ++i) {
      phases.add_row({name + " (B only)", "-",
                      format_double(cycles_list[i], 0), "-", "-"});
      ++one_sided;
    }
  }
  phases.add_row({"total", format_double(a.cycles, 0),
                  format_double(b.cycles, 0), delta_cell(a.cycles, b.cycles),
                  pct_cell(a.cycles, b.cycles)});
  phases.print(std::cout);

  // Per-unit-category busy deltas (whole-run sums), when both runs carry
  // a profile.
  if (a.has_profile && b.has_profile) {
    std::cout << "\nPer-unit busy cycles (duration-event sums; gpe/noc "
                 "overlap across units):\n";
    Table units({"Unit", "A busy", "B busy", "Delta", "Delta %"});
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      const auto cat = static_cast<Category>(c);
      const double ba = a.profile.busy_total(cat);
      const double bb = b.profile.busy_total(cat);
      if (ba == 0.0 && bb == 0.0) continue;
      units.add_row({gnna::trace::category_name(cat), format_double(ba, 0),
                     format_double(bb, 0), delta_cell(ba, bb),
                     pct_cell(ba, bb)});
    }
    units.print(std::cout);
  }

  // Per-tile busy-imbalance comparison, when both runs carry attribution.
  const bool both_attr = a.has_attr && b.has_attr;
  double imb_a = 0.0, imb_b = 0.0;
  if (both_attr) {
    imb_a = a.attr.busy_max_mean();
    imb_b = b.attr.busy_max_mean();
    std::cout << "\nPer-tile imbalance (attribution):\n";
    Table imb({"Metric", "A", "B", "Delta %"});
    imb.add_row({"busy max/mean", format_double(imb_a, 3),
                 format_double(imb_b, 3), pct_cell(imb_a, imb_b)});
    imb.add_row({"flit gini", format_double(a.attr.flit_gini(), 3),
                 format_double(b.attr.flit_gini(), 3),
                 pct_cell(a.attr.flit_gini(), b.attr.flit_gini())});
    imb.print(std::cout);
  }

  // Prediction vs measurement, for each run that carries a static model:
  // how tight the analytic lower bound is on each side of the A/B pair.
  if (a.has_model || b.has_model) {
    std::cout << "\nStatic model (analytic lower bound vs measured):\n";
    Table model({"Run", "Bound", "Measured", "Bound %"});
    const auto add = [&model](const char* label, const LoadedRun& r) {
      if (!r.has_model) {
        model.add_row({label, "-", format_double(r.cycles, 0), "-"});
        return;
      }
      model.add_row(
          {label, format_double(r.model.bound_cycles, 0),
           format_double(r.cycles, 0),
           r.cycles > 0.0
               ? format_double(r.model.bound_cycles / r.cycles * 100.0, 1) +
                     "%"
               : "-"});
    };
    add("A", a);
    add("B", b);
    model.print(std::cout);
  }

  const double pct =
      a.cycles != 0.0 ? (b.cycles - a.cycles) / a.cycles * 100.0 : 0.0;
  if (imbalance_threshold) {
    if (!both_attr) {
      std::cerr << "error: --imbalance-threshold needs an attribution block "
                   "in both runs (rerun gnnasim with --attribution)\n";
      return 2;
    }
    const double ipct =
        imb_a != 0.0 ? (imb_b - imb_a) / imb_a * 100.0 : 0.0;
    if (ipct > *imbalance_threshold) {
      std::cout << "\nREGRESSION: busy max/mean "
                << format_double(imb_a, 3) << " -> " << format_double(imb_b, 3)
                << " (" << (ipct >= 0 ? "+" : "") << format_double(ipct, 2)
                << "%) exceeds imbalance threshold "
                << format_double(*imbalance_threshold, 2) << "%\n";
      return 1;
    }
    std::cout << "\nok: busy max/mean " << (ipct >= 0 ? "+" : "")
              << format_double(ipct, 2) << "% within imbalance threshold "
              << format_double(*imbalance_threshold, 2) << "%\n";
  }
  if (threshold) {
    // A phase that appears or disappears is a structural change no cycle
    // percentage can summarize — the gate fails regardless of the total.
    if (one_sided > 0) {
      std::cout << "\nREGRESSION: " << one_sided
                << " phase(s) present in only one run\n";
      return 1;
    }
    if (pct > *threshold) {
      std::cout << "\nREGRESSION: total cycles "
                << (pct >= 0 ? "+" : "") << format_double(pct, 2)
                << "% exceeds threshold " << format_double(*threshold, 2)
                << "%\n";
      return 1;
    }
    std::cout << "\nok: total cycles " << (pct >= 0 ? "+" : "")
              << format_double(pct, 2) << "% within threshold "
              << format_double(*threshold, 2) << "%\n";
  }
  return 0;
}

bool parse_size(const char* s, std::size_t& out) {
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || v < 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  std::size_t run_index = 0;
  std::size_t top_n = 12;
  std::optional<double> threshold;
  std::optional<double> imbalance_threshold;
  std::optional<double> model_tolerance;
  bool collapsed = false;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--run") {
      if (!parse_size(next(), run_index)) {
        std::cerr << "error: --run needs a non-negative integer\n";
        return 2;
      }
    } else if (arg == "--top") {
      if (!parse_size(next(), top_n)) {
        std::cerr << "error: --top needs a non-negative integer\n";
        return 2;
      }
    } else if (arg == "--threshold" || arg == "--imbalance-threshold" ||
               arg == "--model-tolerance") {
      char* end = nullptr;
      const char* v = next();
      const double t = std::strtod(v, &end);
      if (end == v || *end != '\0' || !std::isfinite(t)) {
        std::cerr << "error: " << arg << " needs a percentage\n";
        return 2;
      }
      if (arg == "--threshold") {
        threshold = t;
      } else if (arg == "--imbalance-threshold") {
        imbalance_threshold = t;
      } else {
        model_tolerance = t;
      }
    } else if (arg == "--collapsed") {
      collapsed = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag " << arg << "\n";
      usage(std::cerr);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (positional.empty()) {
    usage(std::cerr);
    return 2;
  }
  const std::string& cmd = positional[0];
  try {
    if (cmd == "report") {
      if (positional.size() != 2) {
        std::cerr << "error: report needs exactly one input file\n";
        return 2;
      }
      const LoadedRun run = load_run(positional[1], run_index);
      return collapsed ? cmd_report_collapsed(run)
                       : cmd_report(run, top_n, model_tolerance);
    }
    if (cmd == "hotspots") {
      if (positional.size() != 2) {
        std::cerr << "error: hotspots needs exactly one input file\n";
        return 2;
      }
      return cmd_hotspots(load_run(positional[1], run_index), top_n, csv);
    }
    if (cmd == "diff") {
      if (positional.size() != 3) {
        std::cerr << "error: diff needs exactly two input files\n";
        return 2;
      }
      return cmd_diff(load_run(positional[1], run_index),
                      load_run(positional[2], run_index), threshold,
                      imbalance_threshold);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "error: unknown command '" << cmd << "'\n";
  usage(std::cerr);
  return 2;
}
