// gnnasim — command-line driver for the GNN accelerator simulator.
//
//   gnnasim --list
//   gnnasim --benchmark GCN/Cora --config cpu-iso-bw --clock 2.4
//   gnnasim --benchmark MPNN/QM9_1000 --config gpu-iso-flops --energy
//   gnnasim --benchmark PGNN/DBLP_1 --threads 32 --partition block
//
// Prints a full run report: latency, utilizations, per-phase breakdown,
// and (with --energy) the estimated energy split.
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "accel/compiler.hpp"
#include "accel/energy.hpp"
#include "accel/runner.hpp"
#include "baseline/baselines.hpp"
#include "common/table.hpp"
#include "trace/trace.hpp"

namespace {

using namespace gnna;

void usage(std::ostream& os) {
  os << "usage: gnnasim [options]\n"
        "  --list                     list benchmarks and configurations\n"
        "  --benchmark <name>         e.g. GCN/Cora (required unless --list)\n"
        "  --config <name>            cpu-iso-bw | gpu-iso-bw | gpu-iso-flops"
        " (default cpu-iso-bw)\n"
        "  --clock <ghz>              core clock in GHz (default 2.4)\n"
        "  --threads <n>              GPE software threads (default 16)\n"
        "  --partition <policy>       round-robin | block (default"
        " round-robin)\n"
        "  --seed <n>                 dataset seed (default 2020)\n"
        "  --energy                   print the energy breakdown\n"
        "  --trace <file>             write a Chrome-trace JSON event log\n"
        "                             (open in chrome://tracing or Perfetto)\n"
        "  --sample-every <cycles>    periodic utilization/occupancy samples\n"
        "  --sample-file <file>       CSV sidecar for the samples (default\n"
        "                             stderr)\n"
        "  --watchdog <cycles>        progress watchdog threshold\n"
        "  --deadlock-report <file>   also write watchdog diagnostics here\n"
        "  --help                     this text\n";
}

// Strict numeric parsers: reject garbage and trailing junk instead of
// letting std::stoull throw out of main().
std::optional<std::uint64_t> parse_u64(const std::string& s) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size() || s.front() == '-') return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<double> parse_f64(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<gnn::Benchmark> parse_benchmark(const std::string& name) {
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    if (gnn::benchmark_name(b) == name) return b;
  }
  return std::nullopt;
}

std::optional<accel::AcceleratorConfig> parse_config(const std::string& name) {
  if (name == "cpu-iso-bw") return accel::AcceleratorConfig::cpu_iso_bw();
  if (name == "gpu-iso-bw") return accel::AcceleratorConfig::gpu_iso_bw();
  if (name == "gpu-iso-flops") {
    return accel::AcceleratorConfig::gpu_iso_flops();
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<gnn::Benchmark> benchmark;
  accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
  graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin;
  double clock_ghz = 2.4;
  std::uint32_t threads = 16;
  std::uint64_t seed = 2020;
  bool want_energy = false;
  std::string trace_path;
  std::string sample_path;
  std::string deadlock_path;
  Cycle sample_every = 0;
  std::optional<Cycle> watchdog;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list") {
      std::cout << "benchmarks:\n";
      for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
        std::cout << "  " << gnn::benchmark_name(b) << '\n';
      }
      std::cout << "configurations:\n  cpu-iso-bw\n  gpu-iso-bw\n"
                   "  gpu-iso-flops\n";
      return 0;
    }
    if (arg == "--benchmark") {
      const auto v = next();
      if (!v || !(benchmark = parse_benchmark(*v))) {
        std::cerr << "error: unknown benchmark; try --list\n";
        return 2;
      }
    } else if (arg == "--config") {
      const auto v = next();
      const auto c = v ? parse_config(*v) : std::nullopt;
      if (!c) {
        std::cerr << "error: unknown config; try --list\n";
        return 2;
      }
      cfg = *c;
    } else if (arg == "--clock") {
      const auto v = next();
      const auto parsed = v ? parse_f64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --clock needs a number (GHz)\n";
        return 2;
      }
      clock_ghz = *parsed;
      if (clock_ghz <= 0.0 || clock_ghz > 2.4 + 1e-9) {
        std::cerr << "error: clock must be in (0, 2.4] GHz (the NoC runs "
                     "at 2.4)\n";
        return 2;
      }
    } else if (arg == "--threads") {
      const auto v = next();
      const auto parsed = v ? parse_u64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --threads needs a count\n";
        return 2;
      }
      threads = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--partition") {
      const auto v = next();
      if (v == std::optional<std::string>("round-robin")) {
        partition = graph::PartitionPolicy::kRoundRobin;
      } else if (v == std::optional<std::string>("block")) {
        partition = graph::PartitionPolicy::kBlock;
      } else {
        std::cerr << "error: unknown partition policy\n";
        return 2;
      }
    } else if (arg == "--seed") {
      const auto v = next();
      const auto parsed = v ? parse_u64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --seed needs a number\n";
        return 2;
      }
      seed = *parsed;
    } else if (arg == "--energy") {
      want_energy = true;
    } else if (arg == "--trace") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --trace needs a file name\n";
        return 2;
      }
      trace_path = *v;
    } else if (arg == "--sample-every") {
      const auto v = next();
      const auto parsed = v ? parse_u64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --sample-every needs a cycle count\n";
        return 2;
      }
      sample_every = *parsed;
    } else if (arg == "--sample-file") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --sample-file needs a file name\n";
        return 2;
      }
      sample_path = *v;
    } else if (arg == "--watchdog") {
      const auto v = next();
      const auto parsed = v ? parse_u64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --watchdog needs a cycle count\n";
        return 2;
      }
      watchdog = *parsed;
    } else if (arg == "--deadlock-report") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --deadlock-report needs a file name\n";
        return 2;
      }
      deadlock_path = *v;
    } else {
      std::cerr << "error: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  if (!benchmark) {
    usage(std::cerr);
    return 2;
  }

  cfg = cfg.with_core_clock(clock_ghz);
  cfg.tile_params.gpe_threads = threads;

  // Build and run (mirrors accel::simulate_benchmark but honours the
  // partition policy).
  const graph::Dataset ds =
      graph::make_dataset(gnn::benchmark_dataset(*benchmark), seed);
  const gnn::ModelSpec model = gnn::make_benchmark_model(*benchmark);
  const accel::CompiledProgram prog =
      accel::ProgramCompiler{}.compile(model, ds);
  accel::AcceleratorSim sim(cfg, partition);
  if (watchdog) sim.set_watchdog_cycles(*watchdog);

  // Observability outputs. The streams must outlive run(); the trace sink's
  // destructor closes the JSON document.
  std::ofstream trace_file;
  std::ofstream sample_file;
  std::optional<trace::ChromeTraceSink> sink;
  accel::TraceOptions topts;
  if (!trace_path.empty()) {
    trace_file.open(trace_path);
    if (!trace_file) {
      std::cerr << "error: cannot open " << trace_path << " for writing\n";
      return 2;
    }
    sink.emplace(trace_file);
    topts.sink = &*sink;
  }
  if (sample_every > 0) {
    topts.sample_every = sample_every;
    if (!sample_path.empty()) {
      sample_file.open(sample_path);
      if (!sample_file) {
        std::cerr << "error: cannot open " << sample_path << " for writing\n";
        return 2;
      }
      topts.sample_out = &sample_file;
    } else {
      topts.sample_out = &std::cerr;
    }
  }
  topts.deadlock_report_path = deadlock_path;
  sim.set_trace(topts);

  accel::RunStats rs;
  try {
    rs = sim.run(prog);
  } catch (const std::runtime_error& e) {
    // Watchdog diagnostics land here; the report is in the message (and in
    // --deadlock-report's file if given).
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  if (sink) {
    sink->close();
    std::cout << "trace: wrote " << sink->events_written() << " events to "
              << trace_path << '\n';
  }

  std::cout << "benchmark : " << gnn::benchmark_name(*benchmark) << '\n';
  std::cout << "config    : " << cfg.name << " @ " << clock_ghz << " GHz, "
            << threads << " GPE threads\n\n";

  Table t({"Metric", "Value"});
  t.add_row({"latency", format_double(rs.millis, 3) + " ms (" +
                            std::to_string(rs.cycles) + " NoC cycles)"});
  t.add_row({"mean memory bandwidth",
             format_double(rs.mean_bandwidth_gbps, 1) + " GB/s (" +
                 format_percent(rs.bandwidth_utilization) + " of peak)"});
  t.add_row({"DNA utilization", format_percent(rs.dna_utilization)});
  t.add_row({"GPE utilization", format_percent(rs.gpe_utilization)});
  t.add_row({"AGG utilization", format_percent(rs.agg_utilization)});
  t.add_row({"work items retired", std::to_string(rs.tasks_completed)});
  t.add_row({"NoC packets", std::to_string(rs.packets_delivered)});
  t.add_row({"avg packet latency",
             format_double(rs.avg_packet_latency, 1) + " cycles"});
  const auto t7 = baseline::table7_row(*benchmark);
  t.add_row({"speedup vs CPU baseline", format_speedup(t7.cpu_ms / rs.millis)});
  t.add_row({"speedup vs GPU baseline", format_speedup(t7.gpu_ms / rs.millis)});
  t.print(std::cout);

  std::cout << "\nper-phase breakdown:\n";
  Table pt({"Phase", "Cycles", "Share", "Mem bytes"});
  for (const auto& ph : rs.phases) {
    pt.add_row({ph.name, std::to_string(ph.cycles),
                format_percent(static_cast<double>(ph.cycles) /
                               static_cast<double>(rs.cycles)),
                std::to_string(ph.mem_bytes_served)});
  }
  pt.print(std::cout);

  if (want_energy) {
    const accel::EnergyBreakdown e = accel::estimate_energy(rs, cfg);
    std::cout << "\nenergy breakdown (activity-counter model):\n";
    Table et({"Component", "uJ", "Share"});
    const auto add = [&](const std::string& n, double uj) {
      et.add_row({n, format_double(uj, 2), format_percent(uj / e.total_uj())});
    };
    add("DRAM", e.dram_uj);
    add("NoC", e.noc_uj);
    add("DNA", e.dna_uj);
    add("AGG", e.agg_uj);
    add("DNQ", e.dnq_uj);
    add("GPE", e.gpe_uj);
    add("leakage", e.leakage_uj);
    et.add_row({"total", format_double(e.total_uj(), 2), "100%"});
    et.print(std::cout);
    std::cout << "DRAM bytes wasted on 64B-line padding: "
              << format_percent(e.dram_waste_fraction) << '\n';
  }
  return 0;
}
