// gnnasim — command-line driver for the GNN accelerator simulator.
//
//   gnnasim --list
//   gnnasim --benchmark GCN/Cora --config cpu-iso-bw --clock 2.4
//   gnnasim --benchmark MPNN/QM9_1000 --config gpu-iso-flops --energy
//   gnnasim --benchmark PGNN/DBLP_1 --threads 32 --partition block
//   gnnasim --batch runs.txt --jobs 4 --json results.json
//
// Prints a full run report: latency, utilizations, per-phase breakdown,
// and (with --energy) the estimated energy split. Batch mode runs every
// line of a manifest through the shared session caches, fanned across
// --jobs worker threads, and reports per-run latencies (machine-readable
// with --json).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "accel/energy.hpp"
#include "accel/ir.hpp"
#include "baseline/baselines.hpp"
#include "common/table.hpp"
#include "mem/memory.hpp"
#include "sim/batch_runner.hpp"
#include "sim/manifest.hpp"
#include "sim/session.hpp"
#include "sim/stats_json.hpp"
#include "trace/profiler.hpp"
#include "trace/trace.hpp"

namespace {

using namespace gnna;

void usage(std::ostream& os) {
  os << "usage: gnnasim [options]\n"
        "  --list                     list benchmarks and configurations\n"
        "  --benchmark <name>         e.g. GCN/Cora (required unless --list"
        " or --batch)\n"
        "  --program <file>           run a GNNA-IR .gnna program instead of\n"
        "                             compiling; --benchmark still names the\n"
        "                             dataset it runs against\n"
        "  --emit-program <file>      compile the benchmark, write it as\n"
        "                             GNNA-IR text, and exit (no simulation)\n"
        "  --config <name>            cpu-iso-bw | gpu-iso-bw | gpu-iso-flops"
        " (default cpu-iso-bw)\n"
        "  --clock <ghz>              core clock in GHz (default 2.4)\n"
        "  --threads <n>              GPE software threads (default 16)\n"
        "  --partition <policy>       round-robin | block | degree-greedy |\n"
        "                             profile-guided (default round-robin;\n"
        "                             profile-guided needs"
        " --attribution-from)\n"
        "  --seed <n>                 dataset seed (default 2020)\n"
        "  --energy                   print the energy breakdown\n"
        "  --batch <manifest>         run one simulation per manifest line\n"
        "                             (key=value tokens; `gnnasim --help-batch'"
        " for the format);\n"
        "                             CLI flags above become per-line"
        " defaults\n"
        "  --jobs <n>                 worker threads for --batch (default 1)\n"
        "  --json <file>              write run stats as JSON (object for a\n"
        "                             single run, array for --batch)\n"
        "  --profile[=<file>]         aggregate a per-phase/per-unit profile;\n"
        "                             printed after the report, embedded in\n"
        "                             --json output, and (with =<file>) also\n"
        "                             written there as JSON for gnnatrace\n"
        "  --attribution[=<file>]     charge work to owning vertices/tiles;\n"
        "                             per-tile totals + top-K hotspots are\n"
        "                             embedded in --json output and (with\n"
        "                             =<file>) also written there as JSON\n"
        "                             for gnnatrace hotspots\n"
        "  --attribution-top-k <n>    hotspot-table bound (default 64; use\n"
        "                             >= the vertex count for an exact\n"
        "                             profiling pass)\n"
        "  --attribution-from <file>  prior run's stats JSON consumed by\n"
        "                             --partition profile-guided\n"
        "  --trace <file>             write a Chrome-trace JSON event log\n"
        "                             (open in chrome://tracing or Perfetto;\n"
        "                             per-run files <file>.runN in --batch)\n"
        "  --sample-every <cycles>    periodic utilization/occupancy samples\n"
        "  --sample-file <file>       CSV sidecar for the samples (default\n"
        "                             stderr; per-run files in --batch)\n"
        "  --watchdog <cycles>        progress watchdog threshold\n"
        "  --deadlock-report <file>   also write watchdog diagnostics here\n"
        "  --verify / --no-verify     static program verification before\n"
        "                             simulating (default on; lint errors\n"
        "                             abort the run — see gnnaverify)\n"
        "  --optimize                 run the program through the GNNA-IR\n"
        "                             pass pipeline (accel::opt), gated by\n"
        "                             the translation validator; the run\n"
        "                             aborts if any pass output cannot be\n"
        "                             proved equivalent (see gnnaopt)\n"
        "  --mem-scheduler <name>     in_order (default; the paper's model)\n"
        "                             | frfcfs (banked open-row reordering\n"
        "                             controller, DESIGN.md §11)\n"
        "  --mem-banks <n>            FR-FCFS: DRAM banks (default 8)\n"
        "  --mem-row-bytes <n>        FR-FCFS: open-row size (default 2048)\n"
        "  --mem-row-hit-ns <ns>      FR-FCFS: open-row access latency\n"
        "                             (default 10)\n"
        "  --mem-row-miss-ns <ns>     FR-FCFS: closed-row access latency\n"
        "                             (default 30)\n"
        "  --mem-window <n>           FR-FCFS: scheduling-window entries\n"
        "                             (default 16)\n"
        "  --mem-bank-xor             FR-FCFS: XOR-permute the bank index\n"
        "                             with the row index so strided access\n"
        "                             patterns spread across banks\n"
        "  --tile-agg-data-bytes <n>  per-tile AGG scratchpad bytes (what\n"
        "                             gnnaverify --fix suggests for GV201)\n"
        "  --tile-dnq-data-bytes <n>  per-tile DNQ scratchpad bytes\n"
        "  --tile-dnq-queue0-sixteenths <n>\n"
        "                             DNQ virtual-queue split: sixteenths of\n"
        "                             the DNQ scratchpad given to queue 0\n"
        "  --help                     this text\n";
}

void usage_batch(std::ostream& os) {
  os << "batch manifest format: one run per line, `#' comments, tokens\n"
        "  benchmark=GCN/Cora config=gpu-iso-bw clock=1.2 threads=32 \\\n"
        "      partition=block seed=7 repeat=4 verify=0\n"
        "`benchmark' is required per line; other keys default to the CLI\n"
        "flags; `repeat=N' expands the line into N identical runs;\n"
        "`verify=0|1' toggles static program verification per line;\n"
        "`optimize=0|1' toggles the validator-gated GNNA-IR optimizer;\n"
        "`program=<file>' loads a GNNA-IR .gnna program instead of\n"
        "compiling (benchmark= still names the dataset).\n"
        "Memory keys mem_scheduler=in_order|frfcfs, mem_banks=N,\n"
        "mem_row_bytes=N, mem_row_hit_ns=X, mem_row_miss_ns=X, mem_window=N,\n"
        "mem_bank_xor=0|1 and tile scratchpad keys tile_agg_data_bytes=N,\n"
        "tile_dnq_data_bytes=N, tile_dnq_queue0_sixteenths=N override the\n"
        "line's configuration; put them after any config= token (config=\n"
        "replaces the whole configuration).\n"
        "Attribution keys: attribution=0|1 toggles the per-vertex/per-tile\n"
        "work-attribution sink, attribution_top_k=N bounds its hotspot\n"
        "table, and partition=profile-guided attribution_from=<stats.json>\n"
        "rebalances the line from a prior run's attribution block.\n";
}

/// "t.json" -> "t.run3.json" (suffix before the extension, if any).
std::string per_run_path(const std::string& path, std::size_t index) {
  const auto slash = path.find_last_of('/');
  const auto dot = path.find_last_of('.');
  const std::string suffix = ".run" + std::to_string(index);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

/// Owns the streams and sinks behind one run's TraceOptions; must outlive
/// the run (the sink's destructor closes the JSON document).
struct TraceFiles {
  std::ofstream trace_file;
  std::ofstream sample_file;
  std::optional<trace::ChromeTraceSink> sink;

  /// Fills `opts` from the CLI paths; returns false (with a message on
  /// stderr) if a file cannot be opened.
  bool open(const std::string& trace_path, const std::string& sample_path,
            Cycle sample_every, const std::string& deadlock_path,
            accel::TraceOptions& opts) {
    if (!trace_path.empty()) {
      trace_file.open(trace_path);
      if (!trace_file) {
        std::cerr << "error: cannot open " << trace_path << " for writing\n";
        return false;
      }
      sink.emplace(trace_file);
      opts.sink = &*sink;
    }
    if (sample_every > 0) {
      opts.sample_every = sample_every;
      if (!sample_path.empty()) {
        sample_file.open(sample_path);
        if (!sample_file) {
          std::cerr << "error: cannot open " << sample_path
                    << " for writing\n";
          return false;
        }
        opts.sample_out = &sample_file;
      } else {
        opts.sample_out = &std::cerr;
      }
    }
    opts.deadlock_report_path = deadlock_path;
    return true;
  }
};

void print_single_run_report(const accel::RunStats& rs, gnn::Benchmark b,
                             const accel::AcceleratorConfig& cfg,
                             double clock_ghz, std::uint32_t threads,
                             bool want_energy) {
  std::cout << "benchmark : " << gnn::benchmark_name(b) << '\n';
  std::cout << "config    : " << cfg.name << " @ " << clock_ghz << " GHz, "
            << threads << " GPE threads\n\n";

  Table t({"Metric", "Value"});
  t.add_row({"latency", format_double(rs.millis, 3) + " ms (" +
                            std::to_string(rs.cycles) + " NoC cycles)"});
  t.add_row({"mean memory bandwidth",
             format_double(rs.mean_bandwidth_gbps, 1) + " GB/s (" +
                 format_percent(rs.bandwidth_utilization) + " of peak)"});
  if (rs.mem_scheduler == "frfcfs") {
    t.add_row({"mem scheduler",
               "frfcfs (row-hit rate " + format_percent(rs.mem_row_hit_rate) +
                   ", mean window occupancy " +
                   format_double(rs.mem_queue_occupancy, 1) + ")"});
  }
  t.add_row({"DNA utilization", format_percent(rs.dna_utilization)});
  t.add_row({"GPE utilization", format_percent(rs.gpe_utilization)});
  t.add_row({"AGG utilization", format_percent(rs.agg_utilization)});
  t.add_row({"work items retired", std::to_string(rs.tasks_completed)});
  t.add_row({"NoC packets", std::to_string(rs.packets_delivered)});
  t.add_row({"avg packet latency",
             format_double(rs.avg_packet_latency, 1) + " cycles"});
  const auto t7 = baseline::table7_row(b);
  t.add_row({"speedup vs CPU baseline", format_speedup(t7.cpu_ms / rs.millis)});
  t.add_row({"speedup vs GPU baseline", format_speedup(t7.gpu_ms / rs.millis)});
  t.print(std::cout);

  std::cout << "\nper-phase breakdown:\n";
  Table pt({"Phase", "Cycles", "Share", "Mem bytes"});
  for (const auto& ph : rs.phases) {
    pt.add_row({ph.name, std::to_string(ph.cycles),
                format_percent(static_cast<double>(ph.cycles) /
                               static_cast<double>(rs.cycles)),
                std::to_string(ph.mem_bytes_served)});
  }
  pt.print(std::cout);

  if (want_energy) {
    const accel::EnergyBreakdown e = accel::estimate_energy(rs, cfg);
    std::cout << "\nenergy breakdown (activity-counter model):\n";
    Table et({"Component", "uJ", "Share"});
    const auto add = [&](const std::string& n, double uj) {
      et.add_row({n, format_double(uj, 2), format_percent(uj / e.total_uj())});
    };
    add("DRAM", e.dram_uj);
    add("NoC", e.noc_uj);
    add("DNA", e.dna_uj);
    add("AGG", e.agg_uj);
    add("DNQ", e.dnq_uj);
    add("GPE", e.gpe_uj);
    add("leakage", e.leakage_uj);
    et.add_row({"total", format_double(e.total_uj(), 2), "100%"});
    et.print(std::cout);
    std::cout << "DRAM bytes wasted on 64B-line padding: "
              << format_percent(e.dram_waste_fraction) << '\n';
  }
}

bool write_json_file(const std::string& path,
                     const std::function<void(std::ostream&)>& emit) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    return false;
  }
  emit(out);
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  std::optional<gnn::Benchmark> benchmark;
  accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
  graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin;
  double clock_ghz = 2.4;
  std::uint32_t threads = 16;
  std::uint64_t seed = 2020;
  bool want_energy = false;
  std::string batch_path;
  std::string json_path;
  bool profile = false;
  std::string profile_path;
  bool attribution = false;
  std::string attribution_path;
  std::optional<std::size_t> attribution_top_k;
  std::string attribution_from;
  unsigned jobs = 1;
  std::string trace_path;
  std::string sample_path;
  std::string deadlock_path;
  Cycle sample_every = 0;
  std::optional<Cycle> watchdog;
  bool verify = true;
  bool optimize = false;
  std::optional<mem::MemScheduler> mem_scheduler;
  std::optional<std::uint32_t> mem_banks;
  std::optional<std::uint32_t> mem_row_bytes;
  std::optional<double> mem_row_hit_ns;
  std::optional<double> mem_row_miss_ns;
  std::optional<std::uint32_t> mem_window;
  bool mem_bank_xor = false;
  std::optional<std::uint32_t> tile_agg_data_bytes;
  std::optional<std::uint32_t> tile_dnq_data_bytes;
  std::optional<std::uint32_t> tile_dnq_queue0_sixteenths;
  std::string program_path;
  std::string emit_program_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--help-batch") {
      usage_batch(std::cout);
      return 0;
    }
    if (arg == "--list") {
      std::cout << "benchmarks:\n";
      for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
        std::cout << "  " << gnn::benchmark_name(b) << '\n';
      }
      std::cout << "configurations:\n  cpu-iso-bw\n  gpu-iso-bw\n"
                   "  gpu-iso-flops\n";
      return 0;
    }
    if (arg == "--benchmark") {
      const auto v = next();
      if (!v || !(benchmark = sim::benchmark_by_name(*v))) {
        std::cerr << "error: unknown benchmark; try --list\n";
        return 2;
      }
    } else if (arg == "--config") {
      const auto v = next();
      const auto c = v ? sim::config_by_name(*v) : std::nullopt;
      if (!c) {
        std::cerr << "error: unknown config; try --list\n";
        return 2;
      }
      cfg = *c;
    } else if (arg == "--clock") {
      const auto v = next();
      const auto parsed = v ? sim::parse_f64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --clock needs a number (GHz)\n";
        return 2;
      }
      clock_ghz = *parsed;
      if (clock_ghz <= 0.0 || clock_ghz > 2.4 + 1e-9) {
        std::cerr << "error: clock must be in (0, 2.4] GHz (the NoC runs "
                     "at 2.4)\n";
        return 2;
      }
    } else if (arg == "--threads") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --threads needs a count\n";
        return 2;
      }
      threads = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--partition") {
      const auto v = next();
      const auto p = v ? sim::partition_by_name(*v) : std::nullopt;
      if (!p) {
        std::cerr << "error: unknown partition policy\n";
        return 2;
      }
      partition = *p;
    } else if (arg == "--seed") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --seed needs a number\n";
        return 2;
      }
      seed = *parsed;
    } else if (arg == "--energy") {
      want_energy = true;
    } else if (arg == "--batch") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --batch needs a manifest file\n";
        return 2;
      }
      batch_path = *v;
    } else if (arg == "--jobs") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed || *parsed < 1 || *parsed > 1024) {
        std::cerr << "error: --jobs needs a count in [1, 1024], got '"
                  << v.value_or("") << "'\n";
        return 2;
      }
      jobs = static_cast<unsigned>(*parsed);
    } else if (arg == "--json") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --json needs a file name\n";
        return 2;
      }
      json_path = *v;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg.rfind("--profile=", 0) == 0) {
      profile = true;
      profile_path = arg.substr(std::strlen("--profile="));
      if (profile_path.empty()) {
        std::cerr << "error: --profile= needs a file name\n";
        return 2;
      }
    } else if (arg == "--attribution") {
      attribution = true;
    } else if (arg.rfind("--attribution=", 0) == 0) {
      attribution = true;
      attribution_path = arg.substr(std::strlen("--attribution="));
      if (attribution_path.empty()) {
        std::cerr << "error: --attribution= needs a file name\n";
        return 2;
      }
    } else if (arg == "--attribution-top-k") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed || *parsed == 0 || *parsed > (1ULL << 24)) {
        std::cerr << "error: --attribution-top-k needs a count in "
                     "[1, 2^24]\n";
        return 2;
      }
      attribution_top_k = static_cast<std::size_t>(*parsed);
    } else if (arg == "--attribution-from") {
      const auto v = next();
      if (!v || v->empty()) {
        std::cerr << "error: --attribution-from needs a stats JSON file\n";
        return 2;
      }
      attribution_from = *v;
    } else if (arg == "--trace") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --trace needs a file name\n";
        return 2;
      }
      trace_path = *v;
    } else if (arg == "--sample-every") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --sample-every needs a cycle count\n";
        return 2;
      }
      sample_every = *parsed;
    } else if (arg == "--sample-file") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --sample-file needs a file name\n";
        return 2;
      }
      sample_path = *v;
    } else if (arg == "--watchdog") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed) {
        std::cerr << "error: --watchdog needs a cycle count\n";
        return 2;
      }
      watchdog = *parsed;
    } else if (arg == "--deadlock-report") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --deadlock-report needs a file name\n";
        return 2;
      }
      deadlock_path = *v;
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--no-verify") {
      verify = false;
    } else if (arg == "--optimize") {
      optimize = true;
    } else if (arg == "--mem-scheduler") {
      const auto v = next();
      const auto s = v ? mem::mem_scheduler_by_name(*v) : std::nullopt;
      if (!s) {
        std::cerr << "error: --mem-scheduler needs in_order | frfcfs\n";
        return 2;
      }
      mem_scheduler = *s;
    } else if (arg == "--mem-banks") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed || *parsed == 0 || *parsed > 1024) {
        std::cerr << "error: --mem-banks needs a count in [1, 1024]\n";
        return 2;
      }
      mem_banks = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--mem-row-bytes") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed || *parsed == 0 || *parsed > (1ULL << 30)) {
        std::cerr << "error: --mem-row-bytes needs a size in [1, 2^30]\n";
        return 2;
      }
      mem_row_bytes = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--mem-row-hit-ns" || arg == "--mem-row-miss-ns") {
      const auto v = next();
      const auto parsed = v ? sim::parse_f64(*v) : std::nullopt;
      if (!parsed || *parsed < 0.0) {
        std::cerr << "error: " << arg << " needs a latency >= 0 (ns)\n";
        return 2;
      }
      if (arg == "--mem-row-hit-ns") {
        mem_row_hit_ns = *parsed;
      } else {
        mem_row_miss_ns = *parsed;
      }
    } else if (arg == "--mem-window") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed || *parsed == 0 || *parsed > 4096) {
        std::cerr << "error: --mem-window needs a count in [1, 4096]\n";
        return 2;
      }
      mem_window = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--mem-bank-xor") {
      mem_bank_xor = true;
    } else if (arg == "--tile-agg-data-bytes" ||
               arg == "--tile-dnq-data-bytes") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed || *parsed == 0 || *parsed > (1ULL << 30)) {
        std::cerr << "error: " << arg << " needs a size in [1, 2^30]\n";
        return 2;
      }
      if (arg == "--tile-agg-data-bytes") {
        tile_agg_data_bytes = static_cast<std::uint32_t>(*parsed);
      } else {
        tile_dnq_data_bytes = static_cast<std::uint32_t>(*parsed);
      }
    } else if (arg == "--tile-dnq-queue0-sixteenths") {
      const auto v = next();
      const auto parsed = v ? sim::parse_u64(*v) : std::nullopt;
      if (!parsed || *parsed > 16) {
        std::cerr << "error: --tile-dnq-queue0-sixteenths needs a value in "
                     "[0, 16]\n";
        return 2;
      }
      tile_dnq_queue0_sixteenths = static_cast<std::uint32_t>(*parsed);
    } else if (arg == "--program") {
      const auto v = next();
      if (!v || v->empty()) {
        std::cerr << "error: --program needs a .gnna file\n";
        return 2;
      }
      program_path = *v;
    } else if (arg == "--emit-program") {
      const auto v = next();
      if (!v || v->empty()) {
        std::cerr << "error: --emit-program needs an output file\n";
        return 2;
      }
      emit_program_path = *v;
    } else {
      std::cerr << "error: unknown option " << arg << "\n";
      usage(std::cerr);
      return 2;
    }
  }

  // Memory overrides apply on top of whichever --config was chosen
  // (flag order doesn't matter).
  if (mem_scheduler) cfg.mem_params.scheduler = *mem_scheduler;
  if (mem_banks) cfg.mem_params.banks = *mem_banks;
  if (mem_row_bytes) cfg.mem_params.row_bytes = *mem_row_bytes;
  if (mem_row_hit_ns) cfg.mem_params.row_hit_ns = *mem_row_hit_ns;
  if (mem_row_miss_ns) cfg.mem_params.row_miss_ns = *mem_row_miss_ns;
  if (mem_window) cfg.mem_params.window_entries = *mem_window;
  if (mem_bank_xor) cfg.mem_params.bank_xor = true;
  if (tile_agg_data_bytes) {
    cfg.tile_params.agg_data_bytes = *tile_agg_data_bytes;
  }
  if (tile_dnq_data_bytes) {
    cfg.tile_params.dnq_data_bytes = *tile_dnq_data_bytes;
  }
  if (tile_dnq_queue0_sixteenths) {
    cfg.tile_params.dnq_queue0_sixteenths = *tile_dnq_queue0_sixteenths;
  }
  try {
    mem::validate(cfg.mem_params);
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }

  sim::Session& session = sim::Session::global();

  // ---- Compile-only mode: emit the benchmark's program as GNNA-IR text.
  if (!emit_program_path.empty()) {
    if (!benchmark) {
      std::cerr << "error: --emit-program needs --benchmark\n";
      return 2;
    }
    if (!batch_path.empty() || !program_path.empty()) {
      std::cerr << "error: --emit-program excludes --batch and --program\n";
      return 2;
    }
    sim::RunRequest req;
    req.benchmark = benchmark;
    req.config = cfg.with_core_clock(clock_ghz);
    req.partition = partition;
    req.seed = seed;
    try {
      const sim::Session::Resolved r = session.resolve(req);
      accel::ir::save_file(*r.program, emit_program_path);
      char hash_buf[32];
      std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                    static_cast<unsigned long long>(r.hash));
      std::cout << "wrote " << emit_program_path << " ("
                << r.program->name << ", hash " << hash_buf << ")\n";
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 1;
    }
    return 0;
  }

  // ---- Batch mode: manifest -> BatchRunner -> summary table / JSON.
  if (!batch_path.empty()) {
    if (!program_path.empty()) {
      std::cerr << "error: --program is single-run only; use program= "
                   "manifest tokens in --batch mode\n";
      return 2;
    }
    std::ifstream manifest(batch_path);
    if (!manifest) {
      std::cerr << "error: cannot open manifest " << batch_path << '\n';
      return 2;
    }
    sim::RunRequest defaults;
    defaults.config = cfg;
    defaults.clock_ghz = clock_ghz;
    defaults.threads = threads;
    defaults.partition = partition;
    defaults.seed = seed;
    defaults.watchdog_cycles = watchdog;
    defaults.verify = verify;
    defaults.optimize = optimize;
    defaults.trace.attribution = attribution;
    if (attribution_top_k) {
      defaults.trace.attribution_top_k = *attribution_top_k;
    }
    defaults.attribution_from = attribution_from;

    std::vector<sim::RunRequest> requests;
    try {
      requests = sim::parse_batch_manifest(manifest, defaults, batch_path);
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 2;
    }
    if (requests.empty()) {
      std::cerr << "error: " << batch_path << " names no runs\n";
      return 2;
    }
    if (want_energy) {
      std::cerr << "warning: --energy is single-run only; ignored in "
                   "--batch mode\n";
    }
    if (profile) {
      for (sim::RunRequest& rq : requests) rq.trace.profile = true;
    }

    // Per-run observability files (a shared sink would interleave events
    // from unrelated runs; per-run files keep each trace self-contained).
    std::vector<std::unique_ptr<TraceFiles>> trace_files(requests.size());
    if (!trace_path.empty() || sample_every > 0 || !deadlock_path.empty()) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        trace_files[i] = std::make_unique<TraceFiles>();
        const std::string tp =
            trace_path.empty() ? "" : per_run_path(trace_path, i);
        const std::string sp =
            sample_path.empty() ? "" : per_run_path(sample_path, i);
        const std::string dp =
            deadlock_path.empty() ? "" : per_run_path(deadlock_path, i);
        if (!trace_files[i]->open(tp, sp, sample_every, dp,
                                  requests[i].trace)) {
          return 2;
        }
      }
    }

    sim::BatchRunner runner(session, jobs);
    runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
      std::cerr << "[gnnasim] run " << i + 1 << '/' << requests.size() << ' '
                << gnn::benchmark_name(*requests[i].benchmark)
                << (r.ok() ? " done (" + format_double(r.stats.millis, 3) +
                                 " ms)"
                           : " FAILED")
                << '\n';
    });
    const std::vector<sim::RunResult> results = runner.run(requests);
    for (auto& tf : trace_files) {
      if (tf && tf->sink) tf->sink->close();
    }

    std::cout << "batch     : " << batch_path << " (" << results.size()
              << " runs, " << runner.jobs() << " jobs)\n\n";
    Table t({"#", "Benchmark", "Config", "GHz", "Thr", "Seed",
             "Latency (ms)", "Cycles"});
    std::size_t failures = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const sim::RunRequest& rq = requests[i];
      const sim::RunResult& r = results[i];
      t.add_row({std::to_string(i), gnn::benchmark_name(*rq.benchmark),
                 rq.config.name, format_double(rq.clock_ghz.value_or(2.4), 1),
                 std::to_string(rq.threads.value_or(16)),
                 std::to_string(rq.seed),
                 r.ok() ? format_double(r.stats.millis, 3) : "error",
                 r.ok() ? std::to_string(r.stats.cycles) : r.error});
      if (!r.ok()) ++failures;
    }
    t.print(std::cout);
    const auto cc = session.cache_counters();
    std::cout << "\ncache     : " << cc.dataset_hits << '/'
              << cc.dataset_hits + cc.dataset_misses << " dataset hits, "
              << cc.program_hits << '/'
              << cc.program_hits + cc.program_misses + cc.program_dedupes
              << " program hits, " << cc.program_dedupes
              << " deduped by IR hash\n";

    if (!json_path.empty() &&
        !write_json_file(json_path, [&](std::ostream& os) {
          sim::write_batch_json(os, results);
        })) {
      return 2;
    }
    if (!profile_path.empty() &&
        !write_json_file(profile_path, [&](std::ostream& os) {
          sim::write_batch_json(os, results);
        })) {
      return 2;
    }
    if (!attribution_path.empty() &&
        !write_json_file(attribution_path, [&](std::ostream& os) {
          sim::write_batch_json(os, results);
        })) {
      return 2;
    }
    if (failures > 0) {
      std::cerr << "error: " << failures << " of " << results.size()
                << " runs failed\n";
      return 1;
    }
    return 0;
  }

  // ---- Single-run mode.
  if (!benchmark) {
    if (!program_path.empty()) {
      std::cerr << "error: --program also needs --benchmark (it names the "
                   "dataset the program runs against)\n";
      return 2;
    }
    usage(std::cerr);
    return 2;
  }

  cfg = cfg.with_core_clock(clock_ghz);
  cfg.tile_params.gpe_threads = threads;

  sim::RunRequest req;
  req.benchmark = benchmark;
  req.program_file = program_path;
  req.config = cfg;
  req.partition = partition;
  req.seed = seed;
  req.watchdog_cycles = watchdog;
  req.verify = verify;
  req.optimize = optimize;
  req.trace.profile = profile;
  req.trace.attribution = attribution;
  if (attribution_top_k) req.trace.attribution_top_k = *attribution_top_k;
  req.attribution_from = attribution_from;

  // Observability outputs. The streams must outlive run(); the trace
  // sink's destructor closes the JSON document.
  TraceFiles tf;
  if (!tf.open(trace_path, sample_path, sample_every, deadlock_path,
               req.trace)) {
    return 2;
  }

  accel::RunStats rs;
  try {
    rs = session.run(req);
  } catch (const std::runtime_error& e) {
    // Watchdog diagnostics land here; the report is in the message (and in
    // --deadlock-report's file if given).
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
  if (tf.sink) {
    tf.sink->close();
    std::cout << "trace: wrote " << tf.sink->events_written() << " events to "
              << trace_path << '\n';
  }

  print_single_run_report(rs, *benchmark, cfg, clock_ghz, threads,
                          want_energy);

  if (rs.profile) {
    std::cout << '\n';
    trace::print_profile(std::cout, *rs.profile);
  }
  if (rs.attribution) {
    const trace::AttributionReport& ar = *rs.attribution;
    std::cout << "\nattribution: " << ar.tiles.size()
              << " tiles, busy max/mean "
              << format_double(ar.busy_max_mean(), 3) << ", flit gini "
              << format_double(ar.flit_gini(), 3) << ", top-"
              << ar.vertices.size()
              << " hotspots captured (gnnatrace hotspots for the tables)\n";
  }

  const auto emit_run = [&](std::ostream& os) {
    sim::write_run_stats_json(os, rs);
    os << '\n';
  };
  if (!json_path.empty() && !write_json_file(json_path, emit_run)) return 2;
  if (!profile_path.empty() && !write_json_file(profile_path, emit_run)) {
    return 2;
  }
  if (!attribution_path.empty() &&
      !write_json_file(attribution_path, emit_run)) {
    return 2;
  }
  return 0;
}
