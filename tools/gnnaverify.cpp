// gnnaverify — lint compiled accelerator programs without simulating.
//
// Runs the accel::verify static-analysis pass (the same one `gnnasim`
// applies before the timing model) over benchmarks or whole batch
// manifests, printing every diagnostic with its stable lint code. Exit
// status: 0 = clean, 1 = lint errors (or warnings under --werror),
// 2 = usage/manifest errors.
//
//   gnnaverify --all                      # lint every Table VII benchmark
//   gnnaverify --benchmark GCN/Cora       # lint one benchmark
//   gnnaverify runs.txt sweeps.txt        # lint every manifest line
//   gnnaverify prog.gnna                  # lint a GNNA-IR program file
//   gnnaverify --bind GCN/Cora prog.gnna  # ... with topology checks too
//   gnnaverify --fix --all                # suggest config fixes for GV2xx
//   gnnaverify --json out.json --all      # machine-readable diagnostics
//   gnnaverify --list-codes               # print the lint-code catalog
//
// Positional files ending in ".gnna" are parsed as GNNA-IR programs and
// linted directly; parse errors count as lint errors. Without --bind the
// dataset-dependent checks are skipped and GV107 reports that (which
// --werror escalates), so CI pipelines should bind the matching benchmark.
//
// --fix runs the static analytic model's search (accel/analysis.hpp) over
// every program that fired a GV2xx performance lint and prints, per code,
// a minimal TileParams/MemParams/split/partition adjustment plus the
// manifest snippet that applies it. Every suggestion is re-linted before
// printing; "verified" means the patched config no longer fires the code.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "accel/analysis.hpp"
#include "accel/ir.hpp"
#include "accel/verify.hpp"
#include "sim/manifest.hpp"
#include "sim/session.hpp"

namespace {

using namespace gnna;

void usage(std::ostream& os) {
  os << "usage: gnnaverify [options] [manifest|file.gnna ...]\n"
        "  manifest...           batch manifests (gnnasim --batch format);\n"
        "                        every line's program is linted, none are\n"
        "                        simulated\n"
        "  file.gnna...          GNNA-IR program files, parsed and linted\n"
        "                        directly (parse errors are lint errors)\n"
        "  --bind <benchmark>    dataset the .gnna files are checked\n"
        "                        against; without it the topology checks\n"
        "                        are skipped and GV107 warns\n"
        "  --benchmark <name>    lint one benchmark (repeatable)\n"
        "  --all                 lint every built-in benchmark\n"
        "  --config <name>       cpu-iso-bw | gpu-iso-bw | gpu-iso-flops\n"
        "                        (default cpu-iso-bw; sets the tile\n"
        "                        parameters programs are checked against\n"
        "                        and the mesh/memory shape GV108 and the\n"
        "                        GV2xx perf lints check)\n"
        "  --partition <policy>  round-robin | block | degree-greedy |\n"
        "                        profile-guided (default round-robin;\n"
        "                        modeled by the GV204 imbalance lint)\n"
        "  --threads <n>         GPE software-thread override\n"
        "  --seed <n>            dataset seed (default 2020)\n"
        "  --fix                 for each GV2xx perf lint, search a minimal\n"
        "                        config adjustment that clears it and print\n"
        "                        the patched manifest snippet\n"
        "  --json <file>         also write all diagnostics (code,\n"
        "                        severity, phase, message) as JSON\n"
        "  --werror              treat warnings as errors\n"
        "  --quiet               print only programs with findings\n"
        "  --list-codes          print the lint-code catalog and exit\n"
        "  --help                this text\n";
}

void print_codes(std::ostream& os) {
  // Grouped by family, pulled from the same table verify.cpp checks
  // against, so the catalog cannot drift from the implementation.
  for (const accel::LintFamily fam :
       {accel::LintFamily::kError, accel::LintFamily::kWarning,
        accel::LintFamily::kPerf}) {
    os << accel::lint_family_name(fam) << ":\n";
    for (const auto& e : accel::lint_code_table()) {
      if (accel::lint_code_family(e.code) != fam) continue;
      os << "  " << e.name << "  "
         << (e.severity == accel::Severity::kError ? "error  " : "warning")
         << "  " << e.summary << '\n';
    }
  }
}

const char* partition_name(graph::PartitionPolicy p) {
  switch (p) {
    case graph::PartitionPolicy::kRoundRobin: return "round-robin";
    case graph::PartitionPolicy::kBlock: return "block";
    case graph::PartitionPolicy::kDegreeGreedy: return "degree-greedy";
    case graph::PartitionPolicy::kProfileGuided: return "profile-guided";
  }
  return "?";
}

/// Dedup key: two requests with the same workload and tile parameters
/// produce the same report (repeat=N manifest lines collapse to one lint).
/// Also the program's name in --json output, so keep it readable.
std::string request_key(const sim::RunRequest& req) {
  std::string k = req.benchmark ? gnn::benchmark_name(*req.benchmark) : "?";
  if (!req.program_file.empty()) k += "|program=" + req.program_file;
  k += "|seed=" + std::to_string(req.seed);
  k += "|config=" + req.config.name;
  if (req.threads) k += "|threads=" + std::to_string(*req.threads);
  k += std::string("|partition=") + partition_name(req.partition);
  // Manifest mem_*/tile_* tokens override config fields without changing
  // its name; fold the lint-relevant ones into the key (only when they
  // differ from the pristine named config) so such lines don't collapse
  // into the base config's report.
  const accel::AcceleratorConfig* base = nullptr;
  static const accel::AcceleratorConfig kBases[] = {
      accel::AcceleratorConfig::cpu_iso_bw(),
      accel::AcceleratorConfig::gpu_iso_bw(),
      accel::AcceleratorConfig::gpu_iso_flops()};
  for (const auto& b : kBases) {
    if (b.name == req.config.name) base = &b;
  }
  const accel::TileParams& tp = req.config.tile_params;
  if (!base || tp.agg_data_bytes != base->tile_params.agg_data_bytes ||
      tp.dnq_data_bytes != base->tile_params.dnq_data_bytes ||
      tp.dnq_queue0_sixteenths != base->tile_params.dnq_queue0_sixteenths) {
    k += "|tile=" + std::to_string(tp.agg_data_bytes) + "," +
         std::to_string(tp.dnq_data_bytes) + "," +
         std::to_string(tp.dnq_queue0_sixteenths);
  }
  const mem::MemParams& mp = req.config.mem_params;
  if (!base || mp.scheduler != base->mem_params.scheduler ||
      mp.banks != base->mem_params.banks ||
      mp.bank_xor != base->mem_params.bank_xor ||
      mp.bank_interleave_bytes != base->mem_params.bank_interleave_bytes) {
    k += "|mem=" + std::to_string(static_cast<int>(mp.scheduler)) + "," +
         std::to_string(mp.banks) + "," +
         std::to_string(mp.bank_interleave_bytes) + "," +
         std::to_string(static_cast<int>(mp.bank_xor));
  }
  return k;
}

[[nodiscard]] bool has_gnna_extension(const std::string& path) {
  const std::string ext = accel::ir::kIrExtension;
  return path.size() > ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

/// One linted program's findings, collected for --json / --fix output.
struct LintedProgram {
  std::string name;  // request key or file path
  accel::VerifyReport report;
  std::vector<accel::FixSuggestion> fixes;
  std::string failure;  // compile/parse error, if any
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Machine-readable diagnostics: the CI verify-programs artifact. v2
/// records the --werror promotion state per diagnostic ("promoted" +
/// "effective_severity"), so the artifact distinguishes a warning the run
/// escalated from a native error.
void write_json(std::ostream& os, const std::vector<LintedProgram>& linted,
                std::size_t errors, std::size_t warnings, bool werror) {
  os << "{\n  \"version\": 2,\n  \"werror\": " << (werror ? "true" : "false")
     << ",\n  \"programs\": [";
  for (std::size_t i = 0; i < linted.size(); ++i) {
    const LintedProgram& lp = linted[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(lp.name) << "\"";
    if (!lp.failure.empty()) {
      os << ", \"failure\": \"" << json_escape(lp.failure) << "\"";
    }
    os << ", \"diagnostics\": [";
    for (std::size_t d = 0; d < lp.report.diagnostics.size(); ++d) {
      const auto& diag = lp.report.diagnostics[d];
      const bool native_error = diag.severity == accel::Severity::kError;
      const bool promoted = werror && !native_error;
      os << (d == 0 ? "\n" : ",\n") << "      {\"code\": \""
         << accel::lint_code_name(diag.code) << "\", \"severity\": \""
         << (native_error ? "error" : "warning")
         << "\", \"effective_severity\": \""
         << (native_error || promoted ? "error" : "warning")
         << "\", \"promoted\": " << (promoted ? "true" : "false")
         << ", \"family\": \""
         << accel::lint_family_name(accel::lint_code_family(diag.code))
         << "\", \"phase\": " << diag.phase << ", \"phase_name\": \""
         << json_escape(diag.phase_name) << "\", \"message\": \""
         << json_escape(diag.message) << "\"}";
    }
    os << (lp.report.diagnostics.empty() ? "]" : "\n    ]");
    if (!lp.fixes.empty()) {
      os << ", \"fixes\": [";
      for (std::size_t f = 0; f < lp.fixes.size(); ++f) {
        const auto& fix = lp.fixes[f];
        os << (f == 0 ? "\n" : ",\n") << "      {\"code\": \""
           << accel::lint_code_name(fix.code) << "\", \"verified\": "
           << (fix.verified ? "true" : "false") << ", \"description\": \""
           << json_escape(fix.description) << "\", \"manifest_snippet\": \""
           << json_escape(fix.manifest_snippet) << "\"}";
      }
      os << "\n    ]";
    }
    os << "}";
  }
  os << (linted.empty() ? "]" : "\n  ]") << ",\n  \"errors\": " << errors
     << ",\n  \"warnings\": " << warnings << "\n}\n";
}

/// Print --fix suggestions for one program.
void print_fixes(std::ostream& os, const LintedProgram& lp) {
  for (const auto& fix : lp.fixes) {
    os << "  fix " << accel::lint_code_name(fix.code)
       << (fix.verified ? " (verified)" : " (NOT verified)") << ": "
       << fix.description << '\n';
    if (!fix.manifest_snippet.empty()) {
      os << "    manifest:\n";
      std::size_t start = 0;
      while (start < fix.manifest_snippet.size()) {
        std::size_t end = fix.manifest_snippet.find('\n', start);
        if (end == std::string::npos) end = fix.manifest_snippet.size();
        os << "      " << fix.manifest_snippet.substr(start, end - start)
           << '\n';
        start = end + 1;
      }
    }
  }
}

[[nodiscard]] bool fired_perf_lint(const accel::VerifyReport& report) {
  for (const auto& d : report.diagnostics) {
    if (accel::lint_code_family(d.code) == accel::LintFamily::kPerf) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> manifests;
  std::vector<std::string> program_files;
  std::vector<gnn::Benchmark> benchmarks;
  std::optional<gnn::Benchmark> bind;
  accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
  std::optional<std::uint32_t> threads;
  graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin;
  std::uint64_t seed = 2020;
  bool werror = false;
  bool quiet = false;
  bool fix = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-codes") {
      print_codes(std::cout);
      return 0;
    }
    if (arg == "--benchmark") {
      const auto v = next();
      const auto b = v ? sim::benchmark_by_name(*v) : std::nullopt;
      if (!b) {
        std::cerr << "error: --benchmark needs a known name (try gnnasim"
                     " --list)\n";
        return 2;
      }
      benchmarks.push_back(*b);
    } else if (arg == "--bind") {
      const auto v = next();
      const auto b = v ? sim::benchmark_by_name(*v) : std::nullopt;
      if (!b) {
        std::cerr << "error: --bind needs a known benchmark name (try"
                     " gnnasim --list)\n";
        return 2;
      }
      bind = *b;
    } else if (arg == "--all") {
      for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
        benchmarks.push_back(b);
      }
    } else if (arg == "--config") {
      const auto v = next();
      const auto c = v ? sim::config_by_name(*v) : std::nullopt;
      if (!c) {
        std::cerr << "error: --config needs cpu-iso-bw | gpu-iso-bw |"
                     " gpu-iso-flops\n";
        return 2;
      }
      cfg = *c;
    } else if (arg == "--partition") {
      const auto v = next();
      const auto p = v ? sim::partition_by_name(*v) : std::nullopt;
      if (!p) {
        std::cerr << "error: --partition needs round-robin | block |"
                     " degree-greedy | profile-guided\n";
        return 2;
      }
      partition = *p;
    } else if (arg == "--threads") {
      const auto v = next();
      const auto n = v ? sim::parse_u64(*v) : std::nullopt;
      if (!n || *n == 0 || *n > 4096) {
        std::cerr << "error: --threads must be in [1, 4096]\n";
        return 2;
      }
      threads = static_cast<std::uint32_t>(*n);
    } else if (arg == "--seed") {
      const auto v = next();
      const auto n = v ? sim::parse_u64(*v) : std::nullopt;
      if (!n) {
        std::cerr << "error: --seed needs a number\n";
        return 2;
      }
      seed = *n;
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg == "--json") {
      const auto v = next();
      if (!v || v->empty()) {
        std::cerr << "error: --json needs a file path\n";
        return 2;
      }
      json_path = *v;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "error: unknown option " << arg << '\n';
      usage(std::cerr);
      return 2;
    } else if (has_gnna_extension(arg)) {
      program_files.push_back(arg);
    } else {
      manifests.push_back(arg);
    }
  }

  // Collect every request to lint.
  std::vector<sim::RunRequest> requests;
  sim::RunRequest defaults;
  defaults.config = cfg;
  defaults.threads = threads;
  defaults.partition = partition;
  defaults.seed = seed;
  for (const std::string& path : manifests) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open manifest " << path << '\n';
      return 2;
    }
    try {
      auto reqs = sim::parse_batch_manifest(in, defaults, path);
      requests.insert(requests.end(), reqs.begin(), reqs.end());
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 2;
    }
  }
  for (const gnn::Benchmark b : benchmarks) {
    sim::RunRequest req = defaults;
    req.benchmark = b;
    requests.push_back(req);
  }
  if (requests.empty() && program_files.empty()) {
    usage(std::cerr);
    return 2;
  }

  sim::Session& session = sim::Session::global();
  std::set<std::string> seen;
  std::vector<LintedProgram> linted;
  std::size_t programs = 0, errors = 0, warnings = 0;

  const auto lint_one = [&](std::string name,
                            const accel::CompiledProgram& prog,
                            const accel::TileParams& params,
                            const graph::Dataset* ds,
                            const accel::AcceleratorConfig& config,
                            graph::PartitionPolicy part) {
    LintedProgram lp;
    lp.name = std::move(name);
    lp.report = accel::verify_program(prog, params, ds, &config, part);
    if (fix && fired_perf_lint(lp.report)) {
      accel::AcceleratorConfig search_cfg = config;
      search_cfg.tile_params = params;  // honor --threads in the search
      accel::AnalysisOptions opt;
      opt.dataset = ds;
      opt.partition = part;
      lp.fixes = accel::suggest_fixes(prog, search_cfg, opt);
    }
    ++programs;
    errors += lp.report.num_errors();
    warnings += lp.report.num_warnings();
    if (!quiet || !lp.report.diagnostics.empty()) {
      lp.report.print(std::cout);
      print_fixes(std::cout, lp);
    }
    linted.push_back(std::move(lp));
  };

  for (const sim::RunRequest& req : requests) {
    if (!seen.insert(request_key(req)).second) continue;
    sim::Session::Resolved resolved;
    try {
      resolved = session.resolve(req);
    } catch (const std::exception& e) {
      // A workload the compiler itself rejects is a lint failure too.
      std::cerr << request_key(req) << ": compile failed: " << e.what()
                << '\n';
      LintedProgram lp;
      lp.name = request_key(req);
      lp.failure = e.what();
      linted.push_back(std::move(lp));
      ++programs;
      ++errors;
      continue;
    }
    accel::TileParams params = req.config.tile_params;
    if (req.threads) params.gpe_threads = *req.threads;
    lint_one(request_key(req), *resolved.program, params,
             resolved.dataset.get(), req.config, req.partition);
  }

  // Direct GNNA-IR files: parse, then lint (against the --bind dataset's
  // topology if given).
  std::shared_ptr<const graph::Dataset> bound;
  if (bind && !program_files.empty()) {
    bound = session.dataset(gnn::benchmark_dataset(*bind), seed);
  }
  accel::TileParams file_params = cfg.tile_params;
  if (threads) file_params.gpe_threads = *threads;
  for (const std::string& path : program_files) {
    accel::CompiledProgram prog;
    try {
      prog = accel::ir::load_file(path);
    } catch (const std::exception& e) {
      // Parse/IO failures are findings the compiler can never emit; they
      // only exist at the file level, so report them here.
      std::cout << path << ": parse failed: " << e.what() << '\n';
      LintedProgram lp;
      lp.name = path;
      lp.failure = e.what();
      linted.push_back(std::move(lp));
      ++programs;
      ++errors;
      continue;
    }
    lint_one(path, prog, file_params, bound.get(), cfg, partition);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "error: cannot write " << json_path << '\n';
      return 2;
    }
    write_json(out, linted, errors, warnings, werror);
  }

  std::cout << "gnnaverify: " << programs << " program(s), " << errors
            << " error(s), " << warnings << " warning(s)\n";
  if (errors > 0) return 1;
  if (werror && warnings > 0) return 1;
  return 0;
}
