// gnnaverify — lint compiled accelerator programs without simulating.
//
// Runs the accel::verify static-analysis pass (the same one `gnnasim`
// applies before the timing model) over benchmarks or whole batch
// manifests, printing every diagnostic with its stable lint code. Exit
// status: 0 = clean, 1 = lint errors (or warnings under --werror),
// 2 = usage/manifest errors.
//
//   gnnaverify --all                      # lint every Table VII benchmark
//   gnnaverify --benchmark GCN/Cora       # lint one benchmark
//   gnnaverify runs.txt sweeps.txt        # lint every manifest line
//   gnnaverify prog.gnna                  # lint a GNNA-IR program file
//   gnnaverify --bind GCN/Cora prog.gnna  # ... with topology checks too
//   gnnaverify --list-codes               # print the lint-code catalog
//
// Positional files ending in ".gnna" are parsed as GNNA-IR programs and
// linted directly; parse errors count as lint errors. Without --bind the
// dataset-dependent checks are skipped and GV107 reports that (which
// --werror escalates), so CI pipelines should bind the matching benchmark.

#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "accel/ir.hpp"
#include "accel/verify.hpp"
#include "sim/manifest.hpp"
#include "sim/session.hpp"

namespace {

using namespace gnna;

void usage(std::ostream& os) {
  os << "usage: gnnaverify [options] [manifest|file.gnna ...]\n"
        "  manifest...           batch manifests (gnnasim --batch format);\n"
        "                        every line's program is linted, none are\n"
        "                        simulated\n"
        "  file.gnna...          GNNA-IR program files, parsed and linted\n"
        "                        directly (parse errors are lint errors)\n"
        "  --bind <benchmark>    dataset the .gnna files are checked\n"
        "                        against; without it the topology checks\n"
        "                        are skipped and GV107 warns\n"
        "  --benchmark <name>    lint one benchmark (repeatable)\n"
        "  --all                 lint every built-in benchmark\n"
        "  --config <name>       cpu-iso-bw | gpu-iso-bw | gpu-iso-flops\n"
        "                        (default cpu-iso-bw; sets the tile\n"
        "                        parameters programs are checked against\n"
        "                        and the mesh/memory shape GV108 checks)\n"
        "  --threads <n>         GPE software-thread override\n"
        "  --seed <n>            dataset seed (default 2020)\n"
        "  --werror              treat warnings as errors\n"
        "  --quiet               print only programs with findings\n"
        "  --list-codes          print the lint-code catalog and exit\n"
        "  --help                this text\n";
}

void print_codes(std::ostream& os) {
  for (const auto& e : accel::lint_code_table()) {
    os << e.name << "  "
       << (e.severity == accel::Severity::kError ? "error  " : "warning")
       << "  " << e.summary << '\n';
  }
}

/// Dedup key: two requests with the same workload and tile parameters
/// produce the same report (repeat=N manifest lines collapse to one lint).
std::string request_key(const sim::RunRequest& req) {
  std::string k = req.benchmark ? gnn::benchmark_name(*req.benchmark) : "?";
  if (!req.program_file.empty()) k += "|program=" + req.program_file;
  k += "|seed=" + std::to_string(req.seed);
  k += "|config=" + req.config.name;
  if (req.threads) k += "|threads=" + std::to_string(*req.threads);
  return k;
}

[[nodiscard]] bool has_gnna_extension(const std::string& path) {
  const std::string ext = accel::ir::kIrExtension;
  return path.size() > ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> manifests;
  std::vector<std::string> program_files;
  std::vector<gnn::Benchmark> benchmarks;
  std::optional<gnn::Benchmark> bind;
  accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
  std::optional<std::uint32_t> threads;
  std::uint64_t seed = 2020;
  bool werror = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-codes") {
      print_codes(std::cout);
      return 0;
    }
    if (arg == "--benchmark") {
      const auto v = next();
      const auto b = v ? sim::benchmark_by_name(*v) : std::nullopt;
      if (!b) {
        std::cerr << "error: --benchmark needs a known name (try gnnasim"
                     " --list)\n";
        return 2;
      }
      benchmarks.push_back(*b);
    } else if (arg == "--bind") {
      const auto v = next();
      const auto b = v ? sim::benchmark_by_name(*v) : std::nullopt;
      if (!b) {
        std::cerr << "error: --bind needs a known benchmark name (try"
                     " gnnasim --list)\n";
        return 2;
      }
      bind = *b;
    } else if (arg == "--all") {
      for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
        benchmarks.push_back(b);
      }
    } else if (arg == "--config") {
      const auto v = next();
      const auto c = v ? sim::config_by_name(*v) : std::nullopt;
      if (!c) {
        std::cerr << "error: --config needs cpu-iso-bw | gpu-iso-bw |"
                     " gpu-iso-flops\n";
        return 2;
      }
      cfg = *c;
    } else if (arg == "--threads") {
      const auto v = next();
      const auto n = v ? sim::parse_u64(*v) : std::nullopt;
      if (!n || *n == 0 || *n > 4096) {
        std::cerr << "error: --threads must be in [1, 4096]\n";
        return 2;
      }
      threads = static_cast<std::uint32_t>(*n);
    } else if (arg == "--seed") {
      const auto v = next();
      const auto n = v ? sim::parse_u64(*v) : std::nullopt;
      if (!n) {
        std::cerr << "error: --seed needs a number\n";
        return 2;
      }
      seed = *n;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      std::cerr << "error: unknown option " << arg << '\n';
      usage(std::cerr);
      return 2;
    } else if (has_gnna_extension(arg)) {
      program_files.push_back(arg);
    } else {
      manifests.push_back(arg);
    }
  }

  // Collect every request to lint.
  std::vector<sim::RunRequest> requests;
  sim::RunRequest defaults;
  defaults.config = cfg;
  defaults.threads = threads;
  defaults.seed = seed;
  for (const std::string& path : manifests) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open manifest " << path << '\n';
      return 2;
    }
    try {
      auto reqs = sim::parse_batch_manifest(in, defaults, path);
      requests.insert(requests.end(), reqs.begin(), reqs.end());
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << '\n';
      return 2;
    }
  }
  for (const gnn::Benchmark b : benchmarks) {
    sim::RunRequest req = defaults;
    req.benchmark = b;
    requests.push_back(req);
  }
  if (requests.empty() && program_files.empty()) {
    usage(std::cerr);
    return 2;
  }

  sim::Session& session = sim::Session::global();
  std::set<std::string> seen;
  std::size_t programs = 0, errors = 0, warnings = 0;
  for (const sim::RunRequest& req : requests) {
    if (!seen.insert(request_key(req)).second) continue;
    sim::Session::Resolved resolved;
    try {
      resolved = session.resolve(req);
    } catch (const std::exception& e) {
      // A workload the compiler itself rejects is a lint failure too.
      std::cerr << request_key(req) << ": compile failed: " << e.what()
                << '\n';
      ++programs;
      ++errors;
      continue;
    }
    accel::TileParams params = req.config.tile_params;
    if (req.threads) params.gpe_threads = *req.threads;
    const accel::VerifyReport report = accel::verify_program(
        *resolved.program, params, resolved.dataset.get(), &req.config);
    ++programs;
    errors += report.num_errors();
    warnings += report.num_warnings();
    if (!quiet || !report.diagnostics.empty()) report.print(std::cout);
  }

  // Direct GNNA-IR files: parse, then lint (against the --bind dataset's
  // topology if given).
  std::shared_ptr<const graph::Dataset> bound;
  if (bind && !program_files.empty()) {
    bound = session.dataset(gnn::benchmark_dataset(*bind), seed);
  }
  accel::TileParams file_params = cfg.tile_params;
  if (threads) file_params.gpe_threads = *threads;
  for (const std::string& path : program_files) {
    ++programs;
    accel::CompiledProgram prog;
    try {
      prog = accel::ir::load_file(path);
    } catch (const std::exception& e) {
      // Parse/IO failures are findings the compiler can never emit; they
      // only exist at the file level, so report them here.
      std::cout << path << ": parse failed: " << e.what() << '\n';
      ++errors;
      continue;
    }
    const accel::VerifyReport report =
        accel::verify_program(prog, file_params, bound.get(), &cfg);
    errors += report.num_errors();
    warnings += report.num_warnings();
    if (!quiet || !report.diagnostics.empty()) report.print(std::cout);
  }

  std::cout << "gnnaverify: " << programs << " program(s), " << errors
            << " error(s), " << warnings << " warning(s)\n";
  if (errors > 0) return 1;
  if (werror && warnings > 0) return 1;
  return 0;
}
