// gnnaopt — optimize GNNA-IR programs, gated by translation validation.
//
// Runs the accel::opt pass pipeline (fuse-phases, dedup-contribs,
// dead-regions, pack-regions) over a .gnna program file, statically
// proving every changing pass equivalent to its input with the
// accel::validate obligations, and writes the optimized program only when
// every proof succeeds. Exit status: 0 = optimized (or already optimal)
// and proven, 1 = refused (unproven rewrite or parse error), 2 = usage.
//
//   gnnaopt prog.gnna                          # optimize in place of stem
//   gnnaopt prog.gnna -o out.gnna              # explicit output
//   gnnaopt --bind GCN/Cora prog.gnna          # + topology obligations
//   gnnaopt --passes dedup-contribs prog.gnna  # pass subset
//   gnnaopt --report report.txt prog.gnna      # write the proof report
//   gnnaopt --list-passes                      # the pass catalog
//
// The validation report prints every obligation of every changing pass
// plus a final end-to-end proof of the whole pipeline (original vs.
// emitted program), so the artifact documents *why* the rewrite is safe.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/ir.hpp"
#include "accel/opt.hpp"
#include "accel/validate.hpp"
#include "sim/manifest.hpp"
#include "sim/session.hpp"

namespace {

using namespace gnna;

void usage(std::ostream& os) {
  os << "usage: gnnaopt [options] <file.gnna>\n"
        "  -o <file>             output path (default: <input stem>"
        ".opt.gnna)\n"
        "  --bind <benchmark>    dataset the program runs against; enables\n"
        "                        the topology-dependent proof obligations\n"
        "                        (walk-tree recomputation, GV012)\n"
        "  --config <name>       cpu-iso-bw | gpu-iso-bw | gpu-iso-flops\n"
        "                        (default cpu-iso-bw; sets the scratchpad\n"
        "                        footprint bound for fusion and the\n"
        "                        cycle-bound obligation)\n"
        "  --seed <n>            dataset seed for --bind (default 2020)\n"
        "  --passes <a,b,...>    pass subset, run in the given order\n"
        "                        (default: the full pipeline)\n"
        "  --report <file>       also write the validation report here\n"
        "  --list-passes         print the pass catalog\n"
        "  --quiet               only print errors\n"
        "  --help                this text\n";
}

std::vector<std::string> split_passes(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string tok;
  while (std::getline(is, tok, ',')) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string output;
  std::string report_path;
  std::optional<gnn::Benchmark> bind;
  accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
  std::uint64_t seed = 2020;
  std::vector<std::string> passes;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    if (arg == "--list-passes") {
      for (const auto& p : accel::opt::pass_catalog()) {
        std::cout << p.name << "\n    " << p.summary << "\n";
      }
      return 0;
    }
    if (arg == "-o") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: -o needs a file path\n";
        return 2;
      }
      output = *v;
    } else if (arg == "--bind") {
      const auto v = next();
      const auto b = v ? sim::benchmark_by_name(*v) : std::nullopt;
      if (!b) {
        std::cerr << "error: --bind needs a known benchmark name (try"
                     " gnnasim --list)\n";
        return 2;
      }
      bind = *b;
    } else if (arg == "--config") {
      const auto v = next();
      const auto c = v ? sim::config_by_name(*v) : std::nullopt;
      if (!c) {
        std::cerr << "error: --config needs cpu-iso-bw | gpu-iso-bw |"
                     " gpu-iso-flops\n";
        return 2;
      }
      cfg = *c;
    } else if (arg == "--seed") {
      const auto v = next();
      const auto n = v ? sim::parse_u64(*v) : std::nullopt;
      if (!n) {
        std::cerr << "error: --seed needs a number\n";
        return 2;
      }
      seed = *n;
    } else if (arg == "--passes") {
      const auto v = next();
      if (!v || v->empty()) {
        std::cerr << "error: --passes needs a comma-separated list\n";
        return 2;
      }
      passes = split_passes(*v);
    } else if (arg == "--report") {
      const auto v = next();
      if (!v) {
        std::cerr << "error: --report needs a file path\n";
        return 2;
      }
      report_path = *v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      if (!input.empty()) {
        std::cerr << "error: exactly one input .gnna file\n";
        return 2;
      }
      input = arg;
    }
  }
  if (input.empty()) {
    std::cerr << "error: no input file\n";
    usage(std::cerr);
    return 2;
  }
  if (output.empty()) {
    const std::string ext = accel::ir::kIrExtension;
    std::string stem = input;
    if (stem.size() > ext.size() &&
        stem.compare(stem.size() - ext.size(), ext.size(), ext) == 0) {
      stem.resize(stem.size() - ext.size());
    }
    output = stem + ".opt" + ext;
  }

  accel::CompiledProgram prog;
  try {
    prog = accel::ir::load_file(input);
  } catch (const std::exception& e) {
    std::cerr << "gnnaopt: cannot load '" << input << "': " << e.what()
              << "\n";
    return 1;
  }

  std::shared_ptr<const graph::Dataset> ds;
  if (bind) {
    ds = sim::Session::global().dataset(gnn::benchmark_dataset(*bind), seed);
  }

  accel::opt::OptimizeOptions oo;
  oo.dataset = ds.get();
  oo.config = &cfg;
  oo.passes = passes;

  accel::opt::OptimizeResult res;
  try {
    res = accel::opt::optimize_program(prog, oo);
  } catch (const std::exception& e) {
    std::cerr << "gnnaopt: " << e.what() << "\n";
    return 2;
  }

  std::ostringstream report;
  report << "program: " << prog.name << "\n"
         << "input:   " << input << " (hash ";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      accel::ir::content_hash(prog)));
    report << buf << ")\n";
  }
  for (const auto& po : res.passes) {
    report << "pass " << po.pass << ": "
           << (po.changed ? "changed" : "no change") << " — " << po.summary
           << "\n";
    if (po.changed) {
      std::istringstream lines(po.validation.to_string());
      std::string line;
      while (std::getline(lines, line)) report << "  " << line << "\n";
    }
  }

  if (!res.validated) {
    report << "REFUSED: " << res.failure << "\n";
    if (!report_path.empty()) {
      std::ofstream rf(report_path);
      rf << report.str();
    }
    std::cerr << report.str();
    std::cerr << "gnnaopt: refusing to emit an unproven program\n";
    return 1;
  }

  // End-to-end proof of the whole pipeline: original vs. emitted program.
  // Stepwise proofs already gate each pass; this documents the composed
  // rewrite in one report block (and would catch a non-composing chain).
  accel::validate::ValidationOptions vo;
  vo.dataset = ds.get();
  vo.config = &cfg;
  const auto whole =
      accel::validate::validate_transform(prog, res.program, vo);
  report << "end-to-end:\n";
  {
    std::istringstream lines(whole.to_string());
    std::string line;
    while (std::getline(lines, line)) report << "  " << line << "\n";
  }
  if (!whole.equivalent) {
    report << "REFUSED: end-to-end proof failed\n";
    if (!report_path.empty()) {
      std::ofstream rf(report_path);
      rf << report.str();
    }
    std::cerr << report.str();
    std::cerr << "gnnaopt: refusing to emit an unproven program\n";
    return 1;
  }

  try {
    accel::ir::save_file(res.program, output);
  } catch (const std::exception& e) {
    std::cerr << "gnnaopt: cannot write '" << output << "': " << e.what()
              << "\n";
    return 1;
  }
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(
                      accel::ir::content_hash(res.program)));
    report << "output:  " << output << " (hash " << buf << ", "
           << (res.changed() ? "optimized" : "already optimal") << ")\n";
  }

  if (!report_path.empty()) {
    std::ofstream rf(report_path);
    if (!rf) {
      std::cerr << "gnnaopt: cannot write report '" << report_path << "'\n";
      return 1;
    }
    rf << report.str();
  }
  if (!quiet) std::cout << report.str();
  return 0;
}
