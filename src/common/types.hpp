// Core identifier and time types shared across the gnna library.
//
// Every module in the simulator speaks in these vocabulary types rather than
// raw integers so that interfaces are self-documenting and so unit mistakes
// (cycles vs nanoseconds, node ids vs tile ids) are hard to make.
#pragma once

#include <cstdint>
#include <limits>

namespace gnna {

/// Simulation time in clock cycles of the component's own clock domain.
using Cycle = std::uint64_t;

/// A count of clock cycles (duration rather than timestamp).
using CycleCount = std::uint64_t;

/// Graph vertex index. Graphs in the evaluation reach ~20k vertices
/// (Pubmed), but synthetic sweeps may go higher, so 32 bits.
using NodeId = std::uint32_t;

/// Graph edge index.
using EdgeId = std::uint32_t;

/// Index of a tile in the accelerator mesh.
using TileId = std::uint16_t;

/// Index of a memory controller node on the mesh perimeter.
using MemNodeId = std::uint16_t;

/// Flat NoC endpoint id (routers are addressed by (x, y); endpoints by id).
using EndpointId = std::uint16_t;

/// Byte address in the simulated flat physical address space.
using Addr = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel for "no endpoint".
inline constexpr EndpointId kInvalidEndpoint =
    std::numeric_limits<EndpointId>::max();

/// Sentinel timestamp meaning "never" / "not scheduled".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

}  // namespace gnna
