// Deterministic pseudo-random number generation.
//
// All synthetic datasets and property tests must be reproducible across
// platforms, so we implement a fixed algorithm (splitmix64 seeding a
// xoshiro256**) instead of relying on std:: distributions whose outputs are
// implementation-defined.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

namespace gnna {

/// splitmix64: used to expand a single seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, reproducible PRNG.
class Rng {
 public:
  constexpr explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr std::uint64_t operator()() { return next(); }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection-free is fine for simulation purposes; bias is < 2^-64*bound.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  constexpr float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Bernoulli trial with probability p.
  constexpr bool next_bool(double p) { return next_double() < p; }

  /// Standard normal via Box-Muller (uses two uniforms; not constexpr
  /// because of std::log/std::cos).
  double next_gaussian() {
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    constexpr double kTwoPi = 6.283185307179586;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  /// Zipf-like sample in [0, n): probability of rank r proportional to
  /// 1/(r+1)^alpha. Used for power-law-ish degree sequences of citation
  /// graphs. Implemented by inverse-transform on the (approximate)
  /// generalized harmonic CDF via exponentiation of a uniform.
  std::uint64_t next_zipf(std::uint64_t n, double alpha) {
    if (n <= 1) return 0;
    // For alpha != 1 the CDF of the continuous analogue is invertible in
    // closed form; we then clamp to the integer support.
    const double u = next_double();
    double x = 0.0;
    if (alpha == 1.0) {
      x = std::pow(static_cast<double>(n), u) - 1.0;
    } else {
      const double one_minus = 1.0 - alpha;
      const double nn = std::pow(static_cast<double>(n), one_minus);
      x = std::pow(u * (nn - 1.0) + 1.0, 1.0 / one_minus) - 1.0;
    }
    auto r = static_cast<std::uint64_t>(x);
    if (r >= n) r = n - 1;
    return r;
  }

  /// Derive an independent stream (for per-component RNGs).
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream) {
    Rng child(state_[0] ^ (stream * 0xD2B74407B1CE6E93ULL));
    child.state_[1] ^= state_[1];
    child.state_[2] ^= state_[2] + stream;
    child.state_[3] ^= state_[3];
    // Decorrelate.
    for (int i = 0; i < 8; ++i) child.next();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace gnna
