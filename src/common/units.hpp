// Physical-unit helpers: bytes, bandwidth, frequency, and the conversions
// between wall-clock time and cycles that the clock-sweep experiments
// (Fig 8) depend on.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace gnna {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;

/// One NoC flit / DRAM access granule is 64 bytes throughout the design
/// (Fig 3: 64B-wide crossbar; Section V: 64B memory access granularity).
inline constexpr std::uint32_t kFlitBytes = 64;

/// Word size used for DNQ ready bits and AGG ALU lanes (32-bit fixed point).
inline constexpr std::uint32_t kWordBytes = 4;

/// Clock frequency in Hz with cycle<->time conversions.
class Frequency {
 public:
  constexpr Frequency() = default;
  constexpr explicit Frequency(double hz) : hz_(hz) {}

  static constexpr Frequency giga_hertz(double ghz) {
    return Frequency(ghz * 1e9);
  }

  [[nodiscard]] constexpr double hz() const { return hz_; }
  [[nodiscard]] constexpr double ghz() const { return hz_ / 1e9; }

  /// Seconds represented by `cycles` at this frequency.
  [[nodiscard]] constexpr double cycles_to_seconds(double cycles) const {
    return cycles / hz_;
  }

  [[nodiscard]] constexpr double cycles_to_millis(double cycles) const {
    return cycles_to_seconds(cycles) * 1e3;
  }

  /// Cycles elapsed in `seconds` at this frequency (rounded up: an event
  /// `seconds` in the future cannot complete mid-cycle).
  [[nodiscard]] constexpr CycleCount seconds_to_cycles(double seconds) const {
    const double c = seconds * hz_;
    const auto floor_c = static_cast<CycleCount>(c);
    return (static_cast<double>(floor_c) < c) ? floor_c + 1 : floor_c;
  }

  [[nodiscard]] constexpr CycleCount nanos_to_cycles(double ns) const {
    return seconds_to_cycles(ns * 1e-9);
  }

 private:
  double hz_ = 1e9;
};

/// Memory / link bandwidth in bytes per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  constexpr explicit Bandwidth(double bytes_per_second)
      : bps_(bytes_per_second) {}

  static constexpr Bandwidth gb_per_s(double gb) { return Bandwidth(gb * 1e9); }

  [[nodiscard]] constexpr double bytes_per_second() const { return bps_; }
  [[nodiscard]] constexpr double gbps() const { return bps_ / 1e9; }

  /// Bytes transferable per cycle at clock `f`.
  [[nodiscard]] constexpr double bytes_per_cycle(Frequency f) const {
    return bps_ / f.hz();
  }

  /// Seconds to move `bytes` at this bandwidth.
  [[nodiscard]] constexpr double seconds_for(double bytes) const {
    return bytes / bps_;
  }

 private:
  double bps_ = 1e9;
};

/// Round `bytes` up to whole 64B lines (memory controller granularity:
/// unaligned / partial requests waste DRAM bandwidth but not NoC bandwidth).
[[nodiscard]] constexpr std::uint64_t round_up_to_line(std::uint64_t bytes) {
  return (bytes + kFlitBytes - 1) / kFlitBytes * kFlitBytes;
}

/// Number of 64B flits needed to carry `bytes` of payload.
[[nodiscard]] constexpr std::uint32_t flits_for_bytes(std::uint64_t bytes) {
  return static_cast<std::uint32_t>((bytes + kFlitBytes - 1) / kFlitBytes);
}

}  // namespace gnna
