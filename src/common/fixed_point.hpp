// 32-bit fixed-point arithmetic matching the accelerator datapath
// (Table I: 32-bit fixed point; AGG: bank of 16 32-bit ALUs).
//
// The functional GNN executor runs in float for numerical comparisons, but
// the AGG model aggregates in Fixed32 so tests can assert bit-exact
// order-independence of associative reductions — the property the paper's
// AGG design relies on ("only supports aggregation operations that are
// associative, which allows data to be aggregated in any order").
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <limits>

namespace gnna {

/// Q16.16 signed fixed point with saturating arithmetic.
class Fixed32 {
 public:
  static constexpr int kFracBits = 16;
  static constexpr std::int64_t kOne = std::int64_t{1} << kFracBits;

  constexpr Fixed32() = default;

  static constexpr Fixed32 from_raw(std::int32_t raw) {
    Fixed32 f;
    f.raw_ = raw;
    return f;
  }

  static constexpr Fixed32 from_int(std::int32_t v) {
    return from_raw(saturate(static_cast<std::int64_t>(v) << kFracBits));
  }

  static constexpr Fixed32 from_double(double v) {
    // Round-to-nearest keeps conversion error <= 2^-17.
    const double scaled = v * static_cast<double>(kOne);
    const double rounded = scaled >= 0 ? scaled + 0.5 : scaled - 0.5;
    return from_raw(saturate(static_cast<std::int64_t>(rounded)));
  }

  [[nodiscard]] constexpr std::int32_t raw() const { return raw_; }
  [[nodiscard]] constexpr double to_double() const {
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  friend constexpr Fixed32 operator+(Fixed32 a, Fixed32 b) {
    return from_raw(saturate(static_cast<std::int64_t>(a.raw_) + b.raw_));
  }
  friend constexpr Fixed32 operator-(Fixed32 a, Fixed32 b) {
    return from_raw(saturate(static_cast<std::int64_t>(a.raw_) - b.raw_));
  }
  friend constexpr Fixed32 operator*(Fixed32 a, Fixed32 b) {
    const std::int64_t p =
        (static_cast<std::int64_t>(a.raw_) * b.raw_) >> kFracBits;
    return from_raw(saturate(p));
  }

  friend constexpr bool operator==(Fixed32 a, Fixed32 b) = default;
  friend constexpr auto operator<=>(Fixed32 a, Fixed32 b) {
    return a.raw_ <=> b.raw_;
  }

  [[nodiscard]] static constexpr Fixed32 min_value() {
    return from_raw(std::numeric_limits<std::int32_t>::min());
  }
  [[nodiscard]] static constexpr Fixed32 max_value() {
    return from_raw(std::numeric_limits<std::int32_t>::max());
  }

 private:
  static constexpr std::int32_t saturate(std::int64_t v) {
    constexpr std::int64_t lo = std::numeric_limits<std::int32_t>::min();
    constexpr std::int64_t hi = std::numeric_limits<std::int32_t>::max();
    return static_cast<std::int32_t>(std::clamp(v, lo, hi));
  }

  std::int32_t raw_ = 0;
};

/// Reduction operators a model may request for its aggregation stage.
/// The AGG hardware executes only the associative ones ("the AGG only
/// supports aggregation operations that are associative"); kMean is a
/// streaming mean, which needs a running element count and is therefore
/// NOT order-independent on the 16-ALU bank — the static verifier
/// (accel::verify, GV003) rejects programs that ask for it.
enum class ReduceOp : std::uint8_t {
  kSum,
  kMax,
  kMin,
  kMean,
};

/// Whether the AGG ALU bank can execute `op` in arrival order.
[[nodiscard]] constexpr bool is_associative(ReduceOp op) {
  return op == ReduceOp::kSum || op == ReduceOp::kMax || op == ReduceOp::kMin;
}

[[nodiscard]] constexpr Fixed32 apply_reduce(ReduceOp op, Fixed32 a,
                                             Fixed32 b) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kMean:  // accumulate; the divide would need a count
      return a + b;
    case ReduceOp::kMax:
      return b > a ? b : a;
    case ReduceOp::kMin:
      return b < a ? b : a;
  }
  return a;
}

/// Identity element for each reduction so the AGG can initialize entries.
[[nodiscard]] constexpr Fixed32 reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
    case ReduceOp::kMean:
      return Fixed32{};
    case ReduceOp::kMax:
      return Fixed32::min_value();
    case ReduceOp::kMin:
      return Fixed32::max_value();
  }
  return Fixed32{};
}

}  // namespace gnna
