// Lightweight statistics collection used by every simulated component.
//
// Components expose named Counter / Accumulator / Histogram members; the
// simulator harvests them into reports at the end of a run. None of these
// allocate on the hot path.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gnna {

/// Monotonic event counter.
class Counter {
 public:
  constexpr void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  constexpr void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Running mean / min / max / sum of a real-valued sample stream.
/// Variance uses Welford's online algorithm: the naive sum-of-squares
/// formula catastrophically cancels for large-magnitude samples (e.g.
/// cycle timestamps), where (sum_sq - sum^2/n) subtracts two nearly equal
/// huge numbers and loses every significant digit of the variance.
///
/// Samples may carry a weight (add_weighted): mean()/stddev()/sum() are
/// then weight-denominated, which turns a change-sampled series into a
/// time-weighted one when the weight is "cycles spent at this value".
/// add(x) is exactly add_weighted(x, 1.0) — for unit weights every result
/// is bit-identical to the unweighted accumulator.
class Accumulator {
 public:
  constexpr void add(double x) { add_weighted(x, 1.0); }

  /// Weighted sample. A zero (or negative) weight updates only the
  /// min/max extrema and the sample count — useful to keep max() exact
  /// for a change-sampled series whose final value never accrues time.
  constexpr void add_weighted(double x, double w) {
    count_ += 1;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    if (w <= 0.0) return;
    sum_ += x * w;
    wsum_ += w;
    const double delta = x - mean_;
    mean_ += delta * w / wsum_;
    m2_ += w * delta * (x - mean_);
  }

  [[nodiscard]] constexpr std::uint64_t count() const { return count_; }
  /// Total weight observed (== count() minus zero-weight samples when all
  /// weights are 1.0).
  [[nodiscard]] constexpr double weight() const { return wsum_; }
  [[nodiscard]] constexpr double sum() const { return sum_; }
  [[nodiscard]] constexpr double mean() const {
    return wsum_ == 0.0 ? 0.0 : mean_;
  }
  [[nodiscard]] double stddev() const {
    if (wsum_ < 2.0) return 0.0;
    const double var = m2_ / (wsum_ - 1.0);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }
  [[nodiscard]] constexpr double min() const {
    return count_ == 0 ? 0.0 : min_;
  }
  [[nodiscard]] constexpr double max() const {
    return count_ == 0 ? 0.0 : max_;
  }

  constexpr void reset() { *this = Accumulator{}; }

 private:
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double wsum_ = 0.0;
  std::uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bucket histogram with an overflow bucket; used for NoC
/// latency distributions and queue occupancies.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t bucket_count)
      : width_(bucket_width), buckets_(bucket_count + 1, 0) {}

  void add(double x) {
    acc_.add(x);
    auto idx = static_cast<std::size_t>(x / width_);
    if (idx >= buckets_.size() - 1) idx = buckets_.size() - 1;
    ++buckets_[idx];
  }

  [[nodiscard]] const Accumulator& accumulator() const { return acc_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_.at(i);
  }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] double bucket_width() const { return width_; }

  /// Value below which `q` (in [0,1]) of the samples fall, linearly
  /// interpolated within the bucket.
  [[nodiscard]] double quantile(double q) const {
    const std::uint64_t total = acc_.count();
    if (total == 0) return 0.0;
    const double target = q * static_cast<double>(total);
    double seen = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      const double next = seen + static_cast<double>(buckets_[i]);
      if (next >= target) {
        const double frac =
            buckets_[i] == 0
                ? 0.0
                : (target - seen) / static_cast<double>(buckets_[i]);
        return (static_cast<double>(i) + frac) * width_;
      }
      seen = next;
    }
    return static_cast<double>(buckets_.size()) * width_;
  }

 private:
  double width_;
  std::vector<std::uint64_t> buckets_;
  Accumulator acc_;
};

/// Utilization tracker: fraction of cycles a unit was busy, with support for
/// windowed bandwidth accounting ("never exceeds X bytes over any window").
class BusyTracker {
 public:
  constexpr void tick(bool busy) {
    ++total_;
    if (busy) ++busy_;
  }

  [[nodiscard]] constexpr std::uint64_t busy_cycles() const { return busy_; }
  [[nodiscard]] constexpr std::uint64_t total_cycles() const { return total_; }
  [[nodiscard]] constexpr double utilization() const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(busy_) /
                             static_cast<double>(total_);
  }

 private:
  std::uint64_t busy_ = 0;
  std::uint64_t total_ = 0;
};

/// Named scalar for report tables.
struct StatEntry {
  std::string name;
  double value = 0.0;
};

}  // namespace gnna
