// Plain-text table printer used by the bench binaries to reproduce the
// paper's tables and figure series in a uniform format.
#pragma once

#include <cstdio>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace gnna {

/// Column-aligned ASCII table. Usage:
///   Table t({"Input Graph", "Latency (ms)"});
///   t.add_row({"Cora", format_double(0.791, 3)});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& row) {
      os << '|';
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string{};
        os << ' ' << std::left << std::setw(static_cast<int>(widths[i]))
           << cell << " |";
      }
      os << '\n';
    };
    auto print_rule = [&] {
      os << '|';
      for (const auto w : widths) os << std::string(w + 2, '-') << '|';
      os << '\n';
    };

    print_rule();
    print_row(header_);
    print_rule();
    for (const auto& r : rows_) print_row(r);
    print_rule();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting for table cells.
[[nodiscard]] inline std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

/// "12.3x" style speedup cell.
[[nodiscard]] inline std::string format_speedup(double v) {
  return format_double(v, 2) + "x";
}

/// "79%" style percentage cell.
[[nodiscard]] inline std::string format_percent(double fraction) {
  return format_double(fraction * 100.0, 1) + "%";
}

}  // namespace gnna
