// Builders for the four benchmark GNN models (Section V) and the
// benchmark/input pairs of the evaluation (Table VII).
#pragma once

#include <cstdint>
#include <string>

#include "gnn/layer.hpp"
#include "graph/dataset.hpp"

namespace gnna::gnn {

/// Graph Convolutional Network (Kipf & Welling): two kConv layers with the
/// symmetric renormalized adjacency; hidden width 16, ReLU.
[[nodiscard]] ModelSpec make_gcn(std::uint32_t in_features,
                                 std::uint32_t out_features,
                                 std::uint32_t hidden = 16);

/// Graph Attention Network (Velickovic et al.), Cora configuration: 8 heads
/// of width 8 then a single-head output layer. The attention normalization
/// (softmax over coefficients) is dropped, as in the paper's accelerator
/// implementation (Section VI).
[[nodiscard]] ModelSpec make_gat(std::uint32_t in_features,
                                 std::uint32_t out_features,
                                 std::uint32_t heads = 8,
                                 std::uint32_t head_width = 8);

/// Message Passing Neural Network (Gilmer et al.): embedding to hidden
/// width d, T message-passing steps with an edge-network + GRU update, and
/// a sum readout to the output width.
[[nodiscard]] ModelSpec make_mpnn(std::uint32_t in_features,
                                  std::uint32_t edge_features,
                                  std::uint32_t out_features,
                                  std::uint32_t hidden = 64,
                                  std::uint32_t steps = 3);

/// Power GNN (Chen, Li & Bruna's LGNN power-of-adjacency component): each
/// layer sums terms over A^(2^j), j = 0..hops-1, plus a self term; the
/// multi-hop traversal dominates and the per-vertex dense work is tiny.
[[nodiscard]] ModelSpec make_pgnn(std::uint32_t in_features,
                                  std::uint32_t out_features,
                                  std::uint32_t hidden = 8,
                                  std::uint32_t hops = 3,
                                  std::uint32_t layers = 2);

/// The six benchmark/input pairs of Table VII, in paper order.
enum class Benchmark : std::uint8_t {
  kGcnCora,
  kGcnCiteseer,
  kGcnPubmed,
  kGatCora,
  kMpnnQm9,
  kPgnnDblp,
};

inline constexpr Benchmark kAllBenchmarks[] = {
    Benchmark::kGcnCora,   Benchmark::kGcnCiteseer, Benchmark::kGcnPubmed,
    Benchmark::kGatCora,   Benchmark::kMpnnQm9,     Benchmark::kPgnnDblp,
};

[[nodiscard]] std::string benchmark_name(Benchmark b);
[[nodiscard]] graph::DatasetId benchmark_dataset(Benchmark b);

/// Model sized for the benchmark's dataset (feature widths from Table V).
[[nodiscard]] ModelSpec make_benchmark_model(Benchmark b);

}  // namespace gnna::gnn
