#include "gnn/workload.hpp"

namespace gnna::gnn {
namespace {

constexpr std::uint64_t kWord = 4;

struct GraphCounts {
  std::uint64_t nodes = 0;
  std::uint64_t sym_edges = 0;  // directed count after symmetrization
  std::uint64_t graphs = 0;
};

GraphCounts count_graphs(const graph::Dataset& ds) {
  GraphCounts c;
  c.graphs = ds.graphs.size();
  for (const auto& g : ds.graphs) c.nodes += g.num_nodes();
  for (const auto& g : ds.undirected) c.sym_edges += g.num_edges();
  return c;
}

}  // namespace

WorkProfile profile_work(const ModelSpec& model, const graph::Dataset& ds) {
  const GraphCounts gc = count_graphs(ds);
  WorkProfile wp;

  std::uint32_t cur_width = model.input_features();
  for (const LayerSpec& l : model.layers) {
    LayerWork w;
    w.name = l.name;
    const std::uint64_t n = gc.nodes;
    const std::uint64_t s = gc.sym_edges;
    const std::uint64_t contribs = s + (l.include_self ? n : 0);

    switch (l.kind) {
      case LayerKind::kProject:
        w.dense_macs = n * l.in_features * l.out_features;
        w.launches = gc.graphs * 2;
        break;
      case LayerKind::kConv:
        w.dense_macs = n * l.in_features * l.out_features;
        w.agg_adds = contribs * l.out_features;  // aggregate in out space
        w.structure_bytes = (n + s) * kWord +
                            (l.norm != AggNorm::kSum ? s * kWord : 0);
        w.launches = gc.graphs * 3;
        break;
      case LayerKind::kAttentionConv: {
        w.dense_macs = n * l.in_features * l.out_features;
        // Per edge (and self), per head: 2*head_width coefficient MACs plus
        // head_width scaling MACs.
        w.edge_macs =
            contribs * l.heads * (3ULL * l.head_width());
        w.agg_adds = contribs * l.out_features;
        w.structure_bytes = (n + s) * kWord;
        w.launches = gc.graphs * (3 + 3ULL * l.heads);
        break;
      }
      case LayerKind::kMessagePass: {
        const std::uint64_t d = l.out_features;
        // Edge network (two-layer MLP ef -> hidden -> d*d) and message
        // matvec per directed edge.
        w.edge_macs =
            s * (std::uint64_t{l.edge_features} * l.edge_hidden +
                 std::uint64_t{l.edge_hidden} * d * d + d * d);
        // GRU: six d x d gate matmuls per vertex.
        w.dense_macs = n * 6 * d * d;
        w.agg_adds = s * d;
        w.structure_bytes = (n + s) * kWord;
        w.launches = gc.graphs * 12;
        break;
      }
      case LayerKind::kMultiHopConv: {
        const std::uint64_t applications =
            l.hops == 0 ? 0 : (std::uint64_t{1} << (l.hops - 1));
        w.agg_adds = applications * s * l.in_features;
        w.dense_macs =
            n * (std::uint64_t{l.hops} + 1) * l.in_features * l.out_features;
        w.structure_bytes = applications * (n + s) * kWord;
        w.launches = gc.graphs * (applications + l.hops + 3);
        break;
      }
      case LayerKind::kReadout:
        w.agg_adds = n * l.in_features;  // pooling
        w.dense_macs = gc.graphs * l.in_features * l.out_features;
        w.launches = gc.graphs * 2;
        break;
    }

    w.feature_read_bytes = n * cur_width * kWord;
    w.feature_write_bytes =
        (l.kind == LayerKind::kReadout ? gc.graphs : n) * l.out_features *
        kWord;
    // Gathered neighbor traffic counts as reads too (cache-unfriendly).
    if (l.kind == LayerKind::kConv || l.kind == LayerKind::kAttentionConv ||
        l.kind == LayerKind::kMessagePass) {
      w.feature_read_bytes += contribs * l.out_features * kWord;
    }
    if (l.kind == LayerKind::kMultiHopConv) {
      const std::uint64_t applications =
          l.hops == 0 ? 0 : (std::uint64_t{1} << (l.hops - 1));
      w.feature_read_bytes += applications * s * l.in_features * kWord;
    }

    switch (l.kind) {
      case LayerKind::kAttentionConv:
        w.weight_bytes = std::uint64_t{l.in_features} * l.out_features * kWord +
                         l.heads * 2ULL * l.head_width() * kWord;
        break;
      case LayerKind::kMessagePass: {
        const std::uint64_t d = l.out_features;
        w.weight_bytes = (std::uint64_t{l.edge_features} * l.edge_hidden +
                          std::uint64_t{l.edge_hidden} * d * d + 6 * d * d) *
                         kWord;
        break;
      }
      case LayerKind::kMultiHopConv:
        w.weight_bytes = (std::uint64_t{l.hops} + 1) * l.in_features *
                         l.out_features * kWord;
        break;
      default:
        w.weight_bytes =
            std::uint64_t{l.in_features} * l.out_features * kWord;
        break;
    }

    cur_width = l.out_features;
    wp.layers.push_back(std::move(w));
  }
  return wp;
}

}  // namespace gnna::gnn
