// Layer-level intermediate representation of a GNN model.
//
// Both execution paths consume this IR:
//  * the FunctionalExecutor (src/gnn/functional.*) computes actual outputs
//    with dense/sparse linear algebra — used to validate semantics;
//  * the accelerator's ProgramCompiler (src/accel/compiler.*) lowers each
//    layer to the per-vertex micro-op programs the GPE executes — used to
//    produce the paper's timing results.
//
// The IR deliberately mirrors how the paper decomposes GNNs (Section III):
// graph traversal, DNN computation (vertex-local dense ops), and
// aggregation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gnna::gnn {

/// What a layer does with each vertex's neighborhood.
enum class LayerKind : std::uint8_t {
  kProject,       // per-vertex FC, no neighbor exchange (MPNN embedding)
  kConv,          // graph convolution: aggregate projected neighbors (GCN)
  kAttentionConv, // convolution with per-edge attention coefficients (GAT)
  kMessagePass,   // edge-network messages + GRU state update (MPNN)
  kMultiHopConv,  // sum over powers of A (PGNN / LGNN power term)
  kReadout,       // graph-level reduction + FC (MPNN output)
};

/// Neighborhood normalization applied during aggregation.
enum class AggNorm : std::uint8_t {
  kSum,      // plain sum
  kMean,     // 1/deg
  kSymNorm,  // 1/sqrt(deg_v * deg_u)  (GCN renormalization trick)
};

enum class Activation : std::uint8_t {
  kNone,
  kRelu,
  kLeakyRelu,  // slope 0.2 (GAT)
  kTanh,
  kSigmoid,
};

/// One layer of the model.
struct LayerSpec {
  std::string name;
  LayerKind kind = LayerKind::kConv;
  std::uint32_t in_features = 1;
  std::uint32_t out_features = 1;
  Activation act = Activation::kNone;
  AggNorm norm = AggNorm::kSum;
  bool include_self = true;  // add the vertex itself to its neighborhood

  // kAttentionConv: number of attention heads; out_features is the *total*
  // width (heads * per-head width), per-head width = out_features / heads.
  std::uint32_t heads = 1;

  // kMessagePass: edge-feature width consumed by the edge network, and the
  // hidden width of the two-layer edge MLP (Gilmer's "edge network")
  // producing the d x d message matrix.
  std::uint32_t edge_features = 0;
  std::uint32_t edge_hidden = 128;

  // kMultiHopConv: number of adjacency-power terms; term j applies A^(2^j),
  // j = 0..hops-1, plus a self term H * W_self.
  std::uint32_t hops = 1;

  [[nodiscard]] std::uint32_t head_width() const {
    return heads == 0 ? out_features : out_features / heads;
  }
};

/// A whole model: an ordered sequence of layers (Algorithm 1's `layers`).
struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;
  std::uint64_t weight_seed = 7;

  [[nodiscard]] std::uint32_t input_features() const {
    return layers.empty() ? 0 : layers.front().in_features;
  }
  [[nodiscard]] std::uint32_t output_features() const {
    return layers.empty() ? 0 : layers.back().out_features;
  }
};

[[nodiscard]] std::string to_string(LayerKind kind);
[[nodiscard]] std::string to_string(Activation act);

}  // namespace gnna::gnn
