// Deterministic weight generation for the functional executor.
//
// Inference weights are immaterial to timing (the simulator never looks at
// values), but the functional path needs real numbers so tests can compare
// executor output against independent references. Weights are a pure
// function of (ModelSpec::weight_seed, layer index), so every component in
// the repo sees the same model.
#pragma once

#include <vector>

#include "gnn/layer.hpp"
#include "linalg/matrix.hpp"

namespace gnna::gnn {

/// Weights for one layer; which members are populated depends on the kind.
struct LayerWeights {
  // kProject / kConv / kReadout: main projection [in x out] + bias[out].
  linalg::Matrix w;
  std::vector<float> bias;

  // kAttentionConv: per-head projection [in x head_width] and attention
  // vector a[2 * head_width] (first half dotted with the destination
  // feature, second half with the source feature).
  std::vector<linalg::Matrix> head_w;
  std::vector<std::vector<float>> head_a;

  // kMessagePass: two-layer edge network [edge_features x hidden] (ReLU)
  // then [hidden x d*d], and GRU gate weights (all [d x d]).
  linalg::Matrix edge_w1;
  std::vector<float> edge_bias1;
  linalg::Matrix edge_w2;
  std::vector<float> edge_bias2;
  linalg::Matrix gru_wz, gru_wr, gru_wh;  // applied to the message
  linalg::Matrix gru_uz, gru_ur, gru_uh;  // applied to the state

  // kMultiHopConv: hop_w[0] is the self term W_self; hop_w[1 + j] applies to
  // A^(2^j) X.
  std::vector<linalg::Matrix> hop_w;
};

/// All layers' weights.
struct ModelWeights {
  std::vector<LayerWeights> layers;
};

/// Generate weights for `spec` (uniform in +-1/sqrt(fan_in)).
[[nodiscard]] ModelWeights make_weights(const ModelSpec& spec);

}  // namespace gnna::gnn
