#include "gnn/weights.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace gnna::gnn {
namespace {

linalg::Matrix init_matrix(Rng& rng, std::size_t rows, std::size_t cols) {
  const float bound =
      1.0F / std::sqrt(static_cast<float>(rows == 0 ? 1 : rows));
  return linalg::Matrix::random(rng, rows, cols, -bound, bound);
}

std::vector<float> init_vector(Rng& rng, std::size_t n, std::size_t fan_in) {
  const float bound =
      1.0F / std::sqrt(static_cast<float>(fan_in == 0 ? 1 : fan_in));
  std::vector<float> v(n);
  for (auto& x : v) x = rng.next_float(-bound, bound);
  return v;
}

}  // namespace

ModelWeights make_weights(const ModelSpec& spec) {
  ModelWeights w;
  w.layers.reserve(spec.layers.size());
  Rng base(spec.weight_seed * 0x6C8E9CF570932BD5ULL + 1);
  for (std::size_t li = 0; li < spec.layers.size(); ++li) {
    const LayerSpec& l = spec.layers[li];
    Rng rng = base.fork(li + 1);
    LayerWeights lw;
    switch (l.kind) {
      case LayerKind::kProject:
      case LayerKind::kConv:
      case LayerKind::kReadout:
        lw.w = init_matrix(rng, l.in_features, l.out_features);
        lw.bias = init_vector(rng, l.out_features, l.in_features);
        break;
      case LayerKind::kAttentionConv: {
        const std::uint32_t d = l.head_width();
        for (std::uint32_t h = 0; h < l.heads; ++h) {
          lw.head_w.push_back(init_matrix(rng, l.in_features, d));
          lw.head_a.push_back(init_vector(rng, 2ULL * d, d));
        }
        break;
      }
      case LayerKind::kMessagePass: {
        const std::uint32_t d = l.out_features;
        lw.edge_w1 = init_matrix(rng, l.edge_features, l.edge_hidden);
        lw.edge_bias1 = init_vector(rng, l.edge_hidden, l.edge_features);
        lw.edge_w2 = init_matrix(rng, l.edge_hidden,
                                 static_cast<std::size_t>(d) * d);
        lw.edge_bias2 =
            init_vector(rng, static_cast<std::size_t>(d) * d, l.edge_hidden);
        lw.gru_wz = init_matrix(rng, d, d);
        lw.gru_wr = init_matrix(rng, d, d);
        lw.gru_wh = init_matrix(rng, d, d);
        lw.gru_uz = init_matrix(rng, d, d);
        lw.gru_ur = init_matrix(rng, d, d);
        lw.gru_uh = init_matrix(rng, d, d);
        break;
      }
      case LayerKind::kMultiHopConv:
        lw.hop_w.push_back(init_matrix(rng, l.in_features, l.out_features));
        for (std::uint32_t j = 0; j < l.hops; ++j) {
          lw.hop_w.push_back(init_matrix(rng, l.in_features, l.out_features));
        }
        break;
    }
    w.layers.push_back(std::move(lw));
  }
  return w;
}

}  // namespace gnna::gnn
