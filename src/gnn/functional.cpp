#include "gnn/functional.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "linalg/ops.hpp"
#include "linalg/sparse.hpp"

namespace gnna::gnn {
namespace {

void apply_activation(linalg::Matrix& m, Activation act) {
  switch (act) {
    case Activation::kNone:
      break;
    case Activation::kRelu:
      linalg::relu_inplace(m);
      break;
    case Activation::kLeakyRelu:
      linalg::leaky_relu_inplace(m);
      break;
    case Activation::kTanh:
      linalg::tanh_inplace(m);
      break;
    case Activation::kSigmoid:
      linalg::sigmoid_inplace(m);
      break;
  }
}

/// Lookup of edge features by unordered vertex pair (bonds are undirected
/// but stored in one direction).
class EdgeFeatureIndex {
 public:
  EdgeFeatureIndex(const graph::Graph& g, const linalg::Matrix& feats)
      : feats_(feats) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto nbrs = g.neighbors(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const EdgeId e = g.edge_index(v, static_cast<std::uint32_t>(i));
        index_.emplace(key(v, nbrs[i]), e);
      }
    }
  }

  /// Feature row for the (u, v) bond, or nullptr if absent.
  [[nodiscard]] const float* lookup(NodeId u, NodeId v) const {
    if (feats_.rows() == 0) return nullptr;
    auto it = index_.find(key(u, v));
    if (it == index_.end()) it = index_.find(key(v, u));
    if (it == index_.end()) return nullptr;
    return feats_.row(it->second).data();
  }

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  const linalg::Matrix& feats_;
  std::unordered_map<std::uint64_t, EdgeId> index_;
};

}  // namespace

linalg::Matrix FunctionalExecutor::run_layer(
    std::size_t layer_index, const graph::Graph& g, const linalg::Matrix& h,
    const linalg::Matrix& edge_feats) const {
  const LayerSpec& l = spec_.layers.at(layer_index);
  const LayerWeights& w = weights_.layers.at(layer_index);
  if (h.cols() != l.in_features) {
    throw std::invalid_argument("run_layer: feature width mismatch for " +
                                l.name);
  }

  linalg::Matrix out;
  switch (l.kind) {
    case LayerKind::kProject: {
      out = linalg::add_row_bias(linalg::matmul(h, w.w), w.bias);
      break;
    }
    case LayerKind::kConv: {
      // Project first (A * (H W)): the cheaper order for in > out, and the
      // order the reference GCN implementation uses.
      const linalg::Matrix p =
          linalg::add_row_bias(linalg::matmul(h, w.w), w.bias);
      linalg::CsrMatrix a;
      switch (l.norm) {
        case AggNorm::kSymNorm:
          a = linalg::CsrMatrix::gcn_normalized_adjacency(g);
          break;
        case AggNorm::kMean:
          a = linalg::CsrMatrix::mean_adjacency(g);
          break;
        case AggNorm::kSum:
          a = linalg::CsrMatrix::adjacency(
              l.include_self ? g.symmetrized().with_self_loops()
                             : g.symmetrized());
          break;
      }
      out = linalg::spmm(a, p);
      break;
    }
    case LayerKind::kAttentionConv: {
      const graph::Graph sym = l.include_self
                                   ? g.symmetrized().with_self_loops()
                                   : g.symmetrized();
      const std::uint32_t d = l.head_width();
      out = linalg::Matrix(h.rows(), l.out_features);
      for (std::uint32_t head = 0; head < l.heads; ++head) {
        const linalg::Matrix p = linalg::matmul(h, w.head_w[head]);
        const std::vector<float>& a = w.head_a[head];
        for (NodeId v = 0; v < sym.num_nodes(); ++v) {
          // Destination half of the attention dot is shared across the row.
          float dst_term = 0.0F;
          for (std::uint32_t f = 0; f < d; ++f) dst_term += a[f] * p(v, f);
          for (const NodeId u : sym.neighbors(v)) {
            float src_term = 0.0F;
            for (std::uint32_t f = 0; f < d; ++f) {
              src_term += a[d + f] * p(u, f);
            }
            // Attention normalization dropped (paper, Section VI): the raw
            // LeakyReLU coefficient weights the neighbor directly.
            const float e = linalg::leaky_relu(dst_term + src_term);
            for (std::uint32_t f = 0; f < d; ++f) {
              out(v, head * d + f) += e * p(u, f);
            }
          }
        }
      }
      break;
    }
    case LayerKind::kMessagePass: {
      const graph::Graph sym = g.symmetrized();
      const std::uint32_t d = l.out_features;
      const EdgeFeatureIndex efi(g, edge_feats);
      // Messages: m_v = sum_u reshape(edge_net(e_vu)) * h_u, where the edge
      // network is a two-layer MLP ef -> hidden (ReLU) -> d*d.
      linalg::Matrix msg(h.rows(), d);
      std::vector<float> hid(l.edge_hidden);
      std::vector<float> mat(static_cast<std::size_t>(d) * d);
      for (NodeId v = 0; v < sym.num_nodes(); ++v) {
        for (const NodeId u : sym.neighbors(v)) {
          const float* ef = efi.lookup(v, u);
          // Layer 1: hid = relu(W1^T f + b1).
          for (std::size_t i = 0; i < hid.size(); ++i) {
            hid[i] = w.edge_bias1[i];
          }
          if (ef != nullptr) {
            for (std::uint32_t k = 0; k < l.edge_features; ++k) {
              const float fk = ef[k];
              if (fk == 0.0F) continue;
              const auto wrow = w.edge_w1.row(k);
              for (std::size_t i = 0; i < hid.size(); ++i) {
                hid[i] += fk * wrow[i];
              }
            }
          }
          for (auto& x : hid) x = std::max(x, 0.0F);
          // Layer 2: mat = W2^T hid + b2.
          for (std::size_t i = 0; i < mat.size(); ++i) {
            mat[i] = w.edge_bias2[i];
          }
          for (std::uint32_t k = 0; k < l.edge_hidden; ++k) {
            const float hk = hid[k];
            if (hk == 0.0F) continue;
            const auto wrow = w.edge_w2.row(k);
            for (std::size_t i = 0; i < mat.size(); ++i) {
              mat[i] += hk * wrow[i];
            }
          }
          // m_v += mat * h_u  (mat is row-major d x d).
          for (std::uint32_t r = 0; r < d; ++r) {
            float acc = 0.0F;
            const float* mrow = mat.data() + static_cast<std::size_t>(r) * d;
            for (std::uint32_t c = 0; c < d; ++c) acc += mrow[c] * h(u, c);
            msg(v, r) += acc;
          }
        }
      }
      // GRU update per vertex.
      const linalg::Matrix mz = linalg::matmul(msg, w.gru_wz);
      const linalg::Matrix mr = linalg::matmul(msg, w.gru_wr);
      const linalg::Matrix mh = linalg::matmul(msg, w.gru_wh);
      const linalg::Matrix hz = linalg::matmul(h, w.gru_uz);
      const linalg::Matrix hr = linalg::matmul(h, w.gru_ur);
      out = linalg::Matrix(h.rows(), d);
      linalg::Matrix rh(h.rows(), d);
      for (std::size_t v = 0; v < h.rows(); ++v) {
        for (std::uint32_t f = 0; f < d; ++f) {
          const float r = linalg::sigmoid(mr(v, f) + hr(v, f));
          rh(v, f) = r * h(v, f);
        }
      }
      const linalg::Matrix hh = linalg::matmul(rh, w.gru_uh);
      for (std::size_t v = 0; v < h.rows(); ++v) {
        for (std::uint32_t f = 0; f < d; ++f) {
          const float z = linalg::sigmoid(mz(v, f) + hz(v, f));
          const float cand = linalg::tanh_act(mh(v, f) + hh(v, f));
          out(v, f) = (1.0F - z) * h(v, f) + z * cand;
        }
      }
      break;
    }
    case LayerKind::kMultiHopConv: {
      const graph::Graph sym = g.symmetrized();
      const linalg::CsrMatrix a = linalg::CsrMatrix::adjacency(sym);
      // Self term.
      out = linalg::matmul(h, w.hop_w[0]);
      // Power terms A^(2^j) H W_j via cumulative SpMM applications.
      linalg::Matrix cur = h;
      std::uint64_t applied = 0;
      for (std::uint32_t j = 0; j < l.hops; ++j) {
        const std::uint64_t target = std::uint64_t{1} << j;
        while (applied < target) {
          cur = linalg::spmm(a, cur);
          ++applied;
        }
        out = linalg::add(out, linalg::matmul(cur, w.hop_w[1 + j]));
      }
      break;
    }
    case LayerKind::kReadout: {
      // Graph-level sum then FC.
      linalg::Matrix pooled(1, l.in_features);
      for (std::size_t v = 0; v < h.rows(); ++v) {
        const auto row = h.row(v);
        for (std::uint32_t f = 0; f < l.in_features; ++f) {
          pooled(0, f) += row[f];
        }
      }
      out = linalg::add_row_bias(linalg::matmul(pooled, w.w), w.bias);
      break;
    }
  }
  apply_activation(out, l.act);
  return out;
}

linalg::Matrix FunctionalExecutor::run(const graph::Graph& g,
                                       const linalg::Matrix& x,
                                       const linalg::Matrix& edge_feats) const {
  linalg::Matrix h = x;
  for (std::size_t li = 0; li < spec_.layers.size(); ++li) {
    h = run_layer(li, g, h, edge_feats);
  }
  return h;
}

linalg::Matrix FunctionalExecutor::run_dataset(
    const graph::Dataset& ds) const {
  std::vector<linalg::Matrix> outs;
  std::size_t total_rows = 0;
  for (std::size_t i = 0; i < ds.graphs.size(); ++i) {
    const graph::Graph& g = ds.graphs[i];
    const linalg::Matrix x = linalg::Matrix::from_rows(
        g.num_nodes(), ds.spec.vertex_features, ds.node_features[i]);
    const linalg::Matrix ef =
        ds.spec.edge_features == 0
            ? linalg::Matrix{}
            : linalg::Matrix::from_rows(g.num_edges(), ds.spec.edge_features,
                                        ds.edge_features[i]);
    outs.push_back(run(g, x, ef));
    total_rows += outs.back().rows();
  }
  linalg::Matrix stacked(total_rows, spec_.output_features());
  std::size_t r = 0;
  for (const auto& o : outs) {
    for (std::size_t i = 0; i < o.rows(); ++i, ++r) {
      const auto src = o.row(i);
      auto dst = stacked.row(r);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
  return stacked;
}

}  // namespace gnna::gnn
