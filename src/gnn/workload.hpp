// Static work profiling: how many operations and bytes a model/dataset
// pair requires, split the way the paper splits them (Section III): dense
// vertex-local DNN compute, per-edge compute, aggregation, and traversal.
//
// The CPU/GPU baseline models (src/baseline) convert these counts into
// latency estimates; the Section II study uses the matmul views directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gnn/layer.hpp"
#include "graph/dataset.hpp"

namespace gnna::gnn {

/// Work of one lowered stage (a layer, or a sub-stage of one).
struct LayerWork {
  std::string name;

  std::uint64_t dense_macs = 0;   // projections, GRU gates, readout FCs
  std::uint64_t edge_macs = 0;    // per-edge compute (attention, edge nets)
  std::uint64_t agg_adds = 0;     // aggregation additions
  std::uint64_t launches = 0;     // framework ops / kernel launches

  std::uint64_t feature_read_bytes = 0;
  std::uint64_t feature_write_bytes = 0;
  std::uint64_t structure_bytes = 0;  // CSR traversal
  std::uint64_t weight_bytes = 0;

  [[nodiscard]] std::uint64_t total_flops() const {
    return 2 * (dense_macs + edge_macs) + agg_adds;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return feature_read_bytes + feature_write_bytes + structure_bytes +
           weight_bytes;
  }
};

struct WorkProfile {
  std::vector<LayerWork> layers;

  [[nodiscard]] LayerWork totals() const {
    LayerWork t;
    t.name = "total";
    for (const auto& l : layers) {
      t.dense_macs += l.dense_macs;
      t.edge_macs += l.edge_macs;
      t.agg_adds += l.agg_adds;
      t.launches += l.launches;
      t.feature_read_bytes += l.feature_read_bytes;
      t.feature_write_bytes += l.feature_write_bytes;
      t.structure_bytes += l.structure_bytes;
      t.weight_bytes += l.weight_bytes;
    }
    return t;
  }
};

/// Count the work `model` does over `dataset` (using the symmetrized
/// graphs' real degree distributions).
[[nodiscard]] WorkProfile profile_work(const ModelSpec& model,
                                       const graph::Dataset& dataset);

}  // namespace gnna::gnn
