// Functional (value-level) execution of the GNN IR.
//
// This path computes what the model actually outputs, independent of any
// timing model. Tests use it two ways: against hand-written references to
// pin down layer semantics, and against the accelerator's AGG/DNA value
// plumbing to show the hardware model computes the same function.
#pragma once

#include <optional>

#include "gnn/layer.hpp"
#include "gnn/weights.hpp"
#include "graph/dataset.hpp"
#include "graph/graph.hpp"
#include "linalg/matrix.hpp"

namespace gnna::gnn {

class FunctionalExecutor {
 public:
  explicit FunctionalExecutor(const ModelSpec& spec)
      : spec_(spec), weights_(make_weights(spec)) {}

  FunctionalExecutor(const ModelSpec& spec, ModelWeights weights)
      : spec_(spec), weights_(std::move(weights)) {}

  /// Run the model on one graph. `x` is [num_nodes x in_features];
  /// `edge_feats` (may be empty) is [num_edges x edge_features] in the CSR
  /// order of `g`. Returns [num_nodes x out] or [1 x out] if the model ends
  /// in a readout layer.
  [[nodiscard]] linalg::Matrix run(const graph::Graph& g,
                                   const linalg::Matrix& x,
                                   const linalg::Matrix& edge_feats) const;

  /// Run the model on every graph of a dataset; returns per-graph outputs
  /// stacked row-wise ([sum(rows_i) x out]).
  [[nodiscard]] linalg::Matrix run_dataset(const graph::Dataset& ds) const;

  /// Apply a single layer (exposed for layer-level unit tests).
  [[nodiscard]] linalg::Matrix run_layer(std::size_t layer_index,
                                         const graph::Graph& g,
                                         const linalg::Matrix& h,
                                         const linalg::Matrix& edge_feats) const;

  [[nodiscard]] const ModelSpec& spec() const { return spec_; }
  [[nodiscard]] const ModelWeights& weights() const { return weights_; }

 private:
  ModelSpec spec_;
  ModelWeights weights_;
};

}  // namespace gnna::gnn
