#include "gnn/model.hpp"

#include <stdexcept>

namespace gnna::gnn {

std::string to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kProject:
      return "project";
    case LayerKind::kConv:
      return "conv";
    case LayerKind::kAttentionConv:
      return "attention-conv";
    case LayerKind::kMessagePass:
      return "message-pass";
    case LayerKind::kMultiHopConv:
      return "multi-hop-conv";
    case LayerKind::kReadout:
      return "readout";
  }
  return "unknown";
}

std::string to_string(Activation act) {
  switch (act) {
    case Activation::kNone:
      return "none";
    case Activation::kRelu:
      return "relu";
    case Activation::kLeakyRelu:
      return "leaky-relu";
    case Activation::kTanh:
      return "tanh";
    case Activation::kSigmoid:
      return "sigmoid";
  }
  return "unknown";
}

ModelSpec make_gcn(std::uint32_t in_features, std::uint32_t out_features,
                   std::uint32_t hidden) {
  ModelSpec m;
  m.name = "GCN";
  LayerSpec l1;
  l1.name = "gc1";
  l1.kind = LayerKind::kConv;
  l1.in_features = in_features;
  l1.out_features = hidden;
  l1.act = Activation::kRelu;
  l1.norm = AggNorm::kSymNorm;
  l1.include_self = true;
  LayerSpec l2 = l1;
  l2.name = "gc2";
  l2.in_features = hidden;
  l2.out_features = out_features;
  l2.act = Activation::kNone;  // logits; softmax is part of the loss
  m.layers = {l1, l2};
  return m;
}

ModelSpec make_gat(std::uint32_t in_features, std::uint32_t out_features,
                   std::uint32_t heads, std::uint32_t head_width) {
  ModelSpec m;
  m.name = "GAT";
  LayerSpec l1;
  l1.name = "gat1";
  l1.kind = LayerKind::kAttentionConv;
  l1.in_features = in_features;
  l1.out_features = heads * head_width;
  l1.heads = heads;
  l1.act = Activation::kLeakyRelu;  // ELU in the reference; same cost class
  l1.norm = AggNorm::kSum;          // attention normalization dropped
  l1.include_self = true;
  LayerSpec l2;
  l2.name = "gat2";
  l2.kind = LayerKind::kAttentionConv;
  l2.in_features = heads * head_width;
  l2.out_features = out_features;
  l2.heads = 1;
  l2.act = Activation::kNone;
  l2.norm = AggNorm::kSum;
  l2.include_self = true;
  m.layers = {l1, l2};
  return m;
}

ModelSpec make_mpnn(std::uint32_t in_features, std::uint32_t edge_features,
                    std::uint32_t out_features, std::uint32_t hidden,
                    std::uint32_t steps) {
  ModelSpec m;
  m.name = "MPNN";
  LayerSpec embed;
  embed.name = "embed";
  embed.kind = LayerKind::kProject;
  embed.in_features = in_features;
  embed.out_features = hidden;
  embed.act = Activation::kRelu;
  m.layers.push_back(embed);
  for (std::uint32_t t = 0; t < steps; ++t) {
    LayerSpec mp;
    mp.name = "mp" + std::to_string(t + 1);
    mp.kind = LayerKind::kMessagePass;
    mp.in_features = hidden;
    mp.out_features = hidden;
    mp.edge_features = edge_features;
    mp.norm = AggNorm::kSum;
    mp.include_self = false;  // messages come from neighbors only
    m.layers.push_back(mp);
  }
  LayerSpec readout;
  readout.name = "readout";
  readout.kind = LayerKind::kReadout;
  readout.in_features = hidden;
  readout.out_features = out_features;
  m.layers.push_back(readout);
  return m;
}

ModelSpec make_pgnn(std::uint32_t in_features, std::uint32_t out_features,
                    std::uint32_t hidden, std::uint32_t hops,
                    std::uint32_t layers) {
  if (layers == 0) throw std::invalid_argument("pgnn needs >= 1 layer");
  ModelSpec m;
  m.name = "PGNN";
  for (std::uint32_t i = 0; i < layers; ++i) {
    LayerSpec l;
    l.name = "pg" + std::to_string(i + 1);
    l.kind = LayerKind::kMultiHopConv;
    l.in_features = i == 0 ? in_features : hidden;
    l.out_features = i + 1 == layers ? out_features : hidden;
    l.hops = hops;
    l.norm = AggNorm::kSum;
    l.include_self = true;  // the H * W_self term
    l.act = i + 1 == layers ? Activation::kNone : Activation::kRelu;
    m.layers.push_back(l);
  }
  return m;
}

std::string benchmark_name(Benchmark b) {
  switch (b) {
    case Benchmark::kGcnCora:
      return "GCN/Cora";
    case Benchmark::kGcnCiteseer:
      return "GCN/Citeseer";
    case Benchmark::kGcnPubmed:
      return "GCN/Pubmed";
    case Benchmark::kGatCora:
      return "GAT/Cora";
    case Benchmark::kMpnnQm9:
      return "MPNN/QM9_1000";
    case Benchmark::kPgnnDblp:
      return "PGNN/DBLP_1";
  }
  return "unknown";
}

graph::DatasetId benchmark_dataset(Benchmark b) {
  switch (b) {
    case Benchmark::kGcnCora:
    case Benchmark::kGatCora:
      return graph::DatasetId::kCora;
    case Benchmark::kGcnCiteseer:
      return graph::DatasetId::kCiteseer;
    case Benchmark::kGcnPubmed:
      return graph::DatasetId::kPubmed;
    case Benchmark::kMpnnQm9:
      return graph::DatasetId::kQm9_1000;
    case Benchmark::kPgnnDblp:
      return graph::DatasetId::kDblp1;
  }
  throw std::invalid_argument("unknown benchmark");
}

ModelSpec make_benchmark_model(Benchmark b) {
  const graph::DatasetSpec& ds = graph::dataset_spec(benchmark_dataset(b));
  switch (b) {
    case Benchmark::kGcnCora:
    case Benchmark::kGcnCiteseer:
    case Benchmark::kGcnPubmed:
      return make_gcn(ds.vertex_features, ds.output_features);
    case Benchmark::kGatCora:
      return make_gat(ds.vertex_features, ds.output_features);
    case Benchmark::kMpnnQm9:
      return make_mpnn(ds.vertex_features, ds.edge_features,
                       ds.output_features);
    case Benchmark::kPgnnDblp:
      return make_pgnn(ds.vertex_features, ds.output_features);
  }
  throw std::invalid_argument("unknown benchmark");
}

}  // namespace gnna::gnn
