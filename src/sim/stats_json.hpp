// Machine-readable RunStats: JSON emission for `gnnasim --json` so bench
// scripts can consume batch results without scraping tables.
#pragma once

#include <ostream>
#include <vector>

#include "accel/simulator.hpp"
#include "sim/batch_runner.hpp"

namespace gnna::sim {

/// Version of the per-run JSON object emitted below. v1 had no version
/// field; v2 added "schema_version" and the optional embedded "profile"
/// block (see trace/profiler.hpp); v3 added the memory-scheduler detail:
/// "mem_scheduler", "mem_row_hits"/"mem_row_misses"/"mem_row_hit_rate",
/// "mem_queue_occupancy"/"mem_queue_occupancy_max", and the per-bank
/// "mem_banks" array (empty under the in-order scheduler); v4 added the
/// program-provenance pair "program_hash" (GNNA-IR content hash, 16 hex
/// digits) and "program_cache" (hit | dedupe | miss | file | adhoc |
/// given), present when the run went through the session layer; v5 added
/// the optional embedded "attribution" block (per-tile busy/idle/flit
/// totals, imbalance metrics, top-K per-vertex hotspots — see
/// trace/attribution.hpp) and the time-weighted "mean" field on profile
/// counters; v6 added the "static_model" block (accel/analysis.hpp): the
/// analytic cycle lower bound and per-phase roofline terms evaluated on
/// the exact (program, config, partition) the run executed, so gnnatrace
/// can compare prediction vs. measurement; v7 added "optimized_from" (hex
/// content hash of the pre-optimization program, present only when the run
/// resolved through the validator-gated optimizer — equal to
/// "program_hash" when the optimizer proved the program already optimal;
/// see accel/opt.hpp). Readers should treat a missing field as v1.
inline constexpr int kStatsJsonSchemaVersion = 7;

/// One run as a JSON object (all counters, utilizations, and the per-phase
/// breakdown). Doubles are emitted with round-trip precision.
void write_run_stats_json(std::ostream& os, const accel::RunStats& rs,
                          int indent = 0);

/// A batch as a JSON array, in request order. Failed runs become
/// {"error": "..."} entries so indices still line up with the manifest.
void write_batch_json(std::ostream& os, const std::vector<RunResult>& results);

}  // namespace gnna::sim
