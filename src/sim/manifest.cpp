#include "sim/manifest.hpp"

#include <charconv>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "mem/memory.hpp"

namespace gnna::sim {
namespace {

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& reason) {
  throw std::invalid_argument(source + ":" + std::to_string(line) + ": " +
                              reason);
}

}  // namespace

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  // from_chars is exactly as strict as we want: no leading whitespace, no
  // sign, no trailing junk.
  std::uint64_t v = 0;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc{} || ptr != end || s.empty()) return std::nullopt;
  return v;
}

std::optional<double> parse_f64(const std::string& s) {
  // stod tolerates leading whitespace, hex floats, and "nan"/"inf"; none
  // of those are meaningful manifest values, so require a leading digit,
  // sign, or '.', and a finite result.
  if (s.empty()) return std::nullopt;
  const char c = s.front();
  if (!(c >= '0' && c <= '9') && c != '-' && c != '+' && c != '.') {
    return std::nullopt;
  }
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    if (pos != s.size() || !std::isfinite(v)) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::optional<gnn::Benchmark> benchmark_by_name(const std::string& name) {
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    if (gnn::benchmark_name(b) == name) return b;
  }
  return std::nullopt;
}

std::optional<accel::AcceleratorConfig> config_by_name(
    const std::string& name) {
  if (name == "cpu-iso-bw") return accel::AcceleratorConfig::cpu_iso_bw();
  if (name == "gpu-iso-bw") return accel::AcceleratorConfig::gpu_iso_bw();
  if (name == "gpu-iso-flops") {
    return accel::AcceleratorConfig::gpu_iso_flops();
  }
  return std::nullopt;
}

std::optional<graph::PartitionPolicy> partition_by_name(
    const std::string& name) {
  if (name == "round-robin") return graph::PartitionPolicy::kRoundRobin;
  if (name == "block") return graph::PartitionPolicy::kBlock;
  if (name == "degree-greedy") return graph::PartitionPolicy::kDegreeGreedy;
  if (name == "profile-guided") {
    return graph::PartitionPolicy::kProfileGuided;
  }
  return std::nullopt;
}

std::vector<RunRequest> parse_batch_manifest(std::istream& in,
                                             const RunRequest& defaults,
                                             const std::string& source) {
  std::vector<RunRequest> requests;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens(line);

    RunRequest req = defaults;
    req.benchmark.reset();
    req.program.reset();
    req.program_file.clear();
    req.model.reset();
    req.dataset.reset();
    std::uint64_t repeat = 1;

    bool any = false;
    std::string token;
    while (tokens >> token) {
      any = true;
      const auto eq = token.find('=');
      if (eq == std::string::npos || eq == 0) {
        fail(source, lineno,
             "expected key=value tokens, got '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "benchmark") {
        req.benchmark = benchmark_by_name(value);
        if (!req.benchmark) {
          fail(source, lineno,
               "unknown benchmark '" + value + "' (try gnnasim --list)");
        }
      } else if (key == "program") {
        // A GNNA-IR .gnna file to load instead of compiling. The line still
        // needs benchmark= — it names the dataset the program runs against
        // (and the label in reports). Paths cannot contain whitespace
        // (tokens are whitespace-separated).
        if (value.empty()) {
          fail(source, lineno, "program needs a file path");
        }
        req.program_file = value;
      } else if (key == "config") {
        const auto cfg = config_by_name(value);
        if (!cfg) {
          fail(source, lineno, "unknown config '" + value +
                                   "' (cpu-iso-bw | gpu-iso-bw | "
                                   "gpu-iso-flops)");
        }
        req.config = *cfg;
      } else if (key == "clock") {
        const auto ghz = parse_f64(value);
        if (!ghz || *ghz <= 0.0 || *ghz > 2.4 + 1e-9) {
          fail(source, lineno,
               "clock must be a number in (0, 2.4] GHz, got '" + value + "'");
        }
        req.clock_ghz = *ghz;
      } else if (key == "threads") {
        const auto n = parse_u64(value);
        if (!n || *n == 0 || *n > 4096) {
          fail(source, lineno,
               "threads must be in [1, 4096], got '" + value + "'");
        }
        req.threads = static_cast<std::uint32_t>(*n);
      } else if (key == "partition") {
        const auto p = partition_by_name(value);
        if (!p) {
          fail(source, lineno,
               "unknown partition policy '" + value +
                   "' (round-robin | block | degree-greedy | "
                   "profile-guided)");
        }
        req.partition = *p;
      } else if (key == "seed") {
        const auto s = parse_u64(value);
        if (!s) fail(source, lineno, "seed must be a number, got '" + value + "'");
        req.seed = *s;
      } else if (key == "verify") {
        if (value == "1") {
          req.verify = true;
        } else if (value == "0") {
          req.verify = false;
        } else {
          fail(source, lineno, "verify must be 0 or 1, got '" + value + "'");
        }
      } else if (key == "optimize") {
        if (value == "1") {
          req.optimize = true;
        } else if (value == "0") {
          req.optimize = false;
        } else {
          fail(source, lineno,
               "optimize must be 0 or 1, got '" + value + "'");
        }
      } else if (key == "repeat") {
        const auto r = parse_u64(value);
        if (!r || *r == 0 || *r > 100000) {
          fail(source, lineno,
               "repeat must be in [1, 100000], got '" + value + "'");
        }
        repeat = *r;
      } else if (key == "attribution") {
        if (value == "1") {
          req.trace.attribution = true;
        } else if (value == "0") {
          req.trace.attribution = false;
        } else {
          fail(source, lineno,
               "attribution must be 0 or 1, got '" + value + "'");
        }
      } else if (key == "attribution_top_k") {
        const auto n = parse_u64(value);
        if (!n || *n == 0 || *n > (1ULL << 24)) {
          fail(source, lineno,
               "attribution_top_k must be in [1, 2^24], got '" + value +
                   "'");
        }
        req.trace.attribution_top_k = static_cast<std::size_t>(*n);
      } else if (key == "attribution_from") {
        // Path to a prior run's stats JSON; consumed by
        // partition=profile-guided. Paths cannot contain whitespace.
        if (value.empty()) {
          fail(source, lineno, "attribution_from needs a file path");
        }
        req.attribution_from = value;
      } else if (key == "mem_scheduler") {
        // Memory keys override fields of req.config.mem_params; put them
        // after any config= token on the line, since config= replaces the
        // whole configuration (memory parameters included).
        const auto s = mem::mem_scheduler_by_name(value);
        if (!s) {
          fail(source, lineno, "unknown mem_scheduler '" + value +
                                   "' (in_order | frfcfs)");
        }
        req.config.mem_params.scheduler = *s;
      } else if (key == "mem_banks") {
        const auto n = parse_u64(value);
        if (!n || *n == 0 || *n > 1024) {
          fail(source, lineno,
               "mem_banks must be in [1, 1024], got '" + value + "'");
        }
        req.config.mem_params.banks = static_cast<std::uint32_t>(*n);
      } else if (key == "mem_row_bytes") {
        const auto n = parse_u64(value);
        if (!n || *n == 0 || *n > (1ULL << 30)) {
          fail(source, lineno,
               "mem_row_bytes must be in [1, 2^30], got '" + value + "'");
        }
        req.config.mem_params.row_bytes = static_cast<std::uint32_t>(*n);
      } else if (key == "mem_row_hit_ns" || key == "mem_row_miss_ns") {
        const auto ns = parse_f64(value);
        if (!ns || *ns < 0.0) {
          fail(source, lineno,
               key + " must be a number >= 0, got '" + value + "'");
        }
        if (key == "mem_row_hit_ns") {
          req.config.mem_params.row_hit_ns = *ns;
        } else {
          req.config.mem_params.row_miss_ns = *ns;
        }
      } else if (key == "mem_window") {
        const auto n = parse_u64(value);
        if (!n || *n == 0 || *n > 4096) {
          fail(source, lineno,
               "mem_window must be in [1, 4096], got '" + value + "'");
        }
        req.config.mem_params.window_entries =
            static_cast<std::uint32_t>(*n);
      } else if (key == "mem_bank_interleave_bytes") {
        const auto n = parse_u64(value);
        if (!n || *n == 0 || *n > (1ULL << 30)) {
          fail(source, lineno,
               "mem_bank_interleave_bytes must be in [1, 2^30], got '" +
                   value + "'");
        }
        req.config.mem_params.bank_interleave_bytes =
            static_cast<std::uint32_t>(*n);
      } else if (key == "mem_bank_xor") {
        if (value == "1") {
          req.config.mem_params.bank_xor = true;
        } else if (value == "0") {
          req.config.mem_params.bank_xor = false;
        } else {
          fail(source, lineno,
               "mem_bank_xor must be 0 or 1, got '" + value + "'");
        }
      } else if (key == "tile_agg_data_bytes" ||
                 key == "tile_dnq_data_bytes") {
        // Tile scratchpad overrides (what `gnnaverify --fix` suggests for
        // GV201). Like mem_*, these override fields of req.config, so put
        // them after any config= token.
        const auto n = parse_u64(value);
        if (!n || *n == 0 || *n > (1ULL << 30)) {
          fail(source, lineno,
               key + " must be in [1, 2^30], got '" + value + "'");
        }
        if (key == "tile_agg_data_bytes") {
          req.config.tile_params.agg_data_bytes =
              static_cast<std::uint32_t>(*n);
        } else {
          req.config.tile_params.dnq_data_bytes =
              static_cast<std::uint32_t>(*n);
        }
      } else if (key == "tile_dnq_queue0_sixteenths") {
        const auto n = parse_u64(value);
        if (!n || *n > 16) {
          fail(source, lineno,
               "tile_dnq_queue0_sixteenths must be in [0, 16], got '" +
                   value + "'");
        }
        req.config.tile_params.dnq_queue0_sixteenths =
            static_cast<std::uint32_t>(*n);
      } else {
        fail(source, lineno, "unknown key '" + key + "'");
      }
    }
    if (!any) continue;  // blank or comment-only line
    if (!req.benchmark) {
      fail(source, lineno,
           req.program_file.empty()
               ? "line names no benchmark"
               : "program= also needs benchmark= (it names the dataset "
                 "the program runs against)");
    }
    try {
      mem::validate(req.config.mem_params);
    } catch (const std::invalid_argument& e) {
      fail(source, lineno, e.what());
    }
    for (std::uint64_t r = 0; r < repeat; ++r) requests.push_back(req);
  }
  return requests;
}

}  // namespace gnna::sim
