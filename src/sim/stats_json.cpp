#include "sim/stats_json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <string>

#include "accel/analysis.hpp"
#include "trace/attribution.hpp"
#include "trace/profiler.hpp"

namespace gnna::sim {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  return ec == std::errc() ? std::string(buf, end) : "null";
}

class ObjectWriter {
 public:
  ObjectWriter(std::ostream& os, int indent) : os_(os), indent_(indent) {
    os_ << "{";
  }
  void field(const char* key, const std::string& raw) {
    os_ << (first_ ? "\n" : ",\n");
    first_ = false;
    pad(indent_ + 2);
    os_ << '"' << key << "\": " << raw;
  }
  void str(const char* key, const std::string& v) {
    field(key, '"' + json_escape(v) + '"');
  }
  void num(const char* key, std::uint64_t v) { field(key, std::to_string(v)); }
  void num(const char* key, double v) { field(key, json_double(v)); }
  void close() {
    os_ << '\n';
    pad(indent_);
    os_ << '}';
  }
  std::ostream& raw() { return os_; }

 private:
  void pad(int n) {
    for (int i = 0; i < n; ++i) os_ << ' ';
  }
  std::ostream& os_;
  int indent_;
  bool first_ = true;
};

/// The embedded profile block ("profile": {...}); compact one-line-ish
/// arrays, since profile JSON is machine-read by gnnatrace, not humans.
std::string profile_json(const trace::ProfileReport& pr) {
  using trace::Category;
  std::string out = "{\"version\": " +
                    std::to_string(trace::kProfileSchemaVersion) +
                    ", \"phases\": [";
  for (std::size_t pi = 0; pi < pr.phases.size(); ++pi) {
    const auto& ph = pr.phases[pi];
    if (pi > 0) out += ", ";
    out += "{\"name\": \"" + json_escape(ph.name) +
           "\", \"start\": " + json_double(ph.start) +
           ", \"cycles\": " + json_double(ph.cycles()) +
           ", \"tasks\": " + std::to_string(ph.tasks) +
           ", \"alloc_stalls\": " + std::to_string(ph.alloc_stalls);
    const auto per_category = [&](const char* key, auto get) {
      out += ", \"";
      out += key;
      out += "\": {";
      bool first = true;
      for (std::size_t c = 0; c < trace::kNumCategories; ++c) {
        const std::string v = get(c);
        if (v == "0") continue;  // omit all-zero categories
        if (!first) out += ", ";
        first = false;
        out += '"';
        out += trace::category_name(static_cast<Category>(c));
        out += "\": " + v;
      }
      out += "}";
    };
    per_category("busy", [&](std::size_t c) { return json_double(ph.busy[c]); });
    per_category("completes",
                 [&](std::size_t c) { return std::to_string(ph.completes[c]); });
    per_category("instants",
                 [&](std::size_t c) { return std::to_string(ph.instants[c]); });
    out += ", \"units\": [";
    for (std::size_t i = 0; i < ph.units.size(); ++i) {
      const auto& u = ph.units[i];
      if (i > 0) out += ", ";
      out += "{\"cat\": \"";
      out += trace::category_name(u.cat);
      out += "\", \"unit\": " + std::to_string(u.unit) +
             ", \"busy\": " + json_double(u.busy) +
             ", \"completes\": " + std::to_string(u.completes) +
             ", \"instants\": " + std::to_string(u.instants) + "}";
    }
    out += "], \"flame\": [";
    for (std::size_t i = 0; i < ph.flame.size(); ++i) {
      const auto& f = ph.flame[i];
      if (i > 0) out += ", ";
      out += "{\"path\": \"" + json_escape(f.path) +
             "\", \"count\": " + std::to_string(f.count) +
             ", \"total\": " + json_double(f.total) +
             ", \"self\": " + json_double(f.self) +
             ", \"max\": " + json_double(f.max) + "}";
    }
    out += "], \"counters\": [";
    for (std::size_t i = 0; i < ph.counters.size(); ++i) {
      const auto& c = ph.counters[i];
      if (i > 0) out += ", ";
      out += "{\"cat\": \"";
      out += trace::category_name(c.cat);
      out += "\", \"name\": \"" + json_escape(c.name) +
             "\", \"samples\": " + std::to_string(c.samples) +
             ", \"last\": " + json_double(c.last) +
             ", \"max\": " + json_double(c.max) +
             ", \"mean\": " + json_double(c.mean) + "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

/// The embedded attribution block ("attribution": {...}): per-tile
/// busy/idle/traffic totals, the derived imbalance metrics, and the
/// bounded top-K per-vertex hotspot table (see trace/attribution.hpp).
std::string attribution_json(const trace::AttributionReport& ar) {
  std::string out = "{\"version\": 1, \"top_k\": " + std::to_string(ar.top_k) +
                    ", \"span\": " + json_double(ar.span) +
                    ", \"total_busy\": " + json_double(ar.total_busy) +
                    ", \"busy_max_mean\": " + json_double(ar.busy_max_mean()) +
                    ", \"flit_gini\": " + json_double(ar.flit_gini()) +
                    ", \"unattributed_flits\": " +
                    std::to_string(ar.unattributed_flits) + ", \"tiles\": [";
  for (std::size_t i = 0; i < ar.tiles.size(); ++i) {
    const auto& t = ar.tiles[i];
    if (i > 0) out += ", ";
    out += "{\"tile\": " + std::to_string(i) +
           ", \"busy\": " + json_double(t.busy) +
           ", \"idle\": " + json_double(t.idle) +
           ", \"agg_busy\": " + json_double(t.agg_busy) +
           ", \"tasks\": " + std::to_string(t.tasks) +
           ", \"flits\": " + std::to_string(t.flits) +
           ", \"flit_hops\": " + std::to_string(t.flit_hops) +
           ", \"bytes\": " + std::to_string(t.bytes) + "}";
  }
  out += "], \"vertices\": [";
  for (std::size_t i = 0; i < ar.vertices.size(); ++i) {
    const auto& v = ar.vertices[i];
    if (i > 0) out += ", ";
    out += "{\"vertex\": " + std::to_string(v.vertex) +
           ", \"busy\": " + json_double(v.busy) +
           ", \"agg_busy\": " + json_double(v.agg_busy) +
           ", \"tasks\": " + std::to_string(v.tasks) +
           ", \"flits\": " + std::to_string(v.flits) +
           ", \"bytes\": " + std::to_string(v.bytes) +
           ", \"approx\": " + (v.approx ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

/// The embedded static-model block ("static_model": {...}): the analytic
/// cycle lower bound + per-phase roofline terms (accel/analysis.hpp).
std::string static_model_json(const accel::ProgramAnalysis& pa) {
  std::string out = "{\"version\": 1, \"bound_cycles\": " +
                    json_double(pa.bound_cycles) + ", \"phases\": [";
  for (std::size_t i = 0; i < pa.phases.size(); ++i) {
    const auto& ph = pa.phases[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + json_escape(ph.name) +
           "\", \"bound_cycles\": " + json_double(ph.bound_cycles) +
           ", \"compute_cycles\": " + json_double(ph.compute_cycles) +
           ", \"memory_cycles\": " + json_double(ph.memory_cycles) +
           ", \"noc_cycles\": " + json_double(ph.noc_cycles) +
           ", \"gpe_cycles\": " + json_double(ph.gpe_cycles) +
           ", \"dna_cycles\": " + json_double(ph.dna_cycles) +
           ", \"agg_cycles\": " + json_double(ph.agg_cycles) +
           ", \"read_bytes\": " + std::to_string(ph.read_bytes) +
           ", \"write_bytes\": " + std::to_string(ph.write_bytes) +
           ", \"payload_bytes\": " + std::to_string(ph.payload_bytes) +
           ", \"mem_requests\": " + std::to_string(ph.mem_requests) +
           ", \"predicted_row_hit_rate\": " +
           json_double(ph.predicted_row_hit_rate) + ", \"bottleneck\": \"" +
           json_escape(ph.bottleneck) +
           "\", \"imbalance\": " + json_double(ph.imbalance) +
           ", \"dnq0_concurrency\": " + std::to_string(ph.dnq0.concurrency) +
           ", \"dnq1_concurrency\": " + std::to_string(ph.dnq1.concurrency) +
           ", \"agg_concurrency\": " + std::to_string(ph.agg.concurrency) +
           "}";
  }
  out += "]}";
  return out;
}

}  // namespace

void write_run_stats_json(std::ostream& os, const accel::RunStats& rs,
                          int indent) {
  ObjectWriter w(os, indent);
  w.num("schema_version", std::uint64_t{kStatsJsonSchemaVersion});
  w.str("program", rs.program_name);
  // GNNA-IR content hash (hex) and cache provenance of the executed
  // program; empty/absent when the simulator was driven directly.
  if (!rs.program_cache.empty()) {
    char hash_buf[32];
    std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                  static_cast<unsigned long long>(rs.program_hash));
    w.str("program_hash", hash_buf);
    w.str("program_cache", rs.program_cache);
  }
  if (rs.optimized_from != 0) {
    // Provenance of an optimizer-rewritten program: the content hash of
    // the program the accel::opt pipeline started from.
    char hash_buf[32];
    std::snprintf(hash_buf, sizeof hash_buf, "%016llx",
                  static_cast<unsigned long long>(rs.optimized_from));
    w.str("optimized_from", hash_buf);
  }
  w.str("config", rs.config_name);
  w.num("core_clock_ghz", rs.core_clock_ghz);
  w.num("cycles", rs.cycles);
  w.num("seconds", rs.seconds);
  w.num("millis", rs.millis);
  w.num("mem_bytes_requested", rs.mem_bytes_requested);
  w.num("mem_bytes_served", rs.mem_bytes_served);
  w.num("mean_bandwidth_gbps", rs.mean_bandwidth_gbps);
  w.num("bandwidth_utilization", rs.bandwidth_utilization);
  w.str("mem_scheduler", rs.mem_scheduler);
  w.num("mem_row_hits", rs.mem_row_hits);
  w.num("mem_row_misses", rs.mem_row_misses);
  w.num("mem_row_hit_rate", rs.mem_row_hit_rate);
  w.num("mem_queue_occupancy", rs.mem_queue_occupancy);
  w.num("mem_queue_occupancy_max", rs.mem_queue_occupancy_max);
  std::string banks = "[";
  for (std::size_t i = 0; i < rs.mem_banks.size(); ++i) {
    const auto& b = rs.mem_banks[i];
    if (i > 0) banks += ", ";
    banks += "{\"mem\": " + std::to_string(b.mem) +
             ", \"bank\": " + std::to_string(b.bank) +
             ", \"row_hits\": " + std::to_string(b.row_hits) +
             ", \"row_misses\": " + std::to_string(b.row_misses) +
             ", \"busy_frac\": " + json_double(b.busy_frac) + "}";
  }
  banks += "]";
  w.field("mem_banks", banks);
  w.num("dna_utilization", rs.dna_utilization);
  w.num("gpe_utilization", rs.gpe_utilization);
  w.num("agg_utilization", rs.agg_utilization);
  w.num("tasks_completed", rs.tasks_completed);
  w.num("packets_delivered", rs.packets_delivered);
  w.num("avg_packet_latency", rs.avg_packet_latency);
  w.num("dnq_queue_switches", rs.dnq_queue_switches);
  w.num("alloc_stalls", rs.alloc_stalls);
  w.num("noc_flit_hops", rs.noc_flit_hops);
  w.num("noc_flits_delivered", rs.noc_flits_delivered);
  w.num("agg_words_reduced", rs.agg_words_reduced);
  w.num("dna_macs", rs.dna_macs);
  w.num("gpe_actions", rs.gpe_actions);
  w.num("dnq_words", rs.dnq_words);

  std::string phases = "[";
  for (std::size_t i = 0; i < rs.phases.size(); ++i) {
    const auto& ph = rs.phases[i];
    if (i > 0) phases += ", ";
    phases += "{\"name\": \"" + json_escape(ph.name) +
              "\", \"cycles\": " + std::to_string(ph.cycles) +
              ", \"mem_bytes_served\": " + std::to_string(ph.mem_bytes_served) +
              ", \"tasks\": " + std::to_string(ph.tasks) + "}";
  }
  phases += "]";
  w.field("phases", phases);
  if (rs.profile) w.field("profile", profile_json(*rs.profile));
  if (rs.attribution) {
    w.field("attribution", attribution_json(*rs.attribution));
  }
  if (rs.static_model) {
    w.field("static_model", static_model_json(*rs.static_model));
  }
  w.close();
}

void write_batch_json(std::ostream& os, const std::vector<RunResult>& results) {
  os << "[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    if (results[i].ok()) {
      os << "  ";
      write_run_stats_json(os, results[i].stats, 2);
    } else {
      os << "  {\"error\": \"" << json_escape(results[i].error) << "\"}";
    }
  }
  os << "\n]\n";
}

}  // namespace gnna::sim
