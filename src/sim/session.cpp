#include "sim/session.hpp"

#include <stdexcept>
#include <utility>

#include "accel/compiler.hpp"

namespace gnna::sim {

std::shared_ptr<const graph::Dataset> Session::dataset(graph::DatasetId id,
                                                       std::uint64_t seed) {
  return datasets_.get(id, seed);
}

Session::Resolved Session::compile(
    const gnn::ModelSpec& model,
    std::shared_ptr<const graph::Dataset> dataset) {
  if (!dataset) {
    throw std::invalid_argument("Session::compile: null dataset");
  }
  Resolved r;
  r.dataset = std::move(dataset);
  r.program = std::make_shared<const accel::CompiledProgram>(
      accel::ProgramCompiler{}.compile(model, *r.dataset));
  return r;
}

Session::Resolved Session::resolve(const RunRequest& req) {
  if (req.program) {
    if (!req.dataset) {
      throw std::invalid_argument(
          "RunRequest: a pre-compiled program needs its dataset");
    }
    return Resolved{req.dataset, req.program};
  }
  if (req.benchmark) {
    const ProgramKey key{*req.benchmark, req.seed};
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto it = programs_.find(key); it != programs_.end()) {
        ++program_hits_;
        return it->second;
      }
    }
    // Compile outside the program-cache lock: the dataset cache has its
    // own, and two threads racing on one key just do the work twice — the
    // results are identical and first-insert wins.
    Resolved r = compile(gnn::make_benchmark_model(*req.benchmark),
                         dataset(gnn::benchmark_dataset(*req.benchmark),
                                 req.seed));
    std::lock_guard<std::mutex> lock(mu_);
    ++program_misses_;
    return programs_.emplace(key, std::move(r)).first->second;
  }
  if (req.model && req.dataset) {
    return compile(*req.model, req.dataset);
  }
  throw std::invalid_argument(
      "RunRequest: set a benchmark, a program, or a (model, dataset) pair");
}

accel::RunStats Session::run(const RunRequest& req) {
  const Resolved r = resolve(req);

  accel::AcceleratorConfig cfg = req.config;
  if (req.clock_ghz) cfg = cfg.with_core_clock(*req.clock_ghz);
  if (req.threads) cfg.tile_params.gpe_threads = *req.threads;

  accel::AcceleratorSim sim(std::move(cfg), req.partition);
  if (req.watchdog_cycles) sim.set_watchdog_cycles(*req.watchdog_cycles);
  sim.set_verify(req.verify);
  sim.set_trace(req.trace);

  accel::RunStats rs = sim.run(*r.program);
  if (req.benchmark) rs.program_name = gnn::benchmark_name(*req.benchmark);
  if (!req.label.empty()) rs.program_name = req.label;
  return rs;
}

Session::CacheCounters Session::cache_counters() const {
  CacheCounters c;
  c.dataset_hits = datasets_.hits();
  c.dataset_misses = datasets_.misses();
  std::lock_guard<std::mutex> lock(mu_);
  c.program_hits = program_hits_;
  c.program_misses = program_misses_;
  return c;
}

Session& Session::global() {
  static Session session;
  return session;
}

}  // namespace gnna::sim
