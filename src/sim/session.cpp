#include "sim/session.hpp"

#include <stdexcept>
#include <utility>

#include "accel/compiler.hpp"
#include "accel/ir.hpp"
#include "accel/opt.hpp"
#include "sim/attribution_io.hpp"

namespace gnna::sim {

std::shared_ptr<const graph::Dataset> Session::dataset(graph::DatasetId id,
                                                       std::uint64_t seed) {
  return datasets_.get(id, seed);
}

Session::Resolved Session::compile(
    const gnn::ModelSpec& model,
    std::shared_ptr<const graph::Dataset> dataset) {
  if (!dataset) {
    throw std::invalid_argument("Session::compile: null dataset");
  }
  Resolved r;
  r.dataset = std::move(dataset);
  r.program = std::make_shared<const accel::CompiledProgram>(
      accel::ProgramCompiler{}.compile(model, *r.dataset));
  r.hash = accel::ir::content_hash(*r.program);
  r.source = "adhoc";
  return r;
}

Session::Resolved Session::resolve(const RunRequest& req) {
  Resolved base = resolve_base(req);
  if (!req.optimize) return base;
  return optimized(std::move(base), req);
}

Session::Resolved Session::optimized(Resolved base, const RunRequest& req) {
  accel::opt::OptimizeOptions oo;
  oo.dataset = base.dataset.get();
  oo.config = &req.config;
  accel::opt::OptimizeResult res =
      accel::opt::optimize_program(*base.program, oo);
  if (!res.validated) {
    throw std::runtime_error("Session::resolve: optimizer refused '" +
                             base.program->name + "': " + res.failure);
  }
  Resolved out;
  out.dataset = std::move(base.dataset);
  out.source = base.source + "+opt";
  out.optimized_from = base.hash;
  if (!res.changed()) {
    // Identity pipeline: the cached instance is already optimal.
    out.program = std::move(base.program);
    out.hash = base.hash;
    return out;
  }
  auto prog = std::make_shared<const accel::CompiledProgram>(
      std::move(res.program));
  const std::uint64_t h = accel::ir::content_hash(*prog);
  std::lock_guard<std::mutex> lock(mu_);
  // Optimized programs are content-hashed separately: repeated optimized
  // runs (and identical results from different sources) share one
  // instance, distinct from the unoptimized original.
  const auto it = store_.emplace(h, std::move(prog)).first;
  out.program = it->second;
  out.hash = h;
  return out;
}

Session::Resolved Session::resolve_base(const RunRequest& req) {
  if (req.program) {
    if (!req.dataset) {
      throw std::invalid_argument(
          "RunRequest: a pre-compiled program needs a dataset to run "
          "against");
    }
    return Resolved{req.dataset, req.program,
                    accel::ir::content_hash(*req.program), "given"};
  }
  if (!req.program_file.empty()) {
    std::shared_ptr<const graph::Dataset> ds = req.dataset;
    if (!ds && req.benchmark) {
      ds = dataset(gnn::benchmark_dataset(*req.benchmark), req.seed);
    }
    if (!ds) {
      throw std::invalid_argument(
          "RunRequest: program_file needs a dataset (set `dataset` or "
          "`benchmark` to derive one)");
    }
    auto prog = std::make_shared<const accel::CompiledProgram>(
        accel::ir::load_file(req.program_file));
    const std::uint64_t h = accel::ir::content_hash(*prog);
    std::lock_guard<std::mutex> lock(mu_);
    // Enter the hash store so repeated loads (and identical compiled
    // programs) share one instance; file loads keep their own provenance
    // label and don't perturb the hit/miss/dedupe counters.
    const auto it = store_.emplace(h, std::move(prog)).first;
    return Resolved{std::move(ds), it->second, h, "file"};
  }
  if (req.benchmark) {
    auto ds = dataset(gnn::benchmark_dataset(*req.benchmark), req.seed);
    const MemoKey key{*req.benchmark, req.seed};
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (const auto it = memo_.find(key); it != memo_.end()) {
        ++program_hits_;
        return Resolved{std::move(ds), store_.at(it->second), it->second,
                        "hit"};
      }
    }
    // Compile outside the lock: the dataset cache has its own, and two
    // threads racing on one key just do the work twice — the results are
    // identical and first-insert wins.
    auto prog = std::make_shared<const accel::CompiledProgram>(
        accel::ProgramCompiler{}.compile(gnn::make_benchmark_model(
                                             *req.benchmark),
                                         *ds));
    const std::uint64_t h = accel::ir::content_hash(*prog);
    std::lock_guard<std::mutex> lock(mu_);
    memo_[key] = h;
    auto [it, inserted] = store_.emplace(h, std::move(prog));
    if (inserted) {
      ++program_misses_;
      return Resolved{std::move(ds), it->second, h, "miss"};
    }
    // An identical program (same IR text, so same behavior) was already
    // cached — typically the same benchmark under a different seed whose
    // generated topology came out identical.
    ++program_dedupes_;
    return Resolved{std::move(ds), it->second, h, "dedupe"};
  }
  if (req.model && req.dataset) {
    return compile(*req.model, req.dataset);
  }
  throw std::invalid_argument(
      "RunRequest: set a benchmark, a program, a program_file, or a "
      "(model, dataset) pair");
}

accel::RunStats Session::run(const RunRequest& req) {
  const Resolved r = resolve(req);

  accel::AcceleratorConfig cfg = req.config;
  if (req.clock_ghz) cfg = cfg.with_core_clock(*req.clock_ghz);
  if (req.threads) cfg.tile_params.gpe_threads = *req.threads;

  const std::uint32_t num_tiles = cfg.num_tiles();
  accel::AcceleratorSim sim(std::move(cfg), req.partition);
  if (req.watchdog_cycles) sim.set_watchdog_cycles(*req.watchdog_cycles);
  sim.set_verify(req.verify);
  sim.set_trace(req.trace);
  if (req.partition == graph::PartitionPolicy::kProfileGuided &&
      !req.attribution_from.empty()) {
    // Rebalance from the prior run's measured per-vertex load; unprofiled
    // vertices stay round-robin (make_profile_partition's fallback).
    const AttributionProfile prof =
        load_attribution_profile(req.attribution_from);
    NodeId total_vertices = 0;
    for (const auto& g : r.dataset->graphs) total_vertices += g.num_nodes();
    const graph::Partition part = graph::make_profile_partition(
        total_vertices, static_cast<TileId>(num_tiles), prof.vertex_busy);
    std::vector<TileId> owners(total_vertices, 0);
    for (NodeId v = 0; v < total_vertices; ++v) owners[v] = part.owner(v);
    sim.set_work_owners(std::move(owners));
  }

  accel::RunStats rs = sim.run(*r.program, *r.dataset);
  rs.program_hash = r.hash;
  rs.program_cache = r.source;
  rs.optimized_from = r.optimized_from;
  if (req.benchmark) rs.program_name = gnn::benchmark_name(*req.benchmark);
  if (!req.label.empty()) rs.program_name = req.label;
  return rs;
}

Session::CacheCounters Session::cache_counters() const {
  CacheCounters c;
  c.dataset_hits = datasets_.hits();
  c.dataset_misses = datasets_.misses();
  std::lock_guard<std::mutex> lock(mu_);
  c.program_hits = program_hits_;
  c.program_misses = program_misses_;
  c.program_dedupes = program_dedupes_;
  return c;
}

Session& Session::global() {
  static Session session;
  return session;
}

}  // namespace gnna::sim
