// Fans a vector of RunRequests across a pool of worker threads.
//
// Each AcceleratorSim is independent and deterministic, so runs can
// execute in any order on any thread and still produce bit-identical
// stats; the runner assigns requests to workers dynamically (an atomic
// cursor) and writes each result into its request's slot, so the returned
// vector is always in request order regardless of completion order.
//
// A run that throws (e.g. the progress watchdog) does not abort the batch:
// its slot carries the error message and every other run still completes.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "accel/simulator.hpp"
#include "sim/session.hpp"

namespace gnna::sim {

/// Outcome of one request in a batch.
struct RunResult {
  accel::RunStats stats;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return error.empty(); }
};

class BatchRunner {
 public:
  /// `jobs` = number of worker threads; 0 means one per hardware thread.
  /// Runs resolve against `session`'s caches, so identical workloads in
  /// one batch share datasets and programs. `session` must outlive the
  /// runner.
  explicit BatchRunner(Session& session, unsigned jobs = 1);

  /// Called after each run finishes (any thread; calls are serialized).
  /// `index` is the request's position in the batch.
  using ProgressFn = std::function<void(std::size_t index, const RunResult&)>;
  void set_progress(ProgressFn fn) { progress_ = std::move(fn); }

  /// Execute all requests and return their results in request order.
  /// With jobs <= 1 (or a single request) everything runs on the calling
  /// thread — no pool, bit-identical to a hand-rolled serial loop.
  [[nodiscard]] std::vector<RunResult> run(
      const std::vector<RunRequest>& requests);

  [[nodiscard]] unsigned jobs() const { return jobs_; }

 private:
  Session& session_;
  unsigned jobs_;
  ProgressFn progress_;
};

}  // namespace gnna::sim
