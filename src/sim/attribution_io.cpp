#include "sim/attribution_io.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/json.hpp"

namespace gnna::sim {
namespace {

/// The attribution block of one run object, or nullptr.
const json::Value* attribution_of(const json::Value& run) {
  if (!run.is_object()) return nullptr;
  const json::Value* attr = run.find("attribution");
  return (attr != nullptr && attr->is_object()) ? attr : nullptr;
}

}  // namespace

AttributionProfile load_attribution_profile(const std::string& path) {
  const json::Value root = json::parse_file(path);

  const json::Value* attr = attribution_of(root);
  if (attr == nullptr && root.is_array()) {
    for (const json::Value& run : root.items()) {
      attr = attribution_of(run);
      if (attr != nullptr) break;
    }
  }
  if (attr == nullptr) {
    throw std::runtime_error(
        path +
        ": no attribution block found (was the profiling run made with "
        "--attribution?)");
  }

  AttributionProfile p;
  p.busy_max_mean = attr->num_or("busy_max_mean", 0.0);
  p.flit_gini = attr->num_or("flit_gini", 0.0);
  if (const json::Value* tiles = attr->find("tiles");
      tiles != nullptr && tiles->is_array()) {
    p.num_tiles = tiles->size();
  }
  if (const json::Value* verts = attr->find("vertices");
      verts != nullptr && verts->is_array()) {
    for (const json::Value& v : verts->items()) {
      if (!v.is_object()) continue;
      const double id = v.num_or("vertex", -1.0);
      const double busy = v.num_or("busy", 0.0);
      if (id < 0.0 || busy <= 0.0) continue;
      const auto idx = static_cast<std::size_t>(id);
      if (idx >= p.vertex_busy.size()) p.vertex_busy.resize(idx + 1, 0.0);
      // Keep the larger measurement if a vertex somehow appears twice.
      p.vertex_busy[idx] = std::max(p.vertex_busy[idx], busy);
    }
  }
  return p;
}

}  // namespace gnna::sim
