// Minimal JSON reader for tools that consume `gnnasim --json` output
// (gnnatrace). Hand-rolled on purpose: the repo has no JSON dependency and
// does not take one for a ~200-line recursive-descent parser. Supports the
// full JSON grammar except `\uXXXX` surrogate pairs (escapes decode to
// UTF-8 for the BMP, which covers everything gnnasim emits).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gnna::sim::json {

/// Thrown by parse() with a byte offset and a short reason.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// A parsed JSON document node. Objects preserve insertion order; key
/// lookup is linear (profile objects have a handful of keys).
class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Value() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array/object element count (0 for scalars).
  [[nodiscard]] std::size_t size() const;

  /// Array element; throws std::out_of_range.
  [[nodiscard]] const Value& at(std::size_t i) const;

  /// Object member, or nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Convenience: member's number/string, or a default when absent or of
  /// the wrong type. Profile readers use these to stay version-tolerant.
  [[nodiscard]] double num_or(std::string_view key, double dflt) const;
  [[nodiscard]] std::string str_or(std::string_view key,
                                   std::string dflt) const;

  [[nodiscard]] const std::vector<Value>& items() const { return arr_; }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const {
    return obj_;
  }

  /// Parse a complete document; trailing non-whitespace is an error.
  static Value parse(std::string_view text);

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Read a whole file and parse it. Throws ParseError on malformed input
/// and std::runtime_error when the file cannot be read.
Value parse_file(const std::string& path);

}  // namespace gnna::sim::json
