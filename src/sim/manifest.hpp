// Batch-manifest parsing for `gnnasim --batch <file>`.
//
// One run per line; blank lines and `#` comments are skipped. Each line is
// whitespace-separated `key=value` tokens:
//
//   benchmark=GCN/Cora config=gpu-iso-bw clock=1.2 threads=32
//   benchmark=GAT/Cora partition=block seed=7 repeat=4 verify=0
//   benchmark=GCN/Cora mem_scheduler=frfcfs mem_banks=8 mem_row_bytes=2048
//   benchmark=GCN/Cora program=progs/gcn_cora.gnna
//
// `benchmark` is required; every other key defaults to the CLI-level
// default passed in (so `gnnasim --batch runs.txt --config gpu-iso-bw`
// applies to lines that don't override it). `repeat=N` expands the line
// into N identical runs. Unknown keys, malformed values, and unknown names
// are hard errors with the line number in the message.
//
// `program=<file>` loads a GNNA-IR .gnna program instead of compiling; the
// benchmark still supplies the dataset (and the seed still selects its
// variant), and the loaded program runs through accel::verify before
// simulation.
//
// Memory-controller keys (mem_scheduler, mem_banks, mem_row_bytes,
// mem_row_hit_ns, mem_row_miss_ns, mem_window, mem_bank_interleave_bytes,
// mem_bank_xor) and tile
// scratchpad keys (tile_agg_data_bytes, tile_dnq_data_bytes,
// tile_dnq_queue0_sixteenths — what `gnnaverify --fix` suggests) override
// fields of the line's configuration; since `config=` replaces the whole
// configuration, put it before any mem_*/tile_* token on the same line.
//
// Attribution keys: `attribution=1` turns on the per-vertex/per-tile work
// attribution sink for the line (`attribution_top_k=N` bounds its hotspot
// table), and `partition=profile-guided attribution_from=<stats.json>`
// rebalances the line's vertices from a prior run's attribution block:
//
//   benchmark=GCN/Cora config=gpu-iso-bw attribution=1
//   benchmark=GCN/Cora partition=profile-guided attribution_from=p1.json
#pragma once

#include <istream>
#include <optional>
#include <string>
#include <vector>

#include "sim/session.hpp"

namespace gnna::sim {

// Strict value parsers shared by the manifest and the gnnasim CLI: reject
// garbage, trailing junk, and (for integers) negative signs, instead of
// taking whatever strtoull salvages.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(const std::string& s);
[[nodiscard]] std::optional<double> parse_f64(const std::string& s);
[[nodiscard]] std::optional<gnn::Benchmark> benchmark_by_name(
    const std::string& name);
[[nodiscard]] std::optional<accel::AcceleratorConfig> config_by_name(
    const std::string& name);
[[nodiscard]] std::optional<graph::PartitionPolicy> partition_by_name(
    const std::string& name);

/// Parse `in` into run requests, using `defaults` for unset keys (its
/// workload fields are ignored; each line must name its own benchmark).
/// Throws std::invalid_argument with "<source>:<line>: <reason>" on any
/// malformed line.
[[nodiscard]] std::vector<RunRequest> parse_batch_manifest(
    std::istream& in, const RunRequest& defaults,
    const std::string& source = "manifest");

}  // namespace gnna::sim
