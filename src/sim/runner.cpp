// Legacy accel::simulate_benchmark, now a thin shim over the session
// layer. Lives in gnna_sim because gnna_accel must not depend back on it.
#include "accel/runner.hpp"

#include "sim/session.hpp"

namespace gnna::accel {

RunStats simulate_benchmark(gnn::Benchmark benchmark,
                            const AcceleratorConfig& cfg, std::uint64_t seed,
                            const TraceOptions& trace) {
  sim::RunRequest req;
  req.benchmark = benchmark;
  req.config = cfg;
  req.seed = seed;
  req.trace = trace;
  return sim::Session::global().run(req);
}

}  // namespace gnna::accel
