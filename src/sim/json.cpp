#include "sim/json.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

namespace gnna::sim::json {

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw std::logic_error("json: not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw std::logic_error("json: not a number");
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw std::logic_error("json: not a string");
  return str_;
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

const Value& Value::at(std::size_t i) const {
  if (type_ != Type::kArray || i >= arr_.size()) {
    throw std::out_of_range("json: array index " + std::to_string(i));
  }
  return arr_[i];
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Value::num_or(std::string_view key, double dflt) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->num_ : dflt;
}

std::string Value::str_or(std::string_view key, std::string dflt) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->str_ : std::move(dflt);
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("json: " + why, pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
      case 'f': return parse_bool();
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type_ = Value::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      Value key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace_back(std::move(key.str_), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type_ = Value::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value parse_bool() {
    Value v;
    v.type_ = Value::Type::kBool;
    if (consume_literal("true")) {
      v.bool_ = true;
    } else if (consume_literal("false")) {
      v.bool_ = false;
    } else {
      fail("bad literal");
    }
    return v;
  }

  Value parse_string() {
    expect('"');
    Value v;
    v.type_ = Value::Type::kString;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str_ += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.str_ += '"'; break;
        case '\\': v.str_ += '\\'; break;
        case '/': v.str_ += '/'; break;
        case 'b': v.str_ += '\b'; break;
        case 'f': v.str_ += '\f'; break;
        case 'n': v.str_ += '\n'; break;
        case 'r': v.str_ += '\r'; break;
        case 't': v.str_ += '\t'; break;
        case 'u': v.str_ += parse_unicode_escape(); break;
        default: fail("bad escape");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4U;
      if (c >= '0' && c <= '9') {
        cp |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        cp |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        cp |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad \\u escape");
      }
    }
    // BMP-only UTF-8 encoding; surrogate halves come out as-is (gnnasim
    // never emits them).
    std::string out;
    if (cp < 0x80U) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800U) {
      out += static_cast<char>(0xC0U | (cp >> 6U));
      out += static_cast<char>(0x80U | (cp & 0x3FU));
    } else {
      out += static_cast<char>(0xE0U | (cp >> 12U));
      out += static_cast<char>(0x80U | ((cp >> 6U) & 0x3FU));
      out += static_cast<char>(0x80U | (cp & 0x3FU));
    }
    return out;
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type_ = Value::Type::kNumber;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, v.num_);
    if (ec != std::errc() || end != last) {
      pos_ = start;
      fail("bad number");
    }
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Value::parse(ss.str());
}

}  // namespace gnna::sim::json
