#include "sim/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace gnna::sim {

BatchRunner::BatchRunner(Session& session, unsigned jobs)
    : session_(session), jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::thread::hardware_concurrency();
    if (jobs_ == 0) jobs_ = 1;
  }
}

std::vector<RunResult> BatchRunner::run(
    const std::vector<RunRequest>& requests) {
  std::vector<RunResult> results(requests.size());

  std::mutex progress_mu;
  const auto run_one = [&](std::size_t i) {
    RunResult& out = results[i];
    try {
      out.stats = session_.run(requests[i]);
    } catch (const std::exception& e) {
      out.error = e.what();
      if (out.error.empty()) out.error = "unknown error";
    }
    if (progress_) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress_(i, out);
    }
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, requests.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) run_one(i);
    return results;
  }

  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= requests.size()) return;
        run_one(i);
      }
    });
  }
  for (auto& t : pool) t.join();
  return results;
}

}  // namespace gnna::sim
