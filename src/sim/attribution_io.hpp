// Reader for the "attribution" block of a stats-JSON file (schema v5, see
// sim/stats_json.cpp): turns a prior run's per-vertex hotspot table into
// the dense load vector profile-guided partitioning consumes
// (graph::make_profile_partition). Accepts both shapes gnnasim emits — a
// single run object and a batch array (first non-error run with an
// attribution block wins).
#pragma once

#include <string>
#include <vector>

namespace gnna::sim {

/// A prior run's attribution profile, reduced to what the partitioner
/// needs.
struct AttributionProfile {
  /// vertex_busy[v] = measured GPE busy cycles for vertex v; 0.0 for
  /// vertices absent from the (bounded, top-K) hotspot table. Sized to the
  /// largest vertex id seen + 1 — callers index with their own vertex
  /// count and treat out-of-range as unknown.
  std::vector<double> vertex_busy;
  std::size_t num_tiles = 0;     // tiles in the profiled run
  double busy_max_mean = 0.0;    // imbalance of the profiled run
  double flit_gini = 0.0;
};

/// Load and reduce the attribution block of `path`. Throws
/// std::runtime_error when the file is unreadable, malformed, or carries
/// no attribution block (e.g. the profiling run forgot --attribution).
[[nodiscard]] AttributionProfile load_attribution_profile(
    const std::string& path);

}  // namespace gnna::sim
