// The session layer: one process-wide home for everything a simulation run
// needs that is immutable and shareable — generated datasets and compiled
// programs — plus the single entry point that turns a RunRequest into
// RunStats.
//
// Every driver in the repo (gnnasim, the bench_* sweeps, the legacy
// accel::simulate_benchmark wrapper) resolves runs through a Session
// instead of hand-rolling the dataset -> model -> compile -> simulate
// pipeline. Within one Session, N runs of the same benchmark share one
// dataset and one compiled program; only the per-run AcceleratorSim (cheap
// to construct, single-use, fully independent) is rebuilt.
//
// Thread-safety: resolve()/run() may be called concurrently from
// BatchRunner workers. The caches are mutex-guarded; the simulators
// themselves share nothing mutable, so concurrent runs are bit-identical
// to serial runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "accel/config.hpp"
#include "accel/simulator.hpp"
#include "gnn/model.hpp"
#include "graph/dataset_cache.hpp"
#include "graph/partition.hpp"

namespace gnna::sim {

/// One simulation to run: the immutable experiment inputs (what to run)
/// plus the per-run knobs (how to run it). Copyable and cheap — custom
/// datasets and pre-compiled programs are carried by shared_ptr.
struct RunRequest {
  // -- Workload. Exactly one of the four forms must be set; precedence is
  //    program > program_file > benchmark > (model, dataset).
  /// A Table VII benchmark, resolved through the session caches.
  std::optional<gnn::Benchmark> benchmark;
  /// A pre-compiled program (from Session::compile). `dataset` must be the
  /// dataset it will run against (programs are dataset-independent, but
  /// their graph-layout table must match — accel::verify checks, GV012).
  std::shared_ptr<const accel::CompiledProgram> program;
  /// A GNNA-IR program file (.gnna) loaded instead of compiling. The
  /// dataset comes from `dataset` if set, else from `benchmark` + `seed`;
  /// the loaded program runs through accel::verify before simulation.
  std::string program_file;
  /// An explicit model over an explicit dataset (custom sweeps).
  std::optional<gnn::ModelSpec> model;
  std::shared_ptr<const graph::Dataset> dataset;

  // -- Per-run knobs.
  accel::AcceleratorConfig config = accel::AcceleratorConfig::cpu_iso_bw();
  /// Core-clock override in GHz; unset keeps config.core_clock.
  std::optional<double> clock_ghz;
  /// GPE software-thread override; unset keeps config.tile_params.
  std::optional<std::uint32_t> threads;
  graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin;
  /// Profile-guided partitioning input: path to a prior run's stats JSON
  /// (written with TraceOptions::attribution on). With partition ==
  /// kProfileGuided, Session::run loads its per-vertex busy cycles and
  /// rebalances heavy vertices onto underloaded tiles
  /// (graph::make_profile_partition); vertices the profile does not cover
  /// fall back to round-robin. Empty with kProfileGuided degrades to plain
  /// round-robin (nothing to guide).
  std::string attribution_from;
  /// Dataset seed (benchmark form only; explicit datasets carry their own).
  std::uint64_t seed = 2020;
  std::optional<Cycle> watchdog_cycles;
  /// Static program verification (accel::verify) before simulating; the
  /// run throws accel::ProgramVerifyError on lint errors. On by default.
  bool verify = true;
  /// Route the resolved program through the accel::opt pass pipeline,
  /// gated by the translation validator (accel::validate). The optimized
  /// program is content-hashed and cached separately in the session
  /// program store, with provenance "<source>+opt" and the source hash in
  /// RunStats::optimized_from. Throws std::runtime_error if any pass
  /// output cannot be proved equivalent (the unproven program is never
  /// run). Off by default.
  bool optimize = false;
  /// Per-run observability. Under a parallel BatchRunner each run should
  /// get its own sink/stream, or share a thread-safe sink (ChromeTraceSink
  /// is internally locked); plain ostream sample_out must not be shared.
  accel::TraceOptions trace;
  /// Optional display name; overrides the program name in the stats.
  std::string label;
};

class Session {
 public:
  /// A resolved workload: the program, the dataset it runs against, and
  /// cache provenance (the program's GNNA-IR content hash plus where it
  /// came from — "hit", "dedupe", "miss", "file", "adhoc", or "given";
  /// see RunStats::program_cache).
  struct Resolved {
    std::shared_ptr<const graph::Dataset> dataset;
    std::shared_ptr<const accel::CompiledProgram> program;
    std::uint64_t hash = 0;
    std::string source;
    /// Content hash of the pre-optimization program when the request ran
    /// the optimizer (RunRequest::optimize); 0 otherwise.
    std::uint64_t optimized_from = 0;
  };

  /// Cache-hit accounting (for tests and cache-effectiveness reports).
  /// The program cache is two-level: a (benchmark, seed) memo in front of
  /// a content-hash store. `program_hits` counts memo hits (no compile),
  /// `program_dedupes` counts compiles whose IR hash matched an existing
  /// program (compiled, then shared), `program_misses` counts fresh
  /// inserts.
  struct CacheCounters {
    std::uint64_t dataset_hits = 0;
    std::uint64_t dataset_misses = 0;
    std::uint64_t program_hits = 0;
    std::uint64_t program_misses = 0;
    std::uint64_t program_dedupes = 0;
  };

  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The dataset for (id, seed) — shared and cached.
  [[nodiscard]] std::shared_ptr<const graph::Dataset> dataset(
      graph::DatasetId id, std::uint64_t seed = 2020);

  /// Compile `model` over `dataset` into a shareable program (uncached —
  /// the caller reuses the handle across requests; benchmark programs go
  /// through the content-keyed cache in resolve() instead).
  [[nodiscard]] Resolved compile(const gnn::ModelSpec& model,
                                 std::shared_ptr<const graph::Dataset> dataset);

  /// Resolve the workload of `req` against the caches. Benchmark programs
  /// go through a (benchmark, seed) memo in front of a store keyed by
  /// GNNA-IR content hash, so identical programs compiled from different
  /// (benchmark, seed) pairs dedupe to one shared instance. Programs
  /// loaded from .gnna files enter the same hash store. Throws
  /// std::invalid_argument if the request names no workload.
  [[nodiscard]] Resolved resolve(const RunRequest& req);

  /// Resolve and execute one run on a fresh single-use AcceleratorSim.
  [[nodiscard]] accel::RunStats run(const RunRequest& req);

  [[nodiscard]] CacheCounters cache_counters() const;

  /// The shared process-wide session (used by the legacy
  /// accel::simulate_benchmark wrapper so every caller benefits from one
  /// cache).
  [[nodiscard]] static Session& global();

 private:
  using MemoKey = std::pair<gnn::Benchmark, std::uint64_t>;

  /// resolve() minus the optimize step (workload lookup + caches only).
  [[nodiscard]] Resolved resolve_base(const RunRequest& req);
  /// Run `base.program` through accel::opt (validator-gated), entering the
  /// optimized program into the hash store under its own content hash.
  [[nodiscard]] Resolved optimized(Resolved base, const RunRequest& req);

  graph::DatasetCache datasets_;

  mutable std::mutex mu_;
  /// (benchmark, seed) -> IR content hash: answers "have we compiled this
  /// request before" without recompiling.
  std::map<MemoKey, std::uint64_t> memo_;
  /// IR content hash -> the one shared program instance. Entries come from
  /// benchmark compiles and .gnna file loads alike.
  std::map<std::uint64_t, std::shared_ptr<const accel::CompiledProgram>>
      store_;
  std::uint64_t program_hits_ = 0;
  std::uint64_t program_misses_ = 0;
  std::uint64_t program_dedupes_ = 0;
};

}  // namespace gnna::sim
