// The session layer: one process-wide home for everything a simulation run
// needs that is immutable and shareable — generated datasets and compiled
// programs — plus the single entry point that turns a RunRequest into
// RunStats.
//
// Every driver in the repo (gnnasim, the bench_* sweeps, the legacy
// accel::simulate_benchmark wrapper) resolves runs through a Session
// instead of hand-rolling the dataset -> model -> compile -> simulate
// pipeline. Within one Session, N runs of the same benchmark share one
// dataset and one compiled program; only the per-run AcceleratorSim (cheap
// to construct, single-use, fully independent) is rebuilt.
//
// Thread-safety: resolve()/run() may be called concurrently from
// BatchRunner workers. The caches are mutex-guarded; the simulators
// themselves share nothing mutable, so concurrent runs are bit-identical
// to serial runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "accel/config.hpp"
#include "accel/simulator.hpp"
#include "gnn/model.hpp"
#include "graph/dataset_cache.hpp"
#include "graph/partition.hpp"

namespace gnna::sim {

/// One simulation to run: the immutable experiment inputs (what to run)
/// plus the per-run knobs (how to run it). Copyable and cheap — custom
/// datasets and pre-compiled programs are carried by shared_ptr.
struct RunRequest {
  // -- Workload. Exactly one of the three forms must be set; precedence is
  //    program > benchmark > (model, dataset).
  /// A Table VII benchmark, resolved through the session caches.
  std::optional<gnn::Benchmark> benchmark;
  /// A pre-compiled program (from Session::compile). `dataset` must be the
  /// dataset it was compiled against (the program references it).
  std::shared_ptr<const accel::CompiledProgram> program;
  /// An explicit model over an explicit dataset (custom sweeps).
  std::optional<gnn::ModelSpec> model;
  std::shared_ptr<const graph::Dataset> dataset;

  // -- Per-run knobs.
  accel::AcceleratorConfig config = accel::AcceleratorConfig::cpu_iso_bw();
  /// Core-clock override in GHz; unset keeps config.core_clock.
  std::optional<double> clock_ghz;
  /// GPE software-thread override; unset keeps config.tile_params.
  std::optional<std::uint32_t> threads;
  graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin;
  /// Dataset seed (benchmark form only; explicit datasets carry their own).
  std::uint64_t seed = 2020;
  std::optional<Cycle> watchdog_cycles;
  /// Static program verification (accel::verify) before simulating; the
  /// run throws accel::ProgramVerifyError on lint errors. On by default.
  bool verify = true;
  /// Per-run observability. Under a parallel BatchRunner each run should
  /// get its own sink/stream, or share a thread-safe sink (ChromeTraceSink
  /// is internally locked); plain ostream sample_out must not be shared.
  accel::TraceOptions trace;
  /// Optional display name; overrides the program name in the stats.
  std::string label;
};

class Session {
 public:
  /// A resolved workload: the program plus the dataset keeping it alive
  /// (CompiledProgram holds a non-owning dataset pointer).
  struct Resolved {
    std::shared_ptr<const graph::Dataset> dataset;
    std::shared_ptr<const accel::CompiledProgram> program;
  };

  /// Cache-hit accounting (for tests and cache-effectiveness reports).
  struct CacheCounters {
    std::uint64_t dataset_hits = 0;
    std::uint64_t dataset_misses = 0;
    std::uint64_t program_hits = 0;
    std::uint64_t program_misses = 0;
  };

  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The dataset for (id, seed) — shared and cached.
  [[nodiscard]] std::shared_ptr<const graph::Dataset> dataset(
      graph::DatasetId id, std::uint64_t seed = 2020);

  /// Compile `model` over `dataset` into a shareable program (uncached —
  /// the caller reuses the handle across requests; benchmark programs go
  /// through the content-keyed cache in resolve() instead).
  [[nodiscard]] Resolved compile(const gnn::ModelSpec& model,
                                 std::shared_ptr<const graph::Dataset> dataset);

  /// Resolve the workload of `req` against the caches. Benchmark programs
  /// are cached by (benchmark, seed) — the dataset is determined by the
  /// benchmark plus the seed and the model by the benchmark alone, so the
  /// key is content-complete. Throws std::invalid_argument if the request
  /// names no workload.
  [[nodiscard]] Resolved resolve(const RunRequest& req);

  /// Resolve and execute one run on a fresh single-use AcceleratorSim.
  [[nodiscard]] accel::RunStats run(const RunRequest& req);

  [[nodiscard]] CacheCounters cache_counters() const;

  /// The shared process-wide session (used by the legacy
  /// accel::simulate_benchmark wrapper so every caller benefits from one
  /// cache).
  [[nodiscard]] static Session& global();

 private:
  using ProgramKey = std::pair<gnn::Benchmark, std::uint64_t>;

  graph::DatasetCache datasets_;

  mutable std::mutex mu_;
  std::map<ProgramKey, Resolved> programs_;
  std::uint64_t program_hits_ = 0;
  std::uint64_t program_misses_ = 0;
};

}  // namespace gnna::sim
