#include "trace/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace gnna::trace {

namespace {

/// SplitMix64 finalizer — cheap, well-mixed hash for the sketch rows.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::size_t next_pow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1U;
  return p;
}

}  // namespace

double AttributionReport::busy_max_mean() const {
  if (tiles.empty()) return 0.0;
  double sum = 0.0;
  double mx = 0.0;
  for (const TileAttribution& t : tiles) {
    sum += t.busy;
    mx = std::max(mx, t.busy);
  }
  const double mean = sum / static_cast<double>(tiles.size());
  return mean > 0.0 ? mx / mean : 0.0;
}

double AttributionReport::flit_gini() const {
  const std::size_t n = tiles.size();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (const TileAttribution& t : tiles) {
    sum += static_cast<double>(t.flits);
  }
  if (sum <= 0.0) return 0.0;
  double abs_diff = 0.0;
  for (const TileAttribution& a : tiles) {
    for (const TileAttribution& b : tiles) {
      abs_diff += std::abs(static_cast<double>(a.flits) -
                           static_cast<double>(b.flits));
    }
  }
  // Gini = sum_ij |xi - xj| / (2 n^2 mean), with n^2 * mean = n * sum.
  return abs_diff / (2.0 * static_cast<double>(n) * sum);
}

Attribution::Attribution(std::uint32_t num_tiles,
                         std::vector<std::uint32_t> ep_to_tile,
                         std::size_t top_k)
    : top_k_(std::max<std::size_t>(top_k, 1)),
      ep_to_tile_(std::move(ep_to_tile)),
      tiles_(num_tiles),
      width_(next_pow2(std::max<std::size_t>(top_k_ * 8, 1024))),
      sketch_(kRows * width_, 0.0) {}

void Attribution::sketch_update(std::uint32_t owner, double w) {
  for (std::size_t r = 0; r < kRows; ++r) {
    const std::uint64_t h = mix(owner + (static_cast<std::uint64_t>(r) << 32));
    sketch_[r * width_ + (h & (width_ - 1))] += w;
  }
}

double Attribution::sketch_estimate(std::uint32_t owner) const {
  double est = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < kRows; ++r) {
    const std::uint64_t h = mix(owner + (static_cast<std::uint64_t>(r) << 32));
    est = std::min(est, sketch_[r * width_ + (h & (width_ - 1))]);
  }
  return est;
}

Attribution::Candidate& Attribution::touch(std::uint32_t owner,
                                           double score_delta) {
  sketch_update(owner, score_delta);
  if (const auto it = candidates_.find(owner); it != candidates_.end()) {
    return it->second;
  }
  if (candidates_.size() < top_k_) {
    return candidates_[owner];
  }
  // Space-saving admission: evict the current minimum only when this
  // owner's sketched total exceeds it; the newcomer inherits the evicted
  // score as `carry` (its rows become upper bounds, flagged approx).
  const double est = sketch_estimate(owner);
  if (est <= min_score_) return discard_;
  auto min_it = candidates_.begin();
  double min_sc = score(min_it->second);
  for (auto it = std::next(candidates_.begin()); it != candidates_.end();
       ++it) {
    if (const double sc = score(it->second); sc < min_sc) {
      min_sc = sc;
      min_it = it;
    }
  }
  min_score_ = min_sc;
  if (est <= min_sc) return discard_;
  candidates_.erase(min_it);
  Candidate& c = candidates_[owner];
  c.carry = min_sc;
  return c;
}

void Attribution::complete(Category cat, std::uint32_t unit, const char* name,
                           double /*start*/, double dur, std::uint64_t a,
                           std::uint64_t /*b*/) {
  if (cat != Category::kGpe) return;
  if (unit < tiles_.size()) tiles_[unit].busy += dur;
  // Only the top-level task span feeds per-vertex busy; traverse/body are
  // nested inside it and would double count.
  if (std::strcmp(name, "task") != 0) return;
  if (unit < tiles_.size()) ++tiles_[unit].tasks;
  const auto owner = static_cast<std::uint32_t>(a);
  Candidate& c = touch(owner, dur);
  c.busy += dur;
  ++c.tasks;
}

void Attribution::phase_begin(const char* /*name*/, double at) {
  if (!span_started_ || at < span_begin_) span_begin_ = at;
  span_started_ = true;
}

void Attribution::phase_end(const char* /*name*/, double at) {
  span_end_ = std::max(span_end_, at);
}

void Attribution::packet(std::uint32_t src_ep, std::uint32_t dst_ep,
                         std::uint32_t owner, std::uint32_t flits,
                         std::uint32_t hops, std::uint32_t payload_bytes) {
  const auto tile_of = [this](std::uint32_t ep) -> std::uint32_t {
    return ep < ep_to_tile_.size() ? ep_to_tile_[ep] : kNoTile;
  };
  // Charge the tile endpoint the packet touched; requests to memory are
  // charged at the source tile, responses at the destination tile.
  std::uint32_t tile = tile_of(src_ep);
  if (tile == kNoTile) tile = tile_of(dst_ep);
  if (tile != kNoTile && tile < tiles_.size()) {
    TileAttribution& t = tiles_[tile];
    t.flits += flits;
    t.flit_hops += std::uint64_t{flits} * hops;
    t.bytes += payload_bytes;
  }
  if (owner == kUnowned) {
    unattributed_flits_ += flits;
    return;
  }
  Candidate& c = touch(owner, static_cast<double>(flits));
  c.flits += flits;
  c.bytes += payload_bytes;
}

void Attribution::charge(Category cat, std::uint32_t unit, std::uint32_t owner,
                         double cycles) {
  if (cat == Category::kAgg && unit < tiles_.size()) {
    tiles_[unit].agg_busy += cycles;
  }
  if (owner == kUnowned) return;
  touch(owner, 0.0).agg_busy += cycles;
}

AttributionReport Attribution::report() const {
  AttributionReport rep;
  rep.top_k = top_k_;
  rep.span = span_started_ ? std::max(0.0, span_end_ - span_begin_) : 0.0;
  rep.unattributed_flits = unattributed_flits_;
  rep.tiles = tiles_;
  for (TileAttribution& t : rep.tiles) {
    rep.total_busy += t.busy;
    t.idle = std::max(0.0, rep.span - t.busy);
  }
  rep.vertices.reserve(candidates_.size());
  for (const auto& [owner, c] : candidates_) {
    VertexHotspot h;
    h.vertex = owner;
    h.busy = c.busy;
    h.agg_busy = c.agg_busy;
    h.tasks = c.tasks;
    h.flits = c.flits;
    h.bytes = c.bytes;
    h.approx = c.carry > 0.0;
    rep.vertices.push_back(h);
  }
  std::sort(rep.vertices.begin(), rep.vertices.end(),
            [](const VertexHotspot& a, const VertexHotspot& b) {
              if (a.busy != b.busy) return a.busy > b.busy;
              return a.vertex < b.vertex;
            });
  if (rep.vertices.size() > top_k_) rep.vertices.resize(top_k_);
  return rep;
}

}  // namespace gnna::trace
