// Event tracing for the simulator — the observability layer.
//
// Every simulated component carries a `Tracer` handle. By default the
// handle is disabled (null sink): each trace call is a single predictable
// branch, so an untraced run pays essentially nothing. When a sink is
// attached, components emit
//
//   * duration ("complete") events — a unit occupied for [start, start+dur)
//     cycles (DNA entry occupancy, AGG reductions, DRAM bus transfers,
//     GPE task lifetimes);
//   * instant events — a point occurrence (DNQ allocations/dequeues/queue
//     switches, GPE thread switches and alloc stalls, NoC packet
//     send/deliver, memory responses);
//   * counter events — sampled time series (queue depths, live entries).
//
// `ChromeTraceSink` serializes them in the Chrome trace-event JSON format,
// loadable in chrome://tracing and https://ui.perfetto.dev. Timestamps are
// NoC cycles written in the "ts" microsecond field, so 1 us in the viewer
// equals 1 NoC cycle. Events are grouped per category ("process") and per
// unit ("thread": tile index, or memory-controller index).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gnna::trace {

/// Event source categories — one trace "process" each. kSim carries
/// runtime-level events (phase spans, barriers) rather than a hardware
/// unit's.
enum class Category : std::uint8_t { kGpe, kDnq, kDna, kAgg, kNoc, kMem,
                                     kSim };
inline constexpr std::size_t kNumCategories = 7;

[[nodiscard]] constexpr const char* category_name(Category c) {
  switch (c) {
    case Category::kGpe: return "gpe";
    case Category::kDnq: return "dnq";
    case Category::kDna: return "dna";
    case Category::kAgg: return "agg";
    case Category::kNoc: return "noc";
    case Category::kMem: return "mem";
    case Category::kSim: return "sim";
  }
  return "?";
}

/// category_name in reverse; nullopt-free: returns kNumCategories on miss.
[[nodiscard]] std::size_t category_by_name(const char* name);

/// Receives decoded trace events. Implementations must tolerate
/// out-of-order timestamps (components emit as they simulate and their
/// local clocks skew within a tick).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// A duration event: `unit` was occupied by `name` for
  /// [start, start + dur) NoC cycles. `a` / `b` are event-defined details
  /// (handles, byte counts...) surfaced in the viewer's args pane.
  virtual void complete(Category cat, std::uint32_t unit, const char* name,
                        double start, double dur, std::uint64_t a,
                        std::uint64_t b) = 0;

  /// A point event at cycle `at`.
  virtual void instant(Category cat, std::uint32_t unit, const char* name,
                       double at, std::uint64_t a, std::uint64_t b) = 0;

  /// A sampled counter value at cycle `at`.
  virtual void counter(Category cat, std::uint32_t unit, const char* name,
                       double at, double value) = 0;

  /// Phase markers — the runtime (AcceleratorSim) brackets every program
  /// phase of Algorithm 1 with a begin/end pair at the phase's barrier
  /// cycles. Markers are pure observation: they cost nothing in the timing
  /// model and default to no-ops so existing sinks keep compiling. Within
  /// one run, all events emitted between a begin/end pair belong to that
  /// phase (the global barrier guarantees no spill-over).
  virtual void phase_begin(const char* name, double at) {
    (void)name;
    (void)at;
  }
  virtual void phase_end(const char* name, double at) {
    (void)name;
    (void)at;
  }

  /// Attribution hooks — like phase markers, pure observation with no-op
  /// defaults so existing sinks keep compiling. `owner` is the global work
  /// item (vertex or graph id) a cost belongs to, or 0xffffffff when the
  /// traffic has no owner (weight preloads, control messages).
  ///
  /// A NoC packet fully delivered: `flits` wormhole flits travelled `hops`
  /// mesh links from endpoint `src_ep` to `dst_ep` carrying
  /// `payload_bytes` of owner `owner`'s data.
  virtual void packet(std::uint32_t src_ep, std::uint32_t dst_ep,
                      std::uint32_t owner, std::uint32_t flits,
                      std::uint32_t hops, std::uint32_t payload_bytes) {
    (void)src_ep, (void)dst_ep, (void)owner;
    (void)flits, (void)hops, (void)payload_bytes;
  }

  /// `cycles` of unit `unit`'s busy time (category `cat`) charged to work
  /// item `owner` — e.g. an AGG entry's reduce occupancy.
  virtual void charge(Category cat, std::uint32_t unit, std::uint32_t owner,
                      double cycles) {
    (void)cat, (void)unit, (void)owner, (void)cycles;
  }
};

/// Fans one event stream out to several sinks (e.g. a ChromeTraceSink and
/// a Profiler consuming the same run). Sinks are not owned.
class TeeSink final : public TraceSink {
 public:
  TeeSink() = default;
  explicit TeeSink(std::vector<TraceSink*> sinks) : sinks_(std::move(sinks)) {}

  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }

  void complete(Category cat, std::uint32_t unit, const char* name,
                double start, double dur, std::uint64_t a,
                std::uint64_t b) override {
    for (TraceSink* s : sinks_) s->complete(cat, unit, name, start, dur, a, b);
  }
  void instant(Category cat, std::uint32_t unit, const char* name, double at,
               std::uint64_t a, std::uint64_t b) override {
    for (TraceSink* s : sinks_) s->instant(cat, unit, name, at, a, b);
  }
  void counter(Category cat, std::uint32_t unit, const char* name, double at,
               double value) override {
    for (TraceSink* s : sinks_) s->counter(cat, unit, name, at, value);
  }
  void phase_begin(const char* name, double at) override {
    for (TraceSink* s : sinks_) s->phase_begin(name, at);
  }
  void phase_end(const char* name, double at) override {
    for (TraceSink* s : sinks_) s->phase_end(name, at);
  }
  void packet(std::uint32_t src_ep, std::uint32_t dst_ep, std::uint32_t owner,
              std::uint32_t flits, std::uint32_t hops,
              std::uint32_t payload_bytes) override {
    for (TraceSink* s : sinks_) {
      s->packet(src_ep, dst_ep, owner, flits, hops, payload_bytes);
    }
  }
  void charge(Category cat, std::uint32_t unit, std::uint32_t owner,
              double cycles) override {
    for (TraceSink* s : sinks_) s->charge(cat, unit, owner, cycles);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

/// The per-component handle: a (sink, clock, category, unit) tuple.
/// Default-constructed tracers are disabled and free; all methods reduce to
/// one branch. The clock pointer (the owning network's cycle counter) lets
/// components without a network reference (e.g. the DNQ) stamp events.
class Tracer {
 public:
  Tracer() = default;
  Tracer(TraceSink* sink, const std::uint64_t* clock, Category cat,
         std::uint32_t unit)
      : sink_(sink), clock_(clock), cat_(cat), unit_(unit) {}

  [[nodiscard]] bool enabled() const { return sink_ != nullptr; }

  void complete(const char* name, double start, double dur,
                std::uint64_t a = 0, std::uint64_t b = 0) const {
    if (sink_ != nullptr) sink_->complete(cat_, unit_, name, start, dur, a, b);
  }
  /// Instant event stamped with the current cycle.
  void instant(const char* name, std::uint64_t a = 0,
               std::uint64_t b = 0) const {
    if (sink_ != nullptr) {
      sink_->instant(cat_, unit_, name, static_cast<double>(*clock_), a, b);
    }
  }
  void instant_at(const char* name, double at, std::uint64_t a = 0,
                  std::uint64_t b = 0) const {
    if (sink_ != nullptr) sink_->instant(cat_, unit_, name, at, a, b);
  }
  void counter(const char* name, double value) const {
    if (sink_ != nullptr) {
      sink_->counter(cat_, unit_, name, static_cast<double>(*clock_), value);
    }
  }
  void packet(std::uint32_t src_ep, std::uint32_t dst_ep, std::uint32_t owner,
              std::uint32_t flits, std::uint32_t hops,
              std::uint32_t payload_bytes) const {
    if (sink_ != nullptr) {
      sink_->packet(src_ep, dst_ep, owner, flits, hops, payload_bytes);
    }
  }
  void charge(std::uint32_t owner, double cycles) const {
    if (sink_ != nullptr) sink_->charge(cat_, unit_, owner, cycles);
  }

 private:
  TraceSink* sink_ = nullptr;
  const std::uint64_t* clock_ = nullptr;
  Category cat_ = Category::kGpe;
  std::uint32_t unit_ = 0;
};

/// Streams Chrome trace-event JSON ({"traceEvents": [...]}) to an ostream.
/// The JSON document is closed by close() or the destructor; the target
/// stream must outlive the sink. Thread-safe: each event is written under
/// an internal mutex, so one sink may be shared by concurrent simulations
/// (e.g. a parallel BatchRunner); events from different runs interleave
/// but each is well-formed.
class ChromeTraceSink final : public TraceSink {
 public:
  explicit ChromeTraceSink(std::ostream& os);
  ~ChromeTraceSink() override;

  ChromeTraceSink(const ChromeTraceSink&) = delete;
  ChromeTraceSink& operator=(const ChromeTraceSink&) = delete;

  void complete(Category cat, std::uint32_t unit, const char* name,
                double start, double dur, std::uint64_t a,
                std::uint64_t b) override;
  void instant(Category cat, std::uint32_t unit, const char* name, double at,
               std::uint64_t a, std::uint64_t b) override;
  void counter(Category cat, std::uint32_t unit, const char* name, double at,
               double value) override;

  /// Phase markers render as one duration event per phase on the "sim"
  /// process, so the viewer shows the Algorithm 1 phase structure as a
  /// top-level lane above the unit events.
  void phase_begin(const char* name, double at) override;
  void phase_end(const char* name, double at) override;

  /// Write the closing bracket and flush. Idempotent.
  void close();

  [[nodiscard]] std::uint64_t events_written() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  /// Emit process/thread naming metadata the first time (cat, unit) is seen.
  void announce(Category cat, std::uint32_t unit);
  void begin_event(Category cat, std::uint32_t unit, const char* name,
                   char phase, double ts);

  mutable std::mutex mu_;
  std::ostream& os_;
  bool closed_ = false;
  bool first_ = true;
  std::uint64_t events_ = 0;
  std::array<std::vector<bool>, kNumCategories> announced_{};
  // Open phases awaiting their end marker (matched by name, newest first,
  // so per-run sinks pair correctly even if a run aborts mid-phase).
  std::vector<std::pair<std::string, double>> open_phases_;
};

}  // namespace gnna::trace
