#include "trace/trace.hpp"

#include <cstring>

namespace gnna::trace {
namespace {

/// Chrome's JSON readers reject NaN/Inf literals; clamp to 0.
[[nodiscard]] double sanitize(double x) { return x == x ? x : 0.0; }

}  // namespace

std::size_t category_by_name(const char* name) {
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    if (std::strcmp(name, category_name(static_cast<Category>(c))) == 0) {
      return c;
    }
  }
  return kNumCategories;
}

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(os) {
  os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  os_ << "\n]}\n";
  os_.flush();
}

void ChromeTraceSink::announce(Category cat, std::uint32_t unit) {
  auto& seen = announced_[static_cast<std::size_t>(cat)];
  if (unit < seen.size() && seen[unit]) return;
  const int pid = static_cast<int>(cat) + 1;
  if (seen.empty()) {
    // First event of the category: name its "process".
    if (!first_) os_ << ',';
    first_ = false;
    os_ << "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"args\":{\"name\":\"" << category_name(cat) << "\"}}";
  }
  if (unit >= seen.size()) seen.resize(unit + 1, false);
  seen[unit] = true;
  os_ << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
      << ",\"tid\":" << unit + 1 << ",\"args\":{\"name\":\""
      << category_name(cat) << '.' << unit << "\"}}";
}

void ChromeTraceSink::begin_event(Category cat, std::uint32_t unit,
                                  const char* name, char phase, double ts) {
  announce(cat, unit);
  if (!first_) os_ << ',';
  first_ = false;
  ++events_;
  os_ << "\n{\"ph\":\"" << phase << "\",\"name\":\"" << name
      << "\",\"cat\":\"" << category_name(cat)
      << "\",\"pid\":" << static_cast<int>(cat) + 1 << ",\"tid\":" << unit + 1
      << ",\"ts\":" << sanitize(ts);
}

void ChromeTraceSink::complete(Category cat, std::uint32_t unit,
                               const char* name, double start, double dur,
                               std::uint64_t a, std::uint64_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  begin_event(cat, unit, name, 'X', start);
  os_ << ",\"dur\":" << sanitize(dur) << ",\"args\":{\"a\":" << a
      << ",\"b\":" << b << "}}";
}

void ChromeTraceSink::instant(Category cat, std::uint32_t unit,
                              const char* name, double at, std::uint64_t a,
                              std::uint64_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  begin_event(cat, unit, name, 'i', at);
  os_ << ",\"s\":\"t\",\"args\":{\"a\":" << a << ",\"b\":" << b << "}}";
}

void ChromeTraceSink::counter(Category cat, std::uint32_t unit,
                              const char* name, double at, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  begin_event(cat, unit, name, 'C', at);
  os_ << ",\"args\":{\"value\":" << sanitize(value) << "}}";
}

void ChromeTraceSink::phase_begin(const char* name, double at) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  open_phases_.emplace_back(name, at);
}

void ChromeTraceSink::phase_end(const char* name, double at) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  // Unmatched ends are dropped (same policy as the Profiler): emitting a
  // zero-length span at `at` would misrepresent the run.
  for (auto it = open_phases_.rbegin(); it != open_phases_.rend(); ++it) {
    if (it->first == name) {
      const double start = it->second;
      open_phases_.erase(std::next(it).base());
      begin_event(Category::kSim, 0, name, 'X', start);
      os_ << ",\"dur\":" << sanitize(at - start) << ",\"args\":{}}";
      return;
    }
  }
}

}  // namespace gnna::trace
