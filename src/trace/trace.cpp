#include "trace/trace.hpp"

namespace gnna::trace {
namespace {

/// Chrome's JSON readers reject NaN/Inf literals; clamp to 0.
[[nodiscard]] double sanitize(double x) { return x == x ? x : 0.0; }

}  // namespace

ChromeTraceSink::ChromeTraceSink(std::ostream& os) : os_(os) {
  os_ << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
}

ChromeTraceSink::~ChromeTraceSink() { close(); }

void ChromeTraceSink::close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  closed_ = true;
  os_ << "\n]}\n";
  os_.flush();
}

void ChromeTraceSink::announce(Category cat, std::uint32_t unit) {
  auto& seen = announced_[static_cast<std::size_t>(cat)];
  if (unit < seen.size() && seen[unit]) return;
  const int pid = static_cast<int>(cat) + 1;
  if (seen.empty()) {
    // First event of the category: name its "process".
    if (!first_) os_ << ',';
    first_ = false;
    os_ << "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"args\":{\"name\":\"" << category_name(cat) << "\"}}";
  }
  if (unit >= seen.size()) seen.resize(unit + 1, false);
  seen[unit] = true;
  os_ << ",\n{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << pid
      << ",\"tid\":" << unit + 1 << ",\"args\":{\"name\":\""
      << category_name(cat) << '.' << unit << "\"}}";
}

void ChromeTraceSink::begin_event(Category cat, std::uint32_t unit,
                                  const char* name, char phase, double ts) {
  announce(cat, unit);
  if (!first_) os_ << ',';
  first_ = false;
  ++events_;
  os_ << "\n{\"ph\":\"" << phase << "\",\"name\":\"" << name
      << "\",\"cat\":\"" << category_name(cat)
      << "\",\"pid\":" << static_cast<int>(cat) + 1 << ",\"tid\":" << unit + 1
      << ",\"ts\":" << sanitize(ts);
}

void ChromeTraceSink::complete(Category cat, std::uint32_t unit,
                               const char* name, double start, double dur,
                               std::uint64_t a, std::uint64_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  begin_event(cat, unit, name, 'X', start);
  os_ << ",\"dur\":" << sanitize(dur) << ",\"args\":{\"a\":" << a
      << ",\"b\":" << b << "}}";
}

void ChromeTraceSink::instant(Category cat, std::uint32_t unit,
                              const char* name, double at, std::uint64_t a,
                              std::uint64_t b) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  begin_event(cat, unit, name, 'i', at);
  os_ << ",\"s\":\"t\",\"args\":{\"a\":" << a << ",\"b\":" << b << "}}";
}

void ChromeTraceSink::counter(Category cat, std::uint32_t unit,
                              const char* name, double at, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  begin_event(cat, unit, name, 'C', at);
  os_ << ",\"args\":{\"value\":" << sanitize(value) << "}}";
}

}  // namespace gnna::trace
