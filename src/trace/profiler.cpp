#include "trace/profiler.hpp"

#include <algorithm>
#include <cstring>

#include "common/table.hpp"

namespace gnna::trace {
namespace {

/// Direct parent of a flame path ("task/gather" -> "task"); empty for
/// roots.
[[nodiscard]] std::string parent_path(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Subtract every node's total from its direct parent's self time.
void finalize_self_times(std::vector<FlameNode>& nodes) {
  for (auto& n : nodes) n.self = n.total;
  for (const auto& n : nodes) {
    const std::string parent = parent_path(n.path);
    if (parent.empty()) continue;
    const auto it =
        std::find_if(nodes.begin(), nodes.end(),
                     [&](const FlameNode& p) { return p.path == parent; });
    if (it != nodes.end()) it->self -= n.total;
  }
}

}  // namespace

double ProfileReport::total_cycles() const {
  double total = 0.0;
  for (const auto& ph : phases) total += ph.cycles();
  return total;
}

double ProfileReport::busy_total(Category cat) const {
  double total = 0.0;
  for (const auto& ph : phases) total += ph.busy[static_cast<std::size_t>(cat)];
  return total;
}

std::vector<FlameNode> ProfileReport::merged_flame() const {
  std::map<std::string, FlameNode> merged;
  for (const auto& ph : phases) {
    for (const auto& n : ph.flame) {
      FlameNode& m = merged[n.path];
      m.path = n.path;
      m.count += n.count;
      m.total += n.total;
      m.max = std::max(m.max, n.max);
    }
  }
  std::vector<FlameNode> out;
  out.reserve(merged.size());
  for (auto& [path, n] : merged) out.push_back(std::move(n));
  finalize_self_times(out);
  return out;
}

void print_profile(std::ostream& os, const ProfileReport& report,
                   std::size_t top_n) {
  const double total = report.total_cycles();

  os << "per-phase profile (cycles; busy = summed duration events):\n";
  Table pt({"Phase", "Cycles", "Share", "Tasks", "GPE busy", "DNA busy",
            "AGG busy", "Mem busy", "NoC pkt-cyc", "Stalls"});
  const auto fmt = [](double v) { return format_double(v, 0); };
  for (const auto& ph : report.phases) {
    pt.add_row({ph.name, fmt(ph.cycles()),
                format_percent(total > 0.0 ? ph.cycles() / total : 0.0),
                std::to_string(ph.tasks),
                fmt(ph.busy[static_cast<std::size_t>(Category::kGpe)]),
                fmt(ph.busy[static_cast<std::size_t>(Category::kDna)]),
                fmt(ph.busy[static_cast<std::size_t>(Category::kAgg)]),
                fmt(ph.busy[static_cast<std::size_t>(Category::kMem)]),
                fmt(ph.busy[static_cast<std::size_t>(Category::kNoc)]),
                std::to_string(ph.alloc_stalls)});
  }
  pt.print(os);

  std::vector<FlameNode> flame = report.merged_flame();
  if (!flame.empty()) {
    std::sort(flame.begin(), flame.end(),
              [](const FlameNode& a, const FlameNode& b) {
                return a.total > b.total;
              });
    if (flame.size() > top_n) flame.resize(top_n);

    os << "\nGPE flame rollup (top " << flame.size() << " by total):\n";
    Table ft({"Path", "Count", "Total", "Self", "Avg", "Max"});
    for (const auto& n : flame) {
      ft.add_row({n.path, std::to_string(n.count), fmt(n.total), fmt(n.self),
                  format_double(n.count > 0
                                    ? n.total / static_cast<double>(n.count)
                                    : 0.0,
                                1),
                  fmt(n.max)});
    }
    ft.print(os);
  }

  // Counter series, one row per (phase, category, name). `Mean` is the
  // time-weighted average — for change-sampled series like AGG table
  // occupancy, that is the average occupancy over the phase.
  bool any_counters = false;
  for (const auto& ph : report.phases) {
    any_counters = any_counters || !ph.counters.empty();
  }
  if (!any_counters) return;
  os << "\ncounters (Mean = time-weighted over the phase):\n";
  Table ct({"Phase", "Unit", "Counter", "Samples", "Mean", "Last", "Max"});
  for (const auto& ph : report.phases) {
    for (const auto& c : ph.counters) {
      ct.add_row({ph.name, category_name(c.cat), c.name,
                  std::to_string(c.samples), format_double(c.mean, 1),
                  fmt(c.last), fmt(c.max)});
    }
  }
  ct.print(os);
}

Profiler::PhaseAgg& Profiler::current() {
  if (open_phase_ >= 0) return phases_[static_cast<std::size_t>(open_phase_)];
  if (outside_.name.empty()) outside_.name = "(outside)";
  return outside_;
}

void Profiler::complete(Category cat, std::uint32_t unit, const char* name,
                        double /*start*/, double dur, std::uint64_t /*a*/,
                        std::uint64_t /*b*/) {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseAgg& ph = current();
  const auto c = static_cast<std::size_t>(cat);
  ph.busy[c] += dur;
  ++ph.completes[c];

  UnitProfile& u = ph.units[{static_cast<std::uint8_t>(cat), unit}];
  u.cat = cat;
  u.unit = unit;
  u.busy += dur;
  ++u.completes;

  if (cat == Category::kGpe) {
    FlameNode& n = ph.flame[name];
    if (n.path.empty()) n.path = name;
    ++n.count;
    n.total += dur;
    n.max = std::max(n.max, dur);
    if (std::strcmp(name, "task") == 0) ++ph.tasks;
  }
}

void Profiler::instant(Category cat, std::uint32_t unit, const char* name,
                       double /*at*/, std::uint64_t /*a*/,
                       std::uint64_t /*b*/) {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseAgg& ph = current();
  const auto c = static_cast<std::size_t>(cat);
  ++ph.instants[c];

  UnitProfile& u = ph.units[{static_cast<std::uint8_t>(cat), unit}];
  u.cat = cat;
  u.unit = unit;
  ++u.instants;

  if (cat == Category::kGpe && std::strcmp(name, "alloc_stall") == 0) {
    ++ph.alloc_stalls;
  }
}

void Profiler::counter(Category cat, std::uint32_t /*unit*/, const char* name,
                       double at, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseAgg& ph = current();
  CounterAgg& ca = ph.counters[{static_cast<std::uint8_t>(cat), name}];
  CounterStat& cs = ca.cs;
  cs.cat = cat;
  if (cs.name.empty()) cs.name = name;
  ++cs.samples;
  cs.last = value;
  cs.max = std::max(cs.max, value);
  if (ca.has_prev && at > ca.prev_at) {
    ca.acc.add_weighted(ca.prev_value, at - ca.prev_at);
  }
  ca.prev_value = value;
  ca.prev_at = at;
  ca.has_prev = true;
}

void Profiler::phase_begin(const char* name, double at) {
  std::lock_guard<std::mutex> lock(mu_);
  PhaseAgg ph;
  ph.name = name;
  ph.start = at;
  ph.end = at;
  ph.open = true;
  phases_.push_back(std::move(ph));
  open_phase_ = static_cast<int>(phases_.size()) - 1;
}

void Profiler::phase_end(const char* name, double at) {
  std::lock_guard<std::mutex> lock(mu_);
  if (open_phase_ < 0) return;  // unmatched end: drop, don't misattribute
  PhaseAgg& ph = phases_[static_cast<std::size_t>(open_phase_)];
  if (ph.name == name) {
    ph.end = at;
    ph.open = false;
    open_phase_ = -1;
  }
}

ProfileReport Profiler::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileReport r;
  const auto snapshot = [&](const PhaseAgg& agg) {
    PhaseProfile ph;
    ph.name = agg.name;
    ph.start = agg.start;
    ph.end = agg.end;
    ph.busy = agg.busy;
    ph.completes = agg.completes;
    ph.instants = agg.instants;
    ph.tasks = agg.tasks;
    ph.alloc_stalls = agg.alloc_stalls;
    ph.units.reserve(agg.units.size());
    for (const auto& [key, u] : agg.units) ph.units.push_back(u);
    ph.flame.reserve(agg.flame.size());
    for (const auto& [path, n] : agg.flame) ph.flame.push_back(n);
    finalize_self_times(ph.flame);
    ph.counters.reserve(agg.counters.size());
    for (const auto& [key, ca] : agg.counters) {
      CounterStat cs = ca.cs;
      // Close the final sample's interval at the phase end so the mean is
      // weighted over the whole observed span.
      Accumulator acc = ca.acc;
      if (ca.has_prev && agg.end > ca.prev_at) {
        acc.add_weighted(ca.prev_value, agg.end - ca.prev_at);
      }
      cs.mean = acc.mean();
      ph.counters.push_back(std::move(cs));
    }
    r.phases.push_back(std::move(ph));
  };
  // "(outside)" first (if any events landed there), then the real phases
  // in execution order.
  if (!outside_.name.empty()) snapshot(outside_);
  for (const auto& agg : phases_) snapshot(agg);
  return r;
}

}  // namespace gnna::trace
