// Per-vertex / per-tile work attribution — a TraceSink that answers
// "which vertices and tiles are hot, and why" (DESIGN.md §13).
//
// The profiler (profiler.hpp) aggregates by phase and unit *category*;
// this sink aggregates by *owner*: every GPE span is charged to the tile
// that ran it and the vertex it computed, every delivered NoC packet to
// the tile endpoint it touched and the work item whose data it carried
// (noc::Message::owner), and AGG reduce occupancy to the entry's owner via
// the charge() hook. Per-tile totals are exact (a fixed array). Per-vertex
// totals are bounded-memory: a count-min sketch admits candidates into a
// space-saving top-K table, so memory is O(top_k), not O(V) — large graphs
// do not blow up the sink.
//
// Conservation invariant (tested): per-tile `busy` sums every kGpe
// complete duration — the same event set the profiler folds into its
// per-phase busy[gpe] totals — so sum(tiles.busy) equals the profiler's
// GPE busy summed over phases exactly. Per-vertex busy counts only the
// top-level "task" spans to avoid double-charging the nested
// traverse/body sub-spans.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "trace/trace.hpp"

namespace gnna::trace {

/// Owner id meaning "no owner" (weight preloads, control traffic).
/// Matches noc::kNoOwner without depending on the noc headers.
inline constexpr std::uint32_t kUnowned = 0xffffffffU;

/// Exact per-tile totals.
struct TileAttribution {
  double busy = 0.0;      // GPE complete cycles (task + sub-spans)
  double idle = 0.0;      // run span minus busy (derived at report time)
  double agg_busy = 0.0;  // AGG reduce occupancy charged to this tile
  std::uint64_t tasks = 0;
  std::uint64_t flits = 0;      // flits of packets touching this tile
  std::uint64_t flit_hops = 0;  // sum over packets of flits * hops
  std::uint64_t bytes = 0;
};

/// One top-K hotspot row. `approx` marks a candidate admitted after an
/// eviction: its counters include a count-min-estimated carry-over and are
/// an upper bound rather than exact.
struct VertexHotspot {
  std::uint32_t vertex = 0;
  double busy = 0.0;
  double agg_busy = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t flits = 0;
  std::uint64_t bytes = 0;
  bool approx = false;
};

struct AttributionReport {
  std::size_t top_k = 0;
  double span = 0.0;        // cycles covered by phase markers
  double total_busy = 0.0;  // sum of per-tile busy
  std::uint64_t unattributed_flits = 0;  // delivered flits with no owner
  std::vector<TileAttribution> tiles;
  std::vector<VertexHotspot> vertices;  // sorted by busy desc, then id

  /// Imbalance: max over tiles of busy divided by the mean (1.0 =
  /// perfectly balanced; 0 when no tile did work).
  [[nodiscard]] double busy_max_mean() const;
  /// Gini coefficient of per-tile flit counts (0 = uniform, →1 = one
  /// tile carries everything).
  [[nodiscard]] double flit_gini() const;
};

/// The sink. Single-run, single-threaded (each AcceleratorSim owns its
/// own instance and fans events in via TeeSink).
class Attribution final : public TraceSink {
 public:
  /// `ep_to_tile` maps NoC endpoint id -> owning tile, with kNoTile for
  /// endpoints that are not tile-attached (memory controllers).
  static constexpr std::uint32_t kNoTile = 0xffffffffU;
  Attribution(std::uint32_t num_tiles, std::vector<std::uint32_t> ep_to_tile,
              std::size_t top_k = 64);

  void complete(Category cat, std::uint32_t unit, const char* name,
                double start, double dur, std::uint64_t a,
                std::uint64_t b) override;
  void instant(Category, std::uint32_t, const char*, double, std::uint64_t,
               std::uint64_t) override {}
  void counter(Category, std::uint32_t, const char*, double, double) override {
  }
  void phase_begin(const char* name, double at) override;
  void phase_end(const char* name, double at) override;
  void packet(std::uint32_t src_ep, std::uint32_t dst_ep, std::uint32_t owner,
              std::uint32_t flits, std::uint32_t hops,
              std::uint32_t payload_bytes) override;
  void charge(Category cat, std::uint32_t unit, std::uint32_t owner,
              double cycles) override;

  /// Snapshot totals; hotspots sorted by busy desc then vertex id, at most
  /// `top_k` rows.
  [[nodiscard]] AttributionReport report() const;

 private:
  struct Candidate {
    double busy = 0.0;
    double agg_busy = 0.0;
    std::uint64_t tasks = 0;
    std::uint64_t flits = 0;
    std::uint64_t bytes = 0;
    double carry = 0.0;  // sketch-estimated score inherited on admission
  };

  /// Route any per-owner update through the sketch + candidate table.
  /// `score_delta` orders eviction (busy cycles + flits).
  Candidate& touch(std::uint32_t owner, double score_delta);
  [[nodiscard]] double score(const Candidate& c) const {
    return c.busy + c.carry + static_cast<double>(c.flits);
  }

  void sketch_update(std::uint32_t owner, double w);
  [[nodiscard]] double sketch_estimate(std::uint32_t owner) const;

  std::size_t top_k_;
  std::vector<std::uint32_t> ep_to_tile_;
  std::vector<TileAttribution> tiles_;
  std::uint64_t unattributed_flits_ = 0;
  double span_begin_ = 0.0;
  double span_end_ = 0.0;
  bool span_started_ = false;

  // Count-min sketch (kRows x width_, width a power of two) over the
  // eviction score of every owner ever seen, including evicted ones.
  static constexpr std::size_t kRows = 4;
  std::size_t width_;
  std::vector<double> sketch_;

  // Space-saving candidate table, keyed by owner (std::map for
  // deterministic tie-breaking on eviction). `min_score_` is a cached
  // lower bound on the true minimum: candidate scores only grow, so the
  // bound stays valid and is refreshed on the occasional full scan.
  std::map<std::uint32_t, Candidate> candidates_;
  double min_score_ = 0.0;
  Candidate discard_;  // sink for updates rejected by admission
};

}  // namespace gnna::trace
