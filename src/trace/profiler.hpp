// Online profile aggregation — the "where did the cycles go" layer.
//
// `Profiler` is a TraceSink: it consumes the same event stream as
// ChromeTraceSink but instead of serializing every event it aggregates
// them online into a per-phase, per-unit breakdown plus a flame-style
// rollup of GPE task events. Attach it alone (`TraceOptions::profile`) or
// tee it next to a Chrome sink; either way the timing model is untouched —
// profiling a run must not change a single cycle.
//
// Phase attribution uses the runtime's phase markers (phase_begin /
// phase_end, emitted by AcceleratorSim around every Algorithm 1 phase).
// Because phases end at global barriers, every event delivered between a
// begin/end pair belongs to that phase; events seen outside any phase are
// collected under the synthetic "(outside)" phase, which stays empty in a
// well-instrumented run.
//
// Flame rollup: GPE duration events use '/'-separated paths
// ("task", "task/traverse", "task/gather"). Aggregating by path gives the
// classic flame-graph view — total time per path, and self time = a
// node's total minus its direct children (for "task" that difference is
// memory wait + scheduling, which no sub-span covers).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "trace/trace.hpp"

namespace gnna::trace {

/// Version of the profile block embedded in sim/stats_json output. Bump
/// whenever a field is renamed/removed or its meaning changes; additions
/// are backward-compatible and need no bump.
inline constexpr int kProfileSchemaVersion = 2;

/// Aggregate of one flame path within one phase.
struct FlameNode {
  std::string path;  // e.g. "task/gather"
  std::uint64_t count = 0;
  double total = 0.0;  // summed duration, NoC cycles
  double max = 0.0;    // longest single span
  double self = 0.0;   // total minus direct children (set by report())
};

/// Aggregate of one (category, unit) pair within one phase.
struct UnitProfile {
  Category cat = Category::kGpe;
  std::uint32_t unit = 0;
  double busy = 0.0;  // summed duration-event cycles
  std::uint64_t completes = 0;
  std::uint64_t instants = 0;
};

/// Aggregate of one counter series within one phase.
struct CounterStat {
  Category cat = Category::kGpe;
  std::string name;
  std::uint64_t samples = 0;
  double last = 0.0;
  double max = 0.0;
  /// Time-weighted mean: each sampled value weighted by the cycles it was
  /// current (change-sampled series become occupancy averages). The final
  /// value's weight runs to the phase end.
  double mean = 0.0;
};

/// One phase's profile. `busy` per category sums duration events: for the
/// serialized resources (dna array, agg ALU bank, mem bus) that is true
/// occupancy; for gpe tasks and noc packet lifetimes the spans overlap, so
/// it is aggregate event-cycles (a load measure). Either way the numbers
/// are stable run-to-run, which is what regression diffing needs.
struct PhaseProfile {
  std::string name;
  double start = 0.0;
  double end = 0.0;
  std::array<double, kNumCategories> busy{};
  std::array<std::uint64_t, kNumCategories> completes{};
  std::array<std::uint64_t, kNumCategories> instants{};
  std::uint64_t tasks = 0;         // GPE "task" retirements
  std::uint64_t alloc_stalls = 0;  // GPE failed AGG/DNQ allocations
  std::vector<UnitProfile> units;  // sorted by (cat, unit)
  std::vector<FlameNode> flame;    // sorted by path
  std::vector<CounterStat> counters;

  [[nodiscard]] double cycles() const { return end - start; }
};

/// The finished profile of one run.
struct ProfileReport {
  std::vector<PhaseProfile> phases;

  /// Sum of phase spans. Phases are contiguous from cycle 0 to the end of
  /// the run, so this equals the run's total cycles (the conservation
  /// invariant the tests pin).
  [[nodiscard]] double total_cycles() const;
  /// Summed `busy[cat]` across phases.
  [[nodiscard]] double busy_total(Category cat) const;
  /// Flame rollup across all phases, re-aggregated by path.
  [[nodiscard]] std::vector<FlameNode> merged_flame() const;
};

/// Print the per-phase breakdown and the top-`top_n` flame paths as text
/// tables (the `gnnasim --profile` / `gnnatrace report` view).
void print_profile(std::ostream& os, const ProfileReport& report,
                   std::size_t top_n = 12);

/// The aggregating sink. Thread-safe like ChromeTraceSink (one mutex per
/// event), though the intended use is one Profiler per run.
class Profiler final : public TraceSink {
 public:
  Profiler() = default;

  void complete(Category cat, std::uint32_t unit, const char* name,
                double start, double dur, std::uint64_t a,
                std::uint64_t b) override;
  void instant(Category cat, std::uint32_t unit, const char* name, double at,
               std::uint64_t a, std::uint64_t b) override;
  void counter(Category cat, std::uint32_t unit, const char* name, double at,
               double value) override;
  void phase_begin(const char* name, double at) override;
  void phase_end(const char* name, double at) override;

  /// Snapshot the aggregation (finalizes flame self-times). Callable any
  /// time; normally once, after the run.
  [[nodiscard]] ProfileReport report() const;

 private:
  /// CounterStat plus the running time-weighted accumulator: each sample
  /// closes the previous value's interval (weight = cycles it was
  /// current); report() closes the final interval at the phase end.
  struct CounterAgg {
    CounterStat cs;
    Accumulator acc;
    double prev_value = 0.0;
    double prev_at = 0.0;
    bool has_prev = false;
  };

  struct PhaseAgg {
    std::string name;
    double start = 0.0;
    double end = 0.0;
    bool open = false;
    std::array<double, kNumCategories> busy{};
    std::array<std::uint64_t, kNumCategories> completes{};
    std::array<std::uint64_t, kNumCategories> instants{};
    std::uint64_t tasks = 0;
    std::uint64_t alloc_stalls = 0;
    std::map<std::pair<std::uint8_t, std::uint32_t>, UnitProfile> units;
    std::map<std::string, FlameNode> flame;
    std::map<std::pair<std::uint8_t, std::string>, CounterAgg> counters;
  };

  /// The phase receiving events right now: the open phase, or the
  /// synthetic "(outside)" bucket.
  [[nodiscard]] PhaseAgg& current();

  mutable std::mutex mu_;
  std::vector<PhaseAgg> phases_;  // completed + open phases, in order
  PhaseAgg outside_;              // events seen outside any phase
  int open_phase_ = -1;           // index into phases_, -1 = none open
};

}  // namespace gnna::trace
