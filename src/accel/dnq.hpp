// The DNN Queue (DNQ) — Fig 6.
//
// "The DNQ is responsible for staging inputs to the spatial architecture
//  accelerator and providing support for multiple simultaneous DNN models.
//  The queue supports delayed enqueues, which allow queue space to be
//  allocated before data is written. ... The control logic maintains two
//  sets of head and tail pointers, allowing it to manage two virtual
//  queues. ... Due to the single dequeue interface, only one queue may
//  dequeue at a time. A lazy queue switching algorithm is used, whereby the
//  queue eligible for dequeue is only switched when the DNA has been idle
//  for 16 cycles."
//
// Entries are allocated (delayed enqueue) with a destination for the
// eventual DNA result; data arrives as NoC messages carrying the entry
// handle; ready is tracked per 4B word (we count received words); dequeue
// is FIFO per virtual queue and only when the head entry is fully ready.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "accel/addrmap.hpp"
#include "accel/config.hpp"
#include "common/stats.hpp"
#include "noc/message.hpp"
#include "trace/trace.hpp"

namespace gnna::accel {

using DnqHandle = std::uint32_t;

struct DnqStats {
  Counter allocations;
  Counter alloc_failures;
  Counter enqueued_words;
  Counter dequeues;
  Counter queue_switches;
};

/// A dequeued entry handed to the DNA.
struct DnqEntry {
  std::uint8_t queue = 0;
  std::uint32_t width_words = 0;
  std::uint32_t owner = noc::kNoOwner;  // attribution only
  Dest dest;
};

class Dnq {
 public:
  explicit Dnq(const TileParams& params);

  /// Bytes of the data scratchpad given to virtual queue 0 by the default
  /// `dnq_queue0_sixteenths` split; the remainder goes to queue 1 so every
  /// byte of `dnq_data_bytes` is accounted for.
  [[nodiscard]] static std::uint32_t queue0_split_bytes(
      const TileParams& params);

  /// Reconfigure the virtual-queue split (allocation bus, per phase).
  /// Frees nothing: must only be called when the queue is empty.
  void configure(std::uint32_t queue0_bytes, std::uint32_t queue1_bytes);

  /// Delayed enqueue: reserve space in virtual queue `queue` for an entry
  /// of `width_words`, recording the result destination. `owner` is the
  /// work item the entry computes (attribution only). nullopt when the
  /// data or destination scratchpad is full.
  [[nodiscard]] std::optional<DnqHandle> allocate(
      std::uint8_t queue, std::uint32_t width_words, Dest dest,
      std::uint32_t owner = noc::kNoOwner);

  /// Data arrival (kMemReadResp / kDnqWrite with a = handle).
  void on_message(const noc::Message& msg);

  /// DNA-side single dequeue interface with lazy switching. `idle_cycles`
  /// is how long (in core cycles) the DNA has been idle. Returns the head
  /// entry of the eligible queue if it is fully ready.
  [[nodiscard]] std::optional<DnqEntry> try_dequeue(double idle_core_cycles);

  [[nodiscard]] bool empty() const { return live_entries_ == 0; }
  [[nodiscard]] std::uint32_t live_entries() const { return live_entries_; }
  [[nodiscard]] std::uint8_t active_queue() const { return active_queue_; }
  [[nodiscard]] std::uint32_t queue_capacity_bytes(std::uint8_t q) const {
    return capacity_bytes_[q];
  }
  [[nodiscard]] std::uint64_t queue_used_bytes(std::uint8_t q) const {
    return bytes_used_[q];
  }
  [[nodiscard]] const DnqStats& stats() const { return stats_; }

  /// Attach an event tracer (allocations, dequeues, queue switches).
  void set_tracer(trace::Tracer t) { tracer_ = t; }

  /// Deadlock diagnostics: per-queue occupancy and head-entry fill state.
  void dump_state(std::ostream& os) const;

 private:
  struct Entry {
    bool active = false;
    std::uint8_t queue = 0;
    std::uint32_t width_words = 0;
    std::uint32_t owner = noc::kNoOwner;  // attribution only
    std::uint64_t received_bytes = 0;
    Dest dest;

    [[nodiscard]] bool ready() const {
      return received_bytes >= std::uint64_t{width_words} * 4;
    }
  };

  [[nodiscard]] bool head_ready(std::uint8_t q) const;
  DnqEntry pop_head(std::uint8_t q);

  TileParams params_;
  std::array<std::uint32_t, 2> capacity_bytes_{};
  std::array<std::uint64_t, 2> bytes_used_{};
  std::array<std::deque<DnqHandle>, 2> fifo_;
  std::vector<Entry> entries_;
  std::vector<DnqHandle> free_list_;
  std::uint32_t live_entries_ = 0;
  std::uint8_t active_queue_ = 0;
  DnqStats stats_;
  trace::Tracer tracer_;
};

}  // namespace gnna::accel
