#include "accel/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <sstream>
#include <tuple>

#include "accel/dnq.hpp"
#include "common/units.hpp"
#include "dataflow/spatial.hpp"

namespace gnna::accel {

namespace {

/// GV201 threshold: fewer concurrent entries than a quarter of the GPE
/// thread pool means most in-flight threads stall on allocation (the
/// reuse distance of a scratchpad entry is ~threads concurrent entries).
std::uint64_t min_healthy_concurrency(const TileParams& tp) {
  return std::max<std::uint64_t>(2, tp.gpe_threads / 4);
}

/// GV204 threshold: max/mean tile load at which the partition (not the
/// hardware) bounds the phase.
constexpr double kImbalanceThreshold = 1.5;

std::uint32_t split_bytes_for(const TileParams& tp, std::uint32_t sixteenths) {
  return static_cast<std::uint32_t>(std::uint64_t{tp.dnq_data_bytes} *
                                    sixteenths / 16);
}

/// Per-vertex work weights for one phase (contribution counts), or empty
/// when they cannot be derived statically.
std::vector<std::uint64_t> per_vertex_loads(const CompiledProgram& prog,
                                            const PhaseSpec& ph,
                                            const graph::Dataset* ds) {
  const std::uint64_t n = prog.total_vertices();
  if (ph.per_graph || ph.kind == PhaseKind::kProject) return {};
  if (ph.walk_len > 1) {
    if (ph.expected_contribs.size() == n) return ph.expected_contribs;
    return {};
  }
  if (ds == nullptr) return {};
  const std::uint64_t self = ph.include_self ? 1 : 0;
  std::vector<std::uint64_t> loads;
  loads.reserve(n);
  for (const auto& g : ds->undirected) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      loads.push_back(g.out_degree(v) + self);
    }
  }
  if (loads.size() != n) return {};  // layout/dataset mismatch (GV012)
  return loads;
}

/// Tile owning work item `v` under the partition the simulator will apply.
/// Round-robin and block mirror AcceleratorSim::run exactly; degree-greedy
/// is not wired into the work distribution (it falls back to round-robin
/// there), and profile-guided owners depend on a prior run's profile, so
/// those are modeled as round-robin / balanced respectively by the caller.
std::uint32_t modeled_owner(std::uint64_t v, std::uint64_t n,
                            std::uint32_t num_tiles,
                            graph::PartitionPolicy partition) {
  if (partition == graph::PartitionPolicy::kBlock) {
    const std::uint64_t per = (n + num_tiles - 1) / num_tiles;
    return per == 0 ? 0 : static_cast<std::uint32_t>(v / per);
  }
  return static_cast<std::uint32_t>(v % num_tiles);
}

/// Whether the partition's owner assignment is statically known (so
/// per-tile maxima are exact) as opposed to profile-dependent (where only
/// the balanced total/T lower bound is safe).
bool partition_is_static(graph::PartitionPolicy partition) {
  return partition != graph::PartitionPolicy::kProfileGuided;
}

struct MemTraffic {
  std::uint64_t served = 0;    // line-rounded bytes the data bus moves
  std::uint64_t payload = 0;   // unrounded bytes the NoC carries
  std::uint64_t requests = 0;
  std::uint64_t granules = 0;  // 64B lines touched

  void add(std::uint64_t bytes, std::uint64_t count = 1) {
    if (bytes == 0 || count == 0) return;
    const std::uint64_t lines = (bytes + kFlitBytes - 1) / kFlitBytes;
    served += lines * kFlitBytes * count;
    payload += bytes * count;
    requests += count;
    granules += lines * count;
  }
};

/// Models one phase. All compute costs are in core cycles until the final
/// scale to NoC cycles.
class PhaseAnalyzer {
 public:
  PhaseAnalyzer(const CompiledProgram& prog, const AcceleratorConfig& cfg,
                const PhaseSpec& ph, const AnalysisOptions& options)
      : prog_(prog), cfg_(cfg), tp_(cfg.tile_params), ph_(ph),
        options_(options) {}

  PhaseModel run() {
    PhaseModel m;
    m.name = ph_.name;
    fill_occupancy(m);

    const std::uint32_t num_tiles = std::max(1U, cfg_.num_tiles());
    const double scale = cfg_.core_clock.ghz() > 0.0
                             ? cfg_.noc_clock.ghz() / cfg_.core_clock.ghz()
                             : 1.0;

    const auto [gpe_core, dna_core, agg_core] = compute_terms(num_tiles);
    m.gpe_cycles = gpe_core * scale;
    m.dna_cycles = dna_core * scale;
    m.agg_cycles = agg_core * scale;
    m.compute_cycles = std::max({m.gpe_cycles, m.dna_cycles, m.agg_cycles});

    const MemTraffic traffic = memory_traffic();
    m.read_bytes = traffic.served >= write_served_ ? traffic.served -
                                                         write_served_
                                                   : 0;
    m.write_bytes = write_served_;
    m.payload_bytes = traffic.payload;
    m.mem_requests = traffic.requests;
    const double bus_bpc =
        cfg_.mem_params.bandwidth.bytes_per_cycle(cfg_.noc_clock) *
        std::max(1U, cfg_.num_mem_nodes());
    if (bus_bpc > 0.0) {
      m.memory_cycles = static_cast<double>(traffic.served) / bus_bpc;
    }
    m.predicted_row_hit_rate = row_hit_rate(traffic);

    // NoC bisection term (the GV108 cut): pages interleave uniformly
    // across the controllers, so ~half the payload crosses the mesh
    // bisection, which min(W, H) bidirectional 64B links carry.
    const double bisection_bpc =
        2.0 * std::min(cfg_.mesh_width, cfg_.mesh_height) * kFlitBytes;
    if (bisection_bpc > 0.0) {
      m.noc_cycles =
          static_cast<double>(traffic.payload) / 2.0 / bisection_bpc;
    }

    m.bound_cycles =
        std::max({m.compute_cycles, m.memory_cycles, m.noc_cycles});
    m.bottleneck = m.bound_cycles == m.memory_cycles  ? "memory"
                   : m.bound_cycles == m.noc_cycles   ? "noc"
                   : m.bound_cycles == m.gpe_cycles   ? "gpe"
                   : m.bound_cycles == m.dna_cycles   ? "dna"
                                                      : "agg";
    return m;
  }

 private:
  // ---- scratchpad occupancy under the virtual-queue split ----
  void fill_occupancy(PhaseModel& m) const {
    std::uint64_t q0_cap = tp_.dnq_data_bytes;
    std::uint64_t q1_cap = 0;
    if (ph_.has_dna2() && tp_.dnq_queue0_sixteenths <= 16) {
      q0_cap = split_bytes_for(tp_, tp_.dnq_queue0_sixteenths);
      q1_cap = tp_.dnq_data_bytes - q0_cap;
    }
    m.dnq0.capacity_bytes = q0_cap;
    m.dnq0.entry_bytes = dnq0_entry_words() * kWordBytes;
    m.dnq0.used = m.dnq0.entry_bytes > 0;
    m.dnq1.capacity_bytes = q1_cap;
    if (ph_.has_dna2()) {
      m.dnq1.entry_bytes =
          (std::uint64_t{ph_.agg_width_words} + ph_.dna2_gpe_words) *
          kWordBytes;
      m.dnq1.used = m.dnq1.entry_bytes > 0;
    }
    m.agg.capacity_bytes = tp_.agg_data_bytes;
    if (ph_.has_agg()) {
      m.agg.entry_bytes = std::uint64_t{ph_.agg_width_words} * kWordBytes;
      m.agg.used = true;
    }
    for (QueueOccupancy* q : {&m.dnq0, &m.dnq1, &m.agg}) {
      q->concurrency =
          q->entry_bytes > 0 ? q->capacity_bytes / q->entry_bytes : 0;
    }
  }

  [[nodiscard]] std::uint64_t dnq0_entry_words() const {
    std::uint64_t words = 0;
    switch (ph_.kind) {
      case PhaseKind::kGatherAggregate:
        if (ph_.has_dna()) words = ph_.agg_width_words;
        break;
      case PhaseKind::kProject:
        for (const auto& b : ph_.extra_inputs) words += b.width_words;
        break;
      case PhaseKind::kEdgeDnaAggregate:
        words = std::uint64_t{ph_.gather.width_words} +
                ph_.gpe_words_per_entry;
        for (const auto& b : ph_.extra_inputs) words += b.width_words;
        break;
    }
    return words;
  }

  // ---- compute terms (GPE / DNA / AGG), core cycles, per-tile max ----
  //
  // Every term counts a strict subset of the actions the simulator
  // serializes on that unit, so each is a valid lower bound: GPE context
  // switches and allocation-stall retries are excluded, walk-tree
  // interior expansion is excluded, and the AGG term uses total words /
  // ALUs (<= the sum of per-message ceil divisions).
  [[nodiscard]] std::tuple<double, double, double> compute_terms(
      std::uint32_t num_tiles) {
    const std::uint64_t n = prog_.total_vertices();
    const std::uint64_t n_graphs = prog_.graphs.size();
    const double L = tp_.cost_loop_iter;
    const double I = tp_.cost_issue_load;
    const double A = tp_.cost_alloc;
    const double S = tp_.cost_send;

    // DNA initiation intervals (core cycles) from the dataflow mapper —
    // the exact numbers Tile::begin_phase programs.
    const double ii0 = model_ii(ph_.dna_shapes);
    const double ii1 = model_ii(ph_.dna2_shapes);
    const auto entry_ii = [&](double model, std::uint64_t width_words) {
      return std::max({model, static_cast<double>((width_words + 15) / 16),
                       static_cast<double>(tp_.dna_min_ii)});
    };

    if (ph_.per_graph) {
      // Work items are graphs, distributed round-robin over the tiles.
      // Per graph: bind (L), DNQ alloc (A or L), AGG alloc (A), one wide
      // load (I); DNA processes one pooled entry per graph; the AGG
      // reduces the graph's whole state block.
      const double gpe_per = L + (ph_.has_dna() ? A : L) + A + I;
      double gpe = 0.0, dna = 0.0, agg = 0.0;
      const std::uint64_t per_tile =
          num_tiles > 0 ? (n_graphs + num_tiles - 1) / num_tiles : n_graphs;
      gpe = static_cast<double>(per_tile) * gpe_per;
      if (ph_.has_dna() && per_tile > 0) {
        // The last entry's result drains through the DNA pipeline after
        // its array slot; the phase barrier waits for it, so one fill/
        // drain latency per phase is part of the lower bound.
        dna = static_cast<double>(per_tile) *
                  entry_ii(ii0, ph_.agg_width_words) +
              static_cast<double>(tp_.dna_pipeline_latency);
      }
      if (ph_.has_agg() && tp_.agg_alus > 0) {
        // Whole-block words land on the owning tile; bound with the
        // heaviest graph block round-robin would place on one tile.
        std::vector<double> tile_words(num_tiles, 0.0);
        for (std::size_t g = 0; g < prog_.graphs.size(); ++g) {
          tile_words[g % num_tiles] +=
              static_cast<double>(prog_.graphs[g].num_nodes) *
              ph_.gather.width_words;
        }
        agg = *std::max_element(tile_words.begin(), tile_words.end()) /
              tp_.agg_alus;
      }
      return {gpe, dna, agg};
    }

    // Per-vertex fixed cost and per-contribution cost (see gpe.cpp; the
    // prologue issues the row-pointer load, then the column-index load
    // when deg > 0 — without per-vertex degrees the cheaper of the two
    // outcomes keeps the bound safe).
    const auto loads = per_vertex_loads(prog_, ph_, options_.dataset);
    // Prologue: row-pointer load (I), then column-index load when deg > 0
    // or a loop-iter bailout otherwise — the cheaper branch keeps the
    // bound safe without per-vertex degrees.
    double fixed = I + std::min(I, L);
    double per_contrib = 0.0;
    std::uint64_t dna_entries_per_vertex = 0;
    double dna_entries_per_contrib = 0.0;
    double dna_ii_q0 = 0.0;
    const double dna_ii_q1 =
        ph_.has_dna2()
            ? entry_ii(ii1, std::uint64_t{ph_.agg_width_words} +
                                ph_.dna2_gpe_words)
            : 0.0;
    double agg_words_per_contrib = 0.0;

    switch (ph_.kind) {
      case PhaseKind::kGatherAggregate:
        fixed += (ph_.has_dna() ? A : L) + A;
        per_contrib = L + I;
        if (ph_.has_dna()) {
          dna_entries_per_vertex = 1;
          dna_ii_q0 = entry_ii(ii0, ph_.agg_width_words);
        }
        agg_words_per_contrib = ph_.gather.width_words;
        break;
      case PhaseKind::kProject:
        fixed += A + static_cast<double>(ph_.extra_inputs.size()) * (L + I);
        if (ph_.has_dna()) {
          dna_entries_per_vertex = 1;
          std::uint64_t w = 0;
          for (const auto& b : ph_.extra_inputs) w += b.width_words;
          dna_ii_q0 = entry_ii(ii0, w);
        }
        break;
      case PhaseKind::kEdgeDnaAggregate: {
        const bool needs_own =
            ph_.gpe_words_per_entry > 0 || ph_.dna2_gpe_words > 0;
        const bool own_send = ph_.has_dna2() && ph_.dna2_gpe_words > 0;
        fixed += (needs_own ? I : L) + (ph_.has_dna2() ? A : L) + A +
                 (own_send ? S : L);
        per_contrib = A + (L + I) +
                      (ph_.extra_inputs.empty() ? 0.0 : L + I) +
                      (ph_.gpe_words_per_entry > 0 ? S : L);
        if (ph_.has_dna()) {
          dna_entries_per_contrib = 1.0;
          std::uint64_t w = std::uint64_t{ph_.gather.width_words} +
                            ph_.gpe_words_per_entry;
          for (const auto& b : ph_.extra_inputs) w += b.width_words;
          dna_ii_q0 = entry_ii(ii0, w);
        }
        if (ph_.has_dna2()) dna_entries_per_vertex = 1;
        agg_words_per_contrib = ph_.dna_out_words;
        break;
      }
    }

    // Per-tile vertex and contribution counts under the modeled
    // partition (exact for round-robin/block/degree-greedy — the latter
    // falls back to round-robin in the work distribution — balanced for
    // profile-guided).
    std::vector<std::uint64_t> tile_vertices(num_tiles, 0);
    std::vector<std::uint64_t> tile_contribs(num_tiles, 0);
    // Evaluate the predicate once and branch on the local: GCC 12's VRP
    // mis-folds a repeated `enum != constant` test on the uint8_t enum
    // loaded through the reference member (observed at -O2/-O3).
    const bool static_partition = partition_is_static(options_.partition);
    const graph::PartitionPolicy vertex_partition =
        static_partition ? options_.partition
                         : graph::PartitionPolicy::kRoundRobin;
    for (std::uint64_t v = 0; v < n; ++v) {
      tile_vertices[modeled_owner(v, n, num_tiles, vertex_partition) %
                    num_tiles] += 1;
    }
    if (!loads.empty() && static_partition) {
      for (std::uint64_t v = 0; v < n; ++v) {
        tile_contribs[modeled_owner(v, n, num_tiles, vertex_partition) %
                      num_tiles] += loads[v];
      }
      imbalance_ = imbalance_of(tile_contribs);
    } else {
      // Balanced mean: still a lower bound on whatever the real owners do.
      const std::uint64_t total_contribs = phase_total_contribs();
      for (auto& c : tile_contribs) c = total_contribs / num_tiles;
    }

    double gpe = 0.0, dna = 0.0, agg = 0.0;
    for (std::uint32_t t = 0; t < num_tiles; ++t) {
      const auto tv = static_cast<double>(tile_vertices[t]);
      const auto tc = static_cast<double>(tile_contribs[t]);
      gpe = std::max(gpe, tv * fixed + tc * per_contrib);
      // Queue-0 entries: one per contribution on edge phases, one per
      // vertex otherwise; queue-1 entries (dna2) are one per vertex.
      const double q0_entries =
          ph_.kind == PhaseKind::kEdgeDnaAggregate
              ? tc * dna_entries_per_contrib
              : tv * static_cast<double>(dna_entries_per_vertex);
      const double q1_entries = ph_.has_dna2() ? tv : 0.0;
      double tile_dna = q0_entries * dna_ii_q0 + q1_entries * dna_ii_q1;
      if (tile_dna > 0.0) {
        // Pipeline drain: the barrier waits for the last entry's result,
        // dna_pipeline_latency core cycles after its array slot.
        tile_dna += static_cast<double>(tp_.dna_pipeline_latency);
      }
      dna = std::max(dna, tile_dna);
      if (tp_.agg_alus > 0 && ph_.has_agg()) {
        agg = std::max(agg, tc * agg_words_per_contrib / tp_.agg_alus);
      }
    }
    return {gpe, dna, agg};
  }

  [[nodiscard]] double model_ii(
      const std::vector<dataflow::MatmulShape>& chain) const {
    if (chain.empty()) return 0.0;
    for (const auto& s : chain) {
      if (s.m == 0 || s.k == 0 || s.n == 0) return 0.0;  // GV005 territory
    }
    const dataflow::Mapper mapper(tp_.dna);
    double ii = 0.0;
    for (const auto& s : chain) {
      ii += static_cast<double>(
          mapper.map(s, std::nullopt, cfg_.core_clock).compute_cycles);
    }
    return ii;
  }

  [[nodiscard]] std::uint64_t phase_total_contribs() const {
    if (ph_.kind == PhaseKind::kProject || ph_.per_graph) return 0;
    if (ph_.walk_len > 1 && !ph_.expected_contribs.empty()) {
      return std::accumulate(ph_.expected_contribs.begin(),
                             ph_.expected_contribs.end(), std::uint64_t{0});
    }
    std::uint64_t n_sym_edges = 0;
    for (const auto& g : prog_.graphs) n_sym_edges += g.num_edges;
    return n_sym_edges +
           (ph_.include_self ? prog_.total_vertices() : std::uint64_t{0});
  }

  // ---- memory traffic ----
  [[nodiscard]] MemTraffic memory_traffic() {
    MemTraffic tr;
    const std::uint64_t n = prog_.total_vertices();
    const std::uint64_t gather_bytes =
        std::uint64_t{ph_.gather.width_words} * kWordBytes;

    if (ph_.per_graph) {
      for (const auto& g : prog_.graphs) {
        tr.add(std::uint64_t{g.num_nodes} * gather_bytes);
      }
    } else {
      // Traversal prologue: one row-pointer pair per vertex, one
      // column-index read per vertex with outgoing edges. Without
      // per-vertex degrees, the aggregate (unrounded) column bytes keep
      // the bound safe; walk_len > 1 interior re-expansion is excluded.
      tr.add(2 * kWordBytes, n);
      const std::uint64_t edge_entry =
          ph_.weighted_edges ? 2 * kWordBytes : kWordBytes;
      const auto* ds = options_.dataset;
      if (ds != nullptr && dataset_matches(ds)) {
        for (const auto& g : ds->undirected) {
          for (NodeId v = 0; v < g.num_nodes(); ++v) {
            const std::uint32_t deg = g.out_degree(v);
            if (deg > 0) tr.add(std::uint64_t{deg} * edge_entry);
          }
        }
      } else {
        std::uint64_t n_sym_edges = 0;
        for (const auto& g : prog_.graphs) n_sym_edges += g.num_edges;
        tr.payload += n_sym_edges * edge_entry;
        tr.served += n_sym_edges * edge_entry;
      }

      const std::uint64_t contribs = phase_total_contribs();
      switch (ph_.kind) {
        case PhaseKind::kGatherAggregate:
          tr.add(gather_bytes, contribs);
          break;
        case PhaseKind::kProject:
          for (const auto& b : ph_.extra_inputs) {
            tr.add(std::uint64_t{b.width_words} * kWordBytes, n);
          }
          break;
        case PhaseKind::kEdgeDnaAggregate: {
          tr.add(gather_bytes, contribs);
          const bool needs_own =
              ph_.gpe_words_per_entry > 0 || ph_.dna2_gpe_words > 0;
          if (needs_own) tr.add(gather_bytes, n);
          if (!ph_.extra_inputs.empty()) {
            std::uint64_t loads = contribs;
            if (ph_.extra_inputs_per_edge) {
              loads = 0;
              for (const auto& g : prog_.graphs) loads += g.num_edges;
            }
            tr.add(std::uint64_t{ph_.extra_inputs.front().width_words} *
                       kWordBytes,
                   loads);
          }
          break;
        }
      }
    }

    // Weight stream: every tile reads its own copy when the phase is
    // configured.
    if (ph_.weight_bytes > 0) {
      tr.add(ph_.weight_bytes, std::max(1U, cfg_.num_tiles()));
    }

    // Output writes (DNA results or raw aggregates).
    const std::uint64_t out_items =
        ph_.per_graph ? prog_.graphs.size() : n;
    const std::uint64_t out_bytes =
        std::uint64_t{ph_.output.width_words} * kWordBytes;
    const std::uint64_t before = tr.served;
    tr.add(out_bytes, out_items);
    write_served_ = tr.served - before;
    return tr;
  }

  [[nodiscard]] bool dataset_matches(const graph::Dataset* ds) const {
    if (ds->undirected.size() != prog_.graphs.size()) return false;
    NodeId total = 0;
    for (const auto& g : ds->undirected) total += g.num_nodes();
    return total == prog_.total_vertices();
  }

  /// Optimistic row-hit mix: each request streams its granules through
  /// the banks; the first touch of each bank misses (rows differ between
  /// requests under scattered per-vertex access), the rest hit.
  [[nodiscard]] double row_hit_rate(const MemTraffic& tr) const {
    if (cfg_.mem_params.scheduler != mem::MemScheduler::kFrFcfs) return 0.0;
    if (tr.requests == 0 || tr.granules == 0) return 0.0;
    const std::uint64_t banks = std::max(1U, cfg_.mem_params.banks);
    const double avg_granules =
        static_cast<double>(tr.granules) / static_cast<double>(tr.requests);
    const double misses_per_req =
        std::min(avg_granules, static_cast<double>(banks));
    return 1.0 - misses_per_req / avg_granules;
  }

 public:
  [[nodiscard]] double imbalance() const { return imbalance_; }

 private:
  [[nodiscard]] static double imbalance_of(
      const std::vector<std::uint64_t>& tile_loads) {
    if (tile_loads.empty()) return 0.0;
    const double total = std::accumulate(tile_loads.begin(),
                                         tile_loads.end(), 0.0);
    if (total <= 0.0) return 0.0;
    const double mean = total / static_cast<double>(tile_loads.size());
    const double max =
        static_cast<double>(*std::max_element(tile_loads.begin(),
                                              tile_loads.end()));
    return max / mean;
  }

  const CompiledProgram& prog_;
  const AcceleratorConfig& cfg_;
  const TileParams& tp_;
  const PhaseSpec& ph_;
  const AnalysisOptions& options_;
  std::uint64_t write_served_ = 0;
  double imbalance_ = 0.0;
};

std::uint64_t gcd_u64(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::string human_bytes(std::uint64_t b) {
  std::ostringstream os;
  os << b << "B";
  return os.str();
}

}  // namespace

ProgramAnalysis analyze_program(const CompiledProgram& prog,
                                const AcceleratorConfig& cfg,
                                const AnalysisOptions& options) {
  ProgramAnalysis pa;
  pa.program_name = prog.name;
  pa.config_name = cfg.name;
  pa.phases.reserve(prog.phases.size());
  for (const PhaseSpec& ph : prog.phases) {
    PhaseAnalyzer az(prog, cfg, ph, options);
    PhaseModel m = az.run();
    m.imbalance = az.imbalance();
    pa.bound_cycles += m.bound_cycles;
    pa.phases.push_back(std::move(m));
  }
  return pa;
}

namespace {

/// GV202 helper: concurrency of both virtual queues for one phase under a
/// candidate split. Returns {c0, c1}; a queue with no entries reports a
/// very large concurrency so it never constrains the minimum.
std::pair<std::uint64_t, std::uint64_t> split_concurrency(
    const TileParams& tp, std::uint64_t entry0_bytes,
    std::uint64_t entry1_bytes, std::uint32_t sixteenths) {
  const std::uint64_t q0 = split_bytes_for(tp, sixteenths);
  const std::uint64_t q1 = tp.dnq_data_bytes - q0;
  constexpr std::uint64_t kUnbounded = ~std::uint64_t{0};
  const std::uint64_t c0 =
      entry0_bytes > 0 ? q0 / entry0_bytes : kUnbounded;
  const std::uint64_t c1 =
      entry1_bytes > 0 ? q1 / entry1_bytes : kUnbounded;
  return {c0, c1};
}

}  // namespace

std::vector<PerfDiagnostic> perf_lints(const CompiledProgram& prog,
                                       const AcceleratorConfig& cfg,
                                       const AnalysisOptions& options) {
  std::vector<PerfDiagnostic> out;
  const TileParams& tp = cfg.tile_params;
  if (tp.dnq_queue0_sixteenths > 16) return out;  // GV010 owns this
  const ProgramAnalysis pa = analyze_program(prog, cfg, options);
  const std::uint64_t healthy = min_healthy_concurrency(tp);

  for (std::size_t i = 0; i < pa.phases.size(); ++i) {
    const PhaseModel& m = pa.phases[i];
    const int pi = static_cast<int>(i);

    // GV201: reuse-distance thrash. Concurrency below a quarter of the
    // GPE thread pool (but not below 2 — GV101/GV102 own the serialized
    // case) means most threads stall on allocation and entries are
    // evicted (completed + reallocated) well inside one reuse distance.
    const auto check_thrash = [&](const QueueOccupancy& q,
                                  const char* what) {
      if (!q.used || q.concurrency < 2 || q.concurrency >= healthy) return;
      std::ostringstream os;
      os << what << " admits only " << q.concurrency
         << " concurrent entries (" << human_bytes(q.entry_bytes) << " of "
         << human_bytes(q.capacity_bytes) << ") but " << tp.gpe_threads
         << " GPE threads keep ~" << tp.gpe_threads
         << " entries in flight: reuse distance exceeds the scratchpad, "
            "most threads will stall on allocation";
      out.push_back({LintCode::kReuseDistanceThrash, pi, os.str()});
    };
    check_thrash(m.dnq0, "DNQ virtual queue 0");
    check_thrash(m.dnq1, "DNQ virtual queue 1");
    check_thrash(m.agg, "AGG data scratchpad");

    // GV202: virtual-queue split starvation — the current split starves
    // one queue below 2 concurrent entries while some other split gives
    // both at least 2. (When no split can, GV102 already covers it.)
    if (m.dnq0.used && m.dnq1.used) {
      const std::uint64_t cur_min =
          std::min(m.dnq0.concurrency, m.dnq1.concurrency);
      if (cur_min < 2) {
        bool fixable = false;
        for (std::uint32_t s = 0; s <= 16 && !fixable; ++s) {
          const auto [c0, c1] = split_concurrency(
              tp, m.dnq0.entry_bytes, m.dnq1.entry_bytes, s);
          fixable = c0 >= 2 && c1 >= 2;
        }
        if (fixable) {
          std::ostringstream os;
          os << "virtual-queue split " << tp.dnq_queue0_sixteenths
             << "/16 starves queue "
             << (m.dnq0.concurrency <= m.dnq1.concurrency ? 0 : 1)
             << " (queue 0: " << m.dnq0.concurrency
             << " entries, queue 1: " << m.dnq1.concurrency
             << "); another split admits >= 2 entries in both queues";
          out.push_back({LintCode::kQueueSplitStarved, pi, os.str()});
        }
      }
    }

    // GV204: partition imbalance — the modeled partition concentrates
    // the phase's contribution load on few tiles.
    if (cfg.num_tiles() > 1 && m.imbalance >= kImbalanceThreshold) {
      std::ostringstream os;
      os << "modeled per-tile load imbalance (max/mean) is "
         << m.imbalance << " under the "
         << (options.partition == graph::PartitionPolicy::kBlock
                 ? "block"
                 : "round-robin")
         << " partition: the heaviest tile does " << m.imbalance
         << "x the mean work and bounds the phase";
      out.push_back({LintCode::kPartitionImbalance, pi, os.str()});
    }
  }

  // GV203: predicted bank camping (whole-program: a property of the
  // address mapping, not of any one phase). Controller m serves granules
  // g with (g / gpp) % M == m, where gpp = page granules; the bank index
  // g % banks then only reaches min(1, gpp/d) of the banks, with
  // d = gcd(M * gpp, banks). When gpp < d, every controller camps on a
  // strict subset of its banks and FR-FCFS bank parallelism is wasted.
  const mem::MemParams& mp = cfg.mem_params;
  if (mp.scheduler == mem::MemScheduler::kFrFcfs && mp.banks > 1 &&
      !mp.bank_xor && mp.bank_interleave_bytes > 0 &&
      cfg.interleave_bytes % mp.bank_interleave_bytes == 0 &&
      cfg.num_mem_nodes() > 0) {
    const std::uint64_t gpp =
        cfg.interleave_bytes / mp.bank_interleave_bytes;
    const std::uint64_t d =
        gcd_u64(std::uint64_t{cfg.num_mem_nodes()} * gpp, mp.banks);
    if (gpp < d) {
      std::ostringstream os;
      os << "predicted bank camping: with " << cfg.num_mem_nodes()
         << " controllers at " << cfg.interleave_bytes
         << "B page interleave and " << mp.bank_interleave_bytes
         << "B bank interleave, each controller's traffic reaches only "
         << gpp << "/" << d << " of its " << mp.banks
         << " banks (bank = granule % banks repeats with period gcd = "
         << d << "): FR-FCFS bank parallelism is wasted; set "
            "mem_bank_xor=1 to permute banks across rows";
      out.push_back({LintCode::kBankCamping, -1, os.str()});
    }
  }

  return out;
}

namespace {

bool lints_have(const std::vector<PerfDiagnostic>& lints, LintCode code) {
  return std::any_of(lints.begin(), lints.end(),
                     [code](const PerfDiagnostic& d) {
                       return d.code == code;
                     });
}

}  // namespace

std::vector<FixSuggestion> suggest_fixes(const CompiledProgram& prog,
                                         const AcceleratorConfig& cfg,
                                         const AnalysisOptions& options) {
  std::vector<FixSuggestion> out;
  const std::vector<PerfDiagnostic> lints = perf_lints(prog, cfg, options);
  if (lints.empty()) return out;
  const TileParams& tp = cfg.tile_params;
  const ProgramAnalysis pa = analyze_program(prog, cfg, options);
  const std::uint64_t healthy = min_healthy_concurrency(tp);

  const auto verify_fix = [&](FixSuggestion& fix) {
    AnalysisOptions patched_options = options;
    patched_options.partition = fix.partition;
    fix.verified =
        !lints_have(perf_lints(prog, fix.patched, patched_options),
                    fix.code);
  };

  // ---- GV201: grow the starved scratchpad(s) to `healthy` entries ----
  if (lints_have(lints, LintCode::kReuseDistanceThrash)) {
    std::uint64_t need_agg = 0;
    std::uint64_t need_dnq = 0;
    for (const PhaseModel& m : pa.phases) {
      const auto thrashes = [&](const QueueOccupancy& q) {
        return q.used && q.concurrency >= 2 && q.concurrency < healthy;
      };
      if (thrashes(m.agg)) {
        need_agg = std::max(need_agg, healthy * m.agg.entry_bytes);
      }
      // DNQ capacity flows through the split: queue 0 gets s/16 of the
      // scratchpad on dna2 phases (all of it otherwise), queue 1 the
      // rest — solve the total back through the active split.
      const std::uint32_t s = tp.dnq_queue0_sixteenths;
      if (thrashes(m.dnq0)) {
        const std::uint64_t need_q0 = healthy * m.dnq0.entry_bytes;
        const bool split_applies = m.dnq1.used || m.dnq1.capacity_bytes > 0;
        const std::uint64_t total =
            split_applies && s > 0 ? (need_q0 * 16 + s - 1) / s : need_q0;
        need_dnq = std::max(need_dnq, total);
      }
      if (thrashes(m.dnq1) && s < 16) {
        const std::uint64_t need_q1 = healthy * m.dnq1.entry_bytes;
        need_dnq = std::max(need_dnq,
                            (need_q1 * 16 + (16 - s) - 1) / (16 - s));
      }
    }
    FixSuggestion fix;
    fix.code = LintCode::kReuseDistanceThrash;
    fix.patched = cfg;
    fix.partition = options.partition;
    std::ostringstream desc;
    std::ostringstream snippet;
    desc << "grow the thrashing scratchpad(s) to admit " << healthy
         << " concurrent entries (a quarter of the " << tp.gpe_threads
         << "-thread GPE pool):";
    if (need_agg > 0) {
      const std::uint64_t agg = (need_agg + 63) / 64 * 64;
      fix.patched.tile_params.agg_data_bytes =
          static_cast<std::uint32_t>(agg);
      desc << " agg_data_bytes " << tp.agg_data_bytes << " -> " << agg
           << ";";
      snippet << "tile_agg_data_bytes=" << agg << "\n";
    }
    if (need_dnq > 0) {
      const std::uint64_t dnq = (need_dnq + 63) / 64 * 64;
      fix.patched.tile_params.dnq_data_bytes =
          static_cast<std::uint32_t>(dnq);
      desc << " dnq_data_bytes " << tp.dnq_data_bytes << " -> " << dnq
           << ";";
      snippet << "tile_dnq_data_bytes=" << dnq << "\n";
    }
    fix.description = desc.str();
    fix.manifest_snippet = snippet.str();
    verify_fix(fix);
    out.push_back(std::move(fix));
  }

  // Shared by the GV202 and joint GV202+GV204 searches: the split
  // maximizing the worst queue's concurrency across all dna2 phases (the
  // entry footprints don't depend on the partition, so one search serves
  // both); ties prefer the split closest to the balanced 8/16.
  std::uint32_t best_s = tp.dnq_queue0_sixteenths;
  std::uint64_t best_min = 0;
  {
    for (std::uint32_t s = 0; s <= 16; ++s) {
      std::uint64_t worst = ~std::uint64_t{0};
      bool any = false;
      for (const PhaseModel& m : pa.phases) {
        if (!(m.dnq0.used && m.dnq1.used)) continue;
        any = true;
        const auto [c0, c1] = split_concurrency(
            tp, m.dnq0.entry_bytes, m.dnq1.entry_bytes, s);
        worst = std::min({worst, c0, c1});
      }
      if (!any) break;
      const auto dist = [](std::uint32_t a) {
        return a >= 8 ? a - 8 : 8 - a;
      };
      if (worst > best_min ||
          (worst == best_min && dist(s) < dist(best_s))) {
        best_min = worst;
        best_s = s;
      }
    }
  }

  // ---- GV202 + GV204 together: joint split x partition search ----
  // Fixing the split under the imbalanced partition (or the partition
  // under the starved split) re-lints against a configuration that still
  // fires the other code, so per-lint greedy fixes can never verify.
  // Search the (split, partition) plane jointly instead and emit one
  // suggestion per code sharing the joint configuration.
  const bool joint = lints_have(lints, LintCode::kQueueSplitStarved) &&
                     lints_have(lints, LintCode::kPartitionImbalance);
  if (joint) {
    AcceleratorConfig patched = cfg;
    patched.tile_params.dnq_queue0_sixteenths = best_s;
    const graph::PartitionPolicy candidates[] = {
        graph::PartitionPolicy::kBlock,
        graph::PartitionPolicy::kRoundRobin,
        graph::PartitionPolicy::kProfileGuided,
    };
    graph::PartitionPolicy chosen = graph::PartitionPolicy::kProfileGuided;
    bool cleared = false;
    for (const auto p : candidates) {
      if (p == options.partition) continue;
      AnalysisOptions po = options;
      po.partition = p;
      const auto relint = perf_lints(prog, patched, po);
      if (!lints_have(relint, LintCode::kQueueSplitStarved) &&
          !lints_have(relint, LintCode::kPartitionImbalance)) {
        chosen = p;
        cleared = true;
        break;
      }
    }
    const auto partition_token = [](graph::PartitionPolicy p) {
      switch (p) {
        case graph::PartitionPolicy::kBlock:
          return "block";
        case graph::PartitionPolicy::kProfileGuided:
          return "profile-guided";
        default:
          return "round-robin";
      }
    };
    const std::string snippet =
        "tile_dnq_queue0_sixteenths=" + std::to_string(best_s) +
        "\npartition=" + std::string(partition_token(chosen)) + "\n";
    AnalysisOptions chosen_options = options;
    chosen_options.partition = chosen;
    const auto relint = perf_lints(prog, patched, chosen_options);
    const bool verified =
        cleared && !lints_have(relint, LintCode::kQueueSplitStarved) &&
        !lints_have(relint, LintCode::kPartitionImbalance);
    for (const auto code : {LintCode::kQueueSplitStarved,
                            LintCode::kPartitionImbalance}) {
      FixSuggestion fix;
      fix.code = code;
      fix.patched = patched;
      fix.partition = chosen;
      std::ostringstream desc;
      desc << "joint split x partition fix: dnq_queue0_sixteenths "
           << tp.dnq_queue0_sixteenths << "/16 -> " << best_s
           << "/16 (every active queue >= " << best_min
           << " concurrent entries) with the " << partition_token(chosen)
           << " partition"
           << (chosen == graph::PartitionPolicy::kProfileGuided
                   ? " (add attribution_from=<profile.json> to the "
                     "manifest)"
                   : "")
           << " — searched jointly because fixing either lint alone "
              "re-fires the other";
      fix.description = desc.str();
      fix.manifest_snippet = snippet;
      fix.verified = verified;
      out.push_back(std::move(fix));
    }
  }

  // ---- GV202: rebalance the virtual-queue split ----
  if (!joint && lints_have(lints, LintCode::kQueueSplitStarved)) {
    FixSuggestion fix;
    fix.code = LintCode::kQueueSplitStarved;
    fix.patched = cfg;
    fix.patched.tile_params.dnq_queue0_sixteenths = best_s;
    fix.partition = options.partition;
    std::ostringstream desc;
    desc << "rebalance the DNQ virtual-queue split: dnq_queue0_sixteenths "
         << tp.dnq_queue0_sixteenths << "/16 -> " << best_s
         << "/16 gives every active queue >= " << best_min
         << " concurrent entries";
    fix.description = desc.str();
    fix.manifest_snippet =
        "tile_dnq_queue0_sixteenths=" + std::to_string(best_s) + "\n";
    verify_fix(fix);
    out.push_back(std::move(fix));
  }

  // ---- GV203: XOR-permute the bank mapping ----
  if (lints_have(lints, LintCode::kBankCamping)) {
    FixSuggestion fix;
    fix.code = LintCode::kBankCamping;
    fix.patched = cfg;
    fix.patched.mem_params.bank_xor = true;
    fix.partition = options.partition;
    fix.description =
        "enable the XOR bank permutation (bank ^= row % banks): rows then "
        "rotate the camped traffic across all banks, restoring FR-FCFS "
        "bank parallelism without moving any data";
    fix.manifest_snippet = "mem_bank_xor=1\n";
    verify_fix(fix);
    out.push_back(std::move(fix));
  }

  // ---- GV204: change the partition policy ----
  if (!joint && lints_have(lints, LintCode::kPartitionImbalance)) {
    FixSuggestion fix;
    fix.code = LintCode::kPartitionImbalance;
    fix.patched = cfg;
    // Prefer block (statically verifiable here); fall back to
    // profile-guided, which LPT-packs measured loads and is modeled as
    // balanced — it needs `attribution_from=<profile.json>` at run time.
    AnalysisOptions block_options = options;
    block_options.partition = graph::PartitionPolicy::kBlock;
    if (options.partition != graph::PartitionPolicy::kBlock &&
        !lints_have(perf_lints(prog, cfg, block_options),
                    LintCode::kPartitionImbalance)) {
      fix.partition = graph::PartitionPolicy::kBlock;
      fix.description =
          "switch to the block partition: contiguous vertex ranges spread "
          "this layout's heavy vertices evenly across tiles";
      fix.manifest_snippet = "partition=block\n";
    } else {
      fix.partition = graph::PartitionPolicy::kProfileGuided;
      fix.description =
          "switch to profile-guided partitioning (LPT over a prior run's "
          "measured per-vertex load; add attribution_from=<profile.json> "
          "to the manifest): no static policy balances this load";
      fix.manifest_snippet = "partition=profile-guided\n";
    }
    verify_fix(fix);
    out.push_back(std::move(fix));
  }

  return out;
}

}  // namespace gnna::accel
