#include "accel/gpe.hpp"

#include <cassert>

namespace gnna::accel {

Gpe::Gpe(const TileParams& params, noc::MeshNetwork& net, EndpointId ep_gpe,
         EndpointId ep_agg, EndpointId ep_dnq, const AddressMap& addr_map,
         double core_scale)
    : params_(params),
      net_(net),
      ep_gpe_(ep_gpe),
      ep_agg_(ep_agg),
      ep_dnq_(ep_dnq),
      addr_map_(addr_map),
      scale_(core_scale) {
  threads_.resize(params.gpe_threads);
}

void Gpe::begin_phase(const CompiledProgram& prog, const graph::Dataset& ds,
                      const PhaseSpec& phase,
                      std::vector<std::uint32_t> work) {
  assert(idle() && "begin_phase on a busy GPE");
  prog_ = &prog;
  ds_ = &ds;
  phase_ = &phase;
  work_ = std::move(work);
  next_work_ = 0;
  for (auto& t : threads_) t = Thread{};
  gpe_time_ = static_cast<double>(net_.now());
}

bool Gpe::idle() const {
  if (next_work_ < work_.size()) return false;
  for (const auto& t : threads_) {
    if (t.state != Thread::State::kFree) return false;
  }
  return true;
}

std::uint32_t Gpe::issue_load(Addr addr, std::uint64_t bytes,
                              EndpointId reply_to, std::uint64_t tag,
                              std::uint32_t owner) {
  std::uint32_t segments = 0;
  addr_map_.for_each_segment(
      addr, bytes, [&](EndpointId mem_ep, Addr a, std::uint64_t seg) {
        noc::Message m;
        m.src = ep_gpe_;
        m.dst = mem_ep;
        m.reply_to = reply_to;
        m.kind = noc::MsgKind::kMemReadReq;
        m.payload_bytes = 0;  // request header: one flit
        m.owner = owner;
        m.a = a;
        m.b = seg;
        m.c = tag;
        net_.send(m);
        ++segments;
      });
  stats_.loads_issued.add();
  stats_.load_segments.add(segments);
  return segments;
}

void Gpe::send_to_dnq(DnqHandle h, std::uint32_t words, std::uint32_t owner) {
  noc::Message m;
  m.src = ep_gpe_;
  m.dst = ep_dnq_;
  m.kind = noc::MsgKind::kDnqWrite;
  m.payload_bytes = words * kWordBytes;
  m.owner = owner;
  m.a = h;
  net_.send(m);
}

const char* Gpe::body_span_name() const {
  const PhaseSpec& ph = *phase_;
  if (ph.per_graph) return "task/readout";
  switch (ph.kind) {
    case PhaseKind::kGatherAggregate:
      return ph.walk_len > 1 ? "task/walk" : "task/gather";
    case PhaseKind::kProject:
      return "task/project";
    case PhaseKind::kEdgeDnaAggregate:
      return "task/edges";
  }
  return "task/body";
}

void Gpe::finish_task(Thread& t) {
  t.state = Thread::State::kFree;
  stats_.tasks_completed.add();
  if (tracer_.enabled()) {
    const auto ti = static_cast<std::uint64_t>(&t - threads_.data());
    // Flame sub-span: body of the task ('/' nesting under "task"). The gap
    // between traverse and body spans is memory wait, surfaced by the
    // profiler as the task's self time.
    tracer_.complete(body_span_name(), t.body_started,
                     gpe_time_ - t.body_started, t.work, ti);
    tracer_.complete("task", t.task_started, gpe_time_ - t.task_started,
                     t.work, ti);
  }
}

void Gpe::stall(Thread& t) {
  t.state = Thread::State::kStalled;
  t.stalled_until = static_cast<double>(net_.now()) + 16.0;
  stats_.alloc_stalls.add();
  if (tracer_.enabled()) {
    tracer_.instant_at("alloc_stall", gpe_time_,
                       static_cast<std::uint64_t>(&t - threads_.data()),
                       t.work);
  }
}

int Gpe::pick_runnable(double now) {
  const std::size_t n = threads_.size();
  for (std::size_t off = 1; off <= n; ++off) {
    const std::size_t i = (last_thread_ + off) % n;
    Thread& t = threads_[i];
    if (t.state == Thread::State::kStalled && t.stalled_until <= now) {
      t.state = Thread::State::kRunnable;
    }
    if (t.state == Thread::State::kRunnable) return static_cast<int>(i);
    if (t.state == Thread::State::kFree && next_work_ < work_.size()) {
      // Claim the next work item and start its vertex program.
      t = Thread{};
      t.state = Thread::State::kRunnable;
      t.work = work_[next_work_++];
      t.task_started = now;
      t.body_started = now;  // overwritten when a traversal prologue ends
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Gpe::dump_state(std::ostream& os) const {
  const auto thread_state_name = [](Thread::State s) {
    switch (s) {
      case Thread::State::kFree: return "free";
      case Thread::State::kRunnable: return "runnable";
      case Thread::State::kWaitMem: return "wait_mem";
      case Thread::State::kStalled: return "stalled";
    }
    return "?";
  };
  os << "    gpe: work=" << next_work_ << '/' << work_.size()
     << " dispatched, gpe_time=" << gpe_time_ << '\n';
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    const Thread& t = threads_[i];
    if (t.state == Thread::State::kFree) continue;
    os << "      thread " << i << ": " << thread_state_name(t.state)
       << " work=" << t.work << " stage=" << t.stage << " loop_i="
       << t.loop_i << " pending_responses=" << t.pending_responses;
    if (t.state == Thread::State::kStalled) {
      os << " stalled_until=" << t.stalled_until;
    }
    os << '\n';
  }
}

void Gpe::tick(Agg& agg, Dnq& dnq) {
  const auto now = static_cast<double>(net_.now());

  // Wake threads whose blocking loads completed (flit buffer -> scratchpad
  // happens without core intervention; the wake is free).
  while (auto m = net_.poll(ep_gpe_)) {
    assert(m->kind == noc::MsgKind::kMemReadResp);
    const auto ti = static_cast<std::size_t>(m->c);
    assert(ti < threads_.size());
    Thread& t = threads_[ti];
    assert(t.state == Thread::State::kWaitMem && t.pending_responses > 0);
    if (--t.pending_responses == 0) t.state = Thread::State::kRunnable;
  }

  // Single-threaded core: execute micro-actions until we catch up with the
  // NoC clock.
  while (gpe_time_ <= now) {
    const int ti = pick_runnable(gpe_time_);
    if (ti < 0) {
      gpe_time_ = now + 1.0;  // idle this cycle
      return;
    }
    double cost = 0.0;
    if (static_cast<std::size_t>(ti) != last_thread_) {
      cost += params_.cost_context_switch;
      stats_.context_switches.add();
      if (tracer_.enabled()) {
        tracer_.instant_at("switch", gpe_time_,
                           static_cast<std::uint64_t>(ti),
                           threads_[static_cast<std::size_t>(ti)].work);
      }
    }
    last_thread_ = static_cast<std::size_t>(ti);
    cost += step(threads_[last_thread_], agg, dnq);
    stats_.actions.add();
    gpe_time_ += cost * scale_;
    stats_.busy_cycles += cost * scale_;
  }
}

double Gpe::step(Thread& t, Agg& agg, Dnq& dnq) {
  const PhaseSpec& ph = *phase_;

  if (ph.per_graph) return step_graph_readout(t, agg, dnq);

  // Common prologue: traversal of the vertex's adjacency row.
  if (t.stage == 0) {
    // Bind the task to its graph and issue the row-pointer pair load.
    t.graph_idx = prog_->graph_of(t.work);
    const GraphLayout& gl = prog_->graphs[t.graph_idx];
    t.local_v = t.work - gl.node_offset;
    const Addr a = prog_->memmap.addr(gl.row_ptr,
                                      std::uint64_t{t.local_v} * kWordBytes);
    t.pending_responses = issue_load(a, 2 * kWordBytes, ep_gpe_,
                                     static_cast<std::uint64_t>(
                                         &t - threads_.data()),
                                     t.work);
    t.state = Thread::State::kWaitMem;
    t.stage = 1;
    return params_.cost_issue_load;
  }
  if (t.stage == 1) {
    const graph::Graph& g = task_graph(t);
    const std::uint32_t deg = g.out_degree(t.local_v);
    t.n_contrib = deg + (ph.include_self ? 1 : 0);
    t.stage = 2;
    if (tracer_.enabled()) {
      tracer_.complete("task/traverse", t.task_started,
                       gpe_time_ - t.task_started, t.work,
                       static_cast<std::uint64_t>(&t - threads_.data()));
    }
    t.body_started = gpe_time_;
    if (deg == 0) return params_.cost_loop_iter;
    const GraphLayout& gl = prog_->graphs[t.graph_idx];
    const Addr a = prog_->memmap.addr(
        gl.col_idx, std::uint64_t{g.edge_index(t.local_v, 0)} * 2 * kWordBytes);
    const std::uint64_t bytes =
        std::uint64_t{deg} * (ph.weighted_edges ? 2 * kWordBytes : kWordBytes);
    t.pending_responses = issue_load(a, bytes, ep_gpe_,
                                     static_cast<std::uint64_t>(
                                         &t - threads_.data()),
                                     t.work);
    t.state = Thread::State::kWaitMem;
    return params_.cost_issue_load;
  }

  switch (ph.kind) {
    case PhaseKind::kGatherAggregate:
      return step_gather_aggregate(t, agg, dnq);
    case PhaseKind::kProject:
      return step_project(t, dnq);
    case PhaseKind::kEdgeDnaAggregate:
      return step_edge_dna_aggregate(t, agg, dnq);
  }
  assert(false);
  return 1.0;
}

double Gpe::step_gather_aggregate(Thread& t, Agg& agg, Dnq& dnq) {
  const PhaseSpec& ph = *phase_;
  const Addr out_addr = vertex_addr(ph.output, t.work);

  if (t.stage == 2) {  // allocate the DNQ entry (if the phase projects)
    if (!ph.has_dna()) {
      t.stage = 3;
      return params_.cost_loop_iter;
    }
    Dest dest;
    dest.kind = Dest::Kind::kMemWrite;
    dest.addr = out_addr;
    auto h = dnq.allocate(0, ph.agg_width_words, dest, t.work);
    if (!h.has_value()) {
      stall(t);
      return params_.cost_alloc;
    }
    t.cur_dnq0_h = *h;
    t.stage = 3;
    return params_.cost_alloc;
  }
  if (t.stage == 3) {  // allocate the AGG entry
    Dest dest;
    if (ph.has_dna()) {
      dest.kind = Dest::Kind::kDnqEntry;
      dest.ep = ep_dnq_;
      dest.handle = t.cur_dnq0_h;
    } else {
      dest.kind = Dest::Kind::kMemWrite;
      dest.addr = out_addr;
    }
    // Multi-hop phases know their contribution count from the walk tree;
    // plain gathers contribute once per neighbor (+ self).
    const std::uint64_t contribs =
        ph.walk_len > 1 ? ph.expected_contribs[t.work] : t.n_contrib;
    auto h = agg.allocate(ph.agg_width_words,
                          contribs * ph.agg_width_words, ph.agg_op, dest,
                          t.work);
    if (!h.has_value()) {
      stall(t);
      return params_.cost_alloc;
    }
    t.agg_h = *h;
    t.stage = 4;
    t.loop_i = 0;
    if (ph.walk_len > 1) {
      // Root frame: its row was fetched by the prologue.
      t.walk_depth = 1;
      t.walk[0] = WalkFrame{t.local_v, 0, 2};
    }
    return params_.cost_alloc;
  }
  if (ph.walk_len > 1) return step_walk(t);
  // Stage 4: gather loop — one indirect load per contribution.
  if (t.loop_i >= t.n_contrib) {
    finish_task(t);
    return params_.cost_loop_iter;
  }
  const graph::Graph& g = task_graph(t);
  const std::uint32_t deg = g.out_degree(t.local_v);
  const NodeId u_local =
      t.loop_i < deg ? g.neighbors(t.local_v)[t.loop_i] : t.local_v;
  const NodeId u_global =
      prog_->graphs[t.graph_idx].node_offset + u_local;
  issue_load(vertex_addr(ph.gather, u_global),
             std::uint64_t{ph.gather.width_words} * kWordBytes, ep_agg_,
             t.agg_h, t.work);
  ++t.loop_i;
  if (t.loop_i >= t.n_contrib) finish_task(t);
  return params_.cost_loop_iter + params_.cost_issue_load;
}

double Gpe::step_walk(Thread& t) {
  // Depth-first enumeration of all walks of length walk_len from the task
  // vertex. Expanding an interior vertex requires its adjacency row —
  // two *dependent* memory round trips (row pointers, then column
  // indices) that the thread blocks on; walk endpoints are gathered with
  // indirect loads routed straight to the AGG entry.
  const PhaseSpec& ph = *phase_;
  const graph::Graph& g = task_graph(t);
  const GraphLayout& gl = prog_->graphs[t.graph_idx];
  const auto thread_tag =
      static_cast<std::uint64_t>(&t - threads_.data());

  WalkFrame& f = t.walk[t.walk_depth - 1];
  if (f.row_state == 0) {  // fetch row pointers of this interior vertex
    f.row_state = 1;
    const Addr a =
        prog_->memmap.addr(gl.row_ptr, std::uint64_t{f.node} * kWordBytes);
    t.pending_responses =
        issue_load(a, 2 * kWordBytes, ep_gpe_, thread_tag, t.work);
    t.state = Thread::State::kWaitMem;
    return params_.cost_issue_load;
  }
  if (f.row_state == 1) {  // fetch column indices (dependent on row ptrs)
    f.row_state = 2;
    const std::uint32_t deg = g.out_degree(f.node);
    if (deg == 0) return params_.cost_loop_iter;
    const Addr a = prog_->memmap.addr(
        gl.col_idx, std::uint64_t{g.edge_index(f.node, 0)} * 2 * kWordBytes);
    t.pending_responses = issue_load(a, std::uint64_t{deg} * kWordBytes,
                                     ep_gpe_, thread_tag, t.work);
    t.state = Thread::State::kWaitMem;
    return params_.cost_issue_load;
  }

  // Row resident: visit the next child.
  const std::uint32_t deg = g.out_degree(f.node);
  if (f.next_child >= deg) {  // subtree done
    --t.walk_depth;
    if (t.walk_depth == 0) finish_task(t);
    return params_.cost_loop_iter;
  }
  const NodeId w = g.neighbors(f.node)[f.next_child++];
  if (t.walk_depth == ph.walk_len) {  // endpoint: gather its vector
    const NodeId w_global = gl.node_offset + w;
    issue_load(vertex_addr(ph.gather, w_global),
               std::uint64_t{ph.gather.width_words} * kWordBytes, ep_agg_,
               t.agg_h, t.work);
    return params_.cost_loop_iter + params_.cost_issue_load;
  }
  // Interior: descend.
  t.walk[t.walk_depth++] = WalkFrame{w, 0, 0};
  return params_.cost_loop_iter;
}

double Gpe::step_project(Thread& t, Dnq& dnq) {
  const PhaseSpec& ph = *phase_;
  if (t.stage == 2) {  // allocate the DNQ entry
    std::uint32_t width = 0;
    for (const auto& b : ph.extra_inputs) width += b.width_words;
    Dest dest;
    dest.kind = Dest::Kind::kMemWrite;
    dest.addr = vertex_addr(ph.output, t.work);
    auto h = dnq.allocate(0, width, dest, t.work);
    if (!h.has_value()) {
      stall(t);
      return params_.cost_alloc;
    }
    t.cur_dnq0_h = *h;
    t.stage = 3;
    t.loop_i = 0;
    return params_.cost_alloc;
  }
  // Stage 3: one load per input buffer.
  const BufferRef& b = ph.extra_inputs[t.loop_i];
  issue_load(vertex_addr(b, t.work),
             std::uint64_t{b.width_words} * kWordBytes, ep_dnq_,
             t.cur_dnq0_h, t.work);
  ++t.loop_i;
  if (t.loop_i >= ph.extra_inputs.size()) finish_task(t);
  return params_.cost_loop_iter + params_.cost_issue_load;
}

double Gpe::step_edge_dna_aggregate(Thread& t, Agg& agg, Dnq& dnq) {
  const PhaseSpec& ph = *phase_;
  const Addr out_addr = vertex_addr(ph.output, t.work);
  const bool needs_own =
      ph.gpe_words_per_entry > 0 || ph.dna2_gpe_words > 0;

  if (t.stage == 2) {  // fetch the vertex's own vector into the scratchpad
    t.stage = 3;
    if (!needs_own) return params_.cost_loop_iter;
    t.pending_responses = issue_load(
        vertex_addr(ph.gather, t.work),
        std::uint64_t{ph.gather.width_words} * kWordBytes, ep_gpe_,
        static_cast<std::uint64_t>(&t - threads_.data()), t.work);
    t.state = Thread::State::kWaitMem;
    return params_.cost_issue_load;
  }
  if (t.stage == 3) {  // allocate the virtual-queue-1 entry (GRU etc.)
    if (!ph.has_dna2()) {
      t.stage = 4;
      return params_.cost_loop_iter;
    }
    Dest dest;
    dest.kind = Dest::Kind::kMemWrite;
    dest.addr = out_addr;
    auto h = dnq.allocate(1, ph.agg_width_words + ph.dna2_gpe_words, dest,
                          t.work);
    if (!h.has_value()) {
      stall(t);
      return params_.cost_alloc;
    }
    t.dnq1_h = *h;
    t.stage = 4;
    return params_.cost_alloc;
  }
  if (t.stage == 4) {  // allocate the AGG entry
    Dest dest;
    if (ph.has_dna2()) {
      dest.kind = Dest::Kind::kDnqEntry;
      dest.ep = ep_dnq_;
      dest.handle = t.dnq1_h;
    } else {
      dest.kind = Dest::Kind::kMemWrite;
      dest.addr = out_addr;
    }
    auto h = agg.allocate(ph.agg_width_words,
                          std::uint64_t{t.n_contrib} * ph.agg_width_words,
                          ph.agg_op, dest, t.work);
    if (!h.has_value()) {
      stall(t);
      return params_.cost_alloc;
    }
    t.agg_h = *h;
    t.stage = 5;
    return params_.cost_alloc;
  }
  if (t.stage == 5) {  // copy h_v into the queue-1 entry
    t.stage = 6;
    t.loop_i = 0;
    t.loop_sub = 0;
    if (!ph.has_dna2() || ph.dna2_gpe_words == 0) {
      if (t.n_contrib == 0) finish_task(t);
      return params_.cost_loop_iter;
    }
    send_to_dnq(t.dnq1_h, ph.dna2_gpe_words, t.work);
    if (t.n_contrib == 0) finish_task(t);
    return params_.cost_send;
  }

  // Stage 6: per-edge loop; each iteration allocates a queue-0 entry and
  // feeds it (loads + GPE copy).
  const graph::Graph& g = task_graph(t);
  const std::uint32_t deg = g.out_degree(t.local_v);
  const bool is_self = t.loop_i >= deg;
  assert(!(is_self && !ph.extra_inputs.empty() && ph.extra_inputs_per_edge) &&
         "self contribution cannot carry per-edge inputs");

  if (t.loop_sub == 0) {  // allocate queue-0 entry
    std::uint32_t width = ph.gather.width_words + ph.gpe_words_per_entry;
    for (const auto& b : ph.extra_inputs) width += b.width_words;
    Dest dest;
    dest.kind = Dest::Kind::kAggEntry;
    dest.ep = ep_agg_;
    dest.handle = t.agg_h;
    auto h = dnq.allocate(0, width, dest, t.work);
    if (!h.has_value()) {
      stall(t);
      return params_.cost_alloc;
    }
    t.cur_dnq0_h = *h;
    t.loop_sub = 1;
    return params_.cost_alloc;
  }
  if (t.loop_sub == 1) {  // load the neighbor vector
    const NodeId u_local =
        is_self ? t.local_v : g.neighbors(t.local_v)[t.loop_i];
    const NodeId u_global =
        prog_->graphs[t.graph_idx].node_offset + u_local;
    issue_load(vertex_addr(ph.gather, u_global),
               std::uint64_t{ph.gather.width_words} * kWordBytes, ep_dnq_,
               t.cur_dnq0_h, t.work);
    t.loop_sub = 2;
    return params_.cost_loop_iter + params_.cost_issue_load;
  }
  if (t.loop_sub == 2 && !ph.extra_inputs.empty()) {  // per-edge extras
    const BufferRef& b = ph.extra_inputs.front();
    std::uint64_t index;
    if (ph.extra_inputs_per_edge) {
      index = std::uint64_t{prog_->graphs[t.graph_idx].edge_offset} +
              g.edge_index(t.local_v, t.loop_i);
    } else {
      index = t.work;
    }
    issue_load(prog_->memmap.addr(b.region,
                                  index * b.width_words * kWordBytes),
               std::uint64_t{b.width_words} * kWordBytes, ep_dnq_,
               t.cur_dnq0_h, t.work);
    t.loop_sub = 3;
    return params_.cost_loop_iter + params_.cost_issue_load;
  }
  // Final sub-step: GPE copy of p_v / advance to next edge.
  if (ph.gpe_words_per_entry > 0) {
    send_to_dnq(t.cur_dnq0_h, ph.gpe_words_per_entry, t.work);
  }
  ++t.loop_i;
  t.loop_sub = 0;
  if (t.loop_i >= t.n_contrib) finish_task(t);
  return ph.gpe_words_per_entry > 0 ? params_.cost_send
                                    : params_.cost_loop_iter;
}

double Gpe::step_graph_readout(Thread& t, Agg& agg, Dnq& dnq) {
  const PhaseSpec& ph = *phase_;
  // Work item = graph index. Stage 0: bind; no traversal needed — the
  // graph's vertex block is contiguous in the gather buffer.
  if (t.stage == 0) {
    t.graph_idx = t.work;
    t.n_contrib = prog_->graphs[t.graph_idx].num_nodes;
    t.stage = 2;
    return params_.cost_loop_iter;
  }
  const Addr out_addr = prog_->memmap.addr(
      ph.output.region,
      std::uint64_t{t.work} * ph.output.width_words * kWordBytes);
  if (t.stage == 2) {  // DNQ entry for the pooled vector
    if (!ph.has_dna()) {
      t.stage = 3;
      return params_.cost_loop_iter;
    }
    Dest dest;
    dest.kind = Dest::Kind::kMemWrite;
    dest.addr = out_addr;
    auto h = dnq.allocate(0, ph.agg_width_words, dest, t.work);
    if (!h.has_value()) {
      stall(t);
      return params_.cost_alloc;
    }
    t.cur_dnq0_h = *h;
    t.stage = 3;
    return params_.cost_alloc;
  }
  if (t.stage == 3) {  // AGG entry summing the whole block
    Dest dest;
    if (ph.has_dna()) {
      dest.kind = Dest::Kind::kDnqEntry;
      dest.ep = ep_dnq_;
      dest.handle = t.cur_dnq0_h;
    } else {
      dest.kind = Dest::Kind::kMemWrite;
      dest.addr = out_addr;
    }
    auto h = agg.allocate(
        ph.agg_width_words,
        std::uint64_t{t.n_contrib} * ph.gather.width_words, ph.agg_op, dest,
        t.work);
    if (!h.has_value()) {
      stall(t);
      return params_.cost_alloc;
    }
    t.agg_h = *h;
    t.stage = 4;
    return params_.cost_alloc;
  }
  // Stage 4: one wide load of the graph's contiguous state block.
  const NodeId first_global = prog_->graphs[t.graph_idx].node_offset;
  issue_load(vertex_addr(ph.gather, first_global),
             std::uint64_t{t.n_contrib} * ph.gather.width_words * kWordBytes,
             ep_agg_, t.agg_h, t.work);
  finish_task(t);
  return params_.cost_issue_load;
}

}  // namespace gnna::accel
