#include "accel/opt.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <utility>

#include "accel/dnq.hpp"
#include "common/types.hpp"

namespace gnna::accel::opt {

namespace {

constexpr std::uint64_t kWordBytes = 4;

/// Number of places `p` references region `id` (graph tables + every
/// semantically live phase field — a kProject gather and a weight_region
/// with no weight bytes are never read).
std::size_t use_count(const CompiledProgram& p, RegionId id) {
  std::size_t n = 0;
  for (const auto& g : p.graphs) {
    n += static_cast<std::size_t>(g.row_ptr == id);
    n += static_cast<std::size_t>(g.col_idx == id);
  }
  for (const auto& ph : p.phases) {
    if (ph.kind != PhaseKind::kProject) {
      n += static_cast<std::size_t>(ph.gather.region == id);
    }
    for (const auto& b : ph.extra_inputs) {
      n += static_cast<std::size_t>(b.region == id);
    }
    n += static_cast<std::size_t>(ph.output.region == id);
    if (ph.weight_bytes > 0) {
      n += static_cast<std::size_t>(ph.weight_region == id);
    }
  }
  return n;
}

/// Can phases[i] (a) and phases[i+1] (b) fuse? Mirrors the validator's
/// match_fusion preconditions (validate.cpp) plus the scratchpad footprint
/// bound: the fused DNQ-0 entry (agg_width words, full scratchpad since
/// the fused phase never uses queue 1) must still admit >= 2 concurrent
/// entries, or fusion would trade a barrier for thread serialization.
bool fusable(const CompiledProgram& p, const PhaseSpec& a, const PhaseSpec& b,
             const TileParams& tp) {
  if (a.kind != PhaseKind::kGatherAggregate || a.has_dna() || !a.has_agg() ||
      a.per_graph || a.weight_bytes > 0 || !a.extra_inputs.empty() ||
      a.extra_inputs_per_edge || a.gpe_words_per_entry != 0 || a.has_dna2() ||
      a.dna2_gpe_words != 0 || a.output.width_words != a.agg_width_words) {
    return false;
  }
  if (b.kind != PhaseKind::kProject || !b.has_dna() || b.has_dna2() ||
      b.per_graph || b.extra_inputs_per_edge || b.gpe_words_per_entry != 0 ||
      b.extra_inputs.size() != 1) {
    return false;
  }
  if (b.extra_inputs[0].region != a.output.region ||
      b.extra_inputs[0].width_words != a.output.width_words) {
    return false;
  }
  if (a.output.region >= p.memmap.num_regions() ||
      p.memmap.region(a.output.region).preloaded) {
    return false;
  }
  if (use_count(p, a.output.region) != 2) return false;
  const std::uint64_t entry_bytes =
      std::uint64_t{a.agg_width_words} * kWordBytes;
  return entry_bytes > 0 && entry_bytes * 2 <= tp.dnq_data_bytes;
}

bool pass_fuse_phases(CompiledProgram& p, const TileParams& tp,
                      std::string* summary) {
  std::size_t fused = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i + 1 < p.phases.size(); ++i) {
      if (!fusable(p, p.phases[i], p.phases[i + 1], tp)) continue;
      const PhaseSpec& a = p.phases[i];
      const PhaseSpec& b = p.phases[i + 1];
      PhaseSpec f = a;
      f.name = a.name + "+" + b.name;
      f.dna_shapes = b.dna_shapes;
      f.dna_out_words = b.dna_out_words;
      f.output = b.output;
      f.weight_bytes = b.weight_bytes;
      f.weight_region = b.weight_region;
      p.phases[i] = std::move(f);
      p.phases.erase(p.phases.begin() +
                     static_cast<std::ptrdiff_t>(i + 1));
      ++fused;
      progress = true;
      break;
    }
  }
  *summary = fused > 0 ? std::to_string(fused) + " phase pair(s) fused"
                       : "no fusable phase pairs";
  return fused > 0;
}

bool pass_dedup_contribs(CompiledProgram& p, std::string* summary) {
  std::size_t tables = 0;
  std::uint64_t entries = 0;
  for (auto& ph : p.phases) {
    if (ph.walk_len <= 1 && !ph.expected_contribs.empty()) {
      ++tables;
      entries += ph.expected_contribs.size();
      ph.expected_contribs.clear();
    }
  }
  *summary = tables > 0 ? std::to_string(tables) + " unused table(s), " +
                              std::to_string(entries) + " entries dropped"
                        : "no unused expected_contribs tables";
  return tables > 0;
}

bool pass_dead_regions(CompiledProgram& p, std::string* summary) {
  std::vector<bool> alive(p.memmap.num_regions(), false);
  for (const auto& g : p.graphs) {
    if (g.row_ptr < alive.size()) alive[g.row_ptr] = true;
    if (g.col_idx < alive.size()) alive[g.col_idx] = true;
  }
  for (const auto& ph : p.phases) {
    auto mark = [&](RegionId id) {
      if (id < alive.size()) alive[id] = true;
    };
    if (ph.kind != PhaseKind::kProject) mark(ph.gather.region);
    for (const auto& b : ph.extra_inputs) mark(b.region);
    mark(ph.output.region);
    if (ph.weight_bytes > 0) mark(ph.weight_region);
  }

  std::size_t dead = 0;
  for (const auto live : alive) dead += static_cast<std::size_t>(!live);
  if (dead == 0) {
    *summary = "no dead regions";
    return false;
  }

  // Rebuild the map keeping each surviving region at its original base
  // (pack-regions closes the gaps), and renumber every reference.
  MemoryMap packed;
  std::map<RegionId, RegionId> renum;
  for (RegionId id = 0; id < alive.size(); ++id) {
    if (!alive[id]) continue;
    const Region& r = p.memmap.region(id);
    renum[id] = packed.add_region_at(r.name, r.base, r.bytes, r.preloaded);
  }
  auto remap = [&](RegionId id) {
    const auto it = renum.find(id);
    // Dead ids only survive in don't-care fields (a kProject gather, a
    // weight_region with no bytes); reset those to region 0.
    return it == renum.end() ? RegionId{0} : it->second;
  };
  for (auto& g : p.graphs) {
    g.row_ptr = remap(g.row_ptr);
    g.col_idx = remap(g.col_idx);
  }
  for (auto& ph : p.phases) {
    ph.gather.region = remap(ph.gather.region);
    for (auto& b : ph.extra_inputs) b.region = remap(b.region);
    ph.output.region = remap(ph.output.region);
    ph.weight_region = remap(ph.weight_region);
  }
  p.memmap = std::move(packed);
  *summary = std::to_string(dead) + " dead region(s) removed";
  return true;
}

bool pass_pack_regions(CompiledProgram& p, std::string* summary) {
  MemoryMap packed;
  bool moved = false;
  std::uint64_t reclaimed = 0;
  for (RegionId id = 0; id < p.memmap.num_regions(); ++id) {
    const Region& r = p.memmap.region(id);
    const RegionId nid = packed.add_region(r.name, r.bytes, r.preloaded);
    if (packed.region(nid).base != r.base) {
      moved = true;
      reclaimed = p.memmap.total_bytes() - packed.total_bytes();
    }
  }
  if (!moved) {
    *summary = "layout already packed";
    return false;
  }
  p.memmap = std::move(packed);
  *summary = "regions repacked, " + std::to_string(reclaimed) +
             " bytes reclaimed";
  return true;
}

}  // namespace

const std::vector<PassInfo>& pass_catalog() {
  static const std::vector<PassInfo> kCatalog = {
      {"fuse-phases",
       "fuse a pure gather+aggregate into the projection consuming its "
       "output (removes one barrier and one memory round-trip)"},
      {"dedup-contribs",
       "drop expected_contribs tables the runtime provably never reads "
       "(walk_len <= 1 gathers use CSR degrees)"},
      {"dead-regions",
       "remove memory-map regions nothing references, renumbering ids"},
      {"pack-regions",
       "re-layout the memory map to the packed 64B-aligned cursor, "
       "closing gaps"},
  };
  return kCatalog;
}

OptimizeResult optimize_program(const CompiledProgram& prog,
                                const OptimizeOptions& options) {
  const TileParams tp = options.config != nullptr ? options.config->tile_params
                                                  : TileParams{};
  using PassFn = std::function<bool(CompiledProgram&, std::string*)>;
  const std::map<std::string, PassFn> registry = {
      {"fuse-phases",
       [&tp](CompiledProgram& p, std::string* s) {
         return pass_fuse_phases(p, tp, s);
       }},
      {"dedup-contribs",
       [](CompiledProgram& p, std::string* s) {
         return pass_dedup_contribs(p, s);
       }},
      {"dead-regions",
       [](CompiledProgram& p, std::string* s) {
         return pass_dead_regions(p, s);
       }},
      {"pack-regions",
       [](CompiledProgram& p, std::string* s) {
         return pass_pack_regions(p, s);
       }},
  };

  std::vector<std::string> pipeline = options.passes;
  if (pipeline.empty()) {
    for (const auto& info : pass_catalog()) pipeline.emplace_back(info.name);
  }
  for (const auto& name : pipeline) {
    if (registry.find(name) == registry.end()) {
      throw std::invalid_argument("optimize_program: unknown pass '" + name +
                                  "'");
    }
  }

  validate::ValidationOptions vopts;
  vopts.dataset = options.dataset;
  vopts.config = options.config;

  OptimizeResult res;
  res.program = prog;
  for (const auto& name : pipeline) {
    CompiledProgram before = res.program;
    PassOutcome outcome;
    outcome.pass = name;
    outcome.changed = registry.at(name)(res.program, &outcome.summary);
    if (outcome.changed && options.validate) {
      outcome.validation =
          validate::validate_transform(before, res.program, vopts);
      if (!outcome.validation.equivalent) {
        // Refuse the unproven rewrite: roll back to the last proven
        // program and stop the pipeline.
        res.validated = false;
        res.failure = "pass '" + name + "' failed translation validation:\n" +
                      outcome.validation.to_string();
        res.program = std::move(before);
        res.passes.push_back(std::move(outcome));
        break;
      }
    }
    res.passes.push_back(std::move(outcome));
  }
  return res;
}

}  // namespace gnna::accel::opt
