// Address-space interleaving across memory nodes, and the Dest descriptor
// that tells a producing unit (AGG / DNA) where its result goes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "noc/message.hpp"

namespace gnna::accel {

/// Maps physical addresses onto memory-node endpoints: page `interleave`
/// bytes wide, round-robin across controllers. Wide vertex-feature reads
/// stay within one page (one request to one controller) while successive
/// vertices spread across controllers.
class AddressMap {
 public:
  AddressMap(std::vector<EndpointId> mem_endpoints, std::uint64_t interleave)
      : mem_eps_(std::move(mem_endpoints)), interleave_(interleave) {}

  [[nodiscard]] EndpointId endpoint_for(Addr addr) const {
    return mem_eps_[(addr / interleave_) % mem_eps_.size()];
  }

  /// Split [addr, addr+bytes) at interleave boundaries and invoke
  /// fn(endpoint, addr, bytes) for each contiguous single-controller chunk.
  template <typename Fn>
  void for_each_segment(Addr addr, std::uint64_t bytes, Fn&& fn) const {
    while (bytes > 0) {
      const Addr page_end = (addr / interleave_ + 1) * interleave_;
      const std::uint64_t chunk =
          std::min<std::uint64_t>(bytes, page_end - addr);
      fn(endpoint_for(addr), addr, chunk);
      addr += chunk;
      bytes -= chunk;
    }
  }

  [[nodiscard]] std::size_t num_controllers() const { return mem_eps_.size(); }

 private:
  std::vector<EndpointId> mem_eps_;
  std::uint64_t interleave_;
};

/// Where a unit's result should be sent once complete. Configured at
/// allocation time (the paper's destination scratchpads).
struct Dest {
  enum class Kind : std::uint8_t {
    kNone,
    kMemWrite,  // write `bytes` at `addr`
    kDnqEntry,  // fill DNQ entry `handle` (same tile or remote)
    kAggEntry,  // contribute to AGG entry `handle`
  };
  Kind kind = Kind::kNone;
  EndpointId ep = kInvalidEndpoint;  // target NoC endpoint (DNQ/AGG dests)
  std::uint64_t handle = 0;          // DNQ/AGG entry handle
  Addr addr = 0;                     // memory destination
};

/// Tag marking DNA weight-fill responses on the DNQ/DNA endpoint.
inline constexpr std::uint64_t kWeightTag = std::uint64_t{1} << 63;

}  // namespace gnna::accel
