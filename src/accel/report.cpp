#include "accel/report.hpp"

#include <sstream>

namespace gnna::accel {

std::string run_stats_csv_header() {
  return "program,config,core_clock_ghz,cycles,millis,"
         "mem_bytes_requested,mem_bytes_served,mean_bandwidth_gbps,"
         "bandwidth_utilization,dna_utilization,gpe_utilization,"
         "agg_utilization,tasks_completed,packets_delivered,"
         "avg_packet_latency,dnq_queue_switches,alloc_stalls,"
         "noc_flit_hops,dna_macs";
}

std::string run_stats_csv_row(const RunStats& rs) {
  std::ostringstream ss;
  ss << rs.program_name << ',' << rs.config_name << ','
     << rs.core_clock_ghz << ',' << rs.cycles << ',' << rs.millis << ','
     << rs.mem_bytes_requested << ',' << rs.mem_bytes_served << ','
     << rs.mean_bandwidth_gbps << ',' << rs.bandwidth_utilization << ','
     << rs.dna_utilization << ',' << rs.gpe_utilization << ','
     << rs.agg_utilization << ',' << rs.tasks_completed << ','
     << rs.packets_delivered << ',' << rs.avg_packet_latency << ','
     << rs.dnq_queue_switches << ',' << rs.alloc_stalls << ','
     << rs.noc_flit_hops << ',' << rs.dna_macs;
  return ss.str();
}

void write_csv(std::ostream& os, const std::vector<RunStats>& runs) {
  os << run_stats_csv_header() << '\n';
  for (const auto& rs : runs) os << run_stats_csv_row(rs) << '\n';
}

std::string sample_csv_header(std::size_t num_mem_controllers) {
  std::ostringstream ss;
  ss << "cycle,phase,gpe_busy,dna_busy,agg_busy,dnq_live_entries,"
        "agg_live_entries,mem_queue_depth,noc_inflight_packets,"
        "mem_total_gbps";
  for (std::size_t i = 0; i < num_mem_controllers; ++i) {
    ss << ",mem" << i << "_gbps";
  }
  return ss.str();
}

}  // namespace gnna::accel
