// GNNA-IR: the versioned, human-readable text format for compiled
// accelerator programs.
//
// A CompiledProgram is the unit Algorithm 1 of the paper iterates; GNNA-IR
// makes it a first-class portable artifact — programs can be saved
// (`gnnasim --emit-program`), diffed, hand-written, linted standalone
// (`gnnaverify foo.gnna`), loaded back for simulation (`program=` manifest
// key) and cached by content hash (src/sim session layer). The grammar and
// versioning rules live in DESIGN.md §12.
//
// Canonical form: `serialize()` emits a deterministic, line-oriented text
// (fixed field order, lists only when non-empty) and `parse()` accepts
// exactly that plus benign whitespace variation, so
// `serialize(parse(serialize(p))) == serialize(p)` byte-for-byte — the
// round-trip property the ctests and the CI verify-programs job pin for
// every shipped benchmark.
//
// Versioning: the header line `gnna-ir <version>` gates parsing. Additive
// grammar changes (new optional field lines) keep the version; any change
// that alters the meaning or canonical rendering of an existing line bumps
// it, and `parse` rejects versions it does not understand rather than
// guessing.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "accel/program.hpp"

namespace gnna::accel::ir {

/// Current GNNA-IR text format version (the `gnna-ir N` header line).
inline constexpr int kIrVersion = 1;

/// Conventional file extension for serialized programs.
inline constexpr const char* kIrExtension = ".gnna";

/// Thrown by parse()/load_file() with a message of the form
/// "<source>:<line>: <reason>" so editors and CI logs can jump to the
/// offending line.
class IrParseError : public std::runtime_error {
 public:
  IrParseError(const std::string& source, std::size_t line,
               const std::string& reason)
      : std::runtime_error(source + ":" + std::to_string(line) + ": " +
                           reason),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Serialize `prog` to canonical GNNA-IR v1 text.
[[nodiscard]] std::string serialize(const CompiledProgram& prog);

/// Parse GNNA-IR text into a CompiledProgram. `source` names the input in
/// error messages (a file path, or "<string>"). Throws IrParseError on any
/// syntactic violation; semantic checks (overlapping regions, dangling
/// region ids, malformed graph tables, ...) are accel::verify's job.
[[nodiscard]] CompiledProgram parse(std::string_view text,
                                    const std::string& source = "<string>");

/// FNV-1a 64-bit hash of arbitrary text.
[[nodiscard]] std::uint64_t hash_text(std::string_view text);

/// Stable content hash of a program: hash_text(serialize(prog)). Two
/// programs hash equal iff their canonical IR is byte-identical, which is
/// what the session program cache dedupes on.
[[nodiscard]] std::uint64_t content_hash(const CompiledProgram& prog);

/// Read and parse a .gnna file. Throws std::runtime_error if the file
/// cannot be opened, IrParseError on bad content.
[[nodiscard]] CompiledProgram load_file(const std::string& path);

/// Serialize `prog` and write it to `path` (overwriting). Throws
/// std::runtime_error on I/O failure.
void save_file(const CompiledProgram& prog, const std::string& path);

}  // namespace gnna::accel::ir
