#include "accel/energy.hpp"

namespace gnna::accel {

EnergyBreakdown estimate_energy(const RunStats& run,
                                const AcceleratorConfig& cfg,
                                const EnergyModel& model) {
  constexpr double kPjToUj = 1e-6;
  EnergyBreakdown e;
  e.dram_uj = static_cast<double>(run.mem_bytes_served) *
              model.pj_per_dram_byte * kPjToUj;
  e.noc_uj = (static_cast<double>(run.noc_flit_hops) * model.pj_per_flit_hop +
              static_cast<double>(run.noc_flits_delivered) *
                  model.pj_per_flit_eject) *
             kPjToUj;
  e.dna_uj =
      static_cast<double>(run.dna_macs) * model.pj_per_mac * kPjToUj;
  e.agg_uj = static_cast<double>(run.agg_words_reduced) *
             model.pj_per_agg_word * kPjToUj;
  e.dnq_uj =
      static_cast<double>(run.dnq_words) * model.pj_per_dnq_word * kPjToUj;
  e.gpe_uj =
      static_cast<double>(run.gpe_actions) * model.pj_per_gpe_op * kPjToUj;
  // Leakage: static power integrated over the runtime, per tile.
  e.leakage_uj = model.mw_leakage_per_tile * 1e-3 /* W */ * run.seconds *
                 cfg.num_tiles() * 1e6 /* J -> uJ */;

  if (run.mem_bytes_served > 0) {
    e.dram_waste_fraction =
        1.0 - static_cast<double>(run.mem_bytes_requested) /
                  static_cast<double>(run.mem_bytes_served);
    if (e.dram_waste_fraction < 0.0) e.dram_waste_fraction = 0.0;
  }
  return e;
}

}  // namespace gnna::accel
