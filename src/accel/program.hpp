// Compiled accelerator programs.
//
// The ProgramCompiler lowers a gnn::ModelSpec running on a graph::Dataset
// into a sequence of PhaseSpecs — the unit Algorithm 1 iterates: each phase
// configures the DNQ/AGG/DNA (line 14), runs one vertex program for every
// vertex (lines 16-20), and ends with a global barrier (line 22). A GNN
// layer lowers to one or more phases (e.g. GAT needs a projection phase
// before its attention phase; PGNN's A^(2^j) powers become repeated 1-hop
// aggregation phases).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/fixed_point.hpp"
#include "common/types.hpp"
#include "dataflow/spatial.hpp"

namespace gnna::accel {

using RegionId = std::uint32_t;

/// A named range of the simulated physical address space. `preloaded`
/// marks regions the loader fills before the program starts (topology,
/// input features, weights); the static verifier treats every other
/// region as undefined until some phase writes it.
struct Region {
  std::string name;
  Addr base = 0;
  std::uint64_t bytes = 0;
  bool preloaded = false;
};

/// Flat address space, page-interleaved across memory nodes by the
/// simulator. Regions are 64B-aligned so buffers never share a DRAM line.
class MemoryMap {
 public:
  RegionId add_region(std::string name, std::uint64_t bytes,
                      bool preloaded = false) {
    // The cursor rounds up to the next 64B line; reject any request whose
    // rounded-up end would wrap the 64-bit address space (the wrapped
    // cursor would silently overlap every earlier region).
    constexpr Addr kMaxAddr = ~Addr{0};
    if (bytes > kMaxAddr - next_ || next_ + bytes > kMaxAddr - 63) {
      throw std::overflow_error("MemoryMap::add_region: region '" + name +
                                "' (" + std::to_string(bytes) +
                                " bytes) overflows the address space");
    }
    Region r;
    r.name = std::move(name);
    r.base = next_;
    r.bytes = bytes;
    r.preloaded = preloaded;
    next_ = (next_ + bytes + 63) / 64 * 64;
    regions_.push_back(std::move(r));
    return static_cast<RegionId>(regions_.size() - 1);
  }

  /// Raw placement for hand-written programs and verifier tests: put a
  /// region at an explicit base with no alignment adjustment. The
  /// allocation cursor advances past it so later add_region calls don't
  /// collide, but nothing stops the caller from overlapping existing
  /// regions — accel::verify flags that (GV007).
  RegionId add_region_at(std::string name, Addr base, std::uint64_t bytes,
                         bool preloaded = false) {
    constexpr Addr kMaxAddr = ~Addr{0};
    if (bytes > kMaxAddr - base || base + bytes > kMaxAddr - 63) {
      throw std::overflow_error("MemoryMap::add_region_at: region '" + name +
                                "' overflows the address space");
    }
    Region r;
    r.name = std::move(name);
    r.base = base;
    r.bytes = bytes;
    r.preloaded = preloaded;
    next_ = std::max(next_, (base + bytes + 63) / 64 * 64);
    regions_.push_back(std::move(r));
    return static_cast<RegionId>(regions_.size() - 1);
  }

  [[nodiscard]] const Region& region(RegionId id) const {
    return regions_.at(id);
  }
  [[nodiscard]] Addr addr(RegionId id, std::uint64_t offset) const {
    return regions_.at(id).base + offset;
  }
  [[nodiscard]] std::uint64_t total_bytes() const { return next_; }
  [[nodiscard]] std::size_t num_regions() const { return regions_.size(); }

 private:
  Addr next_ = 0;
  std::vector<Region> regions_;
};

/// A per-vertex dense buffer living in a region: the vector for global
/// vertex v starts at region base + v * width_words * 4.
struct BufferRef {
  RegionId region = 0;
  std::uint32_t width_words = 0;
};

/// What the vertex program of a phase does.
enum class PhaseKind : std::uint8_t {
  /// Gather neighborhood vectors into an AGG entry; the completed
  /// aggregate optionally flows through the DNA (GCN's
  /// aggregate-then-project, Fig 1) and lands in the output buffer. With
  /// walk_len > 1 the "neighborhood" is every walk endpoint at that depth,
  /// reached by chains of dependent row loads (PGNN's multi-hop
  /// convolution — the "complicated graph traversal" of Section VI-A).
  kGatherAggregate,
  /// Per-vertex DNA work with no neighbor exchange: load one or more
  /// per-vertex inputs into a DNQ entry, project, write out (MPNN embed,
  /// GAT projection, PGNN's final per-vertex projection).
  kProject,
  /// Per-edge DNA work: each neighbor contributes a DNQ entry that the DNA
  /// transforms before aggregation (GAT attention, MPNN messages); the
  /// aggregate optionally flows through a second DNA model on virtual
  /// queue 1 (MPNN's GRU).
  kEdgeDnaAggregate,
};

/// One phase. All widths are in 4-byte words.
struct PhaseSpec {
  std::string name;
  PhaseKind kind = PhaseKind::kProject;

  // Neighbor gather source (kGatherAggregate / kEdgeDnaAggregate).
  BufferRef gather;
  bool include_self = true;     // vertex contributes its own vector
  bool weighted_edges = false;  // traversal reads 8B/edge (id + weight)

  // kGatherAggregate: length of the walks whose endpoints are gathered
  // (1 = direct neighbors). For walk_len > 1 the GPE enumerates the walk
  // tree with dependent row loads, and `expected_contribs[global_v]`
  // (filled by the compiler) gives the number of contributions per vertex.
  std::uint32_t walk_len = 1;
  std::vector<std::uint64_t> expected_contribs;

  // Per-entry extra inputs: loaded per *vertex* for kProject, per *edge*
  // for kEdgeDnaAggregate (e.g. MPNN edge features, PGNN power terms).
  std::vector<BufferRef> extra_inputs;
  // Per-edge extras are indexed by global edge id rather than vertex id.
  bool extra_inputs_per_edge = false;

  // Words the GPE itself copies into each DNQ-0 entry (e.g. GAT's p_v).
  std::uint32_t gpe_words_per_entry = 0;

  // DNA model on virtual queue 0: a chain of matmuls executed per entry
  // (e.g. MPNN's two-layer edge MLP + message matvec). Empty means the
  // phase has no DNA stage. m is the per-entry batch, normally 1.
  std::vector<dataflow::MatmulShape> dna_shapes;
  std::uint32_t dna_out_words = 0;

  // Aggregation stage; width 0 means no AGG stage.
  std::uint32_t agg_width_words = 0;
  ReduceOp agg_op = ReduceOp::kSum;

  // Second DNA model on virtual queue 1 (MPNN GRU); empty means unused.
  std::vector<dataflow::MatmulShape> dna2_shapes;
  std::uint32_t dna2_out_words = 0;
  // Words the GPE copies into the DNQ-1 entry (e.g. h_v for the GRU).
  std::uint32_t dna2_gpe_words = 0;

  // Work items are whole graphs instead of vertices (MPNN readout): the
  // task gathers the graph's entire contiguous state block and the output
  // buffer is indexed by graph id.
  bool per_graph = false;

  // Final per-vertex (or per-graph) output buffer.
  BufferRef output;

  // DNA weights streamed from memory when the phase is configured (every
  // tile reads its own copy from `weight_region`).
  std::uint64_t weight_bytes = 0;
  RegionId weight_region = 0;

  [[nodiscard]] bool has_dna() const { return !dna_shapes.empty(); }
  [[nodiscard]] bool has_dna2() const { return !dna2_shapes.empty(); }
  [[nodiscard]] bool has_agg() const { return agg_width_words > 0; }
};

/// Per-graph topology placement in the address space. The vertex/edge
/// counts are the *symmetrized* CSR counts the runtime iterates (an
/// undirected edge appears once per direction), recorded here so a
/// program is self-describing — sizes and extents never require the
/// dataset the compiler happened to see.
struct GraphLayout {
  RegionId row_ptr = 0;
  RegionId col_idx = 0;
  NodeId node_offset = 0;  // first global vertex id of this graph
  EdgeId edge_offset = 0;  // first global edge id (symmetrized CSR order)
  NodeId num_nodes = 0;    // vertices in this graph
  EdgeId num_edges = 0;    // symmetrized (directed) edge count
};

/// A fully lowered program: what the runtime executes. Programs are
/// dataset-independent — the graph topology itself is bound at run time
/// (AcceleratorSim::run takes the dataset alongside the program), which
/// is what lets a program round-trip through the GNNA-IR text format
/// (accel/ir.hpp) and be cached by content hash.
struct CompiledProgram {
  std::string name;
  std::vector<PhaseSpec> phases;
  MemoryMap memmap;
  std::vector<GraphLayout> graphs;

  [[nodiscard]] NodeId total_vertices() const {
    NodeId n = 0;
    for (const auto& g : graphs) n += g.num_nodes;
    return n;
  }

  /// Graph index owning global vertex `v` (graphs are laid out in order).
  [[nodiscard]] std::size_t graph_of(NodeId v) const;
};

}  // namespace gnna::accel
