#include "accel/runner.hpp"

#include "accel/compiler.hpp"
#include "graph/dataset.hpp"

namespace gnna::accel {

RunStats simulate_benchmark(gnn::Benchmark benchmark,
                            const AcceleratorConfig& cfg, std::uint64_t seed,
                            const TraceOptions& trace) {
  const graph::Dataset ds =
      graph::make_dataset(gnn::benchmark_dataset(benchmark), seed);
  const gnn::ModelSpec model = gnn::make_benchmark_model(benchmark);
  const ProgramCompiler compiler;
  const CompiledProgram prog = compiler.compile(model, ds);
  AcceleratorSim sim(cfg);
  sim.set_trace(trace);
  RunStats rs = sim.run(prog);
  rs.program_name = gnn::benchmark_name(benchmark);
  return rs;
}

}  // namespace gnna::accel
