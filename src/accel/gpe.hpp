// The Graph Processing Element (GPE) — Fig 4.
//
// "At a high level, the GPE functions as a control core, coordinating other
//  elements on the system. The GPE consists of a general purpose CPU which
//  executes a lightweight runtime. The runtime manages a pool of software
//  threads and schedules them according to system load. ... The interface
//  to main memory is specialized to allow the GPE to issue indirect
//  asynchronous memory requests. ... Whenever a memory load is requested,
//  the system issues a non-blocking memory request ... The GPE then
//  performs a software context switch to another thread. Since all program
//  state is stored in the scratchpad, these context switches can be
//  performed inexpensively ... in a single cycle."  (Sections III-IV)
//
// Timing model (Section V): an event-driven single-threaded core where each
// ALU op / memory issue / IO op costs one core cycle; steps are interleaved
// with nondeterministic-latency communication handled by the NoC and memory
// models. Each software thread runs the phase's vertex program for one work
// item (vertex, or graph for readout phases).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "accel/addrmap.hpp"
#include "accel/agg.hpp"
#include "accel/config.hpp"
#include "accel/dnq.hpp"
#include "accel/program.hpp"
#include "common/stats.hpp"
#include "graph/dataset.hpp"
#include "noc/network.hpp"
#include "trace/trace.hpp"

namespace gnna::accel {

struct GpeStats {
  Counter actions;          // micro-ops executed
  Counter tasks_completed;  // vertex programs retired
  Counter loads_issued;     // logical memory loads
  Counter load_segments;    // NoC request messages (after page splits)
  Counter alloc_stalls;     // failed AGG/DNQ allocations
  Counter context_switches;
  double busy_cycles = 0.0;  // NoC cycles spent executing
};

class Gpe {
 public:
  Gpe(const TileParams& params, noc::MeshNetwork& net, EndpointId ep_gpe,
      EndpointId ep_agg, EndpointId ep_dnq, const AddressMap& addr_map,
      double core_scale);

  /// Start a phase: `ds` is the dataset whose symmetrized graphs the
  /// traversal walks; `work` lists this tile's work items (global vertex
  /// ids, or graph ids for per-graph phases).
  void begin_phase(const CompiledProgram& prog, const graph::Dataset& ds,
                   const PhaseSpec& phase, std::vector<std::uint32_t> work);

  void tick(Agg& agg, Dnq& dnq);

  [[nodiscard]] bool idle() const;
  [[nodiscard]] const GpeStats& stats() const { return stats_; }

  /// Attach an event tracer (thread switches, task lifetimes, alloc
  /// stalls). Disabled by default.
  void set_tracer(trace::Tracer t) { tracer_ = t; }

  /// Deadlock diagnostics: work-queue progress and non-free thread states.
  void dump_state(std::ostream& os) const;

 private:
  /// One level of a multi-hop walk (PGNN): the vertex being expanded, the
  /// next child to visit, and how much of its adjacency row has been
  /// fetched (0 = nothing, 1 = row pointers in flight, 2 = row resident).
  struct WalkFrame {
    NodeId node = 0;
    std::uint32_t next_child = 0;
    std::uint8_t row_state = 0;
  };

  struct Thread {
    enum class State : std::uint8_t { kFree, kRunnable, kWaitMem, kStalled };
    State state = State::kFree;
    std::uint32_t work = 0;
    std::uint32_t stage = 0;
    std::uint32_t loop_i = 0;
    std::uint32_t loop_sub = 0;
    std::uint32_t pending_responses = 0;
    double stalled_until = 0.0;
    double task_started = 0.0;  // gpe_time_ when the work item was claimed
    double body_started = 0.0;  // gpe_time_ when the post-traversal body began
    // Cached task context:
    std::size_t graph_idx = 0;
    NodeId local_v = 0;
    std::uint32_t n_contrib = 0;
    AggHandle agg_h = 0;
    DnqHandle dnq1_h = 0;
    DnqHandle cur_dnq0_h = 0;
    // Multi-hop traversal state (walk_len > 1).
    std::array<WalkFrame, 9> walk{};
    std::uint32_t walk_depth = 0;
  };

  /// Execute one micro-action of `t`; returns its cost in core cycles.
  double step(Thread& t, Agg& agg, Dnq& dnq);

  double step_gather_aggregate(Thread& t, Agg& agg, Dnq& dnq);
  double step_walk(Thread& t);
  double step_project(Thread& t, Dnq& dnq);
  double step_edge_dna_aggregate(Thread& t, Agg& agg, Dnq& dnq);
  double step_graph_readout(Thread& t, Agg& agg, Dnq& dnq);

  /// Issue a logical load of [addr, addr+bytes) whose response(s) go to
  /// `reply_to` tagged `tag`, on behalf of work item `owner` (attribution
  /// only). Returns the number of request messages sent.
  std::uint32_t issue_load(Addr addr, std::uint64_t bytes,
                           EndpointId reply_to, std::uint64_t tag,
                           std::uint32_t owner);

  /// Send `words` of GPE scratchpad data to a DNQ entry.
  void send_to_dnq(DnqHandle h, std::uint32_t words, std::uint32_t owner);

  void finish_task(Thread& t);
  void stall(Thread& t);
  [[nodiscard]] int pick_runnable(double now);
  /// Flame path of the current phase's post-traversal body span
  /// ("task/gather", "task/walk", ...), for the profiler's rollup.
  [[nodiscard]] const char* body_span_name() const;

  [[nodiscard]] const graph::Graph& task_graph(const Thread& t) const {
    return ds_->undirected[t.graph_idx];
  }
  [[nodiscard]] Addr vertex_addr(const BufferRef& buf, NodeId global_v) const {
    return prog_->memmap.addr(buf.region, std::uint64_t{global_v} *
                                              buf.width_words * kWordBytes);
  }

  TileParams params_;
  noc::MeshNetwork& net_;
  EndpointId ep_gpe_;
  EndpointId ep_agg_;
  EndpointId ep_dnq_;
  const AddressMap& addr_map_;
  double scale_;

  const CompiledProgram* prog_ = nullptr;
  const graph::Dataset* ds_ = nullptr;
  const PhaseSpec* phase_ = nullptr;
  std::vector<std::uint32_t> work_;
  std::size_t next_work_ = 0;

  std::vector<Thread> threads_;
  std::size_t last_thread_ = 0;
  double gpe_time_ = 0.0;
  GpeStats stats_;
  trace::Tracer tracer_;
};

}  // namespace gnna::accel
