#include "accel/agg.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace gnna::accel {

Agg::Agg(const TileParams& params, noc::MeshNetwork& net, EndpointId endpoint,
         const AddressMap& addr_map, double core_scale)
    : params_(params),
      net_(net),
      endpoint_(endpoint),
      addr_map_(addr_map),
      scale_(core_scale) {}

std::optional<AggHandle> Agg::allocate(std::uint32_t width_words,
                                       std::uint64_t expected_words,
                                       ReduceOp op, Dest dest,
                                       std::uint32_t owner) {
  // Malformed requests are program bugs, not transient resource pressure:
  // report them explicitly instead of returning nullopt (which the GPE
  // treats as "retry next cycle" — an infinite retry loop for these).
  if (width_words == 0) {
    throw std::invalid_argument(
        "Agg::allocate: zero-width aggregation entry");
  }
  if (!is_associative(op)) {
    throw std::invalid_argument(
        "Agg::allocate: non-associative reduce op (the AGG only supports "
        "associative aggregation)");
  }
  if ((dest.kind == Dest::Kind::kDnqEntry ||
       dest.kind == Dest::Kind::kAggEntry) &&
      dest.ep == kInvalidEndpoint) {
    throw std::invalid_argument(
        "Agg::allocate: unit destination with invalid endpoint");
  }
  const std::uint64_t bytes = std::uint64_t{width_words} * kWordBytes;
  const std::uint32_t max_entries =
      params_.agg_ctrl_bytes / params_.agg_ctrl_entry_bytes;
  if (live_entries_ >= max_entries ||
      data_bytes_used_ + bytes > params_.agg_data_bytes) {
    stats_.alloc_failures.add();
    return std::nullopt;
  }

  AggHandle h;
  if (!free_list_.empty()) {
    h = free_list_.back();
    free_list_.pop_back();
  } else {
    h = static_cast<AggHandle>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[h];
  e.active = true;
  e.width_words = width_words;
  e.expected_words = expected_words;
  e.received_words = 0;
  e.owner = owner;
  e.op = op;
  e.dest = dest;
  e.values.assign(width_words, reduce_identity(op));

  ++live_entries_;
  data_bytes_used_ += bytes;
  stats_.allocations.add();

  // Degenerate aggregation over an empty neighborhood: complete at once
  // (the identity vector is the result).
  if (expected_words == 0) complete(h);
  return h;
}

void Agg::on_message(const noc::Message& msg) {
  inbox_.push_back(msg);
}

void Agg::contribute_values(AggHandle h, std::span<const Fixed32> values) {
  assert(entry_active(h));
  Entry& e = entries_[h];
  assert(values.size() % e.width_words == 0 &&
         "contribution must be whole vectors");
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t lane = i % e.width_words;
    e.values[lane] = apply_reduce(e.op, e.values[lane], values[i]);
  }
  e.received_words += values.size();
  stats_.contributions.add();
  stats_.words_reduced.add(values.size());
  if (e.received_words >= e.expected_words) complete(h);
}

std::span<const Fixed32> Agg::entry_values(AggHandle h) const {
  assert(entry_active(h));
  return entries_[h].values;
}

void Agg::complete(AggHandle h) {
  Entry& e = entries_[h];
  assert(e.active);
  const std::uint32_t bytes = e.width_words * kWordBytes;
  switch (e.dest.kind) {
    case Dest::Kind::kNone:
      break;
    case Dest::Kind::kMemWrite:
      addr_map_.for_each_segment(
          e.dest.addr, bytes,
          [&](EndpointId mem_ep, Addr addr, std::uint64_t seg_bytes) {
            noc::Message m;
            m.src = endpoint_;
            m.dst = mem_ep;
            m.kind = noc::MsgKind::kMemWriteReq;
            m.payload_bytes = static_cast<std::uint32_t>(seg_bytes);
            m.owner = e.owner;
            m.a = addr;
            m.b = seg_bytes;
            net_.send(m);
          });
      break;
    case Dest::Kind::kDnqEntry: {
      noc::Message m;
      m.src = endpoint_;
      m.dst = e.dest.ep;
      m.kind = noc::MsgKind::kDnqWrite;
      m.payload_bytes = bytes;
      m.owner = e.owner;
      m.a = e.dest.handle;
      net_.send(m);
      break;
    }
    case Dest::Kind::kAggEntry: {
      noc::Message m;
      m.src = endpoint_;
      m.dst = e.dest.ep;
      m.kind = noc::MsgKind::kAggWrite;
      m.payload_bytes = bytes;
      m.owner = e.owner;
      m.a = e.dest.handle;
      net_.send(m);
      break;
    }
  }
  stats_.completions.add();
  tracer_.instant("complete", h, e.expected_words);
  e.active = false;
  e.values.clear();
  data_bytes_used_ -= std::uint64_t{e.width_words} * kWordBytes;
  --live_entries_;
  free_list_.push_back(h);
}

namespace {

const char* reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum: return "sum";
    case ReduceOp::kMax: return "max";
    case ReduceOp::kMin: return "min";
    case ReduceOp::kMean: return "mean";
  }
  return "?";
}

/// "-> dnq ep=7 handle=3" — names the resource a stalled entry's result is
/// destined for, so a deadlock dump reads as a wait-for chain.
void print_dest(std::ostream& os, const Dest& d) {
  switch (d.kind) {
    case Dest::Kind::kNone: os << "-> none"; break;
    case Dest::Kind::kMemWrite: os << "-> mem addr=0x" << std::hex << d.addr
                                   << std::dec; break;
    case Dest::Kind::kDnqEntry: os << "-> dnq ep=" << d.ep
                                   << " handle=" << d.handle; break;
    case Dest::Kind::kAggEntry: os << "-> agg ep=" << d.ep
                                   << " handle=" << d.handle; break;
  }
}

}  // namespace

void Agg::dump_state(std::ostream& os) const {
  std::uint64_t remaining_total = 0;
  for (const Entry& e : entries_) {
    if (e.active) remaining_total += e.expected_words - e.received_words;
  }
  os << "    agg: live_entries=" << live_entries_ << " inbox="
     << inbox_.size() << " data_used=" << data_bytes_used_
     << "B alu_free_at=" << alu_free_at_
     << " remaining_words_total=" << remaining_total << '\n';
  std::size_t shown = 0;
  for (AggHandle h = 0; h < entries_.size(); ++h) {
    const Entry& e = entries_[h];
    if (!e.active) continue;
    if (shown == 8) {
      os << "      ... " << live_entries_ - shown << " more live entries\n";
      break;
    }
    ++shown;
    os << "      entry " << h << ": received=" << e.received_words << '/'
       << e.expected_words << " words (width=" << e.width_words
       << ", remaining=" << e.expected_words - e.received_words << ", op="
       << reduce_op_name(e.op) << ") ";
    print_dest(os, e.dest);
    os << '\n';
  }
}

void Agg::tick() {
  const auto now = static_cast<double>(net_.now());
  // Drain NoC deliveries into the internal buffer.
  while (auto msg = net_.poll(endpoint_)) inbox_.push_back(*msg);

  // Reduce one message's worth of data per ALU-bank availability window.
  while (!inbox_.empty() && alu_free_at_ <= now) {
    const noc::Message msg = inbox_.front();
    inbox_.pop_front();
    // Memory responses carry the entry handle in the echoed tag (c); unit
    // results (kAggWrite) carry it in a.
    const auto h = static_cast<AggHandle>(
        msg.kind == noc::MsgKind::kMemReadResp ? msg.c : msg.a);
#ifndef NDEBUG
    if (!entry_active(h)) {
      std::fprintf(stderr,
                   "AGG: dead contribution handle=%u kind=%d payload=%u "
                   "src=%u live=%u\n",
                   h, static_cast<int>(msg.kind), msg.payload_bytes, msg.src,
                   live_entries_);
    }
#endif
    assert(entry_active(h) && "contribution to dead aggregation");
    Entry& e = entries_[h];
    const std::uint64_t words = msg.payload_bytes / kWordBytes;
    const double cycles =
        static_cast<double>((words + params_.agg_alus - 1) / params_.agg_alus);
    const double start = std::max(alu_free_at_, now);
    alu_free_at_ = start + cycles * scale_;
    stats_.busy_cycles += cycles * scale_;
    stats_.contributions.add();
    stats_.words_reduced.add(words);
    if (tracer_.enabled()) {
      tracer_.complete("reduce", start, cycles * scale_, h, words);
      // Attribution: the entry's owner paid for this ALU occupancy.
      tracer_.charge(e.owner, cycles * scale_);
    }
    e.received_words += words;
    if (e.received_words >= e.expected_words) complete(h);
  }
}

}  // namespace gnna::accel
