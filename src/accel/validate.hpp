// Translation validation for GNNA-IR optimization passes.
//
// accel::opt rewrites CompiledPrograms; this module statically proves each
// rewrite equivalent to its source, and the optimizer refuses to emit any
// program it cannot prove. The proof is a conjunction of obligations:
//
//   phase-align   Order-preserving structural diff modulo region renaming.
//                 Every optimized phase matches one original phase field by
//                 field (don't-care fields — a kProject gather ref, a
//                 weight_region with weight_bytes == 0 — are ignored), or
//                 is the recognized fusion of two adjacent original phases
//                 (same reduce op, the intermediate buffer provably private
//                 to the pair). Alignment builds a bijective region map as
//                 it goes; any reorder, drop, or duplication breaks the
//                 map and fails the obligation.
//   def-use       The region map is a def-use chain isomorphism: mapped
//                 regions have identical sizes and preload flags (preloaded
//                 regions additionally keep their names — their contents
//                 are loader-defined, so identity is the only safe
//                 equivalence), and the per-graph topology tables map
//                 consistently with identical counts and offsets.
//   contribs      expected_contribs tables are equal entry for entry, or
//                 dropped only where the runtime provably never reads them
//                 (walk_len <= 1 gathers use direct degrees). With a
//                 dataset bound, surviving walk_len > 1 tables are
//                 recomputed against the walk trees by the GV006 check in
//                 the extents obligation below.
//   extents       Abstract interpretation of region extents and preload
//                 state via accel::verify on both programs: the optimized
//                 program may not introduce any error-severity lint code
//                 (out-of-bounds extents, overlapping regions, reads of
//                 never-written regions, ...) the original did not already
//                 have.
//   cycle-bound   bound_cycles(optimized) <= bound_cycles(original) under
//                 the accel::analysis static model — an optimization must
//                 never regress the provable lower bound.
//
// Soundness argument: phase-align + def-use pin every field the runtime
// reads (ir.cpp serializes exactly these fields, so nothing else can
// influence execution) up to region renaming; contribs covers the one
// table the runtime consults conditionally; extents proves the renamed
// layout still contains every access; cycle-bound keeps the static model
// monotone. See DESIGN.md §15.
#pragma once

#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/program.hpp"
#include "graph/dataset.hpp"

namespace gnna::accel::validate {

struct ValidationOptions {
  /// Dataset the program will run against (optional). Enables the
  /// topology-dependent obligations: expected_contribs recomputation vs.
  /// walk trees (GV006) and dataset/layout consistency checks.
  const graph::Dataset* dataset = nullptr;
  /// Accelerator configuration (optional; defaults to cpu_iso_bw). Sets
  /// the TileParams for the extents obligation and the config for the
  /// cycle-bound obligation.
  const AcceleratorConfig* config = nullptr;
};

/// One proof obligation and its outcome.
struct Obligation {
  std::string name;
  bool proved = false;
  std::string detail;
};

struct ValidationResult {
  /// True iff every obligation was proved.
  bool equivalent = false;
  std::vector<Obligation> obligations;

  /// Multi-line report: one "PROVED name: detail" / "FAILED ..." per
  /// obligation.
  [[nodiscard]] std::string to_string() const;
};

/// Statically prove `optimized` equivalent to `original`. Never throws on
/// defective programs — a program the obligations cannot handle simply
/// fails them.
[[nodiscard]] ValidationResult validate_transform(
    const CompiledProgram& original, const CompiledProgram& optimized,
    const ValidationOptions& options = {});

}  // namespace gnna::accel::validate
