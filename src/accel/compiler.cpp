#include "accel/compiler.hpp"

#include <stdexcept>

namespace gnna::accel {
namespace {

constexpr std::uint32_t kWord = 4;

/// Bytes of DNA weights for a plain FC k -> n.
[[nodiscard]] std::uint64_t fc_weight_bytes(std::uint64_t k, std::uint64_t n) {
  return k * n * kWord;
}

/// Number of walks of exactly `len` steps starting from each (global)
/// vertex on the symmetrized graphs: walks_L(v) = sum_{u in N(v)}
/// walks_{L-1}(u), walks_0 = 1. These are the contribution counts of a
/// multi-hop gather phase.
std::vector<std::uint64_t> walk_counts(const graph::Dataset& ds,
                                       std::uint32_t len) {
  NodeId total = 0;
  for (const auto& g : ds.graphs) total += g.num_nodes();
  std::vector<std::uint64_t> cur(total, 1);
  std::vector<std::uint64_t> next(total, 0);
  NodeId base = 0;
  std::vector<NodeId> bases;
  for (const auto& g : ds.undirected) {
    bases.push_back(base);
    base += g.num_nodes();
  }
  for (std::uint32_t step = 0; step < len; ++step) {
    std::uint64_t grand_total = 0;
    for (std::size_t gi = 0; gi < ds.undirected.size(); ++gi) {
      const graph::Graph& g = ds.undirected[gi];
      const NodeId off = bases[gi];
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        std::uint64_t acc = 0;
        for (const NodeId u : g.neighbors(v)) acc += cur[off + u];
        next[off + v] = acc;
        grand_total += acc;
      }
    }
    // Guard against accidental walk-tree explosions on dense graphs: the
    // simulation enumerates every walk, so bound the total up front.
    if (grand_total > 50'000'000ULL) {
      throw std::invalid_argument(
          "multi-hop lowering: walk tree too large to simulate (" +
          std::to_string(grand_total) + " walks)");
    }
    std::swap(cur, next);
  }
  return cur;
}

}  // namespace

CompiledProgram ProgramCompiler::compile(const gnn::ModelSpec& model,
                                         const graph::Dataset& ds) const {
  CompiledProgram prog;
  prog.name = model.name + " on " + ds.spec.name;

  // --- Topology regions (traversal reads the symmetrized graphs). ---
  NodeId node_off = 0;
  EdgeId edge_off = 0;
  for (std::size_t gi = 0; gi < ds.graphs.size(); ++gi) {
    const graph::Graph& sym = ds.undirected[gi];
    GraphLayout gl;
    gl.node_offset = node_off;
    gl.edge_offset = edge_off;
    gl.num_nodes = sym.num_nodes();
    gl.num_edges = sym.num_edges();
    gl.row_ptr = prog.memmap.add_region(
        "rowptr" + std::to_string(gi),
        (static_cast<std::uint64_t>(sym.num_nodes()) + 1) * kWord,
        /*preloaded=*/true);
    // col_idx stores (id, weight) pairs so weighted phases read 8B/edge.
    gl.col_idx = prog.memmap.add_region(
        "colidx" + std::to_string(gi),
        static_cast<std::uint64_t>(sym.num_edges()) * 2 * kWord,
        /*preloaded=*/true);
    prog.graphs.push_back(gl);
    node_off += sym.num_nodes();
    edge_off += sym.num_edges();
  }
  const NodeId total_nodes = node_off;
  const EdgeId total_sym_edges = edge_off;
  const auto num_graphs = static_cast<std::uint32_t>(ds.graphs.size());

  // --- Feature buffers. ---
  auto add_vertex_buffer = [&](const std::string& name,
                               std::uint32_t width_words) {
    return BufferRef{
        prog.memmap.add_region(
            name, static_cast<std::uint64_t>(total_nodes) * width_words * kWord),
        width_words};
  };

  BufferRef cur{prog.memmap.add_region(
                    "input", static_cast<std::uint64_t>(total_nodes) *
                                 ds.spec.vertex_features * kWord,
                    /*preloaded=*/true),
                ds.spec.vertex_features};

  BufferRef edge_feats{};
  if (ds.spec.edge_features > 0) {
    edge_feats = BufferRef{
        prog.memmap.add_region("edgefeat",
                               static_cast<std::uint64_t>(total_sym_edges) *
                                   ds.spec.edge_features * kWord,
                               /*preloaded=*/true),
        ds.spec.edge_features};
  }

  // --- Lower each layer. ---
  for (std::size_t li = 0; li < model.layers.size(); ++li) {
    const gnn::LayerSpec& l = model.layers[li];
    if (l.in_features != cur.width_words) {
      throw std::invalid_argument("compile: layer " + l.name +
                                  " input width mismatch");
    }
    switch (l.kind) {
      case gnn::LayerKind::kProject: {
        PhaseSpec ph;
        ph.name = l.name;
        ph.kind = PhaseKind::kProject;
        ph.extra_inputs = {cur};
        ph.dna_shapes = {{1, l.in_features, l.out_features}};
        ph.dna_out_words = l.out_features;
        ph.output = add_vertex_buffer(l.name + ".out", l.out_features);
        ph.weight_bytes = fc_weight_bytes(l.in_features, l.out_features);
        prog.phases.push_back(std::move(ph));
        break;
      }
      case gnn::LayerKind::kConv: {
        if (!options_.fuse_conv) {
          // Naive two-phase lowering: aggregate into an intermediate
          // buffer, then project it in a separate phase. accel::opt's
          // fuse-phases pass rewrites this back into the fused form.
          PhaseSpec agg;
          agg.name = l.name + ".agg";
          agg.kind = PhaseKind::kGatherAggregate;
          agg.gather = cur;
          agg.include_self = l.include_self;
          agg.weighted_edges = l.norm != gnn::AggNorm::kSum;
          agg.agg_width_words = l.in_features;
          agg.output = add_vertex_buffer(l.name + ".agg", l.in_features);
          const BufferRef mid = agg.output;
          prog.phases.push_back(std::move(agg));

          PhaseSpec proj;
          proj.name = l.name;
          proj.kind = PhaseKind::kProject;
          proj.extra_inputs = {mid};
          proj.dna_shapes = {{1, l.in_features, l.out_features}};
          proj.dna_out_words = l.out_features;
          proj.output = add_vertex_buffer(l.name + ".out", l.out_features);
          proj.weight_bytes = fc_weight_bytes(l.in_features, l.out_features);
          prog.phases.push_back(std::move(proj));
          break;
        }
        // Aggregate-then-project (Fig 1): gather raw neighbor vectors into
        // the AGG, run the completed aggregate through the DNA.
        PhaseSpec ph;
        ph.name = l.name;
        ph.kind = PhaseKind::kGatherAggregate;
        ph.gather = cur;
        ph.include_self = l.include_self;
        ph.weighted_edges = l.norm != gnn::AggNorm::kSum;
        ph.agg_width_words = l.in_features;
        ph.dna_shapes = {{1, l.in_features, l.out_features}};
        ph.dna_out_words = l.out_features;
        ph.output = add_vertex_buffer(l.name + ".out", l.out_features);
        ph.weight_bytes = fc_weight_bytes(l.in_features, l.out_features);
        prog.phases.push_back(std::move(ph));
        break;
      }
      case gnn::LayerKind::kAttentionConv: {
        // Phase 1: project every vertex (p = W h).
        PhaseSpec proj;
        proj.name = l.name + ".proj";
        proj.kind = PhaseKind::kProject;
        proj.extra_inputs = {cur};
        proj.dna_shapes = {{1, l.in_features, l.out_features}};
        proj.dna_out_words = l.out_features;
        const BufferRef pbuf =
            add_vertex_buffer(l.name + ".p", l.out_features);
        proj.output = pbuf;
        proj.weight_bytes = fc_weight_bytes(l.in_features, l.out_features);
        prog.phases.push_back(std::move(proj));

        // Phase 2: per-edge attention coefficient + scaled accumulate.
        // Each DNQ-0 entry holds p_v (copied by the GPE) and p_u (loaded);
        // the DNA computes the per-head LeakyReLU coefficients and scales
        // p_u. The shape is a cost proxy for heads * (2*head_width) dot
        // MACs + out_features scaling MACs = 3 * out_features MACs.
        PhaseSpec att;
        att.name = l.name + ".att";
        att.kind = PhaseKind::kEdgeDnaAggregate;
        att.gather = pbuf;
        att.include_self = l.include_self;
        att.gpe_words_per_entry = l.out_features;
        att.dna_shapes = {{1, 3, l.out_features}};
        att.dna_out_words = l.out_features;
        att.agg_width_words = l.out_features;
        att.output = add_vertex_buffer(l.name + ".out", l.out_features);
        att.weight_bytes =
            static_cast<std::uint64_t>(l.heads) * 2 * l.head_width() * kWord;
        prog.phases.push_back(std::move(att));
        cur = prog.phases.back().output;
        continue;  // cur already advanced
      }
      case gnn::LayerKind::kMessagePass: {
        const std::uint32_t d = l.out_features;
        PhaseSpec mp;
        mp.name = l.name;
        mp.kind = PhaseKind::kEdgeDnaAggregate;
        mp.gather = cur;  // h_u
        mp.include_self = false;
        if (ds.spec.edge_features > 0) {
          mp.extra_inputs = {edge_feats};
          mp.extra_inputs_per_edge = true;
        }
        // Per entry: the two-layer edge network (ef -> hidden -> d*d) plus
        // the message matvec (d x d) — Gilmer's edge network, the reason
        // MPNN is the most compute-hungry benchmark.
        mp.dna_shapes = {{1, l.edge_features, l.edge_hidden},
                         {1, l.edge_hidden, static_cast<std::uint64_t>(d) * d},
                         {1, d, d}};
        mp.dna_out_words = d;
        mp.agg_width_words = d;
        // GRU update on virtual queue 1: 6 d x d gate matvecs.
        mp.dna2_shapes = {{1, 2ULL * d, 3ULL * d}};
        mp.dna2_out_words = d;
        mp.dna2_gpe_words = d;  // h_v copied in by the GPE
        mp.output = add_vertex_buffer(l.name + ".out", d);
        mp.weight_bytes =
            fc_weight_bytes(l.edge_features, l.edge_hidden) +
            fc_weight_bytes(l.edge_hidden, static_cast<std::uint64_t>(d) * d) +
            6ULL * d * d * kWord;
        prog.phases.push_back(std::move(mp));
        break;
      }
      case gnn::LayerKind::kMultiHopConv: {
        // One phase per adjacency-power term A^(2^j): the vertex program
        // enumerates every walk of length 2^j with chains of dependent row
        // loads and aggregates the endpoint vectors — the "complicated
        // graph traversal" that makes PGNN traversal-bound (Section VI-A).
        std::vector<BufferRef> terms = {cur};  // power 0 (self term)
        for (std::uint32_t j = 0; j < l.hops; ++j) {
          const std::uint32_t walk_len = 1U << j;
          PhaseSpec hop;
          hop.name = l.name + ".A" + std::to_string(walk_len);
          hop.kind = PhaseKind::kGatherAggregate;
          hop.gather = cur;
          hop.include_self = false;
          hop.walk_len = walk_len;
          hop.expected_contribs = walk_counts(ds, walk_len);
          hop.agg_width_words = l.in_features;
          hop.output = add_vertex_buffer(hop.name, l.in_features);
          terms.push_back(hop.output);
          prog.phases.push_back(std::move(hop));
        }
        // Final projection: z_v = sum_j term_j(v) W_j.
        PhaseSpec pr;
        pr.name = l.name + ".proj";
        pr.kind = PhaseKind::kProject;
        pr.extra_inputs = terms;
        pr.dna_shapes = {
            {1, static_cast<std::uint64_t>(terms.size()) * l.in_features,
             l.out_features}};
        pr.dna_out_words = l.out_features;
        pr.output = add_vertex_buffer(l.name + ".out", l.out_features);
        pr.weight_bytes = fc_weight_bytes(
            static_cast<std::uint64_t>(terms.size()) * l.in_features,
            l.out_features);
        prog.phases.push_back(std::move(pr));
        break;
      }
      case gnn::LayerKind::kReadout: {
        PhaseSpec ro;
        ro.name = l.name;
        ro.kind = PhaseKind::kGatherAggregate;
        ro.per_graph = true;
        ro.gather = cur;
        ro.include_self = false;
        ro.agg_width_words = l.in_features;
        ro.dna_shapes = {{1, l.in_features, l.out_features}};
        ro.dna_out_words = l.out_features;
        ro.output = BufferRef{
            prog.memmap.add_region(
                l.name + ".out",
                static_cast<std::uint64_t>(num_graphs) * l.out_features * kWord),
            l.out_features};
        ro.weight_bytes = fc_weight_bytes(l.in_features, l.out_features);
        prog.phases.push_back(std::move(ro));
        break;
      }
    }
    cur = prog.phases.back().output;
  }

  // Weight regions: each phase's DNA weights live in memory and are
  // streamed by every tile at configuration time.
  for (auto& ph : prog.phases) {
    if (ph.weight_bytes > 0) {
      ph.weight_region = prog.memmap.add_region(ph.name + ".w",
                                                ph.weight_bytes,
                                                /*preloaded=*/true);
    }
  }
  return prog;
}

}  // namespace gnna::accel
