// GNNA-IR optimization passes (accel::opt).
//
// A small pass manager over CompiledPrograms, gated by the translation
// validator (accel/validate.hpp): after every pass that changes the
// program, the pass output is statically proved equivalent to the pass
// input, and an unproven rewrite is discarded — optimize_program() never
// returns a program it could not prove.
//
// Pass suite, in pipeline order:
//
//   fuse-phases     Fuse a pure gather+aggregate phase into the adjacent
//                   projection that consumes (only) its output, recovering
//                   the aggregate-then-project form the hardware pipelines
//                   in one phase (Fig. 1) — one barrier and one
//                   intermediate buffer round-trip through memory removed
//                   per fusion. Applied only when the fused DNQ entry
//                   still admits >= 2 concurrent entries in virtual queue
//                   0's scratchpad share.
//   dedup-contribs  Drop expected_contribs tables on walk_len <= 1 phases
//                   (the runtime uses the CSR degrees directly; the table
//                   is dead weight in the serialized program).
//   dead-regions    Remove memory-map regions no graph table or phase
//                   field references (e.g. intermediates orphaned by
//                   fusion), renumbering the surviving region ids.
//   pack-regions    Re-layout the memory map: slide every region down to
//                   the packed 64B-aligned cursor, closing the gaps dead
//                   regions left behind.
#pragma once

#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/program.hpp"
#include "accel/validate.hpp"
#include "graph/dataset.hpp"

namespace gnna::accel::opt {

struct OptimizeOptions {
  /// Dataset the program will run against (optional); forwarded to the
  /// validator's topology-dependent obligations.
  const graph::Dataset* dataset = nullptr;
  /// Accelerator configuration (optional; defaults to cpu_iso_bw). Sets
  /// the scratchpad footprint bound for fuse-phases and the validator's
  /// TileParams / cycle-bound config.
  const AcceleratorConfig* config = nullptr;
  /// Pass subset to run, in the given order. Empty = the full pipeline.
  std::vector<std::string> passes;
  /// Prove every changing pass with the translation validator (default).
  /// Only tests turn this off.
  bool validate = true;
};

/// One pipeline step: what the pass did and, when it changed the program,
/// the proof that the change is sound.
struct PassOutcome {
  std::string pass;
  bool changed = false;
  std::string summary;
  validate::ValidationResult validation;  // empty when nothing changed
};

struct OptimizeResult {
  /// The optimized program — or the last proven program when a pass
  /// failed validation (the unproven rewrite is never returned).
  CompiledProgram program;
  std::vector<PassOutcome> passes;
  /// False iff some pass produced a rewrite the validator rejected.
  bool validated = true;
  /// Human-readable reason when !validated.
  std::string failure;

  [[nodiscard]] bool changed() const {
    for (const auto& p : passes) {
      if (p.changed) return true;
    }
    return false;
  }
};

/// Catalog entry for `gnnaopt --list-passes` and docs.
struct PassInfo {
  const char* name;
  const char* summary;
};
[[nodiscard]] const std::vector<PassInfo>& pass_catalog();

/// Run the pass pipeline over `prog`. Throws std::invalid_argument for an
/// unknown pass name in options.passes; never throws on program content.
[[nodiscard]] OptimizeResult optimize_program(const CompiledProgram& prog,
                                              const OptimizeOptions& options =
                                                  {});

}  // namespace gnna::accel::opt
