#include "accel/program.hpp"

#include <algorithm>
#include <cassert>

namespace gnna::accel {

std::size_t CompiledProgram::graph_of(NodeId v) const {
  assert(!graphs.empty());
  // graphs are sorted by node_offset; find the last layout with offset <= v.
  auto it = std::upper_bound(
      graphs.begin(), graphs.end(), v,
      [](NodeId value, const GraphLayout& g) { return value < g.node_offset; });
  assert(it != graphs.begin());
  return static_cast<std::size_t>(std::distance(graphs.begin(), it) - 1);
}

}  // namespace gnna::accel
