// Machine-readable export of simulation results (CSV), so sweep scripts
// can post-process bench output without scraping ASCII tables.
#pragma once

#include <ostream>
#include <string>

#include "accel/simulator.hpp"

namespace gnna::accel {

/// Header row matching run_stats_csv_row(). Ends without a newline.
[[nodiscard]] std::string run_stats_csv_header();

/// One CSV row for `rs`. Ends without a newline. Fields are quoted only
/// when needed (names contain no commas by construction).
[[nodiscard]] std::string run_stats_csv_row(const RunStats& rs);

/// Convenience: header + rows for a batch.
void write_csv(std::ostream& os, const std::vector<RunStats>& runs);

/// Header for the periodic time-series sampler (--sample-every): one row
/// per sample window with busy fractions, queue occupancies, and
/// per-controller bandwidth (mem0_gbps..mem<N-1>_gbps). Ends without a
/// newline.
[[nodiscard]] std::string sample_csv_header(std::size_t num_mem_controllers);

}  // namespace gnna::accel
