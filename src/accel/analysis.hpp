// Static analytic performance model (accel::analysis).
//
// Everything the simulator measures dynamically has a static shadow: the
// per-phase micro-op sequences the GPE executes, the DNA initiation
// intervals the dataflow mapper assigns, the bytes the memory controllers
// must move, and the share of that traffic crossing the mesh bisection are
// all functions of the CompiledProgram (+ its graph-layout table), the
// bound dataset's degree sequence, and the AcceleratorConfig alone.
// analyze_program() evaluates that shadow model and returns, per phase:
//
//  - scratchpad occupancy: the DNQ virtual-queue and AGG entry footprints
//    under the virtual-queue split policy, and how many entries fit
//    concurrently (the reuse-distance budget: with K GPE threads in
//    flight, ~K entries are live between first and last touch of any one
//    of them, so concurrency << threads means allocation stalls);
//  - a roofline-style cycle lower bound: max over the compute terms (GPE
//    micro-ops, DNA initiation intervals, AGG ALU reduction throughput —
//    each a per-tile maximum under the modeled partition), the memory
//    term (line-rounded served bytes over the aggregate data-bus
//    bandwidth), and the NoC term (bisection-crossing traffic over the
//    bisection bandwidth — the same cut GV108 checks). Phases are
//    barrier-separated, so the program bound is the sum of phase bounds
//    and is provably <= the measured cycle count (every term counts a
//    strict subset of the work the simulator serializes on the same
//    resource);
//  - a per-tile load-imbalance bound (max tile load / mean tile load)
//    from the layout table's degree/walk-contribution counts under the
//    partition policy the simulator will apply;
//  - a predicted FR-FCFS row-hit mix for the configured bank mapping
//    (reported alongside the bound, not folded into it: row latency
//    shapes response latency, not data-bus occupancy).
//
// The model surfaces three ways: the GV2xx perf-lint family in
// accel::verify (perf_lints), the `static_model` block in the stats JSON
// (schema v6, compared against measurement by gnnatrace), and
// `gnnaverify --fix` (suggest_fixes), which searches minimal
// TileParams/MemParams/partition adjustments that clear each GV2xx
// diagnostic and prints a patched manifest snippet.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/program.hpp"
#include "accel/verify.hpp"
#include "graph/dataset.hpp"
#include "graph/partition.hpp"

namespace gnna::accel {

/// Occupancy of one scratchpad (a DNQ virtual queue or the AGG data
/// scratchpad) for one phase's allocation width.
struct QueueOccupancy {
  bool used = false;                  // the phase allocates entries here
  std::uint64_t entry_bytes = 0;      // one entry's footprint
  std::uint64_t capacity_bytes = 0;   // bytes available under the split
  std::uint64_t concurrency = 0;      // entries resident at once
};

/// Static model of one phase.
struct PhaseModel {
  std::string name;

  // Scratchpad occupancy under the virtual-queue split policy.
  QueueOccupancy dnq0;
  QueueOccupancy dnq1;
  QueueOccupancy agg;

  // Memory traffic. `read_bytes`/`write_bytes` are line-rounded served
  // bytes (what the DRAM data bus moves); `payload_bytes` is the
  // unrounded request payload (what the NoC carries).
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t mem_requests = 0;

  // Predicted FR-FCFS row-hit fraction in [0,1] (0 under in-order, where
  // no row state exists). Optimistic: assumes no inter-request row
  // conflicts within the scheduling window.
  double predicted_row_hit_rate = 0.0;

  // Roofline terms, all in NoC-clock cycles. The compute terms are
  // per-tile maxima under the modeled partition.
  double gpe_cycles = 0.0;
  double dna_cycles = 0.0;
  double agg_cycles = 0.0;
  double compute_cycles = 0.0;  // max(gpe, dna, agg)
  double memory_cycles = 0.0;   // served bytes / aggregate bus bandwidth
  double noc_cycles = 0.0;      // bisection-crossing traffic / bisection bw
  double bound_cycles = 0.0;    // max of the three axes
  /// Which axis set the bound: "gpe" | "dna" | "agg" | "memory" | "noc".
  const char* bottleneck = "";

  /// Max tile load / mean tile load under the modeled partition, from the
  /// per-vertex contribution counts. 0 when per-vertex loads are unknown
  /// (no dataset bound and no expected_contribs) or the phase's load is
  /// uniform by construction.
  double imbalance = 0.0;
};

/// Static model of a whole program on one configuration.
struct ProgramAnalysis {
  std::string program_name;
  std::string config_name;
  std::vector<PhaseModel> phases;
  /// Sum of the phase bounds (phases are barrier-separated, so the sum is
  /// itself a lower bound on the measured end-to-end cycle count).
  double bound_cycles = 0.0;
};

struct AnalysisOptions {
  /// Dataset the program will run against; enables per-vertex degree
  /// loads (exact per-tile compute terms, GV204). Without one the model
  /// falls back to aggregate counts from the layout table.
  const graph::Dataset* dataset = nullptr;
  /// Partition policy the simulator will apply. Round-robin and block are
  /// modeled exactly; profile-guided (whose owners depend on a prior
  /// run's profile) is modeled as perfectly balanced — still a valid
  /// lower bound.
  graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin;
};

/// Evaluate the static model. Never throws on defective programs (bad
/// region ids, zero widths, degenerate TileParams all short-circuit to
/// zero terms) — accel::verify owns those diagnostics.
[[nodiscard]] ProgramAnalysis analyze_program(const CompiledProgram& prog,
                                              const AcceleratorConfig& cfg,
                                              const AnalysisOptions& options =
                                                  {});

/// One GV2xx performance finding (fed into VerifyReport by verify_program
/// when a config is bound).
struct PerfDiagnostic {
  LintCode code = LintCode::kReuseDistanceThrash;
  int phase = -1;  // -1 for whole-program findings (GV203)
  std::string message;
};

/// Run the GV2xx perf-lint family over the static model:
///   GV201 scratchpad reuse-distance thrash
///   GV202 DNQ virtual-queue split starvation
///   GV203 predicted bank camping under the configured bank mapping
///   GV204 partition load imbalance
[[nodiscard]] std::vector<PerfDiagnostic> perf_lints(
    const CompiledProgram& prog, const AcceleratorConfig& cfg,
    const AnalysisOptions& options = {});

/// A minimal adjustment clearing one GV2xx code, found by suggest_fixes.
struct FixSuggestion {
  LintCode code = LintCode::kReuseDistanceThrash;
  std::string description;       // human-readable what/why
  std::string manifest_snippet;  // "key=value" lines for a run manifest
  /// The adjusted configuration (== the input config plus the fix).
  AcceleratorConfig patched;
  /// The adjusted partition policy (== options.partition except for
  /// GV204 fixes).
  graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin;
  /// True iff re-running perf_lints under (patched, partition) no longer
  /// emits `code` — every suggestion is re-linted before it is returned.
  bool verified = false;
};

/// Search minimal TileParams/MemParams/split/partition adjustments that
/// clear each GV2xx diagnostic the current configuration fires. Returns
/// one suggestion per firing code (empty when the config is clean).
[[nodiscard]] std::vector<FixSuggestion> suggest_fixes(
    const CompiledProgram& prog, const AcceleratorConfig& cfg,
    const AnalysisOptions& options = {});

}  // namespace gnna::accel
