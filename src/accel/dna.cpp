#include "accel/dna.hpp"

#include <cassert>

namespace gnna::accel {

Dna::Dna(const TileParams& params, noc::MeshNetwork& net, EndpointId endpoint,
         const AddressMap& addr_map, double core_scale)
    : params_(params),
      net_(net),
      endpoint_(endpoint),
      addr_map_(addr_map),
      scale_(core_scale) {}

void Dna::configure(std::vector<DnaModelTiming> models,
                    std::uint64_t weight_bytes) {
  assert(idle() && "reconfiguring a busy DNA");
  models_ = std::move(models);
  weights_pending_ = weight_bytes;
  array_free_at_ = 0.0;
  idle_since_ = static_cast<double>(net_.now());
  busy_ = false;
}

void Dna::on_weight_data(std::uint64_t bytes) {
  weights_pending_ = bytes >= weights_pending_ ? 0 : weights_pending_ - bytes;
}

void Dna::emit(const PendingResult& r) {
  const std::uint32_t bytes = r.out_words * kWordBytes;
  switch (r.dest.kind) {
    case Dest::Kind::kNone:
      break;
    case Dest::Kind::kMemWrite:
      addr_map_.for_each_segment(
          r.dest.addr, bytes,
          [&](EndpointId mem_ep, Addr addr, std::uint64_t seg_bytes) {
            noc::Message m;
            m.src = endpoint_;
            m.dst = mem_ep;
            m.kind = noc::MsgKind::kMemWriteReq;
            m.payload_bytes = static_cast<std::uint32_t>(seg_bytes);
            m.owner = r.owner;
            m.a = addr;
            m.b = seg_bytes;
            net_.send(m);
          });
      break;
    case Dest::Kind::kDnqEntry: {
      noc::Message m;
      m.src = endpoint_;
      m.dst = r.dest.ep;
      m.kind = noc::MsgKind::kDnqWrite;
      m.payload_bytes = bytes;
      m.owner = r.owner;
      m.a = r.dest.handle;
      net_.send(m);
      break;
    }
    case Dest::Kind::kAggEntry: {
      noc::Message m;
      m.src = endpoint_;
      m.dst = r.dest.ep;
      m.kind = noc::MsgKind::kAggWrite;
      m.payload_bytes = bytes;
      m.owner = r.owner;
      m.a = r.dest.handle;
      net_.send(m);
      break;
    }
  }
  stats_.results_sent.add();
}

void Dna::dump_state(std::ostream& os) const {
  os << "    dna: " << (busy_ ? "BUSY" : "idle")
     << " array_free_at=" << array_free_at_
     << " weights_pending=" << weights_pending_
     << "B pending_results=" << results_.size();
  if (!results_.empty()) {
    os << " next_result_at=" << results_.front().ready_at;
  }
  os << '\n';
}

void Dna::tick(Dnq& dnq) {
  const auto now = static_cast<double>(net_.now());

  // Emit finished results (pipeline output port + flit buffer).
  while (!results_.empty() && results_.front().ready_at <= now) {
    emit(results_.front());
    results_.pop_front();
  }

  if (busy_ && array_free_at_ <= now) {
    busy_ = false;
    idle_since_ = array_free_at_;
  }

  if (busy_ || weights_pending_ != 0) return;

  // Ask the DNQ for work (single dequeue interface, lazy switching).
  const double idle_core = (now - idle_since_) / scale_;
  auto entry = dnq.try_dequeue(idle_core);
  if (!entry.has_value()) return;

  assert(entry->queue < models_.size() && "DNQ entry for unconfigured model");
  const DnaModelTiming& model = models_[entry->queue];

  // Entry readout runs at one flit (16 words) per core cycle and is
  // overlapped with compute; the array is busy for the larger of the two.
  const double readout_core = (entry->width_words + 15) / 16;
  const double ii_core =
      std::max({model.ii_core_cycles, readout_core,
                static_cast<double>(params_.dna_min_ii)});
  const double start = std::max(array_free_at_, now);
  array_free_at_ = start + ii_core * scale_;
  busy_ = true;
  stats_.busy_cycles += ii_core * scale_;
  stats_.entries_processed.add();
  stats_.macs.add(model.macs_per_entry);
  if (tracer_.enabled()) {
    tracer_.complete("entry", start, ii_core * scale_, entry->queue,
                     entry->width_words);
  }

  PendingResult r;
  r.ready_at = array_free_at_ + params_.dna_pipeline_latency * scale_;
  r.out_words = model.out_words;
  r.owner = entry->owner;
  r.dest = entry->dest;
  results_.push_back(r);
}

}  // namespace gnna::accel
