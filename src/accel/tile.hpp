// One accelerator tile (Fig 3): GPE + AGG + DNQ + DNA around the tile
// router's local ports (the 7x7 crossbar: 4 mesh directions + 3 local
// ports — GPE, AGG, and the shared DNQ-in / DNA-out port).
#pragma once

#include <memory>
#include <vector>

#include "accel/agg.hpp"
#include "accel/config.hpp"
#include "accel/dna.hpp"
#include "accel/dnq.hpp"
#include "accel/gpe.hpp"
#include "accel/program.hpp"
#include "noc/network.hpp"
#include "trace/trace.hpp"

namespace gnna::accel {

class Tile {
 public:
  /// Endpoints must already be registered on the network (before
  /// finalize()): ep_gpe, ep_agg and ep_dnq on this tile's router.
  Tile(const AcceleratorConfig& cfg, noc::MeshNetwork& net, EndpointId ep_gpe,
       EndpointId ep_agg, EndpointId ep_dnq, const AddressMap& addr_map);

  /// Configure all modules for `phase` and kick off the weight streams
  /// (Algorithm 1 line 14). `ds` is the dataset the program runs against
  /// (graph topology for traversal); `work` is this tile's share of the
  /// work queue.
  void begin_phase(const CompiledProgram& prog, const graph::Dataset& ds,
                   const PhaseSpec& phase, std::vector<std::uint32_t> work);

  void tick();

  [[nodiscard]] bool idle() const {
    return gpe_.idle() && agg_.idle() && dnq_.empty() && dna_.idle();
  }

  [[nodiscard]] const Gpe& gpe() const { return gpe_; }
  [[nodiscard]] const Agg& agg() const { return agg_; }
  [[nodiscard]] const Dnq& dnq() const { return dnq_; }
  [[nodiscard]] const Dna& dna() const { return dna_; }

  /// Attach `sink` to all four units, identified as tile `index`.
  void set_tracing(trace::TraceSink* sink, std::uint32_t index);

  /// Deadlock diagnostics: all four units' internal state.
  void dump_state(std::ostream& os) const;

 private:
  const AcceleratorConfig& cfg_;
  noc::MeshNetwork& net_;
  EndpointId ep_dnq_;
  const AddressMap& addr_map_;
  double scale_;
  Agg agg_;
  Dnq dnq_;
  Dna dna_;
  Gpe gpe_;
};

}  // namespace gnna::accel
