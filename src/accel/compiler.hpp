// Lowers GNN models onto the accelerator (gnn IR -> phase programs).
#pragma once

#include "accel/program.hpp"
#include "gnn/layer.hpp"
#include "graph/dataset.hpp"

namespace gnna::accel {

class ProgramCompiler {
 public:
  /// Lower `model` running over `dataset` into phases + a memory map.
  /// `dataset` must outlive the returned program (non-owning pointer).
  [[nodiscard]] CompiledProgram compile(const gnn::ModelSpec& model,
                                        const graph::Dataset& dataset) const;
};

}  // namespace gnna::accel
