// Lowers GNN models onto the accelerator (gnn IR -> phase programs).
#pragma once

#include "accel/program.hpp"
#include "gnn/layer.hpp"
#include "graph/dataset.hpp"

namespace gnna::accel {

struct CompilerOptions {
  /// Lower kConv layers as one fused gather+aggregate+project phase
  /// (Fig 1, the default). When false, convolutions lower naively as a
  /// gather+aggregate phase plus a separate projection phase with an
  /// intermediate buffer — the form accel::opt's fuse-phases pass
  /// recovers (and the baseline its win is measured against).
  bool fuse_conv = true;
};

class ProgramCompiler {
 public:
  ProgramCompiler() = default;
  explicit ProgramCompiler(const CompilerOptions& options)
      : options_(options) {}

  /// Lower `model` running over `dataset` into phases + a memory map.
  /// `dataset` must outlive the returned program (non-owning pointer).
  [[nodiscard]] CompiledProgram compile(const gnn::ModelSpec& model,
                                        const graph::Dataset& dataset) const;

 private:
  CompilerOptions options_{};
};

}  // namespace gnna::accel
