// Post-hoc energy model for the accelerator.
//
// Section II motivates the design with energy: "a significant amount of
// energy [is] wasted on unnecessary memory accesses" when a dense DNN
// accelerator processes sparse graphs. The paper itself reports latency
// only; this module extends the reproduction with the standard
// activity-counter energy estimate used by accelerator papers of the era
// (Eyeriss/Graphicionado-style): each architectural event carries a fixed
// energy cost, and the simulator's RunStats supply the event counts.
//
// Default coefficients are 45/28 nm-class textbook values (order-of-
// magnitude, documented per field); they are deliberately configurable
// because absolute Joules are not a claim the paper makes.
#pragma once

#include "accel/config.hpp"
#include "accel/simulator.hpp"

namespace gnna::accel {

/// Per-event energy coefficients in picojoules.
struct EnergyModel {
  double pj_per_dram_byte = 40.0;   // DDR3/4 interface + array, ~pJ/byte
  double pj_per_flit_hop = 60.0;    // 64B flit across one link + router
  double pj_per_flit_eject = 15.0;  // ejection + reassembly
  double pj_per_mac = 2.0;          // 32-bit fixed-point MAC incl. RF
  double pj_per_agg_word = 1.5;     // AGG ALU op + scratchpad access
  double pj_per_dnq_word = 0.8;     // DNQ scratchpad write + ready bit
  double pj_per_gpe_op = 15.0;      // lightweight control core, per op
  double mw_leakage_per_tile = 25.0;  // static power per tile
};

/// Energy breakdown of one simulated run, in microjoules.
struct EnergyBreakdown {
  double dram_uj = 0.0;
  double noc_uj = 0.0;
  double dna_uj = 0.0;
  double agg_uj = 0.0;
  double dnq_uj = 0.0;
  double gpe_uj = 0.0;
  double leakage_uj = 0.0;

  [[nodiscard]] double total_uj() const {
    return dram_uj + noc_uj + dna_uj + agg_uj + dnq_uj + gpe_uj + leakage_uj;
  }

  /// Fraction of DRAM energy spent on bytes nobody asked for (64B-line
  /// padding of small/unaligned accesses) — the waste Section II is about.
  double dram_waste_fraction = 0.0;
};

/// Estimate the energy of `run` on configuration `cfg`.
[[nodiscard]] EnergyBreakdown estimate_energy(const RunStats& run,
                                              const AcceleratorConfig& cfg,
                                              const EnergyModel& model = {});

}  // namespace gnna::accel
