#include "accel/dnq.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace gnna::accel {

std::uint32_t Dnq::queue0_split_bytes(const TileParams& params) {
  if (params.dnq_queue0_sixteenths > 16) {
    throw std::invalid_argument(
        "Dnq: dnq_queue0_sixteenths out of range (" +
        std::to_string(params.dnq_queue0_sixteenths) + "/16)");
  }
  // Scale before dividing: `data / 16 * sixteenths` truncates the
  // per-sixteenth size first, so a sixteenths=16 split of a non-divisible
  // scratchpad would strand up to 15 bytes in queue 1.
  return static_cast<std::uint32_t>(std::uint64_t{params.dnq_data_bytes} *
                                    params.dnq_queue0_sixteenths / 16);
}

Dnq::Dnq(const TileParams& params) : params_(params) {
  const std::uint32_t q0 = queue0_split_bytes(params);
  const std::uint32_t q1 = params.dnq_data_bytes - q0;
  assert(q0 + q1 == params.dnq_data_bytes &&
         "DNQ split must account for every scratchpad byte");
  configure(q0, q1);
}

void Dnq::configure(std::uint32_t queue0_bytes, std::uint32_t queue1_bytes) {
  // Explicit errors (not asserts): a bad split is a program/config bug that
  // must surface in release builds too, before it turns into a deadlock.
  if (live_entries_ != 0) {
    throw std::logic_error("Dnq::configure: reconfiguring a non-empty DNQ");
  }
  if (std::uint64_t{queue0_bytes} + queue1_bytes > params_.dnq_data_bytes) {
    throw std::invalid_argument(
        "Dnq::configure: split " + std::to_string(queue0_bytes) + "+" +
        std::to_string(queue1_bytes) + "B exceeds the " +
        std::to_string(params_.dnq_data_bytes) + "B data scratchpad");
  }
  capacity_bytes_ = {queue0_bytes, queue1_bytes};
  active_queue_ = 0;
}

std::optional<DnqHandle> Dnq::allocate(std::uint8_t queue,
                                       std::uint32_t width_words, Dest dest,
                                       std::uint32_t owner) {
  if (queue >= 2) {
    throw std::invalid_argument("Dnq::allocate: virtual queue " +
                                std::to_string(queue) + " out of range");
  }
  if (width_words == 0) {
    throw std::invalid_argument("Dnq::allocate: zero-width entry");
  }
  if ((dest.kind == Dest::Kind::kDnqEntry ||
       dest.kind == Dest::Kind::kAggEntry) &&
      dest.ep == kInvalidEndpoint) {
    throw std::invalid_argument(
        "Dnq::allocate: unit destination with invalid endpoint");
  }
  const std::uint64_t bytes = std::uint64_t{width_words} * 4;
  const std::uint32_t max_dest_entries =
      params_.dnq_dest_bytes / params_.dnq_dest_entry_bytes;
  if (live_entries_ >= max_dest_entries ||
      bytes_used_[queue] + bytes > capacity_bytes_[queue]) {
    stats_.alloc_failures.add();
    return std::nullopt;
  }
  DnqHandle h;
  if (!free_list_.empty()) {
    h = free_list_.back();
    free_list_.pop_back();
  } else {
    h = static_cast<DnqHandle>(entries_.size());
    entries_.emplace_back();
  }
  Entry& e = entries_[h];
  e.active = true;
  e.queue = queue;
  e.width_words = width_words;
  e.owner = owner;
  e.received_bytes = 0;
  e.dest = dest;
  bytes_used_[queue] += bytes;
  fifo_[queue].push_back(h);
  ++live_entries_;
  stats_.allocations.add();
  tracer_.instant("alloc", h, queue);
  return h;
}

void Dnq::on_message(const noc::Message& msg) {
  // Memory responses carry the entry handle in the echoed tag (c); unit
  // fills (kDnqWrite) carry it in a.
  const auto h = static_cast<DnqHandle>(
      msg.kind == noc::MsgKind::kMemReadResp ? msg.c : msg.a);
  assert(h < entries_.size() && entries_[h].active &&
         "DNQ write to dead entry");
  Entry& e = entries_[h];
  e.received_bytes += msg.payload_bytes;
  stats_.enqueued_words.add(msg.payload_bytes / 4);
  assert(e.received_bytes <= std::uint64_t{e.width_words} * 4 &&
         "DNQ entry overfilled");
}

bool Dnq::head_ready(std::uint8_t q) const {
  if (fifo_[q].empty()) return false;
  return entries_[fifo_[q].front()].ready();
}

DnqEntry Dnq::pop_head(std::uint8_t q) {
  const DnqHandle h = fifo_[q].front();
  fifo_[q].pop_front();
  Entry& e = entries_[h];
  DnqEntry out;
  out.queue = q;
  out.width_words = e.width_words;
  out.owner = e.owner;
  out.dest = e.dest;
  bytes_used_[q] -= std::uint64_t{e.width_words} * 4;
  e.active = false;
  --live_entries_;
  free_list_.push_back(h);
  stats_.dequeues.add();
  tracer_.instant("dequeue", h, q);
  return out;
}

void Dnq::dump_state(std::ostream& os) const {
  os << "    dnq: live_entries=" << live_entries_ << " active_queue="
     << static_cast<int>(active_queue_) << '\n';
  for (std::uint8_t q = 0; q < 2; ++q) {
    os << "      queue " << static_cast<int>(q) << ": used="
       << bytes_used_[q] << '/' << capacity_bytes_[q] << "B depth="
       << fifo_[q].size();
    if (!fifo_[q].empty()) {
      const Entry& e = entries_[fifo_[q].front()];
      os << " head{handle=" << fifo_[q].front() << " received="
         << e.received_bytes << '/' << std::uint64_t{e.width_words} * 4
         << "B" << (e.ready() ? " ready" : " WAITING") << '}';
    }
    os << '\n';
  }
}

std::optional<DnqEntry> Dnq::try_dequeue(double idle_core_cycles) {
  if (head_ready(active_queue_)) return pop_head(active_queue_);
  // Lazy switch: only flip to the other queue after the DNA has sat idle
  // for the configured threshold, to limit switch churn.
  const std::uint8_t other = active_queue_ == 0 ? 1 : 0;
  if (idle_core_cycles >= params_.dnq_idle_switch_cycles &&
      head_ready(other)) {
    active_queue_ = other;
    stats_.queue_switches.add();
    tracer_.instant("queue_switch", other);
    return pop_head(active_queue_);
  }
  return std::nullopt;
}

}  // namespace gnna::accel
