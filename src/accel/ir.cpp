#include "accel/ir.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <utility>
#include <vector>

namespace gnna::accel::ir {
namespace {

// ---------------------------------------------------------------------------
// Serialization helpers
// ---------------------------------------------------------------------------

/// Quote a name for the IR: wrap in double quotes, escape `"` and `\`.
std::string quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

/// Render a double so strtod reads back the identical bit pattern
/// (%.17g is exact for IEEE-754 binary64).
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

const char* kind_name(PhaseKind k) {
  switch (k) {
    case PhaseKind::kGatherAggregate:
      return "gather_aggregate";
    case PhaseKind::kProject:
      return "project";
    case PhaseKind::kEdgeDnaAggregate:
      return "edge_dna_aggregate";
  }
  return "?";
}

const char* reduce_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::kSum:
      return "sum";
    case ReduceOp::kMax:
      return "max";
    case ReduceOp::kMin:
      return "min";
    case ReduceOp::kMean:
      return "mean";
  }
  return "?";
}

// How many expected_contribs values go on one line. Purely cosmetic (keeps
// .gnna files diffable), but part of the canonical form.
constexpr std::size_t kContribsPerLine = 16;

// ---------------------------------------------------------------------------
// Parsing helpers
// ---------------------------------------------------------------------------

/// One whitespace-separated token of an IR line; quoted strings are a
/// single token with quotes stripped and escapes resolved.
struct Token {
  std::string text;
  bool quoted = false;
};

class LineLexer {
 public:
  LineLexer(const std::string& source, std::size_t line_no)
      : source_(source), line_(line_no) {}

  [[noreturn]] void fail(const std::string& reason) const {
    throw IrParseError(source_, line_, reason);
  }

  std::vector<Token> tokens(std::string_view line) const {
    std::vector<Token> out;
    std::size_t i = 0;
    while (i < line.size()) {
      if (std::isspace(static_cast<unsigned char>(line[i])) != 0) {
        ++i;
        continue;
      }
      if (line[i] == '#') break;  // comment to end of line
      Token t;
      if (line[i] == '"') {
        t.quoted = true;
        ++i;
        bool closed = false;
        while (i < line.size()) {
          char c = line[i++];
          if (c == '\\') {
            if (i >= line.size()) fail("dangling escape in quoted string");
            char e = line[i++];
            if (e != '"' && e != '\\') {
              fail(std::string("unknown escape '\\") + e +
                   "' in quoted string");
            }
            t.text.push_back(e);
          } else if (c == '"') {
            closed = true;
            break;
          } else {
            t.text.push_back(c);
          }
        }
        if (!closed) fail("unterminated quoted string");
      } else {
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])) == 0 &&
               line[i] != '#') {
          t.text.push_back(line[i++]);
        }
      }
      out.push_back(std::move(t));
    }
    return out;
  }

  std::uint64_t parse_u64(const Token& t, const char* what) const {
    if (t.quoted || t.text.empty()) {
      fail(std::string("expected unsigned integer for ") + what);
    }
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(t.text.c_str(), &end, 10);
    if (errno != 0 || end == t.text.c_str() || *end != '\0' ||
        t.text[0] == '-') {
      fail("bad unsigned integer '" + t.text + "' for " + what);
    }
    return v;
  }

  double parse_f64(const Token& t, const char* what) const {
    if (t.quoted || t.text.empty()) {
      fail(std::string("expected number for ") + what);
    }
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(t.text.c_str(), &end);
    if (errno != 0 || end == t.text.c_str() || *end != '\0') {
      fail("bad number '" + t.text + "' for " + what);
    }
    return v;
  }

  bool parse_bool(const Token& t, const char* what) const {
    if (!t.quoted && (t.text == "0" || t.text == "1")) return t.text == "1";
    fail(std::string("expected 0 or 1 for ") + what);
  }

  /// Split "key=value" and check the key; returns the value as a Token.
  Token kv(const Token& t, const char* key) const {
    auto eq = t.text.find('=');
    if (t.quoted || eq == std::string::npos) {
      fail(std::string("expected ") + key + "=<value>, got '" + t.text + "'");
    }
    if (t.text.compare(0, eq, key) != 0) {
      fail(std::string("expected key '") + key + "', got '" +
           t.text.substr(0, eq) + "'");
    }
    Token v;
    v.text = t.text.substr(eq + 1);
    return v;
  }

 private:
  const std::string& source_;
  std::size_t line_;
};

/// Cursor over the lines of an IR document, skipping blanks and comments.
class LineCursor {
 public:
  LineCursor(std::string_view text, std::string source)
      : text_(text), source_(std::move(source)) {}

  /// Advance to the next non-blank, non-comment line. Returns false at EOF.
  bool next() {
    while (pos_ < text_.size()) {
      auto nl = text_.find('\n', pos_);
      std::size_t end = (nl == std::string_view::npos) ? text_.size() : nl;
      line_ = text_.substr(pos_, end - pos_);
      line_no_ = ++lines_read_;
      pos_ = (nl == std::string_view::npos) ? text_.size() : nl + 1;
      bool blank = true;
      for (char c : line_) {
        if (c == '#') break;
        if (std::isspace(static_cast<unsigned char>(c)) == 0) {
          blank = false;
          break;
        }
      }
      if (!blank) return true;
    }
    return false;
  }

  [[nodiscard]] std::string_view line() const { return line_; }
  [[nodiscard]] std::size_t line_no() const { return line_no_; }
  [[nodiscard]] LineLexer lexer() const { return {source_, line_no_}; }
  [[nodiscard]] const std::string& source() const { return source_; }

 private:
  std::string_view text_;
  std::string source_;
  std::size_t pos_ = 0;
  std::size_t lines_read_ = 0;
  std::size_t line_no_ = 0;
  std::string_view line_;
};

std::uint32_t narrow_u32(const LineLexer& lex, std::uint64_t v,
                         const char* what) {
  if (v > std::numeric_limits<std::uint32_t>::max()) {
    lex.fail(std::string(what) + " value " + std::to_string(v) +
             " exceeds 32 bits");
  }
  return static_cast<std::uint32_t>(v);
}

/// Parse "region=R width=W" into a BufferRef.
BufferRef parse_bufref(const LineLexer& lex, const std::vector<Token>& toks,
                       std::size_t first) {
  if (toks.size() != first + 2) {
    lex.fail("expected region=<id> width=<words>");
  }
  BufferRef b;
  b.region = narrow_u32(lex, lex.parse_u64(lex.kv(toks[first], "region"),
                                           "region"),
                        "region");
  b.width_words = narrow_u32(
      lex, lex.parse_u64(lex.kv(toks[first + 1], "width"), "width"), "width");
  return b;
}

dataflow::MatmulShape parse_shape(const LineLexer& lex,
                                  const std::vector<Token>& toks) {
  if (toks.size() != 5) {
    lex.fail("expected m=<u64> k=<u64> n=<u64> density=<f64>");
  }
  dataflow::MatmulShape s;
  s.m = lex.parse_u64(lex.kv(toks[1], "m"), "m");
  s.k = lex.parse_u64(lex.kv(toks[2], "k"), "k");
  s.n = lex.parse_u64(lex.kv(toks[3], "n"), "n");
  s.weight_density = lex.parse_f64(lex.kv(toks[4], "density"), "density");
  return s;
}

PhaseKind parse_kind(const LineLexer& lex, const Token& t) {
  if (!t.quoted) {
    if (t.text == "gather_aggregate") return PhaseKind::kGatherAggregate;
    if (t.text == "project") return PhaseKind::kProject;
    if (t.text == "edge_dna_aggregate") return PhaseKind::kEdgeDnaAggregate;
  }
  lex.fail("unknown phase kind '" + t.text +
           "' (want gather_aggregate|project|edge_dna_aggregate)");
}

ReduceOp parse_reduce(const LineLexer& lex, const Token& t) {
  if (!t.quoted) {
    if (t.text == "sum") return ReduceOp::kSum;
    if (t.text == "max") return ReduceOp::kMax;
    if (t.text == "min") return ReduceOp::kMin;
    if (t.text == "mean") return ReduceOp::kMean;
  }
  lex.fail("unknown reduce op '" + t.text + "' (want sum|max|min|mean)");
}

/// Parse the body of one `phase N "name" {` block up to its closing `}`.
PhaseSpec parse_phase_body(LineCursor& cur, std::string name) {
  PhaseSpec ph;
  ph.name = std::move(name);
  // Track which scalar keys appeared so duplicates are rejected; fields the
  // file omits keep PhaseSpec's defaults (hand-written programs stay
  // terse; compiler output always emits every scalar).
  std::vector<std::string> seen;
  auto once = [&](const LineLexer& lex, const std::string& key) {
    for (const auto& s : seen) {
      if (s == key) lex.fail("duplicate phase field '" + key + "'");
    }
    seen.push_back(key);
  };

  while (true) {
    if (!cur.next()) {
      throw IrParseError(cur.source(), cur.line_no(),
                         "unexpected end of file inside phase block");
    }
    LineLexer lex = cur.lexer();
    auto toks = lex.tokens(cur.line());
    const std::string& key = toks[0].text;
    if (!toks[0].quoted && key == "}") {
      if (toks.size() != 1) lex.fail("trailing tokens after '}'");
      return ph;
    }
    auto want = [&](std::size_t n) {
      if (toks.size() != n) {
        lex.fail("field '" + key + "' expects " + std::to_string(n - 1) +
                 " value(s)");
      }
    };
    if (toks[0].quoted) {
      lex.fail("expected a phase field name, got quoted string");
    } else if (key == "kind") {
      once(lex, key);
      want(2);
      ph.kind = parse_kind(lex, toks[1]);
    } else if (key == "gather") {
      once(lex, key);
      ph.gather = parse_bufref(lex, toks, 1);
    } else if (key == "include_self") {
      once(lex, key);
      want(2);
      ph.include_self = lex.parse_bool(toks[1], key.c_str());
    } else if (key == "weighted_edges") {
      once(lex, key);
      want(2);
      ph.weighted_edges = lex.parse_bool(toks[1], key.c_str());
    } else if (key == "walk_len") {
      once(lex, key);
      want(2);
      ph.walk_len = narrow_u32(lex, lex.parse_u64(toks[1], key.c_str()),
                               key.c_str());
    } else if (key == "extra_inputs_per_edge") {
      once(lex, key);
      want(2);
      ph.extra_inputs_per_edge = lex.parse_bool(toks[1], key.c_str());
    } else if (key == "gpe_words_per_entry") {
      once(lex, key);
      want(2);
      ph.gpe_words_per_entry =
          narrow_u32(lex, lex.parse_u64(toks[1], key.c_str()), key.c_str());
    } else if (key == "dna_out_words") {
      once(lex, key);
      want(2);
      ph.dna_out_words =
          narrow_u32(lex, lex.parse_u64(toks[1], key.c_str()), key.c_str());
    } else if (key == "agg_width_words") {
      once(lex, key);
      want(2);
      ph.agg_width_words =
          narrow_u32(lex, lex.parse_u64(toks[1], key.c_str()), key.c_str());
    } else if (key == "agg_op") {
      once(lex, key);
      want(2);
      ph.agg_op = parse_reduce(lex, toks[1]);
    } else if (key == "dna2_out_words") {
      once(lex, key);
      want(2);
      ph.dna2_out_words =
          narrow_u32(lex, lex.parse_u64(toks[1], key.c_str()), key.c_str());
    } else if (key == "dna2_gpe_words") {
      once(lex, key);
      want(2);
      ph.dna2_gpe_words =
          narrow_u32(lex, lex.parse_u64(toks[1], key.c_str()), key.c_str());
    } else if (key == "per_graph") {
      once(lex, key);
      want(2);
      ph.per_graph = lex.parse_bool(toks[1], key.c_str());
    } else if (key == "output") {
      once(lex, key);
      ph.output = parse_bufref(lex, toks, 1);
    } else if (key == "weight_bytes") {
      once(lex, key);
      want(2);
      ph.weight_bytes = lex.parse_u64(toks[1], key.c_str());
    } else if (key == "weight_region") {
      once(lex, key);
      want(2);
      ph.weight_region =
          narrow_u32(lex, lex.parse_u64(toks[1], key.c_str()), key.c_str());
    } else if (key == "dna_shape") {
      ph.dna_shapes.push_back(parse_shape(lex, toks));
    } else if (key == "dna2_shape") {
      ph.dna2_shapes.push_back(parse_shape(lex, toks));
    } else if (key == "extra_input") {
      ph.extra_inputs.push_back(parse_bufref(lex, toks, 1));
    } else if (key == "expected_contribs") {
      if (toks.size() < 2) lex.fail("expected_contribs needs values");
      for (std::size_t i = 1; i < toks.size(); ++i) {
        ph.expected_contribs.push_back(
            lex.parse_u64(toks[i], "expected_contribs"));
      }
    } else {
      lex.fail("unknown phase field '" + key + "'");
    }
  }
}

}  // namespace

std::string serialize(const CompiledProgram& prog) {
  std::ostringstream os;
  os << "gnna-ir " << kIrVersion << "\n";
  os << "program " << quote(prog.name) << "\n";
  for (std::size_t i = 0; i < prog.memmap.num_regions(); ++i) {
    const Region& r = prog.memmap.region(static_cast<RegionId>(i));
    os << "region " << i << " " << quote(r.name) << " base=" << r.base
       << " bytes=" << r.bytes << " preloaded=" << (r.preloaded ? 1 : 0)
       << "\n";
  }
  for (std::size_t i = 0; i < prog.graphs.size(); ++i) {
    const GraphLayout& g = prog.graphs[i];
    os << "graph " << i << " rowptr=" << g.row_ptr << " colidx=" << g.col_idx
       << " nodes=" << g.num_nodes << " edges=" << g.num_edges
       << " node_offset=" << g.node_offset << " edge_offset=" << g.edge_offset
       << "\n";
  }
  for (std::size_t i = 0; i < prog.phases.size(); ++i) {
    const PhaseSpec& ph = prog.phases[i];
    os << "phase " << i << " " << quote(ph.name) << " {\n";
    os << "  kind " << kind_name(ph.kind) << "\n";
    os << "  gather region=" << ph.gather.region
       << " width=" << ph.gather.width_words << "\n";
    os << "  include_self " << (ph.include_self ? 1 : 0) << "\n";
    os << "  weighted_edges " << (ph.weighted_edges ? 1 : 0) << "\n";
    os << "  walk_len " << ph.walk_len << "\n";
    os << "  extra_inputs_per_edge " << (ph.extra_inputs_per_edge ? 1 : 0)
       << "\n";
    os << "  gpe_words_per_entry " << ph.gpe_words_per_entry << "\n";
    os << "  dna_out_words " << ph.dna_out_words << "\n";
    os << "  agg_width_words " << ph.agg_width_words << "\n";
    os << "  agg_op " << reduce_name(ph.agg_op) << "\n";
    os << "  dna2_out_words " << ph.dna2_out_words << "\n";
    os << "  dna2_gpe_words " << ph.dna2_gpe_words << "\n";
    os << "  per_graph " << (ph.per_graph ? 1 : 0) << "\n";
    os << "  output region=" << ph.output.region
       << " width=" << ph.output.width_words << "\n";
    os << "  weight_bytes " << ph.weight_bytes << "\n";
    os << "  weight_region " << ph.weight_region << "\n";
    for (const auto& s : ph.dna_shapes) {
      os << "  dna_shape m=" << s.m << " k=" << s.k << " n=" << s.n
         << " density=" << fmt_double(s.weight_density) << "\n";
    }
    for (const auto& s : ph.dna2_shapes) {
      os << "  dna2_shape m=" << s.m << " k=" << s.k << " n=" << s.n
         << " density=" << fmt_double(s.weight_density) << "\n";
    }
    for (const auto& b : ph.extra_inputs) {
      os << "  extra_input region=" << b.region << " width=" << b.width_words
         << "\n";
    }
    for (std::size_t j = 0; j < ph.expected_contribs.size();
         j += kContribsPerLine) {
      os << "  expected_contribs";
      std::size_t stop =
          std::min(j + kContribsPerLine, ph.expected_contribs.size());
      for (std::size_t k = j; k < stop; ++k) {
        os << " " << ph.expected_contribs[k];
      }
      os << "\n";
    }
    os << "}\n";
  }
  os << "end\n";
  return os.str();
}

CompiledProgram parse(std::string_view text, const std::string& source) {
  LineCursor cur(text, source);

  // Header line.
  if (!cur.next()) {
    throw IrParseError(source, 1, "empty input (want 'gnna-ir 1' header)");
  }
  {
    LineLexer lex = cur.lexer();
    auto toks = lex.tokens(cur.line());
    if (toks.size() != 2 || toks[0].quoted || toks[0].text != "gnna-ir") {
      lex.fail("expected header 'gnna-ir <version>'");
    }
    std::uint64_t ver = lex.parse_u64(toks[1], "version");
    if (ver != static_cast<std::uint64_t>(kIrVersion)) {
      lex.fail("unsupported gnna-ir version " + std::to_string(ver) +
               " (this build reads version " + std::to_string(kIrVersion) +
               ")");
    }
  }

  CompiledProgram prog;
  bool saw_program = false;
  bool saw_end = false;
  while (cur.next()) {
    LineLexer lex = cur.lexer();
    auto toks = lex.tokens(cur.line());
    const std::string& key = toks[0].text;
    if (toks[0].quoted) {
      lex.fail("expected a directive, got quoted string");
    }
    if (saw_end) {
      lex.fail("content after 'end'");
    }
    if (key == "program") {
      if (saw_program) lex.fail("duplicate 'program' line");
      if (toks.size() != 2 || !toks[1].quoted) {
        lex.fail("expected program \"<name>\"");
      }
      saw_program = true;
      prog.name = toks[1].text;
    } else if (key == "region") {
      if (toks.size() != 6 || !toks[2].quoted) {
        lex.fail(
            "expected region <id> \"<name>\" base=<u64> bytes=<u64> "
            "preloaded=<0|1>");
      }
      std::uint64_t id = lex.parse_u64(toks[1], "region id");
      if (id != prog.memmap.num_regions()) {
        lex.fail("region ids must be sequential: expected " +
                 std::to_string(prog.memmap.num_regions()) + ", got " +
                 std::to_string(id));
      }
      Addr base = lex.parse_u64(lex.kv(toks[3], "base"), "base");
      std::uint64_t bytes = lex.parse_u64(lex.kv(toks[4], "bytes"), "bytes");
      bool preloaded = lex.parse_bool(lex.kv(toks[5], "preloaded"),
                                      "preloaded");
      try {
        // add_region_at replays the region exactly (base untouched) and
        // advances the allocation cursor to max over aligned ends, which
        // reproduces the original MemoryMap::total_bytes().
        prog.memmap.add_region_at(toks[2].text, base, bytes, preloaded);
      } catch (const std::overflow_error& e) {
        lex.fail(e.what());
      }
    } else if (key == "graph") {
      if (toks.size() != 8) {
        lex.fail(
            "expected graph <id> rowptr=<region> colidx=<region> "
            "nodes=<u32> edges=<u32> node_offset=<u32> edge_offset=<u32>");
      }
      std::uint64_t id = lex.parse_u64(toks[1], "graph id");
      if (id != prog.graphs.size()) {
        lex.fail("graph ids must be sequential: expected " +
                 std::to_string(prog.graphs.size()) + ", got " +
                 std::to_string(id));
      }
      GraphLayout g;
      g.row_ptr = narrow_u32(
          lex, lex.parse_u64(lex.kv(toks[2], "rowptr"), "rowptr"), "rowptr");
      g.col_idx = narrow_u32(
          lex, lex.parse_u64(lex.kv(toks[3], "colidx"), "colidx"), "colidx");
      g.num_nodes = narrow_u32(
          lex, lex.parse_u64(lex.kv(toks[4], "nodes"), "nodes"), "nodes");
      g.num_edges = narrow_u32(
          lex, lex.parse_u64(lex.kv(toks[5], "edges"), "edges"), "edges");
      g.node_offset =
          narrow_u32(lex,
                     lex.parse_u64(lex.kv(toks[6], "node_offset"),
                                   "node_offset"),
                     "node_offset");
      g.edge_offset = narrow_u32(
          lex,
          lex.parse_u64(lex.kv(toks[7], "edge_offset"), "edge_offset"),
          "edge_offset");
      prog.graphs.push_back(g);
    } else if (key == "phase") {
      if (toks.size() != 4 || !toks[2].quoted || toks[3].quoted ||
          toks[3].text != "{") {
        lex.fail("expected phase <id> \"<name>\" {");
      }
      std::uint64_t id = lex.parse_u64(toks[1], "phase id");
      if (id != prog.phases.size()) {
        lex.fail("phase ids must be sequential: expected " +
                 std::to_string(prog.phases.size()) + ", got " +
                 std::to_string(id));
      }
      prog.phases.push_back(parse_phase_body(cur, toks[2].text));
    } else if (key == "end") {
      if (toks.size() != 1) lex.fail("trailing tokens after 'end'");
      saw_end = true;
    } else {
      lex.fail("unknown directive '" + key + "'");
    }
  }
  if (!saw_end) {
    throw IrParseError(source, cur.line_no(),
                       "missing 'end' terminator (truncated file?)");
  }
  if (!saw_program) {
    throw IrParseError(source, cur.line_no(), "missing 'program' line");
  }
  return prog;
}

std::uint64_t hash_text(std::string_view text) {
  // FNV-1a, 64-bit.
  std::uint64_t h = 14695981039346656037ULL;
  for (char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t content_hash(const CompiledProgram& prog) {
  return hash_text(serialize(prog));
}

CompiledProgram load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open program file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str(), path);
}

void save_file(const CompiledProgram& prog, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open output file: " + path);
  }
  out << serialize(prog);
  out.flush();
  if (!out) {
    throw std::runtime_error("error writing program file: " + path);
  }
}

}  // namespace gnna::accel::ir
