// Convenience wrapper: benchmark -> dataset + model + compile + simulate.
//
// Implemented by the session layer (src/sim): runs resolve against the
// process-wide Session caches, so repeated calls with the same
// (benchmark, seed) reuse one dataset and one compiled program. Linking
// this function requires gnna_sim (which pulls in gnna_accel).
#pragma once

#include "accel/config.hpp"
#include "accel/simulator.hpp"
#include "gnn/model.hpp"

namespace gnna::accel {

/// Simulate one Table VII benchmark on `cfg` and return the run stats.
/// Dataset and model are resolved through sim::Session::global()
/// (deterministic by `seed`; cached across calls).
/// `trace` attaches observability outputs (event sink / periodic sampler)
/// to the run; the default traces nothing.
[[nodiscard]] RunStats simulate_benchmark(gnn::Benchmark benchmark,
                                          const AcceleratorConfig& cfg,
                                          std::uint64_t seed = 2020,
                                          const TraceOptions& trace = {});

}  // namespace gnna::accel
