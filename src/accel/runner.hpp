// Convenience wrapper: benchmark -> dataset + model + compile + simulate.
#pragma once

#include "accel/config.hpp"
#include "accel/simulator.hpp"
#include "gnn/model.hpp"

namespace gnna::accel {

/// Simulate one Table VII benchmark on `cfg` and return the run stats.
/// Builds the dataset and model internally (deterministic by `seed`).
/// `trace` attaches observability outputs (event sink / periodic sampler)
/// to the run; the default traces nothing.
[[nodiscard]] RunStats simulate_benchmark(gnn::Benchmark benchmark,
                                          const AcceleratorConfig& cfg,
                                          std::uint64_t seed = 2020,
                                          const TraceOptions& trace = {});

}  // namespace gnna::accel
