#include "accel/config.hpp"

namespace gnna::accel {

AcceleratorConfig AcceleratorConfig::cpu_iso_bw() {
  AcceleratorConfig c;
  c.name = "CPU iso-BW";
  c.mesh_width = 2;
  c.mesh_height = 1;
  c.tile_coords = {{0, 0}};
  c.mem_coords = {{1, 0}};
  return c;
}

AcceleratorConfig AcceleratorConfig::gpu_iso_bw() {
  AcceleratorConfig c;
  c.name = "GPU iso-BW";
  c.mesh_width = 4;
  c.mesh_height = 4;
  // Tiles occupy the two middle columns; memory nodes line the edges
  // (Fig 9, middle).
  for (std::uint32_t y = 0; y < 4; ++y) {
    c.tile_coords.emplace_back(1, y);
    c.tile_coords.emplace_back(2, y);
    c.mem_coords.emplace_back(0, y);
    c.mem_coords.emplace_back(3, y);
  }
  return c;
}

AcceleratorConfig AcceleratorConfig::gpu_iso_flops() {
  AcceleratorConfig c;
  c.name = "GPU iso-FLOPS";
  c.mesh_width = 6;
  c.mesh_height = 4;
  // 16 tiles in the four middle columns, 8 memory nodes on the edge
  // columns (Fig 9, right).
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 1; x <= 4; ++x) c.tile_coords.emplace_back(x, y);
    c.mem_coords.emplace_back(0, y);
    c.mem_coords.emplace_back(5, y);
  }
  return c;
}

}  // namespace gnna::accel
