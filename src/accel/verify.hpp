// Static program verification (accel::verify).
//
// A compiled program (PhaseSpec sequence + MemoryMap) can violate hard
// hardware invariants — 62kB DNQ/AGG scratchpads, associative-only AGG
// reductions, valid allocation-time destinations — and until now those
// violations surfaced as mid-simulation deadlocks (caught, at best, by the
// watchdog) or silently wrong timing. verify_program() runs a static
// analysis pass over the program *before* the timing model and emits
// structured diagnostics with stable lint codes, severity, and
// phase/buffer provenance, so the watchdog's deadlock dumps become a last
// resort instead of the first line of defense.
//
// Lint codes are stable identifiers (GV0xx = error, GV1xx = warning):
//
//   GV001  DNQ entry can never fit its virtual queue (guaranteed deadlock)
//   GV002  AGG entry exceeds the data scratchpad (guaranteed deadlock)
//   GV003  non-associative AGG reduce op
//   GV004  bad buffer reference (bad region id, zero width, region too
//          small for its indexed extent, producer/consumer width mismatch)
//   GV005  bad DNA model (incompatible matmul chain, zero dimensions,
//          inconsistent out_words, missing/misplaced model)
//   GV006  expected_contribs inconsistent with the walk tree
//   GV007  malformed MemoryMap (overlap, misalignment, overflow)
//   GV008  buffer read before any phase writes it
//   GV009  illegal phase-field combination
//   GV010  unusable TileParams (zero ALUs/threads/scratchpads, bad split)
//   GV011  malformed graph-layout table (empty, zero-vertex graph,
//          non-contiguous node/edge offsets, bad or undersized
//          rowptr/colidx regions) — parse-level defects a hand-written
//          .gnna file can carry but the compiler can never emit
//   GV012  graph-layout table disagrees with the bound dataset
//   GV101  AGG scratchpad admits < 2 concurrent entries (serialized aggs)
//   GV102  DNQ virtual queue admits < 2 concurrent entries
//   GV103  dead store: phase output never read and not the program result
//   GV104  expected_contribs supplied but unused (walk_len == 1)
//   GV105  weight_bytes > 0 on a phase with no DNA model
//   GV106  phase output overwrites a preloaded region
//   GV107  no dataset bound: topology-dependent checks skipped
//   GV108  estimated NoC traffic saturates the mesh bisection: aggregate
//          memory bandwidth implies more bytes/cycle crossing the mesh
//          bisection than its links can carry, so the NoC (not memory)
//          bounds every data-moving phase. Needs the accelerator config;
//          skipped without one.
//
// GV2xx = performance lints from the static analytic model
// (accel/analysis.hpp). They report configurations that will run, and run
// correctly, but leave modeled hardware parallelism on the table. Like
// GV108 they need the accelerator config and are skipped without one:
//
//   GV201  scratchpad reuse-distance thrash: a DNQ virtual queue or the
//          AGG scratchpad admits fewer concurrent entries than a quarter
//          of the GPE thread pool, so most in-flight threads stall on
//          allocation (the serialized < 2 case stays GV101/GV102)
//   GV202  DNQ virtual-queue split starvation: the configured
//          queue0_sixteenths starves one virtual queue below 2 entries
//          while some other split admits >= 2 in both
//   GV203  predicted bank camping: under FR-FCFS, the page/bank
//          interleave combination maps every controller's traffic onto a
//          strict subset of its banks (mem_bank_xor=1 fixes it)
//   GV204  partition load imbalance: the modeled partition concentrates a
//          phase's per-vertex load so the heaviest tile does >= 1.5x the
//          mean work
//
// Programs are dataset-independent, so most checks run from the program's
// own graph-layout table alone. Passing the dataset the program will run
// against enables the topology-dependent checks (GV006 walk-tree
// recomputation, GV104 degree comparison, GV012 layout agreement);
// without one, those are skipped and GV107 notes it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/program.hpp"
#include "graph/dataset.hpp"
#include "graph/partition.hpp"

namespace gnna::accel {

enum class LintCode : std::uint16_t {
  // Errors: the program cannot execute correctly on the modeled hardware.
  kDnqEntryTooLarge = 1,
  kAggEntryTooLarge = 2,
  kNonAssociativeAggOp = 3,
  kBadBufferRef = 4,
  kBadDnaModel = 5,
  kBadExpectedContribs = 6,
  kBadMemoryMap = 7,
  kReadBeforeWrite = 8,
  kIllegalPhaseCombo = 9,
  kBadTileParams = 10,
  kBadGraphLayout = 11,
  kDatasetMismatch = 12,
  // Warnings: legal but probably not what the author intended.
  kAggLowConcurrency = 101,
  kDnqLowConcurrency = 102,
  kDeadStore = 103,
  kUnusedExpectedContribs = 104,
  kWeightsWithoutDna = 105,
  kOutputClobbersPreload = 106,
  kNoDatasetBound = 107,
  kNocBisectionSaturated = 108,
  // Performance lints from the static analytic model (accel/analysis.hpp).
  kReuseDistanceThrash = 201,
  kQueueSplitStarved = 202,
  kBankCamping = 203,
  kPartitionImbalance = 204,
};

enum class Severity : std::uint8_t { kWarning, kError };

/// Code families, for grouped `gnnaverify --list-codes` output. Perf lints
/// are warnings by severity; the family tells the two apart.
enum class LintFamily : std::uint8_t { kError, kWarning, kPerf };

/// "GV001", "GV102", ... — the stable identifier printed in diagnostics.
[[nodiscard]] const char* lint_code_name(LintCode code);
/// One-line description of what the code means (for --list-codes).
[[nodiscard]] const char* lint_code_summary(LintCode code);
[[nodiscard]] constexpr Severity lint_code_severity(LintCode code) {
  return static_cast<std::uint16_t>(code) >= 100 ? Severity::kWarning
                                                 : Severity::kError;
}
[[nodiscard]] constexpr LintFamily lint_code_family(LintCode code) {
  const auto v = static_cast<std::uint16_t>(code);
  return v >= 200 ? LintFamily::kPerf
         : v >= 100 ? LintFamily::kWarning
                    : LintFamily::kError;
}
[[nodiscard]] const char* lint_family_name(LintFamily family);

struct VerifyDiagnostic {
  LintCode code = LintCode::kBadMemoryMap;
  Severity severity = Severity::kError;
  int phase = -1;          // phase index, or -1 for whole-program findings
  std::string phase_name;  // empty for whole-program findings
  std::string message;
};

struct VerifyReport {
  std::string program_name;
  std::vector<VerifyDiagnostic> diagnostics;

  [[nodiscard]] std::size_t num_errors() const;
  [[nodiscard]] std::size_t num_warnings() const;
  [[nodiscard]] bool ok() const { return num_errors() == 0; }
  [[nodiscard]] bool has(LintCode code) const;

  /// "GV001 error phase 2 (gcn.att): ..." — one line per diagnostic plus a
  /// summary header.
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;
};

/// Run every check against `prog` under tile parameters `params`. `ds`
/// (optional) is the dataset the program will run against; it enables the
/// topology-dependent checks (see the header comment). `cfg` (optional) is
/// the full accelerator configuration; it enables the config-dependent
/// checks (GV108 bisection saturation and the GV2xx perf lints) — pass the
/// same config the program will execute on. `partition` is the policy the
/// simulator will apply (GV204 models it). Never throws on program defects
/// — they all land in the report.
[[nodiscard]] VerifyReport verify_program(
    const CompiledProgram& prog, const TileParams& params,
    const graph::Dataset* ds = nullptr,
    const AcceleratorConfig* cfg = nullptr,
    graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin);

/// Thrown by verify_or_throw; carries the full report.
class ProgramVerifyError : public std::runtime_error {
 public:
  explicit ProgramVerifyError(VerifyReport report);
  [[nodiscard]] const VerifyReport& report() const { return report_; }

 private:
  VerifyReport report_;
};

/// verify_program + throw ProgramVerifyError if any *error* diagnostics
/// were produced (warnings never throw). Returns the report otherwise.
VerifyReport verify_or_throw(
    const CompiledProgram& prog, const TileParams& params,
    const graph::Dataset* ds = nullptr,
    const AcceleratorConfig* cfg = nullptr,
    graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin);

/// The full lint-code catalog, for `gnnaverify --list-codes` and docs.
struct LintCodeInfo {
  LintCode code;
  Severity severity;
  const char* name;
  const char* summary;
};
[[nodiscard]] std::vector<LintCodeInfo> lint_code_table();

}  // namespace gnna::accel
