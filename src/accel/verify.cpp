#include "accel/verify.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <ostream>
#include <sstream>

#include "accel/analysis.hpp"
#include "accel/dnq.hpp"
#include "common/units.hpp"

namespace gnna::accel {

namespace {

/// Independent recomputation of the walk-tree contribution counts the
/// compiler stores in `expected_contribs` (walks_L(v) = sum over neighbors
/// of walks_{L-1}(u), walks_0 = 1), with the same explosion bound the
/// compiler enforces. nullopt when the tree is too large to enumerate.
std::optional<std::vector<std::uint64_t>> recompute_walk_counts(
    const graph::Dataset& ds, std::uint32_t len) {
  constexpr std::uint64_t kMaxWalks = 50'000'000ULL;
  NodeId total = 0;
  for (const auto& g : ds.graphs) total += g.num_nodes();
  std::vector<std::uint64_t> cur(total, 1);
  std::vector<std::uint64_t> next(total, 0);
  std::vector<NodeId> bases;
  NodeId base = 0;
  for (const auto& g : ds.undirected) {
    bases.push_back(base);
    base += g.num_nodes();
  }
  for (std::uint32_t step = 0; step < len; ++step) {
    std::uint64_t grand_total = 0;
    for (std::size_t gi = 0; gi < ds.undirected.size(); ++gi) {
      const graph::Graph& g = ds.undirected[gi];
      const NodeId off = bases[gi];
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        std::uint64_t acc = 0;
        for (const NodeId u : g.neighbors(v)) acc += cur[off + u];
        next[off + v] = acc;
        grand_total += acc;
      }
    }
    if (grand_total > kMaxWalks) return std::nullopt;
    std::swap(cur, next);
  }
  return cur;
}

/// Collects diagnostics while walking the program.
class Linter {
 public:
  Linter(const CompiledProgram& prog, const TileParams& params,
         const graph::Dataset* ds, const AcceleratorConfig* cfg,
         graph::PartitionPolicy partition)
      : prog_(prog), params_(params), ds_(ds), cfg_(cfg),
        partition_(partition) {
    report_.program_name = prog.name;
  }

  VerifyReport run() {
    check_tile_params();
    check_memory_map();
    check_graph_layouts();
    check_noc_bisection();
    if (ds_ != nullptr) {
      check_dataset_match();
    } else {
      add(LintCode::kNoDatasetBound, -1,
          "no dataset bound: topology-dependent checks (walk-tree "
          "recomputation, degree comparison, layout/dataset agreement) "
          "skipped");
    }
    for (std::size_t i = 0; i < prog_.phases.size(); ++i) {
      check_phase(static_cast<int>(i), prog_.phases[i]);
    }
    check_dataflow();
    check_perf_model();
    return std::move(report_);
  }

 private:
  void add(LintCode code, int phase, std::string msg) {
    VerifyDiagnostic d;
    d.code = code;
    d.severity = lint_code_severity(code);
    d.phase = phase;
    if (phase >= 0) d.phase_name = prog_.phases[phase].name;
    d.message = std::move(msg);
    report_.diagnostics.push_back(std::move(d));
  }

  // ---- GV010: tile parameters ----
  void check_tile_params() {
    const TileParams& p = params_;
    if (p.gpe_threads == 0) {
      add(LintCode::kBadTileParams, -1, "gpe_threads is 0: no work can run");
    }
    if (p.agg_alus == 0) {
      add(LintCode::kBadTileParams, -1, "agg_alus is 0: AGG cannot reduce");
    }
    if (p.agg_data_bytes == 0 || p.agg_ctrl_bytes < p.agg_ctrl_entry_bytes) {
      add(LintCode::kBadTileParams, -1,
          "AGG scratchpads admit no entries (data=" +
              std::to_string(p.agg_data_bytes) +
              "B, ctrl=" + std::to_string(p.agg_ctrl_bytes) + "B / " +
              std::to_string(p.agg_ctrl_entry_bytes) + "B per entry)");
    }
    if (p.dnq_data_bytes == 0 || p.dnq_dest_bytes < p.dnq_dest_entry_bytes) {
      add(LintCode::kBadTileParams, -1,
          "DNQ scratchpads admit no entries (data=" +
              std::to_string(p.dnq_data_bytes) +
              "B, dest=" + std::to_string(p.dnq_dest_bytes) + "B / " +
              std::to_string(p.dnq_dest_entry_bytes) + "B per entry)");
    }
    if (p.dnq_queue0_sixteenths > 16) {
      add(LintCode::kBadTileParams, -1,
          "dnq_queue0_sixteenths out of range (" +
              std::to_string(p.dnq_queue0_sixteenths) + "/16)");
      split_valid_ = false;
    }
  }

  // ---- GV007: memory map ----
  void check_memory_map() {
    const MemoryMap& mm = prog_.memmap;
    struct Span {
      std::uint64_t base, end;
      const std::string* name;
    };
    std::vector<Span> spans;
    spans.reserve(mm.num_regions());
    for (RegionId id = 0; id < mm.num_regions(); ++id) {
      const Region& r = mm.region(id);
      if (r.base % 64 != 0) {
        add(LintCode::kBadMemoryMap, -1,
            "region '" + r.name + "' base 0x" + to_hex(r.base) +
                " is not 64B-aligned");
      }
      if (r.bytes > ~std::uint64_t{0} - r.base) {
        add(LintCode::kBadMemoryMap, -1,
            "region '" + r.name + "' wraps the address space");
        continue;
      }
      if (r.base + r.bytes > mm.total_bytes()) {
        add(LintCode::kBadMemoryMap, -1,
            "region '" + r.name + "' extends past total_bytes (" +
                std::to_string(r.base + r.bytes) + " > " +
                std::to_string(mm.total_bytes()) + ")");
      }
      spans.push_back({r.base, r.base + r.bytes, &r.name});
    }
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.base < b.base; });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      if (spans[i].base < spans[i - 1].end) {
        add(LintCode::kBadMemoryMap, -1,
            "regions '" + *spans[i - 1].name + "' and '" + *spans[i].name +
                "' overlap");
      }
    }
  }

  // ---- GV011: graph-layout table well-formedness ----
  //
  // The compiler always emits a contiguous, correctly-sized table, so any
  // finding here marks a hand-written or hand-edited .gnna file.
  void check_graph_layouts() {
    if (prog_.graphs.empty()) {
      add(LintCode::kBadGraphLayout, -1,
          "program has no graph layouts: there is no work to run");
      return;
    }
    NodeId want_node = 0;
    EdgeId want_edge = 0;
    for (std::size_t gi = 0; gi < prog_.graphs.size(); ++gi) {
      const GraphLayout& g = prog_.graphs[gi];
      const std::string tag = "graph " + std::to_string(gi);
      if (g.num_nodes == 0) {
        add(LintCode::kBadGraphLayout, -1, tag + " has zero vertices");
      }
      if (g.node_offset != want_node || g.edge_offset != want_edge) {
        add(LintCode::kBadGraphLayout, -1,
            tag + " offsets (node=" + std::to_string(g.node_offset) +
                ", edge=" + std::to_string(g.edge_offset) +
                ") are not contiguous with the preceding graphs (want "
                "node=" +
                std::to_string(want_node) +
                ", edge=" + std::to_string(want_edge) + ")");
      }
      want_node += g.num_nodes;
      want_edge += g.num_edges;
      // Topology regions must exist and hold the CSR arrays the traversal
      // reads: (num_nodes + 1) row pointers, num_edges (id, weight) pairs.
      check_topo_region(tag + " rowptr", g.row_ptr,
                        (std::uint64_t{g.num_nodes} + 1) * kWordBytes);
      check_topo_region(tag + " colidx", g.col_idx,
                        std::uint64_t{g.num_edges} * 2 * kWordBytes);
    }
  }

  void check_topo_region(const std::string& what, RegionId id,
                         std::uint64_t need_bytes) {
    if (id >= prog_.memmap.num_regions()) {
      add(LintCode::kBadGraphLayout, -1,
          what + " region id " + std::to_string(id) + " out of range");
      return;
    }
    const Region& r = prog_.memmap.region(id);
    if (r.bytes < need_bytes) {
      add(LintCode::kBadGraphLayout, -1,
          what + " region '" + r.name + "' (" + std::to_string(r.bytes) +
              "B) too small for its topology (" +
              std::to_string(need_bytes) + "B)");
    }
  }

  // ---- GV012: graph layouts vs the bound dataset ----
  void check_dataset_match() {
    if (prog_.graphs.size() != ds_->graphs.size()) {
      add(LintCode::kDatasetMismatch, -1,
          "program has " + std::to_string(prog_.graphs.size()) +
              " graph layouts but the bound dataset has " +
              std::to_string(ds_->graphs.size()) + " graphs");
      return;
    }
    for (std::size_t gi = 0; gi < prog_.graphs.size(); ++gi) {
      const GraphLayout& g = prog_.graphs[gi];
      const graph::Graph& sym = ds_->undirected[gi];
      if (g.num_nodes != sym.num_nodes() || g.num_edges != sym.num_edges()) {
        add(LintCode::kDatasetMismatch, -1,
            "graph " + std::to_string(gi) + " layout (" +
                std::to_string(g.num_nodes) + " vertices, " +
                std::to_string(g.num_edges) +
                " symmetrized edges) disagrees with the bound dataset (" +
                std::to_string(sym.num_nodes()) + " vertices, " +
                std::to_string(sym.num_edges()) + " edges)");
      }
    }
  }

  // ---- per-phase checks ----
  void check_phase(int pi, const PhaseSpec& ph) {
    check_phase_combo(pi, ph);
    check_dnq_footprint(pi, ph);
    check_agg(pi, ph);
    check_dna_models(pi, ph);
    check_buffers(pi, ph);
    check_contribs(pi, ph);
  }

  // GV009: field combinations the runtime cannot execute.
  void check_phase_combo(int pi, const PhaseSpec& ph) {
    const bool aggregate_kind = ph.kind == PhaseKind::kGatherAggregate ||
                                ph.kind == PhaseKind::kEdgeDnaAggregate;
    if (aggregate_kind && !ph.has_agg()) {
      add(LintCode::kIllegalPhaseCombo, pi,
          "aggregate-kind phase with agg_width_words == 0");
    }
    if (ph.kind == PhaseKind::kProject && ph.extra_inputs.empty()) {
      add(LintCode::kIllegalPhaseCombo, pi,
          "project phase with no inputs (would allocate zero-width DNQ "
          "entries)");
    }
    if (ph.walk_len == 0) {
      add(LintCode::kIllegalPhaseCombo, pi, "walk_len is 0");
    }
    if (ph.walk_len > 1 && ph.kind != PhaseKind::kGatherAggregate) {
      add(LintCode::kIllegalPhaseCombo, pi,
          "walk_len > 1 is only meaningful for gather-aggregate phases");
    }
    if (ph.per_graph &&
        (ph.kind != PhaseKind::kGatherAggregate || ph.walk_len > 1)) {
      add(LintCode::kIllegalPhaseCombo, pi,
          "per_graph readout must be a 1-hop gather-aggregate phase");
    }
    if (ph.kind == PhaseKind::kEdgeDnaAggregate && ph.include_self &&
        ph.extra_inputs_per_edge && !ph.extra_inputs.empty()) {
      add(LintCode::kIllegalPhaseCombo, pi,
          "self contribution cannot carry per-edge extra inputs "
          "(include_self + extra_inputs_per_edge)");
    }
    if (ph.has_dna2() && ph.kind != PhaseKind::kEdgeDnaAggregate) {
      add(LintCode::kIllegalPhaseCombo, pi,
          "dna2 model on a phase kind that never enqueues to virtual "
          "queue 1");
    }
  }

  // GV001/GV102: every DNQ entry the GPE allocates for this phase must fit
  // the virtual queue it targets under the split the runtime will program
  // (all of the scratchpad to queue 0 unless the phase uses queue 1).
  void check_dnq_footprint(int pi, const PhaseSpec& ph) {
    if (!split_valid_) return;  // GV010 already reported
    std::uint32_t q0_cap = params_.dnq_data_bytes;
    std::uint32_t q1_cap = 0;
    if (ph.has_dna2()) {
      q0_cap = Dnq::queue0_split_bytes(params_);
      q1_cap = params_.dnq_data_bytes - q0_cap;
    }

    std::uint64_t q0_entry_words = 0;
    switch (ph.kind) {
      case PhaseKind::kGatherAggregate:
        if (ph.has_dna()) q0_entry_words = ph.agg_width_words;
        break;
      case PhaseKind::kProject:
        for (const auto& b : ph.extra_inputs) q0_entry_words += b.width_words;
        break;
      case PhaseKind::kEdgeDnaAggregate:
        q0_entry_words = std::uint64_t{ph.gather.width_words} +
                         ph.gpe_words_per_entry;
        for (const auto& b : ph.extra_inputs) q0_entry_words += b.width_words;
        break;
    }
    check_queue_entry(pi, 0, q0_entry_words, q0_cap);
    if (ph.has_dna2()) {
      const std::uint64_t q1_entry_words =
          std::uint64_t{ph.agg_width_words} + ph.dna2_gpe_words;
      check_queue_entry(pi, 1, q1_entry_words, q1_cap);
    }
  }

  void check_queue_entry(int pi, int queue, std::uint64_t entry_words,
                         std::uint64_t cap_bytes) {
    if (entry_words == 0) return;
    const std::uint64_t entry_bytes = entry_words * kWordBytes;
    if (entry_bytes > cap_bytes) {
      add(LintCode::kDnqEntryTooLarge, pi,
          "DNQ virtual queue " + std::to_string(queue) + " entry (" +
              std::to_string(entry_words) + " words = " +
              std::to_string(entry_bytes) + "B) can never fit its " +
              std::to_string(cap_bytes) +
              "B capacity: guaranteed deadlock");
    } else if (entry_bytes * 2 > cap_bytes) {
      add(LintCode::kDnqLowConcurrency, pi,
          "DNQ virtual queue " + std::to_string(queue) +
              " admits only one in-flight entry (" +
              std::to_string(entry_bytes) + "B of " +
              std::to_string(cap_bytes) + "B): threads will serialize");
    }
  }

  // GV002/GV003/GV101: AGG scratchpad capacity and reduce-op legality.
  void check_agg(int pi, const PhaseSpec& ph) {
    if (!ph.has_agg()) return;
    const std::uint64_t entry_bytes =
        std::uint64_t{ph.agg_width_words} * kWordBytes;
    if (entry_bytes > params_.agg_data_bytes) {
      add(LintCode::kAggEntryTooLarge, pi,
          "AGG entry (" + std::to_string(ph.agg_width_words) + " words = " +
              std::to_string(entry_bytes) + "B) exceeds the " +
              std::to_string(params_.agg_data_bytes) +
              "B data scratchpad: guaranteed deadlock");
    } else if (entry_bytes * 2 > params_.agg_data_bytes) {
      add(LintCode::kAggLowConcurrency, pi,
          "AGG data scratchpad admits only one in-flight aggregation (" +
              std::to_string(entry_bytes) + "B of " +
              std::to_string(params_.agg_data_bytes) +
              "B): vertices will serialize");
    }
    if (!is_associative(ph.agg_op)) {
      add(LintCode::kNonAssociativeAggOp, pi,
          "agg_op is not associative; the AGG only supports associative "
          "reductions (data is aggregated in arrival order)");
    }
  }

  // GV005/GV105: matmul-chain shape compatibility and out-width rules.
  void check_dna_models(int pi, const PhaseSpec& ph) {
    if ((ph.kind == PhaseKind::kProject ||
         ph.kind == PhaseKind::kEdgeDnaAggregate) &&
        !ph.has_dna()) {
      add(LintCode::kBadDnaModel, pi,
          "phase kind enqueues DNQ entries but has no dna_shapes: the DNA "
          "can never process them");
    }
    if (ph.has_dna2() && !ph.has_dna()) {
      add(LintCode::kBadDnaModel, pi,
          "dna2_shapes set without a primary dna_shapes model");
    }
    if (ph.has_dna()) {
      check_chain(pi, "dna_shapes", ph.dna_shapes, ph.dna_out_words);
    }
    if (ph.has_dna2()) {
      check_chain(pi, "dna2_shapes", ph.dna2_shapes, ph.dna2_out_words);
    }
    if (ph.weight_bytes > 0 && !ph.has_dna()) {
      add(LintCode::kWeightsWithoutDna, pi,
          "weight_bytes > 0 but the phase has no DNA model to consume "
          "them");
    }
  }

  void check_chain(int pi, const char* field,
                   const std::vector<dataflow::MatmulShape>& chain,
                   std::uint32_t out_words) {
    for (std::size_t s = 0; s < chain.size(); ++s) {
      const auto& sh = chain[s];
      if (sh.m == 0 || sh.k == 0 || sh.n == 0) {
        add(LintCode::kBadDnaModel, pi,
            std::string(field) + "[" + std::to_string(s) +
                "] has a zero dimension (" + shape_str(sh) + ")");
        return;
      }
    }
    // Stage i+1 consumes stage i's output either directly (k chaining) or
    // as a generated k x n weight matrix (hypernetwork chaining, e.g.
    // MPNN's edge network emitting the d x d message matrix).
    for (std::size_t s = 1; s < chain.size(); ++s) {
      const auto& prev = chain[s - 1];
      const auto& sh = chain[s];
      const std::uint64_t prev_out = prev.m * prev.n;
      const bool input_chain = sh.k == prev.n;
      const bool weight_chain = sh.k * sh.n == prev_out;
      if (!input_chain && !weight_chain) {
        add(LintCode::kBadDnaModel, pi,
            std::string(field) + "[" + std::to_string(s) + "] (" +
                shape_str(sh) + ") consumes neither the output width (" +
                std::to_string(prev.n) + ") nor the full output (" +
                std::to_string(prev_out) + " words) of stage " +
                std::to_string(s - 1) + " (" + shape_str(prev) + ")");
      }
    }
    const std::uint64_t last_out = chain.back().m * chain.back().n;
    if (out_words == 0 || out_words > last_out) {
      add(LintCode::kBadDnaModel, pi,
          std::string(field) + " out_words (" + std::to_string(out_words) +
              ") must be in [1, " + std::to_string(last_out) +
              "] (the final stage's output)");
    }
  }

  static std::string shape_str(const dataflow::MatmulShape& s) {
    return std::to_string(s.m) + "x" + std::to_string(s.k) + "x" +
           std::to_string(s.n);
  }

  // GV004: region ids, widths, indexed extents, width consistency. All
  // extents derive from the program's own graph-layout table, so this
  // check runs with or without a bound dataset.
  void check_buffers(int pi, const PhaseSpec& ph) {
    const std::uint64_t n_vertices = prog_.total_vertices();
    const std::uint64_t n_graphs = prog_.graphs.size();
    std::uint64_t n_sym_edges = 0;
    for (const auto& g : prog_.graphs) n_sym_edges += g.num_edges;

    const bool reads_gather = ph.kind != PhaseKind::kProject;
    if (reads_gather) {
      check_buffer_extent(pi, "gather", ph.gather, n_vertices);
    }
    for (std::size_t bi = 0; bi < ph.extra_inputs.size(); ++bi) {
      check_buffer_extent(
          pi, "extra_inputs[" + std::to_string(bi) + "]",
          ph.extra_inputs[bi],
          ph.extra_inputs_per_edge ? n_sym_edges : n_vertices);
    }
    check_buffer_extent(pi, "output", ph.output,
                        ph.per_graph ? n_graphs : n_vertices);

    // The width each completed work item actually produces must match the
    // output buffer's stride, else every vertex after the first lands at
    // the wrong address.
    std::uint32_t produced = ph.agg_width_words;
    if (ph.has_dna2()) {
      produced = ph.dna2_out_words;
    } else if (ph.has_dna()) {
      produced = ph.dna_out_words;
    }
    if (produced != ph.output.width_words) {
      add(LintCode::kBadBufferRef, pi,
          "output width (" + std::to_string(ph.output.width_words) +
              " words) != produced width (" + std::to_string(produced) +
              " words)");
    }
    // Contribution accounting is in units of the vectors that arrive:
    // gather phases count gather-width vectors into agg-width entries,
    // edge phases count DNA results into agg-width entries. A mismatch
    // miscounts expected words, so the entry completes early or never.
    if (ph.kind == PhaseKind::kGatherAggregate && ph.has_agg() &&
        ph.gather.width_words != ph.agg_width_words) {
      add(LintCode::kBadBufferRef, pi,
          "gather width (" + std::to_string(ph.gather.width_words) +
              " words) != agg_width_words (" +
              std::to_string(ph.agg_width_words) +
              "): AGG word accounting would never complete");
    }
    if (ph.kind == PhaseKind::kEdgeDnaAggregate && ph.has_agg() &&
        ph.has_dna() && ph.dna_out_words != ph.agg_width_words) {
      add(LintCode::kBadBufferRef, pi,
          "dna_out_words (" + std::to_string(ph.dna_out_words) +
              ") != agg_width_words (" + std::to_string(ph.agg_width_words) +
              "): each DNA result must be one aggregation vector");
    }
    if (ph.weight_bytes > 0) {
      if (ph.weight_region >= prog_.memmap.num_regions()) {
        add(LintCode::kBadBufferRef, pi,
            "weight_region id " + std::to_string(ph.weight_region) +
                " out of range");
      } else if (prog_.memmap.region(ph.weight_region).bytes <
                 ph.weight_bytes) {
        add(LintCode::kBadBufferRef, pi,
            "weight region '" + prog_.memmap.region(ph.weight_region).name +
                "' (" +
                std::to_string(prog_.memmap.region(ph.weight_region).bytes) +
                "B) smaller than weight_bytes (" +
                std::to_string(ph.weight_bytes) + "B)");
      }
    }
  }

  void check_buffer_extent(int pi, const std::string& what,
                           const BufferRef& b, std::uint64_t count) {
    if (b.region >= prog_.memmap.num_regions()) {
      add(LintCode::kBadBufferRef, pi,
          what + " region id " + std::to_string(b.region) + " out of range");
      return;
    }
    if (b.width_words == 0) {
      add(LintCode::kBadBufferRef, pi, what + " has zero width");
      return;
    }
    const Region& r = prog_.memmap.region(b.region);
    const std::uint64_t need = count * b.width_words * kWordBytes;
    if (r.bytes < need) {
      add(LintCode::kBadBufferRef, pi,
          what + " region '" + r.name + "' (" + std::to_string(r.bytes) +
              "B) too small for " + std::to_string(count) + " x " +
              std::to_string(b.width_words) + " words (" +
              std::to_string(need) + "B)");
    }
  }

  // GV006/GV104: expected_contribs vs an independent walk-tree count. The
  // size check is layout-derived; the truth comparison needs the bound
  // dataset's topology and is skipped (GV107) without one.
  void check_contribs(int pi, const PhaseSpec& ph) {
    if (ph.walk_len <= 1) {
      if (ph.expected_contribs.empty() || ds_ == nullptr) return;
      // A 1-hop phase ignores expected_contribs (the runtime counts direct
      // degrees), so redundant-but-correct counts are harmless — PGNN's
      // first A^1 hop ships them. Warn only when they disagree with what
      // the runtime will actually expect.
      if (!contribs_match_degrees(ph)) {
        add(LintCode::kUnusedExpectedContribs, pi,
            "expected_contribs supplied but walk_len == 1: the runtime "
            "uses direct degrees, which disagree with the supplied "
            "counts");
      }
      return;
    }
    if (ph.kind != PhaseKind::kGatherAggregate) return;  // GV009 covers it
    const std::uint64_t n_vertices = prog_.total_vertices();
    if (ph.expected_contribs.size() != n_vertices) {
      add(LintCode::kBadExpectedContribs, pi,
          "expected_contribs has " +
              std::to_string(ph.expected_contribs.size()) +
              " entries for " + std::to_string(n_vertices) + " vertices");
      return;
    }
    if (ds_ == nullptr) return;
    const auto truth = recompute_walk_counts(*ds_, ph.walk_len);
    if (!truth.has_value()) {
      add(LintCode::kBadExpectedContribs, pi,
          "walk tree of length " + std::to_string(ph.walk_len) +
              " too large to enumerate");
      return;
    }
    for (std::uint64_t v = 0; v < n_vertices; ++v) {
      if (ph.expected_contribs[v] != (*truth)[v]) {
        add(LintCode::kBadExpectedContribs, pi,
            "expected_contribs[" + std::to_string(v) + "] = " +
                std::to_string(ph.expected_contribs[v]) +
                " but the walk tree has " + std::to_string((*truth)[v]) +
                " walks of length " + std::to_string(ph.walk_len));
        return;  // first mismatch is enough
      }
    }
  }

  [[nodiscard]] bool contribs_match_degrees(const PhaseSpec& ph) const {
    const std::uint64_t self = ph.include_self ? 1 : 0;
    std::uint64_t v = 0;
    for (const auto& g : ds_->undirected) {
      for (NodeId lv = 0; lv < g.num_nodes(); ++lv, ++v) {
        if (v >= ph.expected_contribs.size() ||
            ph.expected_contribs[v] != g.out_degree(lv) + self) {
          return false;
        }
      }
    }
    return v == ph.expected_contribs.size();
  }

  // ---- GV108: NoC bisection vs aggregate memory bandwidth ----
  //
  // A W x H mesh's bisection (cut across the longer dimension) is crossed
  // by min(W, H) bidirectional 64B links. Memory pages are interleaved
  // uniformly across the controllers, so with tiles spread over the mesh
  // roughly half of all memory traffic crosses the bisection. When half
  // the aggregate memory bandwidth (in bytes per NoC cycle) exceeds what
  // those links can carry, every data-moving phase is NoC-bound: the
  // config cannot reach its nominal memory bandwidth no matter the
  // program. Estimated per-phase traffic (gather reads from the layout's
  // contribution counts, extra inputs, output writes, weight streams)
  // identifies which phases actually move data; zero-traffic phases are
  // exempt.
  void check_noc_bisection() {
    if (cfg_ == nullptr) return;
    const double bisection_bpc =
        2.0 * std::min(cfg_->mesh_width, cfg_->mesh_height) * kFlitBytes;
    const double mem_bpc =
        cfg_->mem_params.bandwidth.bytes_per_cycle(cfg_->noc_clock) *
        cfg_->num_mem_nodes();
    const double crossing_bpc = mem_bpc / 2.0;
    if (crossing_bpc <= bisection_bpc) return;
    for (std::size_t i = 0; i < prog_.phases.size(); ++i) {
      const std::uint64_t traffic = phase_traffic_bytes(prog_.phases[i]);
      if (traffic == 0) continue;
      std::ostringstream os;
      os << "estimated phase traffic (" << traffic
         << "B) at aggregate memory bandwidth (" << mem_bpc
         << " B/cycle) implies ~" << crossing_bpc
         << " B/cycle crossing the " << cfg_->mesh_width << "x"
         << cfg_->mesh_height << " mesh bisection, which carries at most "
         << bisection_bpc << " B/cycle: the NoC, not memory, bounds this "
         << "phase";
      add(LintCode::kNocBisectionSaturated, static_cast<int>(i), os.str());
    }
  }

  /// Rough bytes-moved estimate for one phase: gathered neighbor vectors,
  /// per-vertex/per-edge extra inputs, the output buffer, and the weight
  /// stream. All derived from the program's own layout table.
  [[nodiscard]] std::uint64_t phase_traffic_bytes(const PhaseSpec& ph) const {
    const std::uint64_t n_vertices = prog_.total_vertices();
    const std::uint64_t n_graphs = prog_.graphs.size();
    std::uint64_t n_sym_edges = 0;
    for (const auto& g : prog_.graphs) n_sym_edges += g.num_edges;

    std::uint64_t words = 0;
    if (ph.kind != PhaseKind::kProject) {
      std::uint64_t contribs = n_sym_edges;
      if (!ph.expected_contribs.empty()) {
        contribs = 0;
        for (const std::uint64_t c : ph.expected_contribs) contribs += c;
      } else if (ph.include_self) {
        contribs += n_vertices;
      }
      words += contribs * ph.gather.width_words;
    }
    for (const auto& b : ph.extra_inputs) {
      words += (ph.extra_inputs_per_edge ? n_sym_edges : n_vertices) *
               b.width_words;
    }
    words += (ph.per_graph ? n_graphs : n_vertices) * ph.output.width_words;
    return words * kWordBytes + ph.weight_bytes;
  }

  // ---- GV008/GV103/GV106: cross-phase def-use dataflow ----
  void check_dataflow() {
    const std::size_t n = prog_.memmap.num_regions();
    std::vector<bool> written(n, false);
    for (RegionId id = 0; id < n; ++id) {
      written[id] = prog_.memmap.region(id).preloaded;
    }
    // last_read[r] = last phase index that reads region r (-1 = never).
    std::vector<int> last_read(n, -1);
    for (std::size_t i = 0; i < prog_.phases.size(); ++i) {
      const PhaseSpec& ph = prog_.phases[i];
      for (const auto& b : reads_of(ph)) {
        if (b >= n) continue;  // GV004 already reported
        last_read[b] = static_cast<int>(i);
        if (!written[b]) {
          add(LintCode::kReadBeforeWrite, static_cast<int>(i),
              "reads region '" + prog_.memmap.region(b).name +
                  "' before any phase writes it");
        }
      }
      if (ph.output.region < n) {
        if (prog_.memmap.region(ph.output.region).preloaded) {
          add(LintCode::kOutputClobbersPreload, static_cast<int>(i),
              "output overwrites preloaded region '" +
                  prog_.memmap.region(ph.output.region).name + "'");
        }
        written[ph.output.region] = true;
      }
    }
    // Dead stores: an output no later phase reads, unless it is the final
    // phase's (the program result).
    for (std::size_t i = 0; i + 1 < prog_.phases.size(); ++i) {
      const RegionId out = prog_.phases[i].output.region;
      if (out >= n) continue;
      if (last_read[out] <= static_cast<int>(i)) {
        add(LintCode::kDeadStore, static_cast<int>(i),
            "output region '" + prog_.memmap.region(out).name +
                "' is never read by a later phase");
      }
    }
  }

  [[nodiscard]] std::vector<RegionId> reads_of(const PhaseSpec& ph) const {
    std::vector<RegionId> r;
    if (ph.kind != PhaseKind::kProject) r.push_back(ph.gather.region);
    for (const auto& b : ph.extra_inputs) r.push_back(b.region);
    return r;
  }

  static std::string to_hex(std::uint64_t v) {
    std::ostringstream os;
    os << std::hex << v;
    return os.str();
  }

  // ---- GV201..GV204: static-model performance lints ----
  // Only meaningful with a full config bound, and only on programs with no
  // error diagnostics (the analytic model's numbers are nonsense for a
  // program that cannot execute).
  void check_perf_model() {
    if (cfg_ == nullptr) return;
    if (std::any_of(report_.diagnostics.begin(), report_.diagnostics.end(),
                    [](const VerifyDiagnostic& d) {
                      return d.severity == Severity::kError;
                    })) {
      return;
    }
    AnalysisOptions options;
    options.dataset = ds_;
    options.partition = partition_;
    for (const PerfDiagnostic& d : perf_lints(prog_, *cfg_, options)) {
      add(d.code, d.phase, d.message);
    }
  }

  const CompiledProgram& prog_;
  const TileParams& params_;
  const graph::Dataset* ds_;
  const AcceleratorConfig* cfg_;
  graph::PartitionPolicy partition_;
  VerifyReport report_;
  bool split_valid_ = true;
};

}  // namespace

VerifyReport verify_program(const CompiledProgram& prog,
                            const TileParams& params,
                            const graph::Dataset* ds,
                            const AcceleratorConfig* cfg,
                            graph::PartitionPolicy partition) {
  return Linter(prog, params, ds, cfg, partition).run();
}

std::size_t VerifyReport::num_errors() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const VerifyDiagnostic& d) {
                      return d.severity == Severity::kError;
                    }));
}

std::size_t VerifyReport::num_warnings() const {
  return diagnostics.size() - num_errors();
}

bool VerifyReport::has(LintCode code) const {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [code](const VerifyDiagnostic& d) { return d.code == code; });
}

void VerifyReport::print(std::ostream& os) const {
  os << "verify: " << program_name << ": " << num_errors() << " error(s), "
     << num_warnings() << " warning(s)\n";
  for (const auto& d : diagnostics) {
    os << "  " << lint_code_name(d.code) << ' '
       << (d.severity == Severity::kError ? "error" : "warning");
    if (d.phase >= 0) {
      os << " phase " << d.phase << " (" << d.phase_name << ")";
    }
    os << ": " << d.message << '\n';
  }
}

std::string VerifyReport::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

ProgramVerifyError::ProgramVerifyError(VerifyReport report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

VerifyReport verify_or_throw(const CompiledProgram& prog,
                             const TileParams& params,
                             const graph::Dataset* ds,
                             const AcceleratorConfig* cfg,
                             graph::PartitionPolicy partition) {
  VerifyReport report = verify_program(prog, params, ds, cfg, partition);
  if (!report.ok()) throw ProgramVerifyError(std::move(report));
  return report;
}

namespace {

constexpr LintCodeInfo kLintTable[] = {
    {LintCode::kDnqEntryTooLarge, Severity::kError, "GV001",
     "DNQ entry can never fit its virtual queue (guaranteed deadlock)"},
    {LintCode::kAggEntryTooLarge, Severity::kError, "GV002",
     "AGG entry exceeds the data scratchpad (guaranteed deadlock)"},
    {LintCode::kNonAssociativeAggOp, Severity::kError, "GV003",
     "non-associative AGG reduce op"},
    {LintCode::kBadBufferRef, Severity::kError, "GV004",
     "bad buffer reference (region id, width, extent, or stride mismatch)"},
    {LintCode::kBadDnaModel, Severity::kError, "GV005",
     "bad DNA model (matmul chain, out_words, or missing model)"},
    {LintCode::kBadExpectedContribs, Severity::kError, "GV006",
     "expected_contribs inconsistent with the walk tree"},
    {LintCode::kBadMemoryMap, Severity::kError, "GV007",
     "malformed MemoryMap (overlap, misalignment, overflow)"},
    {LintCode::kReadBeforeWrite, Severity::kError, "GV008",
     "buffer read before any phase writes it"},
    {LintCode::kIllegalPhaseCombo, Severity::kError, "GV009",
     "illegal phase-field combination"},
    {LintCode::kBadTileParams, Severity::kError, "GV010",
     "unusable TileParams (zero resources or bad queue split)"},
    {LintCode::kBadGraphLayout, Severity::kError, "GV011",
     "malformed graph-layout table (offsets, counts, or topology regions)"},
    {LintCode::kDatasetMismatch, Severity::kError, "GV012",
     "graph-layout table disagrees with the bound dataset"},
    {LintCode::kAggLowConcurrency, Severity::kWarning, "GV101",
     "AGG scratchpad admits < 2 concurrent aggregations"},
    {LintCode::kDnqLowConcurrency, Severity::kWarning, "GV102",
     "DNQ virtual queue admits < 2 concurrent entries"},
    {LintCode::kDeadStore, Severity::kWarning, "GV103",
     "phase output never read and not the program result"},
    {LintCode::kUnusedExpectedContribs, Severity::kWarning, "GV104",
     "expected_contribs supplied but unused (walk_len == 1)"},
    {LintCode::kWeightsWithoutDna, Severity::kWarning, "GV105",
     "weight_bytes > 0 on a phase with no DNA model"},
    {LintCode::kOutputClobbersPreload, Severity::kWarning, "GV106",
     "phase output overwrites a preloaded region"},
    {LintCode::kNoDatasetBound, Severity::kWarning, "GV107",
     "no dataset bound: topology-dependent checks skipped"},
    {LintCode::kNocBisectionSaturated, Severity::kWarning, "GV108",
     "estimated NoC traffic saturates the mesh bisection bandwidth"},
    {LintCode::kReuseDistanceThrash, Severity::kWarning, "GV201",
     "scratchpad admits far fewer concurrent entries than GPE threads "
     "(reuse-distance thrash: most threads stall on allocation)"},
    {LintCode::kQueueSplitStarved, Severity::kWarning, "GV202",
     "DNQ virtual-queue split starves one queue; another split admits "
     ">= 2 entries in both"},
    {LintCode::kBankCamping, Severity::kWarning, "GV203",
     "predicted bank camping: page/bank interleave maps each controller's "
     "traffic onto a strict subset of its banks"},
    {LintCode::kPartitionImbalance, Severity::kWarning, "GV204",
     "modeled partition concentrates per-tile load (max/mean >= 1.5)"},
};

}  // namespace

const char* lint_code_name(LintCode code) {
  for (const auto& e : kLintTable) {
    if (e.code == code) return e.name;
  }
  return "GV???";
}

const char* lint_code_summary(LintCode code) {
  for (const auto& e : kLintTable) {
    if (e.code == code) return e.summary;
  }
  return "unknown lint code";
}

std::vector<LintCodeInfo> lint_code_table() {
  return {std::begin(kLintTable), std::end(kLintTable)};
}

const char* lint_family_name(LintFamily family) {
  switch (family) {
    case LintFamily::kError: return "errors";
    case LintFamily::kWarning: return "warnings";
    case LintFamily::kPerf: return "perf";
  }
  return "unknown";
}

}  // namespace gnna::accel
