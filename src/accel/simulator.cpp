#include "accel/simulator.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "accel/analysis.hpp"
#include "accel/report.hpp"
#include "accel/verify.hpp"

namespace gnna::accel {

AcceleratorSim::AcceleratorSim(AcceleratorConfig cfg,
                               graph::PartitionPolicy partition)
    : cfg_(std::move(cfg)), partition_(partition) {}

void AcceleratorSim::build() {
  net_ = std::make_unique<noc::MeshNetwork>(cfg_.mesh_width, cfg_.mesh_height,
                                            cfg_.noc_params);

  // Register endpoints: three per tile (GPE, AGG, DNQ/DNA — the 7-port
  // crossbar), one per memory node.
  struct TileEps {
    EndpointId gpe, agg, dnq;
  };
  std::vector<TileEps> tile_eps;
  tile_eps.reserve(cfg_.tile_coords.size());
  ep_to_tile_.clear();
  for (const auto& [x, y] : cfg_.tile_coords) {
    TileEps eps{};
    eps.gpe = net_->add_endpoint(x, y);
    eps.agg = net_->add_endpoint(x, y);
    eps.dnq = net_->add_endpoint(x, y);
    const auto tile = static_cast<std::uint32_t>(tile_eps.size());
    ep_to_tile_.insert(ep_to_tile_.end(), 3, tile);
    tile_eps.push_back(eps);
  }
  std::vector<EndpointId> mem_eps;
  mem_eps.reserve(cfg_.mem_coords.size());
  for (const auto& [x, y] : cfg_.mem_coords) {
    mem_eps.push_back(net_->add_endpoint(x, y));
    ep_to_tile_.push_back(trace::Attribution::kNoTile);
  }
  net_->finalize();

  addr_map_ = std::make_unique<AddressMap>(mem_eps, cfg_.interleave_bytes);
  for (const auto& eps : tile_eps) {
    tiles_.push_back(std::make_unique<Tile>(cfg_, *net_, eps.gpe, eps.agg,
                                            eps.dnq, *addr_map_));
  }
  for (const EndpointId ep : mem_eps) {
    mems_.push_back(std::make_unique<mem::MemoryController>(
        *net_, ep, cfg_.mem_params, cfg_.noc_clock));
  }
}

void AcceleratorSim::attach_tracers() {
  sink_ = trace_.sink;
  if (trace_.profile) {
    profiler_ = std::make_unique<trace::Profiler>();
  }
  if (trace_.attribution) {
    attribution_ = std::make_unique<trace::Attribution>(
        static_cast<std::uint32_t>(tiles_.size()), ep_to_tile_,
        trace_.attribution_top_k);
  }
  // Compose whatever is attached; a single consumer skips the tee.
  std::vector<trace::TraceSink*> sinks;
  if (sink_ != nullptr) sinks.push_back(sink_);
  if (profiler_) sinks.push_back(profiler_.get());
  if (attribution_) sinks.push_back(attribution_.get());
  if (sinks.empty()) return;
  if (sinks.size() == 1) {
    sink_ = sinks.front();
  } else {
    for (trace::TraceSink* s : sinks) tee_.add(s);
    sink_ = &tee_;
  }
  const Cycle* clock = net_->now_ptr();
  net_->set_tracer({sink_, clock, trace::Category::kNoc, 0});
  for (std::size_t i = 0; i < mems_.size(); ++i) {
    mems_[i]->set_tracer({sink_, clock, trace::Category::kMem,
                          static_cast<std::uint32_t>(i)});
  }
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    tiles_[i]->set_tracing(sink_, static_cast<std::uint32_t>(i));
  }
}

void AcceleratorSim::begin_sampling() {
  if (trace_.sample_every == 0) return;
  next_sample_ = trace_.sample_every;
  last_sample_cycle_ = 0;
  prev_gpe_busy_ = prev_dna_busy_ = prev_agg_busy_ = 0.0;
  prev_mem_bytes_.assign(mems_.size(), 0);
  if (trace_.sample_out != nullptr) {
    *trace_.sample_out << sample_csv_header(mems_.size()) << '\n';
  }
}

void AcceleratorSim::maybe_sample(const std::string& phase_name) {
  if (trace_.sample_every == 0 || net_->now() < next_sample_) return;
  const Cycle now = net_->now();
  const Cycle window = now - last_sample_cycle_;
  last_sample_cycle_ = now;
  next_sample_ = now + trace_.sample_every;

  double gpe_busy = 0.0;
  double dna_busy = 0.0;
  double agg_busy = 0.0;
  std::uint32_t dnq_live = 0;
  std::uint32_t agg_live = 0;
  for (const auto& t : tiles_) {
    gpe_busy += t->gpe().stats().busy_cycles;
    dna_busy += t->dna().stats().busy_cycles;
    agg_busy += t->agg().stats().busy_cycles;
    dnq_live += t->dnq().live_entries();
    agg_live += t->agg().live_entries();
  }
  const double denom =
      static_cast<double>(window) * static_cast<double>(tiles_.size());
  const double gpe_frac = denom > 0.0 ? (gpe_busy - prev_gpe_busy_) / denom : 0.0;
  const double dna_frac = denom > 0.0 ? (dna_busy - prev_dna_busy_) / denom : 0.0;
  const double agg_frac = denom > 0.0 ? (agg_busy - prev_agg_busy_) / denom : 0.0;
  prev_gpe_busy_ = gpe_busy;
  prev_dna_busy_ = dna_busy;
  prev_agg_busy_ = agg_busy;

  std::size_t mem_depth = 0;
  for (const auto& m : mems_) mem_depth += m->queue_depth();
  const std::size_t inflight = net_->inflight_packets();

  const double window_s =
      cfg_.noc_clock.cycles_to_seconds(static_cast<double>(window));
  std::vector<double> mem_gbps(mems_.size(), 0.0);
  double total_gbps = 0.0;
  for (std::size_t i = 0; i < mems_.size(); ++i) {
    const std::uint64_t served = mems_[i]->stats().bytes_served.value();
    const std::uint64_t delta = served - prev_mem_bytes_[i];
    prev_mem_bytes_[i] = served;
    mem_gbps[i] =
        window_s > 0.0 ? static_cast<double>(delta) / window_s / 1e9 : 0.0;
    total_gbps += mem_gbps[i];
  }

  if (trace_.sample_out != nullptr) {
    // Assemble the row first and emit it with one stream write, so rows
    // stay intact even if several runs share the stream.
    std::ostringstream row;
    row << now << ',' << phase_name << ',' << gpe_frac << ',' << dna_frac
        << ',' << agg_frac << ',' << dnq_live << ',' << agg_live << ','
        << mem_depth << ',' << inflight << ',' << total_gbps;
    for (const double g : mem_gbps) row << ',' << g;
    row << '\n';
    *trace_.sample_out << row.str();
  }
  if (sink_ != nullptr) {
    const auto at = static_cast<double>(now);
    sink_->counter(trace::Category::kGpe, 0, "busy_frac", at, gpe_frac);
    sink_->counter(trace::Category::kDna, 0, "busy_frac", at, dna_frac);
    sink_->counter(trace::Category::kAgg, 0, "busy_frac", at, agg_frac);
    sink_->counter(trace::Category::kDnq, 0, "live_entries", at,
                   static_cast<double>(dnq_live));
    sink_->counter(trace::Category::kNoc, 0, "inflight_packets", at,
                   static_cast<double>(inflight));
    sink_->counter(trace::Category::kMem, 0, "queue_depth", at,
                   static_cast<double>(mem_depth));
    sink_->counter(trace::Category::kMem, 0, "total_gbps", at, total_gbps);
  }
}

std::string AcceleratorSim::deadlock_report(const std::string& phase) const {
  std::ostringstream os;
  os << "=== deadlock diagnostics (phase '" << phase << "', cycle "
     << net_->now() << ") ===\n";
  for (std::size_t i = 0; i < tiles_.size(); ++i) {
    os << "tile " << i << (tiles_[i]->idle() ? " [idle]" : " [BUSY]") << '\n';
    tiles_[i]->dump_state(os);
  }
  for (std::size_t i = 0; i < mems_.size(); ++i) {
    os << "mem " << i << (mems_[i]->idle() ? " [idle]" : " [BUSY]") << '\n';
    mems_[i]->dump_state(os);
  }
  net_->dump_state(os);
  return os.str();
}

bool AcceleratorSim::everything_idle() const {
  for (const auto& t : tiles_) {
    if (!t->idle()) return false;
  }
  for (const auto& m : mems_) {
    if (!m->idle()) return false;
  }
  return net_->idle();
}

std::uint64_t AcceleratorSim::progress_signature() const {
  std::uint64_t sig = net_->stats().packets_sent.value() +
                      net_->stats().packets_delivered.value();
  for (const auto& t : tiles_) {
    sig += t->gpe().stats().actions.value();
    sig += t->dna().stats().entries_processed.value();
    sig += t->agg().stats().contributions.value();
  }
  return sig;
}

RunStats AcceleratorSim::run(const CompiledProgram& prog,
                             const graph::Dataset& ds) {
  if (used_) throw std::logic_error("AcceleratorSim::run: already used");
  used_ = true;
  // Static verification before any hardware is built: a program that
  // cannot execute (oversized entries, bad models, unwritten buffers)
  // fails here with structured diagnostics instead of deadlocking into
  // the watchdog. The bound dataset enables the topology-dependent
  // checks (walk-tree recomputation, layout/dataset agreement).
  if (verify_) verify_or_throw(prog, cfg_.tile_params, &ds, &cfg_, partition_);
  build();
  attach_tracers();
  begin_sampling();

  const auto num_tiles = static_cast<std::uint32_t>(tiles_.size());

  RunStats rs;
  rs.config_name = cfg_.name;
  rs.program_name = prog.name;
  rs.core_clock_ghz = cfg_.core_clock.ghz();

  std::uint64_t mem_served_before_phase = 0;

  for (const PhaseSpec& phase : prog.phases) {
    // Work distribution (the shared in-memory work queues of Algorithm 1,
    // realized as a static round-robin split across GPEs).
    const std::uint32_t num_items =
        phase.per_graph ? static_cast<std::uint32_t>(prog.graphs.size())
                        : prog.total_vertices();
    std::vector<std::vector<std::uint32_t>> work(num_tiles);
    if (!phase.per_graph && work_owners_.size() == num_items) {
      // Explicit profile-guided assignment: owners[v] names the tile.
      for (std::uint32_t i = 0; i < num_items; ++i) {
        work[work_owners_[i] % num_tiles].push_back(i);
      }
    } else if (partition_ == graph::PartitionPolicy::kBlock) {
      const std::uint32_t per = (num_items + num_tiles - 1) / num_tiles;
      for (std::uint32_t i = 0; i < num_items; ++i) {
        work[per == 0 ? 0 : i / per].push_back(i);
      }
    } else {
      for (std::uint32_t i = 0; i < num_items; ++i) {
        work[i % num_tiles].push_back(i);
      }
    }

    const Cycle phase_start = net_->now();
    // Phase markers: pure observation (no tick happens here), so enabling
    // them cannot move a single cycle — the goldens pin this.
    if (sink_ != nullptr) {
      sink_->phase_begin(phase.name.c_str(),
                         static_cast<double>(phase_start));
    }
    for (std::uint32_t t = 0; t < num_tiles; ++t) {
      tiles_[t]->begin_phase(prog, ds, phase, std::move(work[t]));
    }

    // Run to the global barrier.
    std::uint64_t last_sig = progress_signature();
    Cycle last_progress = net_->now();
    while (!everything_idle()) {
      for (auto& t : tiles_) t->tick();
      for (auto& m : mems_) m->tick();
      net_->tick();
      if (trace_.sample_every != 0) maybe_sample(phase.name);

      const std::uint64_t sig = progress_signature();
      if (sig != last_sig) {
        last_sig = sig;
        last_progress = net_->now();
      } else if (net_->now() - last_progress > watchdog_cycles_) {
        const std::string report = deadlock_report(phase.name);
        if (!trace_.deadlock_report_path.empty()) {
          std::ofstream f(trace_.deadlock_report_path);
          f << report;
        }
        throw std::runtime_error(
            "AcceleratorSim: no progress in phase " + phase.name + " for " +
            std::to_string(watchdog_cycles_) + " cycles (deadlock?)\n" +
            report);
      }
    }

    if (sink_ != nullptr) {
      sink_->phase_end(phase.name.c_str(), static_cast<double>(net_->now()));
    }

    PhaseStats ps;
    ps.name = phase.name;
    ps.cycles = net_->now() - phase_start;
    std::uint64_t served = 0;
    for (const auto& m : mems_) served += m->stats().bytes_served.value();
    ps.mem_bytes_served = served - mem_served_before_phase;
    mem_served_before_phase = served;
    ps.tasks = num_items;
    rs.phases.push_back(std::move(ps));
  }

  // Aggregate statistics.
  rs.cycles = net_->now();
  rs.seconds = cfg_.noc_clock.cycles_to_seconds(static_cast<double>(rs.cycles));
  rs.millis = rs.seconds * 1e3;

  rs.mem_scheduler = mem::mem_scheduler_name(cfg_.mem_params.scheduler);
  double occupancy_weight = 0.0;
  double occupancy_sum = 0.0;
  for (std::size_t mi = 0; mi < mems_.size(); ++mi) {
    const auto& m = mems_[mi];
    rs.mem_bytes_requested += m->stats().bytes_requested.value();
    rs.mem_bytes_served += m->stats().bytes_served.value();
    rs.mem_row_hits += m->row_hits();
    rs.mem_row_misses += m->row_misses();
    occupancy_sum += m->stats().queue_depth.sum();
    occupancy_weight += m->stats().queue_depth.weight();
    rs.mem_queue_occupancy_max =
        std::max(rs.mem_queue_occupancy_max, m->stats().queue_depth.max());
    for (std::size_t b = 0; b < m->stats().banks.size(); ++b) {
      const mem::BankStats& bs = m->stats().banks[b];
      RunStats::MemBankStats out;
      out.mem = static_cast<std::uint32_t>(mi);
      out.bank = static_cast<std::uint32_t>(b);
      out.row_hits = bs.row_hits.value();
      out.row_misses = bs.row_misses.value();
      out.busy_frac = rs.cycles > 0
                          ? bs.busy_cycles / static_cast<double>(rs.cycles)
                          : 0.0;
      rs.mem_banks.push_back(out);
    }
  }
  const std::uint64_t row_total = rs.mem_row_hits + rs.mem_row_misses;
  rs.mem_row_hit_rate =
      row_total > 0 ? static_cast<double>(rs.mem_row_hits) /
                          static_cast<double>(row_total)
                    : 0.0;
  rs.mem_queue_occupancy =
      occupancy_weight > 0.0 ? occupancy_sum / occupancy_weight : 0.0;
  rs.mean_bandwidth_gbps =
      rs.seconds > 0.0
          ? static_cast<double>(rs.mem_bytes_served) / rs.seconds / 1e9
          : 0.0;
  const double peak_gbps = cfg_.total_mem_bandwidth_gbps();
  rs.bandwidth_utilization =
      peak_gbps > 0.0 ? rs.mean_bandwidth_gbps / peak_gbps : 0.0;

  const double denom = static_cast<double>(rs.cycles) * num_tiles;
  double dna_busy = 0.0;
  double gpe_busy = 0.0;
  double agg_busy = 0.0;
  for (const auto& t : tiles_) {
    dna_busy += t->dna().stats().busy_cycles;
    gpe_busy += t->gpe().stats().busy_cycles;
    agg_busy += t->agg().stats().busy_cycles;
    rs.tasks_completed += t->gpe().stats().tasks_completed.value();
    rs.dnq_queue_switches += t->dnq().stats().queue_switches.value();
    rs.alloc_stalls += t->gpe().stats().alloc_stalls.value();
    rs.agg_words_reduced += t->agg().stats().words_reduced.value();
    rs.dna_macs += t->dna().stats().macs.value();
    rs.gpe_actions += t->gpe().stats().actions.value();
    rs.dnq_words += t->dnq().stats().enqueued_words.value();
  }
  rs.noc_flit_hops = net_->stats().flit_hops.value();
  rs.noc_flits_delivered = net_->stats().flits_delivered.value();
  if (denom > 0.0) {
    rs.dna_utilization = dna_busy / denom;
    rs.gpe_utilization = gpe_busy / denom;
    rs.agg_utilization = agg_busy / denom;
  }
  rs.packets_delivered = net_->stats().packets_delivered.value();
  rs.avg_packet_latency = net_->stats().packet_latency.mean();
  if (profiler_) {
    rs.profile =
        std::make_shared<const trace::ProfileReport>(profiler_->report());
  }
  if (attribution_) {
    rs.attribution = std::make_shared<const trace::AttributionReport>(
        attribution_->report());
  }
  {
    // Static shadow model of the run just measured (purely analytic — no
    // simulator state involved, so cycle counts cannot move).
    AnalysisOptions aopt;
    aopt.dataset = &ds;
    aopt.partition = partition_;
    rs.static_model = std::make_shared<const ProgramAnalysis>(
        analyze_program(prog, cfg_, aopt));
  }
  return rs;
}

}  // namespace gnna::accel
