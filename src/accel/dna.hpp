// The DNN Accelerator (DNA) — Fig 5.
//
// An Eyeriss-like spatial array (Table I) behind a latency-throughput
// model: each DNQ entry occupies the array for an initiation interval
// derived from the NN-Dataflow-like mapper, and its result emerges a fixed
// pipeline latency later, combined with its destination into NoC flits.
// Per-phase weights are streamed from memory at configuration time; the
// array stalls until they arrive.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "accel/addrmap.hpp"
#include "accel/config.hpp"
#include "accel/dnq.hpp"
#include "common/stats.hpp"
#include "dataflow/spatial.hpp"
#include "noc/network.hpp"
#include "trace/trace.hpp"

namespace gnna::accel {

/// Timing of one DNN model resident on the DNA (one per virtual queue).
struct DnaModelTiming {
  double ii_core_cycles = 0.0;    // array-busy time per entry
  std::uint32_t out_words = 0;    // result width
  std::uint64_t macs_per_entry = 0;  // for energy accounting
};

struct DnaStats {
  Counter entries_processed;
  Counter results_sent;
  Counter macs;              // useful MACs executed (energy accounting)
  double busy_cycles = 0.0;  // NoC cycles the array was busy
};

class Dna {
 public:
  Dna(const TileParams& params, noc::MeshNetwork& net, EndpointId endpoint,
      const AddressMap& addr_map, double core_scale);

  /// Phase configuration: per-queue model timings and the weight bytes
  /// that must stream in before processing starts.
  void configure(std::vector<DnaModelTiming> models,
                 std::uint64_t weight_bytes);

  /// Weight-fill data arrived (kMemReadResp tagged kWeightTag).
  void on_weight_data(std::uint64_t bytes);

  /// Pulls ready entries from `dnq`, advances the pipeline, emits results.
  void tick(Dnq& dnq);

  [[nodiscard]] bool idle() const {
    return results_.empty() && !busy_ && weights_pending_ == 0;
  }
  [[nodiscard]] bool weights_loaded() const { return weights_pending_ == 0; }
  [[nodiscard]] const DnaStats& stats() const { return stats_; }

  /// Attach an event tracer (per-entry array occupancy). Disabled by
  /// default.
  void set_tracer(trace::Tracer t) { tracer_ = t; }

  /// Deadlock diagnostics: array/pipeline/weight-stream state.
  void dump_state(std::ostream& os) const;

 private:
  struct PendingResult {
    double ready_at = 0.0;
    std::uint32_t out_words = 0;
    std::uint32_t owner = noc::kNoOwner;  // attribution only
    Dest dest;
  };

  void emit(const PendingResult& r);

  TileParams params_;
  noc::MeshNetwork& net_;
  EndpointId endpoint_;
  const AddressMap& addr_map_;
  double scale_;

  std::vector<DnaModelTiming> models_;
  std::uint64_t weights_pending_ = 0;
  double array_free_at_ = 0.0;
  double idle_since_ = 0.0;  // for the DNQ lazy-switch policy
  bool busy_ = false;
  std::deque<PendingResult> results_;  // ordered by ready_at
  DnaStats stats_;
  trace::Tracer tracer_;
};

}  // namespace gnna::accel
