// Whole-accelerator simulator: builds the mesh (Fig 9), instantiates tiles
// and memory nodes, and executes a compiled program phase by phase with
// global barriers between phases (Algorithm 1).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "accel/program.hpp"
#include "accel/tile.hpp"
#include "graph/dataset.hpp"
#include "graph/partition.hpp"
#include "mem/memory.hpp"
#include "noc/network.hpp"
#include "trace/attribution.hpp"
#include "trace/profiler.hpp"
#include "trace/trace.hpp"

namespace gnna::accel {

struct ProgramAnalysis;  // accel/analysis.hpp

/// Observability knobs for one run. All default to "off"; with the
/// defaults the simulator behaves (and performs) exactly as before.
struct TraceOptions {
  /// Event sink (e.g. a ChromeTraceSink). Not owned; must outlive run().
  trace::TraceSink* sink = nullptr;
  /// Aggregate the run's event stream into a trace::ProfileReport
  /// (attached to RunStats::profile). Composes with `sink`: both consume
  /// the same events. Pure observation — cycle counts are unchanged.
  bool profile = false;
  /// Periodic time-series sampling: every `sample_every` NoC cycles emit
  /// one CSV row to `sample_out` (if set) and counter events to `sink`
  /// (if set). 0 disables sampling.
  Cycle sample_every = 0;
  std::ostream* sample_out = nullptr;  // not owned; must outlive run()
  /// When the progress watchdog fires, also write the diagnostics report
  /// to this path (the exception message carries it regardless).
  std::string deadlock_report_path;
  /// Aggregate per-vertex/per-tile work attribution into a
  /// trace::AttributionReport (attached to RunStats::attribution).
  /// Composes with `sink` and `profile` through the same tee. Pure
  /// observation — cycle counts are unchanged.
  bool attribution = false;
  /// Hotspot-table bound for the attribution sink (count-min + space-
  /// saving top-K; memory stays O(top_k) regardless of graph size).
  std::size_t attribution_top_k = 64;
};

/// Per-phase slice of a run.
struct PhaseStats {
  std::string name;
  Cycle cycles = 0;
  std::uint64_t mem_bytes_served = 0;
  std::uint64_t tasks = 0;
};

/// Result of simulating one program on one configuration.
struct RunStats {
  std::string config_name;
  std::string program_name;
  double core_clock_ghz = 0.0;

  // Program provenance (filled by the session layer, src/sim): the GNNA-IR
  // content hash of the executed program and where it came from — "miss"
  // (freshly compiled), "hit" (memoized by (benchmark, seed)), "dedupe"
  // (compiled, then matched an identical cached program by hash), "file"
  // (loaded from a .gnna program file), or "given" (caller-supplied).
  // Empty / zero when the simulator is driven directly.
  std::uint64_t program_hash = 0;
  std::string program_cache;
  // Content hash of the pre-optimization program when the run resolved
  // through the optimizer (RunRequest::optimize); 0 otherwise. Equal to
  // program_hash when the optimizer proved the program already optimal.
  std::uint64_t optimized_from = 0;

  Cycle cycles = 0;  // NoC-clock cycles end to end
  double seconds = 0.0;
  double millis = 0.0;

  std::uint64_t mem_bytes_requested = 0;
  std::uint64_t mem_bytes_served = 0;
  double mean_bandwidth_gbps = 0.0;   // served bytes / runtime
  double bandwidth_utilization = 0.0; // vs aggregate peak (Fig 10 left)

  // Memory-controller scheduling detail. The row/bank fields are all zero
  // (and mem_banks empty) under the default in-order scheduler.
  std::string mem_scheduler;          // "in_order" | "frfcfs"
  std::uint64_t mem_row_hits = 0;
  std::uint64_t mem_row_misses = 0;
  double mem_row_hit_rate = 0.0;      // hits / (hits + misses), in [0,1]
  double mem_queue_occupancy = 0.0;   // time-weighted mean queue depth
  double mem_queue_occupancy_max = 0.0;
  struct MemBankStats {
    std::uint32_t mem = 0;   // controller index
    std::uint32_t bank = 0;  // bank index within that controller
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    double busy_frac = 0.0;  // bank-active cycles / total run cycles
  };
  std::vector<MemBankStats> mem_banks;

  double dna_utilization = 0.0;  // fraction of time DNA busy (Fig 10 right)
  double gpe_utilization = 0.0;
  double agg_utilization = 0.0;

  std::uint64_t tasks_completed = 0;
  std::uint64_t packets_delivered = 0;
  double avg_packet_latency = 0.0;
  std::uint64_t dnq_queue_switches = 0;
  std::uint64_t alloc_stalls = 0;

  // Raw activity counters (inputs to the energy model, src/accel/energy.*).
  std::uint64_t noc_flit_hops = 0;
  std::uint64_t noc_flits_delivered = 0;
  std::uint64_t agg_words_reduced = 0;
  std::uint64_t dna_macs = 0;
  std::uint64_t gpe_actions = 0;
  std::uint64_t dnq_words = 0;

  std::vector<PhaseStats> phases;

  /// Per-phase/per-unit profile; set when TraceOptions::profile was on
  /// (shared so RunStats stays cheap to copy through batch result slots).
  std::shared_ptr<const trace::ProfileReport> profile;

  /// Per-vertex/per-tile attribution; set when TraceOptions::attribution
  /// was on.
  std::shared_ptr<const trace::AttributionReport> attribution;

  /// Static analytic performance model (accel/analysis.hpp), evaluated on
  /// the same (program, config, partition) this run executed. Always set
  /// by AcceleratorSim::run — purely static, never perturbs cycle counts.
  std::shared_ptr<const ProgramAnalysis> static_model;
};

class AcceleratorSim {
 public:
  explicit AcceleratorSim(
      AcceleratorConfig cfg,
      graph::PartitionPolicy partition = graph::PartitionPolicy::kRoundRobin);

  /// Execute `prog` against dataset `ds` to completion and report
  /// timing/utilization. Programs are dataset-independent artifacts
  /// (compiled or loaded from GNNA-IR text); the dataset supplies the
  /// graph topology the traversal walks and must match the program's
  /// graph-layout table (accel::verify checks this, GV012). A fresh
  /// simulator instance is required per run.
  [[nodiscard]] RunStats run(const CompiledProgram& prog,
                             const graph::Dataset& ds);

  /// Progress watchdog threshold (cycles without any progress).
  void set_watchdog_cycles(Cycle c) { watchdog_cycles_ = c; }

  /// Static program verification before the timing model starts (on by
  /// default): run() throws ProgramVerifyError when accel::verify finds
  /// errors, instead of deadlocking mid-simulation.
  void set_verify(bool v) { verify_ = v; }

  /// Attach observability outputs; must be called before run().
  void set_trace(TraceOptions opts) { trace_ = std::move(opts); }

  /// Explicit per-vertex tile assignment (profile-guided partitioning):
  /// `owners[v]` is the tile that runs vertex v. Applied to per-vertex
  /// phases whose work-item count equals owners.size(); per-graph phases
  /// keep their round-robin distribution. Overrides the policy passed to
  /// the constructor for matching phases.
  void set_work_owners(std::vector<TileId> owners) {
    work_owners_ = std::move(owners);
  }

  /// Full simulator state snapshot (every tile's unit state, memory queue
  /// contents, in-flight NoC packets). Used by the watchdog; callable any
  /// time after run() has started building.
  [[nodiscard]] std::string deadlock_report(const std::string& phase) const;

 private:
  void build();
  void attach_tracers();
  void begin_sampling();
  void maybe_sample(const std::string& phase_name);
  [[nodiscard]] bool everything_idle() const;
  [[nodiscard]] std::uint64_t progress_signature() const;

  AcceleratorConfig cfg_;
  graph::PartitionPolicy partition_;
  bool used_ = false;
  bool verify_ = true;
  Cycle watchdog_cycles_ = 2'000'000;
  TraceOptions trace_;

  // Effective event sink: trace_.sink, the profiler, the attribution
  // sink, or a tee of those attached.
  trace::TraceSink* sink_ = nullptr;
  std::unique_ptr<trace::Profiler> profiler_;
  std::unique_ptr<trace::Attribution> attribution_;
  trace::TeeSink tee_;

  // NoC endpoint id -> owning tile (trace::Attribution::kNoTile for
  // memory endpoints); filled by build().
  std::vector<std::uint32_t> ep_to_tile_;
  // Optional explicit vertex->tile assignment (set_work_owners).
  std::vector<TileId> work_owners_;

  // Periodic-sampler state (valid during run()).
  Cycle next_sample_ = 0;
  Cycle last_sample_cycle_ = 0;
  double prev_gpe_busy_ = 0.0;
  double prev_dna_busy_ = 0.0;
  double prev_agg_busy_ = 0.0;
  std::vector<std::uint64_t> prev_mem_bytes_;

  std::unique_ptr<noc::MeshNetwork> net_;
  std::unique_ptr<AddressMap> addr_map_;
  std::vector<std::unique_ptr<Tile>> tiles_;
  std::vector<std::unique_ptr<mem::MemoryController>> mems_;
};

}  // namespace gnna::accel
