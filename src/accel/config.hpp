// Accelerator configurations (Table VI, Fig 9) and per-tile parameters
// (Section III / Table I).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "common/units.hpp"
#include "dataflow/spatial.hpp"
#include "mem/memory.hpp"
#include "noc/router.hpp"

namespace gnna::accel {

/// Hardware parameters of one tile (Fig 3-7).
struct TileParams {
  // GPE: software thread pool scheduled by the lightweight runtime.
  std::uint32_t gpe_threads = 16;

  // AGG: 62kB data + 2kB control scratchpads, bank of 16 32-bit ALUs.
  std::uint32_t agg_data_bytes = 62 * 1024;
  std::uint32_t agg_ctrl_bytes = 2 * 1024;
  std::uint32_t agg_ctrl_entry_bytes = 16;  // per-aggregation metadata
  std::uint32_t agg_alus = 16;

  // DNQ: 62kB queue scratchpad + 2kB destination scratchpad, two virtual
  // queues, lazy switch after 16 idle DNA cycles.
  std::uint32_t dnq_data_bytes = 62 * 1024;
  std::uint32_t dnq_dest_bytes = 2 * 1024;
  std::uint32_t dnq_dest_entry_bytes = 8;
  std::uint32_t dnq_idle_switch_cycles = 16;
  // Fraction (in 1/16ths) of the data scratchpad given to virtual queue 0;
  // runtime-configurable via the allocation bus (per phase).
  std::uint32_t dnq_queue0_sixteenths = 8;

  // DNA: Eyeriss-like spatial array (Table I) behind a latency-throughput
  // model. `dna_pipeline_latency` is the fill/drain latency added to each
  // entry's completion; `dna_min_ii` floors the initiation interval.
  dataflow::SpatialArrayConfig dna = dataflow::SpatialArrayConfig::eyeriss();
  std::uint32_t dna_pipeline_latency = 32;
  std::uint32_t dna_min_ii = 4;

  // GPE micro-op costs, in core cycles.
  std::uint32_t cost_context_switch = 1;
  std::uint32_t cost_issue_load = 1;
  std::uint32_t cost_loop_iter = 1;
  std::uint32_t cost_alloc = 2;  // allocation-bus transaction
  std::uint32_t cost_send = 1;   // initiate a NoC send
};

/// A full accelerator configuration: mesh shape, tile and memory-node
/// placement, clocks, and per-module parameters.
struct AcceleratorConfig {
  std::string name;
  std::uint32_t mesh_width = 2;
  std::uint32_t mesh_height = 1;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> tile_coords;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> mem_coords;

  /// Clock of the GPE/DNA/AGG/DNQ logic — the quantity swept in Fig 8.
  Frequency core_clock = Frequency::giga_hertz(2.4);
  /// Clock the NoC links and memory interfaces run at. Fixed across the
  /// sweep so NoC and memory bandwidth stay constant (Section VI-B).
  Frequency noc_clock = Frequency::giga_hertz(2.4);

  mem::MemParams mem_params;        // per memory node (68 GB/s each)
  noc::NocParams noc_params;        // Table IV
  TileParams tile_params;

  /// Address-space interleaving across memory nodes (page granularity so a
  /// wide feature read is one request to one controller).
  std::uint64_t interleave_bytes = 4096;

  [[nodiscard]] std::uint32_t num_tiles() const {
    return static_cast<std::uint32_t>(tile_coords.size());
  }
  [[nodiscard]] std::uint32_t num_mem_nodes() const {
    return static_cast<std::uint32_t>(mem_coords.size());
  }
  /// ALU count as Table VI counts it: 182 DNA PEs + 16 AGG ALUs per tile.
  [[nodiscard]] std::uint32_t total_alus() const {
    return num_tiles() * (tile_params.dna.num_pes() + tile_params.agg_alus);
  }
  [[nodiscard]] double total_mem_bandwidth_gbps() const {
    return mem_params.bandwidth.gbps() * num_mem_nodes();
  }

  [[nodiscard]] AcceleratorConfig with_core_clock(double ghz) const {
    AcceleratorConfig c = *this;
    c.core_clock = Frequency::giga_hertz(ghz);
    return c;
  }

  /// Table VI row 1: 1 tile + 1 memory node (68 GB/s), 198 ALUs.
  [[nodiscard]] static AcceleratorConfig cpu_iso_bw();
  /// Table VI row 2: 8 tiles + 8 memory nodes (544 GB/s), 1584 ALUs.
  [[nodiscard]] static AcceleratorConfig gpu_iso_bw();
  /// Table VI row 3: 16 tiles + 8 memory nodes (544 GB/s), 3168 ALUs.
  [[nodiscard]] static AcceleratorConfig gpu_iso_flops();
};

}  // namespace gnna::accel
