#include "accel/tile.hpp"

#include <cassert>

namespace gnna::accel {

Tile::Tile(const AcceleratorConfig& cfg, noc::MeshNetwork& net,
           EndpointId ep_gpe, EndpointId ep_agg, EndpointId ep_dnq,
           const AddressMap& addr_map)
    : cfg_(cfg),
      net_(net),
      ep_dnq_(ep_dnq),
      addr_map_(addr_map),
      scale_(cfg.noc_clock.ghz() / cfg.core_clock.ghz()),
      agg_(cfg.tile_params, net, ep_agg, addr_map, scale_),
      dnq_(cfg.tile_params),
      dna_(cfg.tile_params, net, ep_dnq, addr_map, scale_),
      gpe_(cfg.tile_params, net, ep_gpe, ep_agg, ep_dnq, addr_map, scale_) {}

void Tile::begin_phase(const CompiledProgram& prog, const graph::Dataset& ds,
                       const PhaseSpec& phase,
                       std::vector<std::uint32_t> work) {
  assert(idle() && "begin_phase on a busy tile");

  // Virtual-queue split: all of the scratchpad to queue 0 unless the phase
  // runs a second DNN model (Algorithm 1's per-layer CONFIG step).
  const TileParams& tp = cfg_.tile_params;
  if (phase.has_dna2()) {
    const std::uint32_t q0 = Dnq::queue0_split_bytes(tp);
    dnq_.configure(q0, tp.dnq_data_bytes - q0);
  } else {
    dnq_.configure(tp.dnq_data_bytes, 0);
  }

  // DNA model timings from the NN-Dataflow-like mapper.
  std::vector<DnaModelTiming> models;
  const dataflow::Mapper mapper(tp.dna);
  // A model is a chain of matmuls; its initiation interval is the sum of
  // the best-mapping compute time of each stage.
  auto make_model = [&](const std::vector<dataflow::MatmulShape>& shapes,
                        std::uint32_t out_words) {
    DnaModelTiming m;
    m.out_words = out_words;
    for (const auto& s : shapes) {
      m.ii_core_cycles += static_cast<double>(
          mapper.map(s, std::nullopt, cfg_.core_clock).compute_cycles);
      m.macs_per_entry += s.total_macs();
    }
    return m;
  };
  if (phase.has_dna()) {
    models.push_back(make_model(phase.dna_shapes, phase.dna_out_words));
  }
  if (phase.has_dna2()) {
    assert(phase.has_dna() && "queue-1 model requires a queue-0 model");
    models.push_back(make_model(phase.dna2_shapes, phase.dna2_out_words));
  }
  dna_.configure(std::move(models), phase.weight_bytes);

  // Stream this tile's copy of the weights into the DNA, tagged so the
  // dispatcher can tell weight fills apart from DNQ entry fills.
  if (phase.weight_bytes > 0) {
    const Addr base = prog.memmap.region(phase.weight_region).base;
    addr_map_.for_each_segment(
        base, phase.weight_bytes,
        [&](EndpointId mem_ep, Addr a, std::uint64_t bytes) {
          noc::Message m;
          m.src = ep_dnq_;
          m.dst = mem_ep;
          m.kind = noc::MsgKind::kMemReadReq;
          m.payload_bytes = 0;
          m.a = a;
          m.b = bytes;
          m.c = kWeightTag;
          net_.send(m);
        });
  }

  gpe_.begin_phase(prog, ds, phase, std::move(work));
}

void Tile::set_tracing(trace::TraceSink* sink, std::uint32_t index) {
  const std::uint64_t* clock = net_.now_ptr();
  gpe_.set_tracer({sink, clock, trace::Category::kGpe, index});
  dnq_.set_tracer({sink, clock, trace::Category::kDnq, index});
  dna_.set_tracer({sink, clock, trace::Category::kDna, index});
  agg_.set_tracer({sink, clock, trace::Category::kAgg, index});
}

void Tile::dump_state(std::ostream& os) const {
  os << "  tile units: gpe " << (gpe_.idle() ? "idle" : "BUSY") << ", agg "
     << (agg_.idle() ? "idle" : "BUSY") << ", dnq "
     << (dnq_.empty() ? "empty" : "OCCUPIED") << ", dna "
     << (dna_.idle() ? "idle" : "BUSY") << '\n';
  gpe_.dump_state(os);
  dnq_.dump_state(os);
  dna_.dump_state(os);
  agg_.dump_state(os);
}

void Tile::tick() {
  // Dispatch DNQ/DNA endpoint traffic (weight fills vs entry fills).
  while (auto msg = net_.poll(ep_dnq_)) {
    if (msg->kind == noc::MsgKind::kMemReadResp &&
        (msg->c & kWeightTag) != 0) {
      dna_.on_weight_data(msg->b);
    } else {
      dnq_.on_message(*msg);
    }
  }
  agg_.tick();
  dna_.tick(dnq_);
  gpe_.tick(agg_, dnq_);
}

}  // namespace gnna::accel
