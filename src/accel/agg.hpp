// The Aggregator (AGG) module — Fig 7.
//
// "The AGG is responsible for performing the aggregation steps in a GNN
//  model, and manages a pool of in-progress aggregations. The AGG only
//  supports aggregation operations that are associative, which allows data
//  to be aggregated in any order. It contains a pair of scratchpads for
//  control (2kB) and data storage (62kB), a bank of 16 32-bit ALUs..."
//
// Timing model: incoming messages are reduced into the entry at 16 words
// (one flit) per core cycle; entry allocation costs one cycle over the
// allocation bus (charged on the GPE side); a completed aggregation's
// result is sent to its configured destination through the NoC injection
// queue (the 2kB flit buffer, drained one flit per cycle by the network).
//
// Value support: entries optionally carry Fixed32 vectors so unit tests can
// assert bit-exact order-independence of the associative reductions; the
// full-system simulator sends value-free (timing-only) contributions.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "accel/addrmap.hpp"
#include "accel/config.hpp"
#include "common/fixed_point.hpp"
#include "common/stats.hpp"
#include "noc/network.hpp"
#include "trace/trace.hpp"

namespace gnna::accel {

using AggHandle = std::uint32_t;

struct AggStats {
  Counter allocations;
  Counter alloc_failures;
  Counter contributions;  // messages reduced
  Counter completions;
  Counter words_reduced;
  double busy_cycles = 0.0;  // NoC cycles the ALU bank was busy
};

class Agg {
 public:
  /// `core_scale` = noc_clock / core_clock (>= 1 when the core is slower).
  Agg(const TileParams& params, noc::MeshNetwork& net, EndpointId endpoint,
      const AddressMap& addr_map, double core_scale);

  /// Allocation-bus interface (same-tile GPE). `expected_words` is the
  /// total number of 4B elements that will arrive before the aggregation
  /// completes (the per-aggregation count of Fig 7). `owner` is the work
  /// item the aggregation computes (attribution only). Returns nullopt
  /// when the data or control scratchpad is full.
  [[nodiscard]] std::optional<AggHandle> allocate(
      std::uint32_t width_words, std::uint64_t expected_words, ReduceOp op,
      Dest dest, std::uint32_t owner = noc::kNoOwner);

  /// NoC delivery (kMemReadResp / kAggWrite with a = handle).
  void on_message(const noc::Message& msg);

  /// Value-accurate contribution used by unit tests (same accounting as a
  /// message of values.size() words).
  void contribute_values(AggHandle h, std::span<const Fixed32> values);

  /// Current (partial or final) values of an entry; empty in timing-only
  /// mode. Valid until the entry completes.
  [[nodiscard]] std::span<const Fixed32> entry_values(AggHandle h) const;

  [[nodiscard]] bool entry_active(AggHandle h) const {
    return h < entries_.size() && entries_[h].active;
  }

  void tick();

  [[nodiscard]] bool idle() const {
    return inbox_.empty() && live_entries_ == 0;
  }
  [[nodiscard]] std::uint32_t live_entries() const { return live_entries_; }
  [[nodiscard]] const AggStats& stats() const { return stats_; }

  /// Attach an event tracer (reductions, completions). Disabled by default.
  void set_tracer(trace::Tracer t) { tracer_ = t; }

  /// Deadlock diagnostics: live entries with remaining-element counters.
  void dump_state(std::ostream& os) const;

 private:
  struct Entry {
    bool active = false;
    std::uint32_t width_words = 0;
    std::uint64_t expected_words = 0;
    std::uint64_t received_words = 0;
    std::uint32_t owner = noc::kNoOwner;  // attribution only
    ReduceOp op = ReduceOp::kSum;
    Dest dest;
    std::vector<Fixed32> values;  // width_words, identity-initialized
  };

  void complete(AggHandle h);

  TileParams params_;
  noc::MeshNetwork& net_;
  EndpointId endpoint_;
  const AddressMap& addr_map_;
  double scale_;

  std::vector<Entry> entries_;
  std::vector<AggHandle> free_list_;
  std::uint32_t live_entries_ = 0;
  std::uint64_t data_bytes_used_ = 0;

  std::deque<noc::Message> inbox_;  // internal flit-buffer stand-in
  double alu_free_at_ = 0.0;
  AggStats stats_;
  trace::Tracer tracer_;
};

}  // namespace gnna::accel
