#include "accel/validate.hpp"

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "accel/analysis.hpp"
#include "accel/verify.hpp"

namespace gnna::accel::validate {

namespace {

// Bijective optimized->original region renaming, grown one binding at a
// time as the structural diff walks both programs. A single region trying
// to map to two different peers (in either direction) is exactly an
// illegal reorder/drop/duplication, so bind() failing is the proof
// failing.
class RegionMap {
 public:
  bool bind(RegionId opt_id, RegionId orig_id, std::string* why) {
    const auto f = fwd_.find(opt_id);
    if (f != fwd_.end() && f->second != orig_id) {
      *why = "optimized region " + std::to_string(opt_id) +
             " maps to both original regions " + std::to_string(f->second) +
             " and " + std::to_string(orig_id);
      return false;
    }
    const auto r = rev_.find(orig_id);
    if (r != rev_.end() && r->second != opt_id) {
      *why = "original region " + std::to_string(orig_id) +
             " maps to both optimized regions " + std::to_string(r->second) +
             " and " + std::to_string(opt_id);
      return false;
    }
    fwd_.emplace(opt_id, orig_id);
    rev_.emplace(orig_id, opt_id);
    return true;
  }

  [[nodiscard]] const std::map<RegionId, RegionId>& forward() const {
    return fwd_;
  }

 private:
  std::map<RegionId, RegionId> fwd_;  // optimized -> original
  std::map<RegionId, RegionId> rev_;  // original -> optimized
};

/// One aligned (original, optimized) phase pair; a fused pair covers two
/// adjacent original phases.
struct PhasePair {
  std::size_t orig_a = 0;  // gather side of a fusion, or the 1:1 match
  std::size_t orig_b = 0;  // projection side of a fusion (== orig_a if not)
  std::size_t opt = 0;
  bool fused = false;
};

bool shapes_equal(const std::vector<dataflow::MatmulShape>& a,
                  const std::vector<dataflow::MatmulShape>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].m != b[i].m || a[i].k != b[i].k || a[i].n != b[i].n ||
        a[i].weight_density != b[i].weight_density) {
      return false;
    }
  }
  return true;
}

bool bind_ref(const BufferRef& opt, const BufferRef& orig, RegionMap* map,
              std::string* why) {
  if (opt.width_words != orig.width_words) {
    *why = "buffer width " + std::to_string(opt.width_words) + " != " +
           std::to_string(orig.width_words);
    return false;
  }
  return map->bind(opt.region, orig.region, why);
}

/// Number of places the original program references `id` (the def-use
/// fan-in/out a fusion's intermediate must keep private to the pair).
std::size_t use_count(const CompiledProgram& p, RegionId id) {
  std::size_t n = 0;
  for (const auto& g : p.graphs) {
    n += static_cast<std::size_t>(g.row_ptr == id);
    n += static_cast<std::size_t>(g.col_idx == id);
  }
  for (const auto& ph : p.phases) {
    if (ph.kind != PhaseKind::kProject) {
      n += static_cast<std::size_t>(ph.gather.region == id);
    }
    for (const auto& b : ph.extra_inputs) {
      n += static_cast<std::size_t>(b.region == id);
    }
    n += static_cast<std::size_t>(ph.output.region == id);
    if (ph.weight_bytes > 0) {
      n += static_cast<std::size_t>(ph.weight_region == id);
    }
  }
  return n;
}

/// Field-by-field 1:1 phase match modulo region renaming. Don't-care
/// fields (kProject gather, weight_region with weight_bytes == 0, the
/// phase name, expected_contribs — the contribs obligation owns those) are
/// skipped.
bool match_phase(const PhaseSpec& opt, const PhaseSpec& orig, RegionMap* map,
                 std::string* why) {
  auto fail = [&](const char* what) {
    *why = std::string(what) + " differs";
    return false;
  };
  if (opt.kind != orig.kind) return fail("kind");
  if (opt.include_self != orig.include_self) return fail("include_self");
  if (opt.weighted_edges != orig.weighted_edges) return fail("weighted_edges");
  if (opt.walk_len != orig.walk_len) return fail("walk_len");
  if (opt.extra_inputs_per_edge != orig.extra_inputs_per_edge) {
    return fail("extra_inputs_per_edge");
  }
  if (opt.gpe_words_per_entry != orig.gpe_words_per_entry) {
    return fail("gpe_words_per_entry");
  }
  if (!shapes_equal(opt.dna_shapes, orig.dna_shapes)) return fail("dna_shapes");
  if (opt.dna_out_words != orig.dna_out_words) return fail("dna_out_words");
  if (opt.agg_width_words != orig.agg_width_words) {
    return fail("agg_width_words");
  }
  if (opt.agg_op != orig.agg_op) return fail("agg_op");
  if (!shapes_equal(opt.dna2_shapes, orig.dna2_shapes)) {
    return fail("dna2_shapes");
  }
  if (opt.dna2_out_words != orig.dna2_out_words) return fail("dna2_out_words");
  if (opt.dna2_gpe_words != orig.dna2_gpe_words) return fail("dna2_gpe_words");
  if (opt.per_graph != orig.per_graph) return fail("per_graph");
  if (opt.weight_bytes != orig.weight_bytes) return fail("weight_bytes");
  if (opt.extra_inputs.size() != orig.extra_inputs.size()) {
    return fail("extra_inputs count");
  }
  if (opt.kind != PhaseKind::kProject &&
      !bind_ref(opt.gather, orig.gather, map, why)) {
    return false;
  }
  for (std::size_t i = 0; i < opt.extra_inputs.size(); ++i) {
    if (!bind_ref(opt.extra_inputs[i], orig.extra_inputs[i], map, why)) {
      return false;
    }
  }
  if (!bind_ref(opt.output, orig.output, map, why)) return false;
  if (opt.weight_bytes > 0 &&
      !map->bind(opt.weight_region, orig.weight_region, why)) {
    return false;
  }
  return true;
}

/// Recognize `opt` as the sound fusion of adjacent original phases
/// (a = gather+aggregate, b = projection): the fused phase must carry a's
/// gather/aggregate fields and b's DNA/output/weight fields, and the
/// intermediate buffer a fed b through must be provably private to the
/// pair — written only by a, read only by b, never preloaded — so
/// removing it is unobservable.
bool match_fusion(const CompiledProgram& orig_prog, const PhaseSpec& opt,
                  const PhaseSpec& a, const PhaseSpec& b, RegionMap* map,
                  std::string* why) {
  auto fail = [&](const std::string& what) {
    *why = "not a sound fusion: " + what;
    return false;
  };
  // Original-side preconditions: a pure gather+aggregate feeding a pure
  // single-input projection through a private intermediate.
  if (a.kind != PhaseKind::kGatherAggregate || a.has_dna() || !a.has_agg() ||
      a.per_graph || a.weight_bytes > 0 || !a.extra_inputs.empty() ||
      a.extra_inputs_per_edge || a.gpe_words_per_entry != 0 || a.has_dna2() ||
      a.dna2_gpe_words != 0 || a.output.width_words != a.agg_width_words) {
    return fail("producer is not a pure gather+aggregate");
  }
  if (b.kind != PhaseKind::kProject || !b.has_dna() || b.has_dna2() ||
      b.per_graph || b.extra_inputs_per_edge || b.gpe_words_per_entry != 0 ||
      b.extra_inputs.size() != 1) {
    return fail("consumer is not a pure single-input projection");
  }
  if (b.extra_inputs[0].region != a.output.region ||
      b.extra_inputs[0].width_words != a.output.width_words) {
    return fail("consumer does not read exactly the producer's output");
  }
  const Region& mid = orig_prog.memmap.region(a.output.region);
  if (mid.preloaded) return fail("intermediate buffer is preloaded");
  if (use_count(orig_prog, a.output.region) != 2) {
    return fail("intermediate buffer '" + mid.name +
                "' has uses outside the fused pair");
  }
  // Fused-side shape: a's gather/aggregate stage plus b's DNA stage.
  if (opt.kind != PhaseKind::kGatherAggregate ||
      opt.include_self != a.include_self ||
      opt.weighted_edges != a.weighted_edges || opt.walk_len != a.walk_len ||
      !opt.extra_inputs.empty() || opt.extra_inputs_per_edge ||
      opt.gpe_words_per_entry != 0 ||
      opt.agg_width_words != a.agg_width_words || opt.agg_op != a.agg_op ||
      opt.has_dna2() || opt.dna2_gpe_words != 0 || opt.per_graph) {
    return fail("fused phase does not preserve the gather+aggregate stage");
  }
  if (!shapes_equal(opt.dna_shapes, b.dna_shapes) ||
      opt.dna_out_words != b.dna_out_words ||
      opt.weight_bytes != b.weight_bytes) {
    return fail("fused phase does not preserve the projection stage");
  }
  if (!bind_ref(opt.gather, a.gather, map, why)) return false;
  if (!bind_ref(opt.output, b.output, map, why)) return false;
  if (opt.weight_bytes > 0 &&
      !map->bind(opt.weight_region, b.weight_region, why)) {
    return false;
  }
  return true;
}

std::set<std::uint16_t> error_codes(const VerifyReport& report) {
  std::set<std::uint16_t> codes;
  for (const auto& d : report.diagnostics) {
    if (d.severity == Severity::kError) {
      codes.insert(static_cast<std::uint16_t>(d.code));
    }
  }
  return codes;
}

}  // namespace

std::string ValidationResult::to_string() const {
  std::ostringstream os;
  for (const auto& ob : obligations) {
    os << (ob.proved ? "PROVED " : "FAILED ") << ob.name;
    if (!ob.detail.empty()) os << ": " << ob.detail;
    os << '\n';
  }
  return os.str();
}

ValidationResult validate_transform(const CompiledProgram& original,
                                    const CompiledProgram& optimized,
                                    const ValidationOptions& options) {
  ValidationResult res;
  RegionMap map;
  std::vector<PhasePair> pairs;

  // --- phase-align: order-preserving structural diff, fusion-aware ---
  Obligation align;
  align.name = "phase-align";
  align.proved = true;
  {
    std::string why;
    // Bind the per-graph topology tables first: they anchor the region
    // map before any phase is compared.
    if (optimized.graphs.size() != original.graphs.size()) {
      align.proved = false;
      align.detail = "graph table size differs (" +
                     std::to_string(optimized.graphs.size()) + " vs " +
                     std::to_string(original.graphs.size()) + ")";
    }
    for (std::size_t g = 0; align.proved && g < optimized.graphs.size();
         ++g) {
      const auto& og = optimized.graphs[g];
      const auto& rg = original.graphs[g];
      if (og.node_offset != rg.node_offset ||
          og.edge_offset != rg.edge_offset || og.num_nodes != rg.num_nodes ||
          og.num_edges != rg.num_edges) {
        align.proved = false;
        align.detail = "graph " + std::to_string(g) + " counts/offsets differ";
        break;
      }
      if (!map.bind(og.row_ptr, rg.row_ptr, &why) ||
          !map.bind(og.col_idx, rg.col_idx, &why)) {
        align.proved = false;
        align.detail = "graph " + std::to_string(g) + ": " + why;
        break;
      }
    }
    std::size_t i = 0;  // original phase cursor
    std::size_t j = 0;  // optimized phase cursor
    while (align.proved && j < optimized.phases.size()) {
      if (i >= original.phases.size()) {
        align.proved = false;
        align.detail = "optimized phase '" + optimized.phases[j].name +
                       "' has no original counterpart";
        break;
      }
      // Attempt the 1:1 match and the 2:1 fusion match each on a scratch
      // copy of the map, so a failed attempt leaves no stray bindings.
      RegionMap one = map;
      std::string one_why;
      if (match_phase(optimized.phases[j], original.phases[i], &one,
                      &one_why)) {
        map = std::move(one);
        pairs.push_back({i, i, j, false});
        ++i;
        ++j;
        continue;
      }
      if (i + 1 < original.phases.size()) {
        RegionMap two = map;
        std::string two_why;
        if (match_fusion(original, optimized.phases[j], original.phases[i],
                         original.phases[i + 1], &two, &two_why)) {
          map = std::move(two);
          pairs.push_back({i, i + 1, j, true});
          i += 2;
          ++j;
          continue;
        }
        align.proved = false;
        align.detail = "optimized phase '" + optimized.phases[j].name +
                       "' matches neither original phase '" +
                       original.phases[i].name + "' (" + one_why +
                       ") nor its fusion with '" +
                       original.phases[i + 1].name + "' (" + two_why + ")";
        break;
      }
      align.proved = false;
      align.detail = "optimized phase '" + optimized.phases[j].name +
                     "' does not match original phase '" +
                     original.phases[i].name + "': " + one_why;
      break;
    }
    if (align.proved && i < original.phases.size()) {
      align.proved = false;
      align.detail = "original phase '" + original.phases[i].name +
                     "' was dropped";
    }
    if (align.proved) {
      align.detail = std::to_string(pairs.size()) + " phase pair(s), " +
                     std::to_string(map.forward().size()) +
                     " region binding(s)";
    }
  }
  res.obligations.push_back(align);

  // --- def-use: the region map is an isomorphism on attributes ---
  Obligation defuse;
  defuse.name = "def-use";
  defuse.proved = align.proved;
  if (!align.proved) {
    defuse.detail = "skipped: phase alignment failed";
  } else {
    for (const auto& [opt_id, orig_id] : map.forward()) {
      if (opt_id >= optimized.memmap.num_regions() ||
          orig_id >= original.memmap.num_regions()) {
        defuse.proved = false;
        defuse.detail = "region binding references a missing region";
        break;
      }
      const Region& o = optimized.memmap.region(opt_id);
      const Region& r = original.memmap.region(orig_id);
      if (o.bytes != r.bytes) {
        defuse.proved = false;
        defuse.detail = "region '" + r.name + "' resized (" +
                        std::to_string(o.bytes) + " vs " +
                        std::to_string(r.bytes) + " bytes)";
        break;
      }
      if (o.preloaded != r.preloaded) {
        defuse.proved = false;
        defuse.detail = "region '" + r.name + "' preload flag changed";
        break;
      }
      if (r.preloaded && o.name != r.name) {
        defuse.proved = false;
        defuse.detail = "preloaded region '" + r.name + "' renamed to '" +
                        o.name + "' (loader contents are identity-bound)";
        break;
      }
    }
    if (defuse.proved) {
      defuse.detail = std::to_string(map.forward().size()) +
                      " region binding(s) attribute-isomorphic";
    }
  }
  res.obligations.push_back(defuse);

  // --- contribs: tables equal, or dropped only where provably unused ---
  Obligation contribs;
  contribs.name = "contribs";
  contribs.proved = align.proved;
  if (!align.proved) {
    contribs.detail = "skipped: phase alignment failed";
  } else {
    std::size_t pruned = 0;
    for (const auto& pair : pairs) {
      const auto& orig_tab = original.phases[pair.orig_a].expected_contribs;
      const auto& opt_ph = optimized.phases[pair.opt];
      if (opt_ph.expected_contribs == orig_tab) continue;
      if (opt_ph.expected_contribs.empty() && opt_ph.walk_len <= 1) {
        // The runtime consults expected_contribs only for walk_len > 1
        // traversals (direct gathers use the CSR degrees), so the prune
        // is unobservable.
        ++pruned;
        continue;
      }
      contribs.proved = false;
      contribs.detail = "phase '" + opt_ph.name +
                        "': expected_contribs changed and the table is "
                        "live (walk_len > 1)";
      break;
    }
    if (contribs.proved) {
      contribs.detail =
          pruned > 0
              ? std::to_string(pruned) + " provably-unused table(s) pruned"
              : "all tables equal";
      if (options.dataset != nullptr) {
        contribs.detail +=
            "; live tables recomputed vs. walk trees (GV006, extents)";
      }
    }
  }
  res.obligations.push_back(contribs);

  // --- extents: no new error-severity lint in the optimized program ---
  Obligation extents;
  extents.name = "extents";
  {
    const TileParams tp = options.config != nullptr
                              ? options.config->tile_params
                              : TileParams{};
    const auto orig_errs =
        error_codes(verify_program(original, tp, options.dataset));
    const auto opt_errs =
        error_codes(verify_program(optimized, tp, options.dataset));
    std::string introduced;
    for (const auto c : opt_errs) {
      if (orig_errs.count(c) == 0) {
        if (!introduced.empty()) introduced += ", ";
        introduced += lint_code_name(static_cast<LintCode>(c));
      }
    }
    extents.proved = introduced.empty();
    extents.detail = extents.proved
                         ? "no new error diagnostics"
                         : "optimized program introduces " + introduced;
  }
  res.obligations.push_back(extents);

  // --- cycle-bound: the static lower bound never regresses ---
  Obligation bound;
  bound.name = "cycle-bound";
  {
    const AcceleratorConfig cfg = options.config != nullptr
                                      ? *options.config
                                      : AcceleratorConfig::cpu_iso_bw();
    AnalysisOptions ao;
    ao.dataset = options.dataset;
    const double orig_bound = analyze_program(original, cfg, ao).bound_cycles;
    const double opt_bound = analyze_program(optimized, cfg, ao).bound_cycles;
    bound.proved = opt_bound <= orig_bound * (1.0 + 1e-9) + 1e-6;
    std::ostringstream os;
    os << "bound_cycles " << opt_bound << (bound.proved ? " <= " : " > ")
       << orig_bound;
    bound.detail = os.str();
  }
  res.obligations.push_back(bound);

  res.equivalent = true;
  for (const auto& ob : res.obligations) res.equivalent &= ob.proved;
  return res;
}

}  // namespace gnna::accel::validate
