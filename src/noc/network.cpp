#include "noc/network.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace gnna::noc {
namespace {

/// Opposite mesh direction (for credit returns across a link).
[[nodiscard]] std::uint32_t opposite(std::uint32_t port) {
  switch (port) {
    case kPortNorth:
      return kPortSouth;
    case kPortSouth:
      return kPortNorth;
    case kPortEast:
      return kPortWest;
    case kPortWest:
      return kPortEast;
    default:
      return port;
  }
}

/// Static names for send-side instant events (tracer names are not copied).
[[nodiscard]] constexpr const char* send_event_name(MsgKind k) {
  switch (k) {
    case MsgKind::kGeneric: return "send:generic";
    case MsgKind::kMemReadReq: return "send:mem_read_req";
    case MsgKind::kMemReadResp: return "send:mem_read_resp";
    case MsgKind::kMemWriteReq: return "send:mem_write_req";
    case MsgKind::kDnqWrite: return "send:dnq_write";
    case MsgKind::kDnaResult: return "send:dna_result";
    case MsgKind::kAggWrite: return "send:agg_write";
    case MsgKind::kAggResult: return "send:agg_result";
    case MsgKind::kControl: return "send:control";
  }
  return "send:?";
}

}  // namespace

Router::Router(std::uint32_t x, std::uint32_t y, std::uint32_t num_local_ports,
               const NocParams& params)
    : x_(x), y_(y), num_local_(num_local_ports), params_(params) {
  buffers_.resize(num_ports());
  outputs_.resize(num_ports());
  input_moved_.resize(num_ports(), 0);
}

MeshNetwork::MeshNetwork(std::uint32_t width, std::uint32_t height,
                         NocParams params)
    : width_(width), height_(height), params_(params) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("MeshNetwork: empty mesh");
  }
  local_ports_per_router_.assign(
      static_cast<std::size_t>(width) * height, 0);
}

EndpointId MeshNetwork::add_endpoint(std::uint32_t x, std::uint32_t y) {
  if (finalized_) {
    throw std::logic_error("MeshNetwork: add_endpoint after finalize");
  }
  if (x >= width_ || y >= height_) {
    throw std::out_of_range("MeshNetwork: endpoint off the mesh");
  }
  EndpointState ep;
  ep.x = x;
  ep.y = y;
  ep.local_port = kFirstLocalPort + local_ports_per_router_[router_index(x, y)];
  ++local_ports_per_router_[router_index(x, y)];
  endpoints_.push_back(ep);
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

void MeshNetwork::finalize() {
  if (finalized_) return;
  finalized_ = true;
  routers_.reserve(local_ports_per_router_.size());
  for (std::uint32_t y = 0; y < height_; ++y) {
    for (std::uint32_t x = 0; x < width_; ++x) {
      routers_.emplace_back(x, y, local_ports_per_router_[router_index(x, y)],
                            params_);
    }
  }
  // Mesh link credits: each output that has a neighbor starts with the
  // neighbor's full input buffer.
  for (auto& r : routers_) {
    if (r.y() + 1 < height_) r.outputs_[kPortNorth].credits = params_.input_buffer_flits;
    if (r.y() > 0) r.outputs_[kPortSouth].credits = params_.input_buffer_flits;
    if (r.x() + 1 < width_) r.outputs_[kPortEast].credits = params_.input_buffer_flits;
    if (r.x() > 0) r.outputs_[kPortWest].credits = params_.input_buffer_flits;
  }
  for (auto& ep : endpoints_) {
    ep.injection_credits = params_.input_buffer_flits;
  }
  // Credit-return map: local input port -> owning endpoint, so the hot
  // path needs no O(endpoints) scan.
  local_port_owner_.resize(routers_.size());
  for (std::uint32_t ri = 0; ri < routers_.size(); ++ri) {
    local_port_owner_[ri].assign(local_ports_per_router_[ri],
                                 kInvalidEndpoint);
  }
  for (EndpointId e = 0; e < endpoints_.size(); ++e) {
    const EndpointState& ep = endpoints_[e];
    local_port_owner_[router_index(ep.x, ep.y)]
                     [ep.local_port - kFirstLocalPort] = e;
  }
}

void MeshNetwork::send(Message msg) {
  finalize();
  if (msg.src >= endpoints_.size() || msg.dst >= endpoints_.size()) {
    throw std::out_of_range("MeshNetwork::send: bad endpoint");
  }
  msg.seq = next_seq_++;
  msg.injected_at = now_;
  const std::uint32_t flits = msg.flit_count();
  EndpointState& src = endpoints_[msg.src];
  for (std::uint32_t i = 0; i < flits; ++i) {
    Flit f;
    f.seq = msg.seq;
    f.dst = msg.dst;
    f.index = i;
    f.head = (i == 0);
    f.tail = (i == flits - 1);
    src.injection.push_back(f);
  }
  inflight_.emplace(msg.seq, msg);
  stats_.packets_sent.add();
  if (tracer_.enabled()) {
    tracer_.instant(send_event_name(msg.kind),
                    (std::uint64_t{msg.src} << 32) | msg.dst,
                    msg.payload_bytes);
  }
}

std::optional<Message> MeshNetwork::poll(EndpointId ep) {
  EndpointState& e = endpoints_.at(ep);
  if (e.delivery.empty()) return std::nullopt;
  Message m = e.delivery.front();
  e.delivery.pop_front();
  return m;
}

const Message* MeshNetwork::peek(EndpointId ep) const {
  const EndpointState& e = endpoints_.at(ep);
  return e.delivery.empty() ? nullptr : &e.delivery.front();
}

std::size_t MeshNetwork::delivery_queue_depth(EndpointId ep) const {
  return endpoints_.at(ep).delivery.size();
}

std::size_t MeshNetwork::injection_queue_depth(EndpointId ep) const {
  return endpoints_.at(ep).injection.size();
}

std::uint32_t MeshNetwork::route(const Router& r, EndpointId dst) const {
  const EndpointState& d = endpoints_[dst];
  if (params_.routing == RoutingAlgorithm::kYX) {
    if (d.y > r.y()) return kPortNorth;
    if (d.y < r.y()) return kPortSouth;
    if (d.x > r.x()) return kPortEast;
    if (d.x < r.x()) return kPortWest;
    return d.local_port;
  }
  if (d.x > r.x()) return kPortEast;
  if (d.x < r.x()) return kPortWest;
  if (d.y > r.y()) return kPortNorth;
  if (d.y < r.y()) return kPortSouth;
  return d.local_port;
}

void MeshNetwork::apply_credits() {
  while (!credits_.empty() && credits_.front().ready_at <= now_) {
    const CreditReturn& cr = credits_.front();
    if (cr.to_endpoint) {
      ++endpoints_[cr.endpoint].injection_credits;
    } else {
      ++routers_[cr.router].outputs_[cr.port].credits;
    }
    credits_.pop_front();
  }
}

void MeshNetwork::return_credit_for_input(std::uint32_t router,
                                          std::uint32_t port) {
  CreditReturn cr;
  cr.ready_at = now_ + 1;
  const Router& r = routers_[router];
  if (port >= kFirstLocalPort) {
    // Local input: credit goes back to the endpoint occupying that port
    // (precomputed in finalize()).
    const EndpointId e = local_port_owner_[router][port - kFirstLocalPort];
    assert(e != kInvalidEndpoint && "local input port without endpoint");
    cr.to_endpoint = true;
    cr.endpoint = e;
    credits_.push_back(cr);
    return;
  }
  // Mesh input: upstream router's matching output regains a credit.
  std::uint32_t ux = r.x();
  std::uint32_t uy = r.y();
  switch (port) {
    case kPortNorth:
      uy += 1;  // flit came from the router above, via its South output
      break;
    case kPortSouth:
      uy -= 1;
      break;
    case kPortEast:
      ux += 1;
      break;
    case kPortWest:
      ux -= 1;
      break;
    default:
      break;
  }
  cr.router = router_index(ux, uy);
  cr.port = opposite(port);
  credits_.push_back(cr);
}

void MeshNetwork::phase_route() {
  for (std::uint32_t ri = 0; ri < routers_.size(); ++ri) {
    Router& r = routers_[ri];
    if (r.buffered_flits_ == 0) continue;  // nothing to arbitrate
    for (auto& out : r.outputs_) out.busy_this_cycle = false;
    std::fill(r.input_moved_.begin(), r.input_moved_.end(),
              static_cast<std::uint8_t>(0));

    // Gather head-of-line requests: input -> desired output.
    const std::uint32_t ports = r.num_ports();
    for (std::uint32_t o = 0; o < ports; ++o) {
      Router::OutputState& out = r.outputs_[o];
      if (out.busy_this_cycle) continue;

      // Pick the winning input for output o. An input that already
      // forwarded a flit this cycle is out of the running: each input
      // port drives one crossbar connection per cycle.
      int winner = -1;
      if (out.locked_input >= 0) {
        const auto i = static_cast<std::uint32_t>(out.locked_input);
        if (r.input_moved_[i] == 0 && !r.buffers_[i].empty() &&
            route(r, r.buffers_[i].front().dst) == o) {
          winner = out.locked_input;
        }
      } else {
        for (std::uint32_t step = 0; step < ports; ++step) {
          const std::uint32_t i = (out.rr_next + step) % ports;
          if (r.input_moved_[i] != 0) continue;
          if (r.buffers_[i].empty()) continue;
          const Flit& f = r.buffers_[i].front();
          if (!f.head) continue;  // body flits only follow a lock
          if (route(r, f.dst) != o) continue;
          winner = static_cast<int>(i);
          break;
        }
      }
      if (winner < 0) continue;

      const auto wi = static_cast<std::uint32_t>(winner);
      const Flit f = r.buffers_[wi].front();

      const bool is_mesh_out = o < kFirstLocalPort;
      if (is_mesh_out) {
        if (out.credits == 0) continue;  // stall: keep lock and rr_next
        --out.credits;
      }

      // Commit the move. The round-robin pointer advances only here — a
      // grant that stalled on credits keeps its priority next cycle
      // instead of silently rotating past a starved input.
      r.buffers_[wi].pop_front();
      --r.buffered_flits_;
      out.busy_this_cycle = true;
      r.input_moved_[wi] = 1;
      if (out.locked_input < 0) out.rr_next = (wi + 1) % ports;
      if (f.head) out.locked_input = winner;
      if (f.tail) out.locked_input = -1;
      return_credit_for_input(ri, wi);

      LinkEntry le;
      le.ready_at = now_ + params_.link_delay;
      le.flit = f;
      if (is_mesh_out) {
        std::uint32_t nx = r.x();
        std::uint32_t ny = r.y();
        switch (o) {
          case kPortNorth:
            ny += 1;
            break;
          case kPortSouth:
            ny -= 1;
            break;
          case kPortEast:
            nx += 1;
            break;
          case kPortWest:
            nx -= 1;
            break;
          default:
            break;
        }
        le.dst_router = router_index(nx, ny);
        le.dst_port = opposite(o);
        stats_.flit_hops.add();
      } else {
        le.to_endpoint = true;
        le.endpoint = f.dst;
      }
      links_.push_back(le);
      out.busy.tick(true);
    }
  }
}

void MeshNetwork::phase_arrive() {
  // links_ is sorted by ready_at because link_delay is constant.
  std::size_t n = links_.size();
  while (n-- > 0 && !links_.empty() && links_.front().ready_at <= now_) {
    const LinkEntry le = links_.front();
    links_.pop_front();
    if (le.to_endpoint) {
      EndpointState& ep = endpoints_[le.endpoint];
      ++ep.assembling_flits;
      stats_.flits_delivered.add();
      if (le.flit.tail) {
        auto it = inflight_.find(le.flit.seq);
        assert(it != inflight_.end());
        Message m = it->second;
        inflight_.erase(it);
        m.delivered_at = now_;
        assert(ep.assembling_flits == m.flit_count());
        ep.assembling_flits = 0;
        stats_.packets_delivered.add();
        stats_.packet_latency.add(
            static_cast<double>(m.delivered_at - m.injected_at));
        if (tracer_.enabled()) {
          // One duration event spanning the packet's time in the network.
          tracer_.complete(msg_kind_name(m.kind),
                           static_cast<double>(m.injected_at),
                           static_cast<double>(m.delivered_at - m.injected_at),
                           (std::uint64_t{m.src} << 32) | m.dst,
                           m.payload_bytes);
          // Attribution hook: flits, hop distance, and the owning work
          // item of the delivered packet.
          tracer_.packet(m.src, m.dst, m.owner, m.flit_count(),
                         hops_between(m.src, m.dst), m.payload_bytes);
        }
        ep.delivery.push_back(m);
      }
    } else {
      Router& dr = routers_[le.dst_router];
      assert(dr.can_accept(le.dst_port) && "credit protocol violated");
      dr.accept(le.dst_port, le.flit);
    }
  }
}

void MeshNetwork::phase_inject() {
  for (EndpointId e = 0; e < endpoints_.size(); ++e) {
    EndpointState& ep = endpoints_[e];
    if (ep.injection.empty() || ep.injection_credits == 0) continue;
    const Flit f = ep.injection.front();
    ep.injection.pop_front();
    --ep.injection_credits;
    LinkEntry le;
    le.ready_at = now_ + params_.link_delay;
    le.flit = f;
    le.dst_router = router_index(ep.x, ep.y);
    le.dst_port = ep.local_port;
    links_.push_back(le);
  }
}

void MeshNetwork::tick() {
  finalize();
  apply_credits();
  phase_route();
  phase_arrive();
  phase_inject();
  ++now_;
}

bool MeshNetwork::idle() const {
  // inflight_ holds every packet from send() until tail ejection, so an
  // empty map already implies empty router buffers and injection queues;
  // delivery queues hold packets the components have not consumed yet.
  if (!links_.empty() || !inflight_.empty()) return false;
  for (const auto& ep : endpoints_) {
    if (!ep.delivery.empty()) return false;
  }
  return true;
}

void MeshNetwork::dump_state(std::ostream& os) const {
  os << "  noc: cycle=" << now_ << " inflight_packets=" << inflight_.size()
     << " links_in_flight=" << links_.size()
     << " pending_credits=" << credits_.size() << '\n';
  std::size_t shown = 0;
  for (const auto& [seq, m] : inflight_) {
    if (shown == 16) {
      os << "    ... " << inflight_.size() - shown << " more in-flight\n";
      break;
    }
    ++shown;
    os << "    packet seq=" << seq << ' ' << msg_kind_name(m.kind)
       << " src=" << m.src << " dst=" << m.dst << " flits=" << m.flit_count()
       << " injected_at=" << m.injected_at
       << " age=" << now_ - m.injected_at << '\n';
  }
  for (EndpointId e = 0; e < endpoints_.size(); ++e) {
    const EndpointState& ep = endpoints_[e];
    if (ep.injection.empty() && ep.delivery.empty() &&
        ep.assembling_flits == 0) {
      continue;
    }
    os << "    endpoint " << e << " @(" << ep.x << ',' << ep.y
       << "): injection_flits=" << ep.injection.size()
       << " injection_credits=" << ep.injection_credits
       << " undelivered_msgs=" << ep.delivery.size()
       << " assembling_flits=" << ep.assembling_flits << '\n';
  }
  // Per-port buffer occupancy for congested routers. Each input port has a
  // single buffer (one virtual channel per port — VCs are unnecessary for
  // deadlock freedom under dimension-order routing); "N=4/4" therefore
  // reads as "the north input VC is full". Output state names the blocked
  // resource: a wormhole lock (`locked=<input port>`) holds the output for
  // an in-flight packet, and credits=0 means the downstream buffer is full.
  const auto port_name = [](std::uint32_t p) -> std::string {
    switch (p) {
      case kPortNorth: return "N";
      case kPortSouth: return "S";
      case kPortEast: return "E";
      case kPortWest: return "W";
      default: return "L" + std::to_string(p - kFirstLocalPort);
    }
  };
  for (const Router& r : routers_) {
    if (r.buffered_flits() == 0) continue;
    os << "    router (" << r.x() << ',' << r.y() << "): buffered_flits="
       << r.buffered_flits() << " in=[";
    for (std::uint32_t p = 0; p < r.num_ports(); ++p) {
      os << (p == 0 ? "" : " ") << port_name(p) << '='
         << r.buffer_occupancy(p) << '/' << params_.input_buffer_flits;
    }
    os << "]\n";
    for (std::uint32_t p = 0; p < r.num_ports(); ++p) {
      const Router::OutputState& out = r.outputs_[p];
      const bool credit_starved = p < kFirstLocalPort && out.credits == 0;
      if (out.locked_input < 0 && !credit_starved) continue;
      os << "      out " << port_name(p) << ": ";
      if (out.locked_input >= 0) {
        os << "locked=" << port_name(static_cast<std::uint32_t>(
                               out.locked_input));
      } else {
        os << "unlocked";
      }
      if (p < kFirstLocalPort) {
        os << " credits=" << out.credits
           << (credit_starved ? " (downstream full)" : "");
      }
      os << '\n';
    }
  }
}

std::uint32_t MeshNetwork::hops_between(EndpointId a, EndpointId b) const {
  const EndpointState& ea = endpoints_.at(a);
  const EndpointState& eb = endpoints_.at(b);
  const auto dx = ea.x > eb.x ? ea.x - eb.x : eb.x - ea.x;
  const auto dy = ea.y > eb.y ? ea.y - eb.y : eb.y - ea.y;
  return dx + dy;
}

}  // namespace gnna::noc
