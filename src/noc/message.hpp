// Message and flit types for the on-chip network.
//
// A Message is the unit components exchange (a memory request, a feature
// vector, an aggregation result...). The network segments it into 64-byte
// flits (Fig 3: 64B-wide crossbar and links), delivers the flits wormhole
// style, and reassembles the Message at the destination endpoint.
//
// Payload fields a/b/c are interpreted by the communicating components;
// the network never looks at them. This keeps the NoC generic (it is also
// used standalone by the NoC microbenchmarks) while avoiding type erasure
// on the hot path.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "common/units.hpp"

namespace gnna::noc {

/// Component-level message kinds. The NoC treats these as opaque tags; they
/// exist so endpoints can dispatch without a registry of callbacks.
enum class MsgKind : std::uint8_t {
  kGeneric = 0,
  kMemReadReq,    // a: address, b: bytes, c: requester tag
  kMemReadResp,   // a: address, b: bytes, c: requester tag
  kMemWriteReq,   // a: address, b: bytes
  kDnqWrite,      // a: queue entry handle, b: word offset, c: vertex
  kDnaResult,     // a: vertex, b: bytes, c: layer
  kAggWrite,      // a: aggregation handle, b: contribution index, c: vertex
  kAggResult,     // a: aggregation handle, c: vertex
  kControl,       // runtime configuration / barrier tokens
};

/// Stable short name, used by trace events and deadlock dumps.
[[nodiscard]] constexpr const char* msg_kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::kGeneric: return "generic";
    case MsgKind::kMemReadReq: return "mem_read_req";
    case MsgKind::kMemReadResp: return "mem_read_resp";
    case MsgKind::kMemWriteReq: return "mem_write_req";
    case MsgKind::kDnqWrite: return "dnq_write";
    case MsgKind::kDnaResult: return "dna_result";
    case MsgKind::kAggWrite: return "agg_write";
    case MsgKind::kAggResult: return "agg_result";
    case MsgKind::kControl: return "control";
  }
  return "?";
}

/// Work-attribution owner id meaning "no owner" (weight preloads, control
/// traffic). Mirrors trace::kUnowned; the NoC itself never inspects it.
inline constexpr std::uint32_t kNoOwner = 0xffffffffU;

/// A component-to-component message.
struct Message {
  EndpointId src = kInvalidEndpoint;
  EndpointId dst = kInvalidEndpoint;
  std::uint32_t payload_bytes = 0;  // semantic size; flits = ceil(/64), min 1
  MsgKind kind = MsgKind::kGeneric;
  /// The global work item (vertex / graph id) whose computation this
  /// message serves, or kNoOwner. Carried end-to-end (responders echo the
  /// request's owner) purely for the attribution trace sink; the timing
  /// model never reads it.
  std::uint32_t owner = kNoOwner;
  /// For requests expecting a response: where the response should be sent.
  /// This is how the GPE's *indirect* asynchronous memory requests work —
  /// the GPE issues the read but the data lands directly in the AGG or DNQ
  /// (Section III). Responders use reply_to when valid, else src.
  EndpointId reply_to = kInvalidEndpoint;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  // Filled in by the network:
  std::uint64_t seq = 0;       // unique packet id
  Cycle injected_at = 0;       // cycle send() was called
  Cycle delivered_at = 0;      // cycle the tail flit was ejected

  [[nodiscard]] std::uint32_t flit_count() const {
    const std::uint32_t f = flits_for_bytes(payload_bytes);
    return f == 0 ? 1 : f;
  }
};

/// One 64-byte flow-control unit.
struct Flit {
  std::uint64_t seq = 0;        // owning packet
  EndpointId dst = kInvalidEndpoint;
  std::uint32_t index = 0;      // position within the packet
  bool head = false;
  bool tail = false;
};

}  // namespace gnna::noc
