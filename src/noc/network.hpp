// Cycle-accurate 2D-mesh network (the Booksim substitute).
//
// MeshNetwork owns the routers, the inter-router links (modeled as delay
// lines), the endpoints, and the credit bookkeeping. Components interact
// only through send() / poll() on their EndpointId plus the global tick().
//
// Flow control: wormhole with credit-based backpressure between routers;
// endpoint injection is credited against the local input buffer; ejection
// is rate-limited to one flit per cycle per local port and reassembled
// messages land in an unbounded delivery queue (components model their own
// admission limits — e.g. the memory controller's 32-entry queue — on top).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/message.hpp"
#include "noc/router.hpp"
#include "trace/trace.hpp"

namespace gnna::noc {

/// Aggregate network statistics.
struct NocStats {
  Counter packets_sent;
  Counter packets_delivered;
  Counter flits_delivered;
  Counter flit_hops;
  Accumulator packet_latency;  // injection -> tail ejection, cycles
};

class MeshNetwork {
 public:
  MeshNetwork(std::uint32_t width, std::uint32_t height,
              NocParams params = {});

  /// Register an endpoint on the router at (x, y). Must precede finalize().
  EndpointId add_endpoint(std::uint32_t x, std::uint32_t y);

  /// Freeze topology and allocate routers. Called implicitly by the first
  /// send()/tick() if needed.
  void finalize();

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }
  [[nodiscard]] std::size_t num_endpoints() const { return endpoints_.size(); }
  [[nodiscard]] Cycle now() const { return now_; }

  /// Inject a message (unbounded injection queue at the source endpoint;
  /// components that need backpressure check injection_queue_depth()).
  void send(Message msg);

  /// Retrieve the next fully-delivered message at `ep`, if any.
  [[nodiscard]] std::optional<Message> poll(EndpointId ep);

  /// Peek without consuming.
  [[nodiscard]] const Message* peek(EndpointId ep) const;

  [[nodiscard]] std::size_t delivery_queue_depth(EndpointId ep) const;
  [[nodiscard]] std::size_t injection_queue_depth(EndpointId ep) const;

  /// Advance one cycle.
  void tick();

  /// True when no flit is buffered, in flight, or awaiting injection and no
  /// message awaits delivery. Used by the runtime's global barriers.
  [[nodiscard]] bool idle() const;

  [[nodiscard]] const NocStats& stats() const { return stats_; }

  /// Attach an event tracer (packet send/deliver). Disabled by default.
  void set_tracer(trace::Tracer t) { tracer_ = t; }

  /// Stable pointer to the cycle counter, for stamping component tracers.
  [[nodiscard]] const Cycle* now_ptr() const { return &now_; }

  /// Packets injected but not yet fully ejected.
  [[nodiscard]] std::size_t inflight_packets() const {
    return inflight_.size();
  }

  /// Deadlock diagnostics: in-flight packets, endpoint queue depths, and
  /// router buffer occupancy (only non-empty state is printed).
  void dump_state(std::ostream& os) const;

  /// Manhattan router distance between two endpoints.
  [[nodiscard]] std::uint32_t hops_between(EndpointId a, EndpointId b) const;

  [[nodiscard]] const Router& router_at(std::uint32_t x,
                                        std::uint32_t y) const {
    return routers_.at(router_index(x, y));
  }

 private:
  struct EndpointState {
    std::uint32_t x = 0;
    std::uint32_t y = 0;
    std::uint32_t local_port = 0;  // absolute port index on the router
    std::deque<Flit> injection;    // segmented flits awaiting injection
    std::uint32_t injection_credits = 0;
    std::deque<Message> delivery;  // reassembled messages
    std::uint32_t assembling_flits = 0;  // flits of in-progress packet seen
  };

  struct LinkEntry {
    Cycle ready_at = 0;
    Flit flit;
    // Destination: either a router input port or an endpoint ejection.
    std::uint32_t dst_router = 0;
    std::uint32_t dst_port = 0;
    bool to_endpoint = false;
    EndpointId endpoint = kInvalidEndpoint;
  };

  struct CreditReturn {
    Cycle ready_at = 0;
    // Either a router output port or an endpoint injection credit.
    std::uint32_t router = 0;
    std::uint32_t port = 0;
    bool to_endpoint = false;
    EndpointId endpoint = kInvalidEndpoint;
  };

  [[nodiscard]] std::uint32_t router_index(std::uint32_t x,
                                           std::uint32_t y) const {
    return y * width_ + x;
  }

  /// Output port a flit at router (x, y) should take toward `dst` (XY
  /// dimension-order: X first, then Y, then the local port).
  [[nodiscard]] std::uint32_t route(const Router& r, EndpointId dst) const;

  void apply_credits();
  void phase_route();
  void phase_arrive();
  void phase_inject();
  void return_credit_for_input(std::uint32_t router, std::uint32_t port);

  std::uint32_t width_;
  std::uint32_t height_;
  NocParams params_;
  bool finalized_ = false;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 1;

  std::vector<Router> routers_;
  std::vector<std::uint32_t> local_ports_per_router_;
  // (router, local port - kFirstLocalPort) -> owning endpoint, built by
  // finalize() so credit returns need no endpoint scan.
  std::vector<std::vector<EndpointId>> local_port_owner_;
  std::vector<EndpointState> endpoints_;
  std::deque<LinkEntry> links_;          // in-flight flits (small, scanned)
  std::deque<CreditReturn> credits_;     // in-flight credit returns
  std::unordered_map<std::uint64_t, Message> inflight_;
  NocStats stats_;
  trace::Tracer tracer_;
};

}  // namespace gnna::noc
