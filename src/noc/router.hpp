// Wormhole mesh router with credit-based flow control.
//
// Port layout: 0..3 are the mesh directions (N, S, E, W); ports 4.. are
// local ports, one per attached endpoint. A GNN accelerator tile therefore
// *is* one of these routers with three local ports (GPE, AGG, DNQ/DNA) —
// the "64B wide 7x7 crossbar switch" of Fig 3 — and a memory node is a
// router with a single local port.
//
// Timing (Table IV): routing delay 1 cycle (input buffer -> crossbar) and
// link delay 1 cycle (crossbar -> downstream buffer), modeled as a two-phase
// tick; input buffers hold 4 flits (256B); routing is minimal
// dimension-order XY, which is deadlock-free on a mesh.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/message.hpp"

namespace gnna::noc {

/// Dimension-order routing variants (both minimal and deadlock-free on a
/// mesh; Table IV specifies "min-routing").
enum class RoutingAlgorithm : std::uint8_t {
  kXY,  // resolve X first, then Y (default)
  kYX,  // resolve Y first, then X
};

/// Table IV parameters.
struct NocParams {
  std::uint32_t input_buffer_flits = 4;  // 4 flits = 256B
  std::uint32_t link_delay = 1;          // cycles
  std::uint32_t routing_delay = 1;       // cycles
  RoutingAlgorithm routing = RoutingAlgorithm::kXY;
};

inline constexpr std::uint32_t kPortNorth = 0;
inline constexpr std::uint32_t kPortSouth = 1;
inline constexpr std::uint32_t kPortEast = 2;
inline constexpr std::uint32_t kPortWest = 3;
inline constexpr std::uint32_t kFirstLocalPort = 4;

class MeshNetwork;

/// One router in the mesh. Owned and ticked by MeshNetwork.
class Router {
 public:
  Router(std::uint32_t x, std::uint32_t y, std::uint32_t num_local_ports,
         const NocParams& params);

  [[nodiscard]] std::uint32_t x() const { return x_; }
  [[nodiscard]] std::uint32_t y() const { return y_; }
  [[nodiscard]] std::uint32_t num_ports() const {
    return kFirstLocalPort + num_local_;
  }

  /// True if input buffer `port` can accept a flit this cycle.
  [[nodiscard]] bool can_accept(std::uint32_t port) const {
    return buffers_[port].size() < params_.input_buffer_flits;
  }

  /// Deposit a flit into input buffer `port` (caller must hold a credit).
  void accept(std::uint32_t port, const Flit& flit) {
    buffers_[port].push_back(flit);
    ++buffered_flits_;
  }

  /// Total flits across all input buffers (fast idle check).
  [[nodiscard]] std::uint32_t buffered_flits() const {
    return buffered_flits_;
  }

  [[nodiscard]] std::size_t buffer_occupancy(std::uint32_t port) const {
    return buffers_[port].size();
  }

 private:
  friend class MeshNetwork;

  struct OutputState {
    // Wormhole: the input port currently holding this output, or -1.
    int locked_input = -1;
    // Round-robin arbitration pointer.
    std::uint32_t rr_next = 0;
    // Credits available at the downstream input buffer (mesh ports only;
    // local/ejection ports are rate-limited, not credited).
    std::uint32_t credits = 0;
    // Whether this output already forwarded a flit this cycle.
    bool busy_this_cycle = false;
    BusyTracker busy;
  };

  std::uint32_t x_;
  std::uint32_t y_;
  std::uint32_t num_local_;
  NocParams params_;
  std::uint32_t buffered_flits_ = 0;
  std::vector<std::deque<Flit>> buffers_;  // per input port
  std::vector<OutputState> outputs_;       // per output port
  // Per-cycle crossbar scratch: an input port has one crossbar connection,
  // so at most one flit may leave it per cycle. Cleared each phase_route.
  std::vector<std::uint8_t> input_moved_;
};

}  // namespace gnna::noc
