#include "baseline/dnn_accel_study.hpp"

namespace gnna::baseline {

DnnAccelResult run_dnn_accel_study(graph::DatasetId dataset,
                                   const DnnAccelStudyParams& params) {
  const graph::DatasetSpec& spec = graph::dataset_spec(dataset);
  DnnAccelResult res;
  res.dataset = spec.name;

  const auto n = static_cast<std::uint64_t>(spec.total_nodes);
  const auto f = static_cast<std::uint64_t>(spec.vertex_features);
  const auto h = static_cast<std::uint64_t>(params.gcn_hidden);
  const auto c = static_cast<std::uint64_t>(spec.output_features);
  // Adjacency density as the paper counts it: E nonzeros in the dense
  // N x N vertex adjacency matrix.
  const double density =
      static_cast<double>(spec.total_edges) /
      (static_cast<double>(n) * static_cast<double>(n));
  res.adjacency_sparsity = 1.0 - density;

  // GCN as the paper describes it for this study: a series of FC layers
  // (projections, dense weights) and convolutions whose weights are the
  // adjacency matrix (sparse). Project-first order, A * (H W). The conv is
  // framed transposed (C^T = (HW)^T A^T) so the adjacency occupies the
  // weight operand of the mapper, exactly as "a convolution with the
  // adjacency matrix as the weights".
  res.layers = {
      {"proj1", {n, f, h, 1.0}, {}},
      {"conv1 (A)", {h, n, n, density}, {}},
      {"proj2", {n, h, c, 1.0}, {}},
      {"conv2 (A)", {c, n, n, density}, {}},
  };

  const dataflow::Mapper mapper(params.array);
  dataflow::MappingStats totals;
  std::uint64_t lat_unlimited = 0;
  std::uint64_t lat_bw = 0;
  for (auto& layer : res.layers) {
    layer.stats = mapper.map(layer.shape, params.bandwidth, params.clock);
    totals += layer.stats;
    lat_unlimited += layer.stats.latency_cycles(params.clock, std::nullopt);
    lat_bw += layer.stats.latency_cycles(params.clock, params.bandwidth);
  }

  res.latency_unlimited_ms =
      params.clock.cycles_to_millis(static_cast<double>(lat_unlimited));
  res.latency_bw_ms =
      params.clock.cycles_to_millis(static_cast<double>(lat_bw));

  // Fig 2: bandwidth demand and PE utilization when the array is
  // compute-paced (unlimited bandwidth).
  const double compute_seconds = params.clock.cycles_to_seconds(
      static_cast<double>(totals.compute_cycles));
  if (compute_seconds > 0.0) {
    res.offchip_bw_total_gbps =
        static_cast<double>(totals.dram_bytes_total) / compute_seconds / 1e9;
    res.offchip_bw_useful_gbps =
        static_cast<double>(totals.dram_bytes_useful) / compute_seconds / 1e9;
  }
  res.pe_util_total = totals.pe_utilization_total(params.array);
  res.pe_util_useful = totals.pe_utilization_useful(params.array);

  res.useful_compute_fraction =
      totals.total_macs == 0
          ? 0.0
          : static_cast<double>(totals.useful_macs) /
                static_cast<double>(totals.total_macs);
  res.useful_memory_fraction =
      totals.dram_bytes_total == 0
          ? 0.0
          : static_cast<double>(totals.dram_bytes_useful) /
                static_cast<double>(totals.dram_bytes_total);
  return res;
}

}  // namespace gnna::baseline
