// The Section II study: GCN running on a plain DNN spatial-architecture
// accelerator (Table I), with the graph convolution expressed as a dense
// convolution whose weights are the adjacency matrix. Produces Table II
// (inference latencies at unlimited and 68 GB/s bandwidth) and Fig 2
// (off-chip bandwidth and PE utilization, total vs useful).
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "dataflow/spatial.hpp"
#include "graph/dataset.hpp"

namespace gnna::baseline {

struct DnnAccelLayer {
  std::string name;
  dataflow::MatmulShape shape;
  dataflow::MappingStats stats;
};

struct DnnAccelResult {
  std::string dataset;
  std::vector<DnnAccelLayer> layers;

  double adjacency_sparsity = 0.0;

  double latency_unlimited_ms = 0.0;
  double latency_bw_ms = 0.0;  // at the configured bandwidth

  // Fig 2 quantities (at unlimited bandwidth, compute-paced):
  double offchip_bw_total_gbps = 0.0;
  double offchip_bw_useful_gbps = 0.0;
  double pe_util_total = 0.0;
  double pe_util_useful = 0.0;

  // Overall useful fractions quoted in the text ("only 1% of the memory
  // requests and 2% of the compute are useful" for Pubmed).
  double useful_compute_fraction = 0.0;
  double useful_memory_fraction = 0.0;
};

struct DnnAccelStudyParams {
  dataflow::SpatialArrayConfig array =
      dataflow::SpatialArrayConfig::eyeriss();  // Table I
  Frequency clock = Frequency::giga_hertz(2.4);
  Bandwidth bandwidth = Bandwidth::gb_per_s(68.0);
  std::uint32_t gcn_hidden = 16;
};

/// Run the study for one input graph dataset.
[[nodiscard]] DnnAccelResult run_dnn_accel_study(
    graph::DatasetId dataset, const DnnAccelStudyParams& params = {});

}  // namespace gnna::baseline
