// Baseline execution platforms.
//
// The paper measures its baselines on real hardware (Table III: a 14-core
// Xeon E5-2680v4 and a Titan XP) running the public reference
// implementations of each benchmark, and reports the results in Table VII.
// We cannot run that stack offline, so (DESIGN.md §4):
//
//  * table7_reference() carries the paper's measured numbers as data —
//    they are the denominators of the Fig 8 speedups, exactly as in the
//    paper;
//  * CPU/GPU DeviceModels provide an independent analytical estimate
//    (roofline + framework-dispatch overhead) fed by the WorkProfile, so
//    the anchors can be sanity-checked; EXPERIMENTS.md records
//    model-vs-measured deviations.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "gnn/model.hpp"
#include "gnn/workload.hpp"
#include "graph/dataset.hpp"

namespace gnna::baseline {

/// Analytical model of one baseline device.
struct DeviceModel {
  std::string name;
  double fixed_overhead_ms = 0.0;  // session / driver setup per inference
  double op_dispatch_ms = 0.0;     // per framework op / kernel launch
  double dense_gflops = 0.0;       // sustained on the models' thin GEMMs
  double edge_gflops = 0.0;        // sustained on per-edge irregular compute
  double agg_gadds = 0.0;          // sparse aggregation adds per second
  double mem_gbps = 0.0;           // sustained streaming bandwidth
};

/// Table III CPU: 14-core Xeon E5-2680v4 @ 2.4 GHz, 4x DDR4-2133.
[[nodiscard]] DeviceModel cpu_xeon_e5_2680v4();

/// Table III GPU: NVIDIA Titan XP @ 1582 MHz, GDDR5X @ 547.7 GB/s.
[[nodiscard]] DeviceModel gpu_titan_xp();

/// Density of the *input* feature matrix in the reference implementations
/// (citation datasets use sparse bag-of-words features; the first layer's
/// projection only touches nonzeros). Synthetic value matched to the real
/// datasets; 1.0 where the reference uses dense features.
[[nodiscard]] double input_feature_density(graph::DatasetId id);

/// Estimated inference latency of `work` on `dev`. `input_density` scales
/// the first layer's dense MACs and feature bytes (sparse-input trick).
[[nodiscard]] double estimate_latency_ms(const DeviceModel& dev,
                                         const gnn::WorkProfile& work,
                                         double input_density);

/// One row of Table VII (the paper's measured baseline latencies).
struct Table7Row {
  gnn::Benchmark benchmark;
  double cpu_ms;
  double gpu_ms;
};

/// The paper's Table VII, in paper order.
[[nodiscard]] std::span<const Table7Row> table7_reference();

/// Measured baseline latency for `b` (paper data).
[[nodiscard]] Table7Row table7_row(gnn::Benchmark b);

}  // namespace gnna::baseline
