#include "baseline/baselines.hpp"

#include <array>
#include <stdexcept>

namespace gnna::baseline {

DeviceModel cpu_xeon_e5_2680v4() {
  DeviceModel d;
  d.name = "CPU (Xeon E5-2680v4, 14c @ 2.4GHz)";
  d.fixed_overhead_ms = 1.0;  // TF session + input staging
  d.op_dispatch_ms = 0.06;    // per framework op on small tensors
  // Peak fp32 ~1.07 TFLOP/s; thin GNN GEMMs sustain a few percent.
  d.dense_gflops = 54.0;
  // Per-edge work (attention coefficients, edge MLPs) is batched into
  // GEMMs by the reference frameworks, so it sustains nearly dense rates.
  d.edge_gflops = 50.0;
  d.agg_gadds = 2.0;
  d.mem_gbps = 40.0;
  return d;
}

DeviceModel gpu_titan_xp() {
  DeviceModel d;
  d.name = "GPU (Titan XP @ 1582MHz)";
  d.fixed_overhead_ms = 0.05;
  d.op_dispatch_ms = 0.012;  // kernel launch + framework dispatch
  // Peak fp32 ~12.1 TFLOP/s; small irregular kernels sustain far less.
  d.dense_gflops = 1800.0;
  d.edge_gflops = 1500.0;
  d.agg_gadds = 30.0;
  d.mem_gbps = 330.0;  // ~60% of 547.7 GB/s on streaming access
  return d;
}

double input_feature_density(graph::DatasetId id) {
  switch (id) {
    case graph::DatasetId::kCora:
      return 0.0127;  // bag-of-words, 1433 dims
    case graph::DatasetId::kCiteseer:
      return 0.0085;  // bag-of-words, 3703 dims
    case graph::DatasetId::kPubmed:
      return 0.10;  // TF-IDF, 500 dims
    case graph::DatasetId::kQm9_1000:
    case graph::DatasetId::kDblp1:
      return 1.0;  // dense small features
  }
  return 1.0;
}

double estimate_latency_ms(const DeviceModel& dev,
                           const gnn::WorkProfile& work,
                           double input_density) {
  double ms = dev.fixed_overhead_ms;
  bool first_layer = true;
  for (const auto& l : work.layers) {
    const double density = first_layer ? input_density : 1.0;
    first_layer = false;
    const double dense_flops = 2.0 * static_cast<double>(l.dense_macs) * density;
    const double edge_flops = 2.0 * static_cast<double>(l.edge_macs);
    const double bytes =
        static_cast<double>(l.feature_read_bytes) * density +
        static_cast<double>(l.feature_write_bytes + l.structure_bytes +
                            l.weight_bytes);
    const double compute_ms = dense_flops / dev.dense_gflops * 1e-6 +
                              edge_flops / dev.edge_gflops * 1e-6 +
                              static_cast<double>(l.agg_adds) /
                                  dev.agg_gadds * 1e-6;
    const double mem_ms = bytes / dev.mem_gbps * 1e-6;
    // Compute and memory overlap; dispatch does not.
    ms += std::max(compute_ms, mem_ms) +
          static_cast<double>(l.launches) * dev.op_dispatch_ms;
  }
  return ms;
}

namespace {
// Table VII of the paper, verbatim.
constexpr std::array<Table7Row, 6> kTable7 = {{
    {gnn::Benchmark::kGcnCora, 3.50, 0.366},
    {gnn::Benchmark::kGcnCiteseer, 3.97, 0.391},
    {gnn::Benchmark::kGcnPubmed, 30.11, 0.893},
    {gnn::Benchmark::kGatCora, 13.60, 0.801},
    {gnn::Benchmark::kMpnnQm9, 2716.00, 443.3},
    {gnn::Benchmark::kPgnnDblp, 15.70, 7.50},
}};
}  // namespace

std::span<const Table7Row> table7_reference() { return kTable7; }

Table7Row table7_row(gnn::Benchmark b) {
  for (const auto& row : kTable7) {
    if (row.benchmark == b) return row;
  }
  throw std::invalid_argument("table7_row: unknown benchmark");
}

}  // namespace gnna::baseline
