#include "mem/memory.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <stdexcept>
#include <string>

namespace gnna::mem {

std::optional<MemScheduler> mem_scheduler_by_name(std::string_view name) {
  std::string s;
  s.reserve(name.size());
  for (const char c : name) s.push_back(c == '-' ? '_' : c);
  if (s == "in_order" || s == "inorder") return MemScheduler::kInOrder;
  if (s == "frfcfs" || s == "fr_fcfs") return MemScheduler::kFrFcfs;
  return std::nullopt;
}

void validate(const MemParams& p) {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("MemParams: " + what);
  };
  if (p.queue_entries == 0) fail("queue_entries must be >= 1");
  if (p.access_granularity == 0) fail("access_granularity must be >= 1");
  if (p.latency_ns < 0.0) fail("latency_ns must be >= 0");
  if (p.scheduler == MemScheduler::kFrFcfs) {
    if (p.banks == 0) fail("frfcfs needs banks >= 1");
    if (p.banks > 1024) fail("banks > 1024 is surely a typo");
    if (p.window_entries == 0) fail("frfcfs needs window_entries >= 1");
    if (p.bank_interleave_bytes == 0) fail("bank_interleave_bytes must be >= 1");
    if (p.row_bytes == 0 || p.row_bytes % p.bank_interleave_bytes != 0) {
      fail("row_bytes must be a positive multiple of bank_interleave_bytes");
    }
    if (p.row_hit_ns < 0.0 || p.row_miss_ns < 0.0) {
      fail("row latencies must be >= 0");
    }
  }
}

MemoryController::MemoryController(noc::MeshNetwork& net, EndpointId endpoint,
                                   MemParams params, Frequency clk)
    : net_(net),
      endpoint_(endpoint),
      params_(params),
      clk_(clk),
      frfcfs_(params.scheduler == MemScheduler::kFrFcfs),
      bytes_per_cycle_(params.bandwidth.bytes_per_cycle(clk)),
      latency_cycles_(static_cast<double>(
          clk.nanos_to_cycles(params.latency_ns))) {
  validate(params_);
  if (frfcfs_) {
    row_hit_cycles_ =
        static_cast<double>(clk.nanos_to_cycles(params_.row_hit_ns));
    row_miss_cycles_ =
        static_cast<double>(clk.nanos_to_cycles(params_.row_miss_ns));
    reorder_ = row_hit_cycles_ != row_miss_cycles_;
    granules_per_row_ = params_.row_bytes / params_.bank_interleave_bytes;
    banks_.resize(params_.banks);
    stats_.banks.resize(params_.banks);
  }
}

void MemoryController::tick() {
  const auto now = static_cast<double>(net_.now());
  admit(now);
  if (frfcfs_) schedule_frfcfs(now);
  retire(now);
  sample_depth();
}

void MemoryController::admit(double now) {
  // Admit new requests while the queue (in-order) / scheduling window
  // (FR-FCFS) has room. Requests beyond that wait, unseen, in the NoC
  // delivery queue — the backpressure the paper's model implies.
  const std::uint32_t capacity =
      frfcfs_ ? params_.window_entries : params_.queue_entries;
  while (queue_.size() < capacity) {
    const noc::Message* head = net_.peek(endpoint_);
    if (head == nullptr) break;
    auto msg = net_.poll(endpoint_);
    assert(msg.has_value());

    // Oversized requests would overflow the 32-bit response payload field
    // and silently truncate; reject them here, at admission, for both
    // schedulers.
    if (msg->b > kMaxRequestBytes) {
      throw std::invalid_argument(
          "MemoryController: request of " + std::to_string(msg->b) +
          " bytes from endpoint " + std::to_string(msg->src) +
          " exceeds the 4GiB-1 response payload limit");
    }

    const std::uint64_t requested = msg->b;
    // Granularity: unaligned / partial requests still burn whole 64B lines.
    const std::uint64_t addr = msg->a;
    const std::uint64_t first_line = addr / params_.access_granularity;
    const std::uint64_t last_line =
        (addr + std::max<std::uint64_t>(requested, 1) - 1) /
        params_.access_granularity;
    const std::uint64_t served_bytes =
        (last_line - first_line + 1) * params_.access_granularity;

    InFlight inf;
    inf.request = *msg;
    inf.served_bytes = served_bytes;
    switch (msg->kind) {
      case noc::MsgKind::kMemReadReq:
        stats_.read_requests.add();
        break;
      case noc::MsgKind::kMemWriteReq:
        // Writes hold their queue slot until the data bus has moved their
        // bytes; they retire silently (no response message) but exert the
        // same backpressure as reads.
        stats_.write_requests.add();
        inf.is_write = true;
        break;
      default:
        // Unknown traffic to a memory endpoint is a wiring bug.
        assert(false && "MemoryController: unexpected message kind");
        break;
    }
    stats_.bytes_requested.add(requested);

    if (frfcfs_) {
      // Bank/row mapping: addresses interleave across banks at
      // `bank_interleave_bytes` stride; a bank's consecutive granules fill
      // rows of `row_bytes`. Multi-line requests are classified by their
      // first granule.
      const std::uint64_t granule = addr / params_.bank_interleave_bytes;
      inf.bank = static_cast<std::uint32_t>(granule % params_.banks);
      inf.row = (granule / params_.banks) / granules_per_row_;
      if (params_.bank_xor) {
        // XOR-permute the bank with the row index so row-stride access
        // patterns rotate across banks instead of camping on one. The
        // double modulo keeps the permutation a bijection on [0, banks)
        // for non-power-of-two bank counts too.
        inf.bank = static_cast<std::uint32_t>(
            (inf.bank ^ (inf.row % params_.banks)) % params_.banks);
      }
      // Scheduling happens in schedule_frfcfs(); the request just joins
      // the window here.
    } else {
      // In-order service: the data bus is busy for the transfer time; the
      // fixed access latency overlaps pipelining of later requests.
      const double start = std::max(dram_free_at_, now);
      const double transfer =
          static_cast<double>(served_bytes) / bytes_per_cycle_;
      dram_free_at_ = start + transfer;
      stats_.bytes_served.add(served_bytes);
      inf.respond_at =
          inf.is_write ? dram_free_at_ : dram_free_at_ + latency_cycles_;
      inf.issued = true;
      if (tracer_.enabled()) {
        tracer_.complete(inf.is_write ? "write" : "read", start, transfer,
                         addr, served_bytes);
      }
    }
    queue_.push_back(inf);
  }
}

void MemoryController::schedule_frfcfs(double now) {
  // Issue one transfer at a time while the data bus is free within a
  // one-cycle lookahead. Starting each transfer at max(dram_free_at_, now)
  // chains fractional-cycle bus reservations exactly like the in-order
  // model's admission-time scheduling, which is what makes the one-bank,
  // equal-latency degenerate case bit-identical (DESIGN.md §11).
  while (dram_free_at_ <= now + 1.0) {
    InFlight* oldest = nullptr;
    InFlight* pick = nullptr;
    for (InFlight& f : queue_) {
      if (f.issued) continue;
      if (oldest == nullptr) oldest = &f;  // queue_ is admission-ordered
      if (pick == nullptr && reorder_) {
        const Bank& bk = banks_[f.bank];
        if (bk.open && bk.row == f.row) pick = &f;  // first ready row-hit
      }
      if (oldest != nullptr && pick != nullptr) break;
    }
    if (oldest == nullptr) break;  // window has nothing unissued
    // First-ready (row hit) wins over oldest-first — unless the oldest
    // request has been bypassed starvation_cap times already.
    if (pick == nullptr || oldest->bypassed >= params_.starvation_cap) {
      pick = oldest;
    }
    if (pick != oldest) {
      for (InFlight& f : queue_) {
        if (&f == pick) break;  // everything before pick is older
        if (!f.issued) ++f.bypassed;
      }
    }

    Bank& bk = banks_[pick->bank];
    const bool hit = bk.open && bk.row == pick->row;
    const double start = std::max(dram_free_at_, now);
    const double transfer =
        static_cast<double>(pick->served_bytes) / bytes_per_cycle_;
    dram_free_at_ = start + transfer;
    const double done =
        dram_free_at_ + (hit ? row_hit_cycles_ : row_miss_cycles_);
    // Writes free their window slot once the bus has moved their data
    // (same backpressure contract as the in-order model); the row
    // activation shows up only in the bank-busy accounting.
    pick->respond_at = pick->is_write ? dram_free_at_ : done;
    pick->issued = true;
    bk.open = true;
    bk.row = pick->row;

    BankStats& bs = stats_.banks[pick->bank];
    const double busy_from = std::max(start, bk.busy_until);
    if (done > busy_from) bs.busy_cycles += done - busy_from;
    bk.busy_until = std::max(bk.busy_until, done);
    (hit ? bs.row_hits : bs.row_misses).add();
    stats_.bytes_served.add(pick->served_bytes);

    if (tracer_.enabled()) {
      tracer_.complete(pick->is_write ? "write" : "read", start, transfer,
                       pick->request.a, pick->served_bytes);
      tracer_.instant(hit ? "row_hit" : "row_miss", pick->request.a,
                      pick->bank);
      const std::uint64_t hits = row_hits();
      const std::uint64_t total = hits + row_misses();
      tracer_.counter("row_hit_rate",
                      total == 0 ? 0.0
                                 : 100.0 * static_cast<double>(hits) /
                                       static_cast<double>(total));
    }
  }
}

void MemoryController::respond(const InFlight& head) {
  const noc::Message& req = head.request;
  noc::Message resp;
  resp.src = endpoint_;
  resp.dst = req.reply_to != kInvalidEndpoint ? req.reply_to : req.src;
  resp.kind = noc::MsgKind::kMemReadResp;
  // Safe: b <= kMaxRequestBytes was enforced at admission.
  resp.payload_bytes = static_cast<std::uint32_t>(req.b);
  resp.owner = req.owner;
  resp.a = req.a;
  resp.b = req.b;
  resp.c = req.c;
  net_.send(resp);
  if (tracer_.enabled()) tracer_.instant("resp", req.a, req.b);
}

void MemoryController::retire(double now) {
  if (!frfcfs_) {
    // Retire completed requests in order; only reads produce a response.
    // A slot freed here is usable by admit() only next tick — the
    // intended 1-cycle slot-recycle latency (admission runs before
    // retirement within one tick).
    while (!queue_.empty() && queue_.front().respond_at <= now) {
      const InFlight& head = queue_.front();
      if (!head.is_write) respond(head);
      queue_.pop_front();
    }
    return;
  }
  // FR-FCFS: completions may be out of admission order. Responses for
  // requests completing on the same tick go out in admission order (the
  // NoC injection queue serializes them anyway), keeping runs
  // deterministic.
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->issued && it->respond_at <= now) {
      if (!it->is_write) respond(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void MemoryController::sample_depth() {
  // Time-weighted occupancy: when the depth changes, credit the previous
  // depth with the cycles it was held, then record the new depth at zero
  // weight so max() stays exact even if the run ends before the next
  // change. (An every-cycle add would serialize a Welford division on the
  // hot path for a series nobody reads per cycle.)
  if (queue_.size() != last_sampled_depth_) {
    const Cycle nowc = net_.now();
    stats_.queue_depth.add_weighted(
        static_cast<double>(last_sampled_depth_),
        static_cast<double>(nowc - last_depth_change_));
    last_sampled_depth_ = queue_.size();
    last_depth_change_ = nowc;
    stats_.queue_depth.add_weighted(static_cast<double>(last_sampled_depth_),
                                    0.0);
    if (frfcfs_ && tracer_.enabled()) {
      tracer_.counter("window_occupancy",
                      static_cast<double>(last_sampled_depth_));
    }
  }
}

std::uint64_t MemoryController::row_hits() const {
  std::uint64_t n = 0;
  for (const BankStats& b : stats_.banks) n += b.row_hits.value();
  return n;
}

std::uint64_t MemoryController::row_misses() const {
  std::uint64_t n = 0;
  for (const BankStats& b : stats_.banks) n += b.row_misses.value();
  return n;
}

double MemoryController::row_hit_rate() const {
  const std::uint64_t hits = row_hits();
  const std::uint64_t total = hits + row_misses();
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void MemoryController::dump_state(std::ostream& os) const {
  const std::uint32_t capacity =
      frfcfs_ ? params_.window_entries : params_.queue_entries;
  os << "  mem endpoint " << endpoint_ << " ["
     << mem_scheduler_name(params_.scheduler) << "]: queue=" << queue_.size()
     << '/' << capacity << " inbox=" << net_.delivery_queue_depth(endpoint_)
     << " dram_free_at=" << dram_free_at_
     << " bytes_served=" << stats_.bytes_served.value() << '\n';
  if (frfcfs_) {
    for (std::size_t b = 0; b < banks_.size(); ++b) {
      const Bank& bk = banks_[b];
      const BankStats& bs = stats_.banks[b];
      if (!bk.open && bs.row_hits.value() + bs.row_misses.value() == 0) {
        continue;  // untouched bank: nothing to report
      }
      os << "    bank " << b << ": row="
         << (bk.open ? std::to_string(bk.row) : std::string("closed"))
         << " busy_until=" << bk.busy_until
         << " hits=" << bs.row_hits.value()
         << " misses=" << bs.row_misses.value() << '\n';
    }
  }
  std::size_t shown = 0;
  for (const InFlight& f : queue_) {
    if (shown == 8) {
      os << "    ... " << queue_.size() - shown << " more queued\n";
      break;
    }
    ++shown;
    os << "    " << (f.is_write ? "write" : "read ") << " addr=0x" << std::hex
       << f.request.a << std::dec << " bytes=" << f.request.b;
    if (frfcfs_) {
      os << " bank=" << f.bank << " row=" << f.row
         << (f.issued ? " issued" : " waiting")
         << " bypassed=" << f.bypassed;
    }
    if (f.issued) os << " done_at=" << f.respond_at;
    os << '\n';
  }
}

double MemoryController::mean_bandwidth_bytes_per_s(Cycle elapsed) const {
  if (elapsed == 0) return 0.0;
  const double seconds = clk_.cycles_to_seconds(static_cast<double>(elapsed));
  return static_cast<double>(stats_.bytes_served.value()) / seconds;
}

}  // namespace gnna::mem
