#include "mem/memory.hpp"

#include <algorithm>
#include <cassert>

namespace gnna::mem {

MemoryController::MemoryController(noc::MeshNetwork& net, EndpointId endpoint,
                                   MemParams params, Frequency clk)
    : net_(net),
      endpoint_(endpoint),
      params_(params),
      clk_(clk),
      bytes_per_cycle_(params.bandwidth.bytes_per_cycle(clk)),
      latency_cycles_(static_cast<double>(
          clk.nanos_to_cycles(params.latency_ns))) {}

void MemoryController::tick() {
  const auto now = static_cast<double>(net_.now());

  // Admit new requests while the 32-entry queue has room. Requests beyond
  // that wait, unseen, in the NoC delivery queue — the backpressure the
  // paper's model implies.
  while (queue_.size() < params_.queue_entries) {
    const noc::Message* head = net_.peek(endpoint_);
    if (head == nullptr) break;
    auto msg = net_.poll(endpoint_);
    assert(msg.has_value());

    const std::uint64_t requested = msg->b;
    // Granularity: unaligned / partial requests still burn whole 64B lines.
    const std::uint64_t addr = msg->a;
    const std::uint64_t first_line = addr / params_.access_granularity;
    const std::uint64_t last_line =
        (addr + std::max<std::uint64_t>(requested, 1) - 1) /
        params_.access_granularity;
    const std::uint64_t served_bytes =
        (last_line - first_line + 1) * params_.access_granularity;

    // In-order service: the data bus is busy for the transfer time; the
    // fixed access latency overlaps pipelining of later requests.
    const double start = std::max(dram_free_at_, now);
    const double transfer =
        static_cast<double>(served_bytes) / bytes_per_cycle_;
    dram_free_at_ = start + transfer;

    stats_.bytes_requested.add(requested);
    stats_.bytes_served.add(served_bytes);

    switch (msg->kind) {
      case noc::MsgKind::kMemReadReq: {
        stats_.read_requests.add();
        InFlight inf;
        inf.request = *msg;
        inf.respond_at = dram_free_at_ + latency_cycles_;
        queue_.push_back(inf);
        break;
      }
      case noc::MsgKind::kMemWriteReq:
        stats_.write_requests.add();
        // Writes complete silently once bandwidth is accounted.
        break;
      default:
        // Unknown traffic to a memory endpoint is a wiring bug.
        assert(false && "MemoryController: unexpected message kind");
        break;
    }
  }

  // Issue responses for reads whose data has arrived. In-order: only the
  // head may respond.
  while (!queue_.empty() &&
         queue_.front().respond_at <= now) {
    const noc::Message& req = queue_.front().request;
    noc::Message resp;
    resp.src = endpoint_;
    resp.dst = req.reply_to != kInvalidEndpoint ? req.reply_to : req.src;
    resp.kind = noc::MsgKind::kMemReadResp;
    resp.payload_bytes = static_cast<std::uint32_t>(req.b);
    resp.a = req.a;
    resp.b = req.b;
    resp.c = req.c;
    net_.send(resp);
    queue_.pop_front();
  }

  stats_.queue_depth.add(static_cast<double>(queue_.size()));
}

double MemoryController::mean_bandwidth_bytes_per_s(Cycle elapsed) const {
  if (elapsed == 0) return 0.0;
  const double seconds = clk_.cycles_to_seconds(static_cast<double>(elapsed));
  return static_cast<double>(stats_.bytes_served.value()) / seconds;
}

}  // namespace gnna::mem
