#include "mem/memory.hpp"

#include <algorithm>
#include <cassert>

namespace gnna::mem {

MemoryController::MemoryController(noc::MeshNetwork& net, EndpointId endpoint,
                                   MemParams params, Frequency clk)
    : net_(net),
      endpoint_(endpoint),
      params_(params),
      clk_(clk),
      bytes_per_cycle_(params.bandwidth.bytes_per_cycle(clk)),
      latency_cycles_(static_cast<double>(
          clk.nanos_to_cycles(params.latency_ns))) {}

void MemoryController::tick() {
  const auto now = static_cast<double>(net_.now());

  // Admit new requests while the 32-entry queue has room. Requests beyond
  // that wait, unseen, in the NoC delivery queue — the backpressure the
  // paper's model implies.
  while (queue_.size() < params_.queue_entries) {
    const noc::Message* head = net_.peek(endpoint_);
    if (head == nullptr) break;
    auto msg = net_.poll(endpoint_);
    assert(msg.has_value());

    const std::uint64_t requested = msg->b;
    // Granularity: unaligned / partial requests still burn whole 64B lines.
    const std::uint64_t addr = msg->a;
    const std::uint64_t first_line = addr / params_.access_granularity;
    const std::uint64_t last_line =
        (addr + std::max<std::uint64_t>(requested, 1) - 1) /
        params_.access_granularity;
    const std::uint64_t served_bytes =
        (last_line - first_line + 1) * params_.access_granularity;

    // In-order service: the data bus is busy for the transfer time; the
    // fixed access latency overlaps pipelining of later requests.
    const double start = std::max(dram_free_at_, now);
    const double transfer =
        static_cast<double>(served_bytes) / bytes_per_cycle_;
    dram_free_at_ = start + transfer;

    stats_.bytes_requested.add(requested);
    stats_.bytes_served.add(served_bytes);

    InFlight inf;
    inf.request = *msg;
    switch (msg->kind) {
      case noc::MsgKind::kMemReadReq:
        stats_.read_requests.add();
        inf.respond_at = dram_free_at_ + latency_cycles_;
        if (tracer_.enabled()) {
          tracer_.complete("read", start, transfer, addr, served_bytes);
        }
        break;
      case noc::MsgKind::kMemWriteReq:
        // Writes hold their in-order queue slot until the data bus has
        // moved their bytes; they retire silently (no response message)
        // but exert the same backpressure as reads.
        stats_.write_requests.add();
        inf.is_write = true;
        inf.respond_at = dram_free_at_;
        if (tracer_.enabled()) {
          tracer_.complete("write", start, transfer, addr, served_bytes);
        }
        break;
      default:
        // Unknown traffic to a memory endpoint is a wiring bug.
        assert(false && "MemoryController: unexpected message kind");
        break;
    }
    queue_.push_back(inf);
  }

  // Retire completed requests in order; only reads produce a response.
  while (!queue_.empty() &&
         queue_.front().respond_at <= now) {
    const InFlight& head = queue_.front();
    if (!head.is_write) {
      const noc::Message& req = head.request;
      noc::Message resp;
      resp.src = endpoint_;
      resp.dst = req.reply_to != kInvalidEndpoint ? req.reply_to : req.src;
      resp.kind = noc::MsgKind::kMemReadResp;
      resp.payload_bytes = static_cast<std::uint32_t>(req.b);
      resp.a = req.a;
      resp.b = req.b;
      resp.c = req.c;
      net_.send(resp);
      if (tracer_.enabled()) tracer_.instant("resp", req.a, req.b);
    }
    queue_.pop_front();
  }

  // Sample the queue depth only when it changes: max (what the capacity
  // invariant checks) is exact, and an every-cycle add would serialize a
  // Welford division on the hot path for a series nobody reads per cycle.
  if (queue_.size() != last_sampled_depth_) {
    last_sampled_depth_ = queue_.size();
    stats_.queue_depth.add(static_cast<double>(last_sampled_depth_));
  }
}

void MemoryController::dump_state(std::ostream& os) const {
  os << "  mem endpoint " << endpoint_ << ": queue=" << queue_.size() << '/'
     << params_.queue_entries
     << " inbox=" << net_.delivery_queue_depth(endpoint_)
     << " dram_free_at=" << dram_free_at_
     << " bytes_served=" << stats_.bytes_served.value() << '\n';
  std::size_t shown = 0;
  for (const InFlight& f : queue_) {
    if (shown == 8) {
      os << "    ... " << queue_.size() - shown << " more queued\n";
      break;
    }
    ++shown;
    os << "    " << (f.is_write ? "write" : "read ") << " addr=0x" << std::hex
       << f.request.a << std::dec << " bytes=" << f.request.b
       << " done_at=" << f.respond_at << '\n';
  }
}

double MemoryController::mean_bandwidth_bytes_per_s(Cycle elapsed) const {
  if (elapsed == 0) return 0.0;
  const double seconds = clk_.cycles_to_seconds(static_cast<double>(elapsed));
  return static_cast<double>(stats_.bytes_served.value()) / seconds;
}

}  // namespace gnna::mem
