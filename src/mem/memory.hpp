// Off-chip memory controller: the paper's bandwidth-latency model.
//
// "For the memory controllers, we implement a simple bandwidth-latency
//  model that enqueues up to 32 requests and services them in order
//  according to the latency and bandwidth configuration. Each memory module
//  is capable of servicing 68GBps of read/write traffic... We assume a
//  memory access granularity of 64B, and requests which are not integer
//  multiples of 64B and properly aligned will result in wasted DRAM
//  bandwidth but not wasted interconnect bandwidth."  (Section V)
//
// The controller is attached to one NoC endpoint. Read requests
// (MsgKind::kMemReadReq, a=address, b=bytes, c=opaque tag) produce
// responses (kMemReadResp, same a/b/c) addressed back to the requester;
// write requests occupy a queue slot until the data bus finishes their
// transfer, then complete silently (no response message). Requests are
// admitted from the NoC inbox only while fewer than `queue_entries` are in
// service, so a full queue backpressures naturally — reads behind queued
// writes stall exactly as the paper's in-order queue implies.
#pragma once

#include <cstdint>
#include <deque>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "noc/network.hpp"
#include "trace/trace.hpp"

namespace gnna::mem {

struct MemParams {
  Bandwidth bandwidth = Bandwidth::gb_per_s(68.0);
  double latency_ns = 20.0;  // fixed access latency (Section VI-A)
  std::uint32_t queue_entries = 32;
  std::uint32_t access_granularity = 64;  // bytes
};

struct MemStats {
  Counter read_requests;
  Counter write_requests;
  Counter bytes_requested;  // payload bytes the components asked for
  Counter bytes_served;     // bytes the DRAM actually moved (64B granules)
  Accumulator queue_depth;  // sampled at every depth change (max is exact)
};

class MemoryController {
 public:
  /// `clk` is the simulation (NoC) clock, used to convert the bandwidth and
  /// latency configuration into cycles.
  MemoryController(noc::MeshNetwork& net, EndpointId endpoint, MemParams params,
                   Frequency clk);

  void tick();

  [[nodiscard]] bool idle() const {
    return queue_.empty() && net_.delivery_queue_depth(endpoint_) == 0;
  }

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const MemStats& stats() const { return stats_; }

  /// Mean bandwidth actually delivered so far, in bytes/second.
  [[nodiscard]] double mean_bandwidth_bytes_per_s(Cycle elapsed) const;

  /// Requests currently occupying in-order queue slots.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Attach an event tracer (request admissions, DRAM bus occupancy,
  /// responses). Disabled by default.
  void set_tracer(trace::Tracer t) { tracer_ = t; }

  /// Deadlock diagnostics: queue contents and inbox depth.
  void dump_state(std::ostream& os) const;

 private:
  struct InFlight {
    noc::Message request;
    double respond_at = 0.0;  // cycle (fractional) the slot frees up
    bool is_write = false;    // writes retire silently, no response
  };

  noc::MeshNetwork& net_;
  EndpointId endpoint_;
  MemParams params_;
  Frequency clk_;
  double bytes_per_cycle_;
  double latency_cycles_;
  double dram_free_at_ = 0.0;  // when the data bus frees up
  std::deque<InFlight> queue_;  // in-order service, <= queue_entries
  std::size_t last_sampled_depth_ = static_cast<std::size_t>(-1);
  MemStats stats_;
  trace::Tracer tracer_;
};

}  // namespace gnna::mem
