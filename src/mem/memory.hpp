// Off-chip memory controller: the paper's bandwidth-latency model.
//
// "For the memory controllers, we implement a simple bandwidth-latency
//  model that enqueues up to 32 requests and services them in order
//  according to the latency and bandwidth configuration. Each memory module
//  is capable of servicing 68GBps of read/write traffic... We assume a
//  memory access granularity of 64B, and requests which are not integer
//  multiples of 64B and properly aligned will result in wasted DRAM
//  bandwidth but not wasted interconnect bandwidth."  (Section V)
//
// The controller is attached to one NoC endpoint. Read requests
// (MsgKind::kMemReadReq, a=address, b=bytes, c=opaque tag) produce
// responses (kMemReadResp, same a/b/c) addressed back to the requester;
// write requests occupy a queue slot until the data bus finishes their
// transfer, then complete silently (no response message). Requests are
// admitted from the NoC inbox only while fewer than `queue_entries` are in
// service, so a full queue backpressures naturally — reads behind queued
// writes stall exactly as the paper's in-order queue implies.
//
// Two schedulers share that admission/backpressure contract:
//
//  - kInOrder (default): the paper's model verbatim. One data bus; requests
//    are scheduled at admission time by chaining fractional-cycle bus
//    reservations, and retire strictly FIFO.
//  - kFrFcfs: a banked, reordering controller (DESIGN.md §11). Addresses
//    interleave across `banks` at `bank_interleave_bytes` stride; each bank
//    keeps one open row of `row_bytes`. A request window of
//    `window_entries` is scheduled first-ready-FCFS: ready row-hits issue
//    before older row-misses (at `row_hit_ns` vs `row_miss_ns`), except
//    that a request bypassed `starvation_cap` times is served next
//    regardless. Responses may return out of request order; consumers
//    match on the opaque tag `c`, never on FIFO position. With one bank
//    and row_hit_ns == row_miss_ns the scheduler degenerates to FCFS and
//    reproduces the in-order model's timing bit-identically.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "common/units.hpp"
#include "noc/network.hpp"
#include "trace/trace.hpp"

namespace gnna::mem {

/// Request scheduling policy.
enum class MemScheduler : std::uint8_t {
  kInOrder = 0,  // the paper's 32-entry in-order bandwidth-latency queue
  kFrFcfs,       // banked open-row first-ready-FCFS controller
};

[[nodiscard]] constexpr const char* mem_scheduler_name(MemScheduler s) {
  return s == MemScheduler::kFrFcfs ? "frfcfs" : "in_order";
}

/// Parse "in_order" | "frfcfs" (hyphen/underscore insensitive).
[[nodiscard]] std::optional<MemScheduler> mem_scheduler_by_name(
    std::string_view name);

/// Largest request payload a response message can carry
/// (noc::Message::payload_bytes is 32 bits). Oversized requests are
/// rejected at admission with a diagnostic instead of being silently
/// truncated into tiny response packets.
inline constexpr std::uint64_t kMaxRequestBytes = 0xFFFFFFFFULL;

struct MemParams {
  Bandwidth bandwidth = Bandwidth::gb_per_s(68.0);
  double latency_ns = 20.0;  // fixed access latency (Section VI-A, in-order)
  std::uint32_t queue_entries = 32;
  std::uint32_t access_granularity = 64;  // bytes

  // --- FR-FCFS controller (used only when scheduler == kFrFcfs) ---
  MemScheduler scheduler = MemScheduler::kInOrder;
  std::uint32_t banks = 8;            // DRAM banks with open-row state
  std::uint32_t row_bytes = 2048;     // open-row (page) size per bank
  double row_hit_ns = 10.0;           // access latency when the row is open
  double row_miss_ns = 30.0;          // precharge + activate + access
  std::uint32_t window_entries = 16;  // scheduling window (replaces
                                      // queue_entries for admission)
  std::uint32_t starvation_cap = 16;  // max bypasses before forced service
  std::uint32_t bank_interleave_bytes = 64;  // address-to-bank stride
  // Bank-interleaved XOR address mapping: permute the bank index with the
  // row index (bank ^= row mod banks) so strided access patterns that
  // would camp on one bank under plain modulo interleaving spread across
  // all banks. Row selection is unchanged — only the bank permutation
  // within each row stripe differs.
  bool bank_xor = false;
};

/// Throws std::invalid_argument if the configuration is unusable (zero
/// banks/window, interleave not dividing the row size, ...).
void validate(const MemParams& p);

/// Per-bank accounting (FR-FCFS scheduler only).
struct BankStats {
  Counter row_hits;
  Counter row_misses;
  // Cycles the bank was active (clamped to non-overlapping intervals, so
  // busy_cycles / elapsed is a true utilization).
  double busy_cycles = 0.0;
};

struct MemStats {
  Counter read_requests;
  Counter write_requests;
  Counter bytes_requested;  // payload bytes the components asked for
  Counter bytes_served;     // bytes the DRAM actually moved (64B granules)
  /// Queue/window occupancy over time. Each sample is weighted by the
  /// number of cycles the queue sat at that depth, so mean() is the
  /// time-weighted average occupancy (not an average over depth *changes*,
  /// which would overstate churny depths). max() is exact: every depth the
  /// queue ever reached is recorded, the final one with zero weight.
  Accumulator queue_depth;
  std::vector<BankStats> banks;  // sized `banks` under FR-FCFS, else empty
};

class MemoryController {
 public:
  /// `clk` is the simulation (NoC) clock, used to convert the bandwidth and
  /// latency configuration into cycles. Throws std::invalid_argument on an
  /// unusable configuration (see validate()).
  MemoryController(noc::MeshNetwork& net, EndpointId endpoint, MemParams params,
                   Frequency clk);

  void tick();

  [[nodiscard]] bool idle() const {
    return queue_.empty() && net_.delivery_queue_depth(endpoint_) == 0;
  }

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] const MemParams& params() const { return params_; }
  [[nodiscard]] const MemStats& stats() const { return stats_; }

  /// Row-hit accounting summed over banks (zero under the in-order model).
  [[nodiscard]] std::uint64_t row_hits() const;
  [[nodiscard]] std::uint64_t row_misses() const;
  /// Fraction of accesses that hit an open row, in [0,1]; 0 when no
  /// accesses were issued.
  [[nodiscard]] double row_hit_rate() const;

  /// Mean bandwidth actually delivered so far, in bytes/second.
  [[nodiscard]] double mean_bandwidth_bytes_per_s(Cycle elapsed) const;

  /// Requests currently occupying queue/window slots.
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Attach an event tracer (request admissions, DRAM bus occupancy,
  /// responses; under FR-FCFS also row_hit/row_miss instants and
  /// window-occupancy / row-hit-rate counter tracks). Disabled by default.
  void set_tracer(trace::Tracer t) { tracer_ = t; }

  /// Deadlock diagnostics: queue contents, bank state, and inbox depth.
  void dump_state(std::ostream& os) const;

 private:
  struct InFlight {
    noc::Message request;
    double respond_at = 0.0;  // cycle (fractional) the slot frees up
    std::uint64_t served_bytes = 0;  // whole 64B lines the bus must move
    std::uint64_t row = 0;           // open-row id within the bank
    std::uint32_t bank = 0;
    std::uint32_t bypassed = 0;  // times a younger request issued first
    bool is_write = false;       // writes retire silently, no response
    bool issued = false;         // FR-FCFS: scheduler picked it already
  };

  struct Bank {
    bool open = false;          // any row open yet?
    std::uint64_t row = 0;      // currently open row
    double busy_until = 0.0;    // for non-overlapped busy accounting
  };

  void admit(double now);
  void schedule_frfcfs(double now);
  void retire(double now);
  void sample_depth();
  void respond(const InFlight& head);

  noc::MeshNetwork& net_;
  EndpointId endpoint_;
  MemParams params_;
  Frequency clk_;
  bool frfcfs_;
  double bytes_per_cycle_;
  double latency_cycles_;
  double row_hit_cycles_ = 0.0;
  double row_miss_cycles_ = 0.0;
  // Row-hit preference only reorders when it buys latency; with equal
  // hit/miss latencies FR-FCFS degenerates to pure FCFS (still counting
  // hits/misses), which is what makes the in-order equivalence exact.
  bool reorder_ = false;
  std::uint64_t granules_per_row_ = 1;
  double dram_free_at_ = 0.0;   // when the data bus frees up
  std::deque<InFlight> queue_;  // admission-ordered, <= capacity
  std::vector<Bank> banks_;     // FR-FCFS open-row state
  std::size_t last_sampled_depth_ = 0;
  Cycle last_depth_change_ = 0;
  MemStats stats_;
  trace::Tracer tracer_;
};

}  // namespace gnna::mem
