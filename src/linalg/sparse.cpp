#include "linalg/sparse.hpp"

#include <cmath>
#include <stdexcept>

namespace gnna::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<float> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  if (row_ptr_.size() != rows_ + 1 || col_idx_.size() != values_.size() ||
      row_ptr_.back() != values_.size()) {
    throw std::invalid_argument("CsrMatrix: inconsistent CSR arrays");
  }
}

CsrMatrix CsrMatrix::adjacency(const graph::Graph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::size_t> rp(n + 1);
  std::vector<std::size_t> ci(g.num_edges());
  std::vector<float> vals(g.num_edges(), 1.0F);
  for (std::size_t v = 0; v <= n; ++v) rp[v] = g.row_ptr()[v];
  for (std::size_t e = 0; e < g.num_edges(); ++e) ci[e] = g.col_idx()[e];
  return {n, n, std::move(rp), std::move(ci), std::move(vals)};
}

CsrMatrix CsrMatrix::gcn_normalized_adjacency(const graph::Graph& g) {
  const graph::Graph sym = g.symmetrized().with_self_loops();
  const std::size_t n = sym.num_nodes();
  std::vector<float> inv_sqrt_deg(n);
  for (std::size_t v = 0; v < n; ++v) {
    inv_sqrt_deg[v] =
        1.0F / std::sqrt(static_cast<float>(sym.out_degree(
                   static_cast<NodeId>(v))));
  }
  std::vector<std::size_t> rp(n + 1);
  std::vector<std::size_t> ci(sym.num_edges());
  std::vector<float> vals(sym.num_edges());
  for (std::size_t v = 0; v <= n; ++v) rp[v] = sym.row_ptr()[v];
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t e = rp[v]; e < rp[v + 1]; ++e) {
      const std::size_t u = sym.col_idx()[e];
      ci[e] = u;
      vals[e] = inv_sqrt_deg[v] * inv_sqrt_deg[u];
    }
  }
  return {n, n, std::move(rp), std::move(ci), std::move(vals)};
}

CsrMatrix CsrMatrix::mean_adjacency(const graph::Graph& g) {
  const graph::Graph sym = g.symmetrized().with_self_loops();
  const std::size_t n = sym.num_nodes();
  std::vector<std::size_t> rp(n + 1);
  std::vector<std::size_t> ci(sym.num_edges());
  std::vector<float> vals(sym.num_edges());
  for (std::size_t v = 0; v <= n; ++v) rp[v] = sym.row_ptr()[v];
  for (std::size_t v = 0; v < n; ++v) {
    const float inv = 1.0F / static_cast<float>(rp[v + 1] - rp[v]);
    for (std::size_t e = rp[v]; e < rp[v + 1]; ++e) {
      ci[e] = sym.col_idx()[e];
      vals[e] = inv;
    }
  }
  return {n, n, std::move(rp), std::move(ci), std::move(vals)};
}

Matrix CsrMatrix::to_dense() const {
  Matrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t e = row_ptr_[r]; e < row_ptr_[r + 1]; ++e) {
      d(r, col_idx_[e]) += values_[e];
    }
  }
  return d;
}

Matrix spmm(const CsrMatrix& s, const Matrix& d) {
  if (s.cols() != d.rows()) {
    throw std::invalid_argument("spmm: inner dimension mismatch");
  }
  Matrix c(s.rows(), d.cols());
  const auto rp = s.row_ptr();
  const auto ci = s.col_idx();
  const auto vals = s.values();
  for (std::size_t r = 0; r < s.rows(); ++r) {
    auto crow = c.row(r);
    for (std::size_t e = rp[r]; e < rp[r + 1]; ++e) {
      const float w = vals[e];
      const auto drow = d.row(ci[e]);
      for (std::size_t j = 0; j < drow.size(); ++j) crow[j] += w * drow[j];
    }
  }
  return c;
}

}  // namespace gnna::linalg
