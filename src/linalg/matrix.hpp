// Minimal dense linear algebra for the functional GNN executor.
//
// This is deliberately a small, clear implementation: the simulator's
// numbers come from the timing models, and the functional path only has to
// be trustworthy enough to validate model semantics in tests — so we favour
// bounds-checked simplicity over BLAS-grade performance.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace gnna::linalg {

/// Row-major dense matrix of floats.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0F)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<float> data) {
    if (data.size() != rows * cols) {
      throw std::invalid_argument("Matrix::from_rows: size mismatch");
    }
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  static Matrix random(Rng& rng, std::size_t rows, std::size_t cols,
                       float lo = -1.0F, float hi = 1.0F) {
    Matrix m(rows, cols);
    for (auto& x : m.data_) x = rng.next_float(lo, hi);
    return m;
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0F;
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<float> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<const float> data() const { return data_; }
  [[nodiscard]] std::span<float> data() { return data_; }

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B. Throws on shape mismatch.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// C = A + B elementwise.
[[nodiscard]] Matrix add(const Matrix& a, const Matrix& b);

/// C = A with `bias` (length = cols) added to every row.
[[nodiscard]] Matrix add_row_bias(const Matrix& a, std::span<const float> bias);

/// B = A^T.
[[nodiscard]] Matrix transpose(const Matrix& a);

/// Concatenate horizontally: [A | B].
[[nodiscard]] Matrix hconcat(const Matrix& a, const Matrix& b);

/// Max absolute elementwise difference; infinity on shape mismatch.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace gnna::linalg
