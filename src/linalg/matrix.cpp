#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gnna::linalg {

Matrix matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("matmul: inner dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const float aik = a(i, k);
      if (aik == 0.0F) continue;
      const auto brow = b.row(k);
      const auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Matrix add(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("add: shape mismatch");
  }
  Matrix c = a;
  auto cd = c.data();
  const auto bd = b.data();
  for (std::size_t i = 0; i < cd.size(); ++i) cd[i] += bd[i];
  return c;
}

Matrix add_row_bias(const Matrix& a, std::span<const float> bias) {
  if (bias.size() != a.cols()) {
    throw std::invalid_argument("add_row_bias: bias length mismatch");
  }
  Matrix c = a;
  for (std::size_t i = 0; i < c.rows(); ++i) {
    auto r = c.row(i);
    for (std::size_t j = 0; j < r.size(); ++j) r[j] += bias[j];
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  }
  return t;
}

Matrix hconcat(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("hconcat: row count mismatch");
  }
  Matrix c(a.rows(), a.cols() + b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto dst = c.row(i);
    const auto ra = a.row(i);
    const auto rb = b.row(i);
    std::copy(ra.begin(), ra.end(), dst.begin());
    std::copy(rb.begin(), rb.end(), dst.begin() + static_cast<std::ptrdiff_t>(a.cols()));
  }
  return c;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return std::numeric_limits<double>::infinity();
  }
  double m = 0.0;
  const auto ad = a.data();
  const auto bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(ad[i]) - bd[i]));
  }
  return m;
}

}  // namespace gnna::linalg
