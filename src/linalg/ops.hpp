// Elementwise / rowwise neural-network operations shared by the functional
// GNN executor and its test references.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>

#include "linalg/matrix.hpp"

namespace gnna::linalg {

inline void relu_inplace(Matrix& m) {
  for (auto& x : m.data()) x = std::max(x, 0.0F);
}

[[nodiscard]] inline Matrix relu(Matrix m) {
  relu_inplace(m);
  return m;
}

[[nodiscard]] inline float leaky_relu(float x, float slope = 0.2F) {
  return x >= 0.0F ? x : slope * x;
}

inline void leaky_relu_inplace(Matrix& m, float slope = 0.2F) {
  for (auto& x : m.data()) x = leaky_relu(x, slope);
}

[[nodiscard]] inline float sigmoid(float x) {
  return 1.0F / (1.0F + std::exp(-x));
}

inline void sigmoid_inplace(Matrix& m) {
  for (auto& x : m.data()) x = sigmoid(x);
}

[[nodiscard]] inline float tanh_act(float x) { return std::tanh(x); }

inline void tanh_inplace(Matrix& m) {
  for (auto& x : m.data()) x = std::tanh(x);
}

/// Numerically-stable softmax over each row.
inline void row_softmax_inplace(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    auto r = m.row(i);
    const float mx = *std::max_element(r.begin(), r.end());
    float sum = 0.0F;
    for (auto& x : r) {
      x = std::exp(x - mx);
      sum += x;
    }
    for (auto& x : r) x /= sum;
  }
}

/// Softmax over an arbitrary span (e.g. attention coefficients of one
/// vertex's neighborhood).
inline void softmax_inplace(std::span<float> xs) {
  if (xs.empty()) return;
  const float mx = *std::max_element(xs.begin(), xs.end());
  float sum = 0.0F;
  for (auto& x : xs) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : xs) x /= sum;
}

}  // namespace gnna::linalg
