// Sparse (CSR) matrix support: adjacency-matrix operators for the
// functional GNN executor and the closed-form GCN reference used in tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/matrix.hpp"

namespace gnna::linalg {

/// CSR matrix of floats (rows x cols, explicit values).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<float> values);

  /// Unweighted adjacency of `g` (every edge has value 1).
  static CsrMatrix adjacency(const graph::Graph& g);

  /// GCN propagation operator: D^-1/2 (A + I) D^-1/2 over the symmetrized
  /// graph, the renormalization trick from Kipf & Welling.
  static CsrMatrix gcn_normalized_adjacency(const graph::Graph& g);

  /// Row-normalized adjacency with self loops: D^-1 (A + I) (mean
  /// aggregation).
  static CsrMatrix mean_adjacency(const graph::Graph& g);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  [[nodiscard]] std::span<const std::size_t> row_ptr() const {
    return row_ptr_;
  }
  [[nodiscard]] std::span<const std::size_t> col_idx() const {
    return col_idx_;
  }
  [[nodiscard]] std::span<const float> values() const { return values_; }

  /// Dense materialization (tests only; O(rows*cols)).
  [[nodiscard]] Matrix to_dense() const;

  /// Fraction of zero entries in the dense equivalent.
  [[nodiscard]] double sparsity() const {
    const double total = static_cast<double>(rows_) * static_cast<double>(cols_);
    return total == 0.0 ? 1.0 : 1.0 - static_cast<double>(nnz()) / total;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<float> values_;
};

/// C = S * D (sparse times dense).
[[nodiscard]] Matrix spmm(const CsrMatrix& s, const Matrix& d);

}  // namespace gnna::linalg
