#include "dataflow/spatial.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace gnna::dataflow {
namespace {

[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) {
  return (a + b - 1) / b;
}

/// Candidate tile sizes for one dimension: multiples of `step` by powers of
/// two, clamped to `limit`, always including `limit` itself.
std::vector<std::uint64_t> tile_candidates(std::uint64_t step,
                                           std::uint64_t limit) {
  std::vector<std::uint64_t> out;
  for (std::uint64_t t = step; t < limit; t *= 2) out.push_back(t);
  out.push_back(limit);
  return out;
}

}  // namespace

std::string to_string(Dataflow df) {
  switch (df) {
    case Dataflow::kOutputStationary:
      return "output-stationary";
    case Dataflow::kWeightStationary:
      return "weight-stationary";
    case Dataflow::kReductionSpread:
      return "reduction-spread";
  }
  return "unknown";
}

double MappingStats::pe_utilization_useful(
    const SpatialArrayConfig& cfg) const {
  if (compute_cycles == 0) return 0.0;
  return static_cast<double>(useful_macs) /
         (static_cast<double>(compute_cycles) * cfg.num_pes());
}

double MappingStats::pe_utilization_total(
    const SpatialArrayConfig& cfg) const {
  if (compute_cycles == 0) return 0.0;
  return static_cast<double>(total_macs) /
         (static_cast<double>(compute_cycles) * cfg.num_pes());
}

std::uint64_t MappingStats::latency_cycles(Frequency clk,
                                           std::optional<Bandwidth> bw) const {
  if (!bw.has_value()) return compute_cycles;
  const double mem_seconds =
      bw->seconds_for(static_cast<double>(dram_bytes_total));
  const std::uint64_t mem_cycles = clk.seconds_to_cycles(mem_seconds);
  return std::max(compute_cycles, mem_cycles);
}

MappingStats& MappingStats::operator+=(const MappingStats& other) {
  total_macs += other.total_macs;
  useful_macs += other.useful_macs;
  compute_cycles += other.compute_cycles;
  dram_bytes_total += other.dram_bytes_total;
  dram_bytes_weights += other.dram_bytes_weights;
  dram_bytes_useful += other.dram_bytes_useful;
  return *this;
}

MappingStats Mapper::map_with(const MatmulShape& s, Dataflow df) const {
  const std::uint64_t m = std::max<std::uint64_t>(1, s.m);
  const std::uint64_t k = std::max<std::uint64_t>(1, s.k);
  const std::uint64_t n = std::max<std::uint64_t>(1, s.n);
  const std::uint64_t pes = cfg_.num_pes();
  const std::uint64_t word = cfg_.word_bytes;
  const std::uint64_t buf_words = cfg_.global_buffer_bytes / word;

  MappingStats st;
  st.dataflow = df;
  st.total_macs = m * k * n;
  st.useful_macs = static_cast<std::uint64_t>(
      static_cast<double>(st.total_macs) * s.weight_density);

  const std::uint64_t in_bytes = m * k * word;
  const std::uint64_t w_bytes = k * n * word;
  const std::uint64_t out_bytes = m * n * word;

  switch (df) {
    case Dataflow::kOutputStationary: {
      // Each PE owns one output; the array covers a pe_rows x pe_cols output
      // tile per pass and streams the full K reduction through it.
      st.compute_cycles =
          ceil_div(m, cfg_.pe_rows) * ceil_div(n, cfg_.pe_cols) * k;
      // Tile search: input tile m_t*k_t, weight tile k_t*n_t, psum tile
      // m_t*n_t must co-reside in the global buffer. Inputs are re-read once
      // per output-column tile, weights once per output-row tile.
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      std::uint64_t best_w = 0;
      for (const std::uint64_t mt : tile_candidates(cfg_.pe_rows, m)) {
        for (const std::uint64_t nt : tile_candidates(cfg_.pe_cols, n)) {
          // Largest k_t that fits alongside the psum tile.
          const std::uint64_t psum_words = mt * nt;
          if (psum_words >= buf_words) continue;
          const std::uint64_t kt =
              std::min<std::uint64_t>(k, (buf_words - psum_words) / (mt + nt));
          if (kt == 0) continue;
          const std::uint64_t w_traffic = w_bytes * ceil_div(m, mt);
          const std::uint64_t traffic =
              in_bytes * ceil_div(n, nt) + w_traffic + out_bytes;
          if (traffic < best) {
            best = traffic;
            best_w = w_traffic;
          }
        }
      }
      if (best == std::numeric_limits<std::uint64_t>::max()) {
        // Degenerate: nothing fits; stream everything per pass.
        best = in_bytes * n + w_bytes * m + out_bytes;
        best_w = w_bytes * m;
      }
      st.dram_bytes_total = best;
      st.dram_bytes_weights = best_w;
      break;
    }
    case Dataflow::kWeightStationary: {
      // A k_t x n_t weight tile is pinned across the PEs; all M inputs
      // stream past it. Weights are read exactly once; partial sums spill
      // when the reduction spans multiple weight tiles.
      const std::uint64_t kt = std::min<std::uint64_t>(k, cfg_.pe_rows);
      const std::uint64_t nt = std::min<std::uint64_t>(n, cfg_.pe_cols);
      const std::uint64_t passes = ceil_div(k, kt) * ceil_div(n, nt);
      // One input row enters per cycle; each pass streams all M rows.
      st.compute_cycles = passes * m;
      const std::uint64_t k_passes = ceil_div(k, kt);
      // Psums for an m-chunk stay in the buffer if they fit (a third of it).
      const std::uint64_t psum_budget_words = buf_words / 3;
      const bool psum_resident = m * nt <= psum_budget_words;
      const std::uint64_t psum_traffic =
          psum_resident || k_passes <= 1
              ? 0
              : 2 * (k_passes - 1) * out_bytes;
      st.dram_bytes_total =
          w_bytes + in_bytes * ceil_div(n, nt) + out_bytes + psum_traffic;
      st.dram_bytes_weights = w_bytes;
      break;
    }
    case Dataflow::kReductionSpread: {
      // The whole array forms one adder tree over K: each output element
      // takes ceil(K / PEs) cycles.
      st.compute_cycles = m * n * ceil_div(k, pes);
      // Two buffer strategies; take the cheaper. (a) Keep a block of n_t
      // weight columns (k * n_t words) resident in half the buffer: weights
      // stream once, each input row is re-read once per column block.
      const std::uint64_t nt = std::clamp<std::uint64_t>(
          buf_words / 2 / std::max<std::uint64_t>(k, 1), 1, n);
      const std::uint64_t variant_a =
          in_bytes * ceil_div(n, nt) + w_bytes + out_bytes;
      // (b) Keep an input chunk (m x k_t words) resident instead: inputs
      // and weights stream once but partial sums spill per k-chunk.
      const std::uint64_t kt = std::clamp<std::uint64_t>(
          buf_words / 2 / std::max<std::uint64_t>(m, 1), 1, k);
      const std::uint64_t k_passes = ceil_div(k, kt);
      const std::uint64_t variant_b =
          in_bytes + w_bytes + out_bytes +
          (k_passes > 1 ? 2 * (k_passes - 1) * out_bytes : 0);
      st.dram_bytes_total = std::min(variant_a, variant_b);
      st.dram_bytes_weights = w_bytes;
      break;
    }
  }

  // Useful traffic: dense inputs/outputs/psums are all real data; only the
  // weight stream shrinks with sparsity (nonzero entries of the adjacency).
  const std::uint64_t dense_traffic =
      st.dram_bytes_total - st.dram_bytes_weights;
  st.dram_bytes_useful =
      dense_traffic +
      static_cast<std::uint64_t>(
          static_cast<double>(st.dram_bytes_weights) * s.weight_density);
  return st;
}

MappingStats Mapper::map(const MatmulShape& shape, std::optional<Bandwidth> bw,
                         Frequency clk) const {
  MappingStats best;
  bool first = true;
  for (const Dataflow df :
       {Dataflow::kOutputStationary, Dataflow::kWeightStationary,
        Dataflow::kReductionSpread}) {
    const MappingStats st = map_with(shape, df);
    if (first || st.latency_cycles(clk, bw) < best.latency_cycles(clk, bw) ||
        (st.latency_cycles(clk, bw) == best.latency_cycles(clk, bw) &&
         st.compute_cycles < best.compute_cycles)) {
      best = st;
      first = false;
    }
  }
  return best;
}

}  // namespace gnna::dataflow
