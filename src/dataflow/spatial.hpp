// NN-Dataflow-like mapping model for an Eyeriss-style spatial array.
//
// The paper uses NN-Dataflow [6] to (a) model a GCN running on a plain DNN
// accelerator (Section II: Table II latencies, Fig 2 bandwidth/utilization)
// and (b) size the latency-throughput model of the DNA unit inside each
// accelerator tile. We reproduce both uses with a small analytical mapper:
// every GNN compute step is expressed as a (possibly sparse-weighted)
// matmul M x K x N, and the mapper searches a handful of canonical
// dataflows (output-stationary, weight-stationary, reduction-spread) for
// the one with the lowest latency under the Table I array configuration,
// reporting compute cycles, DRAM traffic and PE utilization, with separate
// "useful" (nonzero-operand) accounting for sparse weights.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.hpp"
#include "common/units.hpp"

namespace gnna::dataflow {

/// Table I: configuration of the Eyeriss-like spatial array.
struct SpatialArrayConfig {
  std::uint32_t pe_rows = 13;
  std::uint32_t pe_cols = 14;
  std::uint32_t register_file_bytes = 512;
  std::uint32_t global_buffer_bytes = 108 * 1024;
  std::uint32_t word_bytes = 4;  // 32-bit fixed point

  [[nodiscard]] static SpatialArrayConfig eyeriss() { return {}; }

  [[nodiscard]] constexpr std::uint32_t num_pes() const {
    return pe_rows * pe_cols;
  }
};

/// A matmul workload: C[M x N] = A[M x K (dense)] * W[K x N].
/// `weight_density` < 1 marks W as sparse (e.g. a graph adjacency matrix
/// used as convolution weights, the Section II trick); the dense scheduler
/// still *schedules* every entry — that is exactly the inefficiency the
/// paper measures — but useful_* stats count only nonzero work.
struct MatmulShape {
  std::uint64_t m = 1;
  std::uint64_t k = 1;
  std::uint64_t n = 1;
  double weight_density = 1.0;

  [[nodiscard]] constexpr std::uint64_t total_macs() const {
    return m * k * n;
  }
  [[nodiscard]] constexpr std::uint64_t useful_macs() const {
    return static_cast<std::uint64_t>(
        static_cast<double>(total_macs()) * weight_density);
  }
};

/// The dataflows the mapping search considers.
enum class Dataflow : std::uint8_t {
  kOutputStationary,  // outputs pinned to PEs, K streamed
  kWeightStationary,  // weight tile pinned, inputs streamed
  kReductionSpread,   // K spread over the whole array (adder-tree style)
};

[[nodiscard]] std::string to_string(Dataflow df);

/// Result of mapping one matmul onto the array.
struct MappingStats {
  Dataflow dataflow = Dataflow::kOutputStationary;

  std::uint64_t total_macs = 0;   // scheduled (dense) MACs
  std::uint64_t useful_macs = 0;  // MACs on nonzero weight entries

  std::uint64_t compute_cycles = 0;  // array-limited cycles

  std::uint64_t dram_bytes_total = 0;    // scheduled off-chip traffic
  std::uint64_t dram_bytes_weights = 0;  // weight-stream share of the total
  std::uint64_t dram_bytes_useful = 0;   // nonzero weights + dense in/out

  /// Fraction of PE-cycles doing *useful* MACs, at unlimited bandwidth.
  [[nodiscard]] double pe_utilization_useful(
      const SpatialArrayConfig& cfg) const;
  /// Fraction of PE-cycles doing scheduled (dense) MACs.
  [[nodiscard]] double pe_utilization_total(
      const SpatialArrayConfig& cfg) const;

  /// End-to-end latency in cycles at clock `clk`, optionally constrained by
  /// off-chip bandwidth `bw` (std::nullopt = unlimited). Compute and memory
  /// overlap perfectly, so latency = max(compute, memory) — the same
  /// optimistic overlap NN-Dataflow assumes.
  [[nodiscard]] std::uint64_t latency_cycles(Frequency clk,
                                             std::optional<Bandwidth> bw) const;

  /// Accumulate another layer's stats (for whole-network totals).
  MappingStats& operator+=(const MappingStats& other);
};

/// Maps matmuls onto the spatial array.
class Mapper {
 public:
  explicit Mapper(SpatialArrayConfig cfg) : cfg_(cfg) {}

  /// Search the canonical dataflows and return the best mapping
  /// (lowest bandwidth-limited latency, compute as tie-break).
  [[nodiscard]] MappingStats map(const MatmulShape& shape,
                                 std::optional<Bandwidth> bw,
                                 Frequency clk) const;

  /// Evaluate one specific dataflow (used by tests and the ablation bench).
  [[nodiscard]] MappingStats map_with(const MatmulShape& shape,
                                      Dataflow df) const;

  [[nodiscard]] const SpatialArrayConfig& config() const { return cfg_; }

 private:
  SpatialArrayConfig cfg_;
};

}  // namespace gnna::dataflow
