#include "graph/dataset.hpp"

#include <array>
#include <stdexcept>

#include "common/rng.hpp"
#include "graph/generator.hpp"

namespace gnna::graph {
namespace {

const std::array<DatasetSpec, 5>& all_specs() {
  // Exactly Table V of the paper.
  static const std::array<DatasetSpec, 5> specs = {{
      {"Cora", 1, 2708, 5429, 1433, 0, 7},
      {"Citeseer", 1, 3327, 4732, 3703, 0, 6},
      {"Pubmed", 1, 19717, 44338, 500, 0, 3},
      {"QM9_1000", 1000, 12314, 12080, 13, 5, 73},
      {"DBLP_1", 1, 547, 2654, 1, 0, 3},
  }};
  return specs;
}

std::vector<float> random_features(Rng& rng, std::size_t rows,
                                   std::size_t cols) {
  std::vector<float> f(rows * cols);
  for (auto& x : f) x = rng.next_float(0.0F, 1.0F);
  return f;
}

}  // namespace

const DatasetSpec& dataset_spec(DatasetId id) {
  return all_specs().at(static_cast<std::size_t>(id));
}

DatasetId dataset_by_name(const std::string& name) {
  for (const DatasetId id : kAllDatasets) {
    if (dataset_spec(id).name == name) return id;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

Dataset make_dataset(DatasetId id, std::uint64_t seed) {
  const DatasetSpec& spec = dataset_spec(id);
  Rng rng(seed ^ (static_cast<std::uint64_t>(id) + 1) * 0xA24BAED4963EE407ULL);

  Dataset ds;
  ds.spec = spec;

  switch (id) {
    case DatasetId::kCora:
    case DatasetId::kCiteseer:
    case DatasetId::kPubmed: {
      ds.graphs.push_back(generate_citation_graph(rng, spec.total_nodes,
                                                  spec.total_edges));
      break;
    }
    case DatasetId::kQm9_1000: {
      // Spread the exact Table V totals across the 1000 molecules:
      // 314 molecules get 13 atoms (12314 = 1000*12 + 314) and 80 get 13
      // bonds (12080 = 1000*12 + 80); the rest get 12 of each.
      const std::uint32_t g = spec.num_graphs;
      const NodeId node_base = spec.total_nodes / g;
      const NodeId node_extra = spec.total_nodes % g;
      const EdgeId edge_base = spec.total_edges / g;
      const EdgeId edge_extra = spec.total_edges % g;
      for (std::uint32_t i = 0; i < g; ++i) {
        const NodeId n = node_base + (i < node_extra ? 1 : 0);
        const EdgeId e = edge_base + (i < edge_extra ? 1 : 0);
        ds.graphs.push_back(generate_molecule_graph(rng, n, e));
      }
      break;
    }
    case DatasetId::kDblp1: {
      // Three communities matching the 3 output classes (community labels).
      ds.graphs.push_back(generate_community_graph(
          rng, spec.total_nodes, spec.total_edges, /*num_communities=*/3));
      break;
    }
  }

  ds.undirected.reserve(ds.graphs.size());
  for (const auto& gph : ds.graphs) ds.undirected.push_back(gph.symmetrized());

  ds.node_features.reserve(ds.graphs.size());
  ds.edge_features.reserve(ds.graphs.size());
  for (std::size_t i = 0; i < ds.graphs.size(); ++i) {
    const Graph& gph = ds.graphs[i];
    if (id == DatasetId::kDblp1) {
      // DBLP has no native features; the PGNN reference implementation (and
      // the paper) use the vertex degree as a single-element vertex state.
      std::vector<float> deg(gph.num_nodes());
      const Graph& und = ds.undirected[i];
      for (NodeId v = 0; v < gph.num_nodes(); ++v) {
        deg[v] = static_cast<float>(und.out_degree(v));
      }
      ds.node_features.push_back(std::move(deg));
    } else {
      ds.node_features.push_back(
          random_features(rng, gph.num_nodes(), spec.vertex_features));
    }
    ds.edge_features.push_back(
        spec.edge_features == 0
            ? std::vector<float>{}
            : random_features(rng, gph.num_edges(), spec.edge_features));
  }
  return ds;
}

}  // namespace gnna::graph
