#include "graph/generator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace gnna::graph {
namespace {

[[nodiscard]] constexpr std::uint64_t edge_key(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

void check_capacity(NodeId n, EdgeId e, bool undirected) {
  const std::uint64_t cap =
      undirected ? static_cast<std::uint64_t>(n) * (n - 1) / 2
                 : static_cast<std::uint64_t>(n) * (n - 1);
  if (e > cap) {
    throw std::invalid_argument(
        "graph generator: requested more edges than the simple graph holds");
  }
}

}  // namespace

Graph generate_citation_graph(Rng& rng, NodeId num_nodes, EdgeId num_edges,
                              double alpha) {
  if (num_nodes < 2 && num_edges > 0) {
    throw std::invalid_argument("citation graph needs >= 2 nodes for edges");
  }
  check_capacity(num_nodes, num_edges, /*undirected=*/false);

  // Hidden popularity ranking: rank r is mapped to a random vertex so hubs
  // are not clustered at low ids (vertex ids carry no meaning downstream,
  // but partitioners hash by id and should not get a sorted-degree gift).
  std::vector<NodeId> by_rank(num_nodes);
  std::iota(by_rank.begin(), by_rank.end(), NodeId{0});
  for (NodeId i = num_nodes; i > 1; --i) {
    const auto j = static_cast<NodeId>(rng.next_below(i));
    std::swap(by_rank[i - 1], by_rank[j]);
  }

  GraphBuilder b(num_nodes);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = std::uint64_t{200} * num_edges + 10000;
  while (seen.size() < num_edges) {
    // Zipf-biased sampling saturates on near-complete graphs; fall back to
    // uniform endpoints so the exact edge count is always reached.
    const bool fallback = ++attempts > max_attempts;
    const auto src = static_cast<NodeId>(rng.next_below(num_nodes));
    const auto dst = fallback
                         ? static_cast<NodeId>(rng.next_below(num_nodes))
                         : by_rank[rng.next_zipf(num_nodes, alpha)];
    if (src == dst) continue;
    if (!seen.insert(edge_key(src, dst)).second) continue;
    b.add_edge(src, dst);
  }
  return std::move(b).build(/*dedupe=*/false);
}

Graph generate_molecule_graph(Rng& rng, NodeId num_nodes, EdgeId num_edges) {
  check_capacity(num_nodes, num_edges, /*undirected=*/true);
  GraphBuilder b(num_nodes);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);

  auto try_add = [&](NodeId u, NodeId v) {
    if (u == v) return false;
    if (u > v) std::swap(u, v);  // store each bond once, low -> high
    if (!seen.insert(edge_key(u, v)).second) return false;
    b.add_edge(u, v);
    return true;
  };

  // Backbone: random attachment tree over as many vertices as the edge
  // budget allows (molecule skeleton). Vertex i attaches to a uniformly
  // random earlier vertex, giving chain/branch shapes.
  const NodeId backbone =
      std::min<NodeId>(num_nodes, static_cast<NodeId>(num_edges) + 1);
  for (NodeId i = 1; i < backbone; ++i) {
    try_add(i, static_cast<NodeId>(rng.next_below(i)));
  }
  // Ring closures: extra random bonds until the exact budget is met.
  while (seen.size() < num_edges) {
    const auto u = static_cast<NodeId>(rng.next_below(num_nodes));
    const auto v = static_cast<NodeId>(rng.next_below(num_nodes));
    try_add(u, v);
  }
  return std::move(b).build(/*dedupe=*/false);
}

Graph generate_community_graph(Rng& rng, NodeId num_nodes, EdgeId num_edges,
                               std::uint32_t num_communities,
                               double intra_fraction) {
  if (num_communities == 0) {
    throw std::invalid_argument("community graph needs >= 1 community");
  }
  check_capacity(num_nodes, num_edges, /*undirected=*/false);

  const NodeId comm_size =
      (num_nodes + num_communities - 1) / num_communities;
  auto community_of = [&](NodeId v) { return v / comm_size; };
  auto random_in_community = [&](std::uint32_t c) {
    const NodeId lo = c * comm_size;
    const NodeId hi = std::min<NodeId>(num_nodes, lo + comm_size);
    return static_cast<NodeId>(lo + rng.next_below(hi - lo));
  };

  GraphBuilder b(num_nodes);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = std::uint64_t{200} * num_edges + 10000;
  while (seen.size() < num_edges) {
    if (++attempts > max_attempts) {
      // Dense intra blocks can saturate; fall back to uniform edges so the
      // exact edge count is always reached.
      const auto src = static_cast<NodeId>(rng.next_below(num_nodes));
      const auto dst = static_cast<NodeId>(rng.next_below(num_nodes));
      if (src == dst) continue;
      if (!seen.insert(edge_key(src, dst)).second) continue;
      b.add_edge(src, dst);
      continue;
    }
    const auto src = static_cast<NodeId>(rng.next_below(num_nodes));
    NodeId dst = kInvalidNode;
    if (rng.next_bool(intra_fraction)) {
      dst = random_in_community(
          static_cast<std::uint32_t>(community_of(src)));
    } else {
      dst = static_cast<NodeId>(rng.next_below(num_nodes));
    }
    if (src == dst) continue;
    if (!seen.insert(edge_key(src, dst)).second) continue;
    b.add_edge(src, dst);
  }
  return std::move(b).build(/*dedupe=*/false);
}

Graph generate_random_graph(Rng& rng, NodeId num_nodes, EdgeId num_edges) {
  check_capacity(num_nodes, num_edges, /*undirected=*/false);
  GraphBuilder b(num_nodes);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(num_edges * 2);
  while (seen.size() < num_edges) {
    const auto src = static_cast<NodeId>(rng.next_below(num_nodes));
    const auto dst = static_cast<NodeId>(rng.next_below(num_nodes));
    if (src == dst) continue;
    if (!seen.insert(edge_key(src, dst)).second) continue;
    b.add_edge(src, dst);
  }
  return std::move(b).build(/*dedupe=*/false);
}

}  // namespace gnna::graph
