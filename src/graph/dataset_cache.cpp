#include "graph/dataset_cache.hpp"

namespace gnna::graph {

std::shared_ptr<const Dataset> DatasetCache::get(DatasetId id,
                                                 std::uint64_t seed) {
  const Key key{id, seed};
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto ds = std::make_shared<const Dataset>(make_dataset(id, seed));
  entries_.emplace(key, ds);
  return ds;
}

void DatasetCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::size_t DatasetCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t DatasetCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t DatasetCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace gnna::graph
