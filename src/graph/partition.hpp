// Vertex -> tile assignment for multi-tile accelerator configurations.
//
// The paper shares the work queues across all GPEs; how vertices land on
// tiles determines NoC traffic locality. We provide the round-robin policy
// used by the evaluation plus alternatives exercised by the ablation
// benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gnna::graph {

enum class PartitionPolicy : std::uint8_t {
  kRoundRobin,   // vertex v -> tile v % T
  kBlock,        // contiguous ranges of ~N/T vertices
  kDegreeGreedy  // heaviest-degree-first onto the lightest tile
};

/// Assignment of every vertex to a tile.
class Partition {
 public:
  Partition(std::vector<TileId> owner, TileId num_tiles)
      : owner_(std::move(owner)), num_tiles_(num_tiles) {}

  [[nodiscard]] TileId owner(NodeId v) const { return owner_.at(v); }
  [[nodiscard]] TileId num_tiles() const { return num_tiles_; }
  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(owner_.size());
  }

  /// Vertices owned by each tile, in ascending order.
  [[nodiscard]] std::vector<std::vector<NodeId>> by_tile() const {
    std::vector<std::vector<NodeId>> out(num_tiles_);
    for (NodeId v = 0; v < owner_.size(); ++v) out[owner_[v]].push_back(v);
    return out;
  }

 private:
  std::vector<TileId> owner_;
  TileId num_tiles_;
};

/// Partition `g`'s vertices over `num_tiles` tiles.
[[nodiscard]] inline Partition make_partition(const Graph& g, TileId num_tiles,
                                              PartitionPolicy policy) {
  if (num_tiles == 0) throw std::invalid_argument("num_tiles must be >= 1");
  const NodeId n = g.num_nodes();
  std::vector<TileId> owner(n, 0);
  switch (policy) {
    case PartitionPolicy::kRoundRobin:
      for (NodeId v = 0; v < n; ++v) {
        owner[v] = static_cast<TileId>(v % num_tiles);
      }
      break;
    case PartitionPolicy::kBlock: {
      const NodeId per = (n + num_tiles - 1) / num_tiles;
      for (NodeId v = 0; v < n; ++v) {
        owner[v] = static_cast<TileId>(per == 0 ? 0 : v / per);
      }
      break;
    }
    case PartitionPolicy::kDegreeGreedy: {
      std::vector<NodeId> order(n);
      std::iota(order.begin(), order.end(), NodeId{0});
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        return g.out_degree(a) > g.out_degree(b);
      });
      std::vector<std::uint64_t> load(num_tiles, 0);
      for (const NodeId v : order) {
        const auto lightest = static_cast<TileId>(std::distance(
            load.begin(), std::min_element(load.begin(), load.end())));
        owner[v] = lightest;
        load[lightest] += g.out_degree(v) + 1;
      }
      break;
    }
  }
  return {std::move(owner), num_tiles};
}

}  // namespace gnna::graph
