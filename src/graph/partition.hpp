// Vertex -> tile assignment for multi-tile accelerator configurations.
//
// The paper shares the work queues across all GPEs; how vertices land on
// tiles determines NoC traffic locality. We provide the round-robin policy
// used by the evaluation plus alternatives exercised by the ablation
// benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gnna::graph {

enum class PartitionPolicy : std::uint8_t {
  kRoundRobin,    // vertex v -> tile v % T
  kBlock,         // contiguous ranges of ~N/T vertices
  kDegreeGreedy,  // heaviest-degree-first onto the lightest tile
  kProfileGuided  // rebalance from a prior run's measured per-vertex load
};

/// Assignment of every vertex to a tile.
class Partition {
 public:
  Partition(std::vector<TileId> owner, TileId num_tiles)
      : owner_(std::move(owner)), num_tiles_(num_tiles) {}

  [[nodiscard]] TileId owner(NodeId v) const { return owner_.at(v); }
  [[nodiscard]] TileId num_tiles() const { return num_tiles_; }
  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(owner_.size());
  }

  /// Vertices owned by each tile, in ascending order.
  [[nodiscard]] std::vector<std::vector<NodeId>> by_tile() const {
    std::vector<std::vector<NodeId>> out(num_tiles_);
    for (NodeId v = 0; v < owner_.size(); ++v) out[owner_[v]].push_back(v);
    return out;
  }

 private:
  std::vector<TileId> owner_;
  TileId num_tiles_;
};

/// Partition `g`'s vertices over `num_tiles` tiles.
[[nodiscard]] inline Partition make_partition(const Graph& g, TileId num_tiles,
                                              PartitionPolicy policy) {
  if (num_tiles == 0) throw std::invalid_argument("num_tiles must be >= 1");
  const NodeId n = g.num_nodes();
  std::vector<TileId> owner(n, 0);
  switch (policy) {
    case PartitionPolicy::kRoundRobin:
      for (NodeId v = 0; v < n; ++v) {
        owner[v] = static_cast<TileId>(v % num_tiles);
      }
      break;
    case PartitionPolicy::kBlock: {
      const NodeId per = (n + num_tiles - 1) / num_tiles;
      for (NodeId v = 0; v < n; ++v) {
        owner[v] = static_cast<TileId>(per == 0 ? 0 : v / per);
      }
      break;
    }
    case PartitionPolicy::kDegreeGreedy: {
      std::vector<NodeId> order(n);
      std::iota(order.begin(), order.end(), NodeId{0});
      // Deterministic ordering: equal degrees break ties by lowest vertex
      // id, and std::min_element's first-minimum scan gives equal loads to
      // the lowest tile id. The assignment is therefore a pure function of
      // the degree sequence — identical across platforms and libstdc++
      // sort implementations.
      std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
        const auto da = g.out_degree(a);
        const auto db = g.out_degree(b);
        return da != db ? da > db : a < b;
      });
      std::vector<std::uint64_t> load(num_tiles, 0);
      for (const NodeId v : order) {
        const auto lightest = static_cast<TileId>(std::distance(
            load.begin(), std::min_element(load.begin(), load.end())));
        owner[v] = lightest;
        load[lightest] += g.out_degree(v) + 1;
      }
      break;
    }
    case PartitionPolicy::kProfileGuided:
      // Needs measured per-vertex loads — use make_profile_partition().
      // Without a profile there is nothing to guide; fall back to the
      // round-robin baseline the profiling pass itself uses.
      for (NodeId v = 0; v < n; ++v) {
        owner[v] = static_cast<TileId>(v % num_tiles);
      }
      break;
  }
  return {std::move(owner), num_tiles};
}

/// Profile-guided partition: `loads[v]` is vertex v's measured cost from a
/// prior run's attribution block (e.g. GPE busy cycles). Heaviest vertex
/// first onto the currently-lightest tile (LPT greedy), ties broken
/// deterministically (equal loads: lowest vertex id first; equal tile
/// loads: lowest tile id). Vertices missing from the profile (loads
/// shorter than `n`, or zero entries — e.g. nodes added since the
/// profiling run, or vertices evicted from the bounded top-K table) fall
/// back to round-robin over the tiles so they stay evenly spread.
[[nodiscard]] inline Partition make_profile_partition(
    NodeId n, TileId num_tiles, const std::vector<double>& loads) {
  if (num_tiles == 0) throw std::invalid_argument("num_tiles must be >= 1");
  std::vector<TileId> owner(n, 0);
  std::vector<NodeId> profiled;
  profiled.reserve(std::min<std::size_t>(n, loads.size()));
  for (NodeId v = 0; v < n; ++v) {
    if (v < loads.size() && loads[v] > 0.0) profiled.push_back(v);
  }
  std::sort(profiled.begin(), profiled.end(), [&](NodeId a, NodeId b) {
    return loads[a] != loads[b] ? loads[a] > loads[b] : a < b;
  });
  std::vector<double> load(num_tiles, 0.0);
  for (const NodeId v : profiled) {
    const auto lightest = static_cast<TileId>(std::distance(
        load.begin(), std::min_element(load.begin(), load.end())));
    owner[v] = lightest;
    load[lightest] += loads[v];
  }
  NodeId next = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (v < loads.size() && loads[v] > 0.0) continue;
    owner[v] = static_cast<TileId>(next % num_tiles);
    ++next;
  }
  return {std::move(owner), num_tiles};
}

}  // namespace gnna::graph
