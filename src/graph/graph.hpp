// Compressed-sparse-row graph structure used throughout the simulator.
//
// Graphs are immutable after construction (built via GraphBuilder), which
// lets every component share one instance by reference. Edges are directed;
// models that need undirected neighborhoods (GCN/GAT graph convolutions)
// call symmetrized() once and cache the result in the Dataset.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace gnna::graph {

class GraphBuilder;

/// Immutable directed graph in CSR form.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] NodeId num_nodes() const {
    return static_cast<NodeId>(row_ptr_.empty() ? 0 : row_ptr_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const {
    return static_cast<EdgeId>(col_idx_.size());
  }

  /// Out-neighbors of `v`, sorted ascending.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    return {col_idx_.data() + row_ptr_[v],
            col_idx_.data() + row_ptr_[v + 1]};
  }

  [[nodiscard]] std::uint32_t out_degree(NodeId v) const {
    return row_ptr_[v + 1] - row_ptr_[v];
  }

  /// Index into edge-parallel arrays for the e-th out-edge of `v`.
  [[nodiscard]] EdgeId edge_index(NodeId v, std::uint32_t e) const {
    return row_ptr_[v] + e;
  }

  [[nodiscard]] std::span<const EdgeId> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const NodeId> col_idx() const { return col_idx_; }

  /// True if a directed edge u->v exists (binary search over the row).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// Undirected version: every edge u->v yields both u->v and v->u;
  /// duplicates and self-loops are collapsed.
  [[nodiscard]] Graph symmetrized() const;

  /// Graph with self-loop v->v added for every vertex (GCN's A + I).
  [[nodiscard]] Graph with_self_loops() const;

  [[nodiscard]] std::uint32_t max_out_degree() const;
  [[nodiscard]] double mean_out_degree() const;

  /// Fraction of zero entries in the dense N x N adjacency matrix.
  [[nodiscard]] double sparsity() const;

 private:
  friend class GraphBuilder;

  std::vector<EdgeId> row_ptr_;  // size num_nodes + 1
  std::vector<NodeId> col_idx_;  // size num_edges, sorted within each row
};

/// Accumulates an edge list, then produces a CSR Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Add a directed edge. Out-of-range endpoints are rejected (throws
  /// std::out_of_range) — graph generators must never emit them silently.
  void add_edge(NodeId src, NodeId dst);

  /// Add both directions.
  void add_undirected_edge(NodeId u, NodeId v) {
    add_edge(u, v);
    add_edge(v, u);
  }

  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// Build the CSR. `dedupe` collapses duplicate (src, dst) pairs.
  [[nodiscard]] Graph build(bool dedupe = true) &&;

 private:
  NodeId num_nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;
};

}  // namespace gnna::graph
