// Content-keyed cache of generated datasets.
//
// make_dataset() is deterministic in (DatasetId, seed), so two requests
// with the same key always denote bit-identical data — the cache hands out
// one shared immutable instance instead of regenerating it. This is what
// makes repeated runs of the same benchmark (clock sweeps, batch reruns)
// near-free on the input side.
//
// Thread-safe: concurrent get() calls may come from BatchRunner workers.
// The cache mutex is held while a missing dataset is generated, so at most
// one generation per key ever happens (concurrent requests for other keys
// briefly queue behind it; dataset generation is milliseconds).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "graph/dataset.hpp"

namespace gnna::graph {

class DatasetCache {
 public:
  /// The dataset for (id, seed): cached if present, generated (and kept)
  /// otherwise. The returned dataset is immutable and outlives the cache
  /// entry for as long as the caller holds the pointer.
  [[nodiscard]] std::shared_ptr<const Dataset> get(DatasetId id,
                                                   std::uint64_t seed);

  /// Drop all cached datasets (outstanding shared_ptrs stay valid).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  using Key = std::pair<DatasetId, std::uint64_t>;

  mutable std::mutex mu_;
  std::map<Key, std::shared_ptr<const Dataset>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace gnna::graph
