// Synthetic graph generators.
//
// The evaluation datasets (Table V) are not redistributable offline, so we
// generate graphs with exactly matching node/edge counts and qualitatively
// matching structure (see DESIGN.md §4):
//  * citation networks (Cora/Citeseer/Pubmed): heavy-tailed degree
//    distribution via Zipf-distributed endpoint sampling;
//  * molecule batches (QM9): many small sparse graphs, tree-plus-rings;
//  * community graphs (DBLP): planted-partition with dense intra-community
//    blocks.
// All generators are deterministic functions of their Rng argument.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace gnna::graph {

/// Directed citation-style graph with exactly `num_edges` distinct directed
/// edges and no self-loops. Destination popularity follows a Zipf
/// distribution with exponent `alpha` over a hidden random ranking, which
/// yields the hub-dominated in-degree profile of real citation networks.
[[nodiscard]] Graph generate_citation_graph(Rng& rng, NodeId num_nodes,
                                            EdgeId num_edges,
                                            double alpha = 0.9);

/// Small molecule-like graph: a uniform spanning tree over the first
/// min(num_edges + 1, num_nodes) vertices plus random ring-closing edges,
/// with exactly `num_edges` distinct undirected bonds stored in one
/// direction (low id -> high id), matching QM9's single-counted bond lists.
[[nodiscard]] Graph generate_molecule_graph(Rng& rng, NodeId num_nodes,
                                            EdgeId num_edges);

/// Planted-partition community graph with exactly `num_edges` distinct
/// directed edges. `num_communities` equal-size communities;
/// `intra_fraction` of edges land inside a community.
[[nodiscard]] Graph generate_community_graph(Rng& rng, NodeId num_nodes,
                                             EdgeId num_edges,
                                             std::uint32_t num_communities,
                                             double intra_fraction = 0.8);

/// Erdos-Renyi G(n, m) with exactly m distinct directed edges, no
/// self-loops. Used by NoC/accelerator stress tests and sweeps.
[[nodiscard]] Graph generate_random_graph(Rng& rng, NodeId num_nodes,
                                          EdgeId num_edges);

}  // namespace gnna::graph
