// Evaluation datasets (Table V) and their synthetic stand-ins.
//
// A Dataset bundles one or more graphs with their feature matrices and the
// declared Table V statistics. make_dataset() is deterministic: the same
// DatasetId + seed always produces bit-identical graphs and features, so
// every bench and test in the repo sees the same inputs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/graph.hpp"

namespace gnna::graph {

enum class DatasetId : std::uint8_t {
  kCora,
  kCiteseer,
  kPubmed,
  kQm9_1000,
  kDblp1,
};

/// All five evaluation datasets in paper order.
inline constexpr DatasetId kAllDatasets[] = {
    DatasetId::kCora, DatasetId::kCiteseer, DatasetId::kPubmed,
    DatasetId::kQm9_1000, DatasetId::kDblp1};

/// One row of Table V.
struct DatasetSpec {
  std::string name;
  std::uint32_t num_graphs = 0;
  NodeId total_nodes = 0;
  EdgeId total_edges = 0;
  std::uint32_t vertex_features = 0;
  std::uint32_t edge_features = 0;
  std::uint32_t output_features = 0;
};

/// Declared statistics for `id` (exactly Table V).
[[nodiscard]] const DatasetSpec& dataset_spec(DatasetId id);

[[nodiscard]] DatasetId dataset_by_name(const std::string& name);

/// A generated dataset. `graphs[i]` holds the directed structure;
/// `undirected[i]` the symmetrized version used by graph convolutions.
/// Feature matrices are row-major [num_nodes x vertex_features] /
/// [num_edges x edge_features] (edge order = CSR order of `graphs[i]`).
struct Dataset {
  DatasetSpec spec;
  std::vector<Graph> graphs;
  std::vector<Graph> undirected;
  std::vector<std::vector<float>> node_features;
  std::vector<std::vector<float>> edge_features;

  [[nodiscard]] NodeId total_nodes() const {
    NodeId n = 0;
    for (const auto& g : graphs) n += g.num_nodes();
    return n;
  }
  [[nodiscard]] EdgeId total_edges() const {
    EdgeId e = 0;
    for (const auto& g : graphs) e += g.num_edges();
    return e;
  }
};

/// Generate the synthetic stand-in for `id`. The defaults reproduce the
/// exact Table V counts; the seed only varies feature values and edge
/// placement, never the aggregate statistics.
[[nodiscard]] Dataset make_dataset(DatasetId id, std::uint64_t seed = 2020);

}  // namespace gnna::graph
