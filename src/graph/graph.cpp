#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace gnna::graph {

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

Graph Graph::symmetrized() const {
  GraphBuilder b(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const NodeId u : neighbors(v)) {
      if (u == v) continue;  // collapse self-loops out of the symmetric part
      b.add_edge(v, u);
      b.add_edge(u, v);
    }
  }
  return std::move(b).build(/*dedupe=*/true);
}

Graph Graph::with_self_loops() const {
  GraphBuilder b(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    b.add_edge(v, v);
    for (const NodeId u : neighbors(v)) b.add_edge(v, u);
  }
  return std::move(b).build(/*dedupe=*/true);
}

std::uint32_t Graph::max_out_degree() const {
  std::uint32_t m = 0;
  for (NodeId v = 0; v < num_nodes(); ++v) m = std::max(m, out_degree(v));
  return m;
}

double Graph::mean_out_degree() const {
  if (num_nodes() == 0) return 0.0;
  return static_cast<double>(num_edges()) / num_nodes();
}

double Graph::sparsity() const {
  const double n = num_nodes();
  if (n == 0) return 1.0;
  return 1.0 - static_cast<double>(num_edges()) / (n * n);
}

void GraphBuilder::add_edge(NodeId src, NodeId dst) {
  if (src >= num_nodes_ || dst >= num_nodes_) {
    throw std::out_of_range("GraphBuilder::add_edge: endpoint out of range");
  }
  edges_.emplace_back(src, dst);
}

Graph GraphBuilder::build(bool dedupe) && {
  std::sort(edges_.begin(), edges_.end());
  if (dedupe) {
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  }

  Graph g;
  g.row_ptr_.assign(num_nodes_ + 1, 0);
  g.col_idx_.reserve(edges_.size());
  for (const auto& [src, dst] : edges_) {
    ++g.row_ptr_[src + 1];
    g.col_idx_.push_back(dst);
  }
  for (NodeId v = 0; v < num_nodes_; ++v) {
    g.row_ptr_[v + 1] += g.row_ptr_[v];
  }
  return g;
}

}  // namespace gnna::graph
