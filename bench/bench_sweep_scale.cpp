// Extension bench: how the accelerator's advantage scales with graph size.
//
// GCN on synthetic citation graphs of growing size (mean degree 4, 64
// features), simulated on the CPU iso-BW accelerator and estimated on the
// CPU device model. Expected shape: on small graphs the CPU pays its fixed
// framework/dispatch overhead (the same effect that makes the measured
// MPNN baseline so slow on 1000 tiny molecules), so the accelerator's
// advantage is enormous; as the graph grows, both sides become bandwidth
// streamers and the speedup converges toward the modest ratio of effective
// memory bandwidths. Note the accelerator's own bandwidth utilization also
// drifts down with scale as wide hub-vertex gathers monopolize the single
// memory controller's in-order queue. All five sizes run through one
// BatchRunner (GNNA_JOBS caps the pool).
#include <iostream>
#include <memory>
#include <vector>

#include "baseline/baselines.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"
#include "gnn/workload.hpp"
#include "graph/generator.hpp"
#include "sim/batch_runner.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Scale sweep: GCN on synthetic citation graphs (mean "
               "degree 4, 64 features, CPU iso-BW @ 2.4 GHz) ===\n\n";

  const benchutil::EnvTrace env_trace;
  const baseline::DeviceModel cpu = baseline::cpu_xeon_e5_2680v4();
  const gnn::ModelSpec gcn = gnn::make_gcn(64, 8);

  const std::vector<NodeId> sizes = {256U, 1024U, 4096U, 16384U, 32768U};
  sim::Session session;
  std::vector<sim::RunRequest> requests;
  for (const NodeId n : sizes) {
    Rng rng(n);
    graph::Dataset ds;
    ds.spec = {"synth", 1, n, n * 4, 64, 0, 8};
    ds.graphs.push_back(graph::generate_citation_graph(rng, n, n * 4));
    ds.undirected.push_back(ds.graphs[0].symmetrized());
    ds.node_features.emplace_back(std::size_t{n} * 64, 0.5F);
    ds.edge_features.emplace_back();

    const sim::Session::Resolved prog = session.compile(
        gcn, std::make_shared<const graph::Dataset>(std::move(ds)));
    sim::RunRequest req;
    req.program = prog.program;
    req.dataset = prog.dataset;
    req.config = accel::AcceleratorConfig::cpu_iso_bw();
    req.trace = env_trace.options();
    requests.push_back(std::move(req));
  }

  sim::BatchRunner runner(session, benchutil::default_jobs(env_trace));
  runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
    std::cerr << "[scale] n=" << sizes[i]
              << (r.ok() ? " done" : " FAILED: " + r.error) << '\n';
  });
  const std::vector<sim::RunResult> results = runner.run(requests);

  Table t({"Nodes", "Edges", "Accel (ms)", "CPU model (ms)",
           "Speedup", "BW util", "DNA util"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return 1;
    const accel::RunStats& rs = results[i].stats;
    const NodeId n = sizes[i];
    const double cpu_ms = baseline::estimate_latency_ms(
        cpu, gnn::profile_work(gcn, *requests[i].dataset),
        /*input_density=*/1.0);
    t.add_row({std::to_string(n), std::to_string(n * 4),
               format_double(rs.millis, 3), format_double(cpu_ms, 3),
               format_speedup(cpu_ms / rs.millis),
               format_percent(rs.bandwidth_utilization),
               format_percent(rs.dna_utilization)});
  }
  t.print(std::cout);
  return 0;
}
