// Ablation A3: AGG ALU bank width.
//
// The paper banks 16 32-bit ALUs in the aggregator — exactly one 64B flit
// (16 words) per cycle, matched to the NoC link width. This sweep shows
// what narrower or wider banks would do on aggregation-heavy benchmarks.
#include <iostream>

#include "accel/compiler.hpp"
#include "accel/simulator.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"

namespace {

void sweep(const gnna::graph::Dataset& ds, const gnna::gnn::ModelSpec& model,
           const std::string& label) {
  using namespace gnna;
  const accel::CompiledProgram prog =
      accel::ProgramCompiler{}.compile(model, ds);
  std::cout << "--- " << label << " ---\n";
  Table t({"AGG ALUs", "Latency (ms)", "AGG utilization",
           "Mean mem BW (GB/s)"});
  for (const std::uint32_t alus : {2U, 4U, 8U, 16U, 32U}) {
    accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
    cfg.tile_params.agg_alus = alus;
    accel::AcceleratorSim sim(cfg);
    const accel::RunStats rs = sim.run(prog);
    t.add_row({std::to_string(alus), format_double(rs.millis, 3),
               format_percent(rs.agg_utilization),
               format_double(rs.mean_bandwidth_gbps, 1)});
    std::cerr << "[ablation-agg] " << label << " alus=" << alus << " done\n";
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace gnna;

  std::cout << "=== Ablation: AGG ALU bank width (CPU iso-BW, 2.4 GHz) "
               "===\n\n";
  {
    const graph::Dataset cora = graph::make_dataset(graph::DatasetId::kCora);
    sweep(cora,
          gnn::make_gcn(cora.spec.vertex_features, cora.spec.output_features),
          "GCN / Cora (wide 1433-word aggregations)");
    sweep(cora,
          gnn::make_gat(cora.spec.vertex_features, cora.spec.output_features),
          "GAT / Cora (64-word aggregations fed by the DNA)");
  }
  std::cout << "Expected shape: below 16 ALUs the bank cannot keep up with "
               "one 64B flit per cycle\nand becomes a serialization point "
               "on wide aggregations; above 16 the NoC link is\nthe limit, "
               "so extra ALUs buy nothing.\n";
  return 0;
}
