// Ablation A3: AGG ALU bank width.
//
// The paper banks 16 32-bit ALUs in the aggregator — exactly one 64B flit
// (16 words) per cycle, matched to the NoC link width. This sweep shows
// what narrower or wider banks would do on aggregation-heavy benchmarks.
// Both sweeps share one session (one Cora dataset) and each sweep's five
// configurations share one compiled program via BatchRunner.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"
#include "sim/batch_runner.hpp"

namespace {

void sweep(gnna::sim::Session& session,
           const gnna::sim::Session::Resolved& prog,
           const gnna::benchutil::EnvTrace& env_trace,
           const std::string& label) {
  using namespace gnna;
  std::cout << "--- " << label << " ---\n";

  const std::vector<std::uint32_t> alu_counts = {2U, 4U, 8U, 16U, 32U};
  std::vector<sim::RunRequest> requests;
  for (const std::uint32_t alus : alu_counts) {
    sim::RunRequest req;
    req.program = prog.program;
    req.dataset = prog.dataset;
    req.config = accel::AcceleratorConfig::cpu_iso_bw();
    req.config.tile_params.agg_alus = alus;
    req.trace = env_trace.options();
    requests.push_back(std::move(req));
  }

  sim::BatchRunner runner(session, benchutil::default_jobs(env_trace));
  runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
    std::cerr << "[ablation-agg] " << label << " alus=" << alu_counts[i]
              << (r.ok() ? " done" : " FAILED: " + r.error) << '\n';
  });
  const std::vector<sim::RunResult> results = runner.run(requests);

  Table t({"AGG ALUs", "Latency (ms)", "AGG utilization",
           "Mean mem BW (GB/s)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) std::exit(1);
    const accel::RunStats& rs = results[i].stats;
    t.add_row({std::to_string(alu_counts[i]), format_double(rs.millis, 3),
               format_percent(rs.agg_utilization),
               format_double(rs.mean_bandwidth_gbps, 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace gnna;

  std::cout << "=== Ablation: AGG ALU bank width (CPU iso-BW, 2.4 GHz) "
               "===\n\n";

  const benchutil::EnvTrace env_trace;
  sim::Session session;
  const std::shared_ptr<const graph::Dataset> cora =
      session.dataset(graph::DatasetId::kCora);
  sweep(session,
        session.compile(gnn::make_gcn(cora->spec.vertex_features,
                                      cora->spec.output_features),
                        cora),
        env_trace, "GCN / Cora (wide 1433-word aggregations)");
  sweep(session,
        session.compile(gnn::make_gat(cora->spec.vertex_features,
                                      cora->spec.output_features),
                        cora),
        env_trace, "GAT / Cora (64-word aggregations fed by the DNA)");
  std::cout << "Expected shape: below 16 ALUs the bank cannot keep up with "
               "one 64B flit per cycle\nand becomes a serialization point "
               "on wide aggregations; above 16 the NoC link is\nthe limit, "
               "so extra ALUs buy nothing.\n";
  return 0;
}
