// Reproduces Table V: input dataset statistics, verified against the
// actually generated synthetic stand-ins.
#include <iostream>

#include "common/table.hpp"
#include "graph/dataset.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Table V: input dataset statistics (declared = paper; "
               "generated = synthetic stand-in) ===\n\n";

  Table t({"Dataset", "Graphs", "Total Nodes", "Total Edges",
           "Vertex Feat.", "Edge Feat.", "Output Feat.", "Generated N/E",
           "Adjacency sparsity"});
  for (const auto id : graph::kAllDatasets) {
    const graph::Dataset ds = graph::make_dataset(id);
    const auto& s = ds.spec;
    const double density =
        static_cast<double>(s.total_edges) /
        (static_cast<double>(s.total_nodes) * s.total_nodes);
    t.add_row({s.name, std::to_string(s.num_graphs),
               std::to_string(s.total_nodes), std::to_string(s.total_edges),
               std::to_string(s.vertex_features),
               std::to_string(s.edge_features),
               std::to_string(s.output_features),
               std::to_string(ds.total_nodes()) + "/" +
                   std::to_string(ds.total_edges()),
               format_percent(1.0 - density)});
  }
  t.print(std::cout);
  std::cout << "\nGenerated totals match the declared Table V rows exactly "
               "by construction (see tests/graph/test_dataset.cpp).\n";
  return 0;
}
