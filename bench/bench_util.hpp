// Shared helpers for the ablation benches: reduced-size datasets so design
// sweeps finish quickly while exercising the same code paths.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>

#include "accel/simulator.hpp"
#include "common/rng.hpp"
#include "graph/dataset.hpp"
#include "graph/generator.hpp"
#include "trace/trace.hpp"

namespace gnna::benchutil {

/// Observability via the environment, for benches that have no CLI flags:
///   GNNA_TRACE=<file>        Chrome-trace JSON event log
///   GNNA_SAMPLE_EVERY=<n>    periodic sample cadence in NoC cycles
///   GNNA_SAMPLE_FILE=<file>  CSV sidecar for the samples (default stderr)
/// Owns the output streams and sink; options() stays valid while this
/// object is alive. When a bench runs several simulations against one
/// EnvTrace, their events share the file with per-run cycle timestamps.
class EnvTrace {
 public:
  EnvTrace() {
    if (const char* p = std::getenv("GNNA_TRACE")) {
      trace_file_.open(p);
      if (trace_file_) {
        sink_.emplace(trace_file_);
        opts_.sink = &*sink_;
      } else {
        std::cerr << "warning: cannot open GNNA_TRACE file " << p << '\n';
      }
    }
    if (const char* p = std::getenv("GNNA_SAMPLE_EVERY")) {
      opts_.sample_every = std::strtoull(p, nullptr, 10);
      if (opts_.sample_every > 0) {
        if (const char* f = std::getenv("GNNA_SAMPLE_FILE")) {
          sample_file_.open(f);
        }
        opts_.sample_out = sample_file_.is_open() ? &sample_file_ : &std::cerr;
      }
    }
  }

  [[nodiscard]] const accel::TraceOptions& options() const { return opts_; }

 private:
  std::ofstream trace_file_;
  std::ofstream sample_file_;
  std::optional<trace::ChromeTraceSink> sink_;
  accel::TraceOptions opts_;
};

/// QM9-like subset: `num_graphs` molecules of 12-13 atoms (the paper used
/// the first 1000 QM9 graphs; ablations use fewer for speed).
inline graph::Dataset make_qm9_subset(std::uint32_t num_graphs,
                                      std::uint64_t seed = 11) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec = {"QM9_" + std::to_string(num_graphs), num_graphs, 0, 0, 13, 5, 73};
  for (std::uint32_t i = 0; i < num_graphs; ++i) {
    const NodeId n = 12 + (i % 3 == 0 ? 1 : 0);
    const EdgeId e = 12 + (i % 12 == 0 ? 1 : 0);
    ds.graphs.push_back(graph::generate_molecule_graph(rng, n, e));
    ds.undirected.push_back(ds.graphs.back().symmetrized());
    std::vector<float> nf(std::size_t{n} * 13);
    for (auto& x : nf) x = rng.next_float(0.0F, 1.0F);
    ds.node_features.push_back(std::move(nf));
    std::vector<float> ef(std::size_t{e} * 5);
    for (auto& x : ef) x = rng.next_float(0.0F, 1.0F);
    ds.edge_features.push_back(std::move(ef));
  }
  ds.spec.total_nodes = ds.total_nodes();
  ds.spec.total_edges = ds.total_edges();
  return ds;
}

/// DBLP-like community subgraph at reduced scale.
inline graph::Dataset make_community_subset(NodeId nodes, EdgeId edges,
                                            std::uint64_t seed = 13) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec = {"DBLP_small", 1, nodes, edges, 1, 0, 3};
  ds.graphs.push_back(graph::generate_community_graph(rng, nodes, edges, 3));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  std::vector<float> nf(nodes);
  for (NodeId v = 0; v < nodes; ++v) {
    nf[v] = static_cast<float>(ds.undirected[0].out_degree(v));
  }
  ds.node_features.push_back(std::move(nf));
  ds.edge_features.emplace_back();
  return ds;
}

}  // namespace gnna::benchutil
