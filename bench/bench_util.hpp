// Shared helpers for the ablation benches: reduced-size datasets so design
// sweeps finish quickly while exercising the same code paths.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "accel/simulator.hpp"
#include "common/rng.hpp"
#include "graph/dataset.hpp"
#include "graph/generator.hpp"
#include "sim/batch_runner.hpp"
#include "sim/manifest.hpp"
#include "trace/trace.hpp"

namespace gnna::benchutil {

/// Observability via the environment, for benches that have no CLI flags:
///   GNNA_TRACE=<file>        Chrome-trace JSON event log
///   GNNA_PROFILE=1           aggregate per-phase profiles (attached to
///                            each run's RunStats::profile)
///   GNNA_SAMPLE_EVERY=<n>    periodic sample cadence in NoC cycles
///   GNNA_SAMPLE_FILE=<file>  CSV sidecar for the samples (default stderr)
///   GNNA_ATTR=1              per-vertex/per-tile work attribution
///                            (attached to each run's
///                            RunStats::attribution)
///   GNNA_ATTR_TOP_K=<n>      hotspot-table bound for GNNA_ATTR
/// Owns the output streams and sink; options() stays valid while this
/// object is alive. When a bench runs several simulations against one
/// EnvTrace, their events share the file with per-run cycle timestamps
/// (the sink is internally mutex-guarded, so this also holds for parallel
/// BatchRunner sweeps; the CSV sampler writes whole rows).
class EnvTrace {
 public:
  EnvTrace() {
    if (const char* p = std::getenv("GNNA_TRACE")) {
      trace_file_.open(p);
      if (trace_file_) {
        sink_.emplace(trace_file_);
        opts_.sink = &*sink_;
      } else {
        std::cerr << "warning: cannot open GNNA_TRACE file " << p << '\n';
      }
    }
    if (const char* p = std::getenv("GNNA_PROFILE")) {
      opts_.profile = *p != '\0' && std::string_view(p) != "0";
    }
    if (const char* p = std::getenv("GNNA_ATTR")) {
      opts_.attribution = *p != '\0' && std::string_view(p) != "0";
    }
    if (const char* p = std::getenv("GNNA_ATTR_TOP_K")) {
      const auto k = sim::parse_u64(p);
      if (!k || *k == 0) {
        std::cerr << "warning: ignoring malformed GNNA_ATTR_TOP_K '" << p
                  << "' (want a positive hotspot count)\n";
      } else {
        opts_.attribution_top_k = static_cast<std::size_t>(*k);
      }
    }
    if (const char* p = std::getenv("GNNA_SAMPLE_EVERY")) {
      // Strict parse: a malformed cadence must not silently disable
      // sampling (bare strtoull would return 0 for garbage).
      const auto every = sim::parse_u64(p);
      if (!every) {
        std::cerr << "warning: ignoring malformed GNNA_SAMPLE_EVERY '" << p
                  << "' (want a cycle count)\n";
      } else {
        opts_.sample_every = *every;
      }
      if (opts_.sample_every > 0) {
        if (const char* f = std::getenv("GNNA_SAMPLE_FILE")) {
          sample_file_.open(f);
          if (!sample_file_.is_open()) {
            std::cerr << "warning: cannot open GNNA_SAMPLE_FILE " << f
                      << "; samples go to stderr\n";
          }
        }
        opts_.sample_out = sample_file_.is_open() ? &sample_file_ : &std::cerr;
      }
    }
  }

  [[nodiscard]] const accel::TraceOptions& options() const { return opts_; }

  /// True when any observability output is attached.
  [[nodiscard]] bool active() const {
    return opts_.sink != nullptr || opts_.sample_every > 0;
  }

 private:
  std::ofstream trace_file_;
  std::ofstream sample_file_;
  std::optional<trace::ChromeTraceSink> sink_;
  accel::TraceOptions opts_;
};

/// Worker count for BatchRunner-based sweeps: GNNA_JOBS if set (malformed
/// values warn and fall back), otherwise one per hardware thread. Forced
/// to 1 while env-tracing is active so a shared CSV sample stream stays
/// ordered per run.
inline unsigned default_jobs(const EnvTrace& env) {
  if (env.active()) return 1;
  if (const char* p = std::getenv("GNNA_JOBS")) {
    const auto jobs = sim::parse_u64(p);
    if (!jobs || *jobs > 1024) {
      std::cerr << "warning: ignoring malformed GNNA_JOBS '" << p << "'\n";
    } else if (*jobs > 0) {
      return static_cast<unsigned>(*jobs);
    }
    // GNNA_JOBS=0 falls through to "all cores" (unlike gnnasim --jobs,
    // which requires an explicit count >= 1).
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Progress line printed as each batch run retires (completion order).
inline void progress_to_stderr(const std::string& tag, std::size_t index,
                               const gnna::sim::RunResult& r) {
  std::cerr << '[' << tag << "] run " << index
            << (r.ok() ? " done" : " FAILED: " + r.error) << '\n';
}

/// QM9-like subset: `num_graphs` molecules of 12-13 atoms (the paper used
/// the first 1000 QM9 graphs; ablations use fewer for speed).
inline graph::Dataset make_qm9_subset(std::uint32_t num_graphs,
                                      std::uint64_t seed = 11) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec = {"QM9_" + std::to_string(num_graphs), num_graphs, 0, 0, 13, 5, 73};
  for (std::uint32_t i = 0; i < num_graphs; ++i) {
    const NodeId n = 12 + (i % 3 == 0 ? 1 : 0);
    const EdgeId e = 12 + (i % 12 == 0 ? 1 : 0);
    ds.graphs.push_back(graph::generate_molecule_graph(rng, n, e));
    ds.undirected.push_back(ds.graphs.back().symmetrized());
    std::vector<float> nf(std::size_t{n} * 13);
    for (auto& x : nf) x = rng.next_float(0.0F, 1.0F);
    ds.node_features.push_back(std::move(nf));
    std::vector<float> ef(std::size_t{e} * 5);
    for (auto& x : ef) x = rng.next_float(0.0F, 1.0F);
    ds.edge_features.push_back(std::move(ef));
  }
  ds.spec.total_nodes = ds.total_nodes();
  ds.spec.total_edges = ds.total_edges();
  return ds;
}

/// DBLP-like community subgraph at reduced scale.
inline graph::Dataset make_community_subset(NodeId nodes, EdgeId edges,
                                            std::uint64_t seed = 13) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec = {"DBLP_small", 1, nodes, edges, 1, 0, 3};
  ds.graphs.push_back(graph::generate_community_graph(rng, nodes, edges, 3));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  std::vector<float> nf(nodes);
  for (NodeId v = 0; v < nodes; ++v) {
    nf[v] = static_cast<float>(ds.undirected[0].out_degree(v));
  }
  ds.node_features.push_back(std::move(nf));
  ds.edge_features.emplace_back();
  return ds;
}

}  // namespace gnna::benchutil
