// Reproduces Table VII: inference latencies of the benchmark GNNs on the
// CPU and GPU baseline systems (Table III).
//
// The paper measured these on real hardware running the public reference
// implementations; offline we carry the measured values as reference data
// (they anchor the Fig 8 speedups, as in the paper) and cross-check them
// against our analytical roofline + dispatch-overhead device models
// (DESIGN.md §4).
#include <iostream>

#include "baseline/baselines.hpp"
#include "common/table.hpp"
#include "gnn/workload.hpp"
#include "graph/dataset.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Table VII: baseline inference latencies (ms) ===\n\n";

  const baseline::DeviceModel cpu = baseline::cpu_xeon_e5_2680v4();
  const baseline::DeviceModel gpu = baseline::gpu_titan_xp();

  Table t({"Benchmark", "Input Graph", "CPU (paper)", "CPU (model)",
           "GPU (paper)", "GPU (model)"});
  for (const auto& row : baseline::table7_reference()) {
    const auto dataset_id = gnn::benchmark_dataset(row.benchmark);
    const graph::Dataset ds = graph::make_dataset(dataset_id);
    const gnn::WorkProfile wp =
        gnn::profile_work(gnn::make_benchmark_model(row.benchmark), ds);
    const double density = baseline::input_feature_density(dataset_id);
    const std::string name = gnn::benchmark_name(row.benchmark);
    const auto slash = name.find('/');
    t.add_row({name.substr(0, slash), name.substr(slash + 1),
               format_double(row.cpu_ms, 2),
               format_double(baseline::estimate_latency_ms(cpu, wp, density), 2),
               format_double(row.gpu_ms, 3),
               format_double(baseline::estimate_latency_ms(gpu, wp, density), 3)});
  }
  t.print(std::cout);

  std::cout << "\nThe paper-measured column is the Fig 8 speedup anchor; the "
               "model column is an\nindependent analytical sanity check "
               "(deviations recorded in EXPERIMENTS.md).\n";
  return 0;
}
