// Reproduces Fig 8: normalized speedups of the GNN accelerator over the
// baseline systems, for all six benchmark/input pairs, across core-clock
// settings (the NoC and memory bandwidth stay fixed, Section VI-B):
//   left   : CPU iso-BW configuration vs the CPU baseline
//   middle : GPU iso-BW configuration vs the GPU baseline
//   right  : GPU iso-FLOPS configuration vs the GPU baseline
//
// This is the flagship experiment and runs the full cycle-level simulator
// for every (benchmark, configuration, clock) point — expect several
// minutes. Set GNNA_QUICK=1 to sweep only the 2.4 GHz points; GNNA_JOBS
// caps the worker pool. All points go through one BatchRunner, so the six
// datasets and programs are built once and shared across the whole sweep.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "baseline/baselines.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/batch_runner.hpp"

int main() {
  using namespace gnna;
  using accel::AcceleratorConfig;

  const bool quick = std::getenv("GNNA_QUICK") != nullptr;
  const benchutil::EnvTrace env_trace;  // GNNA_TRACE / GNNA_SAMPLE_EVERY
  const std::vector<double> clocks =
      quick ? std::vector<double>{2.4} : std::vector<double>{0.6, 1.2, 2.4};

  struct Panel {
    std::string title;
    AcceleratorConfig cfg;
    bool vs_gpu;
  };
  const Panel panels[] = {
      {"CPU iso-BW vs CPU baseline", AcceleratorConfig::cpu_iso_bw(), false},
      {"GPU iso-BW vs GPU baseline", AcceleratorConfig::gpu_iso_bw(), true},
      {"GPU iso-FLOPS vs GPU baseline", AcceleratorConfig::gpu_iso_flops(),
       true},
  };

  std::cout << "=== Fig 8: normalized speedups of the GNN accelerator ===\n";
  std::cout << "(baseline latencies: paper Table VII; simulated latencies: "
               "this repository's cycle-level model)\n";

  // One request per (panel, benchmark, clock) point, in sweep order.
  struct Point {
    int panel;
    gnn::Benchmark benchmark;
    double ghz;
  };
  std::vector<Point> points;
  std::vector<sim::RunRequest> requests;
  for (int p = 0; p < 3; ++p) {
    for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
      for (const double ghz : clocks) {
        points.push_back({p, b, ghz});
        sim::RunRequest req;
        req.benchmark = b;
        req.config = panels[p].cfg;
        req.clock_ghz = ghz;
        req.trace = env_trace.options();
        requests.push_back(std::move(req));
      }
    }
  }

  sim::BatchRunner runner(sim::Session::global(),
                          benchutil::default_jobs(env_trace));
  runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
    std::cerr << "[fig8] " << panels[points[i].panel].title << " | "
              << gnn::benchmark_name(points[i].benchmark) << " @ "
              << points[i].ghz << " GHz"
              << (r.ok() ? " done" : " FAILED: " + r.error) << '\n';
  });
  const std::vector<sim::RunResult> results = runner.run(requests);

  // speedups[panel][benchmark][clock]
  std::map<int, std::map<gnn::Benchmark, std::map<double, double>>> speedups;
  std::map<int, std::map<gnn::Benchmark, double>> sim_ms_at_max_clock;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return 1;
    const Point& pt = points[i];
    const auto t7 = baseline::table7_row(pt.benchmark);
    const double base_ms = panels[pt.panel].vs_gpu ? t7.gpu_ms : t7.cpu_ms;
    speedups[pt.panel][pt.benchmark][pt.ghz] = base_ms / results[i].stats.millis;
    if (pt.ghz == clocks.back()) {
      sim_ms_at_max_clock[pt.panel][pt.benchmark] = results[i].stats.millis;
    }
  }

  for (int p = 0; p < 3; ++p) {
    std::cout << "\n--- " << panels[p].title << " ---\n";
    std::vector<std::string> header = {"Benchmark"};
    for (const double ghz : clocks) {
      header.push_back("speedup @ " + format_double(ghz, 1) + " GHz");
    }
    header.push_back("simulated ms @ " + format_double(clocks.back(), 1) +
                     " GHz");
    Table t(header);
    double log_sum = 0.0;
    for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
      std::vector<std::string> row = {gnn::benchmark_name(b)};
      for (const double ghz : clocks) {
        row.push_back(format_speedup(speedups[p][b][ghz]));
      }
      row.push_back(format_double(sim_ms_at_max_clock[p][b], 3));
      t.add_row(std::move(row));
      log_sum += std::log(speedups[p][b][clocks.back()]);
    }
    t.print(std::cout);
    std::cout << "geomean speedup @ " << clocks.back()
              << " GHz: " << format_speedup(std::exp(log_sum / 6.0)) << "\n";
  }

  // Headline shape checks from the paper.
  std::cout << "\n--- Shape checks vs the paper ---\n";
  const double gat_cpu = speedups[0][gnn::Benchmark::kGatCora][clocks.back()];
  const double pgnn_cpu =
      speedups[0][gnn::Benchmark::kPgnnDblp][clocks.back()];
  const double mpnn_flops =
      speedups[2][gnn::Benchmark::kMpnnQm9][clocks.back()];
  std::cout << "  'up to ~18x over CPU at iso-BW'    : best CPU iso-BW "
               "speedup (GAT) = "
            << format_speedup(gat_cpu) << "\n";
  std::cout << "  'PGNN sees a ~12% slowdown'        : PGNN CPU iso-BW "
               "speedup = "
            << format_speedup(pgnn_cpu) << " (paper ~0.89x)\n";
  std::cout << "  'MPNN over 60x at GPU iso-FLOPS'   : MPNN iso-FLOPS "
               "speedup = "
            << format_speedup(mpnn_flops) << "\n";
  if (!quick) {
    // Memory-bound benchmarks barely move between 1.2 and 2.4 GHz.
    for (const gnn::Benchmark b :
         {gnn::Benchmark::kGcnCora, gnn::Benchmark::kGcnCiteseer}) {
      const double ratio = speedups[0][b][2.4] / speedups[0][b][1.2];
      std::cout << "  '" << gnn::benchmark_name(b)
                << " is memory-bound'  : speedup(2.4)/speedup(1.2) = "
                << format_double(ratio, 2) << " (paper: ~1)\n";
    }
  }
  return 0;
}
