// Ablation A1: the DNQ's lazy queue-switching threshold.
//
// The paper fixes the switch-after-idle threshold at 16 DNA cycles "to
// reduce the number of queue switches that need to occur". This sweep shows
// the latency / switch-count trade-off on MPNN, the only benchmark that
// exercises both virtual queues (message network on queue 0, GRU on
// queue 1). The five configurations share one compiled program and fan
// out across a BatchRunner (GNNA_JOBS caps the pool).
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"
#include "sim/batch_runner.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Ablation: DNQ lazy-switch idle threshold (MPNN, 100 "
               "QM9-like molecules, CPU iso-BW) ===\n\n";

  const benchutil::EnvTrace env_trace;
  sim::Session session;
  const sim::Session::Resolved mpnn = session.compile(
      gnn::make_mpnn(13, 5, 73),
      std::make_shared<const graph::Dataset>(benchutil::make_qm9_subset(100)));

  const std::vector<std::uint32_t> thresholds = {0U, 4U, 16U, 64U, 256U};
  std::vector<sim::RunRequest> requests;
  for (const std::uint32_t threshold : thresholds) {
    sim::RunRequest req;
    req.program = mpnn.program;
    req.dataset = mpnn.dataset;
    req.config = accel::AcceleratorConfig::cpu_iso_bw();
    req.config.tile_params.dnq_idle_switch_cycles = threshold;
    req.trace = env_trace.options();
    requests.push_back(std::move(req));
  }

  sim::BatchRunner runner(session, benchutil::default_jobs(env_trace));
  runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
    std::cerr << "[ablation-dnq] threshold " << thresholds[i]
              << (r.ok() ? " done" : " FAILED: " + r.error) << '\n';
  });
  const std::vector<sim::RunResult> results = runner.run(requests);

  Table t({"Switch threshold (cycles)", "Latency (ms)", "Queue switches",
           "DNA utilization"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return 1;
    const accel::RunStats& rs = results[i].stats;
    t.add_row({std::to_string(thresholds[i]), format_double(rs.millis, 3),
               std::to_string(rs.dnq_queue_switches),
               format_percent(rs.dna_utilization)});
  }
  t.print(std::cout);
  std::cout
      << "\nFinding: when the DNA is the bottleneck (MPNN saturates it), "
         "queue 0's head is\nalmost always ready, so switch opportunities "
         "are rare and the threshold barely\nmatters — the paper's 16-cycle "
         "choice is safe; only extreme thresholds begin to\ndelay GRU "
         "entries on virtual queue 1.\n";
  return 0;
}
