// Ablation A1: the DNQ's lazy queue-switching threshold.
//
// The paper fixes the switch-after-idle threshold at 16 DNA cycles "to
// reduce the number of queue switches that need to occur". This sweep shows
// the latency / switch-count trade-off on MPNN, the only benchmark that
// exercises both virtual queues (message network on queue 0, GRU on
// queue 1).
#include <iostream>

#include "accel/compiler.hpp"
#include "accel/simulator.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Ablation: DNQ lazy-switch idle threshold (MPNN, 100 "
               "QM9-like molecules, CPU iso-BW) ===\n\n";

  const graph::Dataset ds = benchutil::make_qm9_subset(100);
  const gnn::ModelSpec model = gnn::make_mpnn(13, 5, 73);
  const accel::CompiledProgram prog =
      accel::ProgramCompiler{}.compile(model, ds);

  Table t({"Switch threshold (cycles)", "Latency (ms)", "Queue switches",
           "DNA utilization"});
  for (const std::uint32_t threshold : {0U, 4U, 16U, 64U, 256U}) {
    accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
    cfg.tile_params.dnq_idle_switch_cycles = threshold;
    accel::AcceleratorSim sim(cfg);
    const accel::RunStats rs = sim.run(prog);
    t.add_row({std::to_string(threshold), format_double(rs.millis, 3),
               std::to_string(rs.dnq_queue_switches),
               format_percent(rs.dna_utilization)});
    std::cerr << "[ablation-dnq] threshold " << threshold << " done\n";
  }
  t.print(std::cout);
  std::cout
      << "\nFinding: when the DNA is the bottleneck (MPNN saturates it), "
         "queue 0's head is\nalmost always ready, so switch opportunities "
         "are rare and the threshold barely\nmatters — the paper's 16-cycle "
         "choice is safe; only extreme thresholds begin to\ndelay GRU "
         "entries on virtual queue 1.\n";
  return 0;
}
