// Host-side microbenchmarks (google-benchmark): how fast the simulator
// itself runs. Useful when extending the model — a regression here makes
// the Fig 8 sweep painful.
#include <benchmark/benchmark.h>

#include "accel/compiler.hpp"
#include "accel/simulator.hpp"
#include "common/rng.hpp"
#include "dataflow/spatial.hpp"
#include "gnn/functional.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"
#include "noc/network.hpp"

namespace {

using namespace gnna;

void BM_NocTickIdle(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  noc::MeshNetwork net(dim, dim);
  for (std::uint32_t y = 0; y < dim; ++y) {
    for (std::uint32_t x = 0; x < dim; ++x) (void)net.add_endpoint(x, y);
  }
  net.finalize();
  for (auto _ : state) net.tick();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocTickIdle)->Arg(2)->Arg(4)->Arg(6);

void BM_NocTickLoaded(benchmark::State& state) {
  const auto dim = static_cast<std::uint32_t>(state.range(0));
  noc::MeshNetwork net(dim, dim);
  std::vector<EndpointId> eps;
  for (std::uint32_t y = 0; y < dim; ++y) {
    for (std::uint32_t x = 0; x < dim; ++x) eps.push_back(net.add_endpoint(x, y));
  }
  net.finalize();
  Rng rng(1);
  for (auto _ : state) {
    for (const EndpointId src : eps) {
      if (net.injection_queue_depth(src) < 4 && rng.next_bool(0.3)) {
        noc::Message m;
        m.src = src;
        m.dst = eps[rng.next_below(eps.size())];
        m.payload_bytes = 128;
        net.send(m);
      }
    }
    net.tick();
    for (const EndpointId ep : eps) {
      while (net.poll(ep)) {
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NocTickLoaded)->Arg(2)->Arg(4)->Arg(6);

void BM_MapperSearch(benchmark::State& state) {
  const dataflow::Mapper mapper(dataflow::SpatialArrayConfig::eyeriss());
  const dataflow::MatmulShape shape{19717, 19717, 16, 0.000114};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map(
        shape, Bandwidth::gb_per_s(68.0), Frequency::giga_hertz(2.4)));
  }
}
BENCHMARK(BM_MapperSearch);

void BM_GraphGeneration(benchmark::State& state) {
  const auto edges = static_cast<EdgeId>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        graph::generate_citation_graph(rng, edges / 2, edges));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_GraphGeneration)->Arg(1000)->Arg(10000)->Arg(44338);

void BM_FunctionalGcn(benchmark::State& state) {
  Rng rng(3);
  const auto g = graph::generate_citation_graph(rng, 1000, 3000);
  const gnn::FunctionalExecutor exec(gnn::make_gcn(64, 7));
  const linalg::Matrix x = linalg::Matrix::random(rng, 1000, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exec.run(g, x, {}));
  }
}
BENCHMARK(BM_FunctionalGcn);

void BM_SimulatedCyclesPerSecond(benchmark::State& state) {
  // End-to-end simulator throughput on a small GCN workload.
  Rng rng(5);
  graph::Dataset ds;
  ds.spec = {"bench", 1, 200, 600, 16, 0, 4};
  ds.graphs.push_back(graph::generate_random_graph(rng, 200, 600));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(200 * 16, 0.5F);
  ds.edge_features.emplace_back();
  const auto prog =
      accel::ProgramCompiler{}.compile(gnn::make_gcn(16, 4, 8), ds);
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    accel::AcceleratorSim sim(accel::AcceleratorConfig::cpu_iso_bw());
    const accel::RunStats rs = sim.run(prog, ds);
    cycles += rs.cycles;
  }
  state.counters["sim_cycles_per_s"] = benchmark::Counter(
      static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedCyclesPerSecond);

}  // namespace

BENCHMARK_MAIN();
