// Ablation A4 / validation: NoC load-latency curves for the Booksim
// substitute (Table IV parameters), plus zero-load latency vs hop count.
// These are the standard curves used to validate any cycle-level NoC model.
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "noc/network.hpp"

namespace {

using namespace gnna;

/// Uniform-random traffic at a given flit injection rate (flits per node
/// per cycle); returns (mean latency, delivered throughput in flits/node/
/// cycle).
std::pair<double, double> run_uniform_random(std::uint32_t dim, double rate,
                                             Cycle warmup, Cycle measure) {
  noc::MeshNetwork net(dim, dim);
  std::vector<EndpointId> eps;
  for (std::uint32_t y = 0; y < dim; ++y) {
    for (std::uint32_t x = 0; x < dim; ++x) {
      eps.push_back(net.add_endpoint(x, y));
    }
  }
  net.finalize();
  Rng rng(dim * 7919 + static_cast<std::uint64_t>(rate * 1000));

  Accumulator latency;
  std::uint64_t delivered = 0;
  const Cycle total = warmup + measure;
  for (Cycle c = 0; c < total; ++c) {
    for (const EndpointId src : eps) {
      // Throttle injection: do not queue unboundedly beyond the offered
      // rate (open-loop with a small cap mimics Booksim's source queues).
      if (net.injection_queue_depth(src) > 16) continue;
      if (!rng.next_bool(rate)) continue;
      noc::Message m;
      m.src = src;
      m.dst = eps[rng.next_below(eps.size())];
      m.payload_bytes = 64;  // single-flit packets
      net.send(m);
    }
    net.tick();
    for (const EndpointId ep : eps) {
      while (auto msg = net.poll(ep)) {
        if (c >= warmup) {
          latency.add(static_cast<double>(msg->delivered_at -
                                          msg->injected_at));
          ++delivered;
        }
      }
    }
  }
  const double throughput =
      static_cast<double>(delivered) /
      (static_cast<double>(measure) * eps.size());
  return {latency.mean(), throughput};
}

}  // namespace

int main() {
  std::cout << "=== NoC validation: zero-load latency vs distance (8x1 "
               "mesh) ===\n\n";
  {
    noc::MeshNetwork net(8, 1);
    std::vector<EndpointId> eps;
    for (std::uint32_t x = 0; x < 8; ++x) eps.push_back(net.add_endpoint(x, 0));
    Table t({"Hops", "Latency (cycles)", "Expected (3 + 2*hops)"});
    for (std::uint32_t h = 0; h < 8; ++h) {
      noc::Message m;
      m.src = eps[0];
      m.dst = eps[h];
      m.payload_bytes = 64;
      net.send(m);
      std::optional<noc::Message> got;
      while (!got.has_value()) {
        net.tick();
        got = net.poll(eps[h]);
      }
      t.add_row({std::to_string(h),
                 std::to_string(got->delivered_at - got->injected_at),
                 std::to_string(3 + 2 * h)});
    }
    t.print(std::cout);
  }

  std::cout << "\n=== NoC validation: load-latency curve, 4x4 mesh, uniform "
               "random single-flit traffic ===\n\n";
  Table t({"Injection rate (flits/node/cyc)", "Mean latency (cycles)",
           "Throughput (flits/node/cyc)"});
  for (const double rate :
       {0.01, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60}) {
    const auto [lat, thr] = run_uniform_random(4, rate, 2000, 8000);
    t.add_row({format_double(rate, 2), format_double(lat, 1),
               format_double(thr, 3)});
    std::cerr << "[noc] rate " << rate << " done\n";
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: flat latency at low load, exponential "
               "blow-up past saturation\n(~0.4-0.5 flits/node/cycle for a "
               "4x4 mesh with XY routing), throughput clamps\nat the "
               "saturation point.\n";
  return 0;
}
