// Ablation: partition policy — profile-guided two-pass rebalancing.
//
// The static policies spread vertices across tiles blindly: round-robin
// by id, or contiguous blocks. Profile-guided partitioning closes the
// loop instead. Pass 1 runs round-robin with the attribution sink on and
// the hotspot table sized to the whole graph, so every vertex's measured
// GPE cycles are exact. Pass 2 feeds those loads to
// graph::make_profile_partition (LPT greedy: heaviest vertex onto the
// lightest tile) and reruns with the explicit assignment. The sweep
// prints total cycles and the attribution imbalance metrics for every
// policy, per workload — the two-pass win shows up as a busy max/mean
// near 1.000 and a lower cycle count than round-robin wherever the
// baseline was skewed.
//
// This is the in-process version of the CLI recipe (EXPERIMENTS.md):
//   gnnasim --benchmark X --attribution=p1.json --attribution-top-k 4096
//   gnnasim --benchmark X --partition profile-guided --attribution-from p1.json
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"
#include "graph/partition.hpp"

namespace {

using namespace gnna;

/// Hub-dominated citation graph: Zipf destination sampling with a steep
/// exponent concentrates a large fraction of the edges on a handful of
/// vertices, so per-vertex gather work is strongly skewed — the regime
/// static splits handle worst.
graph::Dataset make_citation_hub(NodeId nodes, EdgeId edges, double alpha,
                                 std::uint32_t feats,
                                 std::uint64_t seed = 17) {
  Rng rng(seed);
  graph::Dataset ds;
  ds.spec = {"CITE_hub", 1, nodes, edges, feats, 0, 7};
  ds.graphs.push_back(
      graph::generate_citation_graph(rng, nodes, edges, alpha));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  std::vector<float> nf(std::size_t{nodes} * feats);
  for (auto& x : nf) x = rng.next_float(0.0F, 1.0F);
  ds.node_features.push_back(std::move(nf));
  ds.edge_features.emplace_back();
  return ds;
}

struct PolicyResult {
  std::string label;
  accel::RunStats stats;
};

/// One simulation with attribution always on (needed by pass 1 to measure
/// and by every pass to report imbalance).
accel::RunStats run_once(const sim::Session::Resolved& prog,
                         const accel::AcceleratorConfig& cfg,
                         graph::PartitionPolicy policy,
                         const std::vector<TileId>* owners,
                         const benchutil::EnvTrace& env_trace,
                         NodeId total_vertices) {
  accel::AcceleratorSim sim(cfg, policy);
  accel::TraceOptions opts = env_trace.options();
  opts.attribution = true;
  // Bound the hotspot table by the graph itself: every vertex is tracked
  // exactly, so the measured loads (and the LPT split built from them)
  // carry no sketch approximation.
  opts.attribution_top_k = total_vertices;
  sim.set_trace(opts);
  if (owners != nullptr) sim.set_work_owners(*owners);
  return sim.run(*prog.program, *prog.dataset);
}

void sweep(const sim::Session::Resolved& prog,
           const accel::AcceleratorConfig& cfg,
           const benchutil::EnvTrace& env_trace, const std::string& label) {
  std::cout << "--- " << label << " (" << cfg.num_tiles() << " tiles) ---\n";

  NodeId total_vertices = 0;
  for (const auto& g : prog.dataset->graphs) total_vertices += g.num_nodes();

  std::vector<PolicyResult> results;
  results.push_back({"round-robin",
                     run_once(prog, cfg, graph::PartitionPolicy::kRoundRobin,
                              nullptr, env_trace, total_vertices)});
  results.push_back({"block",
                     run_once(prog, cfg, graph::PartitionPolicy::kBlock,
                              nullptr, env_trace, total_vertices)});

  // Two-pass: measured per-vertex GPE cycles from the round-robin run
  // drive the LPT rebalance of the rerun.
  const trace::AttributionReport& pass1 = *results[0].stats.attribution;
  std::vector<double> loads(total_vertices, 0.0);
  for (const auto& v : pass1.vertices) {
    if (v.vertex < loads.size()) loads[v.vertex] = v.busy;
  }
  const graph::Partition part = graph::make_profile_partition(
      total_vertices, static_cast<TileId>(cfg.num_tiles()), loads);
  std::vector<TileId> owners(total_vertices, 0);
  for (NodeId v = 0; v < total_vertices; ++v) owners[v] = part.owner(v);
  results.push_back({"profile-guided",
                     run_once(prog, cfg, graph::PartitionPolicy::kRoundRobin,
                              &owners, env_trace, total_vertices)});

  const auto base = static_cast<double>(results[0].stats.cycles);
  Table t({"Policy", "Cycles", "vs round-robin", "Busy max/mean",
           "Flit gini"});
  for (const PolicyResult& r : results) {
    const trace::AttributionReport& ar = *r.stats.attribution;
    t.add_row({r.label, std::to_string(r.stats.cycles),
               format_double(base / static_cast<double>(r.stats.cycles), 3) +
                   "x",
               format_double(ar.busy_max_mean(), 3),
               format_double(ar.flit_gini(), 3)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Ablation: partition policy (two-pass profile-guided "
               "rebalance) ===\n\n";

  const benchutil::EnvTrace env_trace;
  sim::Session session;

  const std::shared_ptr<const graph::Dataset> cora =
      session.dataset(graph::DatasetId::kCora);
  sweep(session.compile(gnn::make_gcn(cora->spec.vertex_features,
                                      cora->spec.output_features),
                        cora),
        accel::AcceleratorConfig::gpu_iso_bw(), env_trace, "GCN / Cora");
  sweep(session.compile(gnn::make_gat(cora->spec.vertex_features,
                                      cora->spec.output_features),
                        cora),
        accel::AcceleratorConfig::gpu_iso_bw(), env_trace, "GAT / Cora");

  // Skewed citation graph: a few Zipf hubs own a large share of the
  // edges, so blind splits leave the hub tiles as barrier stragglers —
  // the regime where the measured rebalance pays off.
  // GAT is compute-bound on this config (GPE ~80% utilized, memory ~50%),
  // so the hub tiles' GPE queues are the critical path — exactly what the
  // rebalance removes. GCN at the same shape stays memory-bandwidth-bound
  // and is insensitive to GPE balance (see the Cora rows above).
  auto cite = std::make_shared<const graph::Dataset>(
      make_citation_hub(2048, 32768, 1.5, 64));
  sweep(session.compile(
            gnn::make_gat(cite->spec.vertex_features,
                          cite->spec.output_features),
            cite),
        accel::AcceleratorConfig::gpu_iso_bw(), env_trace,
        "GAT / citation-hub-2k");

  std::cout << "Expected shape: on the memory-bandwidth-bound Cora runs "
               "(GCN streams the whole\nfeature matrix) cycle counts are "
               "insensitive to GPE balance and the policies\ntie within "
               "noise. On the compute-bound skewed pair the hub tiles are "
               "the\nbarrier-limited stragglers: profile-guided LPT packs "
               "the measured loads to a\nbusy max/mean near 1.00 and beats "
               "round-robin outright, while block\npartitioning "
               "concentrates the hubs and loses ground.\n";
  return 0;
}
