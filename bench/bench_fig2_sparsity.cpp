// Reproduces Fig 2: measured off-chip bandwidth and PE utilization of the
// GCN model running on a DNN spatial architecture accelerator. "Useful"
// bandwidth and utilization count only non-zero entries in operations on
// the adjacency matrix.
#include <iostream>

#include "baseline/dnn_accel_study.hpp"
#include "common/table.hpp"
#include "graph/dataset.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Fig 2: off-chip bandwidth and PE utilization of GCN on "
               "a DNN spatial accelerator ===\n\n";

  Table t({"Input Graph", "BW total (GB/s)", "BW useful (GB/s)",
           "PE util total", "PE util useful", "useful compute",
           "useful memory"});
  for (const auto id : {graph::DatasetId::kCora, graph::DatasetId::kCiteseer,
                        graph::DatasetId::kPubmed}) {
    const baseline::DnnAccelResult r = baseline::run_dnn_accel_study(id);
    t.add_row({graph::dataset_spec(id).name,
               format_double(r.offchip_bw_total_gbps, 1),
               format_double(r.offchip_bw_useful_gbps, 2),
               format_percent(r.pe_util_total),
               format_percent(r.pe_util_useful),
               format_percent(r.useful_compute_fraction),
               format_percent(r.useful_memory_fraction)});
  }
  t.print(std::cout);

  const auto pub = baseline::run_dnn_accel_study(graph::DatasetId::kPubmed);
  std::cout << "\nPaper (Section II): for Pubmed ("
            << format_double(pub.adjacency_sparsity * 100.0, 3) << "% sparse"
            << "), only ~1% of memory requests and ~2% of compute "
               "are useful.\nMeasured: "
            << format_percent(pub.useful_memory_fraction) << " memory, "
            << format_percent(pub.useful_compute_fraction) << " compute.\n";
  return 0;
}
