// Reproduces Fig 10: observed mean memory bandwidth and DNA utilization of
// all benchmarks in the CPU iso-bandwidth configuration (2.4 GHz).
#include <iostream>

#include "accel/runner.hpp"
#include "common/table.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Fig 10: mean memory bandwidth and DNA utilization, CPU "
               "iso-BW configuration ===\n\n";

  Table t({"Benchmark", "Mean mem BW (GB/s)", "BW utilization",
           "DNA utilization", "GPE utilization", "AGG utilization"});
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    std::cerr << "[fig10] " << gnn::benchmark_name(b) << "...\n";
    const accel::RunStats rs = accel::simulate_benchmark(
        b, accel::AcceleratorConfig::cpu_iso_bw());
    t.add_row({gnn::benchmark_name(b),
               format_double(rs.mean_bandwidth_gbps, 1),
               format_percent(rs.bandwidth_utilization),
               format_percent(rs.dna_utilization),
               format_percent(rs.gpe_utilization),
               format_percent(rs.agg_utilization)});
  }
  t.print(std::cout);

  std::cout
      << "\nShape (paper): GCN inputs saturate memory bandwidth with low "
         "DNA utilization\n(Cora 79% / Citeseer 70% / Pubmed 54% BW in the "
         "paper); GAT and MPNN are\nDNA-heavy; PGNN shows very little DNA "
         "utilization because the GPE's multi-hop\ntraversal is the "
         "bottleneck.\n";
  return 0;
}
