// Reproduces Fig 10: observed mean memory bandwidth and DNA utilization of
// all benchmarks in the CPU iso-bandwidth configuration (2.4 GHz). The six
// runs go through one BatchRunner (GNNA_JOBS caps the pool); results print
// in benchmark order regardless of completion order.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/batch_runner.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Fig 10: mean memory bandwidth and DNA utilization, CPU "
               "iso-BW configuration ===\n\n";

  const benchutil::EnvTrace env_trace;
  std::vector<sim::RunRequest> requests;
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    sim::RunRequest req;
    req.benchmark = b;
    req.config = accel::AcceleratorConfig::cpu_iso_bw();
    req.trace = env_trace.options();
    requests.push_back(std::move(req));
  }

  sim::BatchRunner runner(sim::Session::global(),
                          benchutil::default_jobs(env_trace));
  runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
    benchutil::progress_to_stderr("fig10", i, r);
  });
  const std::vector<sim::RunResult> results = runner.run(requests);

  Table t({"Benchmark", "Mean mem BW (GB/s)", "BW utilization",
           "DNA utilization", "GPE utilization", "AGG utilization"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return 1;
    const accel::RunStats& rs = results[i].stats;
    t.add_row({gnn::benchmark_name(*requests[i].benchmark),
               format_double(rs.mean_bandwidth_gbps, 1),
               format_percent(rs.bandwidth_utilization),
               format_percent(rs.dna_utilization),
               format_percent(rs.gpe_utilization),
               format_percent(rs.agg_utilization)});
  }
  t.print(std::cout);

  std::cout
      << "\nShape (paper): GCN inputs saturate memory bandwidth with low "
         "DNA utilization\n(Cora 79% / Citeseer 70% / Pubmed 54% BW in the "
         "paper); GAT and MPNN are\nDNA-heavy; PGNN shows very little DNA "
         "utilization because the GPE's multi-hop\ntraversal is the "
         "bottleneck.\n";
  return 0;
}
