// Extension bench: estimated energy per inference for every benchmark on
// the CPU iso-BW configuration, with the component breakdown and the
// wasted-DRAM fraction that motivates the paper (Section II).
#include <iostream>

#include "accel/energy.hpp"
#include "accel/runner.hpp"
#include "common/table.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Energy per inference (CPU iso-BW, 2.4 GHz; "
               "activity-counter model, see src/accel/energy.hpp) ===\n\n";

  Table t({"Benchmark", "Total (uJ)", "DRAM", "NoC", "DNA", "AGG", "GPE",
           "Leakage", "DRAM waste"});
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    std::cerr << "[energy] " << gnn::benchmark_name(b) << "...\n";
    const accel::AcceleratorConfig cfg =
        accel::AcceleratorConfig::cpu_iso_bw();
    const accel::RunStats rs = accel::simulate_benchmark(b, cfg);
    const accel::EnergyBreakdown e = accel::estimate_energy(rs, cfg);
    auto share = [&](double uj) { return format_percent(uj / e.total_uj()); };
    t.add_row({gnn::benchmark_name(b), format_double(e.total_uj(), 1),
               share(e.dram_uj), share(e.noc_uj), share(e.dna_uj),
               share(e.agg_uj), share(e.gpe_uj), share(e.leakage_uj),
               format_percent(e.dram_waste_fraction)});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: DRAM dominates the memory-bound GCNs; DNA "
               "dominates MPNN;\nPGNN burns a large wasted-DRAM fraction "
               "because its 4-byte feature reads\noccupy whole 64B lines — "
               "the inefficiency Section II calls out.\n";
  return 0;
}
