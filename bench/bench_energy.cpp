// Extension bench: estimated energy per inference for every benchmark on
// the CPU iso-BW configuration, with the component breakdown and the
// wasted-DRAM fraction that motivates the paper (Section II). The six runs
// share one BatchRunner (GNNA_JOBS caps the pool).
#include <iostream>
#include <vector>

#include "accel/energy.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "sim/batch_runner.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Energy per inference (CPU iso-BW, 2.4 GHz; "
               "activity-counter model, see src/accel/energy.hpp) ===\n\n";

  const benchutil::EnvTrace env_trace;
  const accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
  std::vector<sim::RunRequest> requests;
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    sim::RunRequest req;
    req.benchmark = b;
    req.config = cfg;
    req.trace = env_trace.options();
    requests.push_back(std::move(req));
  }

  sim::BatchRunner runner(sim::Session::global(),
                          benchutil::default_jobs(env_trace));
  runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
    benchutil::progress_to_stderr("energy", i, r);
  });
  const std::vector<sim::RunResult> results = runner.run(requests);

  Table t({"Benchmark", "Total (uJ)", "DRAM", "NoC", "DNA", "AGG", "GPE",
           "Leakage", "DRAM waste"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) return 1;
    const accel::EnergyBreakdown e =
        accel::estimate_energy(results[i].stats, cfg);
    auto share = [&](double uj) { return format_percent(uj / e.total_uj()); };
    t.add_row({gnn::benchmark_name(*requests[i].benchmark),
               format_double(e.total_uj(), 1), share(e.dram_uj),
               share(e.noc_uj), share(e.dna_uj), share(e.agg_uj),
               share(e.gpe_uj), share(e.leakage_uj),
               format_percent(e.dram_waste_fraction)});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: DRAM dominates the memory-bound GCNs; DNA "
               "dominates MPNN;\nPGNN burns a large wasted-DRAM fraction "
               "because its 4-byte feature reads\noccupy whole 64B lines — "
               "the inefficiency Section II calls out.\n";
  return 0;
}
