// Reproduces Table VI (accelerator configurations) and Fig 9 (topologies),
// rendered as ASCII mesh maps.
#include <iostream>
#include <vector>

#include "accel/config.hpp"
#include "common/table.hpp"

namespace {

void draw_topology(const gnna::accel::AcceleratorConfig& cfg,
                   std::ostream& os) {
  os << cfg.name << " (" << cfg.mesh_width << "x" << cfg.mesh_height
     << " mesh; T = tile, M = memory node, . = router only):\n";
  std::vector<std::vector<char>> grid(
      cfg.mesh_height, std::vector<char>(cfg.mesh_width, '.'));
  for (const auto& [x, y] : cfg.tile_coords) grid[y][x] = 'T';
  for (const auto& [x, y] : cfg.mem_coords) grid[y][x] = 'M';
  for (std::uint32_t y = cfg.mesh_height; y-- > 0;) {
    os << "    ";
    for (std::uint32_t x = 0; x < cfg.mesh_width; ++x) {
      os << grid[y][x] << ' ';
    }
    os << '\n';
  }
  os << '\n';
}

}  // namespace

int main() {
  using namespace gnna;
  using accel::AcceleratorConfig;

  std::cout << "=== Table VI: GNN accelerator configurations ===\n\n";

  Table t({"Configuration", "Tiles", "Mem. Nodes", "ALUs", "Mem. BW (GBps)"});
  for (const auto& cfg :
       {AcceleratorConfig::cpu_iso_bw(), AcceleratorConfig::gpu_iso_bw(),
        AcceleratorConfig::gpu_iso_flops()}) {
    t.add_row({cfg.name, std::to_string(cfg.num_tiles()),
               std::to_string(cfg.num_mem_nodes()),
               std::to_string(cfg.total_alus()),
               format_double(cfg.total_mem_bandwidth_gbps(), 0)});
  }
  t.print(std::cout);
  std::cout << "\nPaper values: 1/1/198/68, 8/8/1584/544, 16/8/3168/544.\n";

  std::cout << "\n=== Fig 9: topologies ===\n\n";
  draw_topology(AcceleratorConfig::cpu_iso_bw(), std::cout);
  draw_topology(AcceleratorConfig::gpu_iso_bw(), std::cout);
  draw_topology(AcceleratorConfig::gpu_iso_flops(), std::cout);
  return 0;
}
