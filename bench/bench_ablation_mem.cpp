// Ablation A4: memory-controller scheduling.
//
// The baseline memory node is an in-order DDR4 channel with one fixed
// access latency. The banked FR-FCFS controller exposes row locality
// instead: row hits (10 ns) are three times cheaper than row misses
// (30 ns), and the scheduler reorders a small request window to chase
// hits. This sweep compares the two models and varies the bank count,
// which sets how much row state the controller can hold open at once.
// All configurations share one session (one Cora dataset) and one
// compiled program via BatchRunner.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"
#include "mem/memory.hpp"
#include "sim/batch_runner.hpp"

namespace {

struct Variant {
  std::string label;
  gnna::mem::MemScheduler scheduler;
  std::uint32_t banks;
  bool bank_xor = false;
};

void sweep(gnna::sim::Session& session,
           const gnna::sim::Session::Resolved& prog,
           const gnna::benchutil::EnvTrace& env_trace,
           const std::string& label) {
  using namespace gnna;
  std::cout << "--- " << label << " ---\n";

  const std::vector<Variant> variants = {
      {"in-order", mem::MemScheduler::kInOrder, 1U},
      {"FR-FCFS /2 banks", mem::MemScheduler::kFrFcfs, 2U},
      {"FR-FCFS /4 banks", mem::MemScheduler::kFrFcfs, 4U},
      {"FR-FCFS /8 banks", mem::MemScheduler::kFrFcfs, 8U},
      {"FR-FCFS /16 banks", mem::MemScheduler::kFrFcfs, 16U},
      {"FR-FCFS /16 banks +XOR", mem::MemScheduler::kFrFcfs, 16U, true},
  };
  std::vector<sim::RunRequest> requests;
  for (const Variant& v : variants) {
    sim::RunRequest req;
    req.program = prog.program;
    req.dataset = prog.dataset;
    req.config = accel::AcceleratorConfig::cpu_iso_bw();
    req.config.mem_params.scheduler = v.scheduler;
    req.config.mem_params.banks = v.banks;
    req.config.mem_params.bank_xor = v.bank_xor;
    req.trace = env_trace.options();
    requests.push_back(std::move(req));
  }

  sim::BatchRunner runner(session, benchutil::default_jobs(env_trace));
  runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
    std::cerr << "[ablation-mem] " << label << ' ' << variants[i].label
              << (r.ok() ? " done" : " FAILED: " + r.error) << '\n';
  });
  const std::vector<sim::RunResult> results = runner.run(requests);

  Table t({"Scheduler", "Cycles", "Latency (ms)", "Row-hit rate",
           "Mean mem BW (GB/s)"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) std::exit(1);
    const accel::RunStats& rs = results[i].stats;
    t.add_row({variants[i].label, std::to_string(rs.cycles),
               format_double(rs.millis, 3),
               rs.mem_scheduler == "frfcfs"
                   ? format_percent(rs.mem_row_hit_rate)
                   : std::string("-"),
               format_double(rs.mean_bandwidth_gbps, 1)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace gnna;

  std::cout << "=== Ablation: memory scheduling (CPU iso-BW, 2.4 GHz) "
               "===\n\n";

  const benchutil::EnvTrace env_trace;
  sim::Session session;
  const std::shared_ptr<const graph::Dataset> cora =
      session.dataset(graph::DatasetId::kCora);
  sweep(session,
        session.compile(gnn::make_gcn(cora->spec.vertex_features,
                                      cora->spec.output_features),
                        cora),
        env_trace, "GCN / Cora (streaming feature reads)");
  sweep(session,
        session.compile(gnn::make_gat(cora->spec.vertex_features,
                                      cora->spec.output_features),
                        cora),
        env_trace, "GAT / Cora (attention-dominated, lighter mem traffic)");
  std::cout << "Expected shape: with few banks the 64B interleave spreads "
               "consecutive lines across\nbanks and row reuse is poor; more "
               "banks keep more rows open, the hit rate climbs,\nand FR-FCFS "
               "approaches (or beats) the fixed-latency in-order model.\n"
               "The +XOR row swizzles the bank with the row index "
               "(mem_bank_xor=1): it matters\nonly when the access stream "
               "strides by whole rows and camps on one bank.\n";
  return 0;
}
