// Reproduces Table II: inference latencies of GCN on a plain DNN spatial
// architecture accelerator (Table I array), at unlimited bandwidth and at
// 68 GB/s, assuming a 2.4 GHz clock.
#include <iostream>

#include "baseline/dnn_accel_study.hpp"
#include "common/table.hpp"
#include "graph/dataset.hpp"

int main() {
  using namespace gnna;

  std::cout << "=== Table II: GCN inference latency on a DNN spatial "
               "architecture accelerator (2.4 GHz) ===\n\n";

  Table t({"Input Graph", "Unlimited BW (ms)", "68GBps BW (ms)",
           "paper: unlimited", "paper: 68GBps"});
  struct PaperRow {
    graph::DatasetId id;
    double unlimited;
    double bw;
  };
  const PaperRow paper[] = {
      {graph::DatasetId::kCora, 0.791, 1.597},
      {graph::DatasetId::kCiteseer, 1.434, 2.661},
      {graph::DatasetId::kPubmed, 22.129, 64.636},
  };
  for (const auto& row : paper) {
    const baseline::DnnAccelResult r = baseline::run_dnn_accel_study(row.id);
    t.add_row({graph::dataset_spec(row.id).name,
               format_double(r.latency_unlimited_ms, 3),
               format_double(r.latency_bw_ms, 3),
               format_double(row.unlimited, 3), format_double(row.bw, 3)});
  }
  t.print(std::cout);

  std::cout << "\nShape checks: latency ordering Cora < Citeseer << Pubmed;\n"
               "bandwidth-limited latency exceeds unlimited for all inputs.\n";
  return 0;
}
