// Ablation A2: GPE software-thread pool size.
//
// The GPE hides memory latency by context-switching between software
// threads (Section IV: single-cycle switches). This sweep shows how many
// threads are needed to cover the fixed 20 ns memory latency for a
// memory-bound workload (GCN/Pubmed) and a traversal-bound one
// (PGNN on a DBLP-like community graph). Each sweep compiles its program
// once and fans the seven thread counts across a BatchRunner.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"
#include "sim/batch_runner.hpp"

namespace {

void sweep(gnna::sim::Session& session,
           const gnna::sim::Session::Resolved& prog,
           const gnna::benchutil::EnvTrace& env_trace,
           const std::string& label) {
  using namespace gnna;
  std::cout << "--- " << label << " ---\n";

  const std::vector<std::uint32_t> thread_counts = {1U,  2U,  4U, 8U,
                                                    16U, 32U, 64U};
  std::vector<sim::RunRequest> requests;
  for (const std::uint32_t threads : thread_counts) {
    sim::RunRequest req;
    req.program = prog.program;
    req.dataset = prog.dataset;
    req.config = accel::AcceleratorConfig::cpu_iso_bw();
    req.threads = threads;
    req.trace = env_trace.options();
    requests.push_back(std::move(req));
  }

  sim::BatchRunner runner(session, benchutil::default_jobs(env_trace));
  runner.set_progress([&](std::size_t i, const sim::RunResult& r) {
    std::cerr << "[ablation-threads] " << label
              << " threads=" << thread_counts[i]
              << (r.ok() ? " done" : " FAILED: " + r.error) << '\n';
  });
  const std::vector<sim::RunResult> results = runner.run(requests);

  Table t({"GPE threads", "Latency (ms)", "GPE utilization",
           "Mean mem BW (GB/s)", "Alloc stalls"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (!results[i].ok()) std::exit(1);
    const accel::RunStats& rs = results[i].stats;
    t.add_row({std::to_string(thread_counts[i]), format_double(rs.millis, 3),
               format_percent(rs.gpe_utilization),
               format_double(rs.mean_bandwidth_gbps, 1),
               std::to_string(rs.alloc_stalls)});
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace gnna;

  std::cout << "=== Ablation: GPE software-thread pool size (CPU iso-BW) "
               "===\n\n";

  const benchutil::EnvTrace env_trace;
  sim::Session session;
  {
    const std::shared_ptr<const graph::Dataset> pubmed =
        session.dataset(graph::DatasetId::kPubmed);
    sweep(session,
          session.compile(gnn::make_gcn(pubmed->spec.vertex_features,
                                        pubmed->spec.output_features),
                          pubmed),
          env_trace, "GCN / Pubmed (memory-bound)");
  }
  {
    const auto dblp = std::make_shared<const graph::Dataset>(
        benchutil::make_community_subset(200, 900));
    sweep(session, session.compile(gnn::make_pgnn(1, 3), dblp), env_trace,
          "PGNN / community-200 (traversal-bound)");
  }

  std::cout << "Expected shape: the memory-bound GCN saturates quickly (a "
               "handful of threads\ncover the 20 ns latency); the "
               "traversal-bound PGNN keeps benefiting from more\nthreads "
               "because every walk step is a dependent memory round trip.\n";
  return 0;
}
