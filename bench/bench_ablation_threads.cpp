// Ablation A2: GPE software-thread pool size.
//
// The GPE hides memory latency by context-switching between software
// threads (Section IV: single-cycle switches). This sweep shows how many
// threads are needed to cover the fixed 20 ns memory latency for a
// memory-bound workload (GCN/Pubmed) and a traversal-bound one
// (PGNN on a DBLP-like community graph).
#include <iostream>

#include "accel/compiler.hpp"
#include "accel/simulator.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"

namespace {

void sweep(const gnna::graph::Dataset& ds, const gnna::gnn::ModelSpec& model,
           const std::string& label) {
  using namespace gnna;
  const accel::CompiledProgram prog =
      accel::ProgramCompiler{}.compile(model, ds);
  std::cout << "--- " << label << " ---\n";
  Table t({"GPE threads", "Latency (ms)", "GPE utilization",
           "Mean mem BW (GB/s)", "Alloc stalls"});
  for (const std::uint32_t threads : {1U, 2U, 4U, 8U, 16U, 32U, 64U}) {
    accel::AcceleratorConfig cfg = accel::AcceleratorConfig::cpu_iso_bw();
    cfg.tile_params.gpe_threads = threads;
    accel::AcceleratorSim sim(cfg);
    const accel::RunStats rs = sim.run(prog);
    t.add_row({std::to_string(threads), format_double(rs.millis, 3),
               format_percent(rs.gpe_utilization),
               format_double(rs.mean_bandwidth_gbps, 1),
               std::to_string(rs.alloc_stalls)});
    std::cerr << "[ablation-threads] " << label << " threads=" << threads
              << " done\n";
  }
  t.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main() {
  using namespace gnna;

  std::cout << "=== Ablation: GPE software-thread pool size (CPU iso-BW) "
               "===\n\n";

  {
    const graph::Dataset pubmed =
        graph::make_dataset(graph::DatasetId::kPubmed);
    sweep(pubmed,
          gnn::make_gcn(pubmed.spec.vertex_features,
                        pubmed.spec.output_features),
          "GCN / Pubmed (memory-bound)");
  }
  {
    const graph::Dataset dblp = benchutil::make_community_subset(200, 900);
    sweep(dblp, gnn::make_pgnn(1, 3),
          "PGNN / community-200 (traversal-bound)");
  }

  std::cout << "Expected shape: the memory-bound GCN saturates quickly (a "
               "handful of threads\ncover the 20 ns latency); the "
               "traversal-bound PGNN keeps benefiting from more\nthreads "
               "because every walk step is a dependent memory round trip.\n";
  return 0;
}
