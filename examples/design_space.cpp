// Design-space exploration: sweep tile count and memory nodes for a fixed
// workload (GAT on Cora) and emit the results as CSV (src/accel/report.hpp)
// for plotting — the workflow an architect would use this simulator for.
//
//   $ ./examples/design_space > sweep.csv
#include <iostream>

#include "accel/compiler.hpp"
#include "accel/report.hpp"
#include "accel/simulator.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"

namespace {

/// T tiles in the middle columns of a mesh, M memory nodes on the edges.
gnna::accel::AcceleratorConfig make_config(std::uint32_t tiles,
                                           std::uint32_t mem_nodes) {
  gnna::accel::AcceleratorConfig cfg;
  cfg.name = std::to_string(tiles) + "T/" + std::to_string(mem_nodes) + "M";
  const std::uint32_t rows = tiles <= 2 ? tiles : 4;
  const std::uint32_t tile_cols = (tiles + rows - 1) / rows;
  const std::uint32_t mem_cols = mem_nodes <= rows ? 1 : 2;
  cfg.mesh_width = tile_cols + mem_cols;
  cfg.mesh_height = rows;
  std::uint32_t placed = 0;
  for (std::uint32_t x = 0; x < tile_cols; ++x) {
    for (std::uint32_t y = 0; y < rows && placed < tiles; ++y, ++placed) {
      cfg.tile_coords.emplace_back(x, y);
    }
  }
  placed = 0;
  for (std::uint32_t x = tile_cols; x < cfg.mesh_width; ++x) {
    for (std::uint32_t y = 0; y < rows && placed < mem_nodes; ++y, ++placed) {
      cfg.mem_coords.emplace_back(x, y);
    }
  }
  return cfg;
}

}  // namespace

int main() {
  using namespace gnna;

  const graph::Dataset cora = graph::make_dataset(graph::DatasetId::kCora);
  const gnn::ModelSpec gat =
      gnn::make_gat(cora.spec.vertex_features, cora.spec.output_features);
  const accel::CompiledProgram prog =
      accel::ProgramCompiler{}.compile(gat, cora);

  std::vector<accel::RunStats> runs;
  for (const auto& [tiles, mems] :
       {std::pair{1U, 1U}, {2U, 1U}, {2U, 2U}, {4U, 2U}, {4U, 4U},
        {8U, 4U}, {8U, 8U}}) {
    std::cerr << "simulating " << tiles << " tiles / " << mems
              << " memory nodes...\n";
    accel::AcceleratorSim sim(make_config(tiles, mems));
    runs.push_back(sim.run(prog, cora));
  }
  accel::write_csv(std::cout, runs);

  std::cerr << "\nGAT is compute-heavy: latency should track tile count "
               "until memory bandwidth\n(one 68 GB/s node per column) "
               "becomes the wall — watch bandwidth_utilization.\n";
  return 0;
}
