// Molecular property inference with an MPNN (Gilmer-style message passing)
// over a batch of QM9-like molecules: run the model functionally to get
// real property estimates, then simulate the same workload on the
// accelerator to see where the time goes.
//
//   $ ./examples/mpnn_molecules
#include <iostream>

#include "accel/compiler.hpp"
#include "accel/config.hpp"
#include "accel/simulator.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gnn/functional.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"

int main() {
  using namespace gnna;

  // A batch of 50 random molecules (12-13 atoms, bond features).
  Rng rng(2024);
  graph::Dataset mols;
  mols.spec = {"molecules", 50, 0, 0, 13, 5, 73};
  for (int i = 0; i < 50; ++i) {
    const NodeId atoms = 12 + (i % 2);
    const EdgeId bonds = atoms;
    mols.graphs.push_back(graph::generate_molecule_graph(rng, atoms, bonds));
    mols.undirected.push_back(mols.graphs.back().symmetrized());
    std::vector<float> nf(std::size_t{atoms} * 13);
    for (auto& x : nf) x = rng.next_float(0.0F, 1.0F);
    mols.node_features.push_back(std::move(nf));
    std::vector<float> ef(std::size_t{bonds} * 5);
    for (auto& x : ef) x = rng.next_float(0.0F, 1.0F);
    mols.edge_features.push_back(std::move(ef));
  }
  mols.spec.total_nodes = mols.total_nodes();
  mols.spec.total_edges = mols.total_edges();

  const gnn::ModelSpec mpnn = gnn::make_mpnn(13, 5, 73);
  std::cout << "model: " << mpnn.name << " with " << mpnn.layers.size()
            << " layers (embed, 3 message-passing steps, readout)\n";

  // 1. Functional inference: one 73-dim property vector per molecule.
  const gnn::FunctionalExecutor exec(mpnn);
  const linalg::Matrix props = exec.run_dataset(mols);
  std::cout << "functional output: " << props.rows() << " molecules x "
            << props.cols() << " predicted properties\n";
  std::cout << "molecule 0, first 4 properties: ";
  for (int i = 0; i < 4; ++i) std::cout << props(0, i) << ' ';
  std::cout << "\n\n";

  // 2. Cycle-level simulation: per-phase breakdown.
  const accel::CompiledProgram prog =
      accel::ProgramCompiler{}.compile(mpnn, mols);
  accel::AcceleratorSim sim(accel::AcceleratorConfig::cpu_iso_bw());
  const accel::RunStats rs = sim.run(prog, mols);

  std::cout << "simulated latency on CPU iso-BW @ 2.4 GHz: "
            << format_double(rs.millis, 3) << " ms\n";
  std::cout << "DNA utilization " << format_percent(rs.dna_utilization)
            << " (message passing is compute-bound: the per-edge edge "
               "network dominates)\n\n";

  Table t({"Phase", "Cycles", "Share"});
  for (const auto& ph : rs.phases) {
    t.add_row({ph.name, std::to_string(ph.cycles),
               format_percent(static_cast<double>(ph.cycles) /
                              static_cast<double>(rs.cycles))});
  }
  t.print(std::cout);
  return 0;
}
