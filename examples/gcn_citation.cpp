// Citation-network node classification with GCN — the paper's core
// motivating workload — swept across the three citation datasets and all
// three accelerator configurations.
//
//   $ ./examples/gcn_citation
#include <iostream>

#include "accel/runner.hpp"
#include "baseline/baselines.hpp"
#include "common/table.hpp"

int main() {
  using namespace gnna;
  using accel::AcceleratorConfig;

  std::cout << "GCN inference across citation networks and accelerator "
               "configurations\n\n";

  const gnn::Benchmark benchmarks[] = {gnn::Benchmark::kGcnCora,
                                       gnn::Benchmark::kGcnCiteseer,
                                       gnn::Benchmark::kGcnPubmed};
  const AcceleratorConfig configs[] = {AcceleratorConfig::cpu_iso_bw(),
                                       AcceleratorConfig::gpu_iso_bw()};

  Table t({"Input", "Config", "Latency (ms)", "Mem BW (GB/s)", "DNA util",
           "Speedup vs CPU"});
  for (const auto b : benchmarks) {
    const double cpu_ms = baseline::table7_row(b).cpu_ms;
    for (const auto& cfg : configs) {
      std::cerr << "simulating " << gnn::benchmark_name(b) << " on "
                << cfg.name << "...\n";
      const accel::RunStats rs = accel::simulate_benchmark(b, cfg);
      t.add_row({gnn::benchmark_name(b), cfg.name,
                 format_double(rs.millis, 3),
                 format_double(rs.mean_bandwidth_gbps, 1),
                 format_percent(rs.dna_utilization),
                 format_speedup(cpu_ms / rs.millis)});
    }
  }
  t.print(std::cout);

  std::cout << "\nNote how the citation GCNs are bandwidth-bound: the GPU "
               "iso-BW configuration\n(8x the memory bandwidth) buys nearly "
               "proportional latency, while DNA\nutilization stays low.\n";
  return 0;
}
