// Using the NoC substrate standalone: wire up a mesh, attach endpoints,
// and watch wormhole packets flow. Useful as a template for experimenting
// with interconnect ideas independent of the GNN accelerator.
//
//   $ ./examples/noc_playground
#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "noc/network.hpp"

int main() {
  using namespace gnna;

  // A 4x2 mesh with one endpoint per router.
  noc::MeshNetwork net(4, 2);
  std::vector<EndpointId> eps;
  for (std::uint32_t y = 0; y < 2; ++y) {
    for (std::uint32_t x = 0; x < 4; ++x) {
      eps.push_back(net.add_endpoint(x, y));
    }
  }
  net.finalize();

  // Every endpoint sends a 256-byte message (4 flits) to its diagonal
  // opposite.
  for (std::size_t i = 0; i < eps.size(); ++i) {
    noc::Message m;
    m.src = eps[i];
    m.dst = eps[eps.size() - 1 - i];
    m.payload_bytes = 256;
    m.a = i;  // tag
    net.send(m);
  }

  Table t({"Message", "Hops", "Latency (cycles)"});
  std::size_t delivered = 0;
  while (delivered < eps.size()) {
    net.tick();
    for (const EndpointId ep : eps) {
      while (auto m = net.poll(ep)) {
        t.add_row({std::to_string(m->a),
                   std::to_string(net.hops_between(m->src, m->dst)),
                   std::to_string(m->delivered_at - m->injected_at)});
        ++delivered;
      }
    }
  }
  t.print(std::cout);

  std::cout << "\ntotals: " << net.stats().packets_delivered.value()
            << " packets, " << net.stats().flits_delivered.value()
            << " flits, mean latency "
            << format_double(net.stats().packet_latency.mean(), 1)
            << " cycles over " << net.now() << " simulated cycles\n";
  std::cout << "(zero-load single-flit latency is 3 + 2*hops; the 4-flit "
               "payloads add 3 serialization cycles)\n";
  return 0;
}
