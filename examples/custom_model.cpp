// Building a custom GNN and a custom accelerator configuration with the
// public API: a 3-layer mean-aggregation GraphSAGE-style network on a
// synthetic social graph, simulated on a bespoke 4-tile accelerator.
//
//   $ ./examples/custom_model
#include <iostream>

#include "accel/compiler.hpp"
#include "accel/simulator.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gnn/functional.hpp"
#include "gnn/layer.hpp"
#include "graph/generator.hpp"

int main() {
  using namespace gnna;

  // 1. A synthetic social graph: 5000 users, 40000 follows.
  Rng rng(77);
  graph::Dataset social;
  social.spec = {"social-5k", 1, 5000, 40000, 32, 0, 8};
  social.graphs.push_back(
      graph::generate_citation_graph(rng, 5000, 40000, /*alpha=*/1.1));
  social.undirected.push_back(social.graphs[0].symmetrized());
  std::vector<float> feats(std::size_t{5000} * 32);
  for (auto& x : feats) x = rng.next_float(0.0F, 1.0F);
  social.node_features.push_back(std::move(feats));
  social.edge_features.emplace_back();

  // 2. A custom model straight from the layer IR: three mean-aggregation
  //    convolutions (GraphSAGE-mean flavour).
  gnn::ModelSpec sage;
  sage.name = "SAGE-mean";
  for (int i = 0; i < 3; ++i) {
    gnn::LayerSpec l;
    l.name = "sage" + std::to_string(i + 1);
    l.kind = gnn::LayerKind::kConv;
    l.norm = gnn::AggNorm::kMean;
    l.in_features = i == 0 ? 32 : 64;
    l.out_features = i == 2 ? 8 : 64;
    l.act = i == 2 ? gnn::Activation::kNone : gnn::Activation::kRelu;
    sage.layers.push_back(l);
  }

  // Functional sanity: embeddings for the first user.
  const gnn::FunctionalExecutor exec(sage);
  const linalg::Matrix x = linalg::Matrix::from_rows(
      5000, 32, social.node_features[0]);
  const linalg::Matrix out = exec.run(social.graphs[0], x, {});
  std::cout << "functional: " << out.rows() << " users x " << out.cols()
            << " classes\n";

  // 3. A bespoke accelerator: 4 tiles + 2 memory nodes on a 3x2 mesh, with
  //    a beefier GPE thread pool.
  accel::AcceleratorConfig cfg;
  cfg.name = "custom-4tile";
  cfg.mesh_width = 3;
  cfg.mesh_height = 2;
  cfg.tile_coords = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  cfg.mem_coords = {{2, 0}, {2, 1}};
  cfg.tile_params.gpe_threads = 32;

  const accel::CompiledProgram prog =
      accel::ProgramCompiler{}.compile(sage, social);
  accel::AcceleratorSim sim(cfg);
  const accel::RunStats rs = sim.run(prog, social);

  Table t({"Metric", "Value"});
  t.add_row({"latency", format_double(rs.millis, 3) + " ms"});
  t.add_row({"mean memory bandwidth",
             format_double(rs.mean_bandwidth_gbps, 1) + " GB/s (of " +
                 format_double(cfg.total_mem_bandwidth_gbps(), 0) + ")"});
  t.add_row({"DNA utilization", format_percent(rs.dna_utilization)});
  t.add_row({"GPE utilization", format_percent(rs.gpe_utilization)});
  t.add_row({"vertices retired", std::to_string(rs.tasks_completed)});
  t.add_row({"NoC packets", std::to_string(rs.packets_delivered)});
  t.print(std::cout);
  return 0;
}
