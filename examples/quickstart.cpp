// Quickstart: build a GNN, run it functionally, then simulate it on the
// GNN accelerator and print the timing report.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <iostream>

#include "accel/compiler.hpp"
#include "accel/config.hpp"
#include "accel/simulator.hpp"
#include "gnn/functional.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"

int main() {
  using namespace gnna;

  // 1. A dataset: the synthetic Cora stand-in (Table V statistics).
  const graph::Dataset cora = graph::make_dataset(graph::DatasetId::kCora);
  std::cout << "dataset: " << cora.spec.name << " — "
            << cora.spec.total_nodes << " nodes, " << cora.spec.total_edges
            << " edges, " << cora.spec.vertex_features << " features\n";

  // 2. A model: 2-layer GCN sized for Cora.
  const gnn::ModelSpec gcn =
      gnn::make_gcn(cora.spec.vertex_features, cora.spec.output_features);

  // 3. Functional execution (value-level, for correctness).
  const gnn::FunctionalExecutor exec(gcn);
  const linalg::Matrix out = exec.run_dataset(cora);
  std::cout << "functional output: " << out.rows() << " x " << out.cols()
            << " (logits for " << out.rows() << " vertices)\n";

  // 4. Cycle-level simulation on the CPU iso-bandwidth configuration
  //    (1 tile + 1 memory node, Table VI).
  const accel::ProgramCompiler compiler;
  const accel::CompiledProgram prog = compiler.compile(gcn, cora);
  std::cout << "compiled to " << prog.phases.size() << " phases, "
            << prog.memmap.total_bytes() / 1024 << " KiB footprint\n";

  accel::AcceleratorSim sim(accel::AcceleratorConfig::cpu_iso_bw());
  const accel::RunStats rs = sim.run(prog, cora);

  std::printf("\nsimulated on %s @ %.1f GHz\n", rs.config_name.c_str(),
              rs.core_clock_ghz);
  std::printf("  latency          : %.3f ms (%llu cycles)\n", rs.millis,
              static_cast<unsigned long long>(rs.cycles));
  std::printf("  mean memory BW   : %.1f GB/s (%.0f%% of peak)\n",
              rs.mean_bandwidth_gbps, rs.bandwidth_utilization * 100.0);
  std::printf("  DNA utilization  : %.1f%%\n", rs.dna_utilization * 100.0);
  std::printf("  GPE utilization  : %.1f%%\n", rs.gpe_utilization * 100.0);
  std::printf("  vertices retired : %llu\n",
              static_cast<unsigned long long>(rs.tasks_completed));
  for (const auto& ph : rs.phases) {
    std::printf("  phase %-10s : %llu cycles\n", ph.name.c_str(),
                static_cast<unsigned long long>(ph.cycles));
  }
  return 0;
}
