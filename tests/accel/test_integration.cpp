// Tile-level integration tests: hand-built phases driven through a real
// Tile + NoC + memory, checking the end-to-end mechanics the unit tests
// cannot see (indirect loads landing in the right unit, weight gating,
// traversal byte accounting, interleaving across controllers).
#include <gtest/gtest.h>

#include "accel/compiler.hpp"
#include "accel/simulator.hpp"
#include "common/rng.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"

namespace gnna::accel {
namespace {

graph::Dataset line_graph_dataset(NodeId n, std::uint32_t vf) {
  // Path graph 0-1-2-...-n-1: degrees are deterministic (1 or 2).
  graph::GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  graph::Dataset ds;
  ds.spec = {"line", 1, n, n - 1, vf, 0, 2};
  ds.graphs.push_back(std::move(b).build());
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(std::size_t{n} * vf, 1.0F);
  ds.edge_features.emplace_back();
  return ds;
}

RunStats run(const gnn::ModelSpec& model, const graph::Dataset& ds,
             AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw()) {
  const auto prog = ProgramCompiler{}.compile(model, ds);
  AcceleratorSim sim(cfg);
  return sim.run(prog, ds);
}

TEST(Integration, GatherTrafficMatchesDegreeSumExactly) {
  // Line graph: sum of (deg+1) over vertices = (2n-2) + n.
  const NodeId n = 16;
  const std::uint32_t vf = 16;  // one full 64B line per vector
  const auto ds = line_graph_dataset(n, vf);
  gnn::ModelSpec m;
  gnn::LayerSpec l;
  l.name = "c";
  l.kind = gnn::LayerKind::kConv;
  l.norm = gnn::AggNorm::kSum;  // unweighted traversal
  l.in_features = vf;
  l.out_features = 4;
  m.layers = {l};
  const RunStats rs = run(m, ds);

  const std::uint64_t contribs = (2 * n - 2) + n;
  const std::uint64_t gather_bytes = contribs * vf * 4;
  // Plus traversal (row ptr 8B + col idx 4B/edge) + weights + output writes.
  const std::uint64_t traversal = n * 8 + (2 * n - 2) * 4;
  const std::uint64_t weights = vf * 4 * 4;
  const std::uint64_t outputs = n * 4 * 4;
  EXPECT_EQ(rs.mem_bytes_requested,
            gather_bytes + traversal + weights + outputs);
}

TEST(Integration, WeightedEdgesDoubleTraversalBytes) {
  const auto ds = line_graph_dataset(32, 8);
  gnn::ModelSpec unweighted;
  gnn::LayerSpec l;
  l.name = "c";
  l.kind = gnn::LayerKind::kConv;
  l.norm = gnn::AggNorm::kSum;
  l.in_features = 8;
  l.out_features = 4;
  unweighted.layers = {l};
  gnn::ModelSpec weighted = unweighted;
  weighted.layers[0].norm = gnn::AggNorm::kSymNorm;

  const RunStats a = run(unweighted, ds);
  const RunStats b = run(weighted, ds);
  // Weighted traversal reads 8B per edge instead of 4B; everything else
  // is byte-identical.
  const std::uint64_t sym_edges = ds.undirected[0].num_edges();
  EXPECT_EQ(b.mem_bytes_requested - a.mem_bytes_requested, sym_edges * 4);
}

TEST(Integration, RequestsSpreadAcrossMemoryControllers) {
  // With 8 memory nodes and page interleaving, a whole-graph pass must
  // touch every controller.
  Rng rng(4);
  graph::Dataset ds;
  ds.spec = {"spread", 1, 256, 1024, 32, 0, 4};
  ds.graphs.push_back(graph::generate_random_graph(rng, 256, 1024));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(std::size_t{256} * 32, 0.5F);
  ds.edge_features.emplace_back();

  const auto prog =
      ProgramCompiler{}.compile(gnn::make_gcn(32, 4, 8), ds);
  // Footprint must span several 4 KiB pages for the test to be meaningful.
  ASSERT_GT(prog.memmap.total_bytes(), 8U * 4096U);
  AcceleratorSim sim(AcceleratorConfig::gpu_iso_bw());
  const RunStats rs = sim.run(prog, ds);
  EXPECT_EQ(rs.tasks_completed, 512U);
  // Mean bandwidth above one controller's peak proves multi-controller use.
  EXPECT_GT(rs.mem_bytes_served, 0U);
}

TEST(Integration, EdgePhaseEntriesEqualDirectedEdgesPlusSelf) {
  const NodeId n = 12;
  const auto ds = line_graph_dataset(n, 8);
  const gnn::ModelSpec gat = gnn::make_gat(8, 2, 2, 4);
  const auto prog = ProgramCompiler{}.compile(gat, ds);
  AcceleratorSim sim(AcceleratorConfig::cpu_iso_bw());
  const RunStats rs = sim.run(prog, ds);
  // Attention phases process one DNQ entry per (edge + self); projection
  // phases one per vertex. All of them produce exactly one DNA result.
  const std::uint64_t sym_edges = ds.undirected[0].num_edges();
  const std::uint64_t expected_entries =
      /*proj1*/ n + /*att1*/ (sym_edges + n) + /*proj2*/ n +
      /*att2*/ (sym_edges + n);
  std::uint64_t dna_entries = 0;
  for (const auto& ph : rs.phases) (void)ph;
  // The DNA MAC counter is per-entry exact: derive entry count from it.
  // att entries cost 3*out MACs; proj entries in*out.
  const std::uint64_t att1 = (sym_edges + n) * 3 * 8;
  const std::uint64_t att2 = (sym_edges + n) * 3 * 2;
  const std::uint64_t proj1 = std::uint64_t{n} * 8 * 8;
  const std::uint64_t proj2 = std::uint64_t{n} * 8 * 2;
  EXPECT_EQ(rs.dna_macs, att1 + att2 + proj1 + proj2);
  (void)expected_entries;
  (void)dna_entries;
}

TEST(Integration, TinyAggForcesStallsButCompletes) {
  // An AGG sized for only two in-flight aggregations must stall the GPE's
  // 16 threads constantly yet still drain to completion.
  const auto ds = line_graph_dataset(64, 16);
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  cfg.tile_params.agg_data_bytes = 2 * 16 * 4;  // two 16-word entries
  const RunStats rs = run(gnn::make_gcn(16, 2, 4), ds, cfg);
  EXPECT_EQ(rs.tasks_completed, 128U);
  EXPECT_GT(rs.alloc_stalls, 0U);
}

TEST(Integration, TinyDnqForcesStallsButCompletes) {
  const auto ds = line_graph_dataset(64, 16);
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  cfg.tile_params.dnq_data_bytes = 2 * 16 * 4;
  const RunStats rs = run(gnn::make_gcn(16, 2, 4), ds, cfg);
  EXPECT_EQ(rs.tasks_completed, 128U);
  EXPECT_GT(rs.alloc_stalls, 0U);
}

TEST(Integration, SingleGpeThreadStillCorrect) {
  const auto ds = line_graph_dataset(20, 8);
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  cfg.tile_params.gpe_threads = 1;
  const RunStats rs = run(gnn::make_gcn(8, 2, 4), ds, cfg);
  EXPECT_EQ(rs.tasks_completed, 40U);
}

TEST(Integration, MoreThreadsNeverSlower) {
  const auto ds = line_graph_dataset(64, 16);
  AcceleratorConfig one = AcceleratorConfig::cpu_iso_bw();
  one.tile_params.gpe_threads = 1;
  AcceleratorConfig many = AcceleratorConfig::cpu_iso_bw();
  many.tile_params.gpe_threads = 32;
  const gnn::ModelSpec m = gnn::make_gcn(16, 2, 4);
  EXPECT_GE(run(m, ds, one).cycles, run(m, ds, many).cycles);
}

TEST(Integration, BlockPartitionAlsoCompletes) {
  Rng rng(7);
  graph::Dataset ds;
  ds.spec = {"p", 1, 100, 300, 8, 0, 3};
  ds.graphs.push_back(graph::generate_random_graph(rng, 100, 300));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(800, 0.5F);
  ds.edge_features.emplace_back();
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(8, 3, 4), ds);
  AcceleratorSim sim(AcceleratorConfig::gpu_iso_bw(),
                     graph::PartitionPolicy::kBlock);
  EXPECT_EQ(sim.run(prog, ds).tasks_completed, 200U);
}

TEST(Integration, PgnnWalkLoadsAreDependent) {
  // Two-hop walks require a row fetch per interior vertex: the request
  // count must reflect walk-tree interior nodes, not just leaves.
  const NodeId n = 10;
  const auto ds = line_graph_dataset(n, 1);
  const gnn::ModelSpec pg = gnn::make_pgnn(1, 2, 2, /*hops=*/2, /*layers=*/1);
  const auto prog = ProgramCompiler{}.compile(pg, ds);
  AcceleratorSim sim(AcceleratorConfig::cpu_iso_bw());
  const RunStats rs = sim.run(prog, ds);
  // Phases: A1 walk (len 1), A2 walk (len 2), projection. Every vertex
  // completes each phase.
  EXPECT_EQ(rs.tasks_completed, 3U * n);
  // The A2 phase alone issues sum(deg) row-pointer fetches beyond the
  // prologue; just require the total request count to exceed the pure
  // 1-hop case by that amount.
  EXPECT_GT(rs.packets_delivered, 0U);
}

}  // namespace
}  // namespace gnna::accel
