#include "accel/dnq.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace gnna::accel {
namespace {

Dest mem_dest(Addr addr) {
  Dest d;
  d.kind = Dest::Kind::kMemWrite;
  d.addr = addr;
  return d;
}

noc::Message fill(DnqHandle h, std::uint32_t bytes) {
  noc::Message m;
  m.kind = noc::MsgKind::kDnqWrite;
  m.a = h;
  m.payload_bytes = bytes;
  return m;
}

TEST(Dnq, AllocateFillDequeue) {
  Dnq q{TileParams{}};
  const auto h = q.allocate(0, 8, mem_dest(0x40));
  ASSERT_TRUE(h.has_value());
  EXPECT_FALSE(q.try_dequeue(0).has_value());  // not ready
  q.on_message(fill(*h, 32));
  const auto e = q.try_dequeue(0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->width_words, 8U);
  EXPECT_EQ(e->dest.addr, 0x40U);
  EXPECT_TRUE(q.empty());
}

TEST(Dnq, PartialFillNotReady) {
  Dnq q{TileParams{}};
  const auto h = q.allocate(0, 8, mem_dest(0));
  q.on_message(fill(*h, 16));
  EXPECT_FALSE(q.try_dequeue(0).has_value());
  q.on_message(fill(*h, 16));
  EXPECT_TRUE(q.try_dequeue(0).has_value());
}

TEST(Dnq, FifoOrderWithinQueue) {
  Dnq q{TileParams{}};
  const auto h1 = q.allocate(0, 1, mem_dest(1));
  const auto h2 = q.allocate(0, 1, mem_dest(2));
  // Fill the SECOND entry first: head-of-line blocking until h1 is ready.
  q.on_message(fill(*h2, 4));
  EXPECT_FALSE(q.try_dequeue(0).has_value());
  q.on_message(fill(*h1, 4));
  EXPECT_EQ(q.try_dequeue(0)->dest.addr, 1U);
  EXPECT_EQ(q.try_dequeue(0)->dest.addr, 2U);
}

TEST(Dnq, SplitConservesEveryScratchpadByte) {
  // Regression: the default split computed dnq_data_bytes/16*sixteenths,
  // truncating the per-sixteenth size first — with a non-divisible
  // scratchpad and sixteenths=16 queue 0 got only 992 of 1000 bytes.
  TileParams p;
  p.dnq_data_bytes = 1000;
  p.dnq_queue0_sixteenths = 16;  // all of it
  EXPECT_EQ(Dnq::queue0_split_bytes(p), 1000U);
  Dnq q{p};
  EXPECT_EQ(q.queue_capacity_bytes(0), 1000U);
  EXPECT_EQ(q.queue_capacity_bytes(1), 0U);

  // Uneven split: queue 1 receives the remainder, nothing is lost.
  p.dnq_queue0_sixteenths = 11;
  EXPECT_EQ(Dnq::queue0_split_bytes(p), 687U);  // floor(1000*11/16)
  Dnq q2{p};
  EXPECT_EQ(q2.queue_capacity_bytes(0) + q2.queue_capacity_bytes(1), 1000U);

  // A 250-word (1000B) entry must fit when queue 0 owns the whole pad.
  p.dnq_queue0_sixteenths = 16;
  Dnq q3{p};
  EXPECT_TRUE(q3.allocate(0, 250, mem_dest(0)).has_value());
}

TEST(Dnq, DataCapacityPerQueue) {
  TileParams p;
  p.dnq_data_bytes = 1024;
  p.dnq_queue0_sixteenths = 8;  // 512B each
  Dnq q{p};
  q.configure(512, 512);
  // Queue 0 takes 4 x 32-word (128B) entries, then fails.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.allocate(0, 32, mem_dest(i)).has_value()) << i;
  }
  EXPECT_FALSE(q.allocate(0, 32, mem_dest(9)).has_value());
  // Queue 1 has independent capacity.
  EXPECT_TRUE(q.allocate(1, 32, mem_dest(10)).has_value());
  EXPECT_EQ(q.stats().alloc_failures.value(), 1U);
}

TEST(Dnq, DestScratchpadLimitsEntryCount) {
  TileParams p;
  p.dnq_dest_bytes = 32;  // 4 entries at 8B each
  Dnq q{p};
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.allocate(0, 1, mem_dest(i)).has_value());
  }
  EXPECT_FALSE(q.allocate(0, 1, mem_dest(5)).has_value());
}

TEST(Dnq, FreedSpaceReusable) {
  TileParams p;
  p.dnq_data_bytes = 128;
  Dnq q{p};
  q.configure(128, 0);
  const auto h = q.allocate(0, 32, mem_dest(0));
  ASSERT_TRUE(h.has_value());
  EXPECT_FALSE(q.allocate(0, 32, mem_dest(1)).has_value());
  q.on_message(fill(*h, 128));
  ASSERT_TRUE(q.try_dequeue(0).has_value());
  EXPECT_TRUE(q.allocate(0, 32, mem_dest(1)).has_value());
}

TEST(Dnq, LazySwitchWaitsForIdleThreshold) {
  Dnq q{TileParams{}};  // switch threshold 16 cycles
  q.configure(31 * 1024, 31 * 1024);
  const auto h1 = q.allocate(1, 1, mem_dest(7));
  q.on_message(fill(*h1, 4));
  // Queue 1's head is ready but the active queue is 0 (empty): the switch
  // must not happen before 16 idle cycles.
  EXPECT_EQ(q.active_queue(), 0);
  EXPECT_FALSE(q.try_dequeue(10.0).has_value());
  EXPECT_EQ(q.stats().queue_switches.value(), 0U);
  const auto e = q.try_dequeue(16.0);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->dest.addr, 7U);
  EXPECT_EQ(q.active_queue(), 1);
  EXPECT_EQ(q.stats().queue_switches.value(), 1U);
}

TEST(Dnq, NoSwitchWhenActiveHeadReady) {
  Dnq q{TileParams{}};
  q.configure(31 * 1024, 31 * 1024);
  const auto h0 = q.allocate(0, 1, mem_dest(1));
  const auto h1 = q.allocate(1, 1, mem_dest(2));
  q.on_message(fill(*h0, 4));
  q.on_message(fill(*h1, 4));
  // Even with huge idle time, the active queue serves first.
  EXPECT_EQ(q.try_dequeue(1000.0)->dest.addr, 1U);
  EXPECT_EQ(q.stats().queue_switches.value(), 0U);
}

TEST(Dnq, SwitchBackAndForth) {
  Dnq q{TileParams{}};
  q.configure(31 * 1024, 31 * 1024);
  const auto h1 = q.allocate(1, 1, mem_dest(1));
  q.on_message(fill(*h1, 4));
  ASSERT_TRUE(q.try_dequeue(100.0).has_value());
  EXPECT_EQ(q.active_queue(), 1);
  const auto h0 = q.allocate(0, 1, mem_dest(2));
  q.on_message(fill(*h0, 4));
  ASSERT_TRUE(q.try_dequeue(100.0).has_value());
  EXPECT_EQ(q.active_queue(), 0);
  EXPECT_EQ(q.stats().queue_switches.value(), 2U);
}

TEST(Dnq, StatsCountWordsAndDequeues) {
  Dnq q{TileParams{}};
  const auto h = q.allocate(0, 4, mem_dest(0));
  q.on_message(fill(*h, 16));
  (void)q.try_dequeue(0);
  EXPECT_EQ(q.stats().allocations.value(), 1U);
  EXPECT_EQ(q.stats().enqueued_words.value(), 4U);
  EXPECT_EQ(q.stats().dequeues.value(), 1U);
}

TEST(Dnq, LiveEntriesTracksOutstanding) {
  Dnq q{TileParams{}};
  const auto h1 = q.allocate(0, 1, mem_dest(0));
  (void)q.allocate(0, 1, mem_dest(1));
  EXPECT_EQ(q.live_entries(), 2U);
  q.on_message(fill(*h1, 4));
  (void)q.try_dequeue(0);
  EXPECT_EQ(q.live_entries(), 1U);
}

// Malformed requests and splits are program/config bugs: they throw
// explicitly instead of surfacing as nullopt back-pressure or a deadlock.
TEST(Dnq, SplitSixteenthsOutOfRangeThrows) {
  TileParams params;
  params.dnq_queue0_sixteenths = 17;
  EXPECT_THROW((void)Dnq::queue0_split_bytes(params), std::invalid_argument);
  EXPECT_THROW(Dnq{params}, std::invalid_argument);
}

TEST(Dnq, ConfigureOverfullSplitThrows) {
  Dnq q{TileParams{}};
  const TileParams params;
  EXPECT_THROW(q.configure(params.dnq_data_bytes, 1), std::invalid_argument);
}

TEST(Dnq, ConfigureNonEmptyQueueThrows) {
  Dnq q{TileParams{}};
  (void)q.allocate(0, 1, mem_dest(0));
  EXPECT_THROW(q.configure(64, 64), std::logic_error);
}

TEST(Dnq, AllocateBadQueueOrWidthThrows) {
  Dnq q{TileParams{}};
  EXPECT_THROW((void)q.allocate(2, 4, mem_dest(0)), std::invalid_argument);
  EXPECT_THROW((void)q.allocate(0, 0, mem_dest(0)), std::invalid_argument);
}

TEST(Dnq, AllocateUnitDestWithInvalidEndpointThrows) {
  Dnq q{TileParams{}};
  Dest d;
  d.kind = Dest::Kind::kAggEntry;
  d.ep = kInvalidEndpoint;
  EXPECT_THROW((void)q.allocate(0, 4, d), std::invalid_argument);
}

}  // namespace
}  // namespace gnna::accel
