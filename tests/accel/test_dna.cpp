#include "accel/dna.hpp"

#include <gtest/gtest.h>

#include <optional>

namespace gnna::accel {
namespace {

struct Rig {
  noc::MeshNetwork net{1, 1};
  EndpointId dna_ep;
  EndpointId sink;
  AddressMap amap{{0}, 4096};
  std::optional<Dna> dna;
  Dnq dnq{TileParams{}};

  explicit Rig(TileParams params = TileParams{}, double scale = 1.0) {
    dna_ep = net.add_endpoint(0, 0);
    sink = net.add_endpoint(0, 0);
    const EndpointId mem = net.add_endpoint(0, 0);
    net.finalize();
    amap = AddressMap({mem}, 4096);
    dna.emplace(params, net, dna_ep, amap, scale);
  }

  Dest to_sink() {
    Dest d;
    d.kind = Dest::Kind::kAggEntry;
    d.ep = sink;
    d.handle = 5;
    return d;
  }

  DnqHandle ready_entry(std::uint8_t queue, std::uint32_t words) {
    const auto h = dnq.allocate(queue, words, to_sink());
    EXPECT_TRUE(h.has_value());
    noc::Message m;
    m.kind = noc::MsgKind::kDnqWrite;
    m.a = *h;
    m.payload_bytes = words * 4;
    dnq.on_message(m);
    return *h;
  }

  std::vector<noc::Message> run(Cycle cycles) {
    std::vector<noc::Message> out;
    for (Cycle c = 0; c < cycles; ++c) {
      dna->tick(dnq);
      net.tick();
      while (auto m = net.poll(sink)) out.push_back(*m);
    }
    return out;
  }
};

TEST(Dna, ProcessesEntryAndEmitsResult) {
  Rig rig;
  rig.dna->configure({{10.0, 16}}, 0);
  rig.ready_entry(0, 8);
  const auto out = rig.run(200);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].kind, noc::MsgKind::kAggWrite);
  EXPECT_EQ(out[0].a, 5U);
  EXPECT_EQ(out[0].payload_bytes, 64U);  // 16 words
  EXPECT_EQ(rig.dna->stats().entries_processed.value(), 1U);
  EXPECT_TRUE(rig.dna->idle());
}

TEST(Dna, WaitsForWeightsBeforeProcessing) {
  Rig rig;
  rig.dna->configure({{4.0, 4}}, /*weight_bytes=*/1024);
  rig.ready_entry(0, 4);
  EXPECT_TRUE(rig.run(100).empty());
  EXPECT_FALSE(rig.dna->idle());
  rig.dna->on_weight_data(512);
  EXPECT_TRUE(rig.run(50).empty());  // still half missing
  rig.dna->on_weight_data(512);
  EXPECT_EQ(rig.run(200).size(), 1U);
}

TEST(Dna, InitiationIntervalPacesThroughput) {
  TileParams p;
  p.dna_min_ii = 4;
  p.dna_pipeline_latency = 0;
  Rig rig(p);
  rig.dna->configure({{50.0, 1}}, 0);
  for (int i = 0; i < 5; ++i) rig.ready_entry(0, 1);
  Cycle start = rig.net.now();
  const auto out = rig.run(1000);
  ASSERT_EQ(out.size(), 5U);
  // 5 entries at II=50 => at least 250 cycles of array time.
  EXPECT_GE(rig.net.now() - start, 250U);
  EXPECT_NEAR(rig.dna->stats().busy_cycles, 250.0, 1.0);
}

TEST(Dna, MinIiFloorApplies) {
  TileParams p;
  p.dna_min_ii = 8;
  Rig rig(p);
  rig.dna->configure({{1.0, 1}}, 0);  // model faster than the floor
  for (int i = 0; i < 4; ++i) rig.ready_entry(0, 1);
  rig.run(500);
  EXPECT_NEAR(rig.dna->stats().busy_cycles, 32.0, 1.0);
}

TEST(Dna, WideEntryReadoutDominatesTinyModel) {
  TileParams p;
  p.dna_min_ii = 1;
  Rig rig(p);
  rig.dna->configure({{1.0, 1}}, 0);
  rig.ready_entry(0, 512);  // 32 flits of readout at 16 words/cycle
  rig.run(200);
  EXPECT_NEAR(rig.dna->stats().busy_cycles, 32.0, 1.0);
}

TEST(Dna, PipelineLatencyDelaysResultNotThroughput) {
  TileParams p;
  p.dna_min_ii = 4;
  p.dna_pipeline_latency = 100;
  Rig rig(p);
  rig.dna->configure({{4.0, 1}}, 0);
  rig.ready_entry(0, 1);
  const auto out = rig.run(300);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_GE(out[0].delivered_at, 104U);
}

TEST(Dna, TwoModelsViaVirtualQueues) {
  TileParams p;
  p.dnq_idle_switch_cycles = 2;
  Rig rig(p);
  rig.dnq = Dnq{p};
  rig.dnq.configure(31 * 1024, 31 * 1024);
  rig.dna->configure({{4.0, 2}, {4.0, 7}}, 0);
  rig.ready_entry(0, 4);
  rig.ready_entry(1, 4);
  const auto out = rig.run(500);
  ASSERT_EQ(out.size(), 2U);
  // Queue 0's model emits 2 words, queue 1's 7 words.
  EXPECT_EQ(out[0].payload_bytes, 8U);
  EXPECT_EQ(out[1].payload_bytes, 28U);
}

TEST(Dna, ResultToMemoryDest) {
  Rig rig;
  rig.dna->configure({{4.0, 16}}, 0);
  Dest d;
  d.kind = Dest::Kind::kMemWrite;
  d.addr = 0x200;
  const auto h = rig.dnq.allocate(0, 4, d);
  noc::Message m;
  m.kind = noc::MsgKind::kDnqWrite;
  m.a = *h;
  m.payload_bytes = 16;
  rig.dnq.on_message(m);
  std::vector<noc::Message> mem_msgs;
  for (Cycle c = 0; c < 300; ++c) {
    rig.dna->tick(rig.dnq);
    rig.net.tick();
    while (auto got = rig.net.poll(2)) mem_msgs.push_back(*got);
  }
  ASSERT_EQ(mem_msgs.size(), 1U);
  EXPECT_EQ(mem_msgs[0].kind, noc::MsgKind::kMemWriteReq);
  EXPECT_EQ(mem_msgs[0].a, 0x200U);
}

TEST(Dna, CoreClockScaleStretchesBusyTime) {
  Rig rig(TileParams{}, /*scale=*/2.0);
  rig.dna->configure({{10.0, 1}}, 0);
  rig.ready_entry(0, 1);
  rig.run(200);
  EXPECT_NEAR(rig.dna->stats().busy_cycles, 20.0, 1.0);
}

}  // namespace
}  // namespace gnna::accel
