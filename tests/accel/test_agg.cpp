#include "accel/agg.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/rng.hpp"

namespace gnna::accel {
namespace {

struct Rig {
  noc::MeshNetwork net{1, 1};
  EndpointId agg_ep;
  EndpointId sink;  // where results land
  AddressMap amap{{0}, 4096};  // placeholder; rebuilt below
  std::optional<Agg> agg;

  explicit Rig(TileParams params = TileParams{}, double scale = 1.0) {
    agg_ep = net.add_endpoint(0, 0);
    sink = net.add_endpoint(0, 0);
    const EndpointId mem = net.add_endpoint(0, 0);
    net.finalize();
    amap = AddressMap({mem}, 4096);
    agg.emplace(params, net, agg_ep, amap, scale);
  }

  Dest to_sink() {
    Dest d;
    d.kind = Dest::Kind::kDnqEntry;
    d.ep = sink;
    d.handle = 99;
    return d;
  }

  /// Deliver a timing-only contribution of `words` to handle `h`.
  void contribute(AggHandle h, std::uint32_t words) {
    noc::Message m;
    m.src = sink;
    m.dst = agg_ep;
    m.kind = noc::MsgKind::kAggWrite;
    m.payload_bytes = words * 4;
    m.a = h;
    net.send(m);
  }

  std::vector<noc::Message> run(Cycle cycles) {
    std::vector<noc::Message> out;
    for (Cycle c = 0; c < cycles; ++c) {
      agg->tick();
      net.tick();
      while (auto m = net.poll(sink)) out.push_back(*m);
    }
    return out;
  }
};

TEST(Agg, AllocateAndComplete) {
  Rig rig;
  const auto h = rig.agg->allocate(4, 8, ReduceOp::kSum, rig.to_sink());
  ASSERT_TRUE(h.has_value());
  rig.contribute(*h, 4);
  rig.contribute(*h, 4);
  const auto out = rig.run(50);
  ASSERT_EQ(out.size(), 1U);
  EXPECT_EQ(out[0].kind, noc::MsgKind::kDnqWrite);
  EXPECT_EQ(out[0].a, 99U);
  EXPECT_EQ(out[0].payload_bytes, 16U);
  EXPECT_TRUE(rig.agg->idle());
  EXPECT_EQ(rig.agg->stats().completions.value(), 1U);
}

TEST(Agg, ZeroExpectedCompletesImmediately) {
  Rig rig;
  const auto h = rig.agg->allocate(4, 0, ReduceOp::kSum, rig.to_sink());
  ASSERT_TRUE(h.has_value());
  EXPECT_FALSE(rig.agg->entry_active(*h));  // already completed
  const auto out = rig.run(50);
  EXPECT_EQ(out.size(), 1U);
}

TEST(Agg, SplitContributionsCountWords) {
  // A contribution split across two memory segments still counts by words,
  // not by message.
  Rig rig;
  const auto h = rig.agg->allocate(16, 16, ReduceOp::kSum, rig.to_sink());
  rig.contribute(*h, 10);
  EXPECT_TRUE(rig.run(20).empty());  // not yet complete
  rig.contribute(*h, 6);
  EXPECT_EQ(rig.run(50).size(), 1U);
}

TEST(Agg, DataScratchpadCapacityEnforced) {
  TileParams p;
  p.agg_data_bytes = 1024;
  Rig rig(p);
  // 1024 / (64 words * 4B) = 4 entries.
  std::vector<AggHandle> hs;
  for (int i = 0; i < 4; ++i) {
    const auto h = rig.agg->allocate(64, 64, ReduceOp::kSum, rig.to_sink());
    ASSERT_TRUE(h.has_value()) << i;
    hs.push_back(*h);
  }
  EXPECT_FALSE(
      rig.agg->allocate(64, 64, ReduceOp::kSum, rig.to_sink()).has_value());
  EXPECT_EQ(rig.agg->stats().alloc_failures.value(), 1U);
  // Freeing one entry re-enables allocation.
  rig.contribute(hs[0], 64);
  rig.run(20);
  EXPECT_TRUE(
      rig.agg->allocate(64, 64, ReduceOp::kSum, rig.to_sink()).has_value());
}

TEST(Agg, ControlScratchpadCapacityEnforced) {
  TileParams p;
  p.agg_ctrl_bytes = 64;  // 4 entries at 16B metadata each
  Rig rig(p);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        rig.agg->allocate(1, 1, ReduceOp::kSum, rig.to_sink()).has_value());
  }
  EXPECT_FALSE(
      rig.agg->allocate(1, 1, ReduceOp::kSum, rig.to_sink()).has_value());
}

TEST(Agg, ResultToMemoryIsWriteRequest) {
  Rig rig;
  Dest d;
  d.kind = Dest::Kind::kMemWrite;
  d.addr = 0x100;
  const auto h = rig.agg->allocate(8, 8, ReduceOp::kSum, d);
  rig.contribute(*h, 8);
  // Result goes to the memory endpoint (2), not the sink.
  std::vector<noc::Message> mem_msgs;
  for (Cycle c = 0; c < 50; ++c) {
    rig.agg->tick();
    rig.net.tick();
    while (auto m = rig.net.poll(2)) mem_msgs.push_back(*m);
  }
  ASSERT_EQ(mem_msgs.size(), 1U);
  EXPECT_EQ(mem_msgs[0].kind, noc::MsgKind::kMemWriteReq);
  EXPECT_EQ(mem_msgs[0].a, 0x100U);
  EXPECT_EQ(mem_msgs[0].b, 32U);
}

TEST(Agg, ThroughputOneFlitPerCycle) {
  Rig rig;
  const auto h =
      rig.agg->allocate(16, 16 * 100, ReduceOp::kSum, rig.to_sink());
  for (int i = 0; i < 100; ++i) rig.contribute(*h, 16);
  rig.run(2000);
  // 100 contributions of one flit each: at least ~100 busy cycles.
  EXPECT_NEAR(rig.agg->stats().busy_cycles, 100.0, 1.0);
}

TEST(Agg, SlowCoreClockScalesBusyTime) {
  Rig rig(TileParams{}, /*scale=*/2.0);  // core at half the NoC clock
  const auto h = rig.agg->allocate(16, 16 * 10, ReduceOp::kSum, rig.to_sink());
  for (int i = 0; i < 10; ++i) rig.contribute(*h, 16);
  rig.run(200);
  EXPECT_NEAR(rig.agg->stats().busy_cycles, 20.0, 1.0);
}

TEST(Agg, HandleReuseAfterCompletion) {
  Rig rig;
  const auto h1 = rig.agg->allocate(4, 4, ReduceOp::kSum, rig.to_sink());
  rig.contribute(*h1, 4);
  rig.run(20);
  const auto h2 = rig.agg->allocate(4, 4, ReduceOp::kSum, rig.to_sink());
  ASSERT_TRUE(h2.has_value());
  EXPECT_EQ(*h1, *h2);  // freed slot reused
  EXPECT_TRUE(rig.agg->entry_active(*h2));
}

// ---- Value-accurate path: the associativity property the AGG relies on.

class AggValueOrder : public ::testing::TestWithParam<ReduceOp> {};

TEST_P(AggValueOrder, ArrivalOrderDoesNotChangeResult) {
  const ReduceOp op = GetParam();
  Rng rng(static_cast<std::uint64_t>(op) * 13 + 5);
  constexpr std::uint32_t kWidth = 8;
  constexpr int kContribs = 12;

  std::vector<std::vector<Fixed32>> contribs(kContribs);
  for (auto& c : contribs) {
    for (std::uint32_t w = 0; w < kWidth; ++w) {
      c.push_back(Fixed32::from_double(rng.next_float(-50.0F, 50.0F)));
    }
  }

  auto run_order = [&](const std::vector<int>& order) {
    Rig rig;
    const auto h = rig.agg->allocate(kWidth, kWidth * kContribs, op,
                                     Dest{});  // no destination
    std::vector<Fixed32> result;
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (i + 1 == order.size()) {
        // Snapshot before the final contribution completes the entry.
        result.assign(rig.agg->entry_values(*h).begin(),
                      rig.agg->entry_values(*h).end());
        // Fold the last one manually to reproduce the final state.
        const auto& last = contribs[order[i]];
        for (std::uint32_t w = 0; w < kWidth; ++w) {
          result[w] = apply_reduce(op, result[w], last[w]);
        }
      }
      rig.agg->contribute_values(*h, contribs[order[i]]);
    }
    return result;
  };

  std::vector<int> order(kContribs);
  std::iota(order.begin(), order.end(), 0);
  const auto expected = run_order(order);
  for (int trial = 0; trial < 10; ++trial) {
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    EXPECT_EQ(run_order(order), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, AggValueOrder,
                         ::testing::Values(ReduceOp::kSum, ReduceOp::kMax,
                                           ReduceOp::kMin));

TEST(Agg, ValueIdentitiesInitialized) {
  Rig rig;
  const auto h = rig.agg->allocate(3, 3, ReduceOp::kMax, Dest{});
  const auto vals = rig.agg->entry_values(*h);
  for (const Fixed32 v : vals) EXPECT_EQ(v, Fixed32::min_value());
}

TEST(Agg, DumpStateNamesRemainingWordsAndDestination) {
  // Watchdog diagnostics must read as a wait-for chain: each stalled
  // entry shows how many elements it still expects and which resource
  // (mem address / DNQ entry / AGG entry) its result would unblock.
  Rig rig;
  const auto h = rig.agg->allocate(4, 8, ReduceOp::kMax, rig.to_sink());
  ASSERT_TRUE(h.has_value());
  rig.contribute(*h, 3);
  (void)rig.run(20);

  std::ostringstream os;
  rig.agg->dump_state(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("remaining_words_total=5"), std::string::npos);
  EXPECT_NE(dump.find("received=3/8"), std::string::npos);
  EXPECT_NE(dump.find("remaining=5"), std::string::npos);
  EXPECT_NE(dump.find("op=max"), std::string::npos);
  EXPECT_NE(dump.find("-> dnq ep=" + std::to_string(rig.sink) + " handle=99"),
            std::string::npos);

  // Memory destinations are named by address.
  Dest mem;
  mem.kind = Dest::Kind::kMemWrite;
  mem.addr = 0xff00;
  const auto h2 = rig.agg->allocate(4, 4, ReduceOp::kSum, mem);
  ASSERT_TRUE(h2.has_value());
  std::ostringstream os2;
  rig.agg->dump_state(os2);
  EXPECT_NE(os2.str().find("-> mem addr=0xff00"), std::string::npos);
  EXPECT_NE(os2.str().find("op=sum"), std::string::npos);
}

// Malformed allocations are program bugs, not back-pressure: they must
// throw instead of returning nullopt (the GPE retries nullopt forever).
TEST(Agg, ZeroWidthAllocationThrows) {
  Rig rig;
  EXPECT_THROW((void)rig.agg->allocate(0, 4, ReduceOp::kSum, rig.to_sink()),
               std::invalid_argument);
}

TEST(Agg, NonAssociativeReduceOpThrows) {
  Rig rig;
  EXPECT_THROW((void)rig.agg->allocate(4, 4, ReduceOp::kMean, rig.to_sink()),
               std::invalid_argument);
}

TEST(Agg, UnitDestWithInvalidEndpointThrows) {
  Rig rig;
  Dest d = rig.to_sink();
  d.ep = kInvalidEndpoint;
  EXPECT_THROW((void)rig.agg->allocate(4, 4, ReduceOp::kSum, d),
               std::invalid_argument);
  // Memory destinations are named by address, not endpoint: fine.
  Dest mem;
  mem.kind = Dest::Kind::kMemWrite;
  mem.addr = 0x100;
  EXPECT_TRUE(rig.agg->allocate(4, 4, ReduceOp::kSum, mem).has_value());
}

}  // namespace
}  // namespace gnna::accel
