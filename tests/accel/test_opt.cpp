// accel::opt + accel::validate: the optimizer must recover the fused form
// from a naively-lowered GCN with a measurable cycle-bound and footprint
// win, every golden benchmark must optimize and re-serialize byte-exactly,
// and — the mutation suite — a deliberately miscompiled output of every
// pass must be rejected by the translation validator. The Session routing
// tests pin the "+opt" provenance (optimized_from, stats JSON v7).
#include "accel/opt.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "accel/analysis.hpp"
#include "accel/compiler.hpp"
#include "accel/ir.hpp"
#include "accel/validate.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"
#include "graph/generator.hpp"
#include "sim/json.hpp"
#include "sim/session.hpp"
#include "sim/stats_json.hpp"

#ifndef GNNA_SOURCE_DIR
#define GNNA_SOURCE_DIR "."
#endif

namespace gnna::accel {
namespace {

std::string golden_path(const std::string& file) {
  return std::string(GNNA_SOURCE_DIR) + "/tests/data/golden/" + file;
}

constexpr const char* kGoldenFiles[] = {
    "gcn_cora.gnna",  "gcn_citeseer.gnna",  "gcn_pubmed.gnna",
    "gat_cora.gnna",  "mpnn_qm9_1000.gnna", "pgnn_dblp_1.gnna",
};

/// Small synthetic dataset for optimizer tests (same shape as the
/// compiler tests').
graph::Dataset tiny_dataset(std::uint32_t vf = 6, std::uint32_t ef = 0) {
  Rng rng(3);
  graph::Dataset ds;
  ds.spec = {"tiny", 1, 20, 40, vf, ef, 3};
  ds.graphs.push_back(graph::generate_random_graph(rng, 20, 40));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(std::size_t{20} * vf, 0.5F);
  ds.edge_features.emplace_back(std::size_t{40} * ef, 0.5F);
  return ds;
}

/// A naively-lowered GCN: gather+aggregate and projection as separate
/// phases with an intermediate buffer — the input fuse-phases exists for.
CompiledProgram unfused_gcn(const graph::Dataset& ds) {
  CompilerOptions copts;
  copts.fuse_conv = false;
  return ProgramCompiler{copts}.compile(gnn::make_gcn(6, 3, 4), ds);
}

/// Run one pass with validation off: produces the pass's raw rewrite so a
/// mutation can be seeded into it before handing it to the validator.
CompiledProgram raw_pass_output(const CompiledProgram& prog,
                                const std::string& pass,
                                const graph::Dataset* ds = nullptr) {
  opt::OptimizeOptions oo;
  oo.dataset = ds;
  oo.passes = {pass};
  oo.validate = false;
  const auto res = opt::optimize_program(prog, oo);
  EXPECT_TRUE(res.changed()) << pass << " made no change to seed into";
  return res.program;
}

/// Rebuild a program's memory map via add_region_at, letting the caller
/// perturb one region (mutation helper for dead-regions / pack-regions).
template <typename Perturb>
CompiledProgram rebuild_memmap(const CompiledProgram& prog, Perturb perturb) {
  CompiledProgram out = prog;
  out.memmap = MemoryMap{};
  for (RegionId r = 0; r < prog.memmap.num_regions(); ++r) {
    Region reg = prog.memmap.region(r);
    perturb(r, reg);
    out.memmap.add_region_at(reg.name, reg.base, reg.bytes, reg.preloaded);
  }
  return out;
}

// ---- the fusion win ----

TEST(Opt, FusionRecoversFusedFormWithCycleAndFootprintWin) {
  const auto ds = tiny_dataset();
  const CompiledProgram naive = unfused_gcn(ds);
  ASSERT_EQ(naive.phases.size(), 4U);  // 2 layers x (agg + proj)

  opt::OptimizeOptions oo;
  oo.dataset = &ds;
  const auto res = opt::optimize_program(naive, oo);
  ASSERT_TRUE(res.validated) << res.failure;
  ASSERT_TRUE(res.changed());

  // Both layers fused back to the hardware's one-phase form.
  ASSERT_EQ(res.program.phases.size(), 2U);
  for (const auto& ph : res.program.phases) {
    EXPECT_EQ(ph.kind, PhaseKind::kGatherAggregate);
    EXPECT_TRUE(ph.has_dna());
    EXPECT_TRUE(ph.has_agg());
  }

  // The win is measurable on both axes: the static cycle bound drops (no
  // intermediate round-trip through memory) and dead-regions +
  // pack-regions reclaim the orphaned intermediate buffers.
  const auto cfg = AcceleratorConfig::cpu_iso_bw();
  const double before = analyze_program(naive, cfg).bound_cycles;
  const double after = analyze_program(res.program, cfg).bound_cycles;
  EXPECT_LT(after, before);
  EXPECT_LT(res.program.memmap.total_bytes(), naive.memmap.total_bytes());
  EXPECT_LT(res.program.memmap.num_regions(), naive.memmap.num_regions());

  // And the whole pipeline proves end to end, not just stepwise.
  validate::ValidationOptions vo;
  vo.dataset = &ds;
  const auto whole = validate::validate_transform(naive, res.program, vo);
  EXPECT_TRUE(whole.equivalent) << whole.to_string();
}

TEST(Opt, FusedProgramMatchesDefaultCompilerOutput) {
  // fuse-phases must recover exactly what the fusing compiler emits —
  // same phases, same cycle bound (names/bases may differ, so compare
  // through the validator and the analysis model rather than the hash).
  const auto ds = tiny_dataset();
  const CompiledProgram fused =
      ProgramCompiler{}.compile(gnn::make_gcn(6, 3, 4), ds);
  opt::OptimizeOptions oo;
  oo.dataset = &ds;
  const auto res = opt::optimize_program(unfused_gcn(ds), oo);
  ASSERT_TRUE(res.validated) << res.failure;
  ASSERT_EQ(res.program.phases.size(), fused.phases.size());
  const auto cfg = AcceleratorConfig::cpu_iso_bw();
  EXPECT_DOUBLE_EQ(analyze_program(res.program, cfg).bound_cycles,
                   analyze_program(fused, cfg).bound_cycles);
}

TEST(Opt, UnknownPassThrows) {
  opt::OptimizeOptions oo;
  oo.passes = {"frobnicate"};
  EXPECT_THROW((void)opt::optimize_program(CompiledProgram{}, oo),
               std::invalid_argument);
}

// ---- optimized-golden round-trip ----

TEST(Opt, AllGoldensOptimizeValidateAndRoundTripByteExact) {
  for (const char* file : kGoldenFiles) {
    const CompiledProgram prog = ir::load_file(golden_path(file));
    const auto res = opt::optimize_program(prog);
    EXPECT_TRUE(res.validated) << file << ": " << res.failure;

    // parse -> optimize -> serialize -> re-parse must be byte-exact.
    const std::string text = ir::serialize(res.program);
    const CompiledProgram reparsed = ir::parse(text, file);
    EXPECT_EQ(ir::serialize(reparsed), text) << file;
    EXPECT_EQ(ir::content_hash(reparsed), ir::content_hash(res.program))
        << file;

    // The end-to-end proof holds for the reloaded program too.
    const auto whole = validate::validate_transform(prog, reparsed);
    EXPECT_TRUE(whole.equivalent) << file << "\n" << whole.to_string();
  }
}

TEST(Opt, DedupContribsShrinksPgnnGolden) {
  // PGNN's walk_len == 1 hop phases carry expected_contribs tables the
  // runtime never reads (direct CSR degrees); dedup-contribs must drop
  // them — the in-tree benchmark where an optimization pass visibly
  // shrinks a shipped program.
  const CompiledProgram prog = ir::load_file(golden_path("pgnn_dblp_1.gnna"));
  const auto res = opt::optimize_program(prog);
  ASSERT_TRUE(res.validated) << res.failure;
  EXPECT_TRUE(res.changed());
  EXPECT_NE(ir::content_hash(res.program), ir::content_hash(prog));
  std::size_t before = 0;
  std::size_t after = 0;
  for (const auto& ph : prog.phases) before += ph.expected_contribs.size();
  for (const auto& ph : res.program.phases) {
    after += ph.expected_contribs.size();
  }
  EXPECT_LT(after, before);
}

// ---- mutation suite: one seeded miscompile per pass, all rejected ----

TEST(OptMutation, FusionWithWrongReduceOpIsRejected) {
  const auto ds = tiny_dataset();
  const CompiledProgram naive = unfused_gcn(ds);
  CompiledProgram bad = raw_pass_output(naive, "fuse-phases", &ds);
  ASSERT_FALSE(bad.phases.empty());
  bad.phases[0].agg_op = bad.phases[0].agg_op == ReduceOp::kMax
                             ? ReduceOp::kSum
                             : ReduceOp::kMax;
  validate::ValidationOptions vo;
  vo.dataset = &ds;
  const auto v = validate::validate_transform(naive, bad, vo);
  EXPECT_FALSE(v.equivalent) << v.to_string();
}

TEST(OptMutation, FusionDroppingSelfLoopIsRejected) {
  const auto ds = tiny_dataset();
  const CompiledProgram naive = unfused_gcn(ds);
  CompiledProgram bad = raw_pass_output(naive, "fuse-phases", &ds);
  ASSERT_FALSE(bad.phases.empty());
  bad.phases[0].include_self = !bad.phases[0].include_self;
  const auto v = validate::validate_transform(naive, bad);
  EXPECT_FALSE(v.equivalent) << v.to_string();
}

TEST(OptMutation, FusionOfSharedIntermediateIsRejected) {
  // Make the intermediate buffer non-private: a later phase also reads
  // it. A fusion that still swallows it changes observable behavior, so
  // phase-align must refuse to recognize the pair.
  const auto ds = tiny_dataset();
  CompiledProgram naive = unfused_gcn(ds);
  ASSERT_GE(naive.phases.size(), 3U);
  // Legitimate fused output of the private case...
  CompiledProgram bad = raw_pass_output(naive, "fuse-phases", &ds);
  // ...validated against an original where layer 2's aggregate also
  // gathers from layer 1's intermediate (a third reader).
  naive.phases[2].gather = naive.phases[0].output;
  const auto v = validate::validate_transform(naive, bad);
  EXPECT_FALSE(v.equivalent) << v.to_string();
}

TEST(OptMutation, DedupDroppingLiveWalkTableIsRejected) {
  // PGNN's walk_len > 1 phases DO read their tables; clearing one is a
  // real miscompile the contribs obligation must catch.
  const CompiledProgram prog = ir::load_file(golden_path("pgnn_dblp_1.gnna"));
  CompiledProgram bad = raw_pass_output(prog, "dedup-contribs");
  bool seeded = false;
  for (auto& ph : bad.phases) {
    if (ph.walk_len > 1 && !ph.expected_contribs.empty()) {
      ph.expected_contribs.clear();
      seeded = true;
      break;
    }
  }
  ASSERT_TRUE(seeded);
  const auto v = validate::validate_transform(prog, bad);
  EXPECT_FALSE(v.equivalent) << v.to_string();
}

TEST(OptMutation, DedupCorruptingLiveWalkTableEntryIsRejected) {
  const CompiledProgram prog = ir::load_file(golden_path("pgnn_dblp_1.gnna"));
  CompiledProgram bad = raw_pass_output(prog, "dedup-contribs");
  bool seeded = false;
  for (auto& ph : bad.phases) {
    if (ph.walk_len > 1 && !ph.expected_contribs.empty()) {
      ph.expected_contribs[0] += 1;
      seeded = true;
      break;
    }
  }
  ASSERT_TRUE(seeded);
  const auto v = validate::validate_transform(prog, bad);
  EXPECT_FALSE(v.equivalent) << v.to_string();
}

TEST(OptMutation, DeadRegionsShrinkingLiveRegionIsRejected) {
  // A dead-regions pass that miscounts liveness and reclaims half of a
  // live buffer: region sizes no longer match across the map, so the
  // def-use obligation fails.
  const auto ds = tiny_dataset();
  const CompiledProgram naive = unfused_gcn(ds);
  const CompiledProgram fused = raw_pass_output(naive, "fuse-phases", &ds);
  const RegionId victim = fused.phases[0].output.region;
  const CompiledProgram bad =
      rebuild_memmap(fused, [victim](RegionId r, Region& reg) {
        if (r == victim) reg.bytes /= 2;
      });
  const auto v = validate::validate_transform(naive, bad);
  EXPECT_FALSE(v.equivalent) << v.to_string();
}

TEST(OptMutation, PackRegionsOverlappingLayoutIsRejected) {
  // A pack-regions pass that slides a region onto its neighbor's extent:
  // the abstract interpretation of extents (GV007 overlap) must flag the
  // optimized program with an error the original never had.
  const CompiledProgram prog = ir::load_file(golden_path("gcn_cora.gnna"));
  ASSERT_GE(prog.memmap.num_regions(), 2U);
  const Addr base0 = prog.memmap.region(0).base;
  const CompiledProgram bad =
      rebuild_memmap(prog, [base0](RegionId r, Region& reg) {
        if (r == 1) reg.base = base0;  // collide with region 0
      });
  const auto v = validate::validate_transform(prog, bad);
  EXPECT_FALSE(v.equivalent) << v.to_string();
}

TEST(OptMutation, OptimizerRefusesItsOwnSeededMiscompile) {
  // End to end through optimize_program: a pass whose output fails
  // validation must be discarded — the returned program is the last
  // proven one and `validated` is false. Simulate by validating a
  // dropped-phase "rewrite" directly (phase-align: dropped original).
  const CompiledProgram prog = ir::load_file(golden_path("gcn_cora.gnna"));
  CompiledProgram bad = prog;
  bad.phases.pop_back();
  const auto v = validate::validate_transform(prog, bad);
  EXPECT_FALSE(v.equivalent) << v.to_string();
}

// ---- session routing + stats provenance ----

TEST(Opt, SessionResolveRoutesOptimizedProgramsWithProvenance) {
  sim::Session session;
  sim::RunRequest base;
  base.benchmark = gnn::Benchmark::kPgnnDblp;
  const auto plain = session.resolve(base);
  ASSERT_NE(plain.program, nullptr);
  EXPECT_EQ(plain.optimized_from, 0U);

  sim::RunRequest opt = base;
  opt.optimize = true;
  const auto optimized = session.resolve(opt);
  ASSERT_NE(optimized.program, nullptr);
  // dedup-contribs changes PGNN, so the optimized program is a distinct
  // cache entry with provenance back to the base hash.
  EXPECT_NE(optimized.hash, plain.hash);
  EXPECT_EQ(optimized.optimized_from, plain.hash);
  EXPECT_NE(optimized.source.find("+opt"), std::string::npos)
      << optimized.source;

  // Identity case: the golden GCN is already optimal, so the optimizer
  // returns the cached program itself (same hash, no new cache entry).
  sim::RunRequest gcn;
  gcn.benchmark = gnn::Benchmark::kGcnCora;
  const auto gcn_plain = session.resolve(gcn);
  gcn.optimize = true;
  const auto gcn_opt = session.resolve(gcn);
  EXPECT_EQ(gcn_opt.hash, gcn_plain.hash);
  EXPECT_EQ(gcn_opt.program.get(), gcn_plain.program.get());
}

TEST(Opt, StatsJsonV7EmitsOptimizedFromOnlyForOptimizedRuns) {
  // A tiny ad-hoc PGNN: walk_len == 1 tables get deduped, so the run
  // executes an optimizer-rewritten program and the stats JSON must carry
  // the v7 provenance field; the plain run must not.
  sim::Session session;
  auto ds = std::make_shared<graph::Dataset>(tiny_dataset(1));
  sim::RunRequest req;
  req.model = gnn::make_pgnn(1, 3, 4, 3, 2);
  req.dataset = ds;
  req.verify = false;

  const auto plain = session.run(req);
  req.optimize = true;
  const auto optimized = session.run(req);
  EXPECT_EQ(plain.optimized_from, 0U);
  EXPECT_NE(optimized.optimized_from, 0U);
  EXPECT_EQ(optimized.optimized_from, plain.program_hash);

  std::ostringstream plain_os;
  std::ostringstream opt_os;
  sim::write_run_stats_json(plain_os, plain);
  sim::write_run_stats_json(opt_os, optimized);
  const auto pv = sim::json::Value::parse(plain_os.str());
  const auto ov = sim::json::Value::parse(opt_os.str());
  EXPECT_EQ(pv.num_or("schema_version", 0), sim::kStatsJsonSchemaVersion);
  EXPECT_EQ(pv.find("optimized_from"), nullptr);
  const sim::json::Value* from = ov.find("optimized_from");
  ASSERT_NE(from, nullptr);
  char expect[32];
  std::snprintf(expect, sizeof expect, "%016llx",
                static_cast<unsigned long long>(plain.program_hash));
  EXPECT_EQ(from->as_string(), expect);
}

}  // namespace
}  // namespace gnna::accel
