#include "accel/addrmap.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gnna::accel {
namespace {

TEST(AddressMap, RoundRobinByPage) {
  const AddressMap map({10, 11, 12}, 4096);
  EXPECT_EQ(map.endpoint_for(0), 10U);
  EXPECT_EQ(map.endpoint_for(4095), 10U);
  EXPECT_EQ(map.endpoint_for(4096), 11U);
  EXPECT_EQ(map.endpoint_for(8192), 12U);
  EXPECT_EQ(map.endpoint_for(3 * 4096), 10U);
}

struct Seg {
  EndpointId ep;
  Addr addr;
  std::uint64_t bytes;
};

std::vector<Seg> segments(const AddressMap& map, Addr addr,
                          std::uint64_t bytes) {
  std::vector<Seg> out;
  map.for_each_segment(addr, bytes, [&](EndpointId e, Addr a,
                                        std::uint64_t b) {
    out.push_back({e, a, b});
  });
  return out;
}

TEST(AddressMap, SingleSegmentWithinPage) {
  const AddressMap map({0, 1}, 4096);
  const auto segs = segments(map, 100, 2000);
  ASSERT_EQ(segs.size(), 1U);
  EXPECT_EQ(segs[0].ep, 0U);
  EXPECT_EQ(segs[0].addr, 100U);
  EXPECT_EQ(segs[0].bytes, 2000U);
}

TEST(AddressMap, SplitAtPageBoundary) {
  const AddressMap map({0, 1}, 4096);
  const auto segs = segments(map, 4000, 200);
  ASSERT_EQ(segs.size(), 2U);
  EXPECT_EQ(segs[0].ep, 0U);
  EXPECT_EQ(segs[0].bytes, 96U);
  EXPECT_EQ(segs[1].ep, 1U);
  EXPECT_EQ(segs[1].addr, 4096U);
  EXPECT_EQ(segs[1].bytes, 104U);
}

TEST(AddressMap, SegmentsCoverExactRangeOnce) {
  const AddressMap map({0, 1, 2}, 1024);
  const auto segs = segments(map, 500, 5000);
  std::uint64_t total = 0;
  Addr expect_next = 500;
  for (const auto& s : segs) {
    EXPECT_EQ(s.addr, expect_next);
    expect_next = s.addr + s.bytes;
    total += s.bytes;
  }
  EXPECT_EQ(total, 5000U);
}

TEST(AddressMap, ZeroBytesProducesNoSegments) {
  const AddressMap map({0}, 4096);
  EXPECT_TRUE(segments(map, 123, 0).empty());
}

TEST(AddressMap, SingleControllerNeverSplitsOwnership) {
  const AddressMap map({9}, 4096);
  for (const auto& s : segments(map, 0, 100000)) EXPECT_EQ(s.ep, 9U);
}

}  // namespace
}  // namespace gnna::accel
