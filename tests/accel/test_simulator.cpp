#include "accel/simulator.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "accel/compiler.hpp"
#include "common/rng.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"

namespace gnna::accel {
namespace {

graph::Dataset small_dataset(NodeId n = 40, EdgeId e = 100,
                             std::uint32_t vf = 8, std::uint32_t ef = 0,
                             std::uint32_t num_graphs = 1) {
  Rng rng(n + e);
  graph::Dataset ds;
  ds.spec = {"test", num_graphs, static_cast<NodeId>(n * num_graphs),
             static_cast<EdgeId>(e * num_graphs), vf, ef, 3};
  for (std::uint32_t i = 0; i < num_graphs; ++i) {
    ds.graphs.push_back(graph::generate_random_graph(rng, n, e));
    ds.undirected.push_back(ds.graphs.back().symmetrized());
    ds.node_features.emplace_back(std::size_t{n} * vf, 0.5F);
    ds.edge_features.emplace_back(std::size_t{e} * ef, 0.5F);
  }
  return ds;
}

/// A 2-tile configuration small enough for unit tests.
AcceleratorConfig two_tile_config() {
  AcceleratorConfig c;
  c.name = "test-2tile";
  c.mesh_width = 3;
  c.mesh_height = 1;
  c.tile_coords = {{0, 0}, {1, 0}};
  c.mem_coords = {{2, 0}};
  return c;
}

RunStats run_model(const gnn::ModelSpec& model, const graph::Dataset& ds,
                   const AcceleratorConfig& cfg) {
  const auto prog = ProgramCompiler{}.compile(model, ds);
  AcceleratorSim sim(cfg);
  return sim.run(prog, ds);
}

TEST(Simulator, GcnCompletesAllVertices) {
  const auto ds = small_dataset();
  const RunStats rs =
      run_model(gnn::make_gcn(8, 3, 4), ds, AcceleratorConfig::cpu_iso_bw());
  // Two phases, every vertex retired in each.
  EXPECT_EQ(rs.tasks_completed, 80U);
  EXPECT_GT(rs.cycles, 0U);
  EXPECT_GT(rs.mem_bytes_served, 0U);
  ASSERT_EQ(rs.phases.size(), 2U);
  EXPECT_EQ(rs.phases[0].tasks, 40U);
}

TEST(Simulator, GatCompletes) {
  const auto ds = small_dataset();
  const RunStats rs = run_model(gnn::make_gat(8, 3, 2, 4), ds,
                                AcceleratorConfig::cpu_iso_bw());
  EXPECT_EQ(rs.tasks_completed, 4U * 40U);  // 4 phases x 40 vertices
}

TEST(Simulator, MpnnCompletesAndSwitchesQueues) {
  const auto ds = small_dataset(12, 14, 5, 3, /*num_graphs=*/4);
  const RunStats rs = run_model(gnn::make_mpnn(5, 3, 4, 8, 2), ds,
                                AcceleratorConfig::cpu_iso_bw());
  // embed(48) + 2 x message(48) + readout(4 graphs).
  EXPECT_EQ(rs.tasks_completed, 48U + 96U + 4U);
  // The GRU model lives on virtual queue 1: switches must have happened.
  EXPECT_GT(rs.dnq_queue_switches, 0U);
}

TEST(Simulator, PgnnCompletesWalks) {
  const auto ds = small_dataset(30, 60, 1);
  const RunStats rs = run_model(gnn::make_pgnn(1, 3, 4, 2, 1), ds,
                                AcceleratorConfig::cpu_iso_bw());
  // 2 hop phases + 1 projection, 30 vertices each.
  EXPECT_EQ(rs.tasks_completed, 90U);
}

TEST(Simulator, MemoryTrafficCoversFeatureBytes) {
  const auto ds = small_dataset(40, 100, 8);
  const RunStats rs =
      run_model(gnn::make_gcn(8, 3, 4), ds, AcceleratorConfig::cpu_iso_bw());
  // Layer 1 alone gathers >= (edges+selfloops) * 8 words.
  const std::uint64_t sym_edges = ds.undirected[0].num_edges();
  const std::uint64_t min_gather = (sym_edges + 40) * 8 * 4;
  EXPECT_GE(rs.mem_bytes_requested, min_gather);
  // Served >= requested (64B granularity padding).
  EXPECT_GE(rs.mem_bytes_served, rs.mem_bytes_requested);
}

TEST(Simulator, UtilizationsAreFractions) {
  const auto ds = small_dataset();
  const RunStats rs =
      run_model(gnn::make_gcn(8, 3, 4), ds, AcceleratorConfig::cpu_iso_bw());
  for (const double u : {rs.dna_utilization, rs.gpe_utilization,
                         rs.agg_utilization, rs.bandwidth_utilization}) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  EXPECT_GT(rs.gpe_utilization, 0.0);
  EXPECT_GT(rs.dna_utilization, 0.0);
}

TEST(Simulator, HalfClockNeverFaster) {
  const auto ds = small_dataset();
  const gnn::ModelSpec model = gnn::make_gcn(8, 3, 4);
  const RunStats fast =
      run_model(model, ds, AcceleratorConfig::cpu_iso_bw());
  const RunStats slow = run_model(
      model, ds, AcceleratorConfig::cpu_iso_bw().with_core_clock(1.2));
  EXPECT_GE(slow.cycles, fast.cycles);
  EXPECT_DOUBLE_EQ(slow.core_clock_ghz, 1.2);
}

TEST(Simulator, ComputeBoundWorkScalesWithClock) {
  // MPNN is DNA-bound: halving the core clock should stretch runtime
  // significantly (close to 2x).
  const auto ds = small_dataset(12, 14, 5, 3, 4);
  const gnn::ModelSpec model = gnn::make_mpnn(5, 3, 4, 8, 1);
  const RunStats fast = run_model(model, ds, AcceleratorConfig::cpu_iso_bw());
  const RunStats slow = run_model(
      model, ds, AcceleratorConfig::cpu_iso_bw().with_core_clock(1.2));
  EXPECT_GT(static_cast<double>(slow.cycles),
            1.5 * static_cast<double>(fast.cycles));
}

TEST(Simulator, TwoTilesNoSlowerThanOne) {
  const auto ds = small_dataset(60, 200, 16);
  const gnn::ModelSpec model = gnn::make_gat(16, 3, 2, 8);
  const RunStats one =
      run_model(model, ds, AcceleratorConfig::cpu_iso_bw());
  const RunStats two = run_model(model, ds, two_tile_config());
  EXPECT_LE(two.cycles, one.cycles);
}

TEST(Simulator, RunTwiceThrows) {
  const auto ds = small_dataset();
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(8, 3, 4), ds);
  AcceleratorSim sim(AcceleratorConfig::cpu_iso_bw());
  (void)sim.run(prog, ds);
  EXPECT_THROW((void)sim.run(prog, ds), std::logic_error);
}

TEST(Simulator, DeterministicCycleCounts) {
  const auto ds = small_dataset();
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(8, 3, 4), ds);
  AcceleratorSim a(AcceleratorConfig::cpu_iso_bw());
  AcceleratorSim b(AcceleratorConfig::cpu_iso_bw());
  EXPECT_EQ(a.run(prog, ds).cycles, b.run(prog, ds).cycles);
}

TEST(Simulator, PhaseCyclesSumToTotal) {
  const auto ds = small_dataset();
  const RunStats rs =
      run_model(gnn::make_gcn(8, 3, 4), ds, AcceleratorConfig::cpu_iso_bw());
  Cycle sum = 0;
  for (const auto& ph : rs.phases) sum += ph.cycles;
  EXPECT_EQ(sum, rs.cycles);
}

TEST(Simulator, IsolatedVerticesDoNotHang) {
  // A graph with isolated vertices exercises the zero-degree paths.
  Rng rng(9);
  graph::Dataset ds;
  ds.spec = {"sparse", 1, 50, 10, 4, 0, 2};
  ds.graphs.push_back(graph::generate_random_graph(rng, 50, 10));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(200, 0.0F);
  ds.edge_features.emplace_back();
  const RunStats rs = run_model(gnn::make_gcn(4, 2, 2), ds,
                                AcceleratorConfig::cpu_iso_bw());
  EXPECT_EQ(rs.tasks_completed, 100U);
}

TEST(Simulator, WatchdogReportsDiagnostics) {
  // A watchdog tight enough to fire mid-phase must produce a diagnostics
  // dump naming the stalled units and their queue/counter state, both in
  // the exception message and in the requested report file.
  const auto ds = small_dataset();
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(8, 3, 4), ds);
  AcceleratorSim sim(AcceleratorConfig::cpu_iso_bw());
  sim.set_watchdog_cycles(3);
  TraceOptions topts;
  topts.deadlock_report_path = ::testing::TempDir() + "watchdog_report.txt";
  sim.set_trace(topts);
  try {
    (void)sim.run(prog, ds);
    FAIL() << "expected the watchdog to fire";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock diagnostics"), std::string::npos);
    EXPECT_NE(msg.find("tile 0"), std::string::npos);
    EXPECT_NE(msg.find("gpe:"), std::string::npos);
    EXPECT_NE(msg.find("dnq:"), std::string::npos);
    EXPECT_NE(msg.find("mem "), std::string::npos);
    EXPECT_NE(msg.find("noc:"), std::string::npos);
    // AGG sections always carry the aggregate remaining-element counter.
    EXPECT_NE(msg.find("remaining_words_total="), std::string::npos);
    std::ifstream report(topts.deadlock_report_path);
    ASSERT_TRUE(report.good());
    std::stringstream contents;
    contents << report.rdbuf();
    EXPECT_NE(contents.str().find("deadlock diagnostics"), std::string::npos);
  }
}

TEST(Simulator, SamplerEmitsCsvRows) {
  const auto ds = small_dataset();
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(8, 3, 4), ds);
  AcceleratorSim sim(AcceleratorConfig::cpu_iso_bw());
  std::ostringstream csv;
  TraceOptions topts;
  topts.sample_every = 500;
  topts.sample_out = &csv;
  sim.set_trace(topts);
  const RunStats rs = sim.run(prog, ds);
  ASSERT_GT(rs.cycles, 1000U);  // enough for at least two samples
  std::istringstream in(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("cycle,phase,gpe_busy", 0), 0U);
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_GE(rows, 2U);
}

TEST(Simulator, TracingDoesNotChangeTiming) {
  // The observability layer must be timing-neutral: the same program with
  // a live event sink and sampler attached reports identical cycle counts.
  const auto ds = small_dataset();
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(8, 3, 4), ds);
  AcceleratorSim plain(AcceleratorConfig::cpu_iso_bw());
  const Cycle baseline = plain.run(prog, ds).cycles;

  std::ostringstream json;
  std::ostringstream csv;
  trace::ChromeTraceSink sink(json);
  AcceleratorSim traced(AcceleratorConfig::cpu_iso_bw());
  TraceOptions topts;
  topts.sink = &sink;
  topts.sample_every = 1000;
  topts.sample_out = &csv;
  traced.set_trace(topts);
  EXPECT_EQ(traced.run(prog, ds).cycles, baseline);
  EXPECT_GT(sink.events_written(), 0U);
}

TEST(Simulator, TableVIConfigurations) {
  const auto cpu = AcceleratorConfig::cpu_iso_bw();
  EXPECT_EQ(cpu.num_tiles(), 1U);
  EXPECT_EQ(cpu.num_mem_nodes(), 1U);
  EXPECT_EQ(cpu.total_alus(), 198U);
  EXPECT_DOUBLE_EQ(cpu.total_mem_bandwidth_gbps(), 68.0);

  const auto gpu = AcceleratorConfig::gpu_iso_bw();
  EXPECT_EQ(gpu.num_tiles(), 8U);
  EXPECT_EQ(gpu.num_mem_nodes(), 8U);
  EXPECT_EQ(gpu.total_alus(), 1584U);
  EXPECT_DOUBLE_EQ(gpu.total_mem_bandwidth_gbps(), 544.0);

  const auto flops = AcceleratorConfig::gpu_iso_flops();
  EXPECT_EQ(flops.num_tiles(), 16U);
  EXPECT_EQ(flops.num_mem_nodes(), 8U);
  EXPECT_EQ(flops.total_alus(), 3168U);
}

TEST(Simulator, GpuIsoBwRunsMultiTile) {
  const auto ds = small_dataset(64, 200, 8);
  const RunStats rs = run_model(gnn::make_gcn(8, 3, 4), ds,
                                AcceleratorConfig::gpu_iso_bw());
  EXPECT_EQ(rs.tasks_completed, 128U);
}

}  // namespace
}  // namespace gnna::accel
