// trace::Attribution — unit tests of the sink's charging rules plus the
// end-to-end conservation invariant: per-tile busy sums the same kGpe
// completes the profiler folds into its per-phase busy totals, so the two
// must agree exactly, and attaching the sink must not move a single cycle.
#include "trace/attribution.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "accel/simulator.hpp"
#include "common/rng.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"
#include "sim/session.hpp"
#include "trace/profiler.hpp"

namespace gnna {
namespace {

using trace::Attribution;
using trace::AttributionReport;
using trace::Category;

/// Two tiles, three endpoints each, one memory endpoint at the end.
Attribution make_sink(std::size_t top_k = 8) {
  return Attribution(
      2, {0, 0, 0, 1, 1, 1, Attribution::kNoTile}, top_k);
}

TEST(Attribution, GpeSpansChargeTileAndTaskChargesVertex) {
  Attribution a = make_sink();
  a.complete(Category::kGpe, 0, "task", 0.0, 10.0, 7, 0);
  a.complete(Category::kGpe, 0, "task/gather", 2.0, 4.0, 7, 0);
  a.complete(Category::kGpe, 1, "task", 0.0, 6.0, 9, 0);
  const AttributionReport r = a.report();
  ASSERT_EQ(r.tiles.size(), 2U);
  // Tile busy double-counts nested sub-spans by design (same event set as
  // the profiler's busy[gpe]); per-vertex busy counts "task" spans only.
  EXPECT_DOUBLE_EQ(r.tiles[0].busy, 14.0);
  EXPECT_DOUBLE_EQ(r.tiles[1].busy, 6.0);
  EXPECT_EQ(r.tiles[0].tasks, 1U);
  EXPECT_DOUBLE_EQ(r.total_busy, 20.0);
  ASSERT_EQ(r.vertices.size(), 2U);
  EXPECT_EQ(r.vertices[0].vertex, 7U);  // sorted by busy desc
  EXPECT_DOUBLE_EQ(r.vertices[0].busy, 10.0);
  EXPECT_FALSE(r.vertices[0].approx);
  EXPECT_EQ(r.vertices[1].vertex, 9U);
}

TEST(Attribution, NonGpeCompletesAreIgnored) {
  Attribution a = make_sink();
  a.complete(Category::kMem, 0, "read", 0.0, 50.0, 3, 0);
  const AttributionReport r = a.report();
  EXPECT_DOUBLE_EQ(r.total_busy, 0.0);
  EXPECT_TRUE(r.vertices.empty());
}

TEST(Attribution, PacketsChargeSourceTileThenDestination) {
  Attribution a = make_sink();
  // Tile 0 endpoint -> memory endpoint: charged at the source tile.
  a.packet(0, 6, 4, 2, 3, 128);
  // Memory endpoint -> tile 1 endpoint: charged at the destination tile.
  a.packet(6, 3, 4, 5, 2, 320);
  const AttributionReport r = a.report();
  EXPECT_EQ(r.tiles[0].flits, 2U);
  EXPECT_EQ(r.tiles[0].flit_hops, 6U);
  EXPECT_EQ(r.tiles[0].bytes, 128U);
  EXPECT_EQ(r.tiles[1].flits, 5U);
  EXPECT_EQ(r.tiles[1].flit_hops, 10U);
  ASSERT_EQ(r.vertices.size(), 1U);
  EXPECT_EQ(r.vertices[0].vertex, 4U);
  EXPECT_EQ(r.vertices[0].flits, 7U);
  EXPECT_EQ(r.vertices[0].bytes, 448U);
}

TEST(Attribution, UnownedPacketsCountedSeparately) {
  Attribution a = make_sink();
  a.packet(0, 6, trace::kUnowned, 3, 1, 192);
  const AttributionReport r = a.report();
  EXPECT_EQ(r.unattributed_flits, 3U);
  EXPECT_TRUE(r.vertices.empty());
  // The tile still saw the traffic even though no vertex owns it.
  EXPECT_EQ(r.tiles[0].flits, 3U);
}

TEST(Attribution, ChargeFeedsAggBusy) {
  Attribution a = make_sink();
  a.charge(Category::kAgg, 1, 5, 12.0);
  a.charge(Category::kAgg, 1, trace::kUnowned, 3.0);
  const AttributionReport r = a.report();
  EXPECT_DOUBLE_EQ(r.tiles[1].agg_busy, 15.0);
  ASSERT_EQ(r.vertices.size(), 1U);
  EXPECT_DOUBLE_EQ(r.vertices[0].agg_busy, 12.0);
}

TEST(Attribution, SpanComesFromPhaseMarkers) {
  Attribution a = make_sink();
  a.phase_begin("gc1", 10.0);
  a.phase_end("gc1", 110.0);
  a.phase_begin("gc2", 110.0);
  a.phase_end("gc2", 160.0);
  a.complete(Category::kGpe, 0, "task", 20.0, 30.0, 1, 0);
  const AttributionReport r = a.report();
  EXPECT_DOUBLE_EQ(r.span, 150.0);
  EXPECT_DOUBLE_EQ(r.tiles[0].idle, 120.0);  // span - busy
  EXPECT_DOUBLE_EQ(r.tiles[1].idle, 150.0);
}

TEST(Attribution, HotspotTableStaysBoundedAndKeepsHeavyHitters) {
  Attribution a = make_sink(/*top_k=*/4);
  // 64 light vertices, then one heavy one that must displace a light one.
  for (std::uint32_t v = 0; v < 64; ++v) {
    a.complete(Category::kGpe, 0, "task", 0.0, 1.0, v, 0);
  }
  for (int i = 0; i < 16; ++i) {
    a.complete(Category::kGpe, 1, "task", 0.0, 10.0, 1000, 0);
  }
  const AttributionReport r = a.report();
  EXPECT_LE(r.vertices.size(), 4U);
  ASSERT_FALSE(r.vertices.empty());
  EXPECT_EQ(r.vertices[0].vertex, 1000U);
  // Admitted after evictions: its counters are sketch-bounded estimates.
  EXPECT_TRUE(r.vertices[0].approx);
  EXPECT_GE(r.vertices[0].busy, 160.0);
}

TEST(AttributionReport, ImbalanceMetrics) {
  AttributionReport r;
  r.tiles.resize(4);
  r.tiles[0].busy = 40.0;
  r.tiles[1].busy = 20.0;
  r.tiles[2].busy = 20.0;
  r.tiles[3].busy = 20.0;
  EXPECT_DOUBLE_EQ(r.busy_max_mean(), 1.6);
  // Uniform flits: perfectly equal distribution.
  for (auto& t : r.tiles) t.flits = 10;
  EXPECT_DOUBLE_EQ(r.flit_gini(), 0.0);
  // One tile carries everything: Gini -> (n-1)/n... for n=4 that's 0.75.
  r.tiles[0].flits = 40;
  for (std::size_t i = 1; i < 4; ++i) r.tiles[i].flits = 0;
  EXPECT_DOUBLE_EQ(r.flit_gini(), 0.75);
}

/// Small skewed workload for the end-to-end checks.
sim::Session::Resolved compile_small(sim::Session& session) {
  Rng rng(29);
  auto ds = std::make_shared<graph::Dataset>();
  ds->spec = {"attr_test", 1, 256, 1024, 16, 0, 4};
  ds->graphs.push_back(graph::generate_citation_graph(rng, 256, 1024, 1.2));
  ds->undirected.push_back(ds->graphs[0].symmetrized());
  std::vector<float> nf(256 * 16);
  for (auto& x : nf) x = rng.next_float(0.0F, 1.0F);
  ds->node_features.push_back(std::move(nf));
  ds->edge_features.emplace_back();
  return session.compile(gnn::make_gcn(16, 4), std::move(ds));
}

TEST(AttributionSim, TileBusyConservesProfilerGpeBusy) {
  sim::Session session;
  const sim::Session::Resolved r = compile_small(session);
  accel::AcceleratorSim sim(accel::AcceleratorConfig::gpu_iso_bw(),
                            graph::PartitionPolicy::kRoundRobin);
  accel::TraceOptions opts;
  opts.profile = true;
  opts.attribution = true;
  opts.attribution_top_k = 256;
  sim.set_trace(opts);
  const accel::RunStats rs = sim.run(*r.program, *r.dataset);

  ASSERT_TRUE(rs.profile);
  ASSERT_TRUE(rs.attribution);
  const double profiler_gpe = rs.profile->busy_total(trace::Category::kGpe);
  double tile_busy = 0.0;
  for (const auto& t : rs.attribution->tiles) tile_busy += t.busy;
  // Same event stream, same double-counting of nested spans — exact match.
  EXPECT_DOUBLE_EQ(tile_busy, profiler_gpe);
  EXPECT_DOUBLE_EQ(rs.attribution->total_busy, profiler_gpe);
  // Every vertex fits in the table: nothing is approximate, and per-vertex
  // task counts add up to the per-tile ones.
  std::uint64_t vertex_tasks = 0;
  for (const auto& v : rs.attribution->vertices) {
    EXPECT_FALSE(v.approx);
    vertex_tasks += v.tasks;
  }
  std::uint64_t tile_tasks = 0;
  for (const auto& t : rs.attribution->tiles) tile_tasks += t.tasks;
  EXPECT_EQ(vertex_tasks, tile_tasks);
}

TEST(AttributionSim, SinkIsPureObservation) {
  sim::Session session;
  const sim::Session::Resolved r = compile_small(session);
  accel::AcceleratorSim plain(accel::AcceleratorConfig::gpu_iso_bw(),
                              graph::PartitionPolicy::kRoundRobin);
  const accel::RunStats base = plain.run(*r.program, *r.dataset);

  accel::AcceleratorSim traced(accel::AcceleratorConfig::gpu_iso_bw(),
                               graph::PartitionPolicy::kRoundRobin);
  accel::TraceOptions opts;
  opts.attribution = true;
  traced.set_trace(opts);
  const accel::RunStats attr = traced.run(*r.program, *r.dataset);

  EXPECT_EQ(base.cycles, attr.cycles);
  EXPECT_FALSE(base.attribution);
  ASSERT_TRUE(attr.attribution);
}

TEST(AttributionSim, WorkOwnersOverrideMovesWork) {
  sim::Session session;
  const sim::Session::Resolved r = compile_small(session);
  accel::AcceleratorSim sim(accel::AcceleratorConfig::gpu_iso_bw(),
                            graph::PartitionPolicy::kRoundRobin);
  accel::TraceOptions opts;
  opts.attribution = true;
  sim.set_trace(opts);
  // Pile every vertex onto tile 3: the attribution must show tile 3 owning
  // all the task retirements.
  sim.set_work_owners(std::vector<TileId>(256, TileId{3}));
  const accel::RunStats rs = sim.run(*r.program, *r.dataset);
  ASSERT_TRUE(rs.attribution);
  for (std::size_t t = 0; t < rs.attribution->tiles.size(); ++t) {
    if (t == 3) {
      EXPECT_GT(rs.attribution->tiles[t].tasks, 0U);
    } else {
      EXPECT_EQ(rs.attribution->tiles[t].tasks, 0U);
    }
  }
}

}  // namespace
}  // namespace gnna
