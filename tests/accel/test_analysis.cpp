// Static analytic performance model (accel::analysis): the roofline bound
// must stay a true lower bound on every shipped benchmark's measured cycle
// count (and a tight one on GCN/Cora), every GV2xx perf lint must fire on
// a crafted degenerate configuration while staying clean on the shipped
// benchmarks, and every suggest_fixes() suggestion — applied and re-linted
// — must clear the diagnostic it targets.
#include "accel/analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <string>

#include "accel/compiler.hpp"
#include "accel/config.hpp"
#include "accel/verify.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"
#include "graph/generator.hpp"
#include "graph/graph.hpp"
#include "sim/session.hpp"

namespace gnna::accel {
namespace {

graph::Dataset tiny_dataset(std::uint32_t vf = 6, std::uint32_t ef = 0) {
  Rng rng(3);
  graph::Dataset ds;
  ds.spec = {"tiny", 1, 20, 40, vf, ef, 3};
  ds.graphs.push_back(graph::generate_random_graph(rng, 20, 40));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(std::size_t{20} * vf, 0.5F);
  ds.edge_features.emplace_back(std::size_t{40} * ef, 0.5F);
  return ds;
}

/// A 40-vertex star: vertex 0 touches every other vertex, so any static
/// partition concentrates its load on one tile.
graph::Dataset star_dataset(std::uint32_t vf = 6, std::uint32_t ef = 0) {
  graph::Dataset ds;
  graph::GraphBuilder gb(40);
  for (NodeId v = 1; v < 40; ++v) gb.add_undirected_edge(0, v);
  ds.graphs.push_back(std::move(gb).build());
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.spec = {"star", 1, 40, ds.graphs[0].num_edges(), vf, ef, 3};
  ds.node_features.emplace_back(std::size_t{40} * vf, 0.5F);
  ds.edge_features.emplace_back(
      std::size_t{ds.graphs[0].num_edges()} * ef, 0.5F);
  return ds;
}

struct Compiled {
  std::unique_ptr<graph::Dataset> ds;
  CompiledProgram prog;
};

Compiled compile(const gnn::ModelSpec& model, graph::Dataset ds) {
  Compiled c;
  c.ds = std::make_unique<graph::Dataset>(std::move(ds));
  c.prog = ProgramCompiler{}.compile(model, *c.ds);
  return c;
}

Compiled gcn() { return compile(gnn::make_gcn(6, 3, 4), tiny_dataset()); }

bool lints_fire(const std::vector<PerfDiagnostic>& lints, LintCode code) {
  return std::any_of(lints.begin(), lints.end(),
                     [code](const PerfDiagnostic& d) {
                       return d.code == code;
                     });
}

// ---- cycle lower bound vs. the measured golden counts ----

// Measured end-to-end cycle counts on cpu-iso-bw, seed 2020, default
// threads, round-robin partition (the test_golden pins). The static bound
// must sit at or below every one of them: the model counts a strict subset
// of the work the simulator serializes on the same resource.
struct GoldenBound {
  gnn::Benchmark benchmark;
  double measured_cycles;
};

constexpr GoldenBound kGoldens[] = {
    {gnn::Benchmark::kGcnCora, 2871294.0},
    {gnn::Benchmark::kGcnCiteseer, 6822970.0},
    {gnn::Benchmark::kGcnPubmed, 8687246.0},
    {gnn::Benchmark::kGatCora, 1775046.0},
    {gnn::Benchmark::kMpnnQm9, 220668937.0},
    {gnn::Benchmark::kPgnnDblp, 47914224.0},
};

TEST(Analysis, BoundIsBelowMeasuredOnAllGoldenBenchmarks) {
  sim::Session& session = sim::Session::global();
  for (const GoldenBound& g : kGoldens) {
    sim::RunRequest req;
    req.benchmark = g.benchmark;
    const auto resolved = session.resolve(req);
    AnalysisOptions opt;
    opt.dataset = resolved.dataset.get();
    const ProgramAnalysis pa =
        analyze_program(*resolved.program, req.config, opt);
    EXPECT_GT(pa.bound_cycles, 0.0) << gnn::benchmark_name(g.benchmark);
    EXPECT_LE(pa.bound_cycles, g.measured_cycles)
        << gnn::benchmark_name(g.benchmark)
        << ": static bound exceeds the measured cycle count "
           "(the model is no longer a lower bound)";
  }
}

TEST(Analysis, BoundIsTightOnGcnCora) {
  sim::Session& session = sim::Session::global();
  sim::RunRequest req;
  req.benchmark = gnn::Benchmark::kGcnCora;
  const auto resolved = session.resolve(req);
  AnalysisOptions opt;
  opt.dataset = resolved.dataset.get();
  const ProgramAnalysis pa =
      analyze_program(*resolved.program, req.config, opt);
  // With the DNA pipeline-drain term modeled, the bound explains more
  // than 98.5% of the measured cycles — pin the tightness so a model
  // regression (a dropped term) fails loudly instead of silently loosening
  // the bound.
  EXPECT_GE(pa.bound_cycles, 0.985 * 2871294.0);
}

// ---- model structure ----

TEST(Analysis, PhaseModelsCoverEveryPhaseAndSumToTheBound) {
  const auto c = gcn();
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const ProgramAnalysis pa =
      analyze_program(c.prog, AcceleratorConfig::cpu_iso_bw(), opt);
  ASSERT_EQ(pa.phases.size(), c.prog.phases.size());
  double sum = 0.0;
  for (const PhaseModel& ph : pa.phases) {
    EXPECT_FALSE(ph.name.empty());
    // The bound is the max of the three roofline axes...
    EXPECT_DOUBLE_EQ(
        ph.bound_cycles,
        std::max({ph.compute_cycles, ph.memory_cycles, ph.noc_cycles}));
    // ...and the compute axis the max of its per-unit terms.
    EXPECT_DOUBLE_EQ(
        ph.compute_cycles,
        std::max({ph.gpe_cycles, ph.dna_cycles, ph.agg_cycles}));
    EXPECT_TRUE(std::strcmp(ph.bottleneck, "gpe") == 0 ||
                std::strcmp(ph.bottleneck, "dna") == 0 ||
                std::strcmp(ph.bottleneck, "agg") == 0 ||
                std::strcmp(ph.bottleneck, "memory") == 0 ||
                std::strcmp(ph.bottleneck, "noc") == 0)
        << ph.bottleneck;
    EXPECT_GT(ph.read_bytes, 0U);
    sum += ph.bound_cycles;
  }
  EXPECT_DOUBLE_EQ(pa.bound_cycles, sum);
}

TEST(Analysis, OccupancyReflectsTheQueueSplit) {
  const auto c = gcn();
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const ProgramAnalysis pa = analyze_program(c.prog, cfg, opt);
  const PhaseModel& ph = pa.phases[0];
  EXPECT_TRUE(ph.dnq0.used);
  EXPECT_FALSE(ph.dnq1.used);  // GCN has no second DNA stage
  EXPECT_TRUE(ph.agg.used);
  EXPECT_GT(ph.dnq0.concurrency, 0U);
  EXPECT_GT(ph.agg.concurrency, 0U);
  // With no second DNA stage the virtual-queue split does not apply:
  // queue 0 gets the whole DNQ scratchpad.
  EXPECT_EQ(ph.dnq0.capacity_bytes,
            std::uint64_t{cfg.tile_params.dnq_data_bytes});

  // On a dna2 model (MPNN) both queues are live and the split divides
  // the scratchpad dnq_queue0_sixteenths/16 vs the rest.
  auto m = compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5));
  const ProgramAnalysis mpa = analyze_program(m.prog, cfg, [&] {
    AnalysisOptions o;
    o.dataset = m.ds.get();
    return o;
  }());
  bool saw_dna2 = false;
  for (const PhaseModel& mp : mpa.phases) {
    if (!mp.dnq1.used) continue;
    saw_dna2 = true;
    EXPECT_EQ(mp.dnq0.capacity_bytes,
              std::uint64_t{cfg.tile_params.dnq_data_bytes} *
                  cfg.tile_params.dnq_queue0_sixteenths / 16);
    EXPECT_EQ(mp.dnq1.capacity_bytes,
              std::uint64_t{cfg.tile_params.dnq_data_bytes} *
                  (16 - cfg.tile_params.dnq_queue0_sixteenths) / 16);
  }
  EXPECT_TRUE(saw_dna2);
}

TEST(Analysis, NeverThrowsOnDefectivePrograms) {
  auto c = gcn();
  c.prog.phases[0].output.region = 999;  // dangling buffer ref
  c.prog.phases[0].dna_shapes = {{0, 0, 0}};
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  cfg.tile_params.agg_alus = 0;
  cfg.tile_params.dnq_data_bytes = 0;
  EXPECT_NO_THROW({
    const ProgramAnalysis pa = analyze_program(c.prog, cfg);
    (void)pa;
  });
}

// ---- GV201: scratchpad reuse-distance thrash ----

TEST(Analysis, ReuseDistanceThrashFiresOnNarrowAggScratchpad) {
  const auto c = gcn();
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  // Three 24B entries fit: >= 2 (so GV101 stays quiet) but below the
  // healthy quarter of the 16-thread GPE pool (4).
  cfg.tile_params.agg_data_bytes = 80;
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const auto lints = perf_lints(c.prog, cfg, opt);
  EXPECT_TRUE(lints_fire(lints, LintCode::kReuseDistanceThrash));
}

TEST(Analysis, ReuseDistanceFixIsVerifiedAndClears) {
  const auto c = gcn();
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  cfg.tile_params.agg_data_bytes = 80;
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const auto fixes = suggest_fixes(c.prog, cfg, opt);
  ASSERT_EQ(fixes.size(), 1U);
  const FixSuggestion& fix = fixes[0];
  EXPECT_EQ(fix.code, LintCode::kReuseDistanceThrash);
  EXPECT_TRUE(fix.verified);
  EXPECT_NE(fix.manifest_snippet.find("tile_agg_data_bytes="),
            std::string::npos)
      << fix.manifest_snippet;
  // Apply the patched config ourselves and re-lint: the diagnostic is gone.
  AnalysisOptions fixed_opt;
  fixed_opt.dataset = c.ds.get();
  fixed_opt.partition = fix.partition;
  const auto relint = perf_lints(c.prog, fix.patched, fixed_opt);
  EXPECT_FALSE(lints_fire(relint, LintCode::kReuseDistanceThrash));
}

// ---- GV202: DNQ virtual-queue split starvation ----

TEST(Analysis, QueueSplitStarvationFiresOnSkewedSplit) {
  auto c = compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5));
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  // 15/16 of 1600B leaves queue 1 a single 64B entry; an 8/16 split would
  // give both queues >= 2.
  cfg.tile_params.dnq_data_bytes = 1600;
  cfg.tile_params.dnq_queue0_sixteenths = 15;
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const auto lints = perf_lints(c.prog, cfg, opt);
  EXPECT_TRUE(lints_fire(lints, LintCode::kQueueSplitStarved));
}

TEST(Analysis, QueueSplitFixRebalancesAndClears) {
  auto c = compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5));
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  cfg.tile_params.dnq_data_bytes = 1600;
  cfg.tile_params.dnq_queue0_sixteenths = 15;
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const auto fixes = suggest_fixes(c.prog, cfg, opt);
  const auto it = std::find_if(fixes.begin(), fixes.end(),
                               [](const FixSuggestion& f) {
                                 return f.code == LintCode::kQueueSplitStarved;
                               });
  ASSERT_NE(it, fixes.end());
  EXPECT_TRUE(it->verified);
  EXPECT_NE(it->manifest_snippet.find("tile_dnq_queue0_sixteenths="),
            std::string::npos)
      << it->manifest_snippet;
  EXPECT_NE(it->patched.tile_params.dnq_queue0_sixteenths, 15U);
  AnalysisOptions fixed_opt;
  fixed_opt.dataset = c.ds.get();
  fixed_opt.partition = it->partition;
  const auto relint = perf_lints(c.prog, it->patched, fixed_opt);
  EXPECT_FALSE(lints_fire(relint, LintCode::kQueueSplitStarved));
}

// ---- GV203: predicted bank camping ----

TEST(Analysis, BankCampingFiresWhenPageInterleaveSwallowsTheBankStride) {
  const auto c = gcn();
  // 4096B page interleave == 4096B bank interleave: every granule a
  // controller serves lands on the same bank index modulo the controller
  // count, so each of the 8 banks sees traffic from one controller only.
  AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  cfg.mem_params.scheduler = mem::MemScheduler::kFrFcfs;
  cfg.mem_params.banks = 8;
  cfg.mem_params.row_bytes = 4096;
  cfg.mem_params.bank_interleave_bytes = 4096;
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const auto lints = perf_lints(c.prog, cfg, opt);
  EXPECT_TRUE(lints_fire(lints, LintCode::kBankCamping));
  // Whole-program finding: not attributed to any phase.
  for (const PerfDiagnostic& d : lints) {
    if (d.code == LintCode::kBankCamping) EXPECT_EQ(d.phase, -1);
  }
}

TEST(Analysis, BankCampingFixEnablesXorPermutationAndClears) {
  const auto c = gcn();
  AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  cfg.mem_params.scheduler = mem::MemScheduler::kFrFcfs;
  cfg.mem_params.banks = 8;
  cfg.mem_params.row_bytes = 4096;
  cfg.mem_params.bank_interleave_bytes = 4096;
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const auto fixes = suggest_fixes(c.prog, cfg, opt);
  const auto it = std::find_if(fixes.begin(), fixes.end(),
                               [](const FixSuggestion& f) {
                                 return f.code == LintCode::kBankCamping;
                               });
  ASSERT_NE(it, fixes.end());
  EXPECT_TRUE(it->verified);
  EXPECT_TRUE(it->patched.mem_params.bank_xor);
  EXPECT_NE(it->manifest_snippet.find("mem_bank_xor=1"), std::string::npos)
      << it->manifest_snippet;
  const auto relint = perf_lints(c.prog, it->patched, opt);
  EXPECT_FALSE(lints_fire(relint, LintCode::kBankCamping));
}

TEST(Analysis, DefaultInterleaveDoesNotCampBanks) {
  const auto c = gcn();
  AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  cfg.mem_params.scheduler = mem::MemScheduler::kFrFcfs;
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  const auto lints = perf_lints(c.prog, cfg, opt);
  EXPECT_FALSE(lints_fire(lints, LintCode::kBankCamping));
}

// ---- GV204: modeled partition load imbalance ----

TEST(Analysis, PartitionImbalanceFiresOnStarGraphUnderBlockPartition) {
  auto c = compile(gnn::make_gcn(6, 3, 4), star_dataset());
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  opt.partition = graph::PartitionPolicy::kBlock;
  const auto lints =
      perf_lints(c.prog, AcceleratorConfig::gpu_iso_bw(), opt);
  EXPECT_TRUE(lints_fire(lints, LintCode::kPartitionImbalance));
}

TEST(Analysis, PartitionImbalanceFixIsVerifiedAndClears) {
  auto c = compile(gnn::make_gcn(6, 3, 4), star_dataset());
  const AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  opt.partition = graph::PartitionPolicy::kBlock;
  const auto fixes = suggest_fixes(c.prog, cfg, opt);
  const auto it = std::find_if(fixes.begin(), fixes.end(),
                               [](const FixSuggestion& f) {
                                 return f.code ==
                                        LintCode::kPartitionImbalance;
                               });
  ASSERT_NE(it, fixes.end());
  EXPECT_TRUE(it->verified);
  EXPECT_NE(it->partition, graph::PartitionPolicy::kBlock);
  EXPECT_NE(it->manifest_snippet.find("partition="), std::string::npos)
      << it->manifest_snippet;
  AnalysisOptions fixed_opt;
  fixed_opt.dataset = c.ds.get();
  fixed_opt.partition = it->partition;
  const auto relint = perf_lints(c.prog, it->patched, fixed_opt);
  EXPECT_FALSE(lints_fire(relint, LintCode::kPartitionImbalance));
}

// ---- GV202 + GV204 joint fix search ----

TEST(Analysis, JointSplitPartitionFixClearsBothLints) {
  // MPNN (dna2 phases -> the split matters) on a star graph (block
  // partition concentrates the per-edge load): a starved 15/16 split and
  // an imbalanced partition fire together, and neither per-lint greedy
  // fix could verify — rebalancing the split still re-lints imbalanced,
  // switching the partition still re-lints starved.
  auto c = compile(gnn::make_mpnn(6, 5, 3, 8, 2), star_dataset(6, 5));
  AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  cfg.tile_params.dnq_data_bytes = 1600;
  cfg.tile_params.dnq_queue0_sixteenths = 15;
  AnalysisOptions opt;
  opt.dataset = c.ds.get();
  opt.partition = graph::PartitionPolicy::kBlock;
  const auto lints = perf_lints(c.prog, cfg, opt);
  ASSERT_TRUE(lints_fire(lints, LintCode::kQueueSplitStarved));
  ASSERT_TRUE(lints_fire(lints, LintCode::kPartitionImbalance));

  const auto fixes = suggest_fixes(c.prog, cfg, opt);
  const auto find = [&](LintCode code) {
    return std::find_if(fixes.begin(), fixes.end(),
                        [code](const FixSuggestion& f) {
                          return f.code == code;
                        });
  };
  const auto split_fix = find(LintCode::kQueueSplitStarved);
  const auto part_fix = find(LintCode::kPartitionImbalance);
  ASSERT_NE(split_fix, fixes.end());
  ASSERT_NE(part_fix, fixes.end());
  // The joint search hands both codes one shared (split, partition)
  // point...
  EXPECT_EQ(split_fix->patched.tile_params.dnq_queue0_sixteenths,
            part_fix->patched.tile_params.dnq_queue0_sixteenths);
  EXPECT_EQ(split_fix->partition, part_fix->partition);
  EXPECT_NE(split_fix->patched.tile_params.dnq_queue0_sixteenths, 15U);
  EXPECT_NE(part_fix->partition, graph::PartitionPolicy::kBlock);
  EXPECT_TRUE(split_fix->verified) << split_fix->description;
  EXPECT_TRUE(part_fix->verified) << part_fix->description;
  // ...and that point clears both codes at once.
  AnalysisOptions fixed_opt;
  fixed_opt.dataset = c.ds.get();
  fixed_opt.partition = split_fix->partition;
  const auto relint = perf_lints(c.prog, split_fix->patched, fixed_opt);
  EXPECT_FALSE(lints_fire(relint, LintCode::kQueueSplitStarved));
  EXPECT_FALSE(lints_fire(relint, LintCode::kPartitionImbalance));
  // Each manifest snippet ships the whole joint configuration, so
  // applying either one lands on the verified point.
  EXPECT_NE(split_fix->manifest_snippet.find("partition="),
            std::string::npos)
      << split_fix->manifest_snippet;
  EXPECT_NE(part_fix->manifest_snippet.find("tile_dnq_queue0_sixteenths="),
            std::string::npos)
      << part_fix->manifest_snippet;
}

// ---- shipped benchmarks stay clean ----

TEST(Analysis, ShippedBenchmarksFireNoPerfLints) {
  sim::Session& session = sim::Session::global();
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    sim::RunRequest req;
    req.benchmark = b;
    const auto resolved = session.resolve(req);
    AnalysisOptions opt;
    opt.dataset = resolved.dataset.get();
    const auto lints = perf_lints(*resolved.program, req.config, opt);
    EXPECT_TRUE(lints.empty()) << gnn::benchmark_name(b) << ": "
                               << (lints.empty() ? "" : lints[0].message);
    // ...and with no perf lints firing, suggest_fixes has nothing to do.
    EXPECT_TRUE(suggest_fixes(*resolved.program, req.config, opt).empty());
  }
}

// ---- verify integration (the GV2xx family in VerifyReport) ----

TEST(Analysis, VerifyProgramCarriesPerfLintsWhenConfigBound) {
  const auto c = gcn();
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  cfg.tile_params.agg_data_bytes = 80;
  const VerifyReport r =
      verify_program(c.prog, cfg.tile_params, c.ds.get(), &cfg);
  EXPECT_TRUE(r.has(LintCode::kReuseDistanceThrash)) << r.to_string();
  EXPECT_TRUE(r.ok()) << r.to_string();  // warnings, not errors
}

TEST(Analysis, PerfLintsAreSuppressedOnBrokenPrograms) {
  auto c = gcn();
  c.prog.phases[0].agg_op = ReduceOp::kMean;  // GV003 error
  AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  cfg.tile_params.agg_data_bytes = 80;  // would fire GV201 when clean
  const VerifyReport r =
      verify_program(c.prog, cfg.tile_params, c.ds.get(), &cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.has(LintCode::kReuseDistanceThrash)) << r.to_string();
}

}  // namespace
}  // namespace gnna::accel
