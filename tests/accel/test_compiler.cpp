#include "accel/compiler.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "gnn/model.hpp"
#include "graph/dataset.hpp"
#include "graph/generator.hpp"

namespace gnna::accel {
namespace {

/// Small synthetic dataset for compiler tests.
graph::Dataset tiny_dataset(std::uint32_t vf = 6, std::uint32_t ef = 0) {
  Rng rng(3);
  graph::Dataset ds;
  ds.spec = {"tiny", 1, 20, 40, vf, ef, 3};
  ds.graphs.push_back(graph::generate_random_graph(rng, 20, 40));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(std::size_t{20} * vf, 0.5F);
  ds.edge_features.emplace_back(std::size_t{40} * ef, 0.5F);
  return ds;
}

TEST(Compiler, GcnLowersToOnePhasePerLayer) {
  const auto ds = tiny_dataset();
  const auto prog =
      ProgramCompiler{}.compile(gnn::make_gcn(6, 3, 4), ds);
  ASSERT_EQ(prog.phases.size(), 2U);
  for (const auto& ph : prog.phases) {
    EXPECT_EQ(ph.kind, PhaseKind::kGatherAggregate);
    EXPECT_TRUE(ph.has_dna());
    EXPECT_TRUE(ph.include_self);
    EXPECT_TRUE(ph.weighted_edges);  // sym-norm coefficients
  }
  EXPECT_EQ(prog.phases[0].agg_width_words, 6U);
  EXPECT_EQ(prog.phases[0].dna_out_words, 4U);
  EXPECT_EQ(prog.phases[1].agg_width_words, 4U);
  EXPECT_EQ(prog.phases[1].dna_out_words, 3U);
}

TEST(Compiler, GatLowersToProjectionPlusAttention) {
  const auto ds = tiny_dataset();
  const auto prog =
      ProgramCompiler{}.compile(gnn::make_gat(6, 3, 2, 4), ds);
  ASSERT_EQ(prog.phases.size(), 4U);
  EXPECT_EQ(prog.phases[0].kind, PhaseKind::kProject);
  EXPECT_EQ(prog.phases[1].kind, PhaseKind::kEdgeDnaAggregate);
  // Attention entries carry p_v copied by the GPE.
  EXPECT_EQ(prog.phases[1].gpe_words_per_entry, 8U);
  EXPECT_FALSE(prog.phases[1].has_dna2());
}

TEST(Compiler, MpnnUsesBothVirtualQueues) {
  const auto ds = tiny_dataset(6, 5);
  const auto prog =
      ProgramCompiler{}.compile(gnn::make_mpnn(6, 5, 3, 8, 2), ds);
  // embed + 2 message-pass + readout.
  ASSERT_EQ(prog.phases.size(), 4U);
  const PhaseSpec& mp = prog.phases[1];
  EXPECT_EQ(mp.kind, PhaseKind::kEdgeDnaAggregate);
  EXPECT_TRUE(mp.has_dna2());
  EXPECT_EQ(mp.dna2_gpe_words, 8U);
  EXPECT_TRUE(mp.extra_inputs_per_edge);
  ASSERT_EQ(mp.dna_shapes.size(), 3U);  // MLP layer 1, layer 2, matvec
  EXPECT_EQ(mp.dna_shapes[1].n, 64U);   // hidden -> d*d = 8*8
  const PhaseSpec& ro = prog.phases.back();
  EXPECT_TRUE(ro.per_graph);
}

TEST(Compiler, PgnnLowersToWalkPhases) {
  const auto ds = tiny_dataset(1);
  const auto prog =
      ProgramCompiler{}.compile(gnn::make_pgnn(1, 3, 4, 3, 2), ds);
  // Per layer: 3 hop phases (walks of 1, 2, 4) + 1 projection.
  ASSERT_EQ(prog.phases.size(), 8U);
  EXPECT_EQ(prog.phases[0].walk_len, 1U);
  EXPECT_EQ(prog.phases[1].walk_len, 2U);
  EXPECT_EQ(prog.phases[2].walk_len, 4U);
  EXPECT_EQ(prog.phases[3].kind, PhaseKind::kProject);
  // Projection consumes self + 3 power terms.
  EXPECT_EQ(prog.phases[3].extra_inputs.size(), 4U);
  EXPECT_FALSE(prog.phases[0].has_dna());
}

TEST(Compiler, WalkCountsMatchBruteForce) {
  const auto ds = tiny_dataset(1);
  const auto prog =
      ProgramCompiler{}.compile(gnn::make_pgnn(1, 3, 4, 2, 1), ds);
  const graph::Graph& g = ds.undirected[0];
  // walk_len 2 phase is phases[1].
  const auto& counts = prog.phases[1].expected_contribs;
  ASSERT_EQ(counts.size(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    std::uint64_t brute = 0;
    for (const NodeId u : g.neighbors(v)) brute += g.out_degree(u);
    EXPECT_EQ(counts[v], brute) << "vertex " << v;
  }
}

TEST(Compiler, RegionsDoNotOverlap) {
  const auto ds = tiny_dataset(6, 5);
  const auto prog =
      ProgramCompiler{}.compile(gnn::make_mpnn(6, 5, 3, 8, 2), ds);
  std::vector<std::pair<Addr, Addr>> ranges;
  for (std::size_t r = 0; r < prog.memmap.num_regions(); ++r) {
    const Region& reg = prog.memmap.region(static_cast<RegionId>(r));
    ranges.emplace_back(reg.base, reg.base + reg.bytes);
  }
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first);
  }
}

TEST(Compiler, RegionsAre64ByteAligned) {
  const auto ds = tiny_dataset();
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(6, 3), ds);
  for (std::size_t r = 0; r < prog.memmap.num_regions(); ++r) {
    EXPECT_EQ(prog.memmap.region(static_cast<RegionId>(r)).base % 64, 0U);
  }
}

TEST(Compiler, WeightRegionsSized) {
  const auto ds = tiny_dataset();
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(6, 3, 4), ds);
  for (const auto& ph : prog.phases) {
    ASSERT_GT(ph.weight_bytes, 0U);
    EXPECT_EQ(prog.memmap.region(ph.weight_region).bytes, ph.weight_bytes);
  }
  EXPECT_EQ(prog.phases[0].weight_bytes, 6U * 4U * 4U);
}

TEST(Compiler, InputWidthMismatchThrows) {
  const auto ds = tiny_dataset(6);
  EXPECT_THROW(ProgramCompiler{}.compile(gnn::make_gcn(7, 3), ds),
               std::invalid_argument);
}

TEST(Compiler, InputWidthMismatchNamesTheLayer) {
  const auto ds = tiny_dataset(6);
  try {
    (void)ProgramCompiler{}.compile(gnn::make_gcn(7, 3), ds);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("input width mismatch"), std::string::npos) << what;
    EXPECT_NE(what.find("gc1"), std::string::npos) << what;
  }
}

TEST(Compiler, MidChainWidthMismatchNamesTheLayer) {
  // First layer fits the dataset; the hand-edited second layer doesn't.
  const auto ds = tiny_dataset(6);
  auto model = gnn::make_gcn(6, 3, 4);
  model.layers[1].in_features = 5;  // layer 0 produces 4
  try {
    (void)ProgramCompiler{}.compile(model, ds);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("gc2"), std::string::npos)
        << e.what();
  }
}

TEST(Compiler, GraphOfResolvesMultiGraphDatasets) {
  Rng rng(5);
  graph::Dataset ds;
  ds.spec = {"multi", 3, 15, 9, 2, 0, 2};
  for (int i = 0; i < 3; ++i) {
    ds.graphs.push_back(graph::generate_random_graph(rng, 5, 3));
    ds.undirected.push_back(ds.graphs.back().symmetrized());
    ds.node_features.emplace_back(10, 0.0F);
    ds.edge_features.emplace_back();
  }
  const auto prog = ProgramCompiler{}.compile(gnn::make_gcn(2, 2, 2), ds);
  EXPECT_EQ(prog.graph_of(0), 0U);
  EXPECT_EQ(prog.graph_of(4), 0U);
  EXPECT_EQ(prog.graph_of(5), 1U);
  EXPECT_EQ(prog.graph_of(14), 2U);
  EXPECT_EQ(prog.total_vertices(), 15U);
}

TEST(Compiler, WalkExplosionGuard) {
  // A dense graph with 4-hop walks must trip the safety bound.
  Rng rng(6);
  graph::Dataset ds;
  ds.spec = {"dense", 1, 200, 19900, 1, 0, 2};
  ds.graphs.push_back(graph::generate_random_graph(rng, 200, 19900));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(200, 0.0F);
  ds.edge_features.emplace_back();
  EXPECT_THROW(ProgramCompiler{}.compile(gnn::make_pgnn(1, 2, 4, 3), ds),
               std::invalid_argument);
}

TEST(Compiler, WalkExplosionGuardReportsTheWalkCount) {
  Rng rng(6);
  graph::Dataset ds;
  ds.spec = {"dense", 1, 200, 19900, 1, 0, 2};
  ds.graphs.push_back(graph::generate_random_graph(rng, 200, 19900));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(200, 0.0F);
  ds.edge_features.emplace_back();
  try {
    (void)ProgramCompiler{}.compile(gnn::make_pgnn(1, 2, 4, 3), ds);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("walk tree too large"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace gnna::accel
