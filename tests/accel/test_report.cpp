#include "accel/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gnna::accel {
namespace {

RunStats sample() {
  RunStats rs;
  rs.program_name = "GCN on Cora";
  rs.config_name = "CPU iso-BW";
  rs.core_clock_ghz = 2.4;
  rs.cycles = 1000;
  rs.millis = 0.5;
  rs.tasks_completed = 42;
  return rs;
}

TEST(Report, HeaderAndRowFieldCountsMatch) {
  const std::string header = run_stats_csv_header();
  const std::string row = run_stats_csv_row(sample());
  const auto count = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(count(header), count(row));
  EXPECT_GT(count(header), 10);
}

TEST(Report, RowContainsKeyValues) {
  const std::string row = run_stats_csv_row(sample());
  EXPECT_NE(row.find("GCN on Cora"), std::string::npos);
  EXPECT_NE(row.find("CPU iso-BW"), std::string::npos);
  EXPECT_NE(row.find(",1000,"), std::string::npos);
  EXPECT_NE(row.find(",42,"), std::string::npos);
}

TEST(Report, WriteCsvBatches) {
  std::ostringstream ss;
  write_csv(ss, {sample(), sample()});
  const std::string out = ss.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.find("program,"), 0U);
}

TEST(Report, NoTrailingNewlineInRow) {
  EXPECT_EQ(run_stats_csv_row(sample()).back(), '0' + 0);  // last field = 0
  EXPECT_EQ(run_stats_csv_header().find('\n'), std::string::npos);
}

}  // namespace
}  // namespace gnna::accel
