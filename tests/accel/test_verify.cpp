// Static program verifier (accel::verify): every lint code must fire on a
// hand-crafted bad program, and every shipped model family must verify
// completely clean (zero errors AND zero warnings).
#include "accel/verify.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string_view>

#include "accel/compiler.hpp"
#include "accel/config.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"
#include "graph/generator.hpp"
#include "graph/graph.hpp"
#include "sim/session.hpp"

namespace gnna::accel {
namespace {

graph::Dataset tiny_dataset(std::uint32_t vf = 6, std::uint32_t ef = 0) {
  Rng rng(3);
  graph::Dataset ds;
  ds.spec = {"tiny", 1, 20, 40, vf, ef, 3};
  ds.graphs.push_back(graph::generate_random_graph(rng, 20, 40));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(std::size_t{20} * vf, 0.5F);
  ds.edge_features.emplace_back(std::size_t{40} * ef, 0.5F);
  return ds;
}

/// Keeps the dataset alive alongside the program that references it (the
/// dataset lives on the heap so moving Compiled doesn't invalidate the
/// program's non-owning dataset pointer).
struct Compiled {
  std::unique_ptr<graph::Dataset> ds;
  CompiledProgram prog;
};

Compiled compile(const gnn::ModelSpec& model, graph::Dataset ds) {
  Compiled c;
  c.ds = std::make_unique<graph::Dataset>(std::move(ds));
  c.prog = ProgramCompiler{}.compile(model, *c.ds);
  return c;
}

Compiled gcn() { return compile(gnn::make_gcn(6, 3, 4), tiny_dataset()); }

// ---- clean programs ----

TEST(Verify, CleanModelFamiliesProduceNoDiagnostics) {
  const TileParams params;
  const auto check = [&](const Compiled& c) {
    const VerifyReport r = verify_program(c.prog, params, c.ds.get());
    EXPECT_TRUE(r.ok()) << r.to_string();
    EXPECT_TRUE(r.diagnostics.empty()) << r.to_string();
  };
  check(gcn());
  check(compile(gnn::make_gat(6, 3, 2, 4), tiny_dataset()));
  check(compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5)));
  check(compile(gnn::make_pgnn(1, 3, 4, 3, 2), tiny_dataset(1)));
}

TEST(Verify, AllShippedBenchmarksVerifyClean) {
  sim::Session& session = sim::Session::global();
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    sim::RunRequest req;
    req.benchmark = b;
    const auto resolved = session.resolve(req);
    // Bind the full config so the GV108 bisection check and the GV2xx
    // perf-lint family run too: shipped benchmarks must be clean of all
    // of them.
    const VerifyReport r =
        verify_program(*resolved.program, req.config.tile_params,
                       resolved.dataset.get(), &req.config, req.partition);
    EXPECT_TRUE(r.diagnostics.empty())
        << gnn::benchmark_name(b) << ":\n" << r.to_string();
  }
}

// ---- GV001: oversized DNQ entry ----

TEST(Verify, OversizedDnqEntryIsDeadlockError) {
  const auto c = gcn();
  TileParams params;
  params.dnq_data_bytes = 16;  // phase 0 needs a 24B queue-0 entry
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kDnqEntryTooLarge)) << r.to_string();
}

TEST(Verify, OversizedQueue1EntryIsDeadlockError) {
  // MPNN's GRU entry (agg_width + dna2_gpe_words = 16 words = 64B) must
  // fit virtual queue 1, which only gets half the scratchpad.
  auto c = compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5));
  TileParams params;
  params.dnq_data_bytes = 160;  // q1 = 80B with the default 8/16 split
  params.dnq_queue0_sixteenths = 15;  // q1 = 10B < 64B
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.has(LintCode::kDnqEntryTooLarge)) << r.to_string();
}

// ---- GV002: oversized AGG entry ----

TEST(Verify, OversizedAggEntryIsDeadlockError) {
  const auto c = gcn();
  TileParams params;
  params.agg_data_bytes = 16;  // phase 0 aggregates 6-word (24B) vectors
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kAggEntryTooLarge)) << r.to_string();
}

// ---- GV003: non-associative reduce op ----

TEST(Verify, NonAssociativeAggOpIsError) {
  auto c = gcn();
  c.prog.phases[0].agg_op = ReduceOp::kMean;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kNonAssociativeAggOp)) << r.to_string();
}

// ---- GV004: bad buffer references ----

TEST(Verify, OutOfRangeRegionIdIsError) {
  auto c = gcn();
  c.prog.phases[0].output.region = 999;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadBufferRef)) << r.to_string();
}

TEST(Verify, OutputWidthMismatchIsError) {
  auto c = gcn();
  c.prog.phases[0].output.width_words = 7;  // DNA produces 4 words
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadBufferRef)) << r.to_string();
}

TEST(Verify, UndersizedRegionIsError) {
  auto c = gcn();
  // Point the output at a region far too small for 20 vertices x 4 words.
  c.prog.phases[1].output.region =
      c.prog.memmap.add_region("small", 8);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadBufferRef)) << r.to_string();
}

// ---- GV005: bad DNA models ----

TEST(Verify, MismatchedMatmulChainIsError) {
  auto c = gcn();
  // Stage 1 consumes neither the width (4) nor the full output (4 words)
  // of stage 0.
  c.prog.phases[0].dna_shapes = {{1, 6, 4}, {1, 5, 7}};
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kBadDnaModel)) << r.to_string();
}

TEST(Verify, HypernetworkChainIsAccepted) {
  // MPNN-style: stage 0 emits a 2x3 weight matrix consumed as stage 1's
  // k x n — legal even though 2 != 6.
  auto c = gcn();
  c.prog.phases[0].dna_shapes = {{1, 6, 6}, {1, 2, 3}};
  c.prog.phases[0].dna_out_words = 3;
  c.prog.phases[0].output.width_words = 3;
  // Keep the extent valid for the narrower output.
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.has(LintCode::kBadDnaModel)) << r.to_string();
}

TEST(Verify, OutWordsBeyondFinalStageIsError) {
  auto c = gcn();
  c.prog.phases[0].dna_out_words = 99;  // final stage emits 4 words
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadDnaModel)) << r.to_string();
}

TEST(Verify, ProjectPhaseWithoutDnaIsError) {
  auto c = compile(gnn::make_gat(6, 3, 2, 4), tiny_dataset());
  ASSERT_EQ(c.prog.phases[0].kind, PhaseKind::kProject);
  c.prog.phases[0].dna_shapes.clear();
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadDnaModel)) << r.to_string();
}

// ---- GV006: expected_contribs vs the walk tree ----

TEST(Verify, WrongWalkCountIsError) {
  auto c = compile(gnn::make_pgnn(1, 3, 4, 2, 1), tiny_dataset(1));
  ASSERT_GT(c.prog.phases[1].walk_len, 1U);
  c.prog.phases[1].expected_contribs[0] += 1;
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kBadExpectedContribs)) << r.to_string();
}

TEST(Verify, TruncatedWalkCountsAreError) {
  auto c = compile(gnn::make_pgnn(1, 3, 4, 2, 1), tiny_dataset(1));
  c.prog.phases[1].expected_contribs.resize(3);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadExpectedContribs)) << r.to_string();
}

// ---- GV007: malformed memory maps ----

TEST(Verify, OverlappingRegionsAreError) {
  auto c = gcn();
  c.prog.memmap.add_region_at("overlap", c.prog.memmap.region(0).base + 64,
                              256);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kBadMemoryMap)) << r.to_string();
}

TEST(Verify, MisalignedRegionIsError) {
  auto c = gcn();
  c.prog.memmap.add_region_at("odd", c.prog.memmap.total_bytes() + 4, 16);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadMemoryMap)) << r.to_string();
}

// ---- GV008: read before write ----

TEST(Verify, ReadBeforeWriteIsError) {
  auto c = gcn();
  // Run layer 2 before layer 1: layer 2 gathers layer 1's output, which
  // no earlier phase has written.
  std::swap(c.prog.phases[0], c.prog.phases[1]);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kReadBeforeWrite)) << r.to_string();
}

// ---- GV009: illegal phase combinations ----

TEST(Verify, AggregateKindWithoutAggWidthIsError) {
  auto c = gcn();
  c.prog.phases[0].agg_width_words = 0;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kIllegalPhaseCombo)) << r.to_string();
}

TEST(Verify, PerEdgeExtrasWithSelfContributionIsError) {
  auto c = compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5));
  ASSERT_EQ(c.prog.phases[1].kind, PhaseKind::kEdgeDnaAggregate);
  ASSERT_TRUE(c.prog.phases[1].extra_inputs_per_edge);
  c.prog.phases[1].include_self = true;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kIllegalPhaseCombo)) << r.to_string();
}

// ---- GV010: unusable tile parameters ----

TEST(Verify, ZeroAluTileParamsAreError) {
  const auto c = gcn();
  TileParams params;
  params.agg_alus = 0;
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.has(LintCode::kBadTileParams)) << r.to_string();
}

TEST(Verify, BadQueueSplitIsError) {
  const auto c = gcn();
  TileParams params;
  params.dnq_queue0_sixteenths = 17;
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.has(LintCode::kBadTileParams)) << r.to_string();
}

// ---- warnings ----

TEST(Verify, SingleEntryAggScratchpadWarns) {
  const auto c = gcn();
  TileParams params;
  params.agg_data_bytes = 44;  // one 24B entry fits, two don't
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.ok()) << r.to_string();  // warning, not error
  EXPECT_TRUE(r.has(LintCode::kAggLowConcurrency)) << r.to_string();
}

TEST(Verify, SingleEntryDnqQueueWarns) {
  const auto c = gcn();
  TileParams params;
  params.dnq_data_bytes = 32;  // phase 0's 24B entry fits, two don't
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.has(LintCode::kDnqLowConcurrency)) << r.to_string();
}

TEST(Verify, DeadStoreWarns) {
  auto c = compile(gnn::make_gat(6, 3, 2, 4), tiny_dataset());
  // Make the attention phase gather the raw input instead of the
  // projection output: the projection's result is never read.
  ASSERT_EQ(c.prog.phases[1].kind, PhaseKind::kEdgeDnaAggregate);
  c.prog.phases[1].gather = BufferRef{0 /* set below */, 6};
  // Region of the preloaded input buffer.
  for (RegionId id = 0; id < c.prog.memmap.num_regions(); ++id) {
    if (c.prog.memmap.region(id).name == "input") {
      c.prog.phases[1].gather.region = id;
    }
  }
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kDeadStore)) << r.to_string();
}

TEST(Verify, MismatchedUnusedContribsWarn) {
  auto c = compile(gnn::make_pgnn(1, 3, 4, 2, 1), tiny_dataset(1));
  ASSERT_EQ(c.prog.phases[0].walk_len, 1U);
  ASSERT_FALSE(c.prog.phases[0].expected_contribs.empty());
  c.prog.phases[0].expected_contribs[0] += 5;
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_TRUE(r.has(LintCode::kUnusedExpectedContribs)) << r.to_string();
}

TEST(Verify, WeightsWithoutDnaWarn) {
  auto c = gcn();
  c.prog.phases[0].dna_shapes.clear();
  c.prog.phases[0].dna_out_words = 0;
  // agg_width (6) now lands directly in the output buffer.
  c.prog.phases[0].output.width_words = 6;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kWeightsWithoutDna)) << r.to_string();
}

TEST(Verify, OutputClobberingPreloadWarns) {
  auto c = gcn();
  for (RegionId id = 0; id < c.prog.memmap.num_regions(); ++id) {
    if (c.prog.memmap.region(id).name == "input") {
      c.prog.phases[0].output.region = id;
    }
  }
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kOutputClobbersPreload)) << r.to_string();
}

// ---- GV011: malformed graph-layout tables ----

TEST(Verify, EmptyGraphLayoutTableIsError) {
  auto c = gcn();
  c.prog.graphs.clear();
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kBadGraphLayout)) << r.to_string();
}

TEST(Verify, NonContiguousLayoutOffsetsAreError) {
  auto c = gcn();
  c.prog.graphs[0].node_offset = 7;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadGraphLayout)) << r.to_string();
}

TEST(Verify, UndersizedRowPtrRegionIsError) {
  auto c = gcn();
  // Claim more vertices than the rowptr region (and dataset) hold.
  c.prog.graphs[0].num_nodes += 100;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadGraphLayout)) << r.to_string();
}

// ---- GV012: layout table vs the bound dataset ----

TEST(Verify, LayoutDatasetEdgeCountMismatchIsError) {
  auto c = gcn();
  // Shrink the claimed edge count: the topology regions still cover it,
  // so only the dataset comparison can catch the lie.
  c.prog.graphs[0].num_edges -= 2;
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kDatasetMismatch)) << r.to_string();
}

TEST(Verify, LayoutGraphCountMismatchIsError) {
  auto c = gcn();
  c.prog.graphs.push_back(c.prog.graphs[0]);  // one more than the dataset
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_TRUE(r.has(LintCode::kDatasetMismatch)) << r.to_string();
}

// ---- GV107: no dataset bound ----

TEST(Verify, NoDatasetBoundWarnsOnce) {
  const auto c = gcn();
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.ok()) << r.to_string();  // warning only
  EXPECT_TRUE(r.has(LintCode::kNoDatasetBound)) << r.to_string();
  std::size_t n = 0;
  for (const auto& d : r.diagnostics) {
    if (d.code == LintCode::kNoDatasetBound) ++n;
  }
  EXPECT_EQ(n, 1U);
}

// ---- GV108: NoC bisection saturation ----

TEST(Verify, OverprovisionedMemorySaturatesBisectionWarning) {
  const auto c = gcn();
  // gpu-iso-bw but with each memory node cranked to 400 GB/s: the
  // aggregate stream (8 nodes) would push ~half its bytes across the mesh
  // bisection, which the 4x4 mesh's 512 B/cycle cut cannot carry.
  AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  cfg.mem_params.bandwidth = Bandwidth::gb_per_s(400.0);
  const VerifyReport r =
      verify_program(c.prog, TileParams{}, c.ds.get(), &cfg);
  EXPECT_TRUE(r.ok()) << r.to_string();  // warning, not an error
  EXPECT_TRUE(r.has(LintCode::kNocBisectionSaturated)) << r.to_string();
  std::size_t n = 0;
  for (const auto& d : r.diagnostics) {
    if (d.code == LintCode::kNocBisectionSaturated) {
      ++n;
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_GE(d.phase, 0);  // attributed to a concrete phase
    }
  }
  // One warning per phase that actually moves bytes.
  EXPECT_GE(n, 1U);
}

TEST(Verify, SkinnyMeshLowersTheBisectionBound) {
  const auto c = gcn();
  // Same memory system, but a 16x1 chain has a single-link bisection
  // (min(W,H) = 1 -> 128 B/cycle); a moderate 200 GB/s per node already
  // overwhelms it.
  AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  cfg.mesh_width = 16;
  cfg.mesh_height = 1;
  cfg.mem_params.bandwidth = Bandwidth::gb_per_s(200.0);
  const VerifyReport r =
      verify_program(c.prog, TileParams{}, c.ds.get(), &cfg);
  EXPECT_TRUE(r.has(LintCode::kNocBisectionSaturated)) << r.to_string();
}

TEST(Verify, ShippedConfigsDoNotSaturateBisection) {
  const auto c = gcn();
  for (const AcceleratorConfig& cfg :
       {AcceleratorConfig::cpu_iso_bw(), AcceleratorConfig::gpu_iso_bw(),
        AcceleratorConfig::gpu_iso_flops()}) {
    const VerifyReport r =
        verify_program(c.prog, TileParams{}, c.ds.get(), &cfg);
    EXPECT_FALSE(r.has(LintCode::kNocBisectionSaturated))
        << cfg.name << ":\n" << r.to_string();
  }
}

TEST(Verify, NoConfigSkipsBisectionCheck) {
  const auto c = gcn();
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_FALSE(r.has(LintCode::kNocBisectionSaturated));
}

// ---- report plumbing ----

TEST(Verify, VerifyOrThrowCarriesTheReport) {
  auto c = gcn();
  c.prog.phases[0].agg_op = ReduceOp::kMean;
  try {
    (void)verify_or_throw(c.prog, TileParams{});
    FAIL() << "expected ProgramVerifyError";
  } catch (const ProgramVerifyError& e) {
    EXPECT_TRUE(e.report().has(LintCode::kNonAssociativeAggOp));
    EXPECT_NE(std::string(e.what()).find("GV003"), std::string::npos);
  }
}

TEST(Verify, WarningsDoNotThrow) {
  const auto c = gcn();
  TileParams params;
  params.agg_data_bytes = 44;
  const VerifyReport r = verify_or_throw(c.prog, params);
  EXPECT_EQ(r.num_errors(), 0U);
  EXPECT_GE(r.num_warnings(), 1U);
}

TEST(Verify, ReportPrintsCodeAndPhaseProvenance) {
  auto c = gcn();
  c.prog.phases[1].agg_op = ReduceOp::kMean;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  std::ostringstream os;
  r.print(os);
  EXPECT_NE(os.str().find("GV003"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("phase 1"), std::string::npos) << os.str();
}

TEST(Verify, LintCodeTableIsCompleteAndStable) {
  const auto table = lint_code_table();
  EXPECT_EQ(table.size(), 24U);
  EXPECT_STREQ(lint_code_name(LintCode::kDnqEntryTooLarge), "GV001");
  EXPECT_STREQ(lint_code_name(LintCode::kOutputClobbersPreload), "GV106");
  EXPECT_STREQ(lint_code_name(LintCode::kNocBisectionSaturated), "GV108");
  EXPECT_STREQ(lint_code_name(LintCode::kReuseDistanceThrash), "GV201");
  EXPECT_STREQ(lint_code_name(LintCode::kQueueSplitStarved), "GV202");
  EXPECT_STREQ(lint_code_name(LintCode::kBankCamping), "GV203");
  EXPECT_STREQ(lint_code_name(LintCode::kPartitionImbalance), "GV204");
  for (const auto& e : table) {
    EXPECT_EQ(e.severity, lint_code_severity(e.code));
    EXPECT_FALSE(std::string_view(e.summary).empty())
        << lint_code_name(e.code);
  }
}

TEST(Verify, LintFamiliesPartitionTheTable) {
  EXPECT_EQ(lint_code_family(LintCode::kDnqEntryTooLarge),
            LintFamily::kError);
  EXPECT_EQ(lint_code_family(LintCode::kAggLowConcurrency),
            LintFamily::kWarning);
  EXPECT_EQ(lint_code_family(LintCode::kReuseDistanceThrash),
            LintFamily::kPerf);
  EXPECT_STREQ(lint_family_name(LintFamily::kError), "errors");
  EXPECT_STREQ(lint_family_name(LintFamily::kWarning), "warnings");
  EXPECT_STREQ(lint_family_name(LintFamily::kPerf), "perf");
  for (const auto& e : lint_code_table()) {
    // Perf lints are warnings severity-wise (they never abort a run).
    if (lint_code_family(e.code) == LintFamily::kPerf) {
      EXPECT_EQ(e.severity, Severity::kWarning) << lint_code_name(e.code);
    }
    // Family follows the code-number band: <100 errors, <200 warnings.
    const auto n = static_cast<int>(e.code);
    EXPECT_EQ(lint_code_family(e.code),
              n < 100 ? LintFamily::kError
                      : (n < 200 ? LintFamily::kWarning : LintFamily::kPerf))
        << lint_code_name(e.code);
  }
}

/// Exhaustive registry check: every code in the lint table has a crafted
/// program/config scenario that fires it. A new LintCode without a
/// scenario here fails the `default:` branch — extend the switch when you
/// extend the enum.
VerifyReport fire_scenario(LintCode code) {
  switch (code) {
    case LintCode::kDnqEntryTooLarge: {
      const auto c = gcn();
      TileParams p;
      p.dnq_data_bytes = 16;
      return verify_program(c.prog, p);
    }
    case LintCode::kAggEntryTooLarge: {
      const auto c = gcn();
      TileParams p;
      p.agg_data_bytes = 16;
      return verify_program(c.prog, p);
    }
    case LintCode::kNonAssociativeAggOp: {
      auto c = gcn();
      c.prog.phases[0].agg_op = ReduceOp::kMean;
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kBadBufferRef: {
      auto c = gcn();
      c.prog.phases[0].output.region = 999;
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kBadDnaModel: {
      auto c = gcn();
      c.prog.phases[0].dna_shapes = {{1, 6, 4}, {1, 5, 7}};
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kBadExpectedContribs: {
      auto c = compile(gnn::make_pgnn(1, 3, 4, 2, 1), tiny_dataset(1));
      c.prog.phases[1].expected_contribs[0] += 1;
      return verify_program(c.prog, TileParams{}, c.ds.get());
    }
    case LintCode::kBadMemoryMap: {
      auto c = gcn();
      c.prog.memmap.add_region_at("overlap",
                                  c.prog.memmap.region(0).base + 64, 256);
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kReadBeforeWrite: {
      auto c = gcn();
      std::swap(c.prog.phases[0], c.prog.phases[1]);
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kIllegalPhaseCombo: {
      auto c = gcn();
      c.prog.phases[0].agg_width_words = 0;
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kBadTileParams: {
      const auto c = gcn();
      TileParams p;
      p.agg_alus = 0;
      return verify_program(c.prog, p);
    }
    case LintCode::kBadGraphLayout: {
      auto c = gcn();
      c.prog.graphs.clear();
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kDatasetMismatch: {
      auto c = gcn();
      c.prog.graphs[0].num_edges -= 2;
      return verify_program(c.prog, TileParams{}, c.ds.get());
    }
    case LintCode::kAggLowConcurrency: {
      const auto c = gcn();
      TileParams p;
      p.agg_data_bytes = 44;
      return verify_program(c.prog, p);
    }
    case LintCode::kDnqLowConcurrency: {
      const auto c = gcn();
      TileParams p;
      p.dnq_data_bytes = 32;
      return verify_program(c.prog, p);
    }
    case LintCode::kDeadStore: {
      auto c = compile(gnn::make_gat(6, 3, 2, 4), tiny_dataset());
      c.prog.phases[1].gather = BufferRef{0, 6};
      for (RegionId id = 0; id < c.prog.memmap.num_regions(); ++id) {
        if (c.prog.memmap.region(id).name == "input") {
          c.prog.phases[1].gather.region = id;
        }
      }
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kUnusedExpectedContribs: {
      auto c = compile(gnn::make_pgnn(1, 3, 4, 2, 1), tiny_dataset(1));
      c.prog.phases[0].expected_contribs[0] += 5;
      return verify_program(c.prog, TileParams{}, c.ds.get());
    }
    case LintCode::kWeightsWithoutDna: {
      auto c = gcn();
      c.prog.phases[0].dna_shapes.clear();
      c.prog.phases[0].dna_out_words = 0;
      c.prog.phases[0].output.width_words = 6;
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kOutputClobbersPreload: {
      auto c = gcn();
      for (RegionId id = 0; id < c.prog.memmap.num_regions(); ++id) {
        if (c.prog.memmap.region(id).name == "input") {
          c.prog.phases[0].output.region = id;
        }
      }
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kNoDatasetBound: {
      const auto c = gcn();
      return verify_program(c.prog, TileParams{});
    }
    case LintCode::kNocBisectionSaturated: {
      const auto c = gcn();
      AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
      cfg.mem_params.bandwidth = Bandwidth::gb_per_s(400.0);
      return verify_program(c.prog, TileParams{}, c.ds.get(), &cfg);
    }
    case LintCode::kReuseDistanceThrash: {
      const auto c = gcn();
      AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
      cfg.tile_params.agg_data_bytes = 80;  // 3 entries, healthy is 4
      return verify_program(c.prog, cfg.tile_params, c.ds.get(), &cfg);
    }
    case LintCode::kQueueSplitStarved: {
      auto c = compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5));
      AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
      cfg.tile_params.dnq_data_bytes = 1600;
      cfg.tile_params.dnq_queue0_sixteenths = 15;
      return verify_program(c.prog, cfg.tile_params, c.ds.get(), &cfg);
    }
    case LintCode::kBankCamping: {
      const auto c = gcn();
      AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
      cfg.mem_params.scheduler = mem::MemScheduler::kFrFcfs;
      cfg.mem_params.banks = 8;
      cfg.mem_params.row_bytes = 4096;
      cfg.mem_params.bank_interleave_bytes = 4096;
      return verify_program(c.prog, cfg.tile_params, c.ds.get(), &cfg);
    }
    case LintCode::kPartitionImbalance: {
      // A 40-vertex star concentrates vertex 0's load on one tile under
      // any static partition.
      graph::Dataset ds;
      graph::GraphBuilder gb(40);
      for (NodeId v = 1; v < 40; ++v) gb.add_undirected_edge(0, v);
      ds.graphs.push_back(std::move(gb).build());
      ds.undirected.push_back(ds.graphs[0].symmetrized());
      ds.spec = {"star", 1, 40, ds.graphs[0].num_edges(), 6, 0, 3};
      ds.node_features.emplace_back(std::size_t{40} * 6, 0.5F);
      ds.edge_features.emplace_back(0);
      auto c = compile(gnn::make_gcn(6, 3, 4), std::move(ds));
      const AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
      return verify_program(c.prog, cfg.tile_params, c.ds.get(), &cfg,
                            graph::PartitionPolicy::kBlock);
    }
  }
  ADD_FAILURE() << "no firing scenario for lint code "
                << static_cast<int>(code);
  return VerifyReport{};
}

TEST(Verify, EveryLintCodeHasAFiringScenario) {
  for (const auto& e : lint_code_table()) {
    const VerifyReport r = fire_scenario(e.code);
    EXPECT_TRUE(r.has(e.code))
        << lint_code_name(e.code) << " scenario did not fire:\n"
        << r.to_string();
  }
}

// ---- MemoryMap hardening (satellite) ----

TEST(MemoryMap, AddRegionGuardsAddrOverflow) {
  MemoryMap mm;
  (void)mm.add_region("a", 64);
  EXPECT_THROW((void)mm.add_region("huge", ~std::uint64_t{0} - 32),
               std::overflow_error);
  // The failed request must not have disturbed the cursor.
  const RegionId ok = mm.add_region("b", 64);
  EXPECT_EQ(mm.region(ok).base, 64U);
}

TEST(MemoryMap, AddRegionAtGuardsAddrOverflow) {
  MemoryMap mm;
  EXPECT_THROW(
      (void)mm.add_region_at("wrap", ~std::uint64_t{0} - 100, 200),
      std::overflow_error);
}

}  // namespace
}  // namespace gnna::accel
