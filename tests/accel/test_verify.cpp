// Static program verifier (accel::verify): every lint code must fire on a
// hand-crafted bad program, and every shipped model family must verify
// completely clean (zero errors AND zero warnings).
#include "accel/verify.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "accel/compiler.hpp"
#include "accel/config.hpp"
#include "gnn/model.hpp"
#include "graph/dataset.hpp"
#include "graph/generator.hpp"
#include "sim/session.hpp"

namespace gnna::accel {
namespace {

graph::Dataset tiny_dataset(std::uint32_t vf = 6, std::uint32_t ef = 0) {
  Rng rng(3);
  graph::Dataset ds;
  ds.spec = {"tiny", 1, 20, 40, vf, ef, 3};
  ds.graphs.push_back(graph::generate_random_graph(rng, 20, 40));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(std::size_t{20} * vf, 0.5F);
  ds.edge_features.emplace_back(std::size_t{40} * ef, 0.5F);
  return ds;
}

/// Keeps the dataset alive alongside the program that references it (the
/// dataset lives on the heap so moving Compiled doesn't invalidate the
/// program's non-owning dataset pointer).
struct Compiled {
  std::unique_ptr<graph::Dataset> ds;
  CompiledProgram prog;
};

Compiled compile(const gnn::ModelSpec& model, graph::Dataset ds) {
  Compiled c;
  c.ds = std::make_unique<graph::Dataset>(std::move(ds));
  c.prog = ProgramCompiler{}.compile(model, *c.ds);
  return c;
}

Compiled gcn() { return compile(gnn::make_gcn(6, 3, 4), tiny_dataset()); }

// ---- clean programs ----

TEST(Verify, CleanModelFamiliesProduceNoDiagnostics) {
  const TileParams params;
  const auto check = [&](const Compiled& c) {
    const VerifyReport r = verify_program(c.prog, params, c.ds.get());
    EXPECT_TRUE(r.ok()) << r.to_string();
    EXPECT_TRUE(r.diagnostics.empty()) << r.to_string();
  };
  check(gcn());
  check(compile(gnn::make_gat(6, 3, 2, 4), tiny_dataset()));
  check(compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5)));
  check(compile(gnn::make_pgnn(1, 3, 4, 3, 2), tiny_dataset(1)));
}

TEST(Verify, AllShippedBenchmarksVerifyClean) {
  sim::Session& session = sim::Session::global();
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    sim::RunRequest req;
    req.benchmark = b;
    const auto resolved = session.resolve(req);
    const VerifyReport r = verify_program(
        *resolved.program, req.config.tile_params, resolved.dataset.get());
    EXPECT_TRUE(r.diagnostics.empty())
        << gnn::benchmark_name(b) << ":\n" << r.to_string();
  }
}

// ---- GV001: oversized DNQ entry ----

TEST(Verify, OversizedDnqEntryIsDeadlockError) {
  const auto c = gcn();
  TileParams params;
  params.dnq_data_bytes = 16;  // phase 0 needs a 24B queue-0 entry
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kDnqEntryTooLarge)) << r.to_string();
}

TEST(Verify, OversizedQueue1EntryIsDeadlockError) {
  // MPNN's GRU entry (agg_width + dna2_gpe_words = 16 words = 64B) must
  // fit virtual queue 1, which only gets half the scratchpad.
  auto c = compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5));
  TileParams params;
  params.dnq_data_bytes = 160;  // q1 = 80B with the default 8/16 split
  params.dnq_queue0_sixteenths = 15;  // q1 = 10B < 64B
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.has(LintCode::kDnqEntryTooLarge)) << r.to_string();
}

// ---- GV002: oversized AGG entry ----

TEST(Verify, OversizedAggEntryIsDeadlockError) {
  const auto c = gcn();
  TileParams params;
  params.agg_data_bytes = 16;  // phase 0 aggregates 6-word (24B) vectors
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kAggEntryTooLarge)) << r.to_string();
}

// ---- GV003: non-associative reduce op ----

TEST(Verify, NonAssociativeAggOpIsError) {
  auto c = gcn();
  c.prog.phases[0].agg_op = ReduceOp::kMean;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kNonAssociativeAggOp)) << r.to_string();
}

// ---- GV004: bad buffer references ----

TEST(Verify, OutOfRangeRegionIdIsError) {
  auto c = gcn();
  c.prog.phases[0].output.region = 999;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadBufferRef)) << r.to_string();
}

TEST(Verify, OutputWidthMismatchIsError) {
  auto c = gcn();
  c.prog.phases[0].output.width_words = 7;  // DNA produces 4 words
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadBufferRef)) << r.to_string();
}

TEST(Verify, UndersizedRegionIsError) {
  auto c = gcn();
  // Point the output at a region far too small for 20 vertices x 4 words.
  c.prog.phases[1].output.region =
      c.prog.memmap.add_region("small", 8);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadBufferRef)) << r.to_string();
}

// ---- GV005: bad DNA models ----

TEST(Verify, MismatchedMatmulChainIsError) {
  auto c = gcn();
  // Stage 1 consumes neither the width (4) nor the full output (4 words)
  // of stage 0.
  c.prog.phases[0].dna_shapes = {{1, 6, 4}, {1, 5, 7}};
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kBadDnaModel)) << r.to_string();
}

TEST(Verify, HypernetworkChainIsAccepted) {
  // MPNN-style: stage 0 emits a 2x3 weight matrix consumed as stage 1's
  // k x n — legal even though 2 != 6.
  auto c = gcn();
  c.prog.phases[0].dna_shapes = {{1, 6, 6}, {1, 2, 3}};
  c.prog.phases[0].dna_out_words = 3;
  c.prog.phases[0].output.width_words = 3;
  // Keep the extent valid for the narrower output.
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.has(LintCode::kBadDnaModel)) << r.to_string();
}

TEST(Verify, OutWordsBeyondFinalStageIsError) {
  auto c = gcn();
  c.prog.phases[0].dna_out_words = 99;  // final stage emits 4 words
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadDnaModel)) << r.to_string();
}

TEST(Verify, ProjectPhaseWithoutDnaIsError) {
  auto c = compile(gnn::make_gat(6, 3, 2, 4), tiny_dataset());
  ASSERT_EQ(c.prog.phases[0].kind, PhaseKind::kProject);
  c.prog.phases[0].dna_shapes.clear();
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadDnaModel)) << r.to_string();
}

// ---- GV006: expected_contribs vs the walk tree ----

TEST(Verify, WrongWalkCountIsError) {
  auto c = compile(gnn::make_pgnn(1, 3, 4, 2, 1), tiny_dataset(1));
  ASSERT_GT(c.prog.phases[1].walk_len, 1U);
  c.prog.phases[1].expected_contribs[0] += 1;
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kBadExpectedContribs)) << r.to_string();
}

TEST(Verify, TruncatedWalkCountsAreError) {
  auto c = compile(gnn::make_pgnn(1, 3, 4, 2, 1), tiny_dataset(1));
  c.prog.phases[1].expected_contribs.resize(3);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadExpectedContribs)) << r.to_string();
}

// ---- GV007: malformed memory maps ----

TEST(Verify, OverlappingRegionsAreError) {
  auto c = gcn();
  c.prog.memmap.add_region_at("overlap", c.prog.memmap.region(0).base + 64,
                              256);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kBadMemoryMap)) << r.to_string();
}

TEST(Verify, MisalignedRegionIsError) {
  auto c = gcn();
  c.prog.memmap.add_region_at("odd", c.prog.memmap.total_bytes() + 4, 16);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadMemoryMap)) << r.to_string();
}

// ---- GV008: read before write ----

TEST(Verify, ReadBeforeWriteIsError) {
  auto c = gcn();
  // Run layer 2 before layer 1: layer 2 gathers layer 1's output, which
  // no earlier phase has written.
  std::swap(c.prog.phases[0], c.prog.phases[1]);
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kReadBeforeWrite)) << r.to_string();
}

// ---- GV009: illegal phase combinations ----

TEST(Verify, AggregateKindWithoutAggWidthIsError) {
  auto c = gcn();
  c.prog.phases[0].agg_width_words = 0;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kIllegalPhaseCombo)) << r.to_string();
}

TEST(Verify, PerEdgeExtrasWithSelfContributionIsError) {
  auto c = compile(gnn::make_mpnn(6, 5, 3, 8, 2), tiny_dataset(6, 5));
  ASSERT_EQ(c.prog.phases[1].kind, PhaseKind::kEdgeDnaAggregate);
  ASSERT_TRUE(c.prog.phases[1].extra_inputs_per_edge);
  c.prog.phases[1].include_self = true;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kIllegalPhaseCombo)) << r.to_string();
}

// ---- GV010: unusable tile parameters ----

TEST(Verify, ZeroAluTileParamsAreError) {
  const auto c = gcn();
  TileParams params;
  params.agg_alus = 0;
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.has(LintCode::kBadTileParams)) << r.to_string();
}

TEST(Verify, BadQueueSplitIsError) {
  const auto c = gcn();
  TileParams params;
  params.dnq_queue0_sixteenths = 17;
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.has(LintCode::kBadTileParams)) << r.to_string();
}

// ---- warnings ----

TEST(Verify, SingleEntryAggScratchpadWarns) {
  const auto c = gcn();
  TileParams params;
  params.agg_data_bytes = 44;  // one 24B entry fits, two don't
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.ok()) << r.to_string();  // warning, not error
  EXPECT_TRUE(r.has(LintCode::kAggLowConcurrency)) << r.to_string();
}

TEST(Verify, SingleEntryDnqQueueWarns) {
  const auto c = gcn();
  TileParams params;
  params.dnq_data_bytes = 32;  // phase 0's 24B entry fits, two don't
  const VerifyReport r = verify_program(c.prog, params);
  EXPECT_TRUE(r.has(LintCode::kDnqLowConcurrency)) << r.to_string();
}

TEST(Verify, DeadStoreWarns) {
  auto c = compile(gnn::make_gat(6, 3, 2, 4), tiny_dataset());
  // Make the attention phase gather the raw input instead of the
  // projection output: the projection's result is never read.
  ASSERT_EQ(c.prog.phases[1].kind, PhaseKind::kEdgeDnaAggregate);
  c.prog.phases[1].gather = BufferRef{0 /* set below */, 6};
  // Region of the preloaded input buffer.
  for (RegionId id = 0; id < c.prog.memmap.num_regions(); ++id) {
    if (c.prog.memmap.region(id).name == "input") {
      c.prog.phases[1].gather.region = id;
    }
  }
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kDeadStore)) << r.to_string();
}

TEST(Verify, MismatchedUnusedContribsWarn) {
  auto c = compile(gnn::make_pgnn(1, 3, 4, 2, 1), tiny_dataset(1));
  ASSERT_EQ(c.prog.phases[0].walk_len, 1U);
  ASSERT_FALSE(c.prog.phases[0].expected_contribs.empty());
  c.prog.phases[0].expected_contribs[0] += 5;
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_TRUE(r.has(LintCode::kUnusedExpectedContribs)) << r.to_string();
}

TEST(Verify, WeightsWithoutDnaWarn) {
  auto c = gcn();
  c.prog.phases[0].dna_shapes.clear();
  c.prog.phases[0].dna_out_words = 0;
  // agg_width (6) now lands directly in the output buffer.
  c.prog.phases[0].output.width_words = 6;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kWeightsWithoutDna)) << r.to_string();
}

TEST(Verify, OutputClobberingPreloadWarns) {
  auto c = gcn();
  for (RegionId id = 0; id < c.prog.memmap.num_regions(); ++id) {
    if (c.prog.memmap.region(id).name == "input") {
      c.prog.phases[0].output.region = id;
    }
  }
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kOutputClobbersPreload)) << r.to_string();
}

// ---- GV011: malformed graph-layout tables ----

TEST(Verify, EmptyGraphLayoutTableIsError) {
  auto c = gcn();
  c.prog.graphs.clear();
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kBadGraphLayout)) << r.to_string();
}

TEST(Verify, NonContiguousLayoutOffsetsAreError) {
  auto c = gcn();
  c.prog.graphs[0].node_offset = 7;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadGraphLayout)) << r.to_string();
}

TEST(Verify, UndersizedRowPtrRegionIsError) {
  auto c = gcn();
  // Claim more vertices than the rowptr region (and dataset) hold.
  c.prog.graphs[0].num_nodes += 100;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.has(LintCode::kBadGraphLayout)) << r.to_string();
}

// ---- GV012: layout table vs the bound dataset ----

TEST(Verify, LayoutDatasetEdgeCountMismatchIsError) {
  auto c = gcn();
  // Shrink the claimed edge count: the topology regions still cover it,
  // so only the dataset comparison can catch the lie.
  c.prog.graphs[0].num_edges -= 2;
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.has(LintCode::kDatasetMismatch)) << r.to_string();
}

TEST(Verify, LayoutGraphCountMismatchIsError) {
  auto c = gcn();
  c.prog.graphs.push_back(c.prog.graphs[0]);  // one more than the dataset
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_TRUE(r.has(LintCode::kDatasetMismatch)) << r.to_string();
}

// ---- GV107: no dataset bound ----

TEST(Verify, NoDatasetBoundWarnsOnce) {
  const auto c = gcn();
  const VerifyReport r = verify_program(c.prog, TileParams{});
  EXPECT_TRUE(r.ok()) << r.to_string();  // warning only
  EXPECT_TRUE(r.has(LintCode::kNoDatasetBound)) << r.to_string();
  std::size_t n = 0;
  for (const auto& d : r.diagnostics) {
    if (d.code == LintCode::kNoDatasetBound) ++n;
  }
  EXPECT_EQ(n, 1U);
}

// ---- GV108: NoC bisection saturation ----

TEST(Verify, OverprovisionedMemorySaturatesBisectionWarning) {
  const auto c = gcn();
  // gpu-iso-bw but with each memory node cranked to 400 GB/s: the
  // aggregate stream (8 nodes) would push ~half its bytes across the mesh
  // bisection, which the 4x4 mesh's 512 B/cycle cut cannot carry.
  AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  cfg.mem_params.bandwidth = Bandwidth::gb_per_s(400.0);
  const VerifyReport r =
      verify_program(c.prog, TileParams{}, c.ds.get(), &cfg);
  EXPECT_TRUE(r.ok()) << r.to_string();  // warning, not an error
  EXPECT_TRUE(r.has(LintCode::kNocBisectionSaturated)) << r.to_string();
  std::size_t n = 0;
  for (const auto& d : r.diagnostics) {
    if (d.code == LintCode::kNocBisectionSaturated) {
      ++n;
      EXPECT_EQ(d.severity, Severity::kWarning);
      EXPECT_GE(d.phase, 0);  // attributed to a concrete phase
    }
  }
  // One warning per phase that actually moves bytes.
  EXPECT_GE(n, 1U);
}

TEST(Verify, SkinnyMeshLowersTheBisectionBound) {
  const auto c = gcn();
  // Same memory system, but a 16x1 chain has a single-link bisection
  // (min(W,H) = 1 -> 128 B/cycle); a moderate 200 GB/s per node already
  // overwhelms it.
  AcceleratorConfig cfg = AcceleratorConfig::gpu_iso_bw();
  cfg.mesh_width = 16;
  cfg.mesh_height = 1;
  cfg.mem_params.bandwidth = Bandwidth::gb_per_s(200.0);
  const VerifyReport r =
      verify_program(c.prog, TileParams{}, c.ds.get(), &cfg);
  EXPECT_TRUE(r.has(LintCode::kNocBisectionSaturated)) << r.to_string();
}

TEST(Verify, ShippedConfigsDoNotSaturateBisection) {
  const auto c = gcn();
  for (const AcceleratorConfig& cfg :
       {AcceleratorConfig::cpu_iso_bw(), AcceleratorConfig::gpu_iso_bw(),
        AcceleratorConfig::gpu_iso_flops()}) {
    const VerifyReport r =
        verify_program(c.prog, TileParams{}, c.ds.get(), &cfg);
    EXPECT_FALSE(r.has(LintCode::kNocBisectionSaturated))
        << cfg.name << ":\n" << r.to_string();
  }
}

TEST(Verify, NoConfigSkipsBisectionCheck) {
  const auto c = gcn();
  const VerifyReport r = verify_program(c.prog, TileParams{}, c.ds.get());
  EXPECT_FALSE(r.has(LintCode::kNocBisectionSaturated));
}

// ---- report plumbing ----

TEST(Verify, VerifyOrThrowCarriesTheReport) {
  auto c = gcn();
  c.prog.phases[0].agg_op = ReduceOp::kMean;
  try {
    (void)verify_or_throw(c.prog, TileParams{});
    FAIL() << "expected ProgramVerifyError";
  } catch (const ProgramVerifyError& e) {
    EXPECT_TRUE(e.report().has(LintCode::kNonAssociativeAggOp));
    EXPECT_NE(std::string(e.what()).find("GV003"), std::string::npos);
  }
}

TEST(Verify, WarningsDoNotThrow) {
  const auto c = gcn();
  TileParams params;
  params.agg_data_bytes = 44;
  const VerifyReport r = verify_or_throw(c.prog, params);
  EXPECT_EQ(r.num_errors(), 0U);
  EXPECT_GE(r.num_warnings(), 1U);
}

TEST(Verify, ReportPrintsCodeAndPhaseProvenance) {
  auto c = gcn();
  c.prog.phases[1].agg_op = ReduceOp::kMean;
  const VerifyReport r = verify_program(c.prog, TileParams{});
  std::ostringstream os;
  r.print(os);
  EXPECT_NE(os.str().find("GV003"), std::string::npos) << os.str();
  EXPECT_NE(os.str().find("phase 1"), std::string::npos) << os.str();
}

TEST(Verify, LintCodeTableIsCompleteAndStable) {
  const auto table = lint_code_table();
  EXPECT_EQ(table.size(), 20U);
  EXPECT_STREQ(lint_code_name(LintCode::kDnqEntryTooLarge), "GV001");
  EXPECT_STREQ(lint_code_name(LintCode::kOutputClobbersPreload), "GV106");
  EXPECT_STREQ(lint_code_name(LintCode::kNocBisectionSaturated), "GV108");
  for (const auto& e : table) {
    EXPECT_EQ(e.severity, lint_code_severity(e.code));
  }
}

// ---- MemoryMap hardening (satellite) ----

TEST(MemoryMap, AddRegionGuardsAddrOverflow) {
  MemoryMap mm;
  (void)mm.add_region("a", 64);
  EXPECT_THROW((void)mm.add_region("huge", ~std::uint64_t{0} - 32),
               std::overflow_error);
  // The failed request must not have disturbed the cursor.
  const RegionId ok = mm.add_region("b", 64);
  EXPECT_EQ(mm.region(ok).base, 64U);
}

TEST(MemoryMap, AddRegionAtGuardsAddrOverflow) {
  MemoryMap mm;
  EXPECT_THROW(
      (void)mm.add_region_at("wrap", ~std::uint64_t{0} - 100, 200),
      std::overflow_error);
}

}  // namespace
}  // namespace gnna::accel
