// GNNA-IR (accel/ir): the serialize/parse round-trip must be byte-exact
// for every shipped benchmark, content hashes must be stable, parse errors
// must carry line numbers, and the checked-in golden .gnna files must both
// match the compiler's current output and simulate bit-identically after a
// reload (GCN/Cora pins the 2871294-cycle golden).
#include "accel/ir.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "accel/compiler.hpp"
#include "accel/simulator.hpp"
#include "accel/verify.hpp"
#include "gnn/model.hpp"
#include "sim/session.hpp"

#ifndef GNNA_SOURCE_DIR
#define GNNA_SOURCE_DIR "."
#endif

namespace gnna::accel {
namespace {

std::string golden_path(const std::string& file) {
  return std::string(GNNA_SOURCE_DIR) + "/tests/data/golden/" + file;
}

struct GoldenEntry {
  gnn::Benchmark benchmark;
  const char* file;
};

constexpr GoldenEntry kGoldens[] = {
    {gnn::Benchmark::kGcnCora, "gcn_cora.gnna"},
    {gnn::Benchmark::kGcnCiteseer, "gcn_citeseer.gnna"},
    {gnn::Benchmark::kGcnPubmed, "gcn_pubmed.gnna"},
    {gnn::Benchmark::kGatCora, "gat_cora.gnna"},
    {gnn::Benchmark::kMpnnQm9, "mpnn_qm9_1000.gnna"},
    {gnn::Benchmark::kPgnnDblp, "pgnn_dblp_1.gnna"},
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---- round-trip ----

TEST(Ir, RoundTripIsByteExactForAllBenchmarks) {
  sim::Session& session = sim::Session::global();
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    sim::RunRequest req;
    req.benchmark = b;
    const auto resolved = session.resolve(req);
    const std::string text = ir::serialize(*resolved.program);
    const CompiledProgram reparsed = ir::parse(text, gnn::benchmark_name(b));
    EXPECT_EQ(ir::serialize(reparsed), text) << gnn::benchmark_name(b);
    EXPECT_EQ(ir::content_hash(reparsed), ir::content_hash(*resolved.program))
        << gnn::benchmark_name(b);
  }
}

TEST(Ir, ParsePreservesEveryProgramField) {
  sim::Session& session = sim::Session::global();
  sim::RunRequest req;
  req.benchmark = gnn::Benchmark::kGatCora;
  const auto resolved = session.resolve(req);
  const CompiledProgram& a = *resolved.program;
  const CompiledProgram b = ir::parse(ir::serialize(a), "gat");

  EXPECT_EQ(b.name, a.name);
  ASSERT_EQ(b.memmap.num_regions(), a.memmap.num_regions());
  EXPECT_EQ(b.memmap.total_bytes(), a.memmap.total_bytes());
  for (RegionId r = 0; r < a.memmap.num_regions(); ++r) {
    EXPECT_EQ(b.memmap.region(r).name, a.memmap.region(r).name);
    EXPECT_EQ(b.memmap.region(r).base, a.memmap.region(r).base);
    EXPECT_EQ(b.memmap.region(r).bytes, a.memmap.region(r).bytes);
    EXPECT_EQ(b.memmap.region(r).preloaded, a.memmap.region(r).preloaded);
  }
  ASSERT_EQ(b.graphs.size(), a.graphs.size());
  EXPECT_EQ(b.total_vertices(), a.total_vertices());
  ASSERT_EQ(b.phases.size(), a.phases.size());
  for (std::size_t i = 0; i < a.phases.size(); ++i) {
    const PhaseSpec& pa = a.phases[i];
    const PhaseSpec& pb = b.phases[i];
    EXPECT_EQ(pb.name, pa.name);
    EXPECT_EQ(pb.kind, pa.kind);
    EXPECT_EQ(pb.gather.region, pa.gather.region);
    EXPECT_EQ(pb.gather.width_words, pa.gather.width_words);
    EXPECT_EQ(pb.include_self, pa.include_self);
    EXPECT_EQ(pb.weighted_edges, pa.weighted_edges);
    EXPECT_EQ(pb.dna_shapes.size(), pa.dna_shapes.size());
    EXPECT_EQ(pb.dna_out_words, pa.dna_out_words);
    EXPECT_EQ(pb.agg_width_words, pa.agg_width_words);
    EXPECT_EQ(pb.agg_op, pa.agg_op);
    EXPECT_EQ(pb.output.region, pa.output.region);
    EXPECT_EQ(pb.output.width_words, pa.output.width_words);
    EXPECT_EQ(pb.weight_bytes, pa.weight_bytes);
    EXPECT_EQ(pb.weight_region, pa.weight_region);
    EXPECT_EQ(pb.expected_contribs, pa.expected_contribs);
  }
}

TEST(Ir, RoundTrippedProgramVerifiesCleanAgainstDataset) {
  sim::Session& session = sim::Session::global();
  sim::RunRequest req;
  req.benchmark = gnn::Benchmark::kGcnCora;
  const auto resolved = session.resolve(req);
  const CompiledProgram reparsed =
      ir::parse(ir::serialize(*resolved.program), "roundtrip");
  const VerifyReport r =
      verify_program(reparsed, TileParams{}, resolved.dataset.get());
  EXPECT_TRUE(r.diagnostics.empty()) << r.to_string();
}

// ---- hashing ----

TEST(Ir, HashIsFnv1a64) {
  // Pin the exact hash function: a changed algorithm would silently
  // invalidate every cache key and golden hash.
  EXPECT_EQ(ir::hash_text(""), 14695981039346656037ULL);
  EXPECT_EQ(ir::hash_text("a"), 12638187200555641996ULL);
}

TEST(Ir, HashChangesWhenProgramChanges) {
  sim::Session& session = sim::Session::global();
  sim::RunRequest req;
  req.benchmark = gnn::Benchmark::kGcnCora;
  const auto resolved = session.resolve(req);
  CompiledProgram mutated = *resolved.program;
  mutated.phases[0].dna_out_words += 1;
  EXPECT_NE(ir::content_hash(mutated), ir::content_hash(*resolved.program));
}

// ---- hand-written programs ----

TEST(Ir, AcceptsCommentsReorderedFieldsAndOmittedScalars) {
  const std::string text =
      "# hand-written program\n"
      "gnna-ir 1\n"
      "\n"
      "program \"hand\"\n"
      "region 0 \"buf\" base=0 bytes=64 preloaded=1  # the only region\n"
      "graph 0 rowptr=0 colidx=0 nodes=4 edges=6 node_offset=0 "
      "edge_offset=0\n"
      "phase 0 \"p\" {\n"
      "  output region=0 width=2\n"  // fields in non-canonical order
      "  dna_out_words 2\n"
      "  kind project\n"
      "}\n"
      "end\n";
  const CompiledProgram prog = ir::parse(text, "hand");
  EXPECT_EQ(prog.name, "hand");
  ASSERT_EQ(prog.phases.size(), 1U);
  EXPECT_EQ(prog.phases[0].kind, PhaseKind::kProject);
  EXPECT_EQ(prog.phases[0].dna_out_words, 2U);
  // Omitted scalars keep PhaseSpec defaults.
  EXPECT_EQ(prog.phases[0].walk_len, PhaseSpec{}.walk_len);
  EXPECT_EQ(prog.phases[0].agg_op, PhaseSpec{}.agg_op);
  // And the canonical form round-trips from here on.
  const std::string canon = ir::serialize(prog);
  EXPECT_EQ(ir::serialize(ir::parse(canon, "canon")), canon);
}

TEST(Ir, QuotedNamesWithEscapesRoundTrip) {
  sim::Session& session = sim::Session::global();
  sim::RunRequest req;
  req.benchmark = gnn::Benchmark::kGcnCora;
  const auto resolved = session.resolve(req);
  CompiledProgram prog = *resolved.program;
  prog.name = "weird \"name\" with \\ backslash";
  const CompiledProgram back = ir::parse(ir::serialize(prog), "esc");
  EXPECT_EQ(back.name, prog.name);
}

// ---- parse errors ----

void expect_parse_error(const std::string& text, std::size_t line,
                        const std::string& fragment) {
  try {
    (void)ir::parse(text, "bad");
    FAIL() << "expected IrParseError for: " << fragment;
  } catch (const ir::IrParseError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("bad:"), std::string::npos)
        << "message must carry the source name: " << e.what();
  }
}

TEST(Ir, ParseErrorsCarrySourceAndLine) {
  expect_parse_error("", 1, "empty input");
  expect_parse_error("gnna-ir 99\nend\n", 1, "unsupported gnna-ir version");
  expect_parse_error("bogus header\n", 1, "expected header");
  expect_parse_error("gnna-ir 1\nprogram \"x\"\nfrob 1\nend\n", 3,
                     "unknown directive");
  expect_parse_error(
      "gnna-ir 1\nprogram \"x\"\nregion 5 \"r\" base=0 bytes=64 "
      "preloaded=0\nend\n",
      3, "sequential");
  expect_parse_error("gnna-ir 1\nprogram \"x\"\n", 2, "missing 'end'");
  expect_parse_error("gnna-ir 1\nend\n", 2, "missing 'program'");
  expect_parse_error("gnna-ir 1\nprogram \"x\"\nend\nextra\n", 4,
                     "content after 'end'");
  expect_parse_error(
      "gnna-ir 1\nprogram \"x\"\nphase 0 \"p\" {\n  kind project\n  kind "
      "project\n}\nend\n",
      5, "duplicate phase field");
  expect_parse_error(
      "gnna-ir 1\nprogram \"x\"\nphase 0 \"p\" {\n  sprocket 3\n}\nend\n", 4,
      "unknown phase field");
  expect_parse_error("gnna-ir 1\nprogram \"x\"\nphase 0 \"p\" {\n", 3,
                     "end of file inside phase block");
  expect_parse_error(
      "gnna-ir 1\nprogram \"x\"\nregion 0 \"r\" base=-4 bytes=64 "
      "preloaded=0\nend\n",
      3, "bad unsigned integer");
  expect_parse_error("gnna-ir 1\nprogram \"unterminated\n", 2,
                     "unterminated quoted string");
}

// ---- golden files ----

TEST(Ir, GoldenFilesMatchCompilerOutputByteExactly) {
  sim::Session& session = sim::Session::global();
  for (const GoldenEntry& g : kGoldens) {
    sim::RunRequest req;
    req.benchmark = g.benchmark;
    const auto resolved = session.resolve(req);
    EXPECT_EQ(read_file(golden_path(g.file)),
              ir::serialize(*resolved.program))
        << g.file << " is stale: regenerate with gnnasim --benchmark "
        << gnn::benchmark_name(g.benchmark) << " --emit-program " << g.file;
  }
}

TEST(Ir, GoldenFilesRoundTripThroughLoadAndSave) {
  for (const GoldenEntry& g : kGoldens) {
    const std::string path = golden_path(g.file);
    const CompiledProgram prog = ir::load_file(path);
    EXPECT_EQ(ir::serialize(prog), read_file(path)) << g.file;
    const std::string tmp = ::testing::TempDir() + "resaved.gnna";
    ir::save_file(prog, tmp);
    EXPECT_EQ(read_file(tmp), read_file(path)) << g.file;
  }
}

TEST(Ir, ReloadedGoldenSimulatesBitIdentically) {
  // The pinned GCN/Cora golden: a program that went disk -> parse must
  // produce the exact cycle count the compiled program produces
  // (tests/accel/test_golden.cpp pins the same constant).
  const CompiledProgram prog = ir::load_file(golden_path("gcn_cora.gnna"));
  sim::Session& session = sim::Session::global();
  const auto ds = session.dataset(
      gnn::benchmark_dataset(gnn::Benchmark::kGcnCora), 2020);
  AcceleratorSim sim(AcceleratorConfig::cpu_iso_bw());
  EXPECT_EQ(sim.run(prog, *ds).cycles, 2871294U);
}

TEST(Ir, LoadFileRejectsMissingPath) {
  EXPECT_THROW((void)ir::load_file("/nonexistent/prog.gnna"),
               std::runtime_error);
}

}  // namespace
}  // namespace gnna::accel
