#include "accel/energy.hpp"

#include <gtest/gtest.h>

#include "accel/compiler.hpp"
#include "common/rng.hpp"
#include "gnn/model.hpp"
#include "graph/generator.hpp"

namespace gnna::accel {
namespace {

RunStats synthetic_run() {
  RunStats rs;
  rs.seconds = 1e-3;
  rs.mem_bytes_served = 1'000'000;
  rs.mem_bytes_requested = 600'000;
  rs.noc_flit_hops = 10'000;
  rs.noc_flits_delivered = 5'000;
  rs.dna_macs = 1'000'000;
  rs.agg_words_reduced = 100'000;
  rs.dnq_words = 50'000;
  rs.gpe_actions = 20'000;
  return rs;
}

TEST(Energy, ComponentsComputedFromCounters) {
  const RunStats rs = synthetic_run();
  const AcceleratorConfig cfg = AcceleratorConfig::cpu_iso_bw();
  EnergyModel m;
  const EnergyBreakdown e = estimate_energy(rs, cfg, m);
  EXPECT_NEAR(e.dram_uj, 1e6 * m.pj_per_dram_byte * 1e-6, 1e-9);
  EXPECT_NEAR(e.dna_uj, 1e6 * m.pj_per_mac * 1e-6, 1e-9);
  EXPECT_NEAR(e.agg_uj, 1e5 * m.pj_per_agg_word * 1e-6, 1e-9);
  EXPECT_GT(e.noc_uj, 0.0);
  EXPECT_GT(e.leakage_uj, 0.0);
  EXPECT_NEAR(e.total_uj(), e.dram_uj + e.noc_uj + e.dna_uj + e.agg_uj +
                                e.dnq_uj + e.gpe_uj + e.leakage_uj,
              1e-12);
}

TEST(Energy, DramWasteFraction) {
  const RunStats rs = synthetic_run();
  const EnergyBreakdown e =
      estimate_energy(rs, AcceleratorConfig::cpu_iso_bw());
  EXPECT_NEAR(e.dram_waste_fraction, 0.4, 1e-9);
}

TEST(Energy, NoTrafficNoWaste) {
  RunStats rs;
  const EnergyBreakdown e =
      estimate_energy(rs, AcceleratorConfig::cpu_iso_bw());
  EXPECT_DOUBLE_EQ(e.dram_waste_fraction, 0.0);
  EXPECT_DOUBLE_EQ(e.dram_uj, 0.0);
}

TEST(Energy, LeakageScalesWithTilesAndTime) {
  RunStats rs;
  rs.seconds = 2e-3;
  const double one =
      estimate_energy(rs, AcceleratorConfig::cpu_iso_bw()).leakage_uj;
  const double sixteen =
      estimate_energy(rs, AcceleratorConfig::gpu_iso_flops()).leakage_uj;
  EXPECT_NEAR(sixteen, 16.0 * one, 1e-9);
}

TEST(Energy, ZeroCoefficientsZeroEnergy) {
  const RunStats rs = synthetic_run();
  EnergyModel m;
  m = EnergyModel{0, 0, 0, 0, 0, 0, 0, 0};
  const EnergyBreakdown e =
      estimate_energy(rs, AcceleratorConfig::cpu_iso_bw(), m);
  EXPECT_DOUBLE_EQ(e.total_uj(), 0.0);
}

TEST(Energy, EndToEndCountersArePopulated) {
  // A real simulation must produce non-zero activity in every component.
  Rng rng(3);
  graph::Dataset ds;
  ds.spec = {"e", 1, 30, 80, 8, 0, 3};
  ds.graphs.push_back(graph::generate_random_graph(rng, 30, 80));
  ds.undirected.push_back(ds.graphs[0].symmetrized());
  ds.node_features.emplace_back(240, 0.5F);
  ds.edge_features.emplace_back();
  const auto prog =
      ProgramCompiler{}.compile(gnn::make_gcn(8, 3, 4), ds);
  AcceleratorSim sim(AcceleratorConfig::cpu_iso_bw());
  const RunStats rs = sim.run(prog, ds);
  EXPECT_GT(rs.dna_macs, 0U);
  EXPECT_GT(rs.agg_words_reduced, 0U);
  EXPECT_GT(rs.dnq_words, 0U);
  EXPECT_GT(rs.gpe_actions, 0U);
  EXPECT_GT(rs.noc_flit_hops, 0U);
  const EnergyBreakdown e =
      estimate_energy(rs, AcceleratorConfig::cpu_iso_bw());
  EXPECT_GT(e.total_uj(), 0.0);
  // DNA MACs must match the model's static work (macs per entry x entries).
  const std::uint64_t expected_macs =
      (8ULL * 4 * 30) + (4ULL * 3 * 30);  // layer1 + layer2 projections
  EXPECT_EQ(rs.dna_macs, expected_macs);
}

}  // namespace
}  // namespace gnna::accel
