// Golden regression pins: exact cycle counts for one benchmark per model
// family on the CPU iso-BW configuration. These are the numbers
// EXPERIMENTS.md quotes; any change to the timing model shows up here
// first. Update the constants deliberately when the model changes.
#include <gtest/gtest.h>

#include "accel/runner.hpp"

namespace gnna::accel {
namespace {

TEST(Golden, GcnCoraCpuIsoBw) {
  const RunStats rs = simulate_benchmark(gnn::Benchmark::kGcnCora,
                                         AcceleratorConfig::cpu_iso_bw());
  // Re-pinned when memory writes started occupying in-order queue slots
  // (previously 2871286: write completion was not part of idle()).
  EXPECT_EQ(rs.cycles, 2871294U);
  EXPECT_EQ(rs.tasks_completed, 2U * 2708U);
}

TEST(Golden, GatCoraCpuIsoBw) {
  const RunStats rs = simulate_benchmark(gnn::Benchmark::kGatCora,
                                         AcceleratorConfig::cpu_iso_bw());
  // Re-pinned for the crossbar arbitration fixes: one flit per input per
  // cycle, and the round-robin pointer no longer rotates past an input
  // whose grant stalled on credits (previously 1775055). GCN/Cora above
  // is contention-light enough that its pin did not move.
  EXPECT_EQ(rs.cycles, 1775046U);
  // 18.39x over the paper's 13.60 ms CPU baseline (the headline claim).
  EXPECT_NEAR(13.60 / rs.millis, 18.39, 0.05);
}

}  // namespace
}  // namespace gnna::accel
