#include "common/units.hpp"

#include <gtest/gtest.h>

namespace gnna {
namespace {

TEST(Frequency, GigaHertzRoundTrip) {
  const Frequency f = Frequency::giga_hertz(2.4);
  EXPECT_DOUBLE_EQ(f.ghz(), 2.4);
  EXPECT_DOUBLE_EQ(f.hz(), 2.4e9);
}

TEST(Frequency, CyclesToSeconds) {
  const Frequency f = Frequency::giga_hertz(1.0);
  EXPECT_DOUBLE_EQ(f.cycles_to_seconds(1e9), 1.0);
  EXPECT_DOUBLE_EQ(f.cycles_to_millis(1e6), 1.0);
}

TEST(Frequency, SecondsToCyclesRoundsUp) {
  const Frequency f = Frequency::giga_hertz(1.0);
  EXPECT_EQ(f.seconds_to_cycles(1e-9), 1U);
  EXPECT_EQ(f.seconds_to_cycles(1.5e-9), 2U);
  EXPECT_EQ(f.seconds_to_cycles(0.0), 0U);
}

TEST(Frequency, NanosToCycles) {
  const Frequency f = Frequency::giga_hertz(2.4);
  // 20 ns at 2.4 GHz = 48 cycles.
  EXPECT_EQ(f.nanos_to_cycles(20.0), 48U);
}

TEST(Bandwidth, GbPerS) {
  const Bandwidth b = Bandwidth::gb_per_s(68.0);
  EXPECT_DOUBLE_EQ(b.gbps(), 68.0);
  EXPECT_DOUBLE_EQ(b.bytes_per_second(), 68e9);
}

TEST(Bandwidth, BytesPerCycle) {
  const Bandwidth b = Bandwidth::gb_per_s(68.0);
  const Frequency f = Frequency::giga_hertz(2.4);
  EXPECT_NEAR(b.bytes_per_cycle(f), 68.0 / 2.4, 1e-9);
}

TEST(Bandwidth, SecondsFor) {
  const Bandwidth b = Bandwidth::gb_per_s(1.0);
  EXPECT_DOUBLE_EQ(b.seconds_for(1e9), 1.0);
}

TEST(Units, RoundUpToLine) {
  EXPECT_EQ(round_up_to_line(0), 0U);
  EXPECT_EQ(round_up_to_line(1), 64U);
  EXPECT_EQ(round_up_to_line(64), 64U);
  EXPECT_EQ(round_up_to_line(65), 128U);
  EXPECT_EQ(round_up_to_line(2000), 2048U);
}

TEST(Units, FlitsForBytes) {
  EXPECT_EQ(flits_for_bytes(0), 0U);
  EXPECT_EQ(flits_for_bytes(1), 1U);
  EXPECT_EQ(flits_for_bytes(64), 1U);
  EXPECT_EQ(flits_for_bytes(65), 2U);
  EXPECT_EQ(flits_for_bytes(2000), 32U);  // Pubmed feature vector
}

TEST(Units, Constants) {
  EXPECT_EQ(kFlitBytes, 64U);
  EXPECT_EQ(kWordBytes, 4U);
  EXPECT_EQ(kKiB, 1024U);
  EXPECT_EQ(kMiB, 1024U * 1024U);
}

}  // namespace
}  // namespace gnna
