#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace gnna {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0U);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5U);
  c.reset();
  EXPECT_EQ(c.value(), 0U);
}

TEST(Accumulator, EmptyIsSafe) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0U);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, MeanMinMax) {
  Accumulator a;
  for (double x : {3.0, 1.0, 2.0}) a.add(x);
  EXPECT_EQ(a.count(), 3U);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
  EXPECT_DOUBLE_EQ(a.sum(), 6.0);
}

TEST(Accumulator, Stddev) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_NEAR(a.stddev(), 2.138, 0.001);  // sample stddev
}

TEST(Accumulator, SingleSampleStddevZero) {
  Accumulator a;
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, StddevStableUnderLargeOffset) {
  // Regression: the old sum-of-squares formula cancels catastrophically
  // when mean >> stddev (e.g. cycle timestamps around 1e9). Welford's
  // update must recover stddev = 1 to several digits; the naive formula
  // gets 0 or worse (sqrt of a negative difference clamped).
  Accumulator a;
  const double offset = 1e9;
  // 1000 samples alternating offset ± 1: mean = offset, sample var ≈ 1.
  for (int i = 0; i < 1000; ++i) a.add(offset + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(a.mean(), offset, 1e-6);
  EXPECT_NEAR(a.stddev(), 1.0, 1e-3);
}

TEST(Accumulator, AddIsExactlyUnitWeight) {
  // add(x) must stay bit-identical to add_weighted(x, 1.0): golden cycle
  // pins depend on the unweighted path not changing.
  Accumulator a;
  Accumulator b;
  for (double x : {3.0, 1.0, 1e9, -2.5, 0.0}) {
    a.add(x);
    b.add_weighted(x, 1.0);
  }
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.stddev(), b.stddev());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.weight(), static_cast<double>(a.count()));
}

TEST(Accumulator, WeightedMeanIsWeightDenominated) {
  // Three cycles at depth 1, one cycle at depth 5: the time-weighted mean
  // is 2.0, not the change-weighted (1+5)/2 = 3.
  Accumulator a;
  a.add_weighted(1.0, 3.0);
  a.add_weighted(5.0, 1.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
  EXPECT_DOUBLE_EQ(a.weight(), 4.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, ZeroWeightSampleOnlyUpdatesExtrema) {
  Accumulator a;
  a.add_weighted(2.0, 10.0);
  a.add_weighted(7.0, 0.0);  // records the extremum, accrues no time
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
  EXPECT_DOUBLE_EQ(a.weight(), 10.0);
  EXPECT_EQ(a.count(), 2U);
}

TEST(Accumulator, StddevMatchesBruteForce) {
  // Cross-check Welford against the two-pass definition on a spread-out
  // sample set with a large common offset.
  std::vector<double> xs;
  double sum = 0.0;
  for (int i = 0; i < 257; ++i) {
    xs.push_back(5e8 + 1000.0 * std::sin(0.7 * i) + i);
    sum += xs.back();
  }
  const double mean = sum / static_cast<double>(xs.size());
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - mean) * (x - mean);
  const double expected =
      std::sqrt(m2 / (static_cast<double>(xs.size()) - 1.0));

  Accumulator a;
  for (const double x : xs) a.add(x);
  EXPECT_NEAR(a.stddev(), expected, expected * 1e-9);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(10.0, 5);
  h.add(0.0);
  h.add(9.9);
  h.add(10.0);
  h.add(49.9);
  h.add(1000.0);  // overflow bucket
  EXPECT_EQ(h.bucket(0), 2U);
  EXPECT_EQ(h.bucket(1), 1U);
  EXPECT_EQ(h.bucket(4), 1U);
  EXPECT_EQ(h.bucket(5), 1U);
  EXPECT_EQ(h.accumulator().count(), 5U);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(1.0, 10);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, MedianOfUniformFill) {
  Histogram h(1.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(BusyTracker, Utilization) {
  BusyTracker b;
  for (int i = 0; i < 10; ++i) b.tick(i < 3);
  EXPECT_EQ(b.busy_cycles(), 3U);
  EXPECT_EQ(b.total_cycles(), 10U);
  EXPECT_DOUBLE_EQ(b.utilization(), 0.3);
}

TEST(BusyTracker, EmptyUtilizationZero) {
  BusyTracker b;
  EXPECT_DOUBLE_EQ(b.utilization(), 0.0);
}

}  // namespace
}  // namespace gnna
