#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace gnna {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng r(7);
  EXPECT_EQ(r.next_below(0), 0U);
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(9);
  for (int i = 0; i < 500; ++i) {
    const auto v = r.next_in(5, 9);
    EXPECT_GE(v, 5U);
    EXPECT_LE(v, 9U);
  }
}

TEST(Rng, NextInHitsBothEndpoints) {
  Rng r(11);
  bool lo = false;
  bool hi = false;
  for (int i = 0; i < 2000 && !(lo && hi); ++i) {
    const auto v = r.next_in(3, 6);
    lo |= (v == 3);
    hi |= (v == 6);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 2000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, FloatRangeRespected) {
  Rng r(19);
  for (int i = 0; i < 1000; ++i) {
    const float f = r.next_float(-2.5F, 3.5F);
    EXPECT_GE(f, -2.5F);
    EXPECT_LT(f, 3.5F);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng r(29);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ZipfStaysInRange) {
  Rng r(31);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(r.next_zipf(100, 0.9), 100U);
}

TEST(Rng, ZipfSingletonSupport) {
  Rng r(31);
  EXPECT_EQ(r.next_zipf(1, 0.9), 0U);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks) {
  Rng r(37);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) low += (r.next_zipf(1000, 1.0) < 100);
  // With alpha=1, the first decile should hold far more than 10% of mass.
  EXPECT_GT(low, n / 4);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(41);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Rng base1(43);
  Rng base2(43);
  Rng a = base1.fork(5);
  Rng b = base2.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMix64KnownExpansion) {
  // The same state always expands identically (regression pin).
  std::uint64_t s1 = 123;
  std::uint64_t s2 = 123;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

/// Uniformity sweep: chi-square-ish bucket check over several bounds.
class RngUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngUniformity, BucketsRoughlyEven) {
  const std::uint64_t buckets = GetParam();
  Rng r(buckets * 7919 + 1);
  std::vector<int> counts(buckets, 0);
  const int n = 4000 * static_cast<int>(buckets);
  for (int i = 0; i < n; ++i) ++counts[r.next_below(buckets)];
  const double expect = static_cast<double>(n) / buckets;
  for (std::uint64_t b = 0; b < buckets; ++b) {
    EXPECT_NEAR(counts[b], expect, expect * 0.15) << "bucket " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngUniformity,
                         ::testing::Values(2, 3, 7, 10, 16, 33));

}  // namespace
}  // namespace gnna
