#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace gnna {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"A", "LongHeader"});
  t.add_row({"xxxxxx", "1"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  // Header and data rows share the same width.
  const auto first_line_len = out.find('\n');
  std::size_t pos = 0;
  std::size_t lines = 0;
  while (pos < out.size()) {
    const auto next = out.find('\n', pos);
    EXPECT_EQ(next - pos, first_line_len) << "ragged line " << lines;
    pos = next + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 5U);  // rule, header, rule, row, rule
}

TEST(Table, HandlesShortRows) {
  Table t({"A", "B", "C"});
  t.add_row({"1"});
  std::ostringstream ss;
  t.print(ss);
  EXPECT_NE(ss.str().find("| 1 |"), std::string::npos);
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table t({"OnlyHeader"});
  std::ostringstream ss;
  t.print(ss);
  EXPECT_NE(ss.str().find("OnlyHeader"), std::string::npos);
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Format, Speedup) { EXPECT_EQ(format_speedup(2.5), "2.50x"); }

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.5), "50.0%");
  EXPECT_EQ(format_percent(0.999), "99.9%");
  EXPECT_EQ(format_percent(0.0), "0.0%");
}

}  // namespace
}  // namespace gnna
