#include "common/fixed_point.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace gnna {
namespace {

TEST(Fixed32, IntConversion) {
  EXPECT_DOUBLE_EQ(Fixed32::from_int(5).to_double(), 5.0);
  EXPECT_DOUBLE_EQ(Fixed32::from_int(-3).to_double(), -3.0);
  EXPECT_DOUBLE_EQ(Fixed32{}.to_double(), 0.0);
}

TEST(Fixed32, DoubleConversionPrecision) {
  for (double v : {0.5, -0.25, 3.14159, -1000.125, 0.0000153}) {
    EXPECT_NEAR(Fixed32::from_double(v).to_double(), v, 1.0 / (1 << 16));
  }
}

TEST(Fixed32, Addition) {
  const Fixed32 a = Fixed32::from_double(1.5);
  const Fixed32 b = Fixed32::from_double(2.25);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
}

TEST(Fixed32, Subtraction) {
  const Fixed32 a = Fixed32::from_double(1.5);
  const Fixed32 b = Fixed32::from_double(2.25);
  EXPECT_DOUBLE_EQ((a - b).to_double(), -0.75);
}

TEST(Fixed32, Multiplication) {
  const Fixed32 a = Fixed32::from_double(1.5);
  const Fixed32 b = Fixed32::from_double(-2.0);
  EXPECT_NEAR((a * b).to_double(), -3.0, 1e-4);
}

TEST(Fixed32, AdditionSaturatesHigh) {
  const Fixed32 big = Fixed32::max_value();
  EXPECT_EQ(big + big, Fixed32::max_value());
}

TEST(Fixed32, SubtractionSaturatesLow) {
  const Fixed32 lo = Fixed32::min_value();
  EXPECT_EQ(lo - Fixed32::from_int(1), Fixed32::min_value());
}

TEST(Fixed32, Comparison) {
  EXPECT_LT(Fixed32::from_double(1.0), Fixed32::from_double(2.0));
  EXPECT_EQ(Fixed32::from_double(1.0), Fixed32::from_double(1.0));
  EXPECT_GT(Fixed32::from_int(0), Fixed32::from_int(-1));
}

TEST(ReduceOp, Identities) {
  const Fixed32 x = Fixed32::from_double(-7.25);
  for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kMax, ReduceOp::kMin}) {
    EXPECT_EQ(apply_reduce(op, reduce_identity(op), x), x)
        << static_cast<int>(op);
  }
}

TEST(ReduceOp, SemanticsMatchScalar) {
  const Fixed32 a = Fixed32::from_int(3);
  const Fixed32 b = Fixed32::from_int(-5);
  EXPECT_EQ(apply_reduce(ReduceOp::kSum, a, b), Fixed32::from_int(-2));
  EXPECT_EQ(apply_reduce(ReduceOp::kMax, a, b), a);
  EXPECT_EQ(apply_reduce(ReduceOp::kMin, a, b), b);
}

/// Property: the AGG's design premise — associative reductions are
/// order-independent — holds bit-exactly for every supported op (integer
/// fixed point, unlike float sums).
class ReduceOrderIndependence : public ::testing::TestWithParam<ReduceOp> {};

TEST_P(ReduceOrderIndependence, AnyPermutationSameResult) {
  const ReduceOp op = GetParam();
  Rng rng(static_cast<std::uint64_t>(op) + 99);
  std::vector<Fixed32> values;
  for (int i = 0; i < 64; ++i) {
    values.push_back(Fixed32::from_double(rng.next_float(-100.0F, 100.0F)));
  }
  auto reduce_all = [&](const std::vector<Fixed32>& xs) {
    Fixed32 acc = reduce_identity(op);
    for (const Fixed32 x : xs) acc = apply_reduce(op, acc, x);
    return acc;
  };
  const Fixed32 expected = reduce_all(values);
  for (int trial = 0; trial < 20; ++trial) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[rng.next_below(i)]);
    }
    EXPECT_EQ(reduce_all(values), expected) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, ReduceOrderIndependence,
                         ::testing::Values(ReduceOp::kSum, ReduceOp::kMax,
                                           ReduceOp::kMin));

TEST(ReduceOp, SumSaturationIsSticky) {
  // Saturating sums are not associative at the extremes; the AGG relies on
  // values staying in range. Document the boundary behaviour.
  const Fixed32 top = Fixed32::max_value();
  const Fixed32 one = Fixed32::from_int(1);
  EXPECT_EQ(apply_reduce(ReduceOp::kSum, top, one), top);
}

}  // namespace
}  // namespace gnna
