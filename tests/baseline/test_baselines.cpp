#include "baseline/baselines.hpp"
#include "baseline/dnn_accel_study.hpp"

#include <gtest/gtest.h>

#include "gnn/workload.hpp"
#include "graph/dataset.hpp"

namespace gnna::baseline {
namespace {

TEST(Table7, VerbatimPaperValues) {
  const auto rows = table7_reference();
  ASSERT_EQ(rows.size(), 6U);
  EXPECT_DOUBLE_EQ(table7_row(gnn::Benchmark::kGcnCora).cpu_ms, 3.50);
  EXPECT_DOUBLE_EQ(table7_row(gnn::Benchmark::kGcnCora).gpu_ms, 0.366);
  EXPECT_DOUBLE_EQ(table7_row(gnn::Benchmark::kGcnPubmed).cpu_ms, 30.11);
  EXPECT_DOUBLE_EQ(table7_row(gnn::Benchmark::kMpnnQm9).cpu_ms, 2716.00);
  EXPECT_DOUBLE_EQ(table7_row(gnn::Benchmark::kMpnnQm9).gpu_ms, 443.3);
  EXPECT_DOUBLE_EQ(table7_row(gnn::Benchmark::kPgnnDblp).gpu_ms, 7.50);
}

TEST(Table7, GpuAlwaysFasterThanCpu) {
  for (const auto& row : table7_reference()) {
    EXPECT_LT(row.gpu_ms, row.cpu_ms) << gnn::benchmark_name(row.benchmark);
  }
}

TEST(DeviceModels, SaneParameters) {
  const DeviceModel cpu = cpu_xeon_e5_2680v4();
  const DeviceModel gpu = gpu_titan_xp();
  EXPECT_GT(gpu.dense_gflops, cpu.dense_gflops);
  EXPECT_GT(gpu.mem_gbps, cpu.mem_gbps);
  EXPECT_LT(gpu.op_dispatch_ms, cpu.op_dispatch_ms);
}

TEST(DeviceModels, EstimateMonotonicInWork) {
  const DeviceModel cpu = cpu_xeon_e5_2680v4();
  gnn::WorkProfile small;
  small.layers.push_back({"l", 1'000'000, 0, 0, 1, 1000, 1000, 0, 0});
  gnn::WorkProfile big = small;
  big.layers[0].dense_macs *= 100;
  EXPECT_LT(estimate_latency_ms(cpu, small, 1.0),
            estimate_latency_ms(cpu, big, 1.0));
}

TEST(DeviceModels, InputDensityDiscountsFirstLayerOnly) {
  const DeviceModel cpu = cpu_xeon_e5_2680v4();
  gnn::WorkProfile wp;
  wp.layers.push_back({"l1", 1'000'000'000, 0, 0, 0, 0, 0, 0, 0});
  wp.layers.push_back({"l2", 1'000'000'000, 0, 0, 0, 0, 0, 0, 0});
  const double dense = estimate_latency_ms(cpu, wp, 1.0);
  const double sparse = estimate_latency_ms(cpu, wp, 0.01);
  EXPECT_LT(sparse, dense);
  EXPECT_GT(sparse, dense * 0.4);  // second layer still full price
}

TEST(DeviceModels, GpuBeatsCpuOnEveryBenchmark) {
  const DeviceModel cpu = cpu_xeon_e5_2680v4();
  const DeviceModel gpu = gpu_titan_xp();
  for (const gnn::Benchmark b : gnn::kAllBenchmarks) {
    const auto ds = graph::make_dataset(gnn::benchmark_dataset(b));
    const auto wp = gnn::profile_work(gnn::make_benchmark_model(b), ds);
    const double density = input_feature_density(gnn::benchmark_dataset(b));
    EXPECT_LT(estimate_latency_ms(gpu, wp, density),
              estimate_latency_ms(cpu, wp, density))
        << gnn::benchmark_name(b);
  }
}

TEST(DeviceModels, InputDensityValues) {
  EXPECT_LT(input_feature_density(graph::DatasetId::kCiteseer),
            input_feature_density(graph::DatasetId::kCora));
  EXPECT_DOUBLE_EQ(input_feature_density(graph::DatasetId::kQm9_1000), 1.0);
}

// ---- Section II study (Table II / Fig 2).

TEST(DnnAccelStudy, PubmedSparsityAsQuoted) {
  const DnnAccelResult r = run_dnn_accel_study(graph::DatasetId::kPubmed);
  // "Pubmed, at 99.989% sparse".
  EXPECT_NEAR(r.adjacency_sparsity, 0.99989, 1e-5);
}

TEST(DnnAccelStudy, PubmedUsefulFractionsMatchPaperText) {
  // "only 1% of the memory requests and 2% of the compute are useful".
  const DnnAccelResult r = run_dnn_accel_study(graph::DatasetId::kPubmed);
  EXPECT_LT(r.useful_compute_fraction, 0.05);
  EXPECT_LT(r.useful_memory_fraction, 0.05);
  EXPECT_GT(r.useful_compute_fraction, 0.001);
}

TEST(DnnAccelStudy, LatencyOrderingMatchesTableII) {
  const double cora =
      run_dnn_accel_study(graph::DatasetId::kCora).latency_bw_ms;
  const double cite =
      run_dnn_accel_study(graph::DatasetId::kCiteseer).latency_bw_ms;
  const double pub =
      run_dnn_accel_study(graph::DatasetId::kPubmed).latency_bw_ms;
  EXPECT_LT(cora, cite);
  EXPECT_LT(cite, pub);
  // Pubmed is an order of magnitude worse (Table II: 1.6 / 2.7 / 64.6).
  EXPECT_GT(pub / cora, 10.0);
}

TEST(DnnAccelStudy, BandwidthLimitSlowsEveryInput) {
  for (const auto id : {graph::DatasetId::kCora, graph::DatasetId::kCiteseer,
                        graph::DatasetId::kPubmed}) {
    const DnnAccelResult r = run_dnn_accel_study(id);
    EXPECT_GE(r.latency_bw_ms, r.latency_unlimited_ms);
  }
}

TEST(DnnAccelStudy, PubmedSlowerThanCpuBaseline) {
  // The paper's Section VI observation: despite 13x the compute units, the
  // DNN accelerator loses to the CPU on Pubmed (30.11 ms).
  const DnnAccelResult r = run_dnn_accel_study(graph::DatasetId::kPubmed);
  EXPECT_GT(r.latency_bw_ms,
            table7_row(gnn::Benchmark::kGcnPubmed).cpu_ms);
}

TEST(DnnAccelStudy, UsefulUtilizationBelowTotal) {
  const DnnAccelResult r = run_dnn_accel_study(graph::DatasetId::kCora);
  EXPECT_LT(r.pe_util_useful, r.pe_util_total);
  EXPECT_LE(r.pe_util_total, 1.0 + 1e-9);
  EXPECT_LT(r.offchip_bw_useful_gbps, r.offchip_bw_total_gbps);
}

TEST(DnnAccelStudy, FourGcnLayers) {
  const DnnAccelResult r = run_dnn_accel_study(graph::DatasetId::kCora);
  ASSERT_EQ(r.layers.size(), 4U);
  // Adjacency convolutions carry the sparse density; projections are dense.
  EXPECT_DOUBLE_EQ(r.layers[0].shape.weight_density, 1.0);
  EXPECT_LT(r.layers[1].shape.weight_density, 0.001);
}

TEST(DnnAccelStudy, UnlimitedLatencyInPaperBallpark) {
  // Table II (unlimited BW): Cora 0.791 ms, Pubmed 22.129 ms. Our mapper
  // is a NN-Dataflow substitute, so require the same order of magnitude.
  const double cora =
      run_dnn_accel_study(graph::DatasetId::kCora).latency_unlimited_ms;
  const double pub =
      run_dnn_accel_study(graph::DatasetId::kPubmed).latency_unlimited_ms;
  EXPECT_GT(cora, 0.791 / 4);
  EXPECT_LT(cora, 0.791 * 4);
  EXPECT_GT(pub, 22.129 / 4);
  EXPECT_LT(pub, 22.129 * 4);
}

}  // namespace
}  // namespace gnna::baseline
